// Online prediction inside a simulated MPI program: write an SPMD program
// against the simulated runtime, and let the receiving rank forecast who
// will send next and how many bytes, the way a prediction-enabled MPI
// library would (Section 2.3: pre-allocate and pre-grant before the sender
// even knows it will send).
//
// Run with:
//
//	go run ./examples/online-prediction
package main

import (
	"fmt"
	"log"

	"mpipredict"
)

func main() {
	const procs = 5
	const rounds = 40

	forecastHits := 0
	forecastTotal := 0

	cfg := mpipredict.RuntimeConfig{
		App:   "online-example",
		Procs: procs,
		Net:   mpipredict.DefaultNetworkConfig(),
		Seed:  11,
	}

	_, err := mpipredict.RunProgram(cfg, func(r *mpipredict.Rank) {
		// Rank 0 collects a halo from every worker each round; the workers
		// alternate between a small flag and a large block, so both the
		// sender and the size stream are periodic.
		if r.ID() != 0 {
			for round := 0; round < rounds; round++ {
				r.Compute(50 * float64(r.ID()))
				size := int64(512)
				if round%2 == 1 {
					size = 64 * 1024
				}
				r.Send(0, 1, size)
			}
			return
		}

		forecaster := mpipredict.NewMessagePredictor(mpipredict.DefaultPredictorConfig())
		for round := 0; round < rounds; round++ {
			for src := 1; src < procs; src++ {
				// Before posting the receive, ask the forecaster what it
				// expects: a prediction-enabled library would use this to
				// pre-allocate the buffer and pre-grant the send.
				expected := forecaster.Forecast(1)[0]
				msg := r.Recv(src, 1)
				if expected.OK {
					forecastTotal++
					if expected.Sender == msg.Sender && expected.Size == msg.Size {
						forecastHits++
					}
				}
				forecaster.Observe(msg.Sender, msg.Size)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("forecasts issued while the program ran: %d\n", forecastTotal)
	if forecastTotal > 0 {
		fmt.Printf("forecasts that matched the next message exactly (sender and size): %.1f%%\n",
			100*float64(forecastHits)/float64(forecastTotal))
	}
	fmt.Println("a prediction-enabled MPI library would have pre-allocated the large blocks and skipped their rendezvous handshakes")
}
