// The sharded serving tier end to end: start three in-process prediction
// daemons, put the cluster gateway that cmd/mpigateway hosts in front of
// them, and drive the whole thing through the gateway's single-daemon
// HTTP surface — observes route to each session's rendezvous-hash owner,
// predicts follow them, and the session listing fans out to every
// backend and merges. Then the operational half: partition a single
// node's snapshot across the cluster (the migration step of a shard-map
// change) and watch the gateway keep answering, degraded but usable,
// while one backend is down.
//
// Run with:
//
//	go run ./examples/cluster-fanout
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"mpipredict"
)

func main() {
	// --- Three backends, exactly as three mpipredictd processes. ---
	var backends []string
	servers := make(map[string]*http.Server)
	registries := make(map[string]*mpipredict.ServeRegistry)
	for i := 0; i < 3; i++ {
		reg := mpipredict.NewServeRegistry(mpipredict.ServeConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: mpipredict.NewServeServer(reg)}
		go srv.Serve(ln)
		base := "http://" + ln.Addr().String()
		backends = append(backends, base)
		servers[base] = srv
		registries[base] = reg
		defer srv.Close()
	}

	// --- The gateway: one shard map, one HTTP front door. ---
	shards, err := mpipredict.NewShardMap(backends)
	if err != nil {
		log.Fatal(err)
	}
	gw := mpipredict.NewClusterGateway(shards, mpipredict.ClusterOptions{})
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	gsrv := &http.Server{Handler: gw}
	go gsrv.Serve(gln)
	defer gsrv.Close()
	front := "http://" + gln.Addr().String()
	fmt.Println("gateway listening on", front, "over", len(backends), "backends")

	// --- Observe eight tenants' halo exchanges through one URL. ---
	// Each (tenant, stream) session lands on its rendezvous owner; the
	// client neither knows nor cares which backend that is.
	senders := []int64{1, 2, 3, 1, 2, 3}
	sizes := []int64{512, 512, 512, 65536, 65536, 65536}
	for t := 0; t < 8; t++ {
		tenant := fmt.Sprintf("app.%d", t)
		var events []mpipredict.ServeEvent
		for round := 0; round < 100; round++ {
			for i := range senders {
				events = append(events, mpipredict.ServeEvent{Sender: senders[i], Size: sizes[i]})
			}
		}
		post(front+"/v1/observe", map[string]interface{}{
			"tenant": tenant, "stream": "rank0/physical", "events": events,
		})
	}
	for _, base := range backends {
		fmt.Printf("  backend %s owns %d sessions\n", base, registries[base].Len())
	}

	// --- Predict through the gateway: routed to the same owner. ---
	var forecast struct {
		Forecasts []struct {
			Ahead  int   `json:"ahead"`
			Sender int64 `json:"sender"`
			Size   int64 `json:"size"`
		} `json:"forecasts"`
	}
	getJSON(front+"/v1/predict?tenant=app.0&stream=rank0/physical&k=3", &forecast)
	fmt.Print("forecast for app.0: ")
	for _, p := range forecast.Forecasts {
		fmt.Printf("+%d:(sender %d, %d B) ", p.Ahead, p.Sender, p.Size)
	}
	fmt.Println()

	// --- The merged session listing fans out to every backend. ---
	var listing struct {
		Total    int  `json:"total"`
		Degraded bool `json:"degraded"`
	}
	getJSON(front+"/v1/sessions?limit=5", &listing)
	fmt.Printf("cluster sessions: %d total, degraded=%v\n", listing.Total, listing.Degraded)

	// --- Migration: a single node's snapshot, partitioned by shard. ---
	// This is what `mpigateway -migrate state.mps` does: split a drained
	// daemon's checkpoint and restore each part to its owner.
	single := mpipredict.NewServeRegistry(mpipredict.ServeConfig{})
	for i := 0; i < 6; i++ {
		single.Observe(fmt.Sprintf("legacy.%d", i), "r0/physical", mpipredict.ServeEvent{Sender: 1, Size: 256})
	}
	counts, err := gw.RestoreToCluster(context.Background(), single.SnapshotSessions())
	if err != nil {
		log.Fatal(err)
	}
	migrated := 0
	for _, n := range counts {
		migrated += n
	}
	fmt.Printf("migrated %d legacy sessions across %d backends\n", migrated, len(counts))

	// --- Partial failure: stop one backend; the cluster stays usable. ---
	servers[backends[0]].Close()
	getJSON(front+"/v1/sessions?limit=5", &listing)
	fmt.Printf("with %s down: %d sessions listed, degraded=%v\n", backends[0], listing.Total, listing.Degraded)
}

func post(url string, payload interface{}) {
	body, err := json.Marshal(payload)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body)
}

func getJSON(url string, into interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}
