// Buffer pre-allocation: the Section 2.1 use case. Instead of statically
// allocating one 16 KiB eager buffer per peer (160 MB per process on a
// 10 000-node machine), the receiver allocates buffers only for the
// senders the predictor expects next and falls back to an ask-permission
// path on mispredictions.
//
// Run with:
//
//	go run ./examples/buffer-preallocation
package main

import (
	"fmt"
	"log"

	"mpipredict"
)

func main() {
	// The memory argument of Section 2.1, independent of any trace.
	fmt.Println("conventional per-peer eager buffers (16 KiB each), per process:")
	for _, procs := range []int{256, 1024, 10000} {
		mem := mpipredict.StaticBufferMemory(procs, 16*1024)
		fmt.Printf("  %6d processes -> %7.1f MiB\n", procs, float64(mem)/(1<<20))
	}

	// Now drive the prediction-based alternative with a real message
	// stream: BT on 25 processes, the largest BT configuration of the
	// paper.
	spec := mpipredict.WorkloadSpec{Name: "bt", Procs: 25}
	tr, err := mpipredict.RunWorkload(spec, mpipredict.DefaultNetworkConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := mpipredict.TypicalReceiver(spec.Name, spec.Procs)
	if err != nil {
		log.Fatal(err)
	}

	stats, err := mpipredict.ReplayBuffers(tr, receiver, mpipredict.BufferConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprediction-driven buffers on %s.%d (receiver rank %d):\n", spec.Name, spec.Procs, receiver)
	fmt.Printf("  messages processed:        %d\n", stats.Messages)
	fmt.Printf("  fast-path (predicted) rate: %.1f%%\n", 100*stats.FastPathRate())
	fmt.Printf("  peak simultaneous buffers:  %d (of %d peers)\n", stats.PeakBuffers, spec.Procs-1)
	fmt.Printf("  peak buffer memory:         %.1f KiB (static scheme: %.1f KiB)\n",
		float64(stats.PeakMemory)/1024, float64(stats.StaticMemory)/1024)
	fmt.Printf("  memory reduction:           %.1fx\n", stats.MemoryReductionFactor())

	// The same trace through the credit-based flow control of Section 2.2.
	credits, err := mpipredict.ReplayCredits(tr, receiver, 0, mpipredict.CreditConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncredit-based control flow on the same trace:\n")
	fmt.Printf("  messages arriving with a pre-granted credit: %.1f%%\n", 100*credits.CreditedRate())
	fmt.Printf("  receiver memory exposure: %.1f KiB reserved vs %.1f KiB uncontrolled incast\n",
		float64(credits.PeakReservedBytes)/1024, float64(credits.UncontrolledExposureBytes)/1024)
}
