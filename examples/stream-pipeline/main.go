// Example stream-pipeline demonstrates the batched event pipeline
// (internal/stream): events flow from producers to consumers in columnar
// EventBlocks, and scenarios are composed from small transforms instead
// of materialized traces.
//
// The pipeline built here:
//
//  1. a simulated workload is streamed straight into the binary codec
//     (constant memory — the trace never exists as a whole),
//  2. the exported file is evaluated by streaming it through the scorers
//     (evalx.EvaluateSource — identical numbers to the in-memory path),
//  3. a robustness scenario is composed on the fly: the same file with
//     seeded arrival-order noise, plus a second synthetic
//     stream merged in — then evaluated without ever building a trace.
//
// The same flows are available from the command line:
//
//	tracegen -workload bt -procs 9 -stream -o bt9.mpt
//	tracegen -events 100000000 -period 18 -stream -o big.mpt
//	mpipredict -trace bt9.mpt -experiment figure4
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mpipredict/internal/evalx"
	"mpipredict/internal/simnet"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "stream-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bt9.mpt")

	// 1. Simulate and export in one streaming pass: the simulator emits
	// blocks, the codec writes them — the trace is never materialized.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f, "bt", 9)
	if err != nil {
		log.Fatal(err)
	}
	rc := workloads.RunConfig{
		Spec: workloads.Spec{Name: "bt", Procs: 9, Iterations: 10},
		Net:  simnet.DefaultConfig(),
		Seed: 1,
	}
	if err := workloads.RunToSink(rc, stream.SinkTo(w)); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed bt.9 export: %s\n", path)

	// 2. Evaluate the file by streaming it through the scorers. The
	// opener hands EvaluateSource a fresh pass whenever it needs one;
	// memory stays constant no matter how long the trace is.
	receiver, err := workloads.TypicalReceiver("bt", 9)
	if err != nil {
		log.Fatal(err)
	}
	res, err := evalx.EvaluateSource(stream.FileOpener(path), receiver, evalx.Options{NoCache: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pristine physical sender accuracy:  %s\n", res.Sender[trace.Physical])

	// 3. Compose a robustness scenario: the recorded arrivals with
	// seeded arrival reordering, merged with a synthetic interferer on
	// a disjoint receiver — all lazily, block by block.
	noisy := func() (stream.Source, error) {
		src, err := stream.OpenFile(path)
		if err != nil {
			return nil, err
		}
		perturbed := stream.Perturb(src, stream.PerturbConfig{
			SwapProbability: 0.1,
			PhysicalOnly:    true,
			Seed:            7,
		})
		interferer := stream.SynthSource(trace.SynthConfig{
			App: "interferer", Procs: 9, Receiver: 1000,
			Pattern:     []trace.SynthMessage{{Sender: 1001, Size: 512}, {Sender: 1002, Size: 1024}},
			Repetitions: 500,
		})
		return stream.Merge(perturbed, interferer), nil
	}
	noisyRes, err := evalx.EvaluateSource(noisy, receiver, evalx.Options{NoCache: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perturbed physical sender accuracy: %s\n", noisyRes.Sender[trace.Physical])
	fmt.Printf("accuracy delta under noise: %+.1f points\n",
		100*(noisyRes.Sender[trace.Physical].Mean()-res.Sender[trace.Physical].Mean()))

	// The interferer's stream is untouched by the merge: evaluating its
	// receiver inside the composed scenario scores it in isolation.
	interfererRes, err := evalx.EvaluateSource(noisy, 1000, evalx.Options{NoCache: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interferer logical sender accuracy: %s\n", interfererRes.Sender[trace.Logical])
}
