// Trace analysis: simulate NAS BT on 9 processes, extract the message
// streams received by process 3 (the process the paper traces), detect
// their periodicity and measure prediction accuracy at both
// instrumentation levels — a single-workload version of Figures 1, 3
// and 4.
//
// Run with:
//
//	go run ./examples/trace-analysis
package main

import (
	"fmt"
	"log"

	"mpipredict"
)

func main() {
	spec := mpipredict.WorkloadSpec{Name: "bt", Procs: 9}

	// Simulate the benchmark with the default (noisy) interconnect and
	// evaluate the DPD predictor on the traced receiver's streams.
	res, err := mpipredict.Evaluate(spec, mpipredict.EvalOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %d processes, traced receiver: rank %d\n", res.App, res.Procs, res.Receiver)
	c := res.Characterization
	fmt.Printf("point-to-point messages: %d, collective messages: %d, frequent sizes: %d, frequent senders: %d\n",
		c.P2PMsgs, c.CollMsgs, c.MsgSizes, c.Senders)

	fmt.Println("\nprediction accuracy (+1 ... +5):")
	fmt.Printf("  logical  sender: %s\n", res.Sender[mpipredict.Logical])
	fmt.Printf("  physical sender: %s\n", res.Sender[mpipredict.Physical])
	fmt.Printf("  logical  size:   %s\n", res.Size[mpipredict.Logical])
	fmt.Printf("  physical size:   %s\n", res.Size[mpipredict.Physical])

	fmt.Printf("\nphysical arrival order differs from program order at %.1f%% of positions\n", 100*res.Reordering)
	fmt.Printf("order-free accuracy of the next-5-senders forecast (physical level): %.1f%%\n", 100*res.SenderSetAccuracy)

	// Figure 1: the period of the iterative pattern.
	fig, err := mpipredict.Figure1(mpipredict.EvalOptions{Seed: 42, Iterations: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetected period of the BT.9 sender stream: %d (paper: 18)\n", fig.SenderPeriod)
	fmt.Printf("first two periods of the sender stream: %v\n", fig.SenderExcerpt[:2*fig.SenderPeriod])
}
