// Example trace-export-replay demonstrates the persistent trace
// subsystem: exporting a simulated run in the binary trace format,
// replaying it through the evaluation pipeline without re-simulating, and
// warming a disk-backed trace cache so a restarted process never invokes
// the simulator.
//
// The same flow is available from the command line:
//
//	tracegen -workload bt -procs 9 -o bt9.mpt
//	mpipredict -trace bt9.mpt -experiment table1
//	mpipredict -experiment table1 -cache-dir ./cache -cache-stats
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mpipredict/internal/evalx"
	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "trace-export-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Simulate one benchmark and export its trace as a .mpt file —
	// what `tracegen -o` does.
	rc := workloads.RunConfig{
		Spec: workloads.Spec{Name: "bt", Procs: 9, Iterations: 10},
		Net:  simnet.DefaultConfig(),
		Seed: 1,
	}
	tr, err := workloads.Run(rc)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "bt9.mpt")
	if err := trace.SaveBinaryFile(path, tr); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("exported %d records to %s (%d bytes, format v%d)\n",
		tr.Len(), filepath.Base(path), info.Size(), trace.BinaryVersion)

	// 2. Replay the file through the prediction pipeline — what
	// `mpipredict -trace` does. No simulation happens here: the loaded
	// records are exactly the exported ones.
	loaded, err := trace.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := workloads.ReplayReceiver(loaded)
	if err != nil {
		log.Fatal(err)
	}
	res, err := evalx.EvaluateTrace(loaded, receiver, evalx.Options{NoCache: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %s.%d receiver %d: logical +1 sender accuracy %.1f%%\n",
		loaded.App, loaded.Procs, receiver,
		100*res.Accuracy(evalx.SenderStream, trace.Logical, 1))

	// 3. Warm a disk-backed cache, then evaluate again through a fresh
	// cache over the same directory — modelling a process restart. The
	// second pass promotes every trace from disk: zero simulations.
	cacheDir := filepath.Join(dir, "cache")
	opts := evalx.Options{Iterations: 2, Net: simnet.DefaultConfig(), Seed: 1}

	opts.Cache = tracecache.NewDisk(cacheDir)
	if _, err := evalx.Table1(opts); err != nil {
		log.Fatal(err)
	}
	cold := opts.Cache.Stats()

	opts.Cache = tracecache.NewDisk(cacheDir) // fresh memory tier, warm disk
	if _, err := evalx.Table1(opts); err != nil {
		log.Fatal(err)
	}
	warm := opts.Cache.Stats()
	fmt.Printf("cold Table 1 run: %d simulations, %d traces persisted\n", cold.Misses, cold.DiskWrites)
	fmt.Printf("warm Table 1 run: %d simulations, %d traces promoted from disk\n", warm.Misses, warm.DiskHits)
}
