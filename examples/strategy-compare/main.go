// Strategy comparison: evaluate every registered prediction strategy —
// the paper's DPD, the lastvalue floor and the first-order Markov
// baseline — side by side on the NAS BT benchmark, printing the accuracy
// table that quantifies the paper's claim that DPD-based prediction beats
// the simpler schemes.
//
// Run with:
//
//	go run ./examples/strategy-compare
package main

import (
	"fmt"
	"log"

	"mpipredict"
)

func main() {
	// One BT instance is enough to see the ordering; the full grid is
	// cmd/mpipredict -experiment compare. A reduced iteration count keeps
	// the example quick — accuracy converges within a few periods.
	specs := []mpipredict.WorkloadSpec{{Name: "bt", Procs: 9}}
	cmp, err := mpipredict.CompareStrategies(nil, specs, mpipredict.EvalOptions{Seed: 1, Iterations: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mpipredict.FormatStrategyComparison(cmp))

	// The same registry serves individual strategies for custom loops.
	fmt.Println("\nregistered strategies:")
	for _, name := range mpipredict.Strategies() {
		s, err := mpipredict.NewStrategy(name, mpipredict.DefaultPredictorConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", s.Desc())
	}
}
