// Quickstart: feed a message stream to the DPD predictor and ask for the
// next five values, exactly the prediction task of the paper.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mpipredict"
)

func main() {
	// The sender stream Figure 1a of the paper shows for process 3 of
	// BT.9: five partner ranks in a fixed order, repeating every 18
	// messages.
	pattern := []int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}

	p := mpipredict.NewPredictor(mpipredict.DefaultPredictorConfig())

	// Replay a few iterations of the application: the predictor learns the
	// period online.
	for i := 0; i < 6*len(pattern); i++ {
		p.Observe(pattern[i%len(pattern)])
	}

	period, ok := p.Period()
	fmt.Printf("periodicity detected: %v, period = %d messages\n", ok, period)

	fmt.Println("next five senders predicted (+1 ... +5):")
	for _, pred := range p.PredictSeries(5) {
		if pred.OK {
			fmt.Printf("  +%d -> rank %d\n", pred.Ahead, pred.Value)
		} else {
			fmt.Printf("  +%d -> no prediction yet\n", pred.Ahead)
		}
	}

	// The same API drives joint sender+size forecasts, which is what the
	// scalability mechanisms of Section 2 consume.
	mp := mpipredict.NewMessagePredictor(mpipredict.DefaultPredictorConfig())
	sizes := []int64{3240, 10240, 19440}
	for i := 0; i < 120; i++ {
		mp.Observe(int(pattern[i%len(pattern)]), sizes[i%len(sizes)])
	}
	fmt.Println("next three messages (sender, size):")
	for _, f := range mp.Forecast(3) {
		fmt.Printf("  +%d -> from rank %d, %d bytes (ok=%v)\n", f.Ahead, f.Sender, f.Size, f.OK)
	}
}
