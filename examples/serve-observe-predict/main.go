// The online prediction service end to end: start the HTTP service that
// cmd/mpipredictd hosts, observe a periodic message stream the way an MPI
// runtime would report receives, query multi-step forecasts, then
// checkpoint the learned predictor state and warm-restart a second
// service from the snapshot — the restarted service predicts immediately,
// without relearning.
//
// Run with:
//
//	go run ./examples/serve-observe-predict
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"mpipredict"
)

func main() {
	// A 6-rank halo exchange: the receiver hears from the same neighbours
	// in the same order every iteration, alternating flag and block sizes.
	senders := []int64{1, 2, 3, 1, 2, 3}
	sizes := []int64{512, 512, 512, 65536, 65536, 65536}

	// --- Start the service, exactly as mpipredictd does. ---
	registry := mpipredict.NewServeRegistry(mpipredict.ServeConfig{})
	server := mpipredict.NewServeServer(registry)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	// --- Observe: a communication runtime reports receives in batches. ---
	const rounds = 400
	var events []mpipredict.ServeEvent
	for round := 0; round < rounds; round++ {
		for i := range senders {
			events = append(events, mpipredict.ServeEvent{Sender: senders[i], Size: sizes[i]})
		}
		if len(events) >= 64 || round == rounds-1 {
			post(base+"/v1/observe", map[string]interface{}{
				"tenant": "halo-app", "stream": "rank0/physical", "events": events,
			})
			events = events[:0]
		}
	}
	fmt.Printf("observed %d events for session halo-app/rank0-physical\n", rounds*len(senders))

	// --- Predict: who sends the next 6 messages, and how many bytes? ---
	forecast := getJSON(base + "/v1/predict?tenant=halo-app&stream=rank0/physical&k=6")
	fmt.Println("next 6 messages forecast:")
	fmt.Println(indent(forecast))

	// --- Checkpoint: persist every session's learned state. ---
	dir, err := os.MkdirTemp("", "serve-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "state.mps")
	if err := mpipredict.SaveSessionSnapshots(snapPath, registry.SnapshotSessions()); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(snapPath)
	fmt.Printf("checkpointed predictor state to %s (%d bytes)\n", filepath.Base(snapPath), info.Size())

	// --- Warm restart: a brand-new registry, primed from the snapshot. ---
	sessions, err := mpipredict.LoadSessionSnapshots(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	restarted := mpipredict.NewServeRegistry(mpipredict.ServeConfig{})
	if err := restarted.RestoreSessions(sessions); err != nil {
		log.Fatal(err)
	}
	fc, _, ok := restarted.ForecastInto(nil, "halo-app", "rank0/physical", 3)
	if !ok {
		log.Fatal("restored registry lost the session")
	}
	fmt.Println("restarted service forecasts immediately, no relearning:")
	for _, f := range fc {
		fmt.Printf("  +%d: sender %d, %d bytes (ok=%v)\n", f.Ahead, f.Sender, f.Size, f.OK)
	}
}

func post(url string, payload interface{}) {
	body, err := json.Marshal(payload)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body)
}

func getJSON(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, raw, "", "  "); err != nil {
		return string(raw)
	}
	return pretty.String()
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimSpace(s), "\n", "\n  ")
}
