package mpipredict

// The .mpts parity suite: the columnar trace store is a second on-disk
// representation of the exact same event stream, and this file pins the
// property everything downstream relies on — evaluating a store is
// hit-for-hit indistinguishable from evaluating the flat .mpt it mirrors.
// Every corpus workload × every registered strategy runs EvaluateSource
// over both formats and requires deep equality of the full result
// (hits, misses, per-horizon accuracy, reordering diagnostics — all of
// it), plus Table 1 characterisation equality.

import (
	"reflect"
	"testing"

	"mpipredict/internal/evalx"
	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/workloads"
)

// corpusReplayReceiver picks the receiver a CLI replay of the file would
// evaluate, identically for both formats.
func corpusReplayReceiver(t *testing.T, path string) int {
	t.Helper()
	src, err := stream.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := stream.MetaOf(src)
	receivers, err := stream.Receivers(src)
	src.Close()
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := workloads.PickReplayReceiver(md.App, md.Procs, receivers)
	if err != nil {
		t.Fatal(err)
	}
	return receiver
}

func TestStoreEvaluateSourceParityFullCorpus(t *testing.T) {
	for _, c := range corpusSpecs() {
		t.Run(c.File, func(t *testing.T) {
			mpt := corpusPath(c.File)
			mpts := corpusPath(storeCorpusFile(c.File))
			recv := corpusReplayReceiver(t, mpt)
			if storeRecv := corpusReplayReceiver(t, mpts); storeRecv != recv {
				t.Fatalf("replay receiver differs by format: %d vs %d", recv, storeRecv)
			}

			row, err := evalx.Table1RowFromSource(stream.FileOpener(mpt), recv)
			if err != nil {
				t.Fatal(err)
			}
			storeRow, err := evalx.Table1RowFromSource(stream.FileOpener(mpts), recv)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(row, storeRow) {
				t.Errorf("Table1 characterisation differs between formats:\n.mpt  %+v\n.mpts %+v", row, storeRow)
			}

			for _, name := range strategy.Names() {
				opts := evalx.Options{Strategy: name}
				res, err := evalx.EvaluateSource(stream.FileOpener(mpt), recv, opts)
				if err != nil {
					t.Fatalf("%s over .mpt: %v", name, err)
				}
				storeRes, err := evalx.EvaluateSource(stream.FileOpener(mpts), recv, opts)
				if err != nil {
					t.Fatalf("%s over .mpts: %v", name, err)
				}
				if !reflect.DeepEqual(res, storeRes) {
					t.Errorf("strategy %s: EvaluateSource over .mpts differs from .mpt", name)
				}
			}
		})
	}
}
