package mpipredict

// The dpd-strategy equivalence suite: the tentpole refactor moved the
// paper's predictor behind the Strategy interface with a zero-behavior-
// change contract, and this file pins that contract against the full
// golden corpus (testdata/corpus/*.mpt). Every recorded stream of every
// workload — sender and size, logical and physical — is driven through a
// hand-held core.StreamPredictor and through strategy.New("dpd") side by
// side, comparing every +1..+5 prediction before every observation. Any
// divergence, however small, fails here before it can skew a figure or a
// served forecast.

import (
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/evalx"
	"mpipredict/internal/predictor"
	"mpipredict/internal/strategy"
	"mpipredict/internal/trace"
)

// corpusStreams yields every (stream, label) pair of one corpus trace.
func corpusStreams(t *testing.T, file string) map[string][]int64 {
	t.Helper()
	tr, err := trace.Load(corpusPath(file))
	if err != nil {
		t.Fatal(err)
	}
	streams := make(map[string][]int64)
	for _, receiver := range tr.Receivers() {
		for _, level := range []trace.Level{trace.Logical, trace.Physical} {
			if s := tr.SenderStreamShared(receiver, level); len(s) > 0 {
				streams[level.String()+"/sender"] = s
			}
			if s := tr.SizeStreamShared(receiver, level); len(s) > 0 {
				streams[level.String()+"/size"] = s
			}
		}
	}
	return streams
}

// TestDPDStrategyMatchesCoreOnCorpus requires hit-for-hit equality between
// the interface-dispatched dpd strategy and the bare core predictor on
// every corpus stream.
func TestDPDStrategyMatchesCoreOnCorpus(t *testing.T) {
	for _, c := range corpusSpecs() {
		t.Run(c.File, func(t *testing.T) {
			for label, stream := range corpusStreams(t, c.File) {
				direct := core.NewStreamPredictor(core.DefaultConfig())
				viaStrategy, err := strategy.New("dpd", core.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				for i, x := range stream {
					for k := 1; k <= 5; k++ {
						dv, dok := direct.Predict(k)
						sv, sok := viaStrategy.Predict(k)
						if dv != sv || dok != sok {
							t.Fatalf("%s step %d +%d: core (%d,%v) vs strategy (%d,%v)",
								label, i, k, dv, dok, sv, sok)
						}
					}
					direct.Observe(x)
					viaStrategy.Observe(x)
				}
			}
		})
	}
}

// TestDPDStrategyScoresIdenticallyOnCorpus runs the evaluation harness's
// own scoring loop both ways: the accuracy tables the figures are built
// from must not move by a single hit when the DPD is selected through the
// strategy registry.
func TestDPDStrategyScoresIdenticallyOnCorpus(t *testing.T) {
	dpdFactory := func() predictor.Predictor {
		s, err := strategy.New("dpd", core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return predictor.FromStrategy(s)
	}
	for _, c := range corpusSpecs() {
		t.Run(c.File, func(t *testing.T) {
			for label, stream := range corpusStreams(t, c.File) {
				want := evalx.EvaluateStream(stream, nil, 5)
				got := evalx.EvaluateStream(stream, dpdFactory, 5)
				for k := 0; k < 5; k++ {
					if want.Hits[k] != got.Hits[k] || want.Total[k] != got.Total[k] {
						t.Fatalf("%s horizon +%d: direct %d/%d hits, via strategy %d/%d",
							label, k+1, want.Hits[k], want.Total[k], got.Hits[k], got.Total[k])
					}
				}
			}
		})
	}
}
