package mpipredict

// Corpus acceptance for the adaptive meta-strategy: across the golden
// corpus the router must stay within one accuracy point of the best
// single strategy. The corpus traces are short (two iterations), so this
// is the worst case for an online router — every stream starts with a
// cold scoring window — and the bound still has to hold.

import (
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/evalx"
	"mpipredict/internal/predictor"
	"mpipredict/internal/strategy"
)

// TestMetaWithinOnePointOfBestSingleOnCorpus aggregates hits over every
// stream (sender and size, logical and physical) of every corpus trace,
// per strategy, and requires the meta router's corpus-wide mean accuracy
// to be at least the best single strategy's minus one point.
func TestMetaWithinOnePointOfBestSingleOnCorpus(t *testing.T) {
	mean := map[string]float64{}
	for _, name := range strategy.Names() {
		hits, total := 0, 0
		factory := func() predictor.Predictor {
			s, err := strategy.New(name, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return predictor.FromStrategy(s)
		}
		for _, c := range corpusSpecs() {
			for _, stream := range corpusStreams(t, c.File) {
				acc := evalx.EvaluateStream(stream, factory, 5)
				for k := range acc.Hits {
					hits += acc.Hits[k]
					total += acc.Total[k]
				}
			}
		}
		if total == 0 {
			t.Fatalf("no scored predictions for %s", name)
		}
		mean[name] = float64(hits) / float64(total)
	}
	best, bestName := 0.0, ""
	for name, m := range mean {
		t.Logf("%-10s corpus mean accuracy %.4f", name, m)
		if name != strategy.MetaName && m > best {
			best, bestName = m, name
		}
	}
	if mean[strategy.MetaName] < best-0.01 {
		t.Fatalf("meta corpus accuracy %.4f is more than 1pt below the best single strategy %s's %.4f",
			mean[strategy.MetaName], bestName, best)
	}
}
