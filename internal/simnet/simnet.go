// Package simnet models the interconnect and machine-level timing effects
// of the simulated MPI runtime.
//
// The paper runs its benchmarks on a real IBM RS/6000 SP system; the
// physical-level randomness it observes comes from network latency
// variation, congestion and load imbalance between processes
// (Section 3.1). This package substitutes those effects with a simple,
// explicitly parameterised model:
//
//   - message transfer time follows the classic alpha–beta (latency +
//     size/bandwidth) model with a configurable relative jitter,
//   - per-process computation time gets a configurable relative imbalance
//     term, and
//   - messages larger than the eager limit pay an additional rendezvous
//     handshake (the 3-message protocol of Section 2.3).
//
// All randomness is drawn from the *rand.Rand passed by the caller, so the
// simulation stays reproducible and each simulated process can own an
// independent, deterministically seeded generator.
package simnet

import (
	"fmt"
	"math/rand"
)

// Config holds the timing parameters of the network model. All times are
// in microseconds; sizes are in bytes.
type Config struct {
	// LatencyUS is the fixed per-message wire latency (the alpha term).
	LatencyUS float64
	// BandwidthBytesPerUS is the link bandwidth (the 1/beta term). 100
	// bytes/us corresponds to roughly 100 MB/s, typical for the clusters
	// of the paper's era.
	BandwidthBytesPerUS float64
	// SendOverheadUS and RecvOverheadUS model the CPU time spent inside
	// the MPI library per message on each side.
	SendOverheadUS float64
	RecvOverheadUS float64
	// JitterFrac is the relative standard deviation of transfer times.
	// 0 disables network randomness entirely.
	JitterFrac float64
	// ImbalanceFrac is the relative standard deviation applied to
	// application compute phases, modelling OS noise and load imbalance.
	ImbalanceFrac float64
	// EagerLimitBytes is the protocol switch point: messages up to this
	// size are sent eagerly, larger ones use a rendezvous handshake. The
	// 16 KB default matches the implementations discussed in the paper
	// (IBM MPI, MPICH).
	EagerLimitBytes int64
	// RendezvousExtraUS is the additional cost of the request-to-send /
	// clear-to-send round trip paid by rendezvous messages on top of the
	// two small control-message transfers.
	RendezvousExtraUS float64
}

// DefaultConfig returns parameters representative of the machines the
// paper used: tens of microseconds of latency, ~100 MB/s links, a 16 KB
// eager limit, per-message library overheads in the tens of microseconds
// and a few percent of jitter and load imbalance. The noise terms are
// deliberately smaller than the systematic skew between senders (library
// overheads, wavefront position, compute phases), so the physical arrival
// order is mostly stable with occasional reorderings — the behaviour
// Figure 2 of the paper shows.
func DefaultConfig() Config {
	return Config{
		LatencyUS:           30,
		BandwidthBytesPerUS: 100,
		SendOverheadUS:      15,
		RecvOverheadUS:      10,
		JitterFrac:          0.05,
		ImbalanceFrac:       0.03,
		EagerLimitBytes:     16 * 1024,
		RendezvousExtraUS:   10,
	}
}

// NoiselessConfig returns the same timing parameters with every stochastic
// term disabled. The logical and physical streams of a run under this
// configuration describe the same deterministic behaviour, which is useful
// for tests and for isolating the effect of noise.
func NoiselessConfig() Config {
	c := DefaultConfig()
	c.JitterFrac = 0
	c.ImbalanceFrac = 0
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LatencyUS < 0 {
		return fmt.Errorf("simnet: LatencyUS must be >= 0, got %g", c.LatencyUS)
	}
	if c.BandwidthBytesPerUS <= 0 {
		return fmt.Errorf("simnet: BandwidthBytesPerUS must be > 0, got %g", c.BandwidthBytesPerUS)
	}
	if c.SendOverheadUS < 0 || c.RecvOverheadUS < 0 {
		return fmt.Errorf("simnet: overheads must be >= 0")
	}
	if c.JitterFrac < 0 || c.ImbalanceFrac < 0 {
		return fmt.Errorf("simnet: noise fractions must be >= 0")
	}
	if c.EagerLimitBytes < 0 {
		return fmt.Errorf("simnet: EagerLimitBytes must be >= 0, got %d", c.EagerLimitBytes)
	}
	if c.RendezvousExtraUS < 0 {
		return fmt.Errorf("simnet: RendezvousExtraUS must be >= 0, got %g", c.RendezvousExtraUS)
	}
	return nil
}

// Model evaluates the timing model for a validated configuration.
type Model struct {
	cfg Config
}

// NewModel builds a Model; it returns an error when the configuration is
// invalid.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// MustModel is NewModel for configurations known to be valid at compile
// time (tests, defaults); it panics on error.
func MustModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the configuration the model was built from.
func (m *Model) Config() Config { return m.cfg }

// noisy multiplies base by a truncated Gaussian factor with relative
// standard deviation frac. The factor is clamped to [0.1, 3] so extreme
// draws cannot produce negative or absurd times.
func noisy(rng *rand.Rand, base, frac float64) float64 {
	if frac <= 0 || rng == nil {
		return base
	}
	factor := 1 + rng.NormFloat64()*frac
	if factor < 0.1 {
		factor = 0.1
	}
	if factor > 3 {
		factor = 3
	}
	return base * factor
}

// TransferTime returns the wire time for a message of the given size,
// including jitter. It does not include the sender/receiver CPU
// overheads.
func (m *Model) TransferTime(rng *rand.Rand, size int64) float64 {
	if size < 0 {
		size = 0
	}
	base := m.cfg.LatencyUS + float64(size)/m.cfg.BandwidthBytesPerUS
	return noisy(rng, base, m.cfg.JitterFrac)
}

// SendOverhead returns the CPU time the sender spends handing the message
// to the library.
func (m *Model) SendOverhead() float64 { return m.cfg.SendOverheadUS }

// RecvOverhead returns the CPU time the receiver spends completing a
// receive.
func (m *Model) RecvOverhead() float64 { return m.cfg.RecvOverheadUS }

// ComputeTime returns the wall time of a compute phase whose nominal
// duration is base, including load-imbalance noise.
func (m *Model) ComputeTime(rng *rand.Rand, base float64) float64 {
	if base < 0 {
		base = 0
	}
	return noisy(rng, base, m.cfg.ImbalanceFrac)
}

// UsesRendezvous reports whether a message of the given size is sent with
// the rendezvous protocol rather than eagerly.
func (m *Model) UsesRendezvous(size int64) bool {
	return size > m.cfg.EagerLimitBytes
}

// RendezvousHandshake returns the extra time a rendezvous send pays before
// the payload transfer starts: a request-to-send and a clear-to-send
// control message plus fixed protocol overhead.
func (m *Model) RendezvousHandshake(rng *rand.Rand) float64 {
	rts := m.TransferTime(rng, 0)
	cts := m.TransferTime(rng, 0)
	return rts + cts + m.cfg.RendezvousExtraUS
}

// EagerLimit returns the configured eager/rendezvous switch point.
func (m *Model) EagerLimit() int64 { return m.cfg.EagerLimitBytes }

// PointToPointLatency returns the end-to-end latency of a single message
// of the given size under the current protocol rules, without jitter.
// The scalability analysis of Section 2.3 uses it to compare rendezvous
// and prediction-enabled eager sends for large messages.
func (m *Model) PointToPointLatency(size int64, forceEager bool) float64 {
	base := m.cfg.SendOverheadUS + m.cfg.LatencyUS + float64(size)/m.cfg.BandwidthBytesPerUS + m.cfg.RecvOverheadUS
	if !forceEager && m.UsesRendezvous(size) {
		base += 2*m.cfg.LatencyUS + m.cfg.RendezvousExtraUS
	}
	return base
}
