package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(c *Config) {}, true},
		{"noiseless", func(c *Config) { *c = NoiselessConfig() }, true},
		{"negative latency", func(c *Config) { c.LatencyUS = -1 }, false},
		{"zero bandwidth", func(c *Config) { c.BandwidthBytesPerUS = 0 }, false},
		{"negative overhead", func(c *Config) { c.SendOverheadUS = -1 }, false},
		{"negative recv overhead", func(c *Config) { c.RecvOverheadUS = -0.5 }, false},
		{"negative jitter", func(c *Config) { c.JitterFrac = -0.1 }, false},
		{"negative imbalance", func(c *Config) { c.ImbalanceFrac = -0.1 }, false},
		{"negative eager limit", func(c *Config) { c.EagerLimitBytes = -1 }, false},
		{"negative rendezvous", func(c *Config) { c.RendezvousExtraUS = -1 }, false},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		err := cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate()=%v want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewModelRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BandwidthBytesPerUS = -5
	if _, err := NewModel(cfg); err == nil {
		t.Error("NewModel should reject an invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustModel should panic on an invalid config")
		}
	}()
	MustModel(cfg)
}

func TestTransferTimeDeterministicWithoutJitter(t *testing.T) {
	m := MustModel(NoiselessConfig())
	rng := rand.New(rand.NewSource(1))
	want := 30 + 1000.0/100
	if got := m.TransferTime(rng, 1000); got != want {
		t.Errorf("TransferTime(1000)=%g want %g", got, want)
	}
	if got := m.TransferTime(nil, 1000); got != want {
		t.Errorf("TransferTime with nil rng=%g want %g", got, want)
	}
	if got := m.TransferTime(rng, -50); got != 30 {
		t.Errorf("negative sizes clamp to zero payload, got %g", got)
	}
}

func TestTransferTimeGrowsWithSize(t *testing.T) {
	m := MustModel(NoiselessConfig())
	small := m.TransferTime(nil, 1024)
	large := m.TransferTime(nil, 1024*1024)
	if large <= small {
		t.Errorf("transfer time must grow with size: %g vs %g", small, large)
	}
}

func TestTransferTimeJitterIsBoundedAndPositive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterFrac = 0.5
	m := MustModel(cfg)
	rng := rand.New(rand.NewSource(7))
	base := m.TransferTime(nil, 4096)
	for i := 0; i < 5000; i++ {
		v := m.TransferTime(rng, 4096)
		if v <= 0 {
			t.Fatalf("transfer time must stay positive, got %g", v)
		}
		if v < base*0.1-1e-9 || v > base*3+1e-9 {
			t.Fatalf("jittered transfer time %g outside clamp [%g, %g]", v, base*0.1, base*3)
		}
	}
}

func TestComputeTime(t *testing.T) {
	m := MustModel(NoiselessConfig())
	if got := m.ComputeTime(nil, 500); got != 500 {
		t.Errorf("noiseless compute time=%g want 500", got)
	}
	if got := m.ComputeTime(nil, -10); got != 0 {
		t.Errorf("negative base clamps to 0, got %g", got)
	}
	noisy := MustModel(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	var different bool
	for i := 0; i < 100; i++ {
		if noisy.ComputeTime(rng, 500) != 500 {
			different = true
			break
		}
	}
	if !different {
		t.Error("with ImbalanceFrac > 0 compute times should vary")
	}
}

func TestProtocolSelection(t *testing.T) {
	m := MustModel(DefaultConfig())
	if m.UsesRendezvous(16 * 1024) {
		t.Error("a message exactly at the eager limit should be eager")
	}
	if !m.UsesRendezvous(16*1024 + 1) {
		t.Error("a message above the eager limit should use rendezvous")
	}
	if m.EagerLimit() != 16*1024 {
		t.Errorf("EagerLimit=%d want 16384", m.EagerLimit())
	}
}

func TestRendezvousHandshakeCost(t *testing.T) {
	m := MustModel(NoiselessConfig())
	got := m.RendezvousHandshake(nil)
	want := 2*30.0 + 10.0
	if got != want {
		t.Errorf("handshake=%g want %g", got, want)
	}
}

func TestPointToPointLatencyRendezvousVsEager(t *testing.T) {
	m := MustModel(NoiselessConfig())
	size := int64(64 * 1024)
	rdv := m.PointToPointLatency(size, false)
	eager := m.PointToPointLatency(size, true)
	if rdv <= eager {
		t.Errorf("rendezvous latency (%g) must exceed forced-eager latency (%g)", rdv, eager)
	}
	if rdv-eager != 2*30.0+10.0 {
		t.Errorf("latency gap=%g want exactly the handshake cost", rdv-eager)
	}
	small := int64(1024)
	if m.PointToPointLatency(small, false) != m.PointToPointLatency(small, true) {
		t.Error("below the eager limit the protocol flag must not matter")
	}
}

func TestSendRecvOverheadAccessors(t *testing.T) {
	m := MustModel(DefaultConfig())
	if m.SendOverhead() != 15 || m.RecvOverhead() != 10 {
		t.Errorf("overheads=%g/%g want 15/10", m.SendOverhead(), m.RecvOverhead())
	}
	if m.Config().LatencyUS != 30 {
		t.Errorf("Config() should round-trip, latency=%g", m.Config().LatencyUS)
	}
}

// Property: transfer time is always positive and monotone in expectation:
// the noiseless time for a larger message is never smaller.
func TestTransferTimeProperties(t *testing.T) {
	m := MustModel(NoiselessConfig())
	f := func(a, b uint32) bool {
		sa, sb := int64(a%(1<<20)), int64(b%(1<<20))
		ta, tb := m.TransferTime(nil, sa), m.TransferTime(nil, sb)
		if ta <= 0 || tb <= 0 {
			return false
		}
		if sa <= sb {
			return ta <= tb
		}
		return tb <= ta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
