package benchdefs

import (
	"reflect"
	"testing"
)

// TestStoreBenchScanMatchesBaseline pins what the store benchmark pair
// actually compares: the parallel projected scan and the
// load-then-iterate baseline must return the identical top-K ranking
// over the identical fixture, or the speedup ratio would be meaningless.
func TestStoreBenchScanMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the 1M-event store fixture")
	}
	env, err := StoreBench()
	if err != nil {
		t.Fatal(err)
	}
	if env.Events < 1_000_000 {
		t.Fatalf("fixture holds %d events, the headline claims ≥1M", env.Events)
	}
	scan, err := env.ScanTopK(0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := env.LoadIterateTopK()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scan, base) {
		t.Errorf("scan top-K %+v differs from load-iterate baseline %+v", scan, base)
	}
	sum, err := env.ScanProjectedSizeSum(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum <= 0 {
		t.Errorf("projected size sum = %d, want positive", sum)
	}
}
