package benchdefs

// The wire benchmark bodies: a real WireServer on a loopback TCP
// listener driven by a pipelined wire.Client — sockets included, unlike
// the httptest-backed serve-* entries, because the wire protocol's
// whole claim is that its framing and pipelining amortize the socket
// round-trips the HTTP path pays per request.
//
// The environment pins the markov1 strategy: the dpd model alone costs
// more per event than the entire wire round-trip, so a dpd-backed wire
// benchmark would measure the model and hide the protocol. The matching
// HTTP twin is NewServeBenchEnvFor("markov1"), committed alongside so
// the snapshots compare the two transports on equal model cost.

import (
	"context"
	"fmt"
	"net"

	"mpipredict/internal/serve"
	"mpipredict/internal/wire"
)

// WireBenchStrategy backs the wire benchmark sessions. markov1 is the
// cheapest useful model, leaving the protocol as the dominant cost.
const WireBenchStrategy = "markov1"

// wirePredictDepth is the predict pipeline depth of PredictWire: how
// many requests stay in flight so one response round-trip overlaps many
// requests.
const wirePredictDepth = 32

// WireBenchEnv is a warmed prediction service behind a live wire
// listener: one locked session, one pipelined client connection.
type WireBenchEnv struct {
	Registry *serve.Registry

	ws  *serve.WireServer
	ln  net.Listener
	c   *wire.Client
	ctx context.Context

	blockSenders []int64
	blockSizes   []int64
	seq          int64

	predSent uint64
	predRecv uint64
}

// NewWireBenchEnv starts the listener, dials the client and warms the
// session past the locking transient. Callers must Close it.
func NewWireBenchEnv() (*WireBenchEnv, error) {
	reg := serve.NewRegistry(serve.Config{Strategy: WireBenchStrategy})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ws := serve.NewWireServer(serve.NewServer(reg))
	go ws.Serve(ln)

	env := &WireBenchEnv{
		Registry:     reg,
		ws:           ws,
		ln:           ln,
		ctx:          context.Background(),
		blockSenders: make([]int64, ServeBenchBatch),
		blockSizes:   make([]int64, ServeBenchBatch),
	}
	for i := 0; i < ServeBenchBatch; i++ {
		env.blockSenders[i] = int64(i % ServeBenchPeriod)
		env.blockSizes[i] = int64(100 * (i % ServeBenchPeriod))
	}
	for i := 0; i < serveWarmEvents(); i++ {
		v := int64(i % ServeBenchPeriod)
		reg.Observe("bench", "s", serve.Event{Sender: v, Size: 100 * v})
	}

	env.c, err = wire.Dial(env.ctx, ln.Addr().String(), wire.ClientOptions{})
	if err != nil {
		ws.Close()
		return nil, err
	}
	return env, nil
}

// ObserveBlockWire pipelines one sequenced 64-event columnar observe
// frame — the wire twin of ObserveBlockHTTP. It only blocks when the
// client window is full.
func (e *WireBenchEnv) ObserveBlockWire() error {
	e.seq++
	return e.c.ObserveBlock(e.ctx, "bench", "s", "", e.seq, e.blockSenders, e.blockSizes)
}

// FlushObserves drains the observe pipeline; benchmark loops call it
// after their last iteration so every pipelined event is both delivered
// and inside the measured interval.
func (e *WireBenchEnv) FlushObserves() error {
	return e.c.Flush(e.ctx)
}

// PredictWire issues one +1..+5 predict query with wirePredictDepth
// requests kept in flight — the wire twin of PredictHTTP, pipelined the
// way a wire client is meant to query.
func (e *WireBenchEnv) PredictWire() error {
	for e.predSent-e.predRecv < wirePredictDepth {
		e.predSent++
		if err := e.c.SendPredict(e.ctx, e.predSent, "bench", "s", 5); err != nil {
			return err
		}
	}
	resp, err := e.c.NextPredict(e.ctx)
	if err != nil {
		return err
	}
	e.predRecv++
	if !resp.Found || len(resp.Forecasts) != 5 {
		return fmt.Errorf("predict response found=%v with %d forecasts, want 5", resp.Found, len(resp.Forecasts))
	}
	return nil
}

// Close tears down the client, the listener and every server
// connection.
func (e *WireBenchEnv) Close() {
	e.c.Close()
	e.ws.Close()
}
