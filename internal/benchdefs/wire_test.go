package benchdefs

// Smoke the wire benchmark environment the same way serve_bench_test.go
// smokes the HTTP bodies: everything benchjson records must run clean
// under `go test`, with a test naming what broke when it does not.

import "testing"

func TestWireBenchEnvBodiesRun(t *testing.T) {
	env, err := NewWireBenchEnv()
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	before := env.Registry.Stats().Events
	blocks := 3 * 64 / ServeBenchBatch
	for i := 0; i < blocks; i++ {
		if err := env.ObserveBlockWire(); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.FlushObserves(); err != nil {
		t.Fatal(err)
	}
	got := env.Registry.Stats().Events - before
	if got != int64(blocks*ServeBenchBatch) {
		t.Fatalf("wire observe delivered %d events, want %d", got, blocks*ServeBenchBatch)
	}

	// More predict calls than the pipeline depth, so the steady state
	// (one send, one receive per call) is exercised, not just the fill.
	for i := 0; i < wirePredictDepth+8; i++ {
		if err := env.PredictWire(); err != nil {
			t.Fatal(err)
		}
	}

	// The markov1 HTTP twin the snapshots compare against must run too.
	twin := NewServeBenchEnvFor(WireBenchStrategy)
	if err := twin.ObserveBlockHTTP(0); err != nil {
		t.Fatal(err)
	}
	if err := twin.PredictHTTP(); err != nil {
		t.Fatal(err)
	}
}
