package benchdefs

import (
	"testing"

	"mpipredict/internal/strategy"
)

// TestStrategyBenchEnv sanity-checks the per-strategy benchmark bodies:
// every registered strategy warms, observes and answers the +1..+5 query
// (the properties the benchmark loops assume), and unknown names error.
func TestStrategyBenchEnv(t *testing.T) {
	for _, name := range strategy.Names() {
		env, err := NewStrategyBenchEnv(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 3*ServeBenchPeriod; i++ {
			env.Observe()
		}
		if err := env.Predict(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := NewStrategyBenchEnv("no-such-strategy"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
