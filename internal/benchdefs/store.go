package benchdefs

// The columnar-store benchmark bodies: a ≥1M-event synthetic trace
// materialized once per process in both on-disk formats, then scanned
// through the tracestore engine (projected, parallel, constant memory)
// and through the trace.Load-then-iterate baseline the store replaces.
// The committed snapshots carry the store-scan-vs-load speedup the
// partitioned format exists to deliver.

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
)

// StoreBenchEventsPerLevel is the synthetic event count per stream level;
// both levels together put just over one million records in the trace.
const StoreBenchEventsPerLevel = 1 << 19

// storeBenchTopK is the ranking depth of the top-senders scan entries.
const storeBenchTopK = 10

// StoreBenchConfig is the synthetic stream behind the store benchmarks:
// the paper's period-18 rotation with mild physical reordering, seed 1.
func StoreBenchConfig() trace.SynthConfig {
	const period = 18
	pattern := make([]trace.SynthMessage, period)
	for i := range pattern {
		pattern[i] = trace.SynthMessage{Sender: i + 1, Size: int64(64 * (i + 1))}
	}
	return trace.SynthConfig{
		App:             "storebench",
		Procs:           period + 1,
		Receiver:        0,
		Pattern:         pattern,
		Events:          StoreBenchEventsPerLevel,
		SwapProbability: 0.05,
		Seed:            1,
	}
}

// StoreBenchEnv holds the once-per-process benchmark fixture: the same
// ≥1M-event synthetic trace on disk in both formats, plus an open store
// reader (safe for concurrent scans — it reads through an io.ReaderAt).
type StoreBenchEnv struct {
	StorePath string
	FlatPath  string
	Events    int64

	r *tracestore.Reader
}

var storeBench struct {
	once sync.Once
	env  *StoreBenchEnv
	err  error
}

// StoreBench builds (first call) or returns the shared store benchmark
// environment. The fixture directory lives until the process exits.
func StoreBench() (*StoreBenchEnv, error) {
	storeBench.once.Do(func() {
		storeBench.env, storeBench.err = newStoreBenchEnv()
	})
	return storeBench.env, storeBench.err
}

func newStoreBenchEnv() (*StoreBenchEnv, error) {
	dir, err := os.MkdirTemp("", "mpipredict-storebench-*")
	if err != nil {
		return nil, err
	}
	env := &StoreBenchEnv{
		StorePath: filepath.Join(dir, "bench.mpts"),
		FlatPath:  filepath.Join(dir, "bench.mpt"),
	}
	cfg := StoreBenchConfig()

	// One streamed pass writes both formats: constant memory, identical
	// record order, so the two files describe the same event stream.
	sf, err := os.Create(env.StorePath)
	if err != nil {
		return nil, err
	}
	ff, err := os.Create(env.FlatPath)
	if err != nil {
		sf.Close()
		return nil, err
	}
	sw, err := tracestore.NewWriter(sf, cfg.App, cfg.Procs)
	if err != nil {
		sf.Close()
		ff.Close()
		return nil, err
	}
	fw, err := trace.NewWriter(ff, cfg.App, cfg.Procs)
	if err != nil {
		sf.Close()
		ff.Close()
		return nil, err
	}
	n, err := stream.Copy(stream.Tee(stream.SinkTo(sw), stream.SinkTo(fw)), stream.SynthSource(cfg))
	if err != nil {
		sf.Close()
		ff.Close()
		return nil, err
	}
	env.Events = n
	for _, close := range []func() error{sw.Close, sf.Close, fw.Close, ff.Close} {
		if err := close(); err != nil {
			return nil, err
		}
	}

	env.r, err = tracestore.Open(env.StorePath)
	if err != nil {
		return nil, err
	}
	if env.r.Events() != n {
		return nil, fmt.Errorf("store indexes %d events, wrote %d", env.r.Events(), n)
	}
	return env, nil
}

// ScanTopK answers the top-K logical senders through the parallel store
// scanner (0 = GOMAXPROCS workers).
func (e *StoreBenchEnv) ScanTopK(workers int) ([]tracestore.SenderCount, error) {
	rows, _, _, err := e.r.TopKSenders(context.Background(), trace.Logical, storeBenchTopK, workers)
	return rows, err
}

// ScanProjectedSizeSum sums the size column alone: the narrowest useful
// projection, reading one block per partition instead of eight.
func (e *StoreBenchEnv) ScanProjectedSizeSum(workers int) (int64, error) {
	var sum int64
	_, err := e.r.Scan(context.Background(), tracestore.Query{
		Columns: tracestore.Cols(tracestore.ColSize),
		Workers: workers,
	}, func(pd *tracestore.PartitionData) error {
		for _, s := range pd.Size {
			sum += s
		}
		return nil
	})
	return sum, err
}

// LoadIterateTopK is the pre-store baseline the scan entries are measured
// against: materialize the whole trace with trace.Load, then iterate.
func (e *StoreBenchEnv) LoadIterateTopK() ([]tracestore.SenderCount, error) {
	tr, err := trace.Load(e.FlatPath)
	if err != nil {
		return nil, err
	}
	counts := make(map[int64]int64)
	for i := range tr.Records {
		if tr.Records[i].Level == trace.Logical {
			counts[int64(tr.Records[i].Sender)]++
		}
	}
	rows := make([]tracestore.SenderCount, 0, len(counts))
	for s, n := range counts {
		rows = append(rows, tracestore.SenderCount{Sender: s, Events: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Events != rows[j].Events {
			return rows[i].Events > rows[j].Events
		}
		return rows[i].Sender < rows[j].Sender
	})
	if len(rows) > storeBenchTopK {
		rows = rows[:storeBenchTopK]
	}
	return rows, nil
}

// WriteStore streams the synthetic event stream through the columnar
// encoder into io.Discard: pure encode cost, no filesystem noise.
func (e *StoreBenchEnv) WriteStore() (int64, error) {
	cfg := StoreBenchConfig()
	w, err := tracestore.NewWriter(io.Discard, cfg.App, cfg.Procs)
	if err != nil {
		return 0, err
	}
	n, err := stream.Copy(stream.SinkTo(w), stream.SynthSource(cfg))
	if err != nil {
		return 0, err
	}
	return n, w.Close()
}

// ReportEventsThroughput reports events/s for benchmarks whose every
// iteration processes eventsPerOp events.
func ReportEventsThroughput(b *testing.B, eventsPerOp int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*float64(eventsPerOp)/s, "events/s")
	}
}
