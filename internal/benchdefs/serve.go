package benchdefs

// The serve benchmark bodies: a standing prediction service with one
// locked session, driven through the real HTTP handler (httptest
// recorders, no sockets) or the registry directly. Shared by
// internal/serve/bench_test.go and cmd/benchjson so the committed
// BENCH_<n>.json throughput numbers measure exactly what
// `go test -bench .` measures.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/serve"
)

// ServeBenchPeriod is the sender/size period of the benchmark session's
// stream — 18, the BT.9 iteration pattern length the paper's Figure 1
// detects.
const ServeBenchPeriod = 18

// ServeBenchBatch is the events-per-request of the batched observe
// benchmark, matching the replay ingester's default.
const ServeBenchBatch = 64

// ServeBenchEnv is a warmed prediction service: one session, locked onto
// a periodic stream, ready for steady-state observe/predict measurement.
type ServeBenchEnv struct {
	Registry *serve.Registry
	Handler  http.Handler

	observeBodies [ServeBenchPeriod][]byte
	batchBody     []byte
	columnarBody  []byte
	blockSenders  []int64
	blockSizes    []int64
	predictURL    string
}

// NewServeBenchEnv builds the environment and warms the session past the
// locking transient, so benchmarks measure the locked steady state.
func NewServeBenchEnv() *ServeBenchEnv {
	return NewServeBenchEnvFor("")
}

// NewServeBenchEnvFor is NewServeBenchEnv with an explicit default
// prediction strategy ("" = the registry default, dpd). The wire-vs-HTTP
// comparison benchmarks pin a cheap strategy so they measure protocol
// cost rather than model cost; NewServeBenchEnvFor(strategy) provides
// the matching HTTP twin.
func NewServeBenchEnvFor(strategy string) *ServeBenchEnv {
	reg := serve.NewRegistry(serve.Config{Strategy: strategy})
	env := &ServeBenchEnv{
		Registry:   reg,
		Handler:    serve.NewServer(reg),
		predictURL: "/v1/predict?tenant=bench&stream=s&k=5",
	}
	for i := range env.observeBodies {
		env.observeBodies[i] = []byte(fmt.Sprintf(
			`{"tenant":"bench","stream":"s","events":[{"sender":%d,"size":%d}]}`,
			i%ServeBenchPeriod, 100*(i%ServeBenchPeriod)))
	}
	var buf bytes.Buffer
	buf.WriteString(`{"tenant":"bench","stream":"s","events":[`)
	for i := 0; i < ServeBenchBatch; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"sender":%d,"size":%d}`, i%ServeBenchPeriod, 100*(i%ServeBenchPeriod))
	}
	buf.WriteString(`]}`)
	env.batchBody = buf.Bytes()

	// The same 64 events in the columnar shape the block pipeline posts.
	env.blockSenders = make([]int64, ServeBenchBatch)
	env.blockSizes = make([]int64, ServeBenchBatch)
	var cbuf bytes.Buffer
	cbuf.WriteString(`{"tenant":"bench","stream":"s","senders":[`)
	for i := 0; i < ServeBenchBatch; i++ {
		env.blockSenders[i] = int64(i % ServeBenchPeriod)
		env.blockSizes[i] = int64(100 * (i % ServeBenchPeriod))
		if i > 0 {
			cbuf.WriteByte(',')
		}
		fmt.Fprintf(&cbuf, "%d", env.blockSenders[i])
	}
	cbuf.WriteString(`],"sizes":[`)
	for i := 0; i < ServeBenchBatch; i++ {
		if i > 0 {
			cbuf.WriteByte(',')
		}
		fmt.Fprintf(&cbuf, "%d", env.blockSizes[i])
	}
	cbuf.WriteString(`]}`)
	env.columnarBody = cbuf.Bytes()

	// Warm for a whole number of pattern repetitions, so a benchmark loop
	// starting at event 0 continues the stream in phase and the session
	// stays locked throughout the measurement.
	for i := 0; i < serveWarmEvents(); i++ {
		env.ObserveDirect(i)
	}
	return env
}

// serveWarmEvents is the warm-up length of the serving benchmarks: four
// detection windows, rounded down to a whole number of pattern periods
// so a benchmark loop starting at event 0 continues the stream in phase.
func serveWarmEvents() int {
	warm := 4 * core.DefaultConfig().WindowSize
	return warm - warm%ServeBenchPeriod
}

// ObserveDirect feeds event i of the periodic stream straight into the
// registry (the under-HTTP hot path).
func (e *ServeBenchEnv) ObserveDirect(i int) {
	v := int64(i % ServeBenchPeriod)
	e.Registry.Observe("bench", "s", serve.Event{Sender: v, Size: 100 * v})
}

// ObserveHTTP posts one single-event observe request through the handler.
func (e *ServeBenchEnv) ObserveHTTP(i int) error {
	return e.post(e.observeBodies[i%ServeBenchPeriod])
}

// ObserveBatchHTTP posts one 64-event observe request through the
// handler. The batch restarts the pattern each request, which keeps the
// stream periodic (64 is not a multiple of 18, so phase bookkeeping in the
// body would otherwise be needed; the session relocks once and stays
// locked).
func (e *ServeBenchEnv) ObserveBatchHTTP(int) error {
	return e.post(e.batchBody)
}

// ObserveBlockHTTP posts the 64-event batch in columnar form — the body
// shape the block pipeline's replay ingester emits, landing on the
// registry's ObserveBlock fast path.
func (e *ServeBenchEnv) ObserveBlockHTTP(int) error {
	return e.post(e.columnarBody)
}

// ObserveBlockDirect feeds the 64-event columns straight into the
// registry — the under-HTTP block fast path (0 allocs per block).
func (e *ServeBenchEnv) ObserveBlockDirect(int) error {
	_, err := e.Registry.ObserveBlock("bench", "s", e.blockSenders, e.blockSizes)
	return err
}

func (e *ServeBenchEnv) post(body []byte) error {
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	e.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("observe returned %d: %s", rec.Code, rec.Body.String())
	}
	return nil
}

// PredictHTTP issues one +1..+5 predict query through the handler.
func (e *ServeBenchEnv) PredictHTTP() error {
	req := httptest.NewRequest(http.MethodGet, e.predictURL, nil)
	rec := httptest.NewRecorder()
	e.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("predict returned %d: %s", rec.Code, rec.Body.String())
	}
	io.Copy(io.Discard, rec.Body)
	return nil
}

// ReportThroughput attaches an ops/s metric derived from the elapsed
// time, so the JSON snapshots carry throughput alongside ns/op.
func ReportThroughput(b *testing.B) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "ops/s")
	}
}

// ReportBatchThroughput reports events/s for the 64-event batch bench.
func ReportBatchThroughput(b *testing.B) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*ServeBenchBatch)/s, "events/s")
	}
}
