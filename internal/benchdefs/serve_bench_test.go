package benchdefs

// Smoke the serving and gateway benchmark environments: every body the
// committed BENCH_<n>.json snapshots measure must actually run clean, or
// benchjson fails at recording time with no test having said why.

import "testing"

func TestServeBenchEnvBodiesRun(t *testing.T) {
	env := NewServeBenchEnv()
	if env.Registry.Len() != 1 {
		t.Fatalf("warmed env holds %d sessions, want 1", env.Registry.Len())
	}
	for i := 0; i < 2*ServeBenchPeriod; i++ {
		env.ObserveDirect(i)
		if err := env.ObserveHTTP(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.ObserveBatchHTTP(0); err != nil {
		t.Fatal(err)
	}
	if err := env.ObserveBlockHTTP(0); err != nil {
		t.Fatal(err)
	}
	if err := env.ObserveBlockDirect(0); err != nil {
		t.Fatal(err)
	}
	if err := env.PredictHTTP(); err != nil {
		t.Fatal(err)
	}
}

func TestGatewayBenchEnvBodiesRun(t *testing.T) {
	env, err := NewGatewayBenchEnv()
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	for i := 0; i < ServeBenchPeriod; i++ {
		if err := env.ObserveHTTP(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.ObserveBatchHTTP(0); err != nil {
		t.Fatal(err)
	}
	if err := env.PredictHTTP(); err != nil {
		t.Fatal(err)
	}
}

func TestReportThroughputHelpers(t *testing.T) {
	// Run as real (tiny) benchmarks so b.Elapsed is meaningful and the
	// helpers' metric attachment executes.
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
		ReportThroughput(b)
		ReportBatchThroughput(b)
	})
	if _, ok := r.Extra["ops/s"]; !ok {
		t.Fatalf("ops/s metric missing: %v", r.Extra)
	}
	if _, ok := r.Extra["events/s"]; !ok {
		t.Fatalf("events/s metric missing: %v", r.Extra)
	}
}
