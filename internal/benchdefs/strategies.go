package benchdefs

// The per-strategy benchmark bodies: steady-state observe and predict
// throughput of every registered prediction strategy on the BT.9-shaped
// periodic stream, dispatched through the Strategy interface exactly as
// the serving and evaluation layers dispatch it. Shared by the root
// bench_test.go and cmd/benchjson so the committed BENCH_<n>.json
// per-strategy numbers measure what `go test -bench .` measures.

import (
	"fmt"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

// StrategyBenchEnv is one warmed strategy ready for steady-state
// measurement: trained past any learning transient on a period-18 stream
// (ServeBenchPeriod, the BT.9 iteration pattern of Figure 1).
type StrategyBenchEnv struct {
	S strategy.Strategy

	i   int
	buf []core.Prediction
}

// NewStrategyBenchEnv builds and warms the named strategy.
func NewStrategyBenchEnv(name string) (*StrategyBenchEnv, error) {
	s, err := strategy.New(name, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	env := &StrategyBenchEnv{S: s, buf: make([]core.Prediction, 0, 5)}
	warm := 4 * core.DefaultConfig().WindowSize
	warm -= warm % ServeBenchPeriod
	for i := 0; i < warm; i++ {
		env.Observe()
	}
	return env, nil
}

// Observe feeds the next event of the periodic stream.
func (e *StrategyBenchEnv) Observe() {
	e.S.Observe(int64(e.i % ServeBenchPeriod))
	e.i++
}

// Predict issues one +1..+5 series query into the reused buffer and
// verifies the strategy answered (every registered strategy predicts on
// this stream once warmed).
func (e *StrategyBenchEnv) Predict() error {
	e.buf = e.S.PredictSeriesInto(e.buf[:0], 5)
	if len(e.buf) != 5 {
		return fmt.Errorf("strategy %s returned %d predictions, want 5", e.S.Desc().Name, len(e.buf))
	}
	return nil
}
