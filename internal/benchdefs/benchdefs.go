// Package benchdefs defines the headline benchmark bodies shared by the
// root benchmark harness (bench_test.go) and cmd/benchjson. Both consumers
// report exactly these option sets and metric computations, so the
// committed BENCH_<n>.json trajectory always measures what
// `go test -bench .` measures and the two cannot drift.
package benchdefs

import (
	"mpipredict/internal/evalx"
	"mpipredict/internal/simnet"
)

// Opts is the default experiment configuration of the headline
// benchmarks: the paper's seed-1 run over the parallel runner (Parallelism
// 0 = GOMAXPROCS) and the shared trace cache.
func Opts() evalx.Options {
	return evalx.Options{Net: simnet.DefaultConfig(), Seed: 1}
}

// ColdSerialOpts disables both performance layers (worker pool and trace
// cache); benchmarks using it measure what the seed implementation did.
func ColdSerialOpts() evalx.Options {
	opts := Opts()
	opts.Parallelism = 1
	opts.NoCache = true
	return opts
}

// Table1Metrics regenerates Table 1 and returns its fidelity metrics.
func Table1Metrics(opts evalx.Options) (map[string]float64, error) {
	rows, err := evalx.Table1(opts)
	if err != nil {
		return nil, err
	}
	return map[string]float64{
		"p2p-relative-error": evalx.Table1P2PRelativeError(rows),
	}, nil
}

// Figure1Metrics regenerates Figure 1 and returns the detected periods
// (the paper reports 18 for both streams).
func Figure1Metrics(opts evalx.Options) (map[string]float64, error) {
	fig, err := evalx.Figure1(opts)
	if err != nil {
		return nil, err
	}
	return map[string]float64{
		"sender-period": float64(fig.SenderPeriod),
		"size-period":   float64(fig.SizePeriod),
	}, nil
}

// Figure2Metrics regenerates Figure 2 and returns the physical-reordering
// percentage.
func Figure2Metrics(opts evalx.Options) (map[string]float64, error) {
	fig, err := evalx.Figure2(opts)
	if err != nil {
		return nil, err
	}
	return map[string]float64{
		"reordered-%": fig.MismatchPercent,
	}, nil
}

// Figures34 runs the paper grid sweep behind Figures 3 and 4.
func Figures34(opts evalx.Options) (logical, physical evalx.FigureResult, err error) {
	return evalx.NewRunner(opts.Parallelism).Figures34(opts)
}

// Figure3LogicalMetrics derives the Figure 3 headline metrics from the
// logical figure data.
func Figure3LogicalMetrics(logical evalx.FigureResult) map[string]float64 {
	return map[string]float64{
		"sender-mean-%": 100 * logical.MeanAccuracy("", evalx.SenderStream),
		"size-mean-%":   100 * logical.MeanAccuracy("", evalx.SizeStream),
		"sender-min-%":  100 * logical.MinAccuracy("", evalx.SenderStream),
	}
}

// Figure4PhysicalMetrics derives the per-application Figure 4 metrics,
// which expose the ordering the paper describes (LU/CG/Sweep3D stay
// predictable, BT degrades, IS is the hardest).
func Figure4PhysicalMetrics(physical evalx.FigureResult) map[string]float64 {
	out := make(map[string]float64, 5)
	for _, app := range []string{"bt", "cg", "lu", "is", "sweep3d"} {
		out[app+"-sender-%"] = 100 * physical.MeanAccuracy(app, evalx.SenderStream)
	}
	return out
}
