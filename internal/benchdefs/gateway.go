package benchdefs

// The gateway benchmark bodies: a 3-backend cluster behind one
// mpigateway handler, measuring the full client→gateway→backend hop for
// the keyed hot paths (observe forward, predict forward). Backends are
// real HTTP servers — the gateway talks to them over sockets exactly as
// in production — while the gateway itself is driven through httptest
// recorders, so the numbers isolate the routing hop rather than a
// client's connection handling. Shared by the root bench_test.go and
// cmd/benchjson.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"mpipredict/internal/cluster"
	"mpipredict/internal/serve"
)

// GatewayBenchBackends is the cluster size of the gateway benchmarks —
// three, the smallest fleet where routing is non-trivial.
const GatewayBenchBackends = 3

// GatewayBenchEnv is a warmed 3-node cluster: one session locked onto
// the same periodic stream ServeBenchEnv uses, reached through the
// gateway's forwarding path.
type GatewayBenchEnv struct {
	Gateway *cluster.Gateway

	backends      []*httptest.Server
	observeBodies [ServeBenchPeriod][]byte
	batchBody     []byte
	predictURL    string
}

// NewGatewayBenchEnv builds the cluster, wires the gateway over it and
// warms the benchmark session past the locking transient. Callers must
// Close the environment to release the backend listeners.
func NewGatewayBenchEnv() (*GatewayBenchEnv, error) {
	env := &GatewayBenchEnv{
		predictURL: "/v1/predict?tenant=bench&stream=s&k=5",
	}
	urls := make([]string, GatewayBenchBackends)
	for i := range urls {
		ts := httptest.NewServer(serve.NewServer(serve.NewRegistry(serve.Config{})))
		env.backends = append(env.backends, ts)
		urls[i] = ts.URL
	}
	shards, err := cluster.NewShardMap(urls)
	if err != nil {
		env.Close()
		return nil, err
	}
	env.Gateway = cluster.NewGateway(shards, cluster.Options{})

	for i := range env.observeBodies {
		env.observeBodies[i] = []byte(fmt.Sprintf(
			`{"tenant":"bench","stream":"s","events":[{"sender":%d,"size":%d}]}`,
			i%ServeBenchPeriod, 100*(i%ServeBenchPeriod)))
	}
	var buf bytes.Buffer
	buf.WriteString(`{"tenant":"bench","stream":"s","events":[`)
	for i := 0; i < ServeBenchBatch; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"sender":%d,"size":%d}`, i%ServeBenchPeriod, 100*(i%ServeBenchPeriod))
	}
	buf.WriteString(`]}`)
	env.batchBody = buf.Bytes()

	// Warm through the gateway itself: the forwarding path is what the
	// benchmark measures, so its connection pool should be hot too.
	warm := serveWarmEvents()
	for i := 0; i < warm; i++ {
		if err := env.ObserveHTTP(i); err != nil {
			env.Close()
			return nil, err
		}
	}
	return env, nil
}

// Close shuts down the backend servers.
func (e *GatewayBenchEnv) Close() {
	for _, ts := range e.backends {
		ts.Close()
	}
}

// ObserveHTTP posts one single-event observe through the gateway, which
// forwards it to the session's owning backend.
func (e *GatewayBenchEnv) ObserveHTTP(i int) error {
	return e.post(e.observeBodies[i%ServeBenchPeriod])
}

// ObserveBatchHTTP posts one 64-event observe through the gateway.
func (e *GatewayBenchEnv) ObserveBatchHTTP(int) error {
	return e.post(e.batchBody)
}

func (e *GatewayBenchEnv) post(body []byte) error {
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	e.Gateway.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("gateway observe returned %d: %s", rec.Code, rec.Body.String())
	}
	return nil
}

// PredictHTTP issues one +1..+5 predict query through the gateway.
func (e *GatewayBenchEnv) PredictHTTP() error {
	req := httptest.NewRequest(http.MethodGet, e.predictURL, nil)
	rec := httptest.NewRecorder()
	e.Gateway.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("gateway predict returned %d: %s", rec.Code, rec.Body.String())
	}
	io.Copy(io.Discard, rec.Body)
	return nil
}
