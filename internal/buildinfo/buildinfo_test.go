package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetIsStableAndPopulated(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get is not stable: %+v vs %+v", a, b)
	}
	if a.Version == "" || a.GoVersion == "" {
		t.Fatalf("Get returned empty identity fields: %+v", a)
	}
}

func TestStringNeverEmptyFields(t *testing.T) {
	s := (Info{Version: "dev", GoVersion: "go1.24"}).String()
	if !strings.Contains(s, "dev") || !strings.Contains(s, "unknown") || !strings.Contains(s, "go1.24") {
		t.Fatalf("String() = %q", s)
	}
	dirty := (Info{Version: "v1", Commit: "abc", GoVersion: "go1.24", Dirty: true}).String()
	if !strings.Contains(dirty, "abc+dirty") {
		t.Fatalf("dirty String() = %q", dirty)
	}
}

func TestSameIgnoresToolchain(t *testing.T) {
	a := Info{Version: "v1", Commit: "abc", GoVersion: "go1.24"}
	b := Info{Version: "v1", Commit: "abc", GoVersion: "go1.25"}
	if !a.Same(b) {
		t.Fatal("toolchain-only difference must compare equal")
	}
	if a.Same(Info{Version: "v1", Commit: "def", GoVersion: "go1.24"}) {
		t.Fatal("commit difference must not compare equal")
	}
}

func TestInfoJSONShape(t *testing.T) {
	data, err := json.Marshal(Info{Version: "v1", Commit: "abc", GoVersion: "go1.24"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"version", "commit", "go_version"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("JSON misses %q: %s", k, data)
		}
	}
}

func TestCLIVersionLeadsWithCommand(t *testing.T) {
	if s := CLIVersion("mpigateway"); !strings.HasPrefix(s, "mpigateway ") {
		t.Fatalf("CLIVersion = %q", s)
	}
}
