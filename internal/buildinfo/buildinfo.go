// Package buildinfo is the single build-identity stamp shared by every
// binary in the module. A cluster deployment runs many cooperating
// processes (N mpipredictd backends behind an mpigateway), and skewed
// builds across them are a classic source of silent divergence — a
// snapshot format one daemon writes and another misreads, a strategy
// registered in one binary and unknown to the next. Stamping every
// binary from one package lets each CLI answer -version and lets the
// gateway compare its backends' builds at startup instead of discovering
// the skew from a corrupted migration.
//
// Version and Commit are overridable at link time:
//
//	go build -ldflags "-X mpipredict/internal/buildinfo.Version=v1.2.0 \
//	                   -X mpipredict/internal/buildinfo.Commit=abc1234" ./...
//
// When they are not set, Commit falls back to the VCS revision Go embeds
// in module builds (debug.ReadBuildInfo), so even plain `go build`
// binaries carry a usable identity.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Version is the human-facing release name. "dev" unless overridden at
// link time.
var Version = "dev"

// Commit is the source revision the binary was built from. Empty unless
// overridden at link time; Get falls back to the embedded VCS revision.
var Commit = ""

// Info is the JSON shape of one binary's build identity, served under
// the "buildinfo" key on /debug/vars and compared by the gateway's
// startup uniformity check.
type Info struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// String renders the identity the way the CLIs print it for -version.
func (i Info) String() string {
	commit := i.Commit
	if commit == "" {
		commit = "unknown"
	}
	if i.Dirty {
		commit += "+dirty"
	}
	return fmt.Sprintf("%s (commit %s, %s)", i.Version, commit, i.GoVersion)
}

// Same reports whether two binaries are interchangeable cluster members:
// identical version and commit. Go toolchain version is deliberately not
// part of the comparison — rebuilding one backend with a newer toolchain
// does not change any wire or snapshot format this module defines.
func (i Info) Same(o Info) bool {
	return i.Version == o.Version && i.Commit == o.Commit
}

var (
	once   sync.Once
	cached Info
)

// Get returns this binary's build identity. The VCS fallback is read
// once; the result never changes over a process lifetime.
func Get() Info {
	once.Do(func() {
		cached = Info{Version: Version, Commit: Commit, GoVersion: runtime.Version()}
		if cached.Commit != "" {
			return
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Commit = s.Value
			case "vcs.modified":
				cached.Dirty = s.Value == "true"
			}
		}
	})
	return cached
}

// CLIVersion formats the one-line -version output of a named command.
func CLIVersion(cmd string) string {
	return fmt.Sprintf("%s %s", cmd, Get())
}
