package evalx

import (
	"fmt"

	"mpipredict/internal/core"
	"mpipredict/internal/predictor"
	"mpipredict/internal/simnet"
	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

// StreamKind names the two streams the paper predicts per receiver.
type StreamKind string

const (
	// SenderStream is the sequence of sending ranks.
	SenderStream StreamKind = "sender"
	// SizeStream is the sequence of message sizes.
	SizeStream StreamKind = "size"
)

// Options control a workload prediction experiment.
type Options struct {
	// Net is the interconnect configuration; the zero value selects
	// simnet.DefaultConfig (noise on), which is what Figures 3 and 4 use:
	// the logical stream is unaffected by noise while the physical stream
	// picks it up.
	Net simnet.Config
	// Seed drives the simulation.
	Seed int64
	// Horizons is the number of future values to predict (default 5).
	Horizons int
	// Predictor builds the predictor to evaluate (default: the DPD).
	Predictor PredictorFactory
	// Strategy selects the predictor by registered strategy name
	// (internal/strategy: "dpd", "lastvalue", "markov1", ...). It is the
	// declarative sibling of Predictor — the CLIs thread their -predictor
	// flags through it — and is ignored when Predictor is set. Empty means
	// the paper's DPD; unknown names fail the experiment.
	Strategy string
	// Iterations overrides the workload's outer iteration count (0 keeps
	// the class-A default). The figure experiments keep the default; the
	// unit tests shrink it.
	Iterations int
	// Parallelism bounds the number of experiments evaluated concurrently
	// by the sweep entry points (Table1, SweepAll, AccuracyFigure). Zero
	// selects GOMAXPROCS; one reproduces the serial behaviour. Results
	// are identical for every setting — only wall-clock time changes.
	Parallelism int
	// NoCache bypasses the shared trace cache, forcing every experiment
	// to re-simulate its workload. Results are unaffected (simulations
	// are deterministic); it exists for cold-path measurements and for
	// tests that must exercise the full pipeline.
	NoCache bool
	// Cache, when non-nil, supplies simulated traces instead of the
	// process-wide tracecache.Shared. The CLIs pass a disk-backed cache
	// (tracecache.NewDisk) here so the evaluation grid survives process
	// restarts. Ignored when NoCache is set.
	Cache *tracecache.Cache
}

func (o Options) withDefaults() Options {
	if o.Net == (simnet.Config{}) {
		o.Net = simnet.DefaultConfig()
	}
	if o.Horizons == 0 {
		o.Horizons = DefaultHorizons
	}
	return o
}

// factory resolves the predictor factory the options select — an explicit
// Predictor wins, then a named Strategy (built fresh per evaluated stream
// through the strategy registry), then the paper's DPD — along with the
// predictor name for Result.Strategy. Only the explicit-Predictor branch
// probes an instance for its name; the named branches know it statically.
func (o Options) factory() (PredictorFactory, string, error) {
	if o.Predictor != nil {
		return o.Predictor, o.Predictor().Name(), nil
	}
	if o.Strategy != "" {
		if !strategy.Known(o.Strategy) {
			return nil, "", fmt.Errorf("evalx: unknown strategy %q (known: %v)", o.Strategy, strategy.Names())
		}
		name := o.Strategy
		return func() predictor.Predictor {
			s, err := strategy.New(name, core.DefaultConfig())
			if err != nil {
				// Known was checked above; a failure here is a programming
				// error in the registry.
				panic(err)
			}
			return predictor.FromStrategy(s)
		}, name, nil
	}
	return DefaultPredictor, strategy.Default, nil
}

// Result is the outcome of one (workload, process count) experiment: the
// accuracy of sender and size prediction at both instrumentation levels,
// plus the Table 1 characterisation of the traced receiver.
type Result struct {
	App      string
	Procs    int
	Receiver int

	// Strategy is the name of the predictor that produced the accuracy
	// numbers (the evaluated predictor's own Name; "dpd" by default).
	Strategy string

	// Characterisation of the receiver's logical stream (Table 1 row).
	Characterization trace.Characterization

	// Accuracy indexed by level and stream kind.
	Sender map[trace.Level]StreamAccuracy
	Size   map[trace.Level]StreamAccuracy

	// SetAccuracy is the order-free accuracy of the next-5 sender set at
	// the physical level (Section 5.3).
	SenderSetAccuracy float64

	// Reordering is the fraction of positions at which the physical
	// sender stream differs from the logical one (Figure 2's effect).
	Reordering float64
}

// getTrace simulates a workload through the given cache, or directly when
// cache is nil.
func getTrace(rc workloads.RunConfig, cache *tracecache.Cache) (*trace.Trace, error) {
	if cache == nil {
		return workloads.Run(rc)
	}
	return cache.Get(rc)
}

// optsCache resolves the cache implied by the options alone: nil when
// caching is disabled, the explicitly supplied cache when there is one,
// the shared cache otherwise.
func optsCache(opts Options) *tracecache.Cache {
	if opts.NoCache {
		return nil
	}
	if opts.Cache != nil {
		return opts.Cache
	}
	return tracecache.Shared
}

// RunExperiment simulates one workload instance and evaluates prediction
// accuracy on the streams of the workload's typical receiver (the rank the
// paper traces). Callers that need a different receiver can run the
// workload themselves and use EvaluateTrace.
func RunExperiment(spec workloads.Spec, opts Options) (Result, error) {
	return runExperimentCached(spec, opts.withDefaults(), optsCache(opts))
}

// runExperimentCached is RunExperiment with an explicit trace source; the
// parallel Runner passes its own cache.
func runExperimentCached(spec workloads.Spec, opts Options, cache *tracecache.Cache) (Result, error) {
	if err := workloads.Validate(spec); err != nil {
		return Result{}, err
	}
	if opts.Iterations > 0 {
		spec.Iterations = opts.Iterations
	}
	receiver, err := workloads.TypicalReceiver(spec.Name, spec.Procs)
	if err != nil {
		return Result{}, err
	}

	tr, err := getTrace(workloads.RunConfig{
		Spec:           spec,
		Net:            opts.Net,
		Seed:           opts.Seed,
		TraceReceivers: []int{receiver},
	}, cache)
	if err != nil {
		return Result{}, err
	}
	return EvaluateTrace(tr, receiver, opts)
}

// EvaluateTrace evaluates prediction accuracy on an existing trace for the
// given receiver. It is used directly by tools that load traces from disk.
// It is a thin wrapper over the streaming evaluator: the trace is played
// through EvaluateSource block by block, so the in-memory and streamed
// paths cannot drift apart (the golden corpus tests pin them identical).
func EvaluateTrace(tr *trace.Trace, receiver int, opts Options) (Result, error) {
	return EvaluateSource(func() (stream.Source, error) { return stream.TraceSource(tr), nil }, receiver, opts)
}

// Accuracy returns the accuracy for the requested stream kind, level and
// horizon.
func (r Result) Accuracy(kind StreamKind, level trace.Level, horizon int) float64 {
	switch kind {
	case SenderStream:
		return r.Sender[level].Accuracy(horizon)
	case SizeStream:
		return r.Size[level].Accuracy(horizon)
	default:
		return 0
	}
}
