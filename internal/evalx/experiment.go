package evalx

import (
	"fmt"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// StreamKind names the two streams the paper predicts per receiver.
type StreamKind string

const (
	// SenderStream is the sequence of sending ranks.
	SenderStream StreamKind = "sender"
	// SizeStream is the sequence of message sizes.
	SizeStream StreamKind = "size"
)

// Options control a workload prediction experiment.
type Options struct {
	// Net is the interconnect configuration; the zero value selects
	// simnet.DefaultConfig (noise on), which is what Figures 3 and 4 use:
	// the logical stream is unaffected by noise while the physical stream
	// picks it up.
	Net simnet.Config
	// Seed drives the simulation.
	Seed int64
	// Horizons is the number of future values to predict (default 5).
	Horizons int
	// Predictor builds the predictor to evaluate (default: the DPD).
	Predictor PredictorFactory
	// Iterations overrides the workload's outer iteration count (0 keeps
	// the class-A default). The figure experiments keep the default; the
	// unit tests shrink it.
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Net == (simnet.Config{}) {
		o.Net = simnet.DefaultConfig()
	}
	if o.Horizons == 0 {
		o.Horizons = DefaultHorizons
	}
	if o.Predictor == nil {
		o.Predictor = DefaultPredictor
	}
	return o
}

// Result is the outcome of one (workload, process count) experiment: the
// accuracy of sender and size prediction at both instrumentation levels,
// plus the Table 1 characterisation of the traced receiver.
type Result struct {
	App      string
	Procs    int
	Receiver int

	// Characterisation of the receiver's logical stream (Table 1 row).
	Characterization trace.Characterization

	// Accuracy indexed by level and stream kind.
	Sender map[trace.Level]StreamAccuracy
	Size   map[trace.Level]StreamAccuracy

	// SetAccuracy is the order-free accuracy of the next-5 sender set at
	// the physical level (Section 5.3).
	SenderSetAccuracy float64

	// Reordering is the fraction of positions at which the physical
	// sender stream differs from the logical one (Figure 2's effect).
	Reordering float64
}

// RunExperiment simulates one workload instance and evaluates prediction
// accuracy on the streams of the workload's typical receiver (the rank the
// paper traces). Callers that need a different receiver can run the
// workload themselves and use EvaluateTrace.
func RunExperiment(spec workloads.Spec, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := workloads.Validate(spec); err != nil {
		return Result{}, err
	}
	if opts.Iterations > 0 {
		spec.Iterations = opts.Iterations
	}
	receiver, err := workloads.TypicalReceiver(spec.Name, spec.Procs)
	if err != nil {
		return Result{}, err
	}

	tr, err := workloads.Run(workloads.RunConfig{
		Spec:           spec,
		Net:            opts.Net,
		Seed:           opts.Seed,
		TraceReceivers: []int{receiver},
	})
	if err != nil {
		return Result{}, err
	}
	return EvaluateTrace(tr, receiver, opts)
}

// EvaluateTrace evaluates prediction accuracy on an existing trace for the
// given receiver. It is used directly by tools that load traces from disk.
func EvaluateTrace(tr *trace.Trace, receiver int, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{
		App:              tr.App,
		Procs:            tr.Procs,
		Receiver:         receiver,
		Characterization: tr.Characterize(receiver, trace.Logical, 0.99),
		Sender:           make(map[trace.Level]StreamAccuracy),
		Size:             make(map[trace.Level]StreamAccuracy),
	}
	logicalSenders := tr.SenderStream(receiver, trace.Logical)
	if len(logicalSenders) == 0 {
		return Result{}, fmt.Errorf("evalx: receiver %d has no logical records in trace %q", receiver, tr.App)
	}
	for _, level := range []trace.Level{trace.Logical, trace.Physical} {
		res.Sender[level] = EvaluateStream(tr.SenderStream(receiver, level), opts.Predictor, opts.Horizons)
		res.Size[level] = EvaluateStream(tr.SizeStream(receiver, level), opts.Predictor, opts.Horizons)
	}
	res.SenderSetAccuracy = SetAccuracy(tr.SenderStream(receiver, trace.Physical), opts.Predictor, opts.Horizons)
	res.Reordering = MismatchFraction(
		tr.SenderStream(receiver, trace.Logical),
		tr.SenderStream(receiver, trace.Physical),
	)
	return res, nil
}

// Accuracy returns the accuracy for the requested stream kind, level and
// horizon.
func (r Result) Accuracy(kind StreamKind, level trace.Level, horizon int) float64 {
	switch kind {
	case SenderStream:
		return r.Sender[level].Accuracy(horizon)
	case SizeStream:
		return r.Size[level].Accuracy(horizon)
	default:
		return 0
	}
}
