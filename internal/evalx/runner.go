package evalx

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

// Runner executes prediction experiments over a bounded worker pool. The
// experiment grid of the paper — every (workload, process count) pair,
// evaluated at two instrumentation levels — is embarrassingly parallel:
// each cell simulates and evaluates independently, and all shared state
// (the trace cache, the traces themselves) is concurrency-safe. Results
// are always delivered in grid order, so the produced tables and figures
// are byte-identical regardless of the worker count.
type Runner struct {
	// Parallelism bounds the number of concurrently running experiments.
	// Zero (and negative) selects GOMAXPROCS. One reproduces the serial
	// behaviour exactly.
	Parallelism int
	// Cache supplies simulated traces. Nil selects the process-wide
	// tracecache.Shared, which lets Table 1, Figures 3/4 and the
	// scalability replays share simulations.
	Cache *tracecache.Cache
}

// NewRunner returns a Runner with the given parallelism (0 = GOMAXPROCS)
// and the shared trace cache.
func NewRunner(parallelism int) *Runner {
	return &Runner{Parallelism: parallelism}
}

func (r *Runner) workers() int {
	if r == nil || r.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Parallelism
}

// cache resolves the trace cache to use for one invocation: the runner's
// own cache when it has one, otherwise whatever the options imply (nil
// for NoCache, an explicitly supplied cache, or the shared one).
func (r *Runner) cache(opts Options) *tracecache.Cache {
	if opts.NoCache {
		return nil
	}
	if r != nil && r.Cache != nil {
		return r.Cache
	}
	return optsCache(opts)
}

// forEachIndexed runs fn(0..n-1) over at most `workers` goroutines and
// returns the lowest-index error, mirroring what the serial loop would
// have reported first. Once any item fails, unstarted items are skipped
// (in-flight ones finish), so a failing grid does not burn through the
// remaining simulations. With workers <= 1 it degenerates to a plain
// loop.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, failed int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if atomic.LoadInt64(&failed) != 0 {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					atomic.StoreInt64(&failed, 1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Evaluate runs the prediction experiment for every spec, in order, fanned
// out over the worker pool. The i-th result corresponds to specs[i].
func (r *Runner) Evaluate(specs []workloads.Spec, opts Options) ([]Result, error) {
	opts = opts.withDefaults()
	out := make([]Result, len(specs))
	err := forEachIndexed(len(specs), r.workers(), func(i int) error {
		res, err := runExperimentCached(specs[i], opts, r.cache(opts))
		if err != nil {
			return fmt.Errorf("evalx: experiment %s.%d: %w", specs[i].Name, specs[i].Procs, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepAll runs the prediction experiment for every paper configuration
// and returns the per-configuration results in Table 1 order.
func (r *Runner) SweepAll(opts Options) ([]Result, error) {
	return r.Evaluate(workloads.PaperSpecs(), opts)
}

// Figures34 derives the Figure 3 (logical) and Figure 4 (physical) data
// from one parallel sweep of the paper grid.
func (r *Runner) Figures34(opts Options) (logical, physical FigureResult, err error) {
	results, err := r.SweepAll(opts)
	if err != nil {
		return FigureResult{}, FigureResult{}, err
	}
	logical, physical = FiguresFromResults(opts, results)
	return logical, physical, nil
}

// Table1 reproduces Table 1 with the experiments fanned out over the
// worker pool, in the paper's row order.
func (r *Runner) Table1(opts Options) ([]Table1Row, error) {
	opts = opts.withDefaults()
	specs := workloads.PaperSpecs()
	rows := make([]Table1Row, len(specs))
	err := forEachIndexed(len(specs), r.workers(), func(i int) error {
		row, err := table1SingleCached(specs[i], opts, r.cache(opts))
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
