package evalx

// Streaming evaluation: the same Section 5 measurement protocol as
// EvaluateStream/SetAccuracy, reorganized around block sources so a trace
// of any length is scored in constant memory. The batch entry points
// (EvaluateTrace, Table1RowFromTrace) are thin wrappers over this path —
// one code path, pinned hit-for-hit on the golden corpus.
//
// The protocol inversion that makes it streamable: the batch scorer asks,
// at position i, "what will elements i..i+h-1 be?" and looks them up in
// the slice; the incremental scorer records those predictions in a ring
// of h pending slots and settles each one when its target element
// arrives. Predictions whose targets never arrive (the last h-1 of the
// stream) are simply never settled — exactly the positions the batch
// loop skips. Predict is read-only for every predictor in the repo, so
// the handful of extra Predict calls near the end of the stream cannot
// perturb the learned state.

import (
	"fmt"
	"io"

	"mpipredict/internal/predictor"
	"mpipredict/internal/stats"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// pendingPred is one not-yet-settled prediction: made for horizon k,
// awaiting the arrival of its target element.
type pendingPred struct {
	k     int
	value int64
	ok    bool
}

// streamScorer scores one stream incrementally, reproducing
// EvaluateStream exactly (same Hits/Total/Samples for any stream).
type streamScorer struct {
	horizons int
	p        predictor.Predictor
	samples  int
	hits     []int
	total    []int
	// slots[t%horizons] holds the predictions targeting element t. The h
	// targets in flight at any moment are consecutive, so they occupy
	// distinct slots; each slot's slice is reused after settling.
	slots [][]pendingPred
}

func newStreamScorer(p predictor.Predictor, horizons int) *streamScorer {
	s := &streamScorer{
		horizons: horizons,
		p:        p,
		hits:     make([]int, horizons),
		total:    make([]int, horizons),
		slots:    make([][]pendingPred, horizons),
	}
	for i := range s.slots {
		s.slots[i] = make([]pendingPred, 0, horizons)
	}
	return s
}

func (s *streamScorer) push(v int64) {
	i := s.samples
	// Predictions made before observing element i, targeting i..i+h-1.
	for k := 1; k <= s.horizons; k++ {
		pv, ok := s.p.Predict(k)
		t := i + k - 1
		s.slots[t%s.horizons] = append(s.slots[t%s.horizons], pendingPred{k: k, value: pv, ok: ok})
	}
	// Settle everything targeting element i, from this and earlier steps.
	slot := s.slots[i%s.horizons]
	for _, e := range slot {
		s.total[e.k-1]++
		if e.ok && e.value == v {
			s.hits[e.k-1]++
		}
	}
	s.slots[i%s.horizons] = slot[:0]
	s.p.Observe(v)
	s.samples++
}

func (s *streamScorer) finish() StreamAccuracy {
	return StreamAccuracy{Samples: s.samples, Hits: s.hits, Total: s.total}
}

// setWindow is one in-flight order-free scoring window (Section 5.3).
type setWindow struct {
	active    bool
	ok        bool
	matched   int
	remaining int
	predicted map[int64]int
}

// setScorer reproduces SetAccuracy incrementally: each arriving element
// opens a window (the next-`window` multiset forecast) and feeds every
// window still in flight; a window settles when its last element arrives,
// so windows reaching past the end of the stream never count — exactly
// the positions the batch loop skips.
type setScorer struct {
	window int
	p      predictor.Predictor
	i      int
	sum    float64
	count  int
	wins   []setWindow
}

func newSetScorer(p predictor.Predictor, window int) *setScorer {
	s := &setScorer{window: window, p: p, wins: make([]setWindow, window)}
	for i := range s.wins {
		s.wins[i].predicted = make(map[int64]int, window)
	}
	return s
}

func (s *setScorer) push(v int64) {
	// Open the window anchored at this position. Its slot was freed when
	// the window anchored `window` positions earlier settled.
	w := &s.wins[s.i%s.window]
	w.active, w.ok, w.matched, w.remaining = true, true, 0, s.window
	clear(w.predicted)
	for k := 1; k <= s.window; k++ {
		pv, ok := s.p.Predict(k)
		if !ok {
			w.ok = false
			break
		}
		w.predicted[pv]++
	}
	// Feed every in-flight window (the one just opened included: its
	// forecast was made before observing this element).
	for j := range s.wins {
		w := &s.wins[j]
		if !w.active {
			continue
		}
		if w.ok && w.predicted[v] > 0 {
			w.predicted[v]--
			w.matched++
		}
		w.remaining--
		if w.remaining == 0 {
			s.count++
			if w.ok {
				s.sum += float64(w.matched) / float64(s.window)
			}
			w.active = false
		}
	}
	s.p.Observe(v)
	s.i++
}

func (s *setScorer) finish() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// charScorer accumulates the Table 1 characterisation of one stream.
type charScorer struct {
	p2p, coll      int
	sizes, senders *stats.Hist
}

func newCharScorer() *charScorer {
	return &charScorer{sizes: stats.NewHist(), senders: stats.NewHist()}
}

func (c *charScorer) push(kind trace.Kind, sender, size int64) {
	switch kind {
	case trace.PointToPoint:
		c.p2p++
	case trace.Collective:
		c.coll++
	}
	c.sizes.Add(size)
	c.senders.Add(sender)
}

func (c *charScorer) finish(app string, procs, receiver int, coverage float64) trace.Characterization {
	return trace.Characterization{
		App: app, Procs: procs, Receiver: receiver,
		P2PMsgs: c.p2p, CollMsgs: c.coll,
		MsgSizes: len(c.sizes.Frequent(coverage)), Senders: len(c.senders.Frequent(coverage)),
		AllSizes: c.sizes.Distinct(), AllSender: c.senders.Distinct(),
	}
}

// EvaluateSource evaluates prediction accuracy for one receiver over a
// streamed event source — the constant-memory sibling of EvaluateTrace,
// and the engine under it. The open function is invoked once for the
// scoring pass and twice more for the logical-vs-physical reordering
// comparison (two stream views advance in lockstep there), so it must
// yield a fresh source over the same events on every call; file replays
// pass stream.FileOpener, in-memory callers a TraceSource closure.
// Peak memory is a few blocks plus the predictors' own bounded state,
// independent of the trace length.
func EvaluateSource(open stream.OpenFunc, receiver int, opts Options) (Result, error) {
	opts = opts.withDefaults()
	factory, name, err := opts.factory()
	if err != nil {
		return Result{}, err
	}
	src, err := open()
	if err != nil {
		return Result{}, err
	}
	defer stream.Close(src)
	md, _ := stream.MetaOf(src)

	logSender := newStreamScorer(factory(), opts.Horizons)
	logSize := newStreamScorer(factory(), opts.Horizons)
	phySender := newStreamScorer(factory(), opts.Horizons)
	phySize := newStreamScorer(factory(), opts.Horizons)
	set := newSetScorer(factory(), opts.Horizons)
	char := newCharScorer()

	var b stream.EventBlock
	for {
		err := src.Next(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < b.Len(); i++ {
			if b.Receiver[i] != receiver {
				continue
			}
			switch b.Level[i] {
			case trace.Logical:
				logSender.push(b.Sender[i])
				logSize.push(b.Size[i])
				char.push(b.Kind[i], b.Sender[i], b.Size[i])
			case trace.Physical:
				phySender.push(b.Sender[i])
				phySize.push(b.Size[i])
				set.push(b.Sender[i])
			}
		}
	}
	if logSender.samples == 0 {
		return Result{}, fmt.Errorf("evalx: receiver %d has no logical records in trace %q", receiver, md.App)
	}

	reordering, err := reorderingFromSource(open, receiver)
	if err != nil {
		return Result{}, err
	}
	return Result{
		App:              md.App,
		Procs:            md.Procs,
		Receiver:         receiver,
		Strategy:         name,
		Characterization: char.finish(md.App, md.Procs, receiver, 0.99),
		Sender: map[trace.Level]StreamAccuracy{
			trace.Logical:  logSender.finish(),
			trace.Physical: phySender.finish(),
		},
		Size: map[trace.Level]StreamAccuracy{
			trace.Logical:  logSize.finish(),
			trace.Physical: phySize.finish(),
		},
		SenderSetAccuracy: set.finish(),
		Reordering:        reordering,
	}, nil
}

// senderIter pulls the sender values of one (receiver, level) stream out
// of a source, one value at a time.
type senderIter struct {
	src      stream.Source
	b        stream.EventBlock
	i        int
	receiver int
	level    trace.Level
}

func (it *senderIter) next() (int64, bool, error) {
	for {
		for it.i < it.b.Len() {
			j := it.i
			it.i++
			if it.b.Receiver[j] == it.receiver && it.b.Level[j] == it.level {
				return it.b.Sender[j], true, nil
			}
		}
		err := it.src.Next(&it.b)
		it.i = 0
		if err == io.EOF {
			return 0, false, nil
		}
		if err != nil {
			return 0, false, err
		}
	}
}

// reorderingFromSource computes MismatchFraction between the logical and
// physical sender streams of one receiver by advancing two views of the
// source in lockstep — constant memory, because neither stream is ever
// materialized.
func reorderingFromSource(open stream.OpenFunc, receiver int) (float64, error) {
	logSrc, err := open()
	if err != nil {
		return 0, err
	}
	defer stream.Close(logSrc)
	phySrc, err := open()
	if err != nil {
		return 0, err
	}
	defer stream.Close(phySrc)
	logical := &senderIter{src: logSrc, receiver: receiver, level: trace.Logical}
	physical := &senderIter{src: phySrc, receiver: receiver, level: trace.Physical}

	var common, diff, excess int
	for {
		lv, lok, err := logical.next()
		if err != nil {
			return 0, err
		}
		pv, pok, err := physical.next()
		if err != nil {
			return 0, err
		}
		switch {
		case lok && pok:
			common++
			if lv != pv {
				diff++
			}
			continue
		case lok || pok:
			// One stream is longer; count its excess, which the batch
			// MismatchFraction treats as mismatches.
			rest := logical
			if pok {
				rest = physical
			}
			excess++
			for {
				_, ok, err := rest.next()
				if err != nil {
					return 0, err
				}
				if !ok {
					break
				}
				excess++
			}
		}
		break
	}
	longest := common + excess
	if longest == 0 {
		return 0, nil
	}
	return float64(diff+excess) / float64(longest), nil
}

// Table1RowFromSource characterises one receiver of a streamed trace as a
// Table 1 row — the constant-memory sibling of Table1RowFromTrace,
// consuming the source in a single pass.
func Table1RowFromSource(open stream.OpenFunc, receiver int) (Table1Row, error) {
	src, err := open()
	if err != nil {
		return Table1Row{}, err
	}
	defer stream.Close(src)
	md, _ := stream.MetaOf(src)
	char := newCharScorer()
	var b stream.EventBlock
	for {
		err := src.Next(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Table1Row{}, err
		}
		for i := 0; i < b.Len(); i++ {
			if b.Receiver[i] != receiver || b.Level[i] != trace.Logical {
				continue
			}
			char.push(b.Kind[i], b.Sender[i], b.Size[i])
		}
	}
	c := char.finish(md.App, md.Procs, receiver, 0.99)
	row := Table1Row{
		App:      c.App,
		Procs:    c.Procs,
		Receiver: receiver,
		P2PMsgs:  c.P2PMsgs,
		CollMsgs: c.CollMsgs,
		MsgSizes: c.MsgSizes,
		Senders:  c.Senders,
	}
	if ref, ok := PaperTable1[table1Key{c.App, c.Procs}]; ok {
		row.PaperP2P = ref.P2P
		row.PaperColl = ref.Coll
		row.PaperSizes = ref.Sizes
		row.PaperSend = ref.Senders
	}
	return row, nil
}
