package evalx

import (
	"reflect"
	"strings"
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/predictor"
	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func repeat(pattern []int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

func TestEvaluateStreamPerfectlyPeriodic(t *testing.T) {
	stream := repeat([]int64{1, 2, 5, 7, 9}, 600)
	acc := EvaluateStream(stream, nil, 5)
	if acc.Samples != 600 {
		t.Errorf("samples=%d want 600", acc.Samples)
	}
	for k := 1; k <= 5; k++ {
		if a := acc.Accuracy(k); a < 0.95 {
			t.Errorf("+%d accuracy=%.3f want >= 0.95 on a perfectly periodic stream", k, a)
		}
	}
	if acc.Mean() < 0.95 {
		t.Errorf("mean accuracy=%.3f want >= 0.95", acc.Mean())
	}
	if !strings.Contains(acc.String(), "+1:") {
		t.Errorf("String() should mention horizons: %q", acc.String())
	}
}

func TestEvaluateStreamCountsLearningAsMisses(t *testing.T) {
	// A very short stream: the learning phase dominates, so accuracy must
	// be visibly below 1 even though the stream is perfectly periodic.
	// This is the IS.4 effect from Figure 3 of the paper.
	short := repeat([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 100)
	long := repeat([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2000)
	shortAcc := EvaluateStream(short, nil, 5).Accuracy(1)
	longAcc := EvaluateStream(long, nil, 5).Accuracy(1)
	if shortAcc >= longAcc {
		t.Errorf("short stream accuracy (%.3f) should be below long stream accuracy (%.3f)", shortAcc, longAcc)
	}
	if longAcc < 0.95 {
		t.Errorf("long stream accuracy=%.3f want >= 0.95", longAcc)
	}
}

func TestEvaluateStreamDefaults(t *testing.T) {
	acc := EvaluateStream(repeat([]int64{1, 2}, 50), nil, 0)
	if len(acc.Hits) != DefaultHorizons {
		t.Errorf("default horizons=%d want %d", len(acc.Hits), DefaultHorizons)
	}
	if a := acc.Accuracy(0); a != 0 {
		t.Errorf("out-of-range horizon should be 0, got %v", a)
	}
	if a := acc.Accuracy(99); a != 0 {
		t.Errorf("out-of-range horizon should be 0, got %v", a)
	}
	empty := EvaluateStream(nil, nil, 3)
	if empty.Mean() != 0 || empty.Accuracy(1) != 0 {
		t.Error("empty stream should have zero accuracy")
	}
	if accs := acc.Accuracies(); len(accs) != DefaultHorizons {
		t.Errorf("Accuracies length=%d", len(accs))
	}
}

func TestEvaluateStreamWithBaselinePredictor(t *testing.T) {
	stream := repeat([]int64{1, 2}, 400)
	lv := EvaluateStream(stream, func() predictor.Predictor { return predictor.NewLastValue() }, 5)
	if lv.Accuracy(1) > 0.05 {
		t.Errorf("last-value on alternating stream should be ~0, got %.3f", lv.Accuracy(1))
	}
	if lv.Accuracy(5) != 0 {
		t.Errorf("last-value abstains at +5, accuracy should be 0, got %.3f", lv.Accuracy(5))
	}
}

func TestSetAccuracy(t *testing.T) {
	stream := repeat([]int64{4, 7, 9}, 500)
	if a := SetAccuracy(stream, nil, 3); a < 0.95 {
		t.Errorf("set accuracy on periodic stream=%.3f want >= 0.95", a)
	}
	if a := SetAccuracy(nil, nil, 3); a != 0 {
		t.Errorf("set accuracy of empty stream should be 0, got %v", a)
	}
	if a := SetAccuracy(stream, nil, 0); a <= 0 {
		t.Errorf("window of 0 falls back to the default, accuracy=%v", a)
	}

	// A stream whose *order* is scrambled within each period but whose
	// content repeats: ordered accuracy drops, set accuracy stays high.
	// Build period-6 blocks holding the same multiset in varying order.
	blocks := [][]int64{
		{1, 2, 3, 1, 2, 3},
		{2, 1, 3, 3, 1, 2},
		{3, 2, 1, 2, 3, 1},
	}
	var scrambled []int64
	for i := 0; i < 120; i++ {
		scrambled = append(scrambled, blocks[i%len(blocks)]...)
	}
	ordered := EvaluateStream(scrambled, nil, 6).Mean()
	set := SetAccuracy(scrambled, nil, 6)
	if set <= ordered {
		t.Errorf("set accuracy (%.3f) should exceed ordered accuracy (%.3f) on scrambled-order streams", set, ordered)
	}
	if set < 0.8 {
		t.Errorf("set accuracy=%.3f want >= 0.8: the multiset of the next 6 values is predictable", set)
	}
}

func TestMismatchFraction(t *testing.T) {
	if MismatchFraction(nil, nil) != 0 {
		t.Error("two empty streams match")
	}
	a := []int64{1, 2, 3, 4}
	if MismatchFraction(a, a) != 0 {
		t.Error("identical streams match")
	}
	b := []int64{1, 9, 3, 8}
	if got := MismatchFraction(a, b); got != 0.5 {
		t.Errorf("mismatch=%v want 0.5", got)
	}
	c := []int64{1, 2}
	if got := MismatchFraction(a, c); got != 0.5 {
		t.Errorf("length mismatch counts as disagreement: got %v want 0.5", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Horizons != DefaultHorizons {
		t.Errorf("default horizons=%d", o.Horizons)
	}
	if o.Net == (simnet.Config{}) {
		t.Error("default net config should be filled in")
	}
	factory, name, err := o.factory()
	if err != nil || factory == nil || name != "dpd" {
		t.Fatalf("default predictor factory should resolve to dpd, got (%q, %v)", name, err)
	}
	if p := factory(); p.Name() != "dpd" {
		t.Errorf("default predictor should be the DPD, got %s", p.Name())
	}
}

func smallOpts() Options {
	return Options{Net: simnet.DefaultConfig(), Seed: 5, Iterations: 20}
}

func TestRunExperimentBT4(t *testing.T) {
	res, err := RunExperiment(workloads.Spec{Name: "bt", Procs: 4}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "bt" || res.Procs != 4 {
		t.Errorf("metadata wrong: %+v", res)
	}
	wantRecv, _ := workloads.TypicalReceiver("bt", 4)
	if res.Receiver != wantRecv {
		t.Errorf("receiver=%d want %d", res.Receiver, wantRecv)
	}
	if res.Characterization.P2PMsgs != 20*12 {
		t.Errorf("characterization p2p=%d want 240", res.Characterization.P2PMsgs)
	}
	logicalSender := res.Sender[trace.Logical]
	if logicalSender.Samples == 0 {
		t.Fatal("no logical sender samples")
	}
	if logicalSender.Accuracy(1) < 0.8 {
		t.Errorf("logical sender +1 accuracy=%.3f want >= 0.8 even on a short run", logicalSender.Accuracy(1))
	}
	if res.Size[trace.Logical].Accuracy(1) < 0.8 {
		t.Errorf("logical size +1 accuracy=%.3f want >= 0.8", res.Size[trace.Logical].Accuracy(1))
	}
	// Physical accuracy exists and is between 0 and 1.
	phys := res.Sender[trace.Physical].Accuracy(1)
	if phys < 0 || phys > 1 {
		t.Errorf("physical accuracy out of range: %v", phys)
	}
	if res.Reordering < 0 || res.Reordering > 1 {
		t.Errorf("reordering fraction out of range: %v", res.Reordering)
	}
	if res.SenderSetAccuracy < 0 || res.SenderSetAccuracy > 1 {
		t.Errorf("set accuracy out of range: %v", res.SenderSetAccuracy)
	}
	if got := res.Accuracy(SenderStream, trace.Logical, 1); got != logicalSender.Accuracy(1) {
		t.Error("Result.Accuracy accessor disagrees with the stored accuracy")
	}
	if got := res.Accuracy("bogus", trace.Logical, 1); got != 0 {
		t.Errorf("unknown stream kind should give 0, got %v", got)
	}
}

func TestRunExperimentLogicalBeatsPhysicalUnderHeavyNoise(t *testing.T) {
	opts := smallOpts()
	opts.Iterations = 30
	opts.Net.JitterFrac = 0.6
	opts.Net.ImbalanceFrac = 0.5
	res, err := RunExperiment(workloads.Spec{Name: "bt", Procs: 9}, opts)
	if err != nil {
		t.Fatal(err)
	}
	logical := res.Sender[trace.Logical].Mean()
	physical := res.Sender[trace.Physical].Mean()
	if logical <= physical {
		t.Errorf("logical accuracy (%.3f) should exceed physical accuracy (%.3f) under heavy noise", logical, physical)
	}
	if res.Reordering == 0 {
		t.Error("heavy noise should cause some physical reordering")
	}
}

func TestRunExperimentInvalidSpec(t *testing.T) {
	if _, err := RunExperiment(workloads.Spec{Name: "bt", Procs: 5}, Options{}); err == nil {
		t.Error("invalid spec should fail")
	}
	if _, err := RunExperiment(workloads.Spec{Name: "zzz", Procs: 4}, Options{}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestEvaluateTraceMissingReceiver(t *testing.T) {
	tr := trace.New("x", 2)
	if _, err := EvaluateTrace(tr, 0, Options{}); err == nil {
		t.Error("a trace without records for the receiver should fail")
	}
}

func TestTable1Single(t *testing.T) {
	row, err := Table1Single(workloads.Spec{Name: "is", Procs: 4}, Options{Net: simnet.NoiselessConfig(), Iterations: 11})
	if err != nil {
		t.Fatal(err)
	}
	if row.App != "is" || row.Procs != 4 {
		t.Errorf("row metadata wrong: %+v", row)
	}
	if row.P2PMsgs != 11 {
		t.Errorf("is.4 p2p=%d want 11", row.P2PMsgs)
	}
	if row.PaperP2P != 11 || row.PaperColl != 89 || row.PaperSizes != 3 || row.PaperSend != 4 {
		t.Errorf("paper reference values not attached: %+v", row)
	}
	if row.CollMsgs < 80 || row.CollMsgs > 95 {
		t.Errorf("is.4 collective msgs=%d want close to the paper's 89", row.CollMsgs)
	}
}

func TestTable1SingleInvalid(t *testing.T) {
	if _, err := Table1Single(workloads.Spec{Name: "bt", Procs: 7}, Options{}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestFigure1PeriodIs18(t *testing.T) {
	res, err := Figure1(Options{Net: simnet.NoiselessConfig(), Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.SenderPeriod != PaperFigure1Period {
		t.Errorf("sender period=%d want %d", res.SenderPeriod, PaperFigure1Period)
	}
	if res.SizePeriod != PaperFigure1Period {
		t.Errorf("size period=%d want %d", res.SizePeriod, PaperFigure1Period)
	}
	if len(res.SenderExcerpt) == 0 || len(res.SenderExcerpt) != len(res.SizeExcerpt) {
		t.Errorf("excerpt lengths wrong: %d vs %d", len(res.SenderExcerpt), len(res.SizeExcerpt))
	}
	// The excerpt itself must repeat with period 18.
	for i := 18; i < len(res.SenderExcerpt); i++ {
		if res.SenderExcerpt[i] != res.SenderExcerpt[i-18] {
			t.Fatalf("sender excerpt not periodic at %d", i)
		}
	}
}

func TestFigure2ShowsReorderingUnderNoise(t *testing.T) {
	noisy := simnet.DefaultConfig()
	noisy.JitterFrac = 0.5
	res, err := Figure2(Options{Net: noisy, Seed: 3, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logical) != len(res.Physical) || len(res.Logical) == 0 {
		t.Fatalf("stream lengths wrong: %d vs %d", len(res.Logical), len(res.Physical))
	}
	if res.MismatchPercent <= 0 {
		t.Error("with jitter the physical stream should deviate from the logical one somewhere")
	}
	if res.MismatchPercent > 100 {
		t.Errorf("mismatch percent out of range: %v", res.MismatchPercent)
	}

	clean, err := Figure2(Options{Net: simnet.NoiselessConfig(), Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if clean.MismatchPercent < 0 || clean.MismatchPercent > 30 {
		t.Errorf("without noise reordering should be small, got %.1f%%", clean.MismatchPercent)
	}
}

func TestAccuracyFigureAndSweep(t *testing.T) {
	// A reduced sweep over two configurations to keep the test fast: use
	// SweepAll's building blocks directly.
	opts := smallOpts()
	specs := []workloads.Spec{
		{Name: "bt", Procs: 4},
		{Name: "cg", Procs: 4},
	}
	var results []Result
	for _, s := range specs {
		res, err := RunExperiment(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	logical, physical := FiguresFromResults(opts, results)
	if logical.Level != trace.Logical || physical.Level != trace.Physical {
		t.Error("figure levels mislabelled")
	}
	wantCells := len(specs) * 2 * DefaultHorizons
	if len(logical.Cells) != wantCells || len(physical.Cells) != wantCells {
		t.Errorf("cell counts=%d/%d want %d", len(logical.Cells), len(physical.Cells), wantCells)
	}
	if logical.MinAccuracy("bt", SenderStream) < 0.5 {
		t.Errorf("bt logical sender accuracy too low: %.3f", logical.MinAccuracy("bt", SenderStream))
	}
	if logical.MeanAccuracy("", SizeStream) <= 0 {
		t.Error("mean logical size accuracy should be positive")
	}
	if got := logical.MinAccuracy("nope", SenderStream); got != 0 {
		t.Errorf("unknown app should give 0, got %v", got)
	}
	if got := logical.MeanAccuracy("nope", SenderStream); got != 0 {
		t.Errorf("unknown app should give 0, got %v", got)
	}
}

func TestPaperTable1CoversAllSpecs(t *testing.T) {
	for _, spec := range workloads.PaperSpecs() {
		if _, ok := PaperTable1[table1Key{spec.Name, spec.Procs}]; !ok {
			t.Errorf("PaperTable1 is missing %s.%d", spec.Name, spec.Procs)
		}
	}
	if len(PaperTable1) != 19 {
		t.Errorf("PaperTable1 has %d rows, want 19", len(PaperTable1))
	}
	if len(PhysicalAccuracyOrdering) != 5 {
		t.Error("PhysicalAccuracyOrdering should list all five workloads")
	}
}

func TestDefaultPredictorIsDPD(t *testing.T) {
	p := DefaultPredictor()
	if p.Name() != "dpd" {
		t.Errorf("default predictor=%s want dpd", p.Name())
	}
	// And it must be usable.
	for _, x := range repeat([]int64{1, 2, 3}, 60) {
		p.Observe(x)
	}
	if v, ok := p.Predict(1); !ok || v == 0 && false {
		_ = v
	} else if !ok {
		t.Error("default predictor should predict after training")
	}
}

func TestEvaluateStreamWithCustomDPDConfig(t *testing.T) {
	stream := repeat([]int64{1, 2, 3, 4, 5, 6}, 300)
	factory := func() predictor.Predictor {
		return predictor.NewDPD(core.Config{WindowSize: 32, MaxLag: 16})
	}
	acc := EvaluateStream(stream, factory, 3)
	if acc.Accuracy(1) < 0.9 {
		t.Errorf("custom DPD config accuracy=%.3f want >= 0.9", acc.Accuracy(1))
	}
}

// TestOptionsStrategySelectsPredictor pins the declarative strategy
// selection: an explicit "dpd" strategy is hit-for-hit identical to the
// default path, a baseline strategy actually changes the evaluation, and
// unknown names fail loudly.
func TestOptionsStrategySelectsPredictor(t *testing.T) {
	spec := workloads.Spec{Name: "bt", Procs: 4}
	base := Options{Seed: 1, Iterations: 2}

	def, err := RunExperiment(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if def.Strategy != "dpd" {
		t.Fatalf("default result strategy %q, want dpd", def.Strategy)
	}

	viaName := base
	viaName.Strategy = "dpd"
	got, err := RunExperiment(spec, viaName)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, def) {
		t.Fatal("Strategy \"dpd\" result differs from the default DPD path")
	}

	lv := base
	lv.Strategy = "lastvalue"
	flat, err := RunExperiment(spec, lv)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Strategy != "lastvalue" {
		t.Fatalf("lastvalue result strategy %q", flat.Strategy)
	}
	if reflect.DeepEqual(flat.Sender, def.Sender) {
		t.Fatal("lastvalue produced the same accuracies as the DPD — the strategy was not threaded through")
	}

	bad := base
	bad.Strategy = "no-such-strategy"
	if _, err := RunExperiment(spec, bad); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestCompareStrategies pins the comparison sweep's shape and the headline
// ordering the strategy layer exists to demonstrate: on the periodic BT
// logical stream the DPD beats the lastvalue floor.
func TestCompareStrategies(t *testing.T) {
	specs := []workloads.Spec{{Name: "bt", Procs: 4}, {Name: "lu", Procs: 4}}
	cmp, err := CompareStrategies([]string{"dpd", "lastvalue", "markov1"}, specs, Options{Seed: 1, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 2 || cmp.Horizons != DefaultHorizons {
		t.Fatalf("comparison shape: %+v", cmp)
	}
	for _, row := range cmp.Rows {
		for _, name := range cmp.Strategies {
			if _, ok := row.Logical[name]; !ok {
				t.Fatalf("row %s.%d misses strategy %s", row.App, row.Procs, name)
			}
		}
		if row.Logical["dpd"] <= row.Logical["lastvalue"] {
			t.Errorf("%s.%d: dpd (%.3f) does not beat lastvalue (%.3f) on the logical stream",
				row.App, row.Procs, row.Logical["dpd"], row.Logical["lastvalue"])
		}
	}
	if _, err := CompareStrategies(nil, specs, Options{Seed: 1, Iterations: 2, Predictor: DefaultPredictor}); err == nil {
		t.Fatal("CompareStrategies accepted an explicit Predictor factory")
	}
}

// TestCompareStrategiesDefaults pins the nil-argument behavior: all
// registered strategies over one representative spec per benchmark.
func TestCompareStrategiesDefaults(t *testing.T) {
	cmp, err := CompareStrategies(nil, nil, Options{Seed: 1, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := ComparisonSpecs()
	if len(cmp.Rows) != len(specs) {
		t.Fatalf("default comparison has %d rows, want %d", len(cmp.Rows), len(specs))
	}
	apps := map[string]bool{}
	for i, row := range cmp.Rows {
		if row.App != specs[i].Name || row.Procs != specs[i].Procs {
			t.Fatalf("row %d is %s.%d, want %s.%d", i, row.App, row.Procs, specs[i].Name, specs[i].Procs)
		}
		apps[row.App] = true
	}
	if len(apps) != 5 {
		t.Fatalf("default specs cover %d distinct workloads, want all 5", len(apps))
	}
	if len(cmp.Strategies) < 3 {
		t.Fatalf("default comparison covers %v, want every registered strategy", cmp.Strategies)
	}
}
