package evalx

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

// quickOpts shrinks the experiments enough for unit tests while still
// running every paper configuration.
func quickOpts() Options {
	return Options{Seed: 42, Iterations: 3}
}

// TestSweepDeterministicAcrossParallelism is the determinism contract of
// the concurrent experiment engine: the same seed must yield identical
// results — and therefore byte-identical tables and figures — for every
// worker count. NoCache forces each run through the full simulate+evaluate
// pipeline instead of short-circuiting runs 2 and 3 via the cache.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	opts := quickOpts()
	opts.NoCache = true

	var reference []Result
	var refLogical, refPhysical FigureResult
	for _, parallelism := range []int{1, 2, 8} {
		r := NewRunner(parallelism)
		results, err := r.SweepAll(opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		logical, physical := FiguresFromResults(opts, results)
		if reference == nil {
			reference, refLogical, refPhysical = results, logical, physical
			continue
		}
		if !reflect.DeepEqual(results, reference) {
			t.Errorf("parallelism %d: sweep results differ from the serial run", parallelism)
		}
		if !reflect.DeepEqual(logical, refLogical) || !reflect.DeepEqual(physical, refPhysical) {
			t.Errorf("parallelism %d: figure data differs from the serial run", parallelism)
		}
	}
}

// TestTable1DeterministicAcrossParallelism is the same contract for the
// Table 1 grid.
func TestTable1DeterministicAcrossParallelism(t *testing.T) {
	opts := quickOpts()
	opts.NoCache = true

	var reference []Table1Row
	for _, parallelism := range []int{1, 2, 8} {
		rows, err := NewRunner(parallelism).Table1(opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if reference == nil {
			reference = rows
			continue
		}
		if !reflect.DeepEqual(rows, reference) {
			t.Errorf("parallelism %d: Table 1 rows differ from the serial run", parallelism)
		}
	}
}

// TestCachedSweepMatchesUncached checks that routing experiments through
// the trace cache changes nothing about the results.
func TestCachedSweepMatchesUncached(t *testing.T) {
	opts := quickOpts()

	cold := opts
	cold.NoCache = true
	uncached, err := NewRunner(1).SweepAll(cold)
	if err != nil {
		t.Fatal(err)
	}

	r := &Runner{Parallelism: 4, Cache: tracecache.New()}
	cached, err := r.SweepAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, uncached) {
		t.Error("cached sweep results differ from uncached sweep results")
	}
	if s := r.Cache.Stats(); s.Misses == 0 {
		t.Errorf("cache stats = %+v: the sweep never used the cache", s)
	}
}

// TestRunnerSharesSimulationsAcrossEntryPoints checks the headline cache
// effect: after a sweep has populated the cache, Table 1 over the same
// grid performs zero additional simulations.
func TestRunnerSharesSimulationsAcrossEntryPoints(t *testing.T) {
	opts := quickOpts()
	r := &Runner{Parallelism: 2, Cache: tracecache.New()}
	if _, err := r.SweepAll(opts); err != nil {
		t.Fatal(err)
	}
	after := r.Cache.Stats()
	if _, err := r.Table1(opts); err != nil {
		t.Fatal(err)
	}
	final := r.Cache.Stats()
	if final.Misses != after.Misses {
		t.Errorf("Table 1 re-simulated %d specs the sweep had already simulated", final.Misses-after.Misses)
	}
}

// TestForEachIndexedReportsLowestIndexError pins the error semantics the
// serial loop had: the error reported is the one the serial run would have
// hit first.
func TestForEachIndexedReportsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := forEachIndexed(10, 4, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errB) {
		t.Errorf("got %v, want the index-3 error", err)
	}
}

// TestForEachIndexedVisitsEveryIndexOnce covers the pool's work
// distribution.
func TestForEachIndexedVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var visits [37]int64
		err := forEachIndexed(len(visits), workers, func(i int) error {
			atomic.AddInt64(&visits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestRunnerEvaluateOrdersResultsBySpec checks result/spec alignment under
// parallel execution.
func TestRunnerEvaluateOrdersResultsBySpec(t *testing.T) {
	specs := []workloads.Spec{
		{Name: "cg", Procs: 8},
		{Name: "bt", Procs: 4},
		{Name: "is", Procs: 8},
	}
	results, err := NewRunner(3).Evaluate(specs, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.App != specs[i].Name || res.Procs != specs[i].Procs {
			t.Errorf("result %d is %s.%d, want %s.%d", i, res.App, res.Procs, specs[i].Name, specs[i].Procs)
		}
	}
}
