package evalx

// This file records the reference numbers published in the paper so the
// reproduction can print paper-vs-measured comparisons. Values come from
// Table 1 (per-process message characterisation) and from the qualitative
// description of Figures 3 and 4 in Sections 5.1-5.3.

// table1Key identifies one row of Table 1.
type table1Key struct {
	App   string
	Procs int
}

// table1Ref holds the paper's values for one row.
type table1Ref struct {
	P2P     int
	Coll    int
	Sizes   int
	Senders int
}

// PaperTable1 is Table 1 of the paper: per-process point-to-point and
// collective message counts and the number of frequently appearing message
// sizes and senders.
var PaperTable1 = map[table1Key]table1Ref{
	{"bt", 4}:  {P2P: 2416, Coll: 9, Sizes: 3, Senders: 3},
	{"bt", 9}:  {P2P: 3651, Coll: 9, Sizes: 3, Senders: 7},
	{"bt", 16}: {P2P: 4826, Coll: 9, Sizes: 3, Senders: 7},
	{"bt", 25}: {P2P: 6030, Coll: 9, Sizes: 3, Senders: 7},

	{"cg", 4}:  {P2P: 1679, Coll: 0, Sizes: 2, Senders: 2},
	{"cg", 8}:  {P2P: 2942, Coll: 0, Sizes: 2, Senders: 2},
	{"cg", 16}: {P2P: 2942, Coll: 0, Sizes: 2, Senders: 2},
	{"cg", 32}: {P2P: 4204, Coll: 0, Sizes: 2, Senders: 2},

	{"lu", 4}:  {P2P: 31472, Coll: 18, Sizes: 2, Senders: 2},
	{"lu", 8}:  {P2P: 31474, Coll: 18, Sizes: 4, Senders: 2},
	{"lu", 16}: {P2P: 31474, Coll: 18, Sizes: 2, Senders: 2},
	{"lu", 32}: {P2P: 47211, Coll: 18, Sizes: 4, Senders: 2},

	{"is", 4}:  {P2P: 11, Coll: 89, Sizes: 3, Senders: 4},
	{"is", 8}:  {P2P: 11, Coll: 177, Sizes: 3, Senders: 8},
	{"is", 16}: {P2P: 11, Coll: 353, Sizes: 3, Senders: 16},
	{"is", 32}: {P2P: 11, Coll: 705, Sizes: 3, Senders: 32},

	{"sweep3d", 6}:  {P2P: 1438, Coll: 36, Sizes: 2, Senders: 3},
	{"sweep3d", 16}: {P2P: 949, Coll: 36, Sizes: 2, Senders: 2},
	{"sweep3d", 32}: {P2P: 949, Coll: 36, Sizes: 2, Senders: 2},
}

// PaperFigure1Period is the period of the BT.9 sender and size streams at
// process 3 reported in Section 4.1 / Figure 1.
const PaperFigure1Period = 18

// PaperFigure3MinAccuracy is the paper's headline claim for the logical
// level: prediction accuracy above 90% for every benchmark, with the
// exception of IS on 4 processes (~80%, the stream is too short to learn).
const PaperFigure3MinAccuracy = 0.90

// PaperFigure3ISException is the approximate accuracy of the IS.4 outlier.
const PaperFigure3ISException = 0.80

// PhysicalAccuracyOrdering captures the qualitative shape of Figure 4: at
// the physical level LU, Sweep3D and CG remain highly predictable, BT
// degrades because it mixes more senders and sizes, and IS is the hardest
// because collective arrivals are effectively random. The slice lists the
// workloads from most to least predictable at the physical level.
var PhysicalAccuracyOrdering = []string{"lu", "sweep3d", "cg", "bt", "is"}
