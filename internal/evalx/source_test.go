package evalx

import (
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"mpipredict/internal/strategy"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func corpusPath(name string) string {
	return filepath.Join("..", "..", "testdata", "corpus", name)
}

var corpusTraces = []string{"bt.4.mpt", "cg.4.mpt", "lu.4.mpt", "is.4.mpt", "sweep3d.6.mpt"}

// resultsEqual compares every field of two Results, including the exact
// per-horizon hit/total counters.
func resultsEqual(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.App != want.App || got.Procs != want.Procs || got.Receiver != want.Receiver || got.Strategy != want.Strategy {
		t.Errorf("%s: identity mismatch: got (%s,%d,%d,%s), want (%s,%d,%d,%s)", label,
			got.App, got.Procs, got.Receiver, got.Strategy, want.App, want.Procs, want.Receiver, want.Strategy)
	}
	if got.Characterization != want.Characterization {
		t.Errorf("%s: characterization = %+v, want %+v", label, got.Characterization, want.Characterization)
	}
	for _, level := range []trace.Level{trace.Logical, trace.Physical} {
		for kind, pair := range map[string][2]StreamAccuracy{
			"sender": {got.Sender[level], want.Sender[level]},
			"size":   {got.Size[level], want.Size[level]},
		} {
			g, w := pair[0], pair[1]
			if g.Samples != w.Samples {
				t.Errorf("%s: %s/%v samples = %d, want %d", label, kind, level, g.Samples, w.Samples)
			}
			for k := range w.Hits {
				if g.Hits[k] != w.Hits[k] || g.Total[k] != w.Total[k] {
					t.Errorf("%s: %s/%v horizon +%d = %d/%d, want %d/%d", label, kind, level, k+1,
						g.Hits[k], g.Total[k], w.Hits[k], w.Total[k])
				}
			}
		}
	}
	if got.SenderSetAccuracy != want.SenderSetAccuracy {
		t.Errorf("%s: set accuracy = %v, want %v", label, got.SenderSetAccuracy, want.SenderSetAccuracy)
	}
	if got.Reordering != want.Reordering {
		t.Errorf("%s: reordering = %v, want %v", label, got.Reordering, want.Reordering)
	}
}

// TestEvaluateSourceMatchesEvaluateTraceOnCorpus is the acceptance test
// of the streaming evaluator: for every corpus trace and every registered
// strategy, EvaluateSource over the streamed file is hit-for-hit
// identical to EvaluateTrace over the materialized trace.
func TestEvaluateSourceMatchesEvaluateTraceOnCorpus(t *testing.T) {
	for _, name := range corpusTraces {
		path := corpusPath(name)
		tr, err := trace.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		receiver, err := workloads.ReplayReceiver(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range strategy.Names() {
			opts := Options{Strategy: strat, NoCache: true}
			want, err := EvaluateTrace(tr, receiver, opts)
			if err != nil {
				t.Fatalf("%s/%s: EvaluateTrace: %v", name, strat, err)
			}
			got, err := EvaluateSource(stream.FileOpener(path), receiver, opts)
			if err != nil {
				t.Fatalf("%s/%s: EvaluateSource: %v", name, strat, err)
			}
			resultsEqual(t, name+"/"+strat, got, want)
		}
	}
}

// TestEvaluateSourceStreamScorerMatchesEvaluateStream cross-checks the
// incremental scorer against the historical batch loop on raw streams,
// including the awkward lengths around the horizon boundary.
func TestEvaluateSourceStreamScorerMatchesEvaluateStream(t *testing.T) {
	patterns := [][]int64{
		{},
		{5},
		{1, 2, 3},
		{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2},
	}
	long := make([]int64, 500)
	for i := range long {
		long[i] = int64(i % 7)
	}
	patterns = append(patterns, long)
	for _, stream := range patterns {
		for _, h := range []int{1, 3, 5} {
			want := EvaluateStream(stream, nil, h)
			sc := newStreamScorer(DefaultPredictor(), h)
			for _, v := range stream {
				sc.push(v)
			}
			got := sc.finish()
			if got.Samples != want.Samples {
				t.Fatalf("len=%d h=%d: samples %d != %d", len(stream), h, got.Samples, want.Samples)
			}
			for k := range want.Hits {
				if got.Hits[k] != want.Hits[k] || got.Total[k] != want.Total[k] {
					t.Errorf("len=%d h=%d +%d: %d/%d, want %d/%d", len(stream), h, k+1,
						got.Hits[k], got.Total[k], want.Hits[k], want.Total[k])
				}
			}
		}
	}
}

// TestSetScorerMatchesSetAccuracy does the same for the order-free score.
func TestSetScorerMatchesSetAccuracy(t *testing.T) {
	streams := [][]int64{
		{},
		{1, 2},
		{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 2, 1, 3},
	}
	long := make([]int64, 400)
	for i := range long {
		long[i] = int64(i % 9)
	}
	streams = append(streams, long)
	for _, s := range streams {
		for _, w := range []int{1, 5} {
			want := SetAccuracy(s, nil, w)
			sc := newSetScorer(DefaultPredictor(), w)
			for _, v := range s {
				sc.push(v)
			}
			if got := sc.finish(); got != want {
				t.Errorf("len=%d w=%d: set accuracy %v, want %v", len(s), w, got, want)
			}
		}
	}
}

// evalAllocBytes measures the heap bytes EvaluateSource allocates over a
// synthetic stream of the given length.
func evalAllocBytes(t *testing.T, events int) uint64 {
	t.Helper()
	cfg := trace.SynthConfig{
		App: "synth", Procs: 5, Receiver: 0,
		Pattern: []trace.SynthMessage{
			{Sender: 1, Size: 64}, {Sender: 2, Size: 128}, {Sender: 3, Size: 64}, {Sender: 4, Size: 256},
		},
		Events:          events,
		SwapProbability: 0.1,
		Seed:            11,
	}
	open := func() (stream.Source, error) { return stream.SynthSource(cfg), nil }
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := EvaluateSource(open, 0, Options{NoCache: true}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestEvaluateSourceMemoryIndependentOfTraceLength is the acceptance
// criterion's memory test: evaluating a 16x longer stream must not
// allocate meaningfully more, because blocks, scorer rings and predictor
// state are all bounded. (The batch path allocates the full streams up
// front, linear in the trace.)
func TestEvaluateSourceMemoryIndependentOfTraceLength(t *testing.T) {
	small := evalAllocBytes(t, 4_000)
	large := evalAllocBytes(t, 64_000)
	// Allow generous constant slack for GC bookkeeping noise, but reject
	// anything resembling linear growth (16x the events).
	if large > 2*small+1<<20 {
		t.Errorf("allocations grew with trace length: %d bytes for 4k events, %d for 64k", small, large)
	}
}

// TestPerturbedAndMergedCorpusAccuracy pins the robustness transforms
// end to end: a fixed-seed perturbation of a corpus trace produces the
// exact same accuracy on every run, and the recorded deltas document how
// the DPD degrades as arrival noise grows. The merged-scenario case
// interleaves two corpus traces and checks each receiver's stream scores
// exactly as it does alone (the merge leaves per-stream order intact).
func TestPerturbedAndMergedCorpusAccuracy(t *testing.T) {
	const tolerance = 1e-12
	baseline := func(path string, receiver int) Result {
		res, err := EvaluateSource(stream.FileOpener(path), receiver, Options{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	tests := []struct {
		name string
		cfg  stream.PerturbConfig
		// wantMean is the mean +1..+5 physical sender accuracy of the
		// perturbed bt.4 stream; wantDelta the drop from the pristine
		// trace. Values pinned from a reference run — deterministic for
		// the fixed seed. The zero-delta swap rows are themselves the
		// finding: sparse adjacent transpositions leave the DPD's hit
		// counts untouched (its locked pattern already absorbs the local
		// reorder Figure 2 illustrates), while event loss breaks the
		// period alignment and moves accuracy in either direction.
		wantMean  float64
		wantDelta float64
	}{
		{
			name:     "no perturbation",
			cfg:      stream.PerturbConfig{Seed: 1},
			wantMean: 0, wantDelta: 0, // identity case, checked against the baseline
		},
		{
			name:      "sparse adjacent swaps",
			cfg:       stream.PerturbConfig{SwapProbability: 0.2, PhysicalOnly: true, Seed: 1},
			wantMean:  0.425038679340682,
			wantDelta: 0,
		},
		{
			name:      "dense adjacent swaps",
			cfg:       stream.PerturbConfig{SwapProbability: 0.35, PhysicalOnly: true, Seed: 2},
			wantMean:  0.425038679340682,
			wantDelta: 0,
		},
		{
			name:      "swap and loss",
			cfg:       stream.PerturbConfig{SwapProbability: 0.5, DropProbability: 0.1, PhysicalOnly: true, Seed: 2},
			wantMean:  0.398993866924901,
			wantDelta: 0.026044812415781,
		},
		{
			name:      "swap and loss, adversarial seed",
			cfg:       stream.PerturbConfig{SwapProbability: 0.5, DropProbability: 0.1, PhysicalOnly: true, Seed: 9},
			wantMean:  0.014358974358974,
			wantDelta: 0.410679704981708,
		},
	}

	path := corpusPath("bt.4.mpt")
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	base := baseline(path, receiver)
	baseMean := base.Sender[trace.Physical].Mean()

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			open := func() (stream.Source, error) {
				src, err := stream.OpenFile(path)
				if err != nil {
					return nil, err
				}
				return stream.Perturb(src, tt.cfg), nil
			}
			res, err := EvaluateSource(open, receiver, Options{NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			mean := res.Sender[trace.Physical].Mean()
			if tt.name == "no perturbation" {
				if mean != baseMean {
					t.Fatalf("identity perturbation changed accuracy: %v != %v", mean, baseMean)
				}
				return
			}
			if math.Abs(mean-tt.wantMean) > tolerance {
				t.Errorf("perturbed mean = %.15f, want %.15f", mean, tt.wantMean)
			}
			if delta := baseMean - mean; math.Abs(delta-tt.wantDelta) > tolerance {
				t.Errorf("accuracy delta = %.15f, want %.15f", delta, tt.wantDelta)
			}
			// Determinism: a second evaluation over a fresh perturbed
			// source reproduces the numbers bit for bit.
			again, err := EvaluateSource(open, receiver, Options{NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if again.Sender[trace.Physical].Mean() != mean {
				t.Error("same seed produced a different perturbed accuracy")
			}
		})
	}

	t.Run("merged scenario preserves per-stream accuracy", func(t *testing.T) {
		other := corpusPath("cg.4.mpt")
		otherTr, err := trace.Load(other)
		if err != nil {
			t.Fatal(err)
		}
		otherReceiver, err := workloads.ReplayReceiver(otherTr)
		if err != nil {
			t.Fatal(err)
		}
		// Shift the second trace's receiver ranks out of the first's
		// range so the merged scenario has disjoint sessions.
		const shift = 100
		openMerged := func() (stream.Source, error) {
			a, err := stream.OpenFile(path)
			if err != nil {
				return nil, err
			}
			b, err := stream.OpenFile(other)
			if err != nil {
				return nil, err
			}
			return stream.Merge(a, shiftReceivers(b, shift)), nil
		}
		mergedBT, err := EvaluateSource(openMerged, receiver, Options{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		mergedCG, err := EvaluateSource(openMerged, otherReceiver+shift, Options{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mergedBT.Sender[trace.Physical].Mean(), baseMean; got != want {
			t.Errorf("bt stream scored %v inside the merge, %v alone", got, want)
		}
		cgAlone := baseline(other, otherReceiver)
		if got, want := mergedCG.Sender[trace.Physical].Mean(), cgAlone.Sender[trace.Physical].Mean(); got != want {
			t.Errorf("cg stream scored %v inside the merge, %v alone", got, want)
		}
	})
}

// shiftReceivers offsets every receiver rank — a tiny test-local
// transform demonstrating the Source composition the pipeline allows.
type receiverShifter struct {
	src   stream.Source
	shift int
}

func shiftReceivers(src stream.Source, shift int) stream.Source {
	return &receiverShifter{src: src, shift: shift}
}

func (s *receiverShifter) Next(b *stream.EventBlock) error {
	if err := s.src.Next(b); err != nil {
		return err
	}
	for i := range b.Receiver {
		b.Receiver[i] += s.shift
	}
	return nil
}

func (s *receiverShifter) Close() error { return stream.Close(s.src) }
