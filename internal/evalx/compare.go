package evalx

import (
	"fmt"

	"mpipredict/internal/strategy"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// StrategyComparison sets the paper's DPD against the baseline strategies
// on a workload grid: for every (workload, process count) cell and every
// strategy it records the mean +1..+Horizons sender-stream accuracy at
// both instrumentation levels. It is the quantitative version of the
// paper's Section 6 argument — the reason the strategy layer exists.
type StrategyComparison struct {
	// Strategies lists the compared strategy names in column order.
	Strategies []string
	// Horizons is the prediction depth the means average over.
	Horizons int
	// Rows holds one entry per compared workload spec, in input order.
	Rows []StrategyComparisonRow
}

// StrategyComparisonRow is one workload's accuracy across strategies.
type StrategyComparisonRow struct {
	App   string
	Procs int
	// Logical and Physical map strategy name to the mean sender-stream
	// accuracy at that instrumentation level.
	Logical  map[string]float64
	Physical map[string]float64
}

// ComparisonSpecs returns one representative spec per paper workload (the
// smallest evaluated process count), the default grid of the strategy
// comparison: every benchmark is covered without sweeping the full paper
// grid once per strategy.
func ComparisonSpecs() []workloads.Spec {
	return []workloads.Spec{
		{Name: "bt", Procs: 4},
		{Name: "cg", Procs: 4},
		{Name: "lu", Procs: 4},
		{Name: "is", Procs: 4},
		{Name: "sweep3d", Procs: 6},
	}
}

// CompareStrategies evaluates every named strategy on every spec and
// assembles the comparison. Nil names selects all registered strategies;
// nil specs selects ComparisonSpecs. The runner's trace cache makes the
// sweep cheap: all strategies share one simulation per spec, so the cost
// scales with predictor evaluation, not with simulation.
func (r *Runner) CompareStrategies(names []string, specs []workloads.Spec, opts Options) (StrategyComparison, error) {
	if names == nil {
		names = strategy.Names()
	}
	if specs == nil {
		specs = ComparisonSpecs()
	}
	opts = opts.withDefaults()
	if opts.Predictor != nil {
		return StrategyComparison{}, fmt.Errorf("evalx: CompareStrategies selects predictors by name; Options.Predictor must be nil")
	}
	cmp := StrategyComparison{Strategies: names, Horizons: opts.Horizons}
	cmp.Rows = make([]StrategyComparisonRow, len(specs))
	for i, spec := range specs {
		cmp.Rows[i] = StrategyComparisonRow{
			App:      spec.Name,
			Procs:    spec.Procs,
			Logical:  make(map[string]float64, len(names)),
			Physical: make(map[string]float64, len(names)),
		}
	}
	for _, name := range names {
		runOpts := opts
		runOpts.Strategy = name
		results, err := r.Evaluate(specs, runOpts)
		if err != nil {
			return StrategyComparison{}, fmt.Errorf("evalx: comparing strategy %q: %w", name, err)
		}
		for i, res := range results {
			cmp.Rows[i].Logical[name] = res.Sender[trace.Logical].Mean()
			cmp.Rows[i].Physical[name] = res.Sender[trace.Physical].Mean()
		}
	}
	return cmp, nil
}

// CompareStrategies is the package-level convenience wrapper around a
// fresh runner with the options' parallelism.
func CompareStrategies(names []string, specs []workloads.Spec, opts Options) (StrategyComparison, error) {
	return NewRunner(opts.Parallelism).CompareStrategies(names, specs, opts)
}
