// Package evalx is the evaluation harness: it measures prediction accuracy
// the way Section 5 of the paper does and packages the sweeps behind the
// paper's figures and tables.
//
// The measurement protocol is: the predictor observes the stream one value
// at a time; before each observation it is asked for the next `horizons`
// future values (+1 … +5 in the paper). A prediction for +k made before
// observing element i refers to element i+k-1; it is a hit when it equals
// that element. Abstentions — the predictor has not learned a pattern yet
// — count as misses, which is why short streams such as IS on 4 processes
// stay below the others in Figure 3 ("a sample of the pattern has to be
// seen by the predictor for learning").
package evalx

import (
	"fmt"

	"mpipredict/internal/core"
	"mpipredict/internal/predictor"
)

// DefaultHorizons is the number of future values the paper predicts.
const DefaultHorizons = 5

// PredictorFactory builds a fresh predictor for one stream evaluation.
type PredictorFactory func() predictor.Predictor

// DefaultPredictor returns the paper's predictor: the DPD with the default
// configuration.
func DefaultPredictor() predictor.Predictor {
	return predictor.NewDPD(core.DefaultConfig())
}

// StreamAccuracy is the result of evaluating one stream.
type StreamAccuracy struct {
	// Samples is the stream length.
	Samples int
	// Hits[k-1] and Total[k-1] count correct and attempted predictions
	// for horizon +k. Total includes abstentions.
	Hits  []int
	Total []int
}

// Accuracy returns the hit fraction for horizon +k (1-based). It returns
// 0 when no prediction for that horizon was scored.
func (a StreamAccuracy) Accuracy(k int) float64 {
	if k < 1 || k > len(a.Hits) || a.Total[k-1] == 0 {
		return 0
	}
	return float64(a.Hits[k-1]) / float64(a.Total[k-1])
}

// Accuracies returns the accuracy for every horizon, +1 first.
func (a StreamAccuracy) Accuracies() []float64 {
	out := make([]float64, len(a.Hits))
	for k := 1; k <= len(a.Hits); k++ {
		out[k-1] = a.Accuracy(k)
	}
	return out
}

// Mean returns the average accuracy across all horizons.
func (a StreamAccuracy) Mean() float64 {
	if len(a.Hits) == 0 {
		return 0
	}
	var s float64
	for k := 1; k <= len(a.Hits); k++ {
		s += a.Accuracy(k)
	}
	return s / float64(len(a.Hits))
}

// String renders the accuracies as percentages.
func (a StreamAccuracy) String() string {
	s := ""
	for k := 1; k <= len(a.Hits); k++ {
		if k > 1 {
			s += " "
		}
		s += fmt.Sprintf("+%d:%.1f%%", k, 100*a.Accuracy(k))
	}
	return s
}

// EvaluateStream replays the stream through a fresh predictor and scores
// +1..+horizons predictions. A nil factory selects the paper's DPD
// predictor.
func EvaluateStream(stream []int64, factory PredictorFactory, horizons int) StreamAccuracy {
	if horizons < 1 {
		horizons = DefaultHorizons
	}
	if factory == nil {
		factory = DefaultPredictor
	}
	p := factory()
	acc := StreamAccuracy{
		Samples: len(stream),
		Hits:    make([]int, horizons),
		Total:   make([]int, horizons),
	}
	for i := range stream {
		for k := 1; k <= horizons; k++ {
			idx := i + k - 1
			if idx >= len(stream) {
				continue
			}
			acc.Total[k-1]++
			if v, ok := p.Predict(k); ok && v == stream[idx] {
				acc.Hits[k-1]++
			}
		}
		p.Observe(stream[i])
	}
	return acc
}

// SetAccuracy measures the order-free accuracy of Section 5.3: before each
// observation the predictor forecasts the multiset of the next `window`
// values; the score at that position is the fraction of the actual next
// `window` values that the forecast covers (multiset intersection /
// window). Abstentions score zero. The result is the average over all
// positions with a full window ahead.
func SetAccuracy(stream []int64, factory PredictorFactory, window int) float64 {
	if window < 1 {
		window = DefaultHorizons
	}
	if factory == nil {
		factory = DefaultPredictor
	}
	p := factory()
	var sum float64
	var count int
	// predicted is reused (cleared) across positions; allocating it once
	// instead of once per observation keeps the scoring loop allocation
	// free.
	predicted := make(map[int64]int, window)
	for i := range stream {
		if i+window <= len(stream) {
			count++
			clear(predicted)
			ok := true
			for k := 1; k <= window; k++ {
				v, o := p.Predict(k)
				if !o {
					ok = false
					break
				}
				predicted[v]++
			}
			if ok {
				matched := 0
				for k := 0; k < window; k++ {
					v := stream[i+k]
					if predicted[v] > 0 {
						predicted[v]--
						matched++
					}
				}
				sum += float64(matched) / float64(window)
			}
		}
		p.Observe(stream[i])
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// MismatchFraction returns the fraction of positions at which two streams
// of equal length disagree. It quantifies the logical-vs-physical
// reordering that Figure 2 of the paper illustrates. Streams of different
// lengths compare only the common prefix and count the excess as
// mismatches.
func MismatchFraction(a, b []int64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	longest := len(a)
	if len(b) > longest {
		longest = len(b)
	}
	if longest == 0 {
		return 0
	}
	diff := longest - n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(longest)
}
