package evalx

import (
	"mpipredict/internal/core"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
	"mpipredict/internal/tracecache"
	"mpipredict/internal/workloads"
)

// Table1Row is one row of the reproduced Table 1, together with the
// paper's reference values when available.
type Table1Row struct {
	App        string
	Procs      int
	Receiver   int
	P2PMsgs    int
	CollMsgs   int
	MsgSizes   int
	Senders    int
	PaperP2P   int // 0 when the paper has no value for this configuration
	PaperColl  int
	PaperSizes int
	PaperSend  int
}

// Table1 reproduces Table 1: it simulates every (workload, process count)
// pair of the paper and characterises the traced receiver's stream. The
// rows are computed in parallel (Options.Parallelism) against the shared
// trace cache. Options.Iterations can shrink the runs for quick looks;
// the bench harness uses the full defaults.
func Table1(opts Options) ([]Table1Row, error) {
	return NewRunner(opts.Parallelism).Table1(opts)
}

// Table1Single computes one row of Table 1.
func Table1Single(spec workloads.Spec, opts Options) (Table1Row, error) {
	return table1SingleCached(spec, opts.withDefaults(), optsCache(opts))
}

// table1SingleCached computes one row of Table 1 with an explicit trace
// source.
func table1SingleCached(spec workloads.Spec, opts Options, cache *tracecache.Cache) (Table1Row, error) {
	if opts.Iterations > 0 {
		spec.Iterations = opts.Iterations
	}
	receiver, err := workloads.TypicalReceiver(spec.Name, spec.Procs)
	if err != nil {
		return Table1Row{}, err
	}
	tr, err := getTrace(workloads.RunConfig{
		Spec:           spec,
		Net:            opts.Net,
		Seed:           opts.Seed,
		TraceReceivers: []int{receiver},
	}, cache)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1RowFromTrace(tr, receiver), nil
}

// Table1RowFromTrace characterises one receiver of an existing trace as a
// Table 1 row, attaching the paper's reference values when the trace's
// (app, procs) pair appears in the paper. It is the replay-path sibling of
// Table1Single: the CLIs use it to reproduce Table 1 rows from traces
// loaded from disk, and because it only reads the trace, a replayed row is
// identical to the row the in-memory simulation path produces for the same
// trace.
func Table1RowFromTrace(tr *trace.Trace, receiver int) Table1Row {
	// A TraceSource never fails, so the streaming characterisation cannot
	// either; the wrapper keeps the historical error-free signature.
	row, _ := Table1RowFromSource(func() (stream.Source, error) { return stream.TraceSource(tr), nil }, receiver)
	return row
}

// Table1P2PRelativeError returns the mean relative error of the
// reproduced point-to-point message counts against the paper's values,
// over the rows for which the paper reports a value. It is the headline
// fidelity metric of the Table 1 benchmark and of cmd/benchjson; both
// share this definition so the tracked trajectory cannot drift.
func Table1P2PRelativeError(rows []Table1Row) float64 {
	var relErr float64
	var n int
	for _, r := range rows {
		if r.PaperP2P > 0 {
			diff := float64(r.P2PMsgs-r.PaperP2P) / float64(r.PaperP2P)
			if diff < 0 {
				diff = -diff
			}
			relErr += diff
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return relErr / float64(n)
}

// Figure1Result captures the Figure 1 experiment: the iterative pattern of
// the sender and size streams received by process 3 of BT.9.
type Figure1Result struct {
	App          string
	Procs        int
	Receiver     int
	SenderPeriod int
	SizePeriod   int
	// Excerpt holds the first few periods of both streams so callers can
	// plot or print them.
	SenderExcerpt []int64
	SizeExcerpt   []int64
}

// Figure1 reproduces Figure 1: it runs BT on 9 processes, extracts the
// logical sender and size streams of process 3, detects their period and
// returns an excerpt covering a few periods. The paper reports a period
// of 18 for both streams.
func Figure1(opts Options) (Figure1Result, error) {
	opts = opts.withDefaults()
	spec := workloads.Spec{Name: "bt", Procs: 9, Iterations: opts.Iterations}
	receiver, err := workloads.TypicalReceiver(spec.Name, spec.Procs)
	if err != nil {
		return Figure1Result{}, err
	}
	tr, err := getTrace(workloads.RunConfig{
		Spec:           spec,
		Net:            opts.Net,
		Seed:           opts.Seed,
		TraceReceivers: []int{receiver},
	}, optsCache(opts))
	if err != nil {
		return Figure1Result{}, err
	}
	// The figure plots the iterative point-to-point pattern; the handful
	// of setup/verification collectives are not part of it.
	senders, sizes := tr.StreamsOfKind(receiver, trace.Logical, trace.PointToPoint)
	res := Figure1Result{App: spec.Name, Procs: spec.Procs, Receiver: receiver}
	detCfg := core.DefaultConfig()
	if p, ok := core.DetectPeriod(senders, detCfg); ok {
		res.SenderPeriod = p
	}
	if p, ok := core.DetectPeriod(sizes, detCfg); ok {
		res.SizePeriod = p
	}
	excerpt := 4 * 18
	if excerpt > len(senders) {
		excerpt = len(senders)
	}
	res.SenderExcerpt = append([]int64(nil), senders[:excerpt]...)
	res.SizeExcerpt = append([]int64(nil), sizes[:excerpt]...)
	return res, nil
}

// Figure2Result captures the Figure 2 experiment: the logical vs physical
// sender streams of process 3 of BT.4.
type Figure2Result struct {
	App             string
	Procs           int
	Receiver        int
	Logical         []int64
	Physical        []int64
	MismatchPercent float64
}

// Figure2 reproduces Figure 2: BT on 4 processes, the logical and physical
// sender streams of the traced process, and the fraction of positions at
// which physical arrival order deviates from program order.
func Figure2(opts Options) (Figure2Result, error) {
	opts = opts.withDefaults()
	spec := workloads.Spec{Name: "bt", Procs: 4, Iterations: opts.Iterations}
	receiver, err := workloads.TypicalReceiver(spec.Name, spec.Procs)
	if err != nil {
		return Figure2Result{}, err
	}
	tr, err := getTrace(workloads.RunConfig{
		Spec:           spec,
		Net:            opts.Net,
		Seed:           opts.Seed,
		TraceReceivers: []int{receiver},
	}, optsCache(opts))
	if err != nil {
		return Figure2Result{}, err
	}
	logical := tr.SenderStream(receiver, trace.Logical)
	physical := tr.SenderStream(receiver, trace.Physical)
	return Figure2Result{
		App:             spec.Name,
		Procs:           spec.Procs,
		Receiver:        receiver,
		Logical:         logical,
		Physical:        physical,
		MismatchPercent: 100 * MismatchFraction(logical, physical),
	}, nil
}

// FigureCell is one bar of Figures 3 and 4: the prediction accuracy for
// one workload, process count, stream kind and horizon at one level.
type FigureCell struct {
	App      string
	Procs    int
	Kind     StreamKind
	Level    trace.Level
	Horizon  int
	Accuracy float64
}

// FigureResult is the full data behind Figure 3 (logical level) or
// Figure 4 (physical level).
type FigureResult struct {
	Level trace.Level
	Cells []FigureCell
}

// AccuracyFigure runs the prediction experiment for every (workload,
// process count) pair of the paper and collects the accuracy cells for the
// requested level. Figure 3 is AccuracyFigure(trace.Logical, opts);
// Figure 4 is AccuracyFigure(trace.Physical, opts). Both figures come
// from the same runs, so SweepAll can be used to compute them together
// without simulating twice.
func AccuracyFigure(level trace.Level, opts Options) (FigureResult, error) {
	results, err := SweepAll(opts)
	if err != nil {
		return FigureResult{}, err
	}
	return figureFromResults(level, opts, results), nil
}

// SweepAll runs the prediction experiment for every paper configuration
// and returns the per-configuration results, keyed in Table 1 order. The
// experiments run in parallel (Options.Parallelism) against the shared
// trace cache; the results are identical to a serial sweep.
func SweepAll(opts Options) ([]Result, error) {
	return NewRunner(opts.Parallelism).SweepAll(opts)
}

// FiguresFromResults derives the Figure 3 and Figure 4 data from a
// completed sweep.
func FiguresFromResults(opts Options, results []Result) (logical, physical FigureResult) {
	opts = opts.withDefaults()
	return figureFromResults(trace.Logical, opts, results),
		figureFromResults(trace.Physical, opts, results)
}

func figureFromResults(level trace.Level, opts Options, results []Result) FigureResult {
	fig := FigureResult{Level: level}
	for _, res := range results {
		for _, kind := range []StreamKind{SenderStream, SizeStream} {
			for k := 1; k <= opts.Horizons; k++ {
				fig.Cells = append(fig.Cells, FigureCell{
					App:      res.App,
					Procs:    res.Procs,
					Kind:     kind,
					Level:    level,
					Horizon:  k,
					Accuracy: res.Accuracy(kind, level, k),
				})
			}
		}
	}
	return fig
}

// MinAccuracy returns the smallest accuracy among the cells matching the
// given workload (empty string matches all) and stream kind.
func (f FigureResult) MinAccuracy(app string, kind StreamKind) float64 {
	min := 1.0
	found := false
	for _, c := range f.Cells {
		if app != "" && c.App != app {
			continue
		}
		if c.Kind != kind {
			continue
		}
		found = true
		if c.Accuracy < min {
			min = c.Accuracy
		}
	}
	if !found {
		return 0
	}
	return min
}

// MeanAccuracy returns the average accuracy among cells matching the given
// workload (empty string matches all) and stream kind.
func (f FigureResult) MeanAccuracy(app string, kind StreamKind) float64 {
	var sum float64
	var n int
	for _, c := range f.Cells {
		if app != "" && c.App != app {
			continue
		}
		if c.Kind != kind {
			continue
		}
		sum += c.Accuracy
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
