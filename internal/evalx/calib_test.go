package evalx

import (
	"fmt"
	"testing"
	"time"

	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func TestCalibrationFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration only")
	}
	for _, s := range workloads.PaperSpecs() {
		start := time.Now()
		res, err := RunExperiment(s, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-8s p=%-3d [%4.1fs] reorder=%.2f p2p=%-6d coll=%-4d sizes=%d senders=%-2d logS=%5.1f physS=%5.1f logZ=%5.1f physZ=%5.1f set=%.2f\n",
			s.Name, s.Procs, time.Since(start).Seconds(), res.Reordering,
			res.Characterization.P2PMsgs, res.Characterization.CollMsgs,
			res.Characterization.MsgSizes, res.Characterization.Senders,
			100*res.Sender[trace.Logical].Mean(), 100*res.Sender[trace.Physical].Mean(),
			100*res.Size[trace.Logical].Mean(), 100*res.Size[trace.Physical].Mean(),
			res.SenderSetAccuracy)
	}
}
