// Package faultinject is a deterministic, seeded chaos layer for the
// serving stack: an http.RoundTripper that makes a client's view of the
// network unreliable, and an http.Handler middleware that makes a server
// unreliable, both driven by one probability table.
//
// The faults model the partial failures an online learner's ingest path
// meets in production — and must absorb without corrupting learned state:
//
//   - latency: a request stalls before it is sent (client) or before it
//     is handled (server)
//   - reset: the connection dies before the request reaches the handler,
//     so the server never applied it and a retry is safe
//   - response loss / truncation: the handler ran and the state WAS
//     applied, but the client cannot know — the dangerous case, where a
//     blind retry double-counts events unless the server deduplicates
//   - 5xx: the server refuses up front (overload, injected error), with
//     a Retry-After hint
//
// Every decision comes from a single seeded PRNG, so a serial client (the
// replay ingester issues requests one at a time) sees an exactly
// reproducible fault schedule: the chaos end-to-end tests replay a golden
// trace through a given seed and pin the converged state byte-for-byte.
// Concurrent use is safe but interleaving then chooses the schedule.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config is the probability table of one chaos layer. All probabilities
// are in [0, 1] and are rolled independently per request, in the field
// order below; the zero value injects nothing.
type Config struct {
	// Seed selects the deterministic fault schedule. A zero seed is used
	// as-is (it is a valid rand seed), so the zero Config is still fully
	// deterministic.
	Seed int64

	// LatencyProb delays a request by Latency before it proceeds.
	LatencyProb float64
	// Latency is the injected delay (default 2ms when LatencyProb > 0).
	Latency time.Duration

	// ErrorProb answers 503 Service Unavailable (with a Retry-After: 0
	// hint) without running the handler — or, on the client side,
	// synthesizes the 503 without contacting the server at all. The
	// request is NOT applied; a retry is safe.
	ErrorProb float64

	// ResetProb kills the connection before the request is delivered: the
	// client transport returns a transport error without sending, the
	// server middleware hijacks and closes the TCP connection before
	// running the handler. The request is NOT applied.
	ResetProb float64

	// DropResponseProb delivers the request and runs the handler, then
	// loses the response: the client transport discards the response and
	// returns a transport error; the server middleware closes the
	// connection after the handler ran, before the response is written.
	// The request WAS applied — the retry that follows is a duplicate.
	DropResponseProb float64

	// TruncateProb delivers the request, then cuts the response body off
	// halfway. The request WAS applied; the client sees an unexpected
	// EOF mid-body and must treat the outcome as unknown.
	TruncateProb float64
}

// Enabled reports whether any fault has a nonzero probability.
func (c Config) Enabled() bool {
	return c.LatencyProb > 0 || c.ErrorProb > 0 || c.ResetProb > 0 ||
		c.DropResponseProb > 0 || c.TruncateProb > 0
}

func (c Config) withDefaults() Config {
	if c.LatencyProb > 0 && c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	return c
}

// validate rejects probabilities outside [0, 1].
func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"latency", c.LatencyProb}, {"err", c.ErrorProb}, {"reset", c.ResetProb},
		{"drop", c.DropResponseProb}, {"truncate", c.TruncateProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s probability %v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs. Keys: err, reset, drop, truncate (probabilities in [0,1]),
// latency (either a probability or prob:duration, e.g. latency=0.1:5ms),
// and seed (int64). Example:
//
//	err=0.05,reset=0.05,drop=0.05,truncate=0.05,latency=0.1:2ms,seed=42
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("faultinject: empty chaos spec")
	}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: chaos field %q is not key=value", field)
		}
		prob := func(s string) (float64, error) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v < 0 || v > 1 {
				return 0, fmt.Errorf("faultinject: %s probability %q is not in [0, 1]", key, s)
			}
			return v, nil
		}
		var err error
		switch key {
		case "err":
			cfg.ErrorProb, err = prob(value)
		case "reset":
			cfg.ResetProb, err = prob(value)
		case "drop":
			cfg.DropResponseProb, err = prob(value)
		case "truncate":
			cfg.TruncateProb, err = prob(value)
		case "latency":
			p, dur, hasDur := strings.Cut(value, ":")
			if cfg.LatencyProb, err = prob(p); err != nil {
				break
			}
			if hasDur {
				if cfg.Latency, err = time.ParseDuration(dur); err != nil || cfg.Latency < 0 {
					err = fmt.Errorf("faultinject: bad latency duration %q", dur)
				}
			}
		case "seed":
			cfg.Seed, err = strconv.ParseInt(value, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: bad seed %q", value)
			}
		default:
			err = fmt.Errorf("faultinject: unknown chaos key %q (known: err, reset, drop, truncate, latency, seed)", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// dice is the shared locked PRNG behind one chaos layer.
type dice struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newDice(seed int64) *dice { return &dice{rng: rand.New(rand.NewSource(seed))} }

// roll draws one uniform variate and reports whether it fell under p.
// Every probability consumes exactly one draw even when p is zero, so
// enabling one fault never reshuffles the schedule of the others.
func (d *dice) roll(p float64) bool {
	d.mu.Lock()
	v := d.rng.Float64()
	d.mu.Unlock()
	return v < p
}

// Transport is a chaos http.RoundTripper: it wraps an inner transport and
// injects the configured faults into the client's view of the exchange.
type Transport struct {
	cfg   Config
	inner http.RoundTripper
	dice  *dice

	// Injected counts faults by kind; tests read it to assert the
	// schedule actually exercised every failure mode.
	injected Counts
}

// Counts tallies injected faults by kind. Tally is the plain-value view
// Snapshot returns, so callers can pass it around (and print it in test
// failures) without dragging the lock along.
type Counts struct {
	mu sync.Mutex
	t  Tally
}

// Tally is one lock-free copy of the fault counters.
type Tally struct {
	Latency   int64
	Errors    int64
	Resets    int64
	Drops     int64
	Truncates int64
}

func (c *Counts) add(f *int64) {
	c.mu.Lock()
	*f++
	c.mu.Unlock()
}

// Total returns the number of injected faults of any kind.
func (c *Counts) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.Latency + c.t.Errors + c.t.Resets + c.t.Drops + c.t.Truncates
}

// Snapshot returns a copy of the tallies safe to read field by field.
func (c *Counts) Snapshot() Tally {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// NewTransport wraps inner (http.DefaultTransport when nil) in the chaos
// layer. It panics on an invalid config — chaos belongs to tests and the
// hidden -chaos flag, both of which validate first.
func NewTransport(cfg Config, inner http.RoundTripper) *Transport {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{cfg: cfg.withDefaults(), inner: inner, dice: newDice(cfg.Seed)}
}

// Injected exposes the fault tallies.
func (t *Transport) Injected() *Counts { return &t.injected }

// errInjected is the transport error of client-side resets and response
// drops.
type errInjected string

func (e errInjected) Error() string { return "faultinject: injected " + string(e) }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.dice.roll(t.cfg.LatencyProb) {
		t.injected.add(&t.injected.t.Latency)
		time.Sleep(t.cfg.Latency)
	}
	if t.dice.roll(t.cfg.ErrorProb) {
		// Synthesized 503: the server never saw the request. The body is
		// closed per the RoundTripper contract for un-sent requests.
		t.injected.add(&t.injected.t.Errors)
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable (injected)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Retry-After": []string{"0"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected 503"}`)),
			Request: req,
		}, nil
	}
	if t.dice.roll(t.cfg.ResetProb) {
		t.injected.add(&t.injected.t.Resets)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errInjected("connection reset before send")
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.dice.roll(t.cfg.DropResponseProb) {
		// The server processed the request; the client loses the answer.
		t.injected.add(&t.injected.t.Drops)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errInjected("response lost after delivery")
	}
	if t.dice.roll(t.cfg.TruncateProb) {
		t.injected.add(&t.injected.t.Truncates)
		resp.Body = &truncatedBody{inner: resp.Body}
		// The advertised length no longer matches what the body yields.
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody lets roughly half the body's first read through, then
// fails with an unexpected EOF, modelling a connection cut mid-transfer.
type truncatedBody struct {
	inner io.ReadCloser
	read  bool
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.read {
		return 0, io.ErrUnexpectedEOF
	}
	b.read = true
	if len(p) > 8 {
		p = p[:len(p)/2]
	}
	n, err := b.inner.Read(p)
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// Middleware wraps next in the server-side chaos layer. Faults that fire
// before next runs (latency only delays; 503 and reset refuse) leave
// server state untouched; the response-drop and truncate faults run the
// handler first and then destroy the reply, which is how a server that
// crashes after the commit point looks to its clients.
func Middleware(cfg Config, next http.Handler) http.Handler {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	d := newDice(cfg.Seed)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d.roll(cfg.LatencyProb) {
			time.Sleep(cfg.Latency)
		}
		if d.roll(cfg.ErrorProb) {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"injected 503"}`, http.StatusServiceUnavailable)
			return
		}
		if d.roll(cfg.ResetProb) {
			// Abort the connection without a response: the client sees EOF
			// or a reset, and the handler never ran.
			abortConn(w)
			return
		}
		drop := d.roll(cfg.DropResponseProb)
		truncate := d.roll(cfg.TruncateProb)
		if !drop && !truncate {
			next.ServeHTTP(w, r)
			return
		}
		// Run the handler for real — state is applied — then sabotage the
		// reply. The recorder detaches the handler from the wire.
		rec := newResponseRecorder()
		next.ServeHTTP(rec, r)
		if drop {
			abortConn(w)
			return
		}
		// Truncate: forward the status and half the body, then cut the
		// connection so the client cannot mistake the prefix for a full
		// reply.
		for k, vs := range rec.header {
			// Dropping Content-Length forces chunked transfer, so the cut
			// below is seen as an unexpected EOF, not a short read that
			// happens to match the frame.
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.status)
		body := rec.body.Bytes()
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		abortConn(w)
	})
}

// abortConn hard-closes the client connection, bypassing the graceful
// response machinery. http.ErrAbortHandler is the sanctioned way to do
// that from inside a handler; net/http recovers it without logging a
// stack trace.
func abortConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// responseRecorder is a minimal in-memory ResponseWriter (the middleware
// cannot import httptest outside tests).
type responseRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newResponseRecorder() *responseRecorder {
	return &responseRecorder{header: make(http.Header), status: http.StatusOK}
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(status int) { r.status = status }

func (r *responseRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
