package faultinject

// Connection-level chaos for the binary wire protocol: the stream twin
// of the HTTP Transport/Middleware pair. HTTP faults map onto whole
// request/response exchanges; a wire connection is one long-lived byte
// stream, so the faults land on the stream's primitive operations
// instead, reusing the same probability table:
//
//   - ErrorProb   closes a connection the moment it is accepted — the
//     client's handshake dies, modelling refusal at the edge.
//   - ResetProb   kills the connection inside a read — frames in flight
//     from the peer vanish, reads fail mid-frame.
//   - DropResponseProb swallows a whole write (the caller believes it
//     was sent) and then kills the connection. On a server this loses
//     an ack AFTER the observes were applied — the dangerous case whose
//     blind resend only sequenced dedup makes safe.
//   - TruncateProb delivers half of a write, then kills the connection:
//     the peer decodes a truncated frame and must reject it (CRC or
//     length), never act on a prefix.
//
// All decisions come from the listener's single seeded dice, in
// accept/read/write order, so a serial client sees a reproducible fault
// schedule across its reconnections.

import (
	"net"
	"time"
)

// Listener wraps a net.Listener in connection-level chaos. Accepted
// connections share the listener's dice and tallies.
type Listener struct {
	net.Listener
	cfg      Config
	d        *dice
	injected Counts
}

// NewListener wraps ln. It panics on an invalid config, like the HTTP
// chaos constructors — chaos belongs to tests and explicit flags.
func NewListener(cfg Config, ln net.Listener) *Listener {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Listener{Listener: ln, cfg: cfg.withDefaults(), d: newDice(cfg.Seed)}
}

// Injected exposes the fault tallies.
func (l *Listener) Injected() *Counts { return &l.injected }

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.d.roll(l.cfg.ErrorProb) {
		// Close but still hand the dead conn to the server: its first
		// read fails immediately, exactly like a peer that vanished
		// between accept and handshake.
		l.injected.add(&l.injected.t.Errors)
		conn.Close()
		return conn, nil
	}
	return &chaosConn{Conn: conn, l: l}, nil
}

// chaosConn injects stream faults into one accepted connection. After
// any injected fault the connection is dead: the underlying conn is
// closed and every further operation fails, as it would on a real cut.
type chaosConn struct {
	net.Conn
	l    *Listener
	dead bool
}

func (c *chaosConn) Read(p []byte) (int, error) {
	if c.dead {
		return 0, errInjected("read from reset connection")
	}
	if c.l.d.roll(c.l.cfg.LatencyProb) {
		time.Sleep(c.l.cfg.Latency)
	}
	if c.l.d.roll(c.l.cfg.ResetProb) {
		c.l.injected.add(&c.l.injected.t.Resets)
		c.dead = true
		c.Conn.Close()
		return 0, errInjected("connection reset mid-read")
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	if c.dead {
		return 0, errInjected("write to reset connection")
	}
	if c.l.d.roll(c.l.cfg.DropResponseProb) {
		// The write "succeeds" but nothing reaches the peer, and the
		// connection dies behind it: a reply lost after the commit point.
		c.l.injected.add(&c.l.injected.t.Drops)
		c.dead = true
		c.Conn.Close()
		return len(p), nil
	}
	if c.l.d.roll(c.l.cfg.TruncateProb) {
		c.l.injected.add(&c.l.injected.t.Truncates)
		c.dead = true
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, errInjected("write truncated mid-frame")
	}
	return c.Conn.Write(p)
}
