package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("err=0.05,reset=0.1,drop=0.15,truncate=0.2,latency=0.25:5ms,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, LatencyProb: 0.25, Latency: 5 * time.Millisecond,
		ErrorProb: 0.05, ResetProb: 0.1, DropResponseProb: 0.15, TruncateProb: 0.2}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config reports disabled")
	}
}

func TestParseSpecLatencyWithoutDuration(t *testing.T) {
	cfg, err := ParseSpec("latency=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LatencyProb != 0.5 || cfg.Latency != 0 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// The default duration is applied at construction time.
	tr := NewTransport(cfg, nil)
	if tr.cfg.Latency <= 0 {
		t.Fatal("transport did not default the latency duration")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"err",
		"err=2",
		"err=-0.1",
		"err=x",
		"latency=0.5:xs",
		"latency=0.5:-1ms",
		"seed=abc",
		"frobnicate=0.5",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(Config{}, nil)}
	for i := 0; i < 50; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("request %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
}

// TestTransportDeterministicSchedule pins the chaos contract serial
// clients rely on: two transports with the same seed make identical
// fault decisions request for request.
func TestTransportDeterministicSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 256))
	}))
	defer ts.Close()

	run := func() []string {
		tr := NewTransport(Config{Seed: 7, ErrorProb: 0.2, ResetProb: 0.2, DropResponseProb: 0.2, TruncateProb: 0.2}, nil)
		client := &http.Client{Transport: tr}
		var outcomes []string
		for i := 0; i < 60; i++ {
			resp, err := client.Get(ts.URL)
			switch {
			case err != nil:
				outcomes = append(outcomes, "err")
			case resp.StatusCode == http.StatusServiceUnavailable:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				outcomes = append(outcomes, "503")
			default:
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					outcomes = append(outcomes, "truncated")
				} else {
					outcomes = append(outcomes, "ok")
				}
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: schedule diverged (%s vs %s)\na=%v\nb=%v", i, a[i], b[i], a, b)
		}
	}
	distinct := map[string]bool{}
	for _, o := range a {
		distinct[o] = true
	}
	if !distinct["err"] || !distinct["503"] || !distinct["ok"] {
		t.Fatalf("schedule too uniform to be a real test: %v", a)
	}
}

// TestTransportFaultSemantics separates the retry-safe faults (server
// never ran) from the applied-then-lost ones (server ran, reply
// destroyed) — the distinction the idempotency layer exists for.
func TestTransportFaultSemantics(t *testing.T) {
	var handled int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled++
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, strings.Repeat("y", 512))
	}))
	defer ts.Close()

	t.Run("reset never reaches the server", func(t *testing.T) {
		handled = 0
		tr := NewTransport(Config{ResetProb: 1}, nil)
		_, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err == nil || !strings.Contains(err.Error(), "connection reset before send") {
			t.Fatalf("err = %v", err)
		}
		if handled != 0 {
			t.Fatalf("server handled %d requests through a full-reset transport", handled)
		}
	})
	t.Run("synthesized 503 never reaches the server", func(t *testing.T) {
		handled = 0
		tr := NewTransport(Config{ErrorProb: 1}, nil)
		resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		if handled != 0 {
			t.Fatalf("server handled %d requests", handled)
		}
	})
	t.Run("dropped response was applied server-side", func(t *testing.T) {
		handled = 0
		tr := NewTransport(Config{DropResponseProb: 1}, nil)
		_, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err == nil || !strings.Contains(err.Error(), "response lost after delivery") {
			t.Fatalf("err = %v", err)
		}
		if handled != 1 {
			t.Fatalf("server handled %d requests, want 1", handled)
		}
	})
	t.Run("truncated body was applied server-side", func(t *testing.T) {
		handled = 0
		tr := NewTransport(Config{TruncateProb: 1}, nil)
		resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		if rerr != io.ErrUnexpectedEOF {
			t.Fatalf("read error = %v, want unexpected EOF", rerr)
		}
		if len(body) >= 512 {
			t.Fatalf("read %d bytes of a 512-byte body through a truncating transport", len(body))
		}
		if handled != 1 {
			t.Fatalf("server handled %d requests, want 1", handled)
		}
	})
}

func TestTransportCounts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	tr := NewTransport(Config{Seed: 3, ErrorProb: 0.5}, nil)
	client := &http.Client{Transport: tr}
	for i := 0; i < 40; i++ {
		if resp, err := client.Get(ts.URL); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	counts := tr.Injected().Snapshot()
	if counts.Errors == 0 || tr.Injected().Total() != counts.Errors {
		t.Fatalf("counts = %+v", counts)
	}
}

// TestMiddlewareFaultSemantics drives the server-side chaos layer with a
// real HTTP client: injected 503s and resets must leave handler state
// untouched, drops and truncations must run the handler first.
func TestMiddlewareFaultSemantics(t *testing.T) {
	// The counter is atomic because a killed connection (reset/drop) can
	// return control to the test while the handler goroutine still runs.
	newCounting := func() (*atomic.Int32, http.Handler) {
		n := new(atomic.Int32)
		return n, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.Add(1)
			io.Copy(io.Discard, r.Body)
			io.WriteString(w, strings.Repeat("z", 400))
		})
	}

	t.Run("injected 503 with Retry-After", func(t *testing.T) {
		n, h := newCounting()
		ts := httptest.NewServer(Middleware(Config{ErrorProb: 1}, h))
		defer ts.Close()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		if n.Load() != 0 {
			t.Fatalf("handler ran %d times behind a full-error middleware", n.Load())
		}
	})
	t.Run("reset closes the connection without running the handler", func(t *testing.T) {
		n, h := newCounting()
		ts := httptest.NewServer(Middleware(Config{ResetProb: 1}, h))
		defer ts.Close()
		if _, err := http.Get(ts.URL); err == nil {
			t.Fatal("reset middleware produced a clean response")
		}
		if n.Load() != 0 {
			t.Fatalf("handler ran %d times", n.Load())
		}
	})
	t.Run("drop runs the handler then kills the reply", func(t *testing.T) {
		n, h := newCounting()
		ts := httptest.NewServer(Middleware(Config{DropResponseProb: 1}, h))
		defer ts.Close()
		if _, err := http.Get(ts.URL); err == nil {
			t.Fatal("drop middleware produced a clean response")
		}
		if n.Load() != 1 {
			t.Fatalf("handler ran %d times, want 1", n.Load())
		}
	})
	t.Run("truncate runs the handler and cuts the body", func(t *testing.T) {
		n, h := newCounting()
		ts := httptest.NewServer(Middleware(Config{TruncateProb: 1}, h))
		defer ts.Close()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		if rerr == nil && len(body) >= 400 {
			t.Fatalf("read the full %d-byte body through a truncating middleware", len(body))
		}
		if n.Load() != 1 {
			t.Fatalf("handler ran %d times, want 1", n.Load())
		}
	})
	t.Run("latency only delays", func(t *testing.T) {
		n, h := newCounting()
		ts := httptest.NewServer(Middleware(Config{LatencyProb: 1, Latency: time.Millisecond}, h))
		defer ts.Close()
		start := time.Now()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if d := time.Since(start); d < time.Millisecond {
			t.Fatalf("request took %v, want >= 1ms of injected latency", d)
		}
		if n.Load() != 1 || resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%d status=%d", n.Load(), resp.StatusCode)
		}
	})
}

func TestNewTransportRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTransport accepted probability > 1")
		}
	}()
	NewTransport(Config{ErrorProb: 1.5}, nil)
}
