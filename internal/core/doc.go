// Package core implements the paper's primary contribution: a Dynamic
// Periodicity Detector (DPD) based predictor for MPI message streams.
//
// The predictor consumes a stream of integer-valued observations — in the
// paper these are the rank of the sender of each message received by a
// process, or the size in bytes of each received message — and
//
//  1. detects whether the stream currently contains an iterative
//     (periodic) pattern,
//  2. reports the length of that pattern, and
//  3. predicts several future values of the stream (the paper evaluates
//     the next five, "+1 … +5").
//
// Detection uses the distance metric of equation (1) in the paper:
//
//	d(m) = Σ_{i} sign(|x[i] − x[i−m]|)
//
// computed over a sliding window of the most recent N samples for every
// candidate lag m in 1..M. d(m) counts the number of positions at which
// the window disagrees with itself shifted by m; d(m) == 0 means the
// window is exactly periodic with period m. The implementation keeps the
// per-lag mismatch counts incrementally (O(M) work per observation, no
// rescan of the window), mirroring the circular-list, low-overhead
// implementation the paper requires for runtime use.
//
// Two layers are provided:
//
//   - Detector is the bare DPD: observe samples, query d(m), the detected
//     period, and window-based predictions.
//   - StreamPredictor wraps a Detector with the policy needed for online
//     use: it abstains until a period has been confirmed, locks a
//     consensus snapshot of one full pattern, keeps predicting from the
//     locked pattern across isolated mismatches (the paper's predictor
//     "expects the pattern" and single random reorderings only cost the
//     affected predictions), and unlocks/relearns after a sustained miss
//     streak.
//
// Both layers are deliberately free of any MPI-specific notion; the
// predictor package composes them into sender/size message predictors.
package core
