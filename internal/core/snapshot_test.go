package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// restore is a test helper that fails on error.
func restore(t *testing.T, s PredictorSnapshot) *StreamPredictor {
	t.Helper()
	p, err := RestoreStreamPredictor(s)
	if err != nil {
		t.Fatalf("RestoreStreamPredictor: %v", err)
	}
	return p
}

// TestSnapshotRoundTripLocked pins the core contract: a restored predictor
// is indistinguishable from the original, both in its re-snapshot and in
// every future prediction and observation.
func TestSnapshotRoundTripLocked(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	stream := periodicStream(4*p.cfg.WindowSize, 18)
	for _, x := range stream {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatal("predictor should be locked after a periodic warm-up")
	}

	snap := p.Snapshot()
	q := restore(t, snap)
	if again := q.Snapshot(); !reflect.DeepEqual(snap, again) {
		t.Fatalf("snapshot not stable across restore:\n got %+v\nwant %+v", again, snap)
	}

	// The restored predictor must behave identically from here on.
	for i := 0; i < 3*p.cfg.WindowSize; i++ {
		x := stream[i%len(stream)]
		for k := 1; k <= 5; k++ {
			pv, pok := p.Predict(k)
			qv, qok := q.Predict(k)
			if pv != qv || pok != qok {
				t.Fatalf("step %d horizon %d: original predicts (%d,%v), restored (%d,%v)", i, k, pv, pok, qv, qok)
			}
		}
		p.Observe(x)
		q.Observe(x)
	}
	if p.Counters() != q.Counters() {
		t.Fatalf("counters diverged: %+v vs %+v", p.Counters(), q.Counters())
	}
}

// TestSnapshotRoundTripStates walks the predictor through fresh, learning
// and mid-confirmation states and checks each snapshot restores exactly.
func TestSnapshotRoundTripStates(t *testing.T) {
	cfg := Config{WindowSize: 32, MaxLag: 12, MinRepeats: 2, ConfirmRuns: 4, HoldDown: 2,
		LockTolerance: 0.1, RelearnWindow: 8, RelearnMissRate: 0.5}
	feeds := map[string][]int64{
		"fresh":      nil,
		"aperiodic":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
		"confirming": {0, 1, 2, 0, 1, 2, 0, 1}, // period seen but not yet ConfirmRuns times
	}
	for name, feed := range feeds {
		t.Run(name, func(t *testing.T) {
			p := NewStreamPredictor(cfg)
			for _, x := range feed {
				p.Observe(x)
			}
			snap := p.Snapshot()
			q := restore(t, snap)
			if again := q.Snapshot(); !reflect.DeepEqual(snap, again) {
				t.Fatalf("snapshot not stable:\n got %+v\nwant %+v", again, snap)
			}
			// Drive both to a lock and beyond; they must stay in lockstep.
			for i := 0; i < 6*cfg.WindowSize; i++ {
				x := int64(i % 3)
				p.Observe(x)
				q.Observe(x)
			}
			if !reflect.DeepEqual(p.Snapshot(), q.Snapshot()) {
				t.Fatal("predictors diverged after continued observation")
			}
		})
	}
}

// TestSnapshotRoundTripNoisy exercises the relearn machinery: snapshots
// taken mid-stream on a perturbed stream (hold-down streaks, partially
// filled outcome rings, relocks) must restore exactly.
func TestSnapshotRoundTripNoisy(t *testing.T) {
	cfg := Config{WindowSize: 64, MaxLag: 24, MinRepeats: 2, ConfirmRuns: 2, HoldDown: 3,
		LockTolerance: 0.15, RelearnWindow: 12, RelearnMissRate: 0.4}
	rng := rand.New(rand.NewSource(7))
	p := NewStreamPredictor(cfg)
	for i := 0; i < 4000; i++ {
		x := int64(i % 6)
		if rng.Intn(10) == 0 {
			x = int64(rng.Intn(6)) // perturb
		}
		p.Observe(x)
		if i%97 == 0 {
			snap := p.Snapshot()
			q := restore(t, snap)
			if again := q.Snapshot(); !reflect.DeepEqual(snap, again) {
				t.Fatalf("step %d: snapshot not stable:\n got %+v\nwant %+v", i, again, snap)
			}
		}
	}
	if p.Counters().Locks == 0 {
		t.Fatal("test stream never locked; the scenario is not exercising what it should")
	}
}

// TestSnapshotIsDetached verifies the snapshot shares no memory with the
// live predictor: observing after Snapshot must not change it.
func TestSnapshotIsDetached(t *testing.T) {
	p := NewStreamPredictor(Config{WindowSize: 16, MaxLag: 6})
	for i := 0; i < 64; i++ {
		p.Observe(int64(i % 4))
	}
	snap := p.Snapshot()
	winBefore := append([]int64(nil), snap.Window...)
	patBefore := append([]int64(nil), snap.Pattern...)
	for i := 0; i < 100; i++ {
		p.Observe(int64(i % 5))
	}
	if !reflect.DeepEqual(snap.Window, winBefore) || !reflect.DeepEqual(snap.Pattern, patBefore) {
		t.Fatal("snapshot mutated by continued observation")
	}
}

// TestSnapshotPreservesExplicitZeroConfig guards the reason restore
// bypasses the defaulting constructors: HoldDown 0 and LockTolerance 0 are
// valid explicit settings that withDefaults would rewrite.
func TestSnapshotPreservesExplicitZeroConfig(t *testing.T) {
	cfg := Config{WindowSize: 16, MaxLag: 6, MinRepeats: 2, ConfirmRuns: 1,
		HoldDown: 0, LockTolerance: 0, RelearnWindow: 0, RelearnMissRate: 0}
	// Bypass NewStreamPredictor's defaulting the same way a caller with an
	// explicit full config cannot; build the state via the public API by
	// validating first that the config is legal.
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	q := restore(t, PredictorSnapshot{Config: cfg})
	if got := q.Snapshot().Config; got != cfg {
		t.Fatalf("config rewritten on restore: got %+v, want %+v", got, cfg)
	}
}

// TestRestoreRejectsCorruptSnapshots enumerates the validation surface.
func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	for _, x := range periodicStream(4*p.cfg.WindowSize, 18) {
		p.Observe(x)
	}
	good := p.Snapshot()
	if good.State != Locked {
		t.Fatal("expected a locked snapshot")
	}

	corrupt := map[string]func(*PredictorSnapshot){
		"invalid config":          func(s *PredictorSnapshot) { s.Config.WindowSize = 1 },
		"oversized window":        func(s *PredictorSnapshot) { s.Window = make([]int64, s.Config.WindowSize+1) },
		"observed below window":   func(s *PredictorSnapshot) { s.WindowObserved = int64(len(s.Window)) - 1 },
		"locked without pattern":  func(s *PredictorSnapshot) { s.Pattern = nil },
		"pattern beyond MaxLag":   func(s *PredictorSnapshot) { s.Pattern = make([]int64, s.Config.MaxLag+1) },
		"phase out of range":      func(s *PredictorSnapshot) { s.Phase = len(s.Pattern) },
		"negative phase":          func(s *PredictorSnapshot) { s.Phase = -1 },
		"negative miss streak":    func(s *PredictorSnapshot) { s.MissStreak = -1 },
		"oversized outcome ring":  func(s *PredictorSnapshot) { s.Recent = make([]bool, s.Config.RelearnWindow+1) },
		"negative candidate runs": func(s *PredictorSnapshot) { s.CandidateRuns = -1 },
		"unknown lock state":      func(s *PredictorSnapshot) { s.State = LockState(42) },
		"learning with pattern": func(s *PredictorSnapshot) {
			s.State = Learning
			// Pattern left in place from the locked snapshot.
		},
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			s := good
			s.Window = append([]int64(nil), good.Window...)
			s.Pattern = append([]int64(nil), good.Pattern...)
			s.Recent = append([]bool(nil), good.Recent...)
			mutate(&s)
			if _, err := RestoreStreamPredictor(s); err == nil {
				t.Fatalf("restore accepted a corrupt snapshot (%s)", name)
			}
		})
	}
}
