package core

import "fmt"

// PredictorSnapshot is the complete serializable state of a
// StreamPredictor. It exists so a long-running prediction service can
// checkpoint learned periodicity and warm-restart without relearning
// (internal/serve persists it in the versioned snapshot file format).
//
// The snapshot is normalized: the detector window and the locked-state
// outcome ring are stored oldest-first, independently of where the
// underlying circular buffers happen to have their heads. Restoring a
// snapshot and snapshotting again therefore reproduces the identical
// value, which is what makes snapshot files byte-for-byte stable across
// restarts.
type PredictorSnapshot struct {
	// Config is the predictor's configuration after defaulting. It is
	// stored verbatim: restore must not re-default it, because explicit
	// zero values (HoldDown 0, LockTolerance 0) are valid settings.
	Config Config

	// Window holds the detector window contents, oldest first.
	Window []int64
	// WindowObserved is the total number of samples the detector has ever
	// seen, including those that have left the window.
	WindowObserved int64

	// State is the lock state; the fields below it are only meaningful
	// while Locked.
	State LockState
	// Pattern is the locked consensus pattern (nil while learning).
	Pattern []int64
	// Phase indexes the pattern slot of the next expected observation.
	Phase int
	// MissStreak counts the current run of consecutive mispredictions.
	MissStreak int
	// Recent is the locked-state hit/miss outcome ring, oldest first.
	Recent []bool

	// CandidatePeriod and CandidateRuns carry the learning-state
	// confirmation progress.
	CandidatePeriod int
	CandidateRuns   int

	// Counters are the lifetime counters.
	Counters Counters
}

// Snapshot captures the predictor's complete state. The result shares no
// memory with the predictor and stays valid as the predictor keeps
// observing.
func (p *StreamPredictor) Snapshot() PredictorSnapshot {
	s := PredictorSnapshot{
		Config:          p.cfg,
		WindowObserved:  p.det.observed,
		State:           p.state,
		Phase:           p.phase,
		MissStreak:      p.missStreak,
		CandidatePeriod: p.candidatePeriod,
		CandidateRuns:   p.candidateRuns,
		Counters:        p.counters,
	}
	if p.det.win.Len() > 0 {
		s.Window = p.det.Window()
	}
	if p.state == Locked {
		s.Pattern = append([]int64(nil), p.pattern...)
		s.Recent = p.recentOutcomes()
	}
	return s
}

// recentOutcomes returns the locked-state outcome ring oldest-first, or
// nil when empty.
func (p *StreamPredictor) recentOutcomes() []bool {
	if p.recentCount == 0 {
		return nil
	}
	out := make([]bool, p.recentCount)
	start := p.recentIdx - p.recentCount
	if start < 0 {
		start += len(p.recent)
	}
	for i := range out {
		out[i] = p.recent[(start+i)%len(p.recent)]
	}
	return out
}

// RestoreStreamPredictor rebuilds a predictor from a snapshot. The
// snapshot is validated in full — a corrupt or hand-edited snapshot yields
// an error, never a predictor that panics later. The detector's per-lag
// mismatch counts are not stored; they are reconstructed exactly by
// replaying the window, which is cheaper than persisting them and cannot
// disagree with the window contents.
func RestoreStreamPredictor(s PredictorSnapshot) (*StreamPredictor, error) {
	cfg := s.Config
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: restoring predictor: %w", err)
	}
	if len(s.Window) > cfg.WindowSize {
		return nil, fmt.Errorf("core: restoring predictor: window holds %d samples, config allows %d", len(s.Window), cfg.WindowSize)
	}
	if s.WindowObserved < int64(len(s.Window)) {
		return nil, fmt.Errorf("core: restoring predictor: observed count %d below window length %d", s.WindowObserved, len(s.Window))
	}
	if s.CandidatePeriod < 0 || s.CandidateRuns < 0 {
		return nil, fmt.Errorf("core: restoring predictor: negative candidate state (%d, %d)", s.CandidatePeriod, s.CandidateRuns)
	}

	// Construct by hand rather than via NewStreamPredictor: the
	// constructors re-default zero config fields, which would silently
	// rewrite a snapshot that legitimately uses zero values.
	p := &StreamPredictor{
		cfg: cfg,
		det: &Detector{
			cfg:      cfg,
			win:      newRing(cfg.WindowSize),
			mismatch: make([]int, cfg.MaxLag+1),
		},
		state: Learning,
	}
	if cfg.RelearnWindow > 0 {
		p.recent = make([]bool, cfg.RelearnWindow)
	}
	for _, x := range s.Window {
		p.det.Observe(x)
	}
	p.det.observed = s.WindowObserved

	switch s.State {
	case Learning:
		if len(s.Pattern) != 0 || len(s.Recent) != 0 || s.Phase != 0 || s.MissStreak != 0 {
			return nil, fmt.Errorf("core: restoring predictor: learning state carries locked-only fields")
		}
	case Locked:
		if len(s.Pattern) == 0 {
			return nil, fmt.Errorf("core: restoring predictor: locked state without a pattern")
		}
		if len(s.Pattern) > cfg.MaxLag {
			return nil, fmt.Errorf("core: restoring predictor: pattern of length %d exceeds MaxLag %d", len(s.Pattern), cfg.MaxLag)
		}
		if s.Phase < 0 || s.Phase >= len(s.Pattern) {
			return nil, fmt.Errorf("core: restoring predictor: phase %d outside pattern of length %d", s.Phase, len(s.Pattern))
		}
		if s.MissStreak < 0 {
			return nil, fmt.Errorf("core: restoring predictor: negative miss streak %d", s.MissStreak)
		}
		if len(s.Recent) > cfg.RelearnWindow {
			return nil, fmt.Errorf("core: restoring predictor: outcome ring holds %d entries, config allows %d", len(s.Recent), cfg.RelearnWindow)
		}
		p.state = Locked
		p.pattern = append([]int64(nil), s.Pattern...)
		p.phase = s.Phase
		p.missStreak = s.MissStreak
		for _, hit := range s.Recent {
			p.recordOutcome(hit)
		}
	default:
		return nil, fmt.Errorf("core: restoring predictor: unknown lock state %d", s.State)
	}

	p.candidatePeriod = s.CandidatePeriod
	p.candidateRuns = s.CandidateRuns
	p.counters = s.Counters
	return p, nil
}
