package core

import (
	"testing"
)

// periodicStream returns n samples of an exactly periodic stream with the
// given period.
func periodicStream(n, period int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i % period)
	}
	return out
}

// TestDetectorObserveZeroAllocs pins the detector's steady-state cost: the
// incremental mismatch update must never allocate.
func TestDetectorObserveZeroAllocs(t *testing.T) {
	d := NewDetector(DefaultConfig())
	stream := periodicStream(4*d.Config().WindowSize, 18)
	for _, x := range stream {
		d.Observe(x)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		d.Observe(stream[i%len(stream)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Detector.Observe allocates %.2f objects per call, want 0", allocs)
	}
}

// TestStreamPredictorObserveZeroAllocs pins the predictor's steady-state
// cost on a stable stream: once locked, observing must never allocate
// (locking itself allocates the pattern snapshot, but locks are rare and
// excluded by the warm-up).
func TestStreamPredictorObserveZeroAllocs(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	stream := periodicStream(4*p.cfg.WindowSize, 18)
	for _, x := range stream {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatal("predictor should be locked on a periodic stream after warm-up")
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		p.Observe(stream[i%len(stream)])
		i++
	})
	if allocs != 0 {
		t.Errorf("StreamPredictor.Observe allocates %.2f objects per call, want 0", allocs)
	}
	if p.State() != Locked {
		t.Error("predictor lost its lock on a clean periodic stream")
	}
}

// TestStreamPredictorLearningObserveZeroAllocs covers the other steady
// state: a stream with no pattern keeps the predictor learning forever,
// and that path must not allocate either.
func TestStreamPredictorLearningObserveZeroAllocs(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	// A strictly increasing stream never shows a period.
	var x int64
	for i := 0; i < 4*p.cfg.WindowSize; i++ {
		p.Observe(x)
		x++
	}
	if p.State() != Learning {
		t.Fatal("predictor should still be learning on an aperiodic stream")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.Observe(x)
		x++
	})
	if allocs != 0 {
		t.Errorf("learning-state Observe allocates %.2f objects per call, want 0", allocs)
	}
}

// TestPredictSeriesIntoZeroAllocs pins the buffer-reuse contract of the
// prediction hot path.
func TestPredictSeriesIntoZeroAllocs(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	stream := periodicStream(4*p.cfg.WindowSize, 18)
	for _, x := range stream {
		p.Observe(x)
	}
	buf := make([]Prediction, 0, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = p.PredictSeriesInto(buf[:0], 5)
	})
	if allocs != 0 {
		t.Errorf("PredictSeriesInto with a reused buffer allocates %.2f objects per call, want 0", allocs)
	}
	if len(buf) != 5 {
		t.Fatalf("got %d predictions, want 5", len(buf))
	}
	for _, pr := range buf {
		if !pr.OK {
			t.Fatalf("locked predictor abstained: %+v", pr)
		}
	}
}

// TestPredictSetIntoZeroAllocs does the same for the order-free query.
func TestPredictSetIntoZeroAllocs(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	stream := periodicStream(4*p.cfg.WindowSize, 18)
	for _, x := range stream {
		p.Observe(x)
	}
	buf := make([]int64, 0, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		var ok bool
		buf, ok = p.PredictSetInto(buf[:0], 5)
		if !ok {
			t.Fatal("locked predictor abstained")
		}
	})
	if allocs != 0 {
		t.Errorf("PredictSetInto with a reused buffer allocates %.2f objects per call, want 0", allocs)
	}
}

// TestPredictSeriesIntoMatchesPredictSeries ties the Into variants to the
// allocating originals.
func TestPredictSeriesIntoMatchesPredictSeries(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	for _, x := range periodicStream(4*p.cfg.WindowSize, 7) {
		p.Observe(x)
	}
	plain := p.PredictSeries(5)
	into := p.PredictSeriesInto(nil, 5)
	if len(plain) != len(into) {
		t.Fatalf("length mismatch: %d vs %d", len(plain), len(into))
	}
	for i := range plain {
		if plain[i] != into[i] {
			t.Errorf("prediction %d differs: %+v vs %+v", i, plain[i], into[i])
		}
	}

	plainSet, okPlain := p.PredictSet(5)
	intoSet, okInto := p.PredictSetInto(nil, 5)
	if okPlain != okInto || len(plainSet) != len(intoSet) {
		t.Fatalf("set mismatch: (%v, %v) vs (%v, %v)", plainSet, okPlain, intoSet, okInto)
	}
	for i := range plainSet {
		if plainSet[i] != intoSet[i] {
			t.Errorf("set value %d differs: %d vs %d", i, plainSet[i], intoSet[i])
		}
	}
}

// TestWindowIntoMatchesWindow checks the zero-copy snapshot path.
func TestWindowIntoMatchesWindow(t *testing.T) {
	d := NewDetector(Config{WindowSize: 8, MaxLag: 4})
	for i := int64(0); i < 13; i++ { // wraps the ring
		d.Observe(i)
	}
	snap := d.Window()
	into := d.WindowInto(nil)
	if len(snap) != len(into) {
		t.Fatalf("length mismatch: %d vs %d", len(snap), len(into))
	}
	for i := range snap {
		if snap[i] != into[i] {
			t.Errorf("window[%d] differs: %d vs %d", i, snap[i], into[i])
		}
	}
}
