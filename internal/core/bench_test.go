package core

import "testing"

// The microbenchmarks below pin the per-observation cost of the DPD hot
// path. Run them with -benchmem: the steady-state observe and predict
// paths must report 0 allocs/op (enforced by alloc_test.go), and ns/op
// tracks the O(MaxLag) incremental update the paper's Section 4 design
// calls for.

func benchStream(n, period int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i % period)
	}
	return out
}

// BenchmarkDetectorObserveFullWindow measures the incremental mismatch
// update once the window has wrapped, i.e. with the eviction half of the
// update active (the existing BenchmarkDetectorObserve starts cold).
func BenchmarkDetectorObserveFullWindow(b *testing.B) {
	d := NewDetector(DefaultConfig())
	stream := benchStream(4*d.Config().WindowSize, 18)
	for _, x := range stream {
		d.Observe(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(stream[i%len(stream)])
	}
}

// BenchmarkStreamPredictorObserveLocked measures the steady-state observe
// path of a locked predictor: expectation check, outcome ring update and
// detector feed.
func BenchmarkStreamPredictorObserveLocked(b *testing.B) {
	p := NewStreamPredictor(DefaultConfig())
	stream := benchStream(4*p.cfg.WindowSize, 18)
	for _, x := range stream {
		p.Observe(x)
	}
	if p.State() != Locked {
		b.Fatal("predictor should be locked after warm-up")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(stream[i%len(stream)])
	}
}

// BenchmarkStreamPredictorPredict measures a single locked-pattern lookup.
func BenchmarkStreamPredictorPredict(b *testing.B) {
	p := NewStreamPredictor(DefaultConfig())
	for _, x := range benchStream(4*p.cfg.WindowSize, 18) {
		p.Observe(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Predict(i%5 + 1); !ok {
			b.Fatal("locked predictor abstained")
		}
	}
}

// BenchmarkPredictSeriesInto measures the +1..+5 multi-step query with a
// reused caller buffer — the per-message query shape of the scalability
// replays.
func BenchmarkPredictSeriesInto(b *testing.B) {
	p := NewStreamPredictor(DefaultConfig())
	for _, x := range benchStream(4*p.cfg.WindowSize, 18) {
		p.Observe(x)
	}
	buf := make([]Prediction, 0, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.PredictSeriesInto(buf[:0], 5)
	}
	_ = buf
}

// BenchmarkLockRelock measures the lock path (window snapshot + consensus
// vote), which the allocation-lean scratch buffers target: predictors on
// noisy physical streams relock continually.
func BenchmarkLockRelock(b *testing.B) {
	p := NewStreamPredictor(DefaultConfig())
	stream := benchStream(4*p.cfg.WindowSize, 18)
	for _, x := range stream {
		p.Observe(x)
	}
	if p.State() != Locked {
		b.Fatal("predictor should be locked after warm-up")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.lock(18)
	}
}
