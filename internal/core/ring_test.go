package core

import (
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := newRing(3)
	if r.Cap() != 3 || r.Len() != 0 || r.Full() {
		t.Fatalf("fresh ring wrong: cap=%d len=%d full=%v", r.Cap(), r.Len(), r.Full())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring should not be ok")
	}
	r.Push(1)
	r.Push(2)
	if r.Full() {
		t.Fatal("ring should not be full with 2 of 3 elements")
	}
	r.Push(3)
	if !r.Full() {
		t.Fatal("ring should be full with 3 of 3 elements")
	}
	if got := r.Snapshot(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("snapshot=%v want [1 2 3]", got)
	}
	ev, wasFull := r.Push(4)
	if !wasFull || ev != 1 {
		t.Fatalf("push on full ring: evicted=%d wasFull=%v want 1,true", ev, wasFull)
	}
	if got := r.Snapshot(); got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("snapshot after eviction=%v want [2 3 4]", got)
	}
	last, ok := r.Last()
	if !ok || last != 4 {
		t.Fatalf("last=%d,%v want 4,true", last, ok)
	}
	if r.At(0) != 2 || r.At(2) != 4 {
		t.Fatalf("At order wrong: %d %d", r.At(0), r.At(2))
	}
}

func TestRingReset(t *testing.T) {
	r := newRing(4)
	for i := int64(0); i < 10; i++ {
		r.Push(i)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("len after reset = %d want 0", r.Len())
	}
	r.Push(42)
	if v, _ := r.Last(); v != 42 {
		t.Fatalf("after reset+push last=%d want 42", v)
	}
}

func TestRingZeroCapacityClamped(t *testing.T) {
	r := newRing(0)
	if r.Cap() != 1 {
		t.Fatalf("zero capacity should clamp to 1, got %d", r.Cap())
	}
	r.Push(7)
	ev, wasFull := r.Push(8)
	if !wasFull || ev != 7 {
		t.Fatalf("capacity-1 ring should evict 7, got %d,%v", ev, wasFull)
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	r := newRing(2)
	r.Push(1)
	for _, idx := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) should panic", idx)
				}
			}()
			r.At(idx)
		}()
	}
}

// Property: a ring of capacity c fed any sequence reports the last
// min(len, c) values of that sequence, in order.
func TestRingMatchesSliceSuffix(t *testing.T) {
	f := func(vals []int64, capRaw uint8) bool {
		c := int(capRaw%16) + 1
		r := newRing(c)
		for _, v := range vals {
			r.Push(v)
		}
		want := vals
		if len(want) > c {
			want = want[len(want)-c:]
		}
		got := r.Snapshot()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
