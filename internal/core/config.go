package core

import "fmt"

// Config controls the DPD window geometry and the online locking policy of
// StreamPredictor. The zero value is not usable; call DefaultConfig or fill
// every field and Validate it.
type Config struct {
	// WindowSize is N in equation (1): the number of most recent samples
	// the detector keeps. Must be at least 2.
	WindowSize int

	// MaxLag is M in equation (1): the largest candidate period examined.
	// Must satisfy 1 <= MaxLag < WindowSize. Larger values allow longer
	// patterns (e.g. the per-iteration receive pattern of an alltoall on
	// many ranks) at a linear cost per observation.
	MaxLag int

	// MinRepeats is the number of full pattern repetitions that must be
	// present in the window before a lag m is accepted as a period, i.e.
	// a period m is only reported when Len() >= MinRepeats*m. The paper
	// requires that "a sample of the pattern has to be seen by the
	// predictor for learning"; MinRepeats >= 2 means one full repetition
	// has been compared against the previous one.
	MinRepeats int

	// ConfirmRuns is the number of consecutive observations for which the
	// same period must be detected before StreamPredictor locks onto it.
	ConfirmRuns int

	// HoldDown is the number of consecutive mispredicted observations a
	// locked StreamPredictor tolerates before it drops the locked pattern
	// and returns to the learning state. Isolated reorderings at the
	// physical level cost only the affected predictions instead of
	// forcing a full relearn.
	HoldDown int

	// LockTolerance is the fraction of mismatching pairs allowed when the
	// StreamPredictor searches for a period to lock onto (the bare
	// Detector always uses the strict d(m) == 0 criterion of the paper).
	// Zero keeps locking strict as well; a small value such as 0.1 lets
	// the predictor lock onto mildly perturbed physical-level streams.
	LockTolerance float64

	// RelearnWindow and RelearnMissRate guard against locking onto a
	// spurious pattern (for example a short constant prefix of the
	// stream): while locked, the predictor tracks its hit rate over the
	// last RelearnWindow observations and drops the lock when the miss
	// fraction exceeds RelearnMissRate. This complements HoldDown, which
	// only reacts to *consecutive* misses.
	RelearnWindow   int
	RelearnMissRate float64
}

// DefaultConfig returns the configuration used throughout the evaluation:
// a 512-sample window, lags up to 192 (large enough for the full
// per-iteration receive pattern of LU on 32 processes and Sweep3D on 6),
// two repetitions of evidence, three confirmations before locking and a
// hold-down of six misses.
func DefaultConfig() Config {
	return Config{
		WindowSize:      512,
		MaxLag:          192,
		MinRepeats:      2,
		ConfirmRuns:     3,
		HoldDown:        6,
		LockTolerance:   0.2,
		RelearnWindow:   36,
		RelearnMissRate: 0.3,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.WindowSize < 2 {
		return fmt.Errorf("core: WindowSize must be >= 2, got %d", c.WindowSize)
	}
	if c.MaxLag < 1 {
		return fmt.Errorf("core: MaxLag must be >= 1, got %d", c.MaxLag)
	}
	if c.MaxLag >= c.WindowSize {
		return fmt.Errorf("core: MaxLag (%d) must be smaller than WindowSize (%d)", c.MaxLag, c.WindowSize)
	}
	if c.MinRepeats < 1 {
		return fmt.Errorf("core: MinRepeats must be >= 1, got %d", c.MinRepeats)
	}
	if c.ConfirmRuns < 1 {
		return fmt.Errorf("core: ConfirmRuns must be >= 1, got %d", c.ConfirmRuns)
	}
	if c.HoldDown < 0 {
		return fmt.Errorf("core: HoldDown must be >= 0, got %d", c.HoldDown)
	}
	if c.LockTolerance < 0 || c.LockTolerance >= 1 {
		return fmt.Errorf("core: LockTolerance must be in [0,1), got %g", c.LockTolerance)
	}
	if c.RelearnWindow < 0 {
		return fmt.Errorf("core: RelearnWindow must be >= 0, got %d", c.RelearnWindow)
	}
	if c.RelearnMissRate < 0 || c.RelearnMissRate > 1 {
		return fmt.Errorf("core: RelearnMissRate must be in [0,1], got %g", c.RelearnMissRate)
	}
	return nil
}

// withDefaults fills zero fields with DefaultConfig values so that callers
// can override only what they care about.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.WindowSize == 0 {
		c.WindowSize = def.WindowSize
	}
	if c.MaxLag == 0 {
		c.MaxLag = def.MaxLag
	}
	if c.MinRepeats == 0 {
		c.MinRepeats = def.MinRepeats
	}
	if c.ConfirmRuns == 0 {
		c.ConfirmRuns = def.ConfirmRuns
	}
	if c.HoldDown == 0 {
		c.HoldDown = def.HoldDown
	}
	if c.LockTolerance == 0 {
		c.LockTolerance = def.LockTolerance
	}
	if c.RelearnWindow == 0 {
		c.RelearnWindow = def.RelearnWindow
	}
	if c.RelearnMissRate == 0 {
		c.RelearnMissRate = def.RelearnMissRate
	}
	return c
}
