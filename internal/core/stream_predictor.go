package core

// LockState describes what the StreamPredictor is currently doing.
type LockState int

const (
	// Learning means no pattern has been confirmed yet; the predictor
	// abstains from predictions that require a locked pattern and falls
	// back to the bare detector when it already sees a strict period.
	Learning LockState = iota
	// Locked means a pattern snapshot has been taken and predictions are
	// served from it.
	Locked
)

// String returns a human-readable name for the state.
func (s LockState) String() string {
	switch s {
	case Learning:
		return "learning"
	case Locked:
		return "locked"
	default:
		return "unknown"
	}
}

// Counters aggregates what happened to a StreamPredictor over its
// lifetime. They are exposed so the evaluation harness and the
// scalability applications can reason about predictor behaviour (e.g. how
// often it had to relearn on a noisy physical stream).
type Counters struct {
	Observed    int64 // samples fed to Observe
	Locks       int64 // transitions Learning -> Locked
	Unlocks     int64 // transitions Locked -> Learning (hold-down exceeded)
	HitsWhile   int64 // observations that matched the locked expectation
	MissesWhile int64 // observations that contradicted the locked expectation
}

// StreamPredictor implements the online prediction policy built on top of
// the DPD. It follows the behaviour described in sections 4.2 and 5.3 of
// the paper:
//
//   - While learning, it feeds the detector and waits until the same
//     period has been detected for ConfirmRuns consecutive observations.
//   - It then locks a snapshot of one full pattern. The snapshot is a
//     per-phase consensus (majority vote across the repetitions present in
//     the window), so a single perturbed sample in the window does not
//     poison the locked pattern.
//   - While locked, every prediction is read from the pattern at the
//     appropriate phase, so several future values (+1 … +5 in the paper)
//     are available at once. Observations that contradict the pattern are
//     counted; HoldDown consecutive misses drop the lock and learning
//     starts again from the current window.
type StreamPredictor struct {
	cfg Config
	det *Detector

	state      LockState
	pattern    []int64
	phase      int // index into pattern of the next expected observation
	missStreak int

	// recent is a ring of hit/miss outcomes observed while locked; it
	// backs the miss-rate relearn trigger (Config.RelearnWindow /
	// RelearnMissRate).
	recent       []bool
	recentIdx    int
	recentCount  int
	recentMisses int

	candidatePeriod int
	candidateRuns   int

	// scratchWin and scratchCounts are reused across lock events so that
	// locking onto a pattern does not allocate a fresh window snapshot and
	// one counting map per phase every time (predictors on noisy physical
	// streams relock often).
	scratchWin    []int64
	scratchCounts map[int64]int

	counters Counters
}

// NewStreamPredictor returns a predictor with the given configuration
// (zero fields take defaults, see Config).
func NewStreamPredictor(cfg Config) *StreamPredictor {
	cfg = cfg.withDefaults()
	p := &StreamPredictor{
		cfg:   cfg,
		det:   NewDetector(cfg),
		state: Learning,
	}
	// Allocate the hit/miss ring up front so the steady-state Observe
	// path never allocates.
	if cfg.RelearnWindow > 0 {
		p.recent = make([]bool, cfg.RelearnWindow)
	}
	return p
}

// State returns the current lock state.
func (p *StreamPredictor) State() LockState { return p.state }

// Config returns the predictor's effective configuration (defaults
// resolved).
func (p *StreamPredictor) Config() Config { return p.cfg }

// Period returns the length of the currently locked pattern, or the
// detector's current period while learning. ok is false when neither is
// available.
func (p *StreamPredictor) Period() (int, bool) {
	if p.state == Locked {
		return len(p.pattern), true
	}
	return p.det.Period()
}

// Pattern returns a copy of the locked pattern, or nil while learning.
func (p *StreamPredictor) Pattern() []int64 {
	if p.state != Locked {
		return nil
	}
	out := make([]int64, len(p.pattern))
	copy(out, p.pattern)
	return out
}

// Counters returns a snapshot of the lifetime counters.
func (p *StreamPredictor) Counters() Counters { return p.counters }

// Reset returns the predictor to its initial state.
func (p *StreamPredictor) Reset() {
	p.det.Reset()
	p.state = Learning
	p.pattern = nil
	p.phase = 0
	p.missStreak = 0
	p.candidatePeriod = 0
	p.candidateRuns = 0
	p.resetRecent()
	p.counters = Counters{}
}

// Observe feeds one sample of the stream to the predictor.
func (p *StreamPredictor) Observe(x int64) {
	p.counters.Observed++
	if p.state == Locked {
		expected := p.pattern[p.phase]
		hit := x == expected
		if hit {
			p.counters.HitsWhile++
			p.missStreak = 0
		} else {
			p.counters.MissesWhile++
			p.missStreak++
		}
		p.recordOutcome(hit)
		p.phase = (p.phase + 1) % len(p.pattern)
		p.det.Observe(x)
		if p.missStreak > p.cfg.HoldDown || p.missRateExceeded() {
			p.unlock()
		}
		return
	}

	p.det.Observe(x)
	period, ok := p.searchPeriod()
	if !ok {
		p.candidatePeriod = 0
		p.candidateRuns = 0
		return
	}
	if period == p.candidatePeriod {
		p.candidateRuns++
	} else {
		p.candidatePeriod = period
		p.candidateRuns = 1
	}
	if p.candidateRuns >= p.cfg.ConfirmRuns {
		p.lock(period)
	}
}

// searchPeriod looks for a period to lock onto. A strict period (the
// window is exactly periodic, the paper's d(m) == 0 criterion) is
// preferred because it captures the full iterative pattern of the
// application even when the stream alternates between shorter local
// sub-patterns (the LU sweeps are the canonical example). When no strict
// period exists — typically on physical-level streams perturbed by noise —
// the tolerant criterion is used instead.
func (p *StreamPredictor) searchPeriod() (int, bool) {
	if period, ok := p.det.Period(); ok {
		return period, true
	}
	if p.cfg.LockTolerance > 0 {
		return p.det.PeriodWithin(p.cfg.LockTolerance)
	}
	return 0, false
}

// lock captures the consensus pattern of length period from the detector
// window and switches to the Locked state. The next expected observation
// is the one that follows the most recent window sample.
func (p *StreamPredictor) lock(period int) {
	p.scratchWin = p.det.WindowInto(p.scratchWin[:0])
	win := p.scratchWin
	if period <= 0 || len(win) < period {
		return
	}
	if p.scratchCounts == nil {
		p.scratchCounts = make(map[int64]int)
	}
	p.pattern = consensusPattern(win, period, p.scratchCounts)
	// The window ends at x[t]; the next observation x[t+1] corresponds to
	// pattern phase (len(win)) mod period when the pattern is anchored at
	// the start of the window.
	p.phase = len(win) % period
	p.state = Locked
	p.missStreak = 0
	p.candidatePeriod = 0
	p.candidateRuns = 0
	p.resetRecent()
	p.counters.Locks++
}

func (p *StreamPredictor) unlock() {
	p.state = Learning
	p.pattern = nil
	p.phase = 0
	p.missStreak = 0
	p.candidatePeriod = 0
	p.candidateRuns = 0
	p.resetRecent()
	p.counters.Unlocks++
}

// recordOutcome appends a hit/miss outcome to the locked-state ring.
func (p *StreamPredictor) recordOutcome(hit bool) {
	if p.cfg.RelearnWindow <= 0 {
		return
	}
	if p.recentCount == len(p.recent) {
		if !p.recent[p.recentIdx] {
			p.recentMisses--
		}
	} else {
		p.recentCount++
	}
	p.recent[p.recentIdx] = hit
	if !hit {
		p.recentMisses++
	}
	p.recentIdx = (p.recentIdx + 1) % len(p.recent)
}

// missRateExceeded reports whether the locked pattern has been missing too
// often over the recent window to be worth keeping. It only fires once the
// window is full, so a freshly locked pattern gets a fair chance.
func (p *StreamPredictor) missRateExceeded() bool {
	if p.cfg.RelearnWindow <= 0 || p.recentCount < p.cfg.RelearnWindow {
		return false
	}
	return float64(p.recentMisses) > p.cfg.RelearnMissRate*float64(p.recentCount)
}

func (p *StreamPredictor) resetRecent() {
	p.recentIdx = 0
	p.recentCount = 0
	p.recentMisses = 0
	if p.recent != nil {
		for i := range p.recent {
			p.recent[i] = false
		}
	}
}

// Predict returns the expected value k observations ahead (k >= 1).
// While locked it reads the locked pattern; while learning it falls back
// to the detector's strict-period prediction; otherwise it abstains.
func (p *StreamPredictor) Predict(k int) (int64, bool) {
	if k < 1 {
		return 0, false
	}
	if p.state == Locked {
		idx := (p.phase + k - 1) % len(p.pattern)
		return p.pattern[idx], true
	}
	return p.det.Predict(k)
}

// PredictSeries predicts the next count values, abstentions included.
func (p *StreamPredictor) PredictSeries(count int) []Prediction {
	return p.PredictSeriesInto(make([]Prediction, 0, count), count)
}

// PredictSeriesInto appends the next count predictions to dst and returns
// it. Hot-path callers pass a reused buffer — typically dst[:0] of the
// previous call — so steady-state multi-step queries perform no
// allocations (see predictor.MessagePredictor.ForecastInto for the
// equivalent message-level query the replay loops use).
func (p *StreamPredictor) PredictSeriesInto(dst []Prediction, count int) []Prediction {
	for k := 1; k <= count; k++ {
		v, ok := p.Predict(k)
		dst = append(dst, Prediction{Ahead: k, Value: v, OK: ok})
	}
	return dst
}

// PredictSet returns the multiset of values expected over the next count
// observations, without regard to order. Section 5.3 of the paper argues
// that for buffer pre-allocation the receiver only needs to know *which*
// senders (and which sizes) are coming next, not their exact order; this
// is the query that application makes.
func (p *StreamPredictor) PredictSet(count int) ([]int64, bool) {
	out, ok := p.PredictSetInto(make([]int64, 0, count), count)
	if !ok {
		return nil, false
	}
	return out, true
}

// PredictSetInto appends the next-count value multiset to dst and returns
// it, with ok == false when any of the underlying predictions abstains.
// On abstention the (partially filled) buffer is still returned so a
// caller that reuses it — dst[:0] of the previous call — keeps its
// capacity across abstaining queries.
func (p *StreamPredictor) PredictSetInto(dst []int64, count int) ([]int64, bool) {
	for k := 1; k <= count; k++ {
		v, ok := p.Predict(k)
		if !ok {
			return dst, false
		}
		dst = append(dst, v)
	}
	return dst, true
}

// consensusPattern builds a pattern of the given period from a window by
// majority vote over all samples that share the same phase. With a clean
// window this is exactly the last period of the window; with isolated
// perturbations the majority of repetitions wins. The scratch map is
// cleared and reused for every phase, so one lock event costs zero map
// allocations instead of one per phase; the walk visits each window sample
// twice in total (O(len(win))) rather than once per phase.
func consensusPattern(win []int64, period int, scratch map[int64]int) []int64 {
	pattern := make([]int64, period)
	for ph := 0; ph < period; ph++ {
		clear(scratch)
		for i := ph; i < len(win); i += period {
			scratch[win[i]]++
		}
		best := int64(0)
		bestCount := -1
		// Deterministic tie-break: prefer the value seen most recently in
		// the window at this phase. Walking newest-first and requiring a
		// strictly greater count reproduces the seed implementation's
		// choice exactly.
		last := ph + ((len(win)-1-ph)/period)*period
		for i := last; i >= 0; i -= period {
			v := win[i]
			if c := scratch[v]; c > bestCount {
				best = v
				bestCount = c
			}
		}
		pattern[ph] = best
	}
	return pattern
}
