package core

// ring is a fixed-capacity circular buffer of int64 samples. It backs the
// DPD window: the paper stresses that the detector must be implementable
// with circular lists so that the runtime overhead stays small, so the
// buffer never reallocates after construction and all operations are O(1).
type ring struct {
	buf   []int64
	head  int // index of the oldest element
	count int
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &ring{buf: make([]int64, capacity)}
}

// Cap returns the fixed capacity of the ring.
func (r *ring) Cap() int { return len(r.buf) }

// Len returns the number of stored samples.
func (r *ring) Len() int { return r.count }

// Full reports whether the ring holds Cap() samples.
func (r *ring) Full() bool { return r.count == len(r.buf) }

// Push appends x, evicting the oldest sample when full. It returns the
// evicted sample and whether an eviction happened.
func (r *ring) Push(x int64) (evicted int64, wasFull bool) {
	if r.count == len(r.buf) {
		evicted = r.buf[r.head]
		r.buf[r.head] = x
		r.head = (r.head + 1) % len(r.buf)
		return evicted, true
	}
	r.buf[(r.head+r.count)%len(r.buf)] = x
	r.count++
	return 0, false
}

// At returns the i-th stored sample, where 0 is the oldest and Len()-1 the
// most recent. It panics on out-of-range access, as a slice would.
func (r *ring) At(i int) int64 {
	if i < 0 || i >= r.count {
		panic("core: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Last returns the most recently pushed sample; ok is false when empty.
func (r *ring) Last() (int64, bool) {
	if r.count == 0 {
		return 0, false
	}
	return r.At(r.count - 1), true
}

// Snapshot copies the window contents, oldest first.
func (r *ring) Snapshot() []int64 {
	return r.AppendTo(make([]int64, 0, r.count))
}

// AppendTo appends the window contents to dst, oldest first, and returns
// it. The two wrapped segments are copied with at most two copy calls.
func (r *ring) AppendTo(dst []int64) []int64 {
	if r.count == 0 {
		return dst
	}
	end := r.head + r.count
	if end <= len(r.buf) {
		return append(dst, r.buf[r.head:end]...)
	}
	dst = append(dst, r.buf[r.head:]...)
	return append(dst, r.buf[:end-len(r.buf)]...)
}

// Reset discards all samples but keeps the allocated buffer.
func (r *ring) Reset() {
	r.head = 0
	r.count = 0
}
