package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// repeatPattern builds a stream of n samples by cycling through pattern.
func repeatPattern(pattern []int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"window too small", Config{WindowSize: 1, MaxLag: 1, MinRepeats: 1, ConfirmRuns: 1}, false},
		{"lag zero", Config{WindowSize: 8, MaxLag: -1, MinRepeats: 1, ConfirmRuns: 1}, false},
		{"lag >= window", Config{WindowSize: 8, MaxLag: 8, MinRepeats: 1, ConfirmRuns: 1}, false},
		{"min repeats", Config{WindowSize: 8, MaxLag: 4, MinRepeats: -2, ConfirmRuns: 1}, false},
		{"confirm runs", Config{WindowSize: 8, MaxLag: 4, MinRepeats: 1, ConfirmRuns: -1}, false},
		{"hold down", Config{WindowSize: 8, MaxLag: 4, MinRepeats: 1, ConfirmRuns: 1, HoldDown: -1}, false},
		{"lock tolerance", Config{WindowSize: 8, MaxLag: 4, MinRepeats: 1, ConfirmRuns: 1, LockTolerance: 1.5}, false},
		{"small but valid", Config{WindowSize: 4, MaxLag: 2, MinRepeats: 1, ConfirmRuns: 1}, true},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() error=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestConfigWithDefaultsFillsZeroFields(t *testing.T) {
	got := Config{WindowSize: 32}.withDefaults()
	def := DefaultConfig()
	if got.WindowSize != 32 {
		t.Errorf("explicit WindowSize overwritten: %d", got.WindowSize)
	}
	if got.MaxLag != def.MaxLag || got.MinRepeats != def.MinRepeats ||
		got.ConfirmRuns != def.ConfirmRuns || got.HoldDown != def.HoldDown ||
		got.LockTolerance != def.LockTolerance {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestNewDetectorPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDetector with MaxLag >= WindowSize should panic")
		}
	}()
	NewDetector(Config{WindowSize: 4, MaxLag: 10, MinRepeats: 1, ConfirmRuns: 1})
}

func TestDetectorConstantStreamHasPeriodOne(t *testing.T) {
	d := NewDetector(Config{WindowSize: 16, MaxLag: 8})
	for i := 0; i < 10; i++ {
		d.Observe(7)
	}
	p, ok := d.Period()
	if !ok || p != 1 {
		t.Fatalf("constant stream: period=%d ok=%v, want 1,true", p, ok)
	}
	v, ok := d.Predict(1)
	if !ok || v != 7 {
		t.Fatalf("prediction=%d,%v want 7,true", v, ok)
	}
}

func TestDetectorFindsSmallestPeriod(t *testing.T) {
	// Pattern of length 6 is also periodic with 12, 18, ...; the detector
	// must report the smallest lag.
	pattern := []int64{1, 2, 5, 7, 9, 2}
	d := NewDetector(Config{WindowSize: 64, MaxLag: 32})
	for _, x := range repeatPattern(pattern, 40) {
		d.Observe(x)
	}
	p, ok := d.Period()
	if !ok || p != len(pattern) {
		t.Fatalf("period=%d ok=%v, want %d,true", p, ok, len(pattern))
	}
}

func TestDetectorBTLikePeriod18(t *testing.T) {
	// Figure 1 of the paper: the sender stream of BT.9 at process 3 has
	// period 18 with senders {1, 2, 5, 7, 9} in a fixed order.
	pattern := []int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}
	if len(pattern) != 18 {
		t.Fatal("test pattern must have length 18")
	}
	stream := repeatPattern(pattern, 200)
	p, ok := DetectPeriod(stream, DefaultConfig())
	if !ok || p != 18 {
		t.Fatalf("DetectPeriod=%d,%v want 18,true", p, ok)
	}
}

func TestDetectorNoPeriodInRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDetector(Config{WindowSize: 64, MaxLag: 20})
	for i := 0; i < 500; i++ {
		d.Observe(rng.Int63n(1 << 40))
	}
	if p, ok := d.Period(); ok {
		t.Fatalf("random wide-range stream should have no period, got %d", p)
	}
}

func TestDetectorNeedsMinRepeats(t *testing.T) {
	d := NewDetector(Config{WindowSize: 64, MaxLag: 32, MinRepeats: 2})
	pattern := []int64{4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	// Feed one and a half repetitions: 15 samples, period 10 would need 20.
	for _, x := range repeatPattern(pattern, 15) {
		d.Observe(x)
	}
	if p, ok := d.Period(); ok {
		t.Fatalf("period reported too early: %d (only 1.5 repetitions seen)", p)
	}
	for _, x := range repeatPattern(pattern, 40)[15:] {
		d.Observe(x)
	}
	if p, ok := d.Period(); !ok || p != 10 {
		t.Fatalf("after enough repetitions period=%d,%v want 10,true", p, ok)
	}
}

func TestDetectorPredictMultiStep(t *testing.T) {
	pattern := []int64{10, 20, 30, 40}
	d := NewDetector(Config{WindowSize: 32, MaxLag: 16})
	stream := repeatPattern(pattern, 23) // ends mid-pattern
	for _, x := range stream {
		d.Observe(x)
	}
	for k := 1; k <= 9; k++ {
		want := pattern[(len(stream)+k-1)%len(pattern)]
		got, ok := d.Predict(k)
		if !ok || got != want {
			t.Errorf("Predict(%d)=%d,%v want %d,true", k, got, ok, want)
		}
	}
	if _, ok := d.Predict(0); ok {
		t.Error("Predict(0) should abstain")
	}
	if _, ok := d.Predict(-3); ok {
		t.Error("Predict(negative) should abstain")
	}
}

func TestDetectorPredictSeries(t *testing.T) {
	d := NewDetector(Config{WindowSize: 32, MaxLag: 8})
	for _, x := range repeatPattern([]int64{1, 2, 3}, 30) {
		d.Observe(x)
	}
	preds := d.PredictSeries(5)
	if len(preds) != 5 {
		t.Fatalf("PredictSeries returned %d items, want 5", len(preds))
	}
	want := []int64{1, 2, 3, 1, 2}
	for i, pr := range preds {
		if !pr.OK || pr.Value != want[i] || pr.Ahead != i+1 {
			t.Errorf("prediction %d = %+v, want value %d ahead %d", i, pr, want[i], i+1)
		}
	}
}

func TestDetectorDistanceMatchesEquationOne(t *testing.T) {
	// Hand-computed example: window [1 2 1 2 1 3], N=6.
	d := NewDetector(Config{WindowSize: 6, MaxLag: 4, MinRepeats: 1, ConfirmRuns: 1})
	for _, x := range []int64{1, 2, 1, 2, 1, 3} {
		d.Observe(x)
	}
	// lag 1: pairs (2,1)(1,2)(2,1)(1,2)(3,1) -> all differ -> 5
	// lag 2: pairs (1,1)(2,2)(1,1)(3,2)      -> 1 mismatch
	// lag 3: pairs (2,1)(1,2)(3,1)           -> 3
	// lag 4: pairs (1,1)(3,2)                -> 1
	want := map[int]int{1: 5, 2: 1, 3: 3, 4: 1}
	for m, w := range want {
		if got := d.Distance(m); got != w {
			t.Errorf("Distance(%d)=%d want %d", m, got, w)
		}
		if got := d.DistanceDirect(m); got != w {
			t.Errorf("DistanceDirect(%d)=%d want %d", m, got, w)
		}
	}
}

func TestDetectorDistancePanicsOutOfRange(t *testing.T) {
	d := NewDetector(Config{WindowSize: 8, MaxLag: 4})
	d.Observe(1)
	for _, m := range []int{0, -1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Distance(%d) should panic", m)
				}
			}()
			d.Distance(m)
		}()
	}
}

func TestDetectorReset(t *testing.T) {
	d := NewDetector(Config{WindowSize: 16, MaxLag: 8})
	for _, x := range repeatPattern([]int64{1, 2}, 12) {
		d.Observe(x)
	}
	if _, ok := d.Period(); !ok {
		t.Fatal("expected a period before reset")
	}
	d.Reset()
	if d.Len() != 0 || d.Observed() != 0 {
		t.Fatalf("reset did not clear state: len=%d observed=%d", d.Len(), d.Observed())
	}
	if _, ok := d.Period(); ok {
		t.Fatal("period should not survive a reset")
	}
	for m := 1; m <= 8; m++ {
		if d.Distance(m) != 0 {
			t.Fatalf("mismatch counts should be zero after reset, lag %d = %d", m, d.Distance(m))
		}
	}
}

func TestDetectorPeriodWithinTolerance(t *testing.T) {
	// A period-4 stream with a single corrupted sample inside the window.
	pattern := []int64{1, 2, 3, 4}
	stream := repeatPattern(pattern, 40)
	stream[30] = 99 // within the final 40-sample window
	d := NewDetector(Config{WindowSize: 40, MaxLag: 16})
	for _, x := range stream {
		d.Observe(x)
	}
	if _, ok := d.Period(); ok {
		t.Fatal("strict period should not be detected with a corrupted sample in-window")
	}
	p, ok := d.PeriodWithin(0.2)
	if !ok || p != 4 {
		t.Fatalf("PeriodWithin(0.2)=%d,%v want 4,true", p, ok)
	}
	// A negative tolerance is clamped to strict detection.
	if _, ok := d.PeriodWithin(-1); ok {
		t.Fatal("negative tolerance should behave like strict detection")
	}
}

func TestDetectorPeriodogramShape(t *testing.T) {
	d := NewDetector(Config{WindowSize: 32, MaxLag: 12})
	for _, x := range repeatPattern([]int64{5, 6, 7, 8}, 32) {
		d.Observe(x)
	}
	pg := d.Periodogram()
	if len(pg) != 13 {
		t.Fatalf("periodogram length=%d want 13", len(pg))
	}
	for m := 1; m <= 12; m++ {
		if m%4 == 0 && pg[m] != 0 {
			t.Errorf("lag %d (multiple of period) should have zero distance, got %d", m, pg[m])
		}
		if m%4 != 0 && pg[m] == 0 {
			t.Errorf("lag %d (not a multiple of period) should have non-zero distance", m)
		}
	}
}

func TestDetectPeriodEmptyAndShortStreams(t *testing.T) {
	if _, ok := DetectPeriod(nil, DefaultConfig()); ok {
		t.Error("empty stream should have no period")
	}
	if _, ok := DetectPeriod([]int64{1}, DefaultConfig()); ok {
		t.Error("single-sample stream should have no period")
	}
	if p, ok := DetectPeriod([]int64{3, 3}, DefaultConfig()); !ok || p != 1 {
		t.Errorf("two identical samples should give period 1, got %d,%v", p, ok)
	}
}

// Property: the incrementally maintained Distance always equals the direct
// recomputation, for every lag, on arbitrary streams and window sizes.
func TestDetectorIncrementalMatchesDirect(t *testing.T) {
	f := func(raw []uint8, winRaw, lagRaw uint8) bool {
		win := int(winRaw%30) + 2
		lag := int(lagRaw % uint8(win-1))
		if lag < 1 {
			lag = 1
		}
		d := NewDetector(Config{WindowSize: win, MaxLag: lag, MinRepeats: 1, ConfirmRuns: 1})
		for _, b := range raw {
			d.Observe(int64(b % 5)) // small alphabet so collisions occur
			for m := 1; m <= lag; m++ {
				if d.Distance(m) != d.DistanceDirect(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: when a strict period p is reported, predictions for +1..+2p
// exactly equal the continuation of the window's periodic extension.
func TestDetectorPredictionConsistentWithPeriod(t *testing.T) {
	f := func(patRaw []uint8, reps uint8) bool {
		if len(patRaw) == 0 {
			return true
		}
		if len(patRaw) > 10 {
			patRaw = patRaw[:10]
		}
		pattern := make([]int64, len(patRaw))
		for i, b := range patRaw {
			pattern[i] = int64(b % 7)
		}
		n := (int(reps%5) + 3) * len(pattern)
		stream := repeatPattern(pattern, n)
		d := NewDetector(Config{WindowSize: 64, MaxLag: 30})
		for _, x := range stream {
			d.Observe(x)
		}
		p, ok := d.Period()
		if !ok {
			// A shorter sub-period may not exist only if the window is too
			// small; with these bounds a period must be found.
			return len(pattern) > 30
		}
		// The reported period must divide into a consistent predictor: the
		// prediction for +k must equal the window extended periodically.
		win := d.Window()
		for k := 1; k <= 2*p; k++ {
			got, ok := d.Predict(k)
			if !ok {
				return false
			}
			want := win[len(win)-p+((k-1)%p)]
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the detected strict period is never larger than necessary —
// shifting the window by the reported period always yields zero mismatches
// (soundness of the period claim).
func TestDetectorPeriodSoundness(t *testing.T) {
	f := func(raw []uint8) bool {
		d := NewDetector(Config{WindowSize: 48, MaxLag: 20})
		for _, b := range raw {
			d.Observe(int64(b % 4))
			if p, ok := d.Period(); ok {
				if d.DistanceDirect(p) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDetectorObserve(b *testing.B) {
	d := NewDetector(DefaultConfig())
	pattern := []int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(pattern[i%len(pattern)])
	}
}

func BenchmarkDetectorPredictFive(b *testing.B) {
	d := NewDetector(DefaultConfig())
	pattern := []int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}
	for i := 0; i < 512; i++ {
		d.Observe(pattern[i%len(pattern)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 1; k <= 5; k++ {
			d.Predict(k)
		}
	}
}
