package core

import "fmt"

// Detector is the Dynamic Periodicity Detector: it maintains a sliding
// window of the most recent samples of a stream and, for every candidate
// lag m in 1..MaxLag, the number of positions at which the window differs
// from itself shifted by m. A lag with zero mismatches is a period of the
// window (equation (1) of the paper evaluates to zero).
//
// Mismatch counts are maintained incrementally: each Observe call touches
// only the pairs gained and lost at the window boundaries, so the cost per
// observation is O(MaxLag) regardless of the window size.
//
// Detector is not safe for concurrent use; wrap it if multiple goroutines
// feed the same stream.
type Detector struct {
	cfg      Config
	win      *ring
	mismatch []int // mismatch[m] for m in 1..MaxLag (index 0 unused)
	observed int64 // total samples ever observed
}

// NewDetector returns a Detector for the given configuration. Zero fields
// in cfg are replaced by DefaultConfig values; an invalid configuration
// panics, since it is a programming error rather than a runtime condition.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Detector{
		cfg:      cfg,
		win:      newRing(cfg.WindowSize),
		mismatch: make([]int, cfg.MaxLag+1),
	}
}

// Config returns the configuration the detector was built with (after
// defaulting).
func (d *Detector) Config() Config { return d.cfg }

// Len returns the number of samples currently held in the window.
func (d *Detector) Len() int { return d.win.Len() }

// Observed returns the total number of samples ever observed, including
// those that have since left the window.
func (d *Detector) Observed() int64 { return d.observed }

// Window returns a copy of the current window contents, oldest first.
func (d *Detector) Window() []int64 { return d.win.Snapshot() }

// WindowInto appends the current window contents to dst, oldest first, and
// returns it. It lets callers that snapshot repeatedly (the predictor's
// lock path) reuse one buffer.
func (d *Detector) WindowInto(dst []int64) []int64 { return d.win.AppendTo(dst) }

// Reset discards all state, returning the detector to its initial
// condition without reallocating.
func (d *Detector) Reset() {
	d.win.Reset()
	for i := range d.mismatch {
		d.mismatch[i] = 0
	}
	d.observed = 0
}

// Observe appends one sample to the window, updating all per-lag mismatch
// counts incrementally.
func (d *Detector) Observe(x int64) {
	n := d.win.Len()
	if d.win.Full() {
		// The oldest sample is about to be evicted. For every lag m the
		// pair in which the evicted sample is the older element — the pair
		// (window[m], window[0]) — leaves the set of compared positions.
		for m := 1; m <= d.cfg.MaxLag && m < n; m++ {
			if d.win.At(m) != d.win.At(0) {
				d.mismatch[m]--
			}
		}
	}
	d.win.Push(x)
	d.observed++
	n = d.win.Len()
	// The new sample forms one new pair per lag: (x, window[n-1-m]).
	for m := 1; m <= d.cfg.MaxLag && m < n; m++ {
		if x != d.win.At(n-1-m) {
			d.mismatch[m]++
		}
	}
}

// Distance returns d(m) from equation (1) computed over the current
// window: the number of positions i for which x[i] != x[i-m]. The result
// is produced from the incrementally maintained counts; DistanceDirect
// recomputes it from scratch and is used by the tests to validate the
// incremental bookkeeping. Distance panics if m is outside 1..MaxLag.
func (d *Detector) Distance(m int) int {
	if m < 1 || m > d.cfg.MaxLag {
		panic(fmt.Sprintf("core: Distance lag %d out of range 1..%d", m, d.cfg.MaxLag))
	}
	return d.mismatch[m]
}

// DistanceDirect recomputes d(m) by scanning the window. It exists so the
// incremental counts can be cross-checked; production code should use
// Distance.
func (d *Detector) DistanceDirect(m int) int {
	if m < 1 || m > d.cfg.MaxLag {
		panic(fmt.Sprintf("core: DistanceDirect lag %d out of range 1..%d", m, d.cfg.MaxLag))
	}
	n := d.win.Len()
	count := 0
	for i := m; i < n; i++ {
		if d.win.At(i) != d.win.At(i-m) {
			count++
		}
	}
	return count
}

// pairs returns the number of compared positions for lag m in the current
// window.
func (d *Detector) pairs(m int) int {
	n := d.win.Len()
	if m >= n {
		return 0
	}
	return n - m
}

// Period returns the smallest lag m for which the window is exactly
// periodic (d(m) == 0) and for which the window holds at least
// MinRepeats*m samples. ok is false when no such lag exists, which is the
// detector's way of saying "no iterative pattern visible yet".
func (d *Detector) Period() (period int, ok bool) {
	return d.periodWithTolerance(0)
}

// PeriodWithin returns the smallest lag whose mismatch fraction
// (d(m) / compared pairs) does not exceed tol. PeriodWithin(0) is
// equivalent to Period. It is used by StreamPredictor to lock onto mildly
// perturbed physical-level streams.
func (d *Detector) PeriodWithin(tol float64) (period int, ok bool) {
	if tol < 0 {
		tol = 0
	}
	return d.periodWithTolerance(tol)
}

func (d *Detector) periodWithTolerance(tol float64) (int, bool) {
	n := d.win.Len()
	for m := 1; m <= d.cfg.MaxLag && m < n; m++ {
		if n < d.cfg.MinRepeats*m {
			// Window no longer holds enough repetitions for this or any
			// larger lag.
			break
		}
		p := d.pairs(m)
		if p <= 0 {
			break
		}
		allowed := int(tol * float64(p))
		if d.mismatch[m] <= allowed {
			return m, true
		}
	}
	return 0, false
}

// Periodogram returns a copy of the mismatch counts indexed by lag
// (index 0 is unused and always zero). It is useful for offline analysis
// and for plotting the distance profile of a stream.
func (d *Detector) Periodogram() []int {
	out := make([]int, len(d.mismatch))
	copy(out, d.mismatch)
	return out
}

// Predict returns the value the detector expects k observations in the
// future (k >= 1), based on the currently detected period: the prediction
// for x[t+k] is x[t+k-m]. ok is false when no period is detected or k is
// not positive.
func (d *Detector) Predict(k int) (int64, bool) {
	if k < 1 {
		return 0, false
	}
	m, ok := d.Period()
	if !ok {
		return 0, false
	}
	n := d.win.Len()
	// Index of x[t+k-m] within the window, where index n-1 holds x[t].
	idx := n - m + ((k - 1) % m)
	if idx < 0 || idx >= n {
		return 0, false
	}
	return d.win.At(idx), true
}

// PredictSeries predicts the next count future values. Predictions that
// cannot be made (no period detected) are reported with OK == false.
func (d *Detector) PredictSeries(count int) []Prediction {
	return d.PredictSeriesInto(make([]Prediction, 0, count), count)
}

// PredictSeriesInto appends the next count predictions to dst and returns
// it, allowing hot-path callers to reuse one buffer across queries.
func (d *Detector) PredictSeriesInto(dst []Prediction, count int) []Prediction {
	for k := 1; k <= count; k++ {
		v, ok := d.Predict(k)
		dst = append(dst, Prediction{Ahead: k, Value: v, OK: ok})
	}
	return dst
}

// Prediction is a single multi-step-ahead prediction: the value expected
// Ahead observations in the future. OK is false when the predictor
// abstained (for example because no period has been detected yet).
type Prediction struct {
	Ahead int
	Value int64
	OK    bool
}

// DetectPeriod is a convenience helper that runs a fresh Detector over an
// entire slice and reports the period detected at the end. It is used by
// the Figure 1 experiment, which asks for the period of the sender and
// size streams of a whole trace rather than for online predictions.
func DetectPeriod(xs []int64, cfg Config) (period int, ok bool) {
	d := NewDetector(cfg)
	for _, x := range xs {
		d.Observe(x)
	}
	return d.Period()
}
