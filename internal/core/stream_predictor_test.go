package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLockStateString(t *testing.T) {
	if Learning.String() != "learning" || Locked.String() != "locked" {
		t.Error("unexpected LockState strings")
	}
	if LockState(42).String() != "unknown" {
		t.Error("out-of-range LockState should stringify to unknown")
	}
}

func TestStreamPredictorLocksOnCleanStream(t *testing.T) {
	p := NewStreamPredictor(Config{WindowSize: 64, MaxLag: 32})
	pattern := []int64{3, 1, 4, 1, 5, 9}
	for _, x := range repeatPattern(pattern, 60) {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatalf("predictor should be locked after 10 repetitions, state=%v", p.State())
	}
	period, ok := p.Period()
	if !ok || period != len(pattern) {
		t.Fatalf("period=%d,%v want %d,true", period, ok, len(pattern))
	}
	locked := p.Pattern()
	if len(locked) != len(pattern) {
		t.Fatalf("locked pattern length=%d want %d", len(locked), len(pattern))
	}
	c := p.Counters()
	if c.Locks != 1 || c.Unlocks != 0 {
		t.Errorf("counters=%+v want exactly one lock and no unlocks", c)
	}
	if c.Observed != 60 {
		t.Errorf("observed=%d want 60", c.Observed)
	}
}

func TestStreamPredictorPredictsCleanStreamPerfectly(t *testing.T) {
	p := NewStreamPredictor(Config{WindowSize: 64, MaxLag: 32})
	pattern := []int64{10, 20, 30}
	stream := repeatPattern(pattern, 300)
	warmup := 30
	for i, x := range stream {
		if i >= warmup {
			// Before observing stream[i], Predict(k) refers to stream[i+k-1].
			for k := 1; k <= 5; k++ {
				idx := i + k - 1
				if idx >= len(stream) {
					continue
				}
				pred, ok := p.Predict(k)
				if !ok {
					t.Fatalf("at index %d predictor abstained for +%d after warmup", i, k)
				}
				if pred != stream[idx] {
					t.Fatalf("at index %d, +%d prediction=%d want %d", i, k, pred, stream[idx])
				}
			}
		}
		p.Observe(x)
	}
}

// TestStreamPredictorForwardAccuracy measures exactly what the evaluation
// harness measures: before observing sample i, ask for +1..+5; the +k
// prediction refers to sample i+k-1.
func TestStreamPredictorForwardAccuracy(t *testing.T) {
	p := NewStreamPredictor(Config{WindowSize: 64, MaxLag: 32})
	pattern := []int64{7, 8, 9, 10, 11}
	stream := repeatPattern(pattern, 500)
	correct := make([]int, 6)
	total := make([]int, 6)
	for i := 0; i < len(stream); i++ {
		for k := 1; k <= 5; k++ {
			idx := i + k - 1
			if idx >= len(stream) {
				continue
			}
			v, ok := p.Predict(k)
			total[k]++
			if ok && v == stream[idx] {
				correct[k]++
			}
		}
		p.Observe(stream[i])
	}
	for k := 1; k <= 5; k++ {
		acc := float64(correct[k]) / float64(total[k])
		if acc < 0.9 {
			t.Errorf("+%d accuracy %.3f < 0.9 on a perfectly periodic stream", k, acc)
		}
	}
}

func TestStreamPredictorSurvivesIsolatedPerturbation(t *testing.T) {
	cfg := Config{WindowSize: 64, MaxLag: 32, HoldDown: 4}
	p := NewStreamPredictor(cfg)
	pattern := []int64{1, 2, 3, 4, 5, 6}
	stream := repeatPattern(pattern, 200)
	// Swap two adjacent samples deep into the stream — the kind of
	// physical-level reordering Figure 2 of the paper shows.
	stream[120], stream[121] = stream[121], stream[120]
	for _, x := range stream {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatalf("a single swap must not unlock the predictor (hold-down), state=%v", p.State())
	}
	c := p.Counters()
	if c.Unlocks != 0 {
		t.Errorf("unlocks=%d want 0", c.Unlocks)
	}
	if c.MissesWhile == 0 || c.MissesWhile > 4 {
		t.Errorf("expected a couple of misses from the swap, got %d", c.MissesWhile)
	}
}

func TestStreamPredictorRelearnsAfterPatternChange(t *testing.T) {
	cfg := Config{WindowSize: 64, MaxLag: 32, HoldDown: 3, ConfirmRuns: 2}
	p := NewStreamPredictor(cfg)
	first := repeatPattern([]int64{1, 2, 3}, 120)
	second := repeatPattern([]int64{40, 50, 60, 70}, 200)
	for _, x := range first {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatal("should be locked on the first pattern")
	}
	for _, x := range second {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatal("should have relocked on the second pattern")
	}
	period, _ := p.Period()
	if period != 4 {
		t.Fatalf("period after relearn=%d want 4", period)
	}
	c := p.Counters()
	// The transition through the mixed window may cause more than one
	// lock/unlock cycle; what matters is that at least one relearn
	// happened and the predictor ends up locked on the new pattern.
	if c.Unlocks < 1 || c.Locks < 2 {
		t.Errorf("locks=%d unlocks=%d want >=2 and >=1", c.Locks, c.Unlocks)
	}
	// Once relocked, predictions must follow the new pattern.
	preds, ok := p.PredictSet(4)
	if !ok {
		t.Fatal("PredictSet should succeed while locked")
	}
	seen := map[int64]bool{}
	for _, v := range preds {
		seen[v] = true
	}
	for _, want := range []int64{40, 50, 60, 70} {
		if !seen[want] {
			t.Errorf("PredictSet(4)=%v missing %d", preds, want)
		}
	}
}

func TestStreamPredictorAbstainsBeforeLearning(t *testing.T) {
	p := NewStreamPredictor(DefaultConfig())
	if _, ok := p.Predict(1); ok {
		t.Error("fresh predictor must abstain")
	}
	if _, ok := p.PredictSet(5); ok {
		t.Error("fresh predictor must abstain from PredictSet")
	}
	if p.Pattern() != nil {
		t.Error("fresh predictor must have no pattern")
	}
	if _, ok := p.Predict(0); ok {
		t.Error("Predict(0) must abstain")
	}
	p.Observe(1)
	p.Observe(2)
	if preds := p.PredictSeries(3); len(preds) != 3 {
		t.Errorf("PredictSeries length=%d want 3", len(preds))
	}
}

func TestStreamPredictorReset(t *testing.T) {
	p := NewStreamPredictor(Config{WindowSize: 32, MaxLag: 16})
	for _, x := range repeatPattern([]int64{1, 2}, 40) {
		p.Observe(x)
	}
	if p.State() != Locked {
		t.Fatal("should be locked before reset")
	}
	p.Reset()
	if p.State() != Learning {
		t.Error("state after reset should be learning")
	}
	if p.Counters() != (Counters{}) {
		t.Errorf("counters after reset=%+v want zero", p.Counters())
	}
	if _, ok := p.Predict(1); ok {
		t.Error("predictions must not survive a reset")
	}
}

func TestStreamPredictorLocksOnNoisyStreamWithTolerance(t *testing.T) {
	// A permissive relearn threshold keeps the predictor locked through
	// bursts of swaps; the default (stricter) threshold is exercised by
	// the workload-level tests.
	cfg := Config{WindowSize: 128, MaxLag: 32, LockTolerance: 0.15, HoldDown: 8, RelearnMissRate: 0.45}
	p := NewStreamPredictor(cfg)
	rng := rand.New(rand.NewSource(11))
	pattern := []int64{2, 4, 6, 8, 10, 12}
	stream := repeatPattern(pattern, 600)
	// Perturb ~5% of samples by swapping with a neighbour.
	for i := 1; i < len(stream); i++ {
		if rng.Float64() < 0.05 {
			stream[i-1], stream[i] = stream[i], stream[i-1]
		}
	}
	hits, total := 0, 0
	for i, x := range stream {
		if i > 100 && i+1 < len(stream) {
			if v, ok := p.Predict(1); ok {
				total++
				if v == stream[i] {
					hits++
				}
			} else {
				total++
			}
		}
		p.Observe(x)
	}
	if total == 0 {
		t.Fatal("no predictions were scored")
	}
	acc := float64(hits) / float64(total)
	if acc < 0.6 {
		t.Errorf("accuracy on mildly noisy stream = %.3f, want >= 0.6", acc)
	}
}

func TestStreamPredictorRecoversFromSpuriousConstantPrefix(t *testing.T) {
	// The BT sender stream starts with a few identical setup messages
	// before the iterative pattern begins. A naive predictor locks onto
	// "period 1, always the same sender" and — because the real pattern
	// still contains that value — never accumulates enough *consecutive*
	// misses to trigger the hold-down. The miss-rate relearn trigger must
	// recover from this.
	stream := append([]int64{2, 2, 2}, repeatPattern([]int64{2, 2, 1, 1, 0, 0}, 400)...)
	p := NewStreamPredictor(DefaultConfig())
	hits, total := 0, 0
	for i, x := range stream {
		if i >= 100 {
			total++
			if v, ok := p.Predict(1); ok && v == x {
				hits++
			}
		}
		p.Observe(x)
	}
	acc := float64(hits) / float64(total)
	if acc < 0.9 {
		t.Fatalf("accuracy after the constant prefix = %.3f, want >= 0.9 (counters %+v)", acc, p.Counters())
	}
	if per, ok := p.Period(); !ok || per != 6 {
		t.Errorf("final period=%d,%v want 6", per, ok)
	}
}

func TestMissRateRelearnDisabledKeepsOldBehaviour(t *testing.T) {
	// With RelearnWindow disabled the predictor keeps the spurious lock,
	// documenting why the trigger exists.
	cfg := DefaultConfig()
	cfg.RelearnWindow = -1 // negative disables; 0 would take the default
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative RelearnWindow should fail validation")
	}
}

func TestConsensusPatternMajorityVote(t *testing.T) {
	// Window of 3 repetitions of period 4, with one corrupted sample.
	win := []int64{
		1, 2, 3, 4,
		1, 9, 3, 4, // corrupted second element
		1, 2, 3, 4,
	}
	got := consensusPattern(win, 4, map[int64]int{})
	want := []int64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("consensusPattern=%v want %v", got, want)
		}
	}
}

func TestConsensusPatternTieBreaksTowardRecent(t *testing.T) {
	// Exactly two repetitions disagree at phase 1: values 7 (older) and 9
	// (newer). The tie must go to the more recent value.
	win := []int64{1, 7, 3, 1, 9, 3}
	got := consensusPattern(win, 3, map[int64]int{})
	if got[1] != 9 {
		t.Fatalf("tie should prefer the most recent value, got %v", got)
	}
}

// Property: on any exactly periodic stream long enough to lock, the locked
// pattern reproduces the stream: predictions +1..+period are exactly the
// upcoming samples.
func TestStreamPredictorExactOnPeriodicStreams(t *testing.T) {
	f := func(patRaw []uint8) bool {
		if len(patRaw) == 0 || len(patRaw) > 12 {
			return true
		}
		pattern := make([]int64, len(patRaw))
		for i, b := range patRaw {
			pattern[i] = int64(b % 9)
		}
		p := NewStreamPredictor(Config{WindowSize: 64, MaxLag: 24})
		n := 12 * len(pattern)
		stream := repeatPattern(pattern, n+len(pattern))
		for i := 0; i < n; i++ {
			p.Observe(stream[i])
		}
		if p.State() != Locked {
			// The true smallest period may be a divisor of len(pattern);
			// either way the predictor must have locked by now.
			return false
		}
		for k := 1; k <= len(pattern); k++ {
			v, ok := p.Predict(k)
			if !ok || v != stream[n+k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStreamPredictorObservePredict(b *testing.B) {
	p := NewStreamPredictor(DefaultConfig())
	pattern := []int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(pattern[i%len(pattern)])
		for k := 1; k <= 5; k++ {
			p.Predict(k)
		}
	}
}
