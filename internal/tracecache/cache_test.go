package tracecache

import (
	"reflect"
	"sync"
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

func testRC(seed int64) workloads.RunConfig {
	return workloads.RunConfig{
		Spec: workloads.Spec{Name: "bt", Procs: 4, Iterations: 3},
		Net:  simnet.NoiselessConfig(),
		Seed: seed,
	}
}

func TestGetReturnsSameTraceForSameKey(t *testing.T) {
	c := New()
	tr1, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("second Get should return the cached *Trace, got a different pointer")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry", s)
	}
}

func TestGetDistinguishesSeeds(t *testing.T) {
	c := New()
	tr1, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c.Get(testRC(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr1 == tr2 {
		t.Error("different seeds must not share a cache entry")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 misses", s)
	}
}

func TestKeyResolvesDefaults(t *testing.T) {
	// Spelling the defaults explicitly must land on the same key as
	// leaving them zero.
	implicit := workloads.RunConfig{Spec: workloads.Spec{Name: "bt", Procs: 9}, Seed: 1}
	recv, err := workloads.TypicalReceiver("bt", 9)
	if err != nil {
		t.Fatal(err)
	}
	iters, err := workloads.Iterations(implicit.Spec)
	if err != nil {
		t.Fatal(err)
	}
	explicit := workloads.RunConfig{
		Spec:           workloads.Spec{Name: "bt", Procs: 9, Iterations: iters},
		Net:            simnet.DefaultConfig(),
		Seed:           1,
		TraceReceivers: []int{recv},
	}
	k1, err := KeyFor(implicit)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyFor(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("keys differ:\n  implicit: %+v\n  explicit: %+v", k1, k2)
	}
}

func TestConcurrentGetSimulatesOnce(t *testing.T) {
	c := New()
	const callers = 16
	traces := make([]*trace.Trace, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Get(testRC(7))
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("caller %d got a different trace pointer", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("stats = %+v, want exactly 1 simulation", s)
	}
	if s.Hits+s.Coalesced != callers-1 {
		t.Errorf("stats = %+v, want %d hits+coalesced", s, callers-1)
	}
}

func TestCachedTraceMatchesDirectRun(t *testing.T) {
	c := New()
	cached, err := c.Get(testRC(5))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := workloads.Run(testRC(5))
	if err != nil {
		t.Fatal(err)
	}
	if cached.App != direct.App || cached.Procs != direct.Procs {
		t.Fatalf("metadata mismatch: cached %s.%d, direct %s.%d",
			cached.App, cached.Procs, direct.App, direct.Procs)
	}
	if !reflect.DeepEqual(cached.Records, direct.Records) {
		t.Error("cached trace records differ from a direct simulation")
	}
}

func TestClear(t *testing.T) {
	c := New()
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("entries after Clear = %d, want 0", s.Entries)
	}
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("stats = %+v, want a re-simulation after Clear", s)
	}
}

func TestGetErrorIsCached(t *testing.T) {
	c := New()
	bad := workloads.RunConfig{Spec: workloads.Spec{Name: "no-such-app", Procs: 4}}
	if _, err := c.Get(bad); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
	if _, err := c.Get(bad); err == nil {
		t.Fatal("expected the cached error again")
	}
}
