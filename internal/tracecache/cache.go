// Package tracecache provides a keyed, concurrency-safe cache of simulated
// workload traces.
//
// The paper's evaluation is a grid of (workload, process count, network
// config, seed) experiments, and several tables and figures draw on the
// same cells: Table 1, Figure 3 and Figure 4 all simulate the full paper
// grid, Figures 1 and 2 re-simulate BT instances that the grid already
// contains, and the scalability replays re-run BT.25 and friends. Because
// every simulation is a pure function of its RunConfig (the engine derives
// all randomness deterministically from the seed), identical configurations
// always produce identical traces — so simulating them more than once is
// pure waste. The cache memoises traces by their full configuration key and
// deduplicates concurrent requests singleflight-style: when several workers
// of the parallel experiment runner ask for the same spec at once, exactly
// one simulates and the rest wait for its result.
//
// A cache built with NewDisk adds a second, persistent tier: simulated
// traces are written as content-addressed files in the binary trace format
// (internal/trace codec.go) under the cache directory, and later runs —
// including runs in fresh processes — promote entries from disk instead of
// re-simulating. See disk.go for the layout and the corruption story.
//
// Cached traces are shared: callers must treat them as read-only (which
// every consumer in this repository does — trace.Trace's stream index makes
// concurrent reads safe). Callers that need a private mutable trace should
// use workloads.Run directly.
package tracecache

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// Key identifies one simulation configuration completely: two RunConfigs
// with equal keys produce identical traces.
type Key struct {
	App        string
	Procs      int
	Iterations int // effective (defaults resolved)
	Seed       int64
	Net        simnet.Config
	// Receivers is the canonical encoding of the traced receiver set:
	// "all", or a comma-separated sorted rank list such as "3" or "0,3,7".
	Receivers string
}

// KeyFor derives the cache key for a run configuration. It resolves the
// workload's default iteration count and the default traced receiver so
// that configurations that only differ in how the defaults are spelled
// share a cache entry.
func KeyFor(rc workloads.RunConfig) (Key, error) {
	iters, err := workloads.Iterations(rc.Spec)
	if err != nil {
		return Key{}, err
	}
	net := rc.Net
	if net == (simnet.Config{}) {
		net = simnet.DefaultConfig()
	}
	receivers := "all"
	if !rc.TraceAllReceivers {
		ranks := rc.TraceReceivers
		if len(ranks) == 0 {
			recv, err := workloads.TypicalReceiver(rc.Spec.Name, rc.Spec.Procs)
			if err != nil {
				return Key{}, err
			}
			ranks = []int{recv}
		}
		sorted := append([]int(nil), ranks...)
		sort.Ints(sorted)
		receivers = ""
		for i, r := range sorted {
			if i > 0 {
				receivers += ","
			}
			receivers += strconv.Itoa(r)
		}
	}
	return Key{
		App:        rc.Spec.Name,
		Procs:      rc.Spec.Procs,
		Iterations: iters,
		Seed:       rc.Seed,
		Net:        net,
		Receivers:  receivers,
	}, nil
}

// Stats counts what happened to a cache over its lifetime. Misses counts
// actual simulator invocations: a Get answered by the disk tier increments
// DiskHits instead, so Misses == 0 over a run proves the run needed no
// simulation at all.
type Stats struct {
	Hits       int64 // Get calls answered from a completed memory entry
	Misses     int64 // Get calls that ran the simulation
	Coalesced  int64 // Get calls that waited on another caller's fill
	DiskHits   int64 // entries promoted from the disk tier into memory
	DiskWrites int64 // fresh simulations persisted to the disk tier
	DiskErrors int64 // corrupt/unreadable/unwritable disk entries (recovered)
	Entries    int   // entries currently cached in memory

	// Columnar store tier counters (NewDiskStore caches only). The scan
	// engine reports what each promotion touched; corrupt store entries
	// are counted here as well as in DiskErrors before re-simulation.
	StoreBlocksRead       int64 // column blocks read while promoting store entries
	StorePartitionsPruned int64 // partitions skipped via the store footer index
	StoreCorruptBlocks    int64 // corrupt store entries dropped and re-simulated
}

// Delta returns s with before's counters subtracted; Entries stays
// absolute (it is a gauge, not a counter). CLIs use it to report the
// activity of one run against a snapshot taken before it.
func (s Stats) Delta(before Stats) Stats {
	s.Hits -= before.Hits
	s.Misses -= before.Misses
	s.Coalesced -= before.Coalesced
	s.DiskHits -= before.DiskHits
	s.DiskWrites -= before.DiskWrites
	s.DiskErrors -= before.DiskErrors
	s.StoreBlocksRead -= before.StoreBlocksRead
	s.StorePartitionsPruned -= before.StorePartitionsPruned
	s.StoreCorruptBlocks -= before.StoreCorruptBlocks
	return s
}

// String renders the counters in the one-line form the CLI -cache-stats
// flags print. Misses are labelled "simulations" because a miss is
// exactly one simulator invocation; simulations=0 proves a warm cache
// served everything.
func (s Stats) String() string {
	base := fmt.Sprintf("simulations=%d disk-hits=%d disk-writes=%d disk-errors=%d mem-hits=%d coalesced=%d entries=%d",
		s.Misses, s.DiskHits, s.DiskWrites, s.DiskErrors, s.Hits, s.Coalesced, s.Entries)
	if s.StoreBlocksRead != 0 || s.StorePartitionsPruned != 0 || s.StoreCorruptBlocks != 0 {
		base += fmt.Sprintf(" store-blocks=%d store-pruned=%d store-corrupt=%d",
			s.StoreBlocksRead, s.StorePartitionsPruned, s.StoreCorruptBlocks)
	}
	return base
}

// entry is one in-flight or completed simulation.
type entry struct {
	done chan struct{} // closed when tr/err are valid
	tr   *trace.Trace
	err  error
}

// Cache memoises workload simulations. The zero value is not usable; use
// New or NewDisk. A single Cache may be used from any number of
// goroutines.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
	// dir, when non-empty, backs the memory tier with content-addressed
	// trace files (see disk.go). The memory tier promotes from disk on a
	// miss and writes through to disk after simulating.
	dir string
	// store selects the columnar .mpts trace store as the disk-tier
	// format instead of the flat .mpt codec (NewDiskStore).
	store bool
}

// New returns an empty memory-only cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]*entry)}
}

// NewDisk returns a cache whose memory tier is backed by trace files under
// dir. The directory is created on first write; an existing directory
// warms the cache across process restarts. Several caches (in the same or
// different processes) may safely share one directory.
func NewDisk(dir string) *Cache {
	return &Cache{entries: make(map[Key]*entry), dir: dir}
}

// NewDiskStore is NewDisk with the columnar trace store (.mpts,
// internal/tracestore) as the disk-tier format: entries are persisted as
// partitioned column blocks and promoted with a parallel scan, with the
// store's read accounting surfaced through the Store* Stats counters.
// The two formats coexist in one directory (different extensions), so
// switching formats neither invalidates nor corrupts an existing cache.
func NewDiskStore(dir string) *Cache {
	return &Cache{entries: make(map[Key]*entry), dir: dir, store: true}
}

// Dir returns the disk-tier directory, or "" for a memory-only cache.
func (c *Cache) Dir() string { return c.dir }

// Shared is the process-wide cache used by the evaluation harness by
// default. The paper grid is small (a few dozen configurations), so the
// cache is unbounded; long-running processes that sweep many seeds should
// Clear it between sweeps or use a private Cache.
var Shared = New()

// Get returns the trace for the given run configuration, filling the entry
// at most once per key: from the disk tier when the cache has one and the
// entry is present there, from the simulator otherwise. Concurrent calls
// for the same key block until the single fill finishes and then share its
// result. Errors are cached too: a failing configuration fails the same
// way for every caller.
func (c *Cache) Get(rc workloads.RunConfig) (*trace.Trace, error) {
	key, err := KeyFor(rc)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.stats.Hits++
		default:
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.done
		return e.tr, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.tr, e.err = c.fill(key, func() (*trace.Trace, error) { return workloads.Run(rc) })
	close(e.done)
	return e.tr, e.err
}

// Clear drops every cached entry. In-flight simulations complete and are
// delivered to their waiters, but are no longer retained.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.entries = make(map[Key]*entry)
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
