package tracecache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// freshDisk returns a disk-backed cache over a new (or shared) directory.
func freshDisk(t *testing.T, dir string) *Cache {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	return NewDisk(dir)
}

func entryPath(t *testing.T, dir string, rc workloads.RunConfig) string {
	t.Helper()
	key, err := KeyFor(rc)
	if err != nil {
		t.Fatal(err)
	}
	return Path(dir, key)
}

func TestDiskColdMissSimulatesAndPersists(t *testing.T) {
	dir := t.TempDir()
	c := freshDisk(t, dir)
	tr, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.DiskHits != 0 || s.DiskWrites != 1 || s.DiskErrors != 0 {
		t.Errorf("cold stats = %+v, want 1 miss, 1 disk write", s)
	}
	path := entryPath(t, dir, testRC(1))
	onDisk, err := trace.LoadBinaryFile(path)
	if err != nil {
		t.Fatalf("persisted entry unreadable: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, onDisk.Records) {
		t.Error("persisted trace differs from the returned one")
	}
	// No temp files may linger after a successful write.
	matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}

func TestDiskWarmRestartNeedsZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	warm := freshDisk(t, dir)
	want, err := warm.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory models a process restart: the
	// memory tier is empty, the disk tier is warm.
	restarted := freshDisk(t, dir)
	got, err := restarted.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	s := restarted.Stats()
	if s.Misses != 0 || s.DiskHits != 1 {
		t.Errorf("warm stats = %+v, want 0 simulations and 1 disk hit", s)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("disk-tier trace differs from the simulated one")
	}

	// Second Get in the restarted process is a plain memory hit.
	if _, err := restarted.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if s := restarted.Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Errorf("stats after memory hit = %+v, want hits=1 diskhits=1", s)
	}
}

func TestDiskCorruptEntryIsResimulated(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":   func(b []byte) []byte { b[len(b)/3] ^= 0xff; return b },
		"empty-file": func(b []byte) []byte { return nil },
		"garbage":    func(b []byte) []byte { return []byte("not a trace at all") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seeded := freshDisk(t, dir)
			want, err := seeded.Get(testRC(3))
			if err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, dir, testRC(3))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c := freshDisk(t, dir)
			got, err := c.Get(testRC(3))
			if err != nil {
				t.Fatalf("corrupt disk entry must be recovered, got error: %v", err)
			}
			if !reflect.DeepEqual(want.Records, got.Records) {
				t.Error("re-simulated trace differs from the original")
			}
			s := c.Stats()
			if s.DiskErrors != 1 || s.Misses != 1 || s.DiskWrites != 1 {
				t.Errorf("stats = %+v, want 1 disk error, 1 re-simulation, 1 re-write", s)
			}
			// The rewritten entry must be healthy again.
			if _, err := trace.LoadBinaryFile(path); err != nil {
				t.Errorf("entry not repaired on disk: %v", err)
			}
		})
	}
}

func TestDiskEntryForWrongConfigRejected(t *testing.T) {
	// A trace whose header metadata disagrees with the key (e.g. a file
	// copied into the wrong slot) must not be served.
	dir := t.TempDir()
	path := entryPath(t, dir, testRC(1))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	wrong := trace.New("lu", 99)
	wrong.Append(trace.Record{Op: "send"})
	if err := trace.SaveBinaryFile(path, wrong); err != nil {
		t.Fatal(err)
	}
	c := freshDisk(t, dir)
	got, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "bt" || got.Procs != 4 {
		t.Errorf("served the mismatched disk entry: %s.%d", got.App, got.Procs)
	}
	if s := c.Stats(); s.DiskErrors != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want the mismatch counted and a re-simulation", s)
	}
}

func TestDiskParallelGetsSharedDirRaceClean(t *testing.T) {
	// Many goroutines over several Cache instances sharing one directory:
	// the per-cache singleflight plus atomic file writes must keep this
	// race-clean (run under -race) and every caller must see identical
	// records.
	dir := t.TempDir()
	const caches = 4
	const callersPer = 8
	cs := make([]*Cache, caches)
	for i := range cs {
		cs[i] = freshDisk(t, dir)
	}
	var wg sync.WaitGroup
	results := make([][]trace.Record, caches*callersPer)
	errs := make([]error, caches*callersPer)
	for i := 0; i < caches; i++ {
		for j := 0; j < callersPer; j++ {
			wg.Add(1)
			go func(slot int, c *Cache) {
				defer wg.Done()
				tr, err := c.Get(testRC(5))
				if err != nil {
					errs[slot] = err
					return
				}
				results[slot] = tr.Records
			}(i*callersPer+j, cs[i])
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", slot, err)
		}
	}
	for slot := 1; slot < len(results); slot++ {
		if !reflect.DeepEqual(results[0], results[slot]) {
			t.Fatalf("caller %d saw different records", slot)
		}
	}
	// Across all caches each ran its fill at most once; at least one
	// simulated, the others may have promoted from disk depending on
	// timing, but nobody may have both missed and disk-hit more than once.
	var sims, diskHits int64
	for _, c := range cs {
		s := c.Stats()
		if s.Misses+s.DiskHits != 1 {
			t.Errorf("cache stats %+v: want exactly one fill per cache", s)
		}
		sims += s.Misses
		diskHits += s.DiskHits
	}
	if sims < 1 {
		t.Error("no cache simulated at all")
	}
	if sims+diskHits != caches {
		t.Errorf("fills = %d sims + %d disk hits, want %d total", sims, diskHits, caches)
	}
	// The shared directory holds exactly the one entry (plus no temp junk).
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasPrefix(f.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", f.Name())
		}
	}
	if len(files) != 1 {
		t.Errorf("cache dir holds %d files, want 1", len(files))
	}
}

func TestDiskUnwritableDirDegradesToMemory(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("directory permissions are not enforced for root")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	c := freshDisk(t, dir)
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatalf("unwritable cache dir must not fail Get: %v", err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.DiskWrites != 0 || s.DiskErrors != 1 {
		t.Errorf("stats = %+v, want simulation to succeed with the write failure counted", s)
	}
	// The memory tier still works.
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Errorf("stats = %+v, want a memory hit", s)
	}
}

func TestDiskSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-dead-writer.mpt")
	fresh := filepath.Join(dir, ".tmp-live-writer.mpt")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c := freshDisk(t, dir)
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived a store")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("recent temp file (a possibly live writer) was swept")
	}
}

func TestMemoryOnlyCacheTouchesNoDisk(t *testing.T) {
	c := New()
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.DiskHits != 0 || s.DiskWrites != 0 || s.DiskErrors != 0 {
		t.Errorf("memory-only cache reported disk activity: %+v", s)
	}
	if c.Dir() != "" {
		t.Errorf("Dir() = %q, want empty", c.Dir())
	}
}

func TestKeyCanonicalDistinguishesConfigs(t *testing.T) {
	// Different configurations must land in different files.
	base := testRC(1)
	variants := []workloads.RunConfig{
		testRC(2),
		{Spec: workloads.Spec{Name: "bt", Procs: 4, Iterations: 4}, Net: base.Net, Seed: 1},
		{Spec: workloads.Spec{Name: "bt", Procs: 9, Iterations: 3}, Net: base.Net, Seed: 1},
		{Spec: base.Spec, Seed: 1}, // default (noisy) net vs noiseless
		{Spec: base.Spec, Net: base.Net, Seed: 1, TraceAllReceivers: true},
	}
	dir := t.TempDir()
	seen := map[string]int{entryPath(t, dir, base): 0}
	for i, rc := range variants {
		p := entryPath(t, dir, rc)
		if prev, dup := seen[p]; dup {
			t.Errorf("variant %d collides with %d on %s", i+1, prev, p)
		}
		seen[p] = i + 1
	}
}
