package tracecache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
	"mpipredict/internal/workloads"
)

// freshDisk returns a disk-backed cache over a new (or shared) directory.
func freshDisk(t *testing.T, dir string) *Cache {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	return NewDisk(dir)
}

func entryPath(t *testing.T, dir string, rc workloads.RunConfig) string {
	t.Helper()
	key, err := KeyFor(rc)
	if err != nil {
		t.Fatal(err)
	}
	return Path(dir, key)
}

func TestDiskColdMissSimulatesAndPersists(t *testing.T) {
	dir := t.TempDir()
	c := freshDisk(t, dir)
	tr, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.DiskHits != 0 || s.DiskWrites != 1 || s.DiskErrors != 0 {
		t.Errorf("cold stats = %+v, want 1 miss, 1 disk write", s)
	}
	path := entryPath(t, dir, testRC(1))
	onDisk, err := trace.Load(path)
	if err != nil {
		t.Fatalf("persisted entry unreadable: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, onDisk.Records) {
		t.Error("persisted trace differs from the returned one")
	}
	// No temp files may linger after a successful write.
	matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}

func TestDiskWarmRestartNeedsZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	warm := freshDisk(t, dir)
	want, err := warm.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory models a process restart: the
	// memory tier is empty, the disk tier is warm.
	restarted := freshDisk(t, dir)
	got, err := restarted.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	s := restarted.Stats()
	if s.Misses != 0 || s.DiskHits != 1 {
		t.Errorf("warm stats = %+v, want 0 simulations and 1 disk hit", s)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("disk-tier trace differs from the simulated one")
	}

	// Second Get in the restarted process is a plain memory hit.
	if _, err := restarted.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if s := restarted.Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Errorf("stats after memory hit = %+v, want hits=1 diskhits=1", s)
	}
}

func TestDiskCorruptEntryIsResimulated(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":   func(b []byte) []byte { b[len(b)/3] ^= 0xff; return b },
		"empty-file": func(b []byte) []byte { return nil },
		"garbage":    func(b []byte) []byte { return []byte("not a trace at all") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seeded := freshDisk(t, dir)
			want, err := seeded.Get(testRC(3))
			if err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, dir, testRC(3))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c := freshDisk(t, dir)
			got, err := c.Get(testRC(3))
			if err != nil {
				t.Fatalf("corrupt disk entry must be recovered, got error: %v", err)
			}
			if !reflect.DeepEqual(want.Records, got.Records) {
				t.Error("re-simulated trace differs from the original")
			}
			s := c.Stats()
			if s.DiskErrors != 1 || s.Misses != 1 || s.DiskWrites != 1 {
				t.Errorf("stats = %+v, want 1 disk error, 1 re-simulation, 1 re-write", s)
			}
			// The rewritten entry must be healthy again.
			if _, err := trace.Load(path); err != nil {
				t.Errorf("entry not repaired on disk: %v", err)
			}
		})
	}
}

func TestDiskEntryForWrongConfigRejected(t *testing.T) {
	// A trace whose header metadata disagrees with the key (e.g. a file
	// copied into the wrong slot) must not be served.
	dir := t.TempDir()
	path := entryPath(t, dir, testRC(1))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	wrong := trace.New("lu", 99)
	wrong.Append(trace.Record{Op: "send"})
	if err := trace.SaveBinaryFile(path, wrong); err != nil {
		t.Fatal(err)
	}
	c := freshDisk(t, dir)
	got, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "bt" || got.Procs != 4 {
		t.Errorf("served the mismatched disk entry: %s.%d", got.App, got.Procs)
	}
	if s := c.Stats(); s.DiskErrors != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want the mismatch counted and a re-simulation", s)
	}
}

func TestDiskParallelGetsSharedDirRaceClean(t *testing.T) {
	// Many goroutines over several Cache instances sharing one directory:
	// the per-cache singleflight plus atomic file writes must keep this
	// race-clean (run under -race) and every caller must see identical
	// records.
	dir := t.TempDir()
	const caches = 4
	const callersPer = 8
	cs := make([]*Cache, caches)
	for i := range cs {
		cs[i] = freshDisk(t, dir)
	}
	var wg sync.WaitGroup
	results := make([][]trace.Record, caches*callersPer)
	errs := make([]error, caches*callersPer)
	for i := 0; i < caches; i++ {
		for j := 0; j < callersPer; j++ {
			wg.Add(1)
			go func(slot int, c *Cache) {
				defer wg.Done()
				tr, err := c.Get(testRC(5))
				if err != nil {
					errs[slot] = err
					return
				}
				results[slot] = tr.Records
			}(i*callersPer+j, cs[i])
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", slot, err)
		}
	}
	for slot := 1; slot < len(results); slot++ {
		if !reflect.DeepEqual(results[0], results[slot]) {
			t.Fatalf("caller %d saw different records", slot)
		}
	}
	// Across all caches each ran its fill at most once; at least one
	// simulated, the others may have promoted from disk depending on
	// timing, but nobody may have both missed and disk-hit more than once.
	var sims, diskHits int64
	for _, c := range cs {
		s := c.Stats()
		if s.Misses+s.DiskHits != 1 {
			t.Errorf("cache stats %+v: want exactly one fill per cache", s)
		}
		sims += s.Misses
		diskHits += s.DiskHits
	}
	if sims < 1 {
		t.Error("no cache simulated at all")
	}
	if sims+diskHits != caches {
		t.Errorf("fills = %d sims + %d disk hits, want %d total", sims, diskHits, caches)
	}
	// The shared directory holds exactly the one entry (plus no temp junk).
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasPrefix(f.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", f.Name())
		}
	}
	if len(files) != 1 {
		t.Errorf("cache dir holds %d files, want 1", len(files))
	}
}

func TestDiskUnwritableDirDegradesToMemory(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("directory permissions are not enforced for root")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	c := freshDisk(t, dir)
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatalf("unwritable cache dir must not fail Get: %v", err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.DiskWrites != 0 || s.DiskErrors != 1 {
		t.Errorf("stats = %+v, want simulation to succeed with the write failure counted", s)
	}
	// The memory tier still works.
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Errorf("stats = %+v, want a memory hit", s)
	}
}

func TestDiskSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-dead-writer.mpt")
	fresh := filepath.Join(dir, ".tmp-live-writer.mpt")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c := freshDisk(t, dir)
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived a store")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("recent temp file (a possibly live writer) was swept")
	}
}

func TestMemoryOnlyCacheTouchesNoDisk(t *testing.T) {
	c := New()
	if _, err := c.Get(testRC(1)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.DiskHits != 0 || s.DiskWrites != 0 || s.DiskErrors != 0 {
		t.Errorf("memory-only cache reported disk activity: %+v", s)
	}
	if c.Dir() != "" {
		t.Errorf("Dir() = %q, want empty", c.Dir())
	}
}

func TestKeyCanonicalDistinguishesConfigs(t *testing.T) {
	// Different configurations must land in different files.
	base := testRC(1)
	variants := []workloads.RunConfig{
		testRC(2),
		{Spec: workloads.Spec{Name: "bt", Procs: 4, Iterations: 4}, Net: base.Net, Seed: 1},
		{Spec: workloads.Spec{Name: "bt", Procs: 9, Iterations: 3}, Net: base.Net, Seed: 1},
		{Spec: base.Spec, Seed: 1}, // default (noisy) net vs noiseless
		{Spec: base.Spec, Net: base.Net, Seed: 1, TraceAllReceivers: true},
	}
	dir := t.TempDir()
	seen := map[string]int{entryPath(t, dir, base): 0}
	for i, rc := range variants {
		p := entryPath(t, dir, rc)
		if prev, dup := seen[p]; dup {
			t.Errorf("variant %d collides with %d on %s", i+1, prev, p)
		}
		seen[p] = i + 1
	}
}

// freshDiskStore is freshDisk for the columnar store tier.
func freshDiskStore(t *testing.T, dir string) *Cache {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	return NewDiskStore(dir)
}

func TestDiskStoreTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := freshDiskStore(t, dir)
	want, err := c.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 1 || s.DiskWrites != 1 {
		t.Errorf("cold stats = %+v, want 1 miss, 1 disk write", s)
	}
	key, err := KeyFor(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	path := StorePath(dir, key)
	if !strings.HasSuffix(path, ".mpts") {
		t.Fatalf("store entry path %q is not a .mpts file", path)
	}
	r, err := tracestore.Open(path)
	if err != nil {
		t.Fatalf("persisted store entry unreadable: %v", err)
	}
	events := r.Events()
	r.Close()
	if events != int64(len(want.Records)) {
		t.Errorf("store entry indexes %d events, trace holds %d", events, len(want.Records))
	}

	// A restart over the same directory serves from the store tier and
	// surfaces the store read statistics.
	restarted := freshDiskStore(t, dir)
	got, err := restarted.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("store-tier trace differs from the simulated one")
	}
	s := restarted.Stats()
	if s.Misses != 0 || s.DiskHits != 1 {
		t.Errorf("warm stats = %+v, want 0 simulations and 1 disk hit", s)
	}
	if s.StoreBlocksRead == 0 {
		t.Errorf("warm stats = %+v, want StoreBlocksRead > 0 after a store read", s)
	}
	if !strings.Contains(s.String(), "store-blocks=") {
		t.Errorf("Stats.String() %q is missing the store counters", s.String())
	}
}

func TestDiskStoreCorruptEntryIsResimulated(t *testing.T) {
	dir := t.TempDir()
	seeded := freshDiskStore(t, dir)
	want, err := seeded.Get(testRC(3))
	if err != nil {
		t.Fatal(err)
	}
	key, err := KeyFor(testRC(3))
	if err != nil {
		t.Fatal(err)
	}
	path := StorePath(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c := freshDiskStore(t, dir)
	got, err := c.Get(testRC(3))
	if err != nil {
		t.Fatalf("corrupt store entry must be recovered, got error: %v", err)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("re-simulated trace differs from the original")
	}
	s := c.Stats()
	if s.DiskErrors != 1 || s.StoreCorruptBlocks != 1 || s.Misses != 1 || s.DiskWrites != 1 {
		t.Errorf("stats = %+v, want 1 disk error, 1 corrupt store block, 1 re-simulation, 1 re-write", s)
	}
	// The rewritten entry must be healthy again.
	if _, _, err := tracestore.LoadFile(path); err != nil {
		t.Errorf("entry not repaired on disk: %v", err)
	}
}

func TestDiskFlatAndStoreTiersCoexist(t *testing.T) {
	// One directory can back both tier formats: the extensions differ, so
	// the entries never collide and each tier heals independently.
	dir := t.TempDir()
	flat := freshDisk(t, dir)
	want, err := flat.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	store := freshDiskStore(t, dir)
	got, err := store.Get(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Error("the two tiers disagree about the same configuration")
	}
	// The store cache missed (no .mpts yet) and wrote its own entry.
	if s := store.Stats(); s.Misses != 1 || s.DiskWrites != 1 || s.DiskHits != 0 {
		t.Errorf("store stats = %+v, want its own miss and write", s)
	}
	key, err := KeyFor(testRC(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{Path(dir, key), StorePath(dir, key)} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("tier entry %s missing: %v", p, err)
		}
	}
}

func TestStatsStringOmitsZeroStoreCounters(t *testing.T) {
	// The flat tier's stats line must not grow store noise.
	var s Stats
	s.Hits = 1
	if str := s.String(); strings.Contains(str, "store-") {
		t.Errorf("zero store counters rendered: %q", str)
	}
	s.StoreBlocksRead = 2
	if str := s.String(); !strings.Contains(str, "store-blocks=2") {
		t.Errorf("nonzero store counters not rendered: %q", str)
	}
}

func TestStatsDeltaSubtractsCountersKeepsGauge(t *testing.T) {
	before := Stats{Hits: 2, Misses: 1, DiskHits: 1, DiskWrites: 1, StoreBlocksRead: 8, Entries: 3}
	after := Stats{Hits: 5, Misses: 4, Coalesced: 2, DiskHits: 3, DiskWrites: 2, DiskErrors: 1,
		StoreBlocksRead: 24, StorePartitionsPruned: 6, StoreCorruptBlocks: 1, Entries: 7}
	d := after.Delta(before)
	want := Stats{Hits: 3, Misses: 3, Coalesced: 2, DiskHits: 2, DiskWrites: 1, DiskErrors: 1,
		StoreBlocksRead: 16, StorePartitionsPruned: 6, StoreCorruptBlocks: 1, Entries: 7}
	if d != want {
		t.Errorf("Delta = %+v, want %+v", d, want)
	}
}
