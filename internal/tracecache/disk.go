package tracecache

// The disk tier. A cache constructed with NewDisk persists every simulated
// trace as a content-addressed file under its directory and consults that
// directory before simulating, so the evaluation grid survives process
// restarts: a warm cache directory answers a full Table 1 / Figures 3-4 run
// with zero simulator invocations. Files are written atomically (temp file
// + rename into place), which makes concurrent writers from different
// processes safe — the last rename wins and every intermediate state seen
// by readers is either absent or complete. Corrupt or truncated files are
// detected by the binary codec's checksum, counted in Stats.DiskErrors,
// removed and transparently re-simulated.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
)

// diskExt is the filename extension of the flat persistent trace format;
// storeExt is the columnar store tier's (NewDiskStore).
const (
	diskExt  = ".mpt"
	storeExt = ".mpts"
)

// canonical renders the key as a stable, versioned string; its hash names
// the entry's file. Any change to this encoding (or to the meaning of a
// field) must bump the leading version tag, or stale cache directories
// would serve traces for the wrong configuration.
func (k Key) canonical() string {
	return fmt.Sprintf("mpt1|app=%s|procs=%d|iters=%d|seed=%d|net=%g,%g,%g,%g,%g,%g,%d,%g|recv=%s",
		k.App, k.Procs, k.Iterations, k.Seed,
		k.Net.LatencyUS, k.Net.BandwidthBytesPerUS, k.Net.SendOverheadUS, k.Net.RecvOverheadUS,
		k.Net.JitterFrac, k.Net.ImbalanceFrac, k.Net.EagerLimitBytes, k.Net.RendezvousExtraUS,
		k.Receivers)
}

// pathFor names the entry file for k under dir with the given extension.
func pathFor(dir string, k Key, ext string) string {
	sum := sha256.Sum256([]byte(k.canonical()))
	return filepath.Join(dir, hex.EncodeToString(sum[:])+ext)
}

// Path returns the file the entry for k lives in under dir in the flat
// .mpt tier.
func Path(dir string, k Key) string { return pathFor(dir, k, diskExt) }

// StorePath returns the file the entry for k lives in under dir in the
// columnar .mpts store tier.
func StorePath(dir string, k Key) string { return pathFor(dir, k, storeExt) }

// entryPath is the file this cache's tier keeps the entry for key in.
func (c *Cache) entryPath(key Key) string {
	if c.store {
		return StorePath(c.dir, key)
	}
	return Path(c.dir, key)
}

// loadDisk reads the entry for key from the disk tier. A missing file is
// reported as fs.ErrNotExist; any other error means the file exists but
// cannot be trusted.
func (c *Cache) loadDisk(key Key) (*trace.Trace, error) {
	var tr *trace.Trace
	var err error
	if c.store {
		var st tracestore.ScanStats
		tr, st, err = tracestore.LoadFile(c.entryPath(key))
		if err == nil {
			c.mu.Lock()
			c.stats.StoreBlocksRead += int64(st.BlocksRead)
			c.stats.StorePartitionsPruned += int64(st.Pruned)
			c.mu.Unlock()
		}
	} else {
		tr, err = trace.Load(c.entryPath(key))
	}
	if err != nil {
		return nil, err
	}
	// The filename is a hash, so a collision or a file copied between
	// incompatible directories would silently serve a wrong trace; the
	// header metadata is enough to reject the realistic mistakes.
	if tr.App != key.App || tr.Procs != key.Procs {
		return nil, fmt.Errorf("tracecache: disk entry holds %s.%d, want %s.%d", tr.App, tr.Procs, key.App, key.Procs)
	}
	return tr, nil
}

// tmpMaxAge is how old an orphaned temp file (from a writer that died
// between CreateTemp and Rename) must be before sweepStaleTemps deletes
// it. Generous enough that no live writer — which holds its temp file for
// the duration of one trace encode — can be swept.
const tmpMaxAge = time.Hour

// sweepStaleTemps opportunistically garbage-collects orphaned temp files
// so long-lived shared cache directories do not accumulate debris. Purely
// best-effort: errors are ignored, and racing sweepers at worst both
// remove the same dead file.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tmpMaxAge)
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// storeDisk atomically persists one entry. Failures are returned for
// accounting but never propagated to Get callers: a read-only or full
// cache directory degrades the cache to memory-only, it does not break
// evaluation.
func (c *Cache) storeDisk(key Key, tr *trace.Trace) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	sweepStaleTemps(c.dir)
	ext := diskExt
	if c.store {
		ext = storeExt
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*"+ext)
	if err != nil {
		return err
	}
	tmp := f.Name()
	var werr error
	if c.store {
		werr = tracestore.WriteTrace(f, tr)
	} else {
		werr = trace.WriteBinary(f, tr)
	}
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return werr
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.entryPath(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// fill produces the trace for one cache entry: disk tier first (when
// configured), then the simulator, persisting fresh results back to disk.
// Exactly one goroutine runs fill per in-flight key (Get's singleflight),
// so the disk tier sees at most one writer per key per process.
func (c *Cache) fill(key Key, run func() (*trace.Trace, error)) (*trace.Trace, error) {
	if c.dir != "" {
		tr, err := c.loadDisk(key)
		switch {
		case err == nil:
			c.bump(&c.stats.DiskHits)
			return tr, nil
		case errors.Is(err, fs.ErrNotExist):
			// cold entry: fall through to the simulator
		default:
			// Corruption and transient read faults are indistinguishable
			// here (the codecs' ErrCorrupt covers both); dropping the
			// entry and re-simulating is correct for the former and merely
			// wasteful for the rare latter.
			c.bump(&c.stats.DiskErrors)
			if c.store {
				c.bump(&c.stats.StoreCorruptBlocks)
			}
			os.Remove(c.entryPath(key)) // drop the corrupt file; best effort
		}
	}
	c.bump(&c.stats.Misses)
	tr, err := run()
	if err == nil && c.dir != "" {
		if werr := c.storeDisk(key, tr); werr == nil {
			c.bump(&c.stats.DiskWrites)
		} else {
			c.bump(&c.stats.DiskErrors)
		}
	}
	return tr, err
}

func (c *Cache) bump(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}
