// Package wire is the binary columnar wire protocol of the serve hot
// path: the framing, handshake and payload codecs a prediction daemon's
// `-listen-wire` listener and the replay/load-generation clients share.
//
// The protocol exists because HTTP/JSON observe pays an encode/decode tax
// on every request while the registry underneath is allocation-free: the
// observe frame here IS the columnar stream.EventBlock layout — parallel
// varint-packed sender and size columns — so a frame decodes straight
// into reusable int64 scratch and feeds Registry.ObserveBlockSeq without
// any intermediate representation.
//
// Transport shape (DESIGN.md §10):
//
//   - One TCP connection, long-lived. Both sides open with a handshake —
//     magic "MPW\x01" plus a uvarint protocol version — and reject peers
//     they cannot speak to. Everything after the handshake is frames.
//   - A frame is: uvarint payload length, payload bytes, then a 4-byte
//     little-endian CRC-32 (IEEE) of the payload — the same integrity
//     discipline as the .mpt/.mps codecs (DESIGN.md §3), applied per
//     frame so a long-lived stream detects corruption mid-connection.
//   - payload[0] is the frame type; the rest is type-specific, built
//     from the §3 primitives (uvarint, zig-zag varint, length-prefixed
//     strings).
//
// Frame types:
//
//	FrameObserve     (0x01)  client→server: tenant, stream, strategy,
//	                         seq, then count + senders + sizes columns
//	FrameObserveAck  (0x02)  server→client: cumulative watermark — the
//	                         ordinal of the last observe frame processed
//	                         on this connection, plus the cumulative
//	                         duplicate count. One ack covers every frame
//	                         at or below the watermark, so a pipelined
//	                         burst of N frames costs one ack, not N.
//	FramePredict     (0x03)  client→server: id, tenant, stream, k
//	FramePredictResp (0x04)  server→client: id, found, observed count,
//	                         then k forecasts (sender, size, ok flags)
//	FrameError       (0x05)  server→client: code, ref, message — then
//	                         the server closes the connection
//
// Observe frames are pipelined: the client keeps writing without waiting
// for acks (bounded by its window), the server processes a whole buffered
// burst and acks once at the watermark. Duplicate suppression is the
// same per-(tenant, stream) seq dedup the HTTP surface uses, so a client
// that reconnects and resends its unacked frames verbatim converges to
// exactly-once state.
//
// Compatibility policy matches the other codecs: the magic pins the
// protocol family, the version is bumped on any incompatible change, and
// unknown frame types are errors, not extension points.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic introduces both directions of a wire connection.
var Magic = [4]byte{'M', 'P', 'W', 0x01}

// Version is the current protocol version. Both sides send it in their
// handshake; there is no downgrade negotiation at version 1 — a peer
// speaking another version is rejected.
const Version = 1

// Frame types. payload[0] of every frame.
const (
	FrameObserve     = 0x01
	FrameObserveAck  = 0x02
	FramePredict     = 0x03
	FramePredictResp = 0x04
	FrameError       = 0x05
)

// Error codes carried by FrameError. They map onto the HTTP surface's
// status classes so a client can reuse its retry policy: BadRequest and
// Conflict are permanent (fail fast), Unavailable is retryable (the
// server is draining or not yet ready — reconnect with backoff).
const (
	CodeBadRequest  = 1
	CodeConflict    = 2
	CodeUnavailable = 3
)

// MaxFramePayload bounds one frame's payload, mirroring the HTTP
// surface's observe body limit: large enough for a full 1024-event
// EventBlock with worst-case varints, small enough that a corrupt or
// adversarial length prefix cannot force a huge allocation.
const MaxFramePayload = 1 << 20

// maxStringLen bounds the tenant/stream/strategy/message strings a frame
// may carry. Tenant and stream are capped far lower by the serving API;
// this is the codec-level allocation guard.
const maxStringLen = 1 << 12

// MaxColumnLen bounds the event count of one observe frame — the
// columnar twin of the HTTP body limit (a 1 MiB JSON body holds ~40k
// events; a frame holds at most this many).
const MaxColumnLen = 1 << 16

// ErrCorrupt is wrapped by every framing and payload decoding error:
// malformed, truncated or bit-flipped input. A connection that produced
// one is unusable — framing is lost — and must be closed.
var ErrCorrupt = errors.New("corrupt wire frame")

var crcTable = crc32.MakeTable(crc32.IEEE)

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("wire: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// RemoteError is a FrameError decoded on the client: the server's
// refusal, carrying the machine-readable code, the ordinal or request id
// it refers to (0 = the connection itself) and the human message.
type RemoteError struct {
	Code uint64
	Ref  uint64
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error %d (ref %d): %s", e.Code, e.Ref, e.Msg)
}

// Retryable reports whether the refusal is transient (reconnect and
// retry) rather than a permanent rejection of the request itself.
func (e *RemoteError) Retryable() bool { return e.Code == CodeUnavailable }

// --- handshake ---

// WriteHandshake sends the magic and protocol version.
func WriteHandshake(w io.Writer) error {
	var buf [4 + binary.MaxVarintLen64]byte
	copy(buf[:4], Magic[:])
	n := 4 + binary.PutUvarint(buf[4:], Version)
	_, err := w.Write(buf[:n])
	return err
}

// ReadHandshake consumes and validates the peer's magic and version.
func ReadHandshake(r *bufio.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return corruptf("reading handshake magic: %v", err)
	}
	if magic != Magic {
		return corruptf("bad handshake magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(r)
	if err != nil {
		return corruptf("reading handshake version: %v", err)
	}
	if version != Version {
		return corruptf("unsupported protocol version %d (have %d)", version, Version)
	}
	return nil
}

// --- framing ---

// FrameWriter frames payloads onto a buffered writer. It is not safe for
// concurrent use; connections own one writer each.
type FrameWriter struct {
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

// NewFrameWriter returns a FrameWriter over w. The writer buffers
// internally — call Flush to push a pipelined burst onto the wire.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriter(w)}
}

// WriteFrame frames one payload: uvarint length, payload, CRC-32 trailer.
func (fw *FrameWriter) WriteFrame(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload of %d bytes outside (0, %d]", len(payload), MaxFramePayload)
	}
	n := binary.PutUvarint(fw.buf[:], uint64(len(payload)))
	if _, err := fw.bw.Write(fw.buf[:n]); err != nil {
		return err
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(fw.buf[:4], crc32.Checksum(payload, crcTable))
	_, err := fw.bw.Write(fw.buf[:4])
	return err
}

// Flush pushes every buffered frame onto the wire.
func (fw *FrameWriter) Flush() error { return fw.bw.Flush() }

// FrameReader reads frames from a buffered reader into one reused
// payload buffer: the returned slice is valid only until the next
// ReadFrame, which is exactly the lifetime the decoders need.
type FrameReader struct {
	br      *bufio.Reader
	payload []byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Buffered reports how many bytes are already in the read buffer — the
// server's burst heuristic: process frames until the buffer drains, then
// ack once.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }

// Handshake consumes and validates the peer's handshake from the same
// buffered reader the frames will flow through.
func (fr *FrameReader) Handshake() error { return ReadHandshake(fr.br) }

// ReadFrame returns the next frame's payload, CRC-verified, in a buffer
// reused across calls. A cleanly closed connection between frames
// surfaces as io.EOF; truncation inside a frame, an oversized length or
// a checksum mismatch wrap ErrCorrupt.
func (fr *FrameReader) ReadFrame() ([]byte, error) {
	length, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, corruptf("reading frame length: %v", err)
	}
	if length == 0 || length > MaxFramePayload {
		return nil, corruptf("frame length %d outside (0, %d]", length, MaxFramePayload)
	}
	if uint64(cap(fr.payload)) < length {
		fr.payload = make([]byte, length)
	}
	fr.payload = fr.payload[:length]
	if _, err := io.ReadFull(fr.br, fr.payload); err != nil {
		return nil, corruptf("reading %d-byte frame payload: %v", length, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(fr.br, trailer[:]); err != nil {
		return nil, corruptf("reading frame checksum: %v", err)
	}
	want := binary.LittleEndian.Uint32(trailer[:])
	if got := crc32.Checksum(fr.payload, crcTable); got != want {
		return nil, corruptf("frame checksum mismatch: frame says %08x, payload hashes to %08x", want, got)
	}
	return fr.payload, nil
}

// --- payload primitives ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// cursor walks a frame payload. Every read reports corruption through
// err; callers check once at the end of a decode.
type cursor struct {
	p   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...interface{}) {
	if c.err == nil {
		c.err = corruptf(format, args...)
	}
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.fail("reading %s at offset %d", what, c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint(what string) int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.p[c.off:])
	if n <= 0 {
		c.fail("reading %s at offset %d", what, c.off)
		return 0
	}
	c.off += n
	return v
}

// bytes returns a view into the payload — no copy; the view lives only
// as long as the frame buffer.
func (c *cursor) bytes(what string) []byte {
	n := c.uvarint(what + " length")
	if c.err != nil {
		return nil
	}
	if n > maxStringLen {
		c.fail("%s length %d exceeds the format limit %d", what, n, maxStringLen)
		return nil
	}
	if uint64(len(c.p)-c.off) < n {
		c.fail("%s of %d bytes truncated at offset %d", what, n, c.off)
		return nil
	}
	b := c.p[c.off : c.off+int(n)]
	c.off += int(n)
	return b
}

func (c *cursor) done(frame string) error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.p) {
		return corruptf("%d trailing bytes after %s frame", len(c.p)-c.off, frame)
	}
	return nil
}

// --- observe ---

// AppendObserve encodes one observe frame payload: the columnar
// EventBlock layout on the wire. senders and sizes must be equal length.
func AppendObserve(dst []byte, tenant, stream, strategy string, seq int64, senders, sizes []int64) []byte {
	dst = append(dst, FrameObserve)
	dst = appendString(dst, tenant)
	dst = appendString(dst, stream)
	dst = appendString(dst, strategy)
	dst = appendVarint(dst, seq)
	dst = appendUvarint(dst, uint64(len(senders)))
	for _, v := range senders {
		dst = appendVarint(dst, v)
	}
	for _, v := range sizes {
		dst = appendVarint(dst, v)
	}
	return dst
}

// ObserveView is a decoded observe frame. Tenant, Stream and Strategy
// are views into the frame buffer (valid until the next ReadFrame); the
// Senders and Sizes columns decode into scratch slices owned by the view
// and reused across frames — the "reusable block scratch" the registry's
// ObserveBlockSeq consumes directly.
type ObserveView struct {
	Tenant   []byte
	Stream   []byte
	Strategy []byte
	Seq      int64
	Senders  []int64
	Sizes    []int64
}

// Decode parses an observe frame payload (including the leading type
// byte) into the view, reusing its column scratch.
func (v *ObserveView) Decode(p []byte) error {
	if len(p) == 0 || p[0] != FrameObserve {
		return corruptf("not an observe frame")
	}
	c := cursor{p: p, off: 1}
	v.Tenant = c.bytes("tenant")
	v.Stream = c.bytes("stream")
	v.Strategy = c.bytes("strategy")
	v.Seq = c.varint("seq")
	count := c.uvarint("event count")
	if c.err == nil && count > MaxColumnLen {
		c.fail("event count %d exceeds the frame limit %d", count, MaxColumnLen)
	}
	// A varint is at least one byte, so two columns of count events need
	// 2·count remaining bytes; rejecting early keeps a hostile count from
	// forcing a large scratch growth before the payload runs out.
	if c.err == nil && uint64(len(p)-c.off) < 2*count {
		c.fail("payload of %d bytes cannot hold 2×%d column values", len(p)-c.off, count)
	}
	if c.err != nil {
		return c.err
	}
	v.Senders = decodeColumn(v.Senders, &c, int(count), "sender")
	v.Sizes = decodeColumn(v.Sizes, &c, int(count), "size")
	return c.done("observe")
}

// decodeColumn decodes count varints into dst's backing array, growing
// it only when a larger block arrives than ever before.
func decodeColumn(dst []int64, c *cursor, count int, what string) []int64 {
	if cap(dst) < count {
		dst = make([]int64, count)
	}
	dst = dst[:count]
	for i := 0; i < count; i++ {
		dst[i] = c.varint(what + " column value")
		if c.err != nil {
			return dst[:0]
		}
	}
	return dst
}

// --- observe ack ---

// AppendAck encodes a cumulative observe acknowledgment: every observe
// frame up to and including ordinal has been processed, and dups of them
// were dropped as duplicate deliveries.
func AppendAck(dst []byte, ordinal, dups uint64) []byte {
	dst = append(dst, FrameObserveAck)
	dst = appendUvarint(dst, ordinal)
	return appendUvarint(dst, dups)
}

// DecodeAck parses an ack frame payload.
func DecodeAck(p []byte) (ordinal, dups uint64, err error) {
	if len(p) == 0 || p[0] != FrameObserveAck {
		return 0, 0, corruptf("not an ack frame")
	}
	c := cursor{p: p, off: 1}
	ordinal = c.uvarint("ack ordinal")
	dups = c.uvarint("ack duplicate count")
	return ordinal, dups, c.done("ack")
}

// --- predict ---

// AppendPredict encodes one predict request: forecast the session's next
// k messages. The id is echoed on the response so pipelined requests
// match up.
func AppendPredict(dst []byte, id uint64, tenant, stream string, k int) []byte {
	dst = append(dst, FramePredict)
	dst = appendUvarint(dst, id)
	dst = appendString(dst, tenant)
	dst = appendString(dst, stream)
	return appendUvarint(dst, uint64(k))
}

// PredictView is a decoded predict request; Tenant and Stream are views
// into the frame buffer.
type PredictView struct {
	ID     uint64
	Tenant []byte
	Stream []byte
	K      int
}

// Decode parses a predict frame payload into the view.
func (v *PredictView) Decode(p []byte) error {
	if len(p) == 0 || p[0] != FramePredict {
		return corruptf("not a predict frame")
	}
	c := cursor{p: p, off: 1}
	v.ID = c.uvarint("predict id")
	v.Tenant = c.bytes("tenant")
	v.Stream = c.bytes("stream")
	k := c.uvarint("horizon")
	if c.err == nil && k > math.MaxInt32 {
		c.fail("horizon %d is implausible", k)
	}
	v.K = int(k)
	return c.done("predict")
}

// --- predict response ---

// Forecast is one future-message forecast on the wire, mirroring the
// serving API's per-stream ok flags.
type Forecast struct {
	Sender   int64
	SenderOK bool
	Size     int64
	SizeOK   bool
}

// OK is the joint flag, matching serve.Forecast.OK.
func (f Forecast) OK() bool { return f.SenderOK && f.SizeOK }

const (
	flagSenderOK = 1 << 0
	flagSizeOK   = 1 << 1
)

// AppendPredictResp encodes a predict response. found false means the
// session does not exist (the wire twin of HTTP 404 — the registry never
// creates sessions on the predict path).
func AppendPredictResp(dst []byte, id uint64, found bool, observed int64, fcs []Forecast) []byte {
	dst = append(dst, FramePredictResp)
	dst = appendUvarint(dst, id)
	if found {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendVarint(dst, observed)
	dst = appendUvarint(dst, uint64(len(fcs)))
	for _, f := range fcs {
		var flags byte
		if f.SenderOK {
			flags |= flagSenderOK
		}
		if f.SizeOK {
			flags |= flagSizeOK
		}
		dst = append(dst, flags)
		dst = appendVarint(dst, f.Sender)
		dst = appendVarint(dst, f.Size)
	}
	return dst
}

// PredictRespView is a decoded predict response; Forecasts decode into
// scratch owned by the view and reused across frames.
type PredictRespView struct {
	ID        uint64
	Found     bool
	Observed  int64
	Forecasts []Forecast
}

// Decode parses a predict response payload into the view, reusing its
// forecast scratch.
func (v *PredictRespView) Decode(p []byte) error {
	if len(p) == 0 || p[0] != FramePredictResp {
		return corruptf("not a predict response frame")
	}
	c := cursor{p: p, off: 1}
	v.ID = c.uvarint("predict id")
	var found uint64
	if c.err == nil {
		if c.off >= len(p) {
			c.fail("reading found flag")
		} else {
			found = uint64(p[c.off])
			c.off++
			if found > 1 {
				c.fail("found flag %d is not a boolean", found)
			}
		}
	}
	v.Found = found == 1
	v.Observed = c.varint("observed count")
	count := c.uvarint("forecast count")
	// A forecast is at least three bytes (flags + two varints).
	if c.err == nil && uint64(len(p)-c.off) < 3*count {
		c.fail("payload of %d bytes cannot hold %d forecasts", len(p)-c.off, count)
	}
	if c.err != nil {
		return c.err
	}
	if uint64(cap(v.Forecasts)) < count {
		v.Forecasts = make([]Forecast, count)
	}
	v.Forecasts = v.Forecasts[:count]
	for i := range v.Forecasts {
		if c.off >= len(p) {
			c.fail("reading forecast %d flags", i)
			break
		}
		flags := p[c.off]
		c.off++
		if flags&^(flagSenderOK|flagSizeOK) != 0 {
			c.fail("forecast %d carries unknown flags %02x", i, flags)
			break
		}
		v.Forecasts[i] = Forecast{
			SenderOK: flags&flagSenderOK != 0,
			SizeOK:   flags&flagSizeOK != 0,
			Sender:   c.varint("forecast sender"),
			Size:     c.varint("forecast size"),
		}
	}
	if c.err != nil {
		v.Forecasts = v.Forecasts[:0]
		return c.err
	}
	return c.done("predict response")
}

// --- error ---

// AppendError encodes a server refusal. ref names the observe ordinal or
// predict id the refusal answers (0 = the connection itself).
func AppendError(dst []byte, code, ref uint64, msg string) []byte {
	if len(msg) > maxStringLen {
		msg = msg[:maxStringLen]
	}
	dst = append(dst, FrameError)
	dst = appendUvarint(dst, code)
	dst = appendUvarint(dst, ref)
	return appendString(dst, msg)
}

// DecodeError parses an error frame payload into a RemoteError. The
// message is copied — error values outlive frame buffers.
func DecodeError(p []byte) (*RemoteError, error) {
	if len(p) == 0 || p[0] != FrameError {
		return nil, corruptf("not an error frame")
	}
	c := cursor{p: p, off: 1}
	code := c.uvarint("error code")
	ref := c.uvarint("error ref")
	msg := c.bytes("error message")
	if err := c.done("error"); err != nil {
		return nil, err
	}
	return &RemoteError{Code: code, Ref: ref, Msg: string(msg)}, nil
}
