package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// arbitraryObserve builds a deterministic-for-seed observe frame.
func arbitraryObserve(rng *rand.Rand) []byte {
	tenants := []string{"acme", "t", "", "tenant/with spaces"}
	n := rng.Intn(64)
	senders := make([]int64, n)
	sizes := make([]int64, n)
	for i := range senders {
		senders[i] = int64(rng.Intn(1<<16) - 1<<10)
		sizes[i] = int64(rng.Intn(1 << 20))
	}
	return AppendObserve(nil,
		tenants[rng.Intn(len(tenants))],
		"bt.0",
		"dpd",
		int64(rng.Intn(1000)),
		senders, sizes)
}

// stream is a handshake plus a representative frame of every type;
// boundaries records every offset at which a truncation is a clean end
// of stream rather than corruption.
func buildStream(t *testing.T) (data []byte, boundaries map[int]bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	boundaries = map[int]bool{buf.Len(): true}
	fw := NewFrameWriter(&buf)
	rng := rand.New(rand.NewSource(1803))
	frames := [][]byte{
		arbitraryObserve(rng),
		AppendAck(nil, 3, 1),
		AppendPredict(nil, 7, "acme", "bt.0", 5),
		AppendPredictResp(nil, 7, true, 128, []Forecast{
			{Sender: 3, SenderOK: true, Size: 4096, SizeOK: true},
			{Sender: -1, SenderOK: false, Size: 0, SizeOK: false},
		}),
		AppendError(nil, CodeUnavailable, 9, "draining"),
	}
	for _, p := range frames {
		if err := fw.WriteFrame(p); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries[buf.Len()] = true
	}
	return buf.Bytes(), boundaries
}

// decodeAll consumes a handshake then frames until EOF, fully decoding
// each payload by type. Returns the number of complete frames decoded.
func decodeAll(data []byte) (frames int, err error) {
	fr := NewFrameReader(bytes.NewReader(data))
	if err := fr.Handshake(); err != nil {
		return 0, err
	}
	var ov ObserveView
	var pv PredictView
	var rv PredictRespView
	for {
		p, err := fr.ReadFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		switch p[0] {
		case FrameObserve:
			err = ov.Decode(p)
		case FrameObserveAck:
			_, _, err = DecodeAck(p)
		case FramePredict:
			err = pv.Decode(p)
		case FramePredictResp:
			err = rv.Decode(p)
		case FrameError:
			_, err = DecodeError(p)
		default:
			err = corruptf("unknown frame type %02x", p[0])
		}
		if err != nil {
			return frames, err
		}
		frames++
	}
}

func TestObserveRoundTripProperty(t *testing.T) {
	var view ObserveView
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tenant := []string{"acme", "", "t2"}[rng.Intn(3)]
		stream := "bt." + string(rune('0'+rng.Intn(10)))
		strat := []string{"", "dpd", "meta", "markov1"}[rng.Intn(4)]
		seq := int64(rng.Intn(1 << 20))
		n := rng.Intn(200)
		senders := make([]int64, n)
		sizes := make([]int64, n)
		for i := range senders {
			senders[i] = rng.Int63n(1<<40) - 1<<39
			sizes[i] = rng.Int63n(1 << 40)
		}
		p := AppendObserve(nil, tenant, stream, strat, seq, senders, sizes)
		if err := view.Decode(p); err != nil {
			t.Fatalf("seed %d: Decode: %v", seed, err)
		}
		if string(view.Tenant) != tenant || string(view.Stream) != stream || string(view.Strategy) != strat || view.Seq != seq {
			t.Fatalf("seed %d: header mismatch: got (%q,%q,%q,%d)", seed, view.Tenant, view.Stream, view.Strategy, view.Seq)
		}
		if len(view.Senders) != n || len(view.Sizes) != n {
			t.Fatalf("seed %d: column lengths (%d,%d), want %d", seed, len(view.Senders), len(view.Sizes), n)
		}
		for i := range senders {
			if view.Senders[i] != senders[i] || view.Sizes[i] != sizes[i] {
				t.Fatalf("seed %d: column value %d mismatch: (%d,%d) vs (%d,%d)",
					seed, i, view.Senders[i], view.Sizes[i], senders[i], sizes[i])
			}
		}
	}
}

func TestObserveDecodeReusesScratch(t *testing.T) {
	var view ObserveView
	big := AppendObserve(nil, "t", "s", "", 1, make([]int64, 512), make([]int64, 512))
	if err := view.Decode(big); err != nil {
		t.Fatal(err)
	}
	p0 := &view.Senders[0]
	small := AppendObserve(nil, "t", "s", "", 2, []int64{7}, []int64{9})
	if err := view.Decode(small); err != nil {
		t.Fatal(err)
	}
	if len(view.Senders) != 1 || view.Senders[0] != 7 {
		t.Fatalf("small decode got %v", view.Senders)
	}
	if &view.Senders[0] != p0 {
		t.Error("smaller block reallocated the column scratch; it must reuse the backing array")
	}
}

func TestAckPredictErrorRoundTrip(t *testing.T) {
	ord, dups, err := DecodeAck(AppendAck(nil, 42, 7))
	if err != nil || ord != 42 || dups != 7 {
		t.Fatalf("ack round-trip: (%d,%d,%v)", ord, dups, err)
	}

	var pv PredictView
	if err := pv.Decode(AppendPredict(nil, 9, "acme", "bt.3", 12)); err != nil {
		t.Fatal(err)
	}
	if pv.ID != 9 || string(pv.Tenant) != "acme" || string(pv.Stream) != "bt.3" || pv.K != 12 {
		t.Fatalf("predict round-trip: %+v", pv)
	}

	fcs := []Forecast{
		{Sender: 5, SenderOK: true, Size: -3, SizeOK: true},
		{Sender: 0, SenderOK: true, Size: 0, SizeOK: false},
		{},
	}
	var rv PredictRespView
	if err := rv.Decode(AppendPredictResp(nil, 9, true, 1<<33, fcs)); err != nil {
		t.Fatal(err)
	}
	if rv.ID != 9 || !rv.Found || rv.Observed != 1<<33 || len(rv.Forecasts) != 3 {
		t.Fatalf("predict response round-trip: %+v", rv)
	}
	for i, f := range fcs {
		if rv.Forecasts[i] != f {
			t.Fatalf("forecast %d: got %+v, want %+v", i, rv.Forecasts[i], f)
		}
	}
	if !fcs[0].OK() || fcs[1].OK() || fcs[2].OK() {
		t.Error("Forecast.OK must be the joint flag")
	}

	remote, err := DecodeError(AppendError(nil, CodeConflict, 3, "strategy mismatch"))
	if err != nil {
		t.Fatal(err)
	}
	if remote.Code != CodeConflict || remote.Ref != 3 || remote.Msg != "strategy mismatch" {
		t.Fatalf("error round-trip: %+v", remote)
	}
	if remote.Retryable() {
		t.Error("conflict must not be retryable")
	}
	if !(&RemoteError{Code: CodeUnavailable}).Retryable() {
		t.Error("unavailable must be retryable")
	}
	if !strings.Contains(remote.Error(), "strategy mismatch") {
		t.Errorf("error text %q does not carry the message", remote.Error())
	}
}

func TestNotFoundPredictRespRoundTrip(t *testing.T) {
	var rv PredictRespView
	if err := rv.Decode(AppendPredictResp(nil, 1, false, 0, nil)); err != nil {
		t.Fatal(err)
	}
	if rv.Found || rv.Observed != 0 || len(rv.Forecasts) != 0 {
		t.Fatalf("not-found response round-trip: %+v", rv)
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	data, _ := buildStream(t)
	frames, err := decodeAll(data)
	if err != nil {
		t.Fatalf("decodeAll: %v", err)
	}
	if frames != 5 {
		t.Fatalf("decoded %d frames, want 5", frames)
	}
}

func TestFrameStreamRejectsEveryTruncation(t *testing.T) {
	data, boundaries := buildStream(t)
	for n := 0; n < len(data); n++ {
		frames, err := decodeAll(data[:n])
		if boundaries[n] {
			// A frame boundary is a legal end of stream (connections
			// close between frames) — but never silently the full count.
			if err != nil {
				t.Fatalf("clean boundary at %d rejected: %v", n, err)
			}
			if frames >= 5 {
				t.Fatalf("truncation to %d of %d bytes still decoded all %d frames", n, len(data), frames)
			}
			continue
		}
		if err == nil {
			t.Fatalf("mid-frame truncation to %d of %d bytes decoded without error (%d frames)", n, len(data), frames)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestFrameStreamRejectsEverySingleByteFlip(t *testing.T) {
	data, _ := buildStream(t)
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0xff
		if _, err := decodeAll(mutated); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected (CRC must catch every corruption)", i, len(data))
		}
	}
}

func TestHandshakeRejectsWrongMagicAndVersion(t *testing.T) {
	if _, err := decodeAll([]byte("GET / HTTP/1.1\r\n")); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("HTTP preamble: got %v, want ErrCorrupt", err)
	}
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version varint, first byte after the magic
	if _, err := decodeAll(data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: got %v, want a version error", err)
	}
}

func TestFrameWriterRejectsOversizeAndEmpty(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.WriteFrame(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := fw.WriteFrame(make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("oversize payload accepted")
	}
}

func TestFrameReaderRejectsOversizeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x81, 0x80, 0x80, 0x01}) // uvarint(1<<21+1) > MaxFramePayload
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadFrame(); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversize frame length: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsWrongFrameType(t *testing.T) {
	observe := AppendObserve(nil, "t", "s", "", 1, nil, nil)
	ack := AppendAck(nil, 1, 0)
	var ov ObserveView
	if err := ov.Decode(ack); err == nil {
		t.Error("ObserveView accepted an ack frame")
	}
	if _, _, err := DecodeAck(observe); err == nil {
		t.Error("DecodeAck accepted an observe frame")
	}
	var pv PredictView
	if err := pv.Decode(observe); err == nil {
		t.Error("PredictView accepted an observe frame")
	}
	var rv PredictRespView
	if err := rv.Decode(observe); err == nil {
		t.Error("PredictRespView accepted an observe frame")
	}
	if _, err := DecodeError(observe); err == nil {
		t.Error("DecodeError accepted an observe frame")
	}
}

func TestObserveDecodeRejectsHostileCount(t *testing.T) {
	// A claimed column count far beyond the payload must be rejected
	// before any scratch allocation proportional to it.
	p := []byte{FrameObserve}
	p = appendString(p, "t")
	p = appendString(p, "s")
	p = appendString(p, "")
	p = appendVarint(p, 1)
	p = appendUvarint(p, MaxColumnLen) // count with no column bytes behind it
	var ov ObserveView
	if err := ov.Decode(p); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile count: got %v, want ErrCorrupt", err)
	}
	p2 := []byte{FrameObserve}
	p2 = appendString(p2, "t")
	p2 = appendString(p2, "s")
	p2 = appendString(p2, "")
	p2 = appendVarint(p2, 1)
	p2 = appendUvarint(p2, MaxColumnLen+1)
	p2 = append(p2, make([]byte, 2*(MaxColumnLen+1))...)
	if err := ov.Decode(p2); err == nil || !strings.Contains(err.Error(), "event count") {
		t.Fatalf("over-limit count: got %v, want an event count error", err)
	}
}

func TestPredictRespRejectsUnknownFlags(t *testing.T) {
	p := AppendPredictResp(nil, 1, true, 0, []Forecast{{SenderOK: true, SizeOK: true}})
	// The flags byte of forecast 0 is right after id(1)+found(1)+observed(1)+count(1).
	idx := bytes.IndexByte(p[1:], flagSenderOK|flagSizeOK) + 1
	p[idx] |= 0x80
	var rv PredictRespView
	if err := rv.Decode(p); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Fatalf("unknown forecast flags: got %v, want a flags error", err)
	}
}

func TestErrorsWrapErrCorrupt(t *testing.T) {
	data, _ := buildStream(t)
	for _, n := range []int{0, 2, len(data) / 2} {
		if _, err := decodeAll(data[:n]); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}
