package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// fakeServer accepts one wire connection, handshakes, and hands the
// framed connection to serve. It is the protocol-level stub: the real
// server lives in internal/serve.
func fakeServer(t *testing.T, serve func(fr *FrameReader, fw *FrameWriter, conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fr := NewFrameReader(conn)
		if err := fr.Handshake(); err != nil {
			return
		}
		if err := WriteHandshake(conn); err != nil {
			return
		}
		serve(fr, NewFrameWriter(conn), conn)
	}()
	return ln.Addr().String()
}

// ackingServer acks every observe frame at its watermark and answers
// predicts with a fixed forecast.
func ackingServer(t *testing.T) string {
	return fakeServer(t, func(fr *FrameReader, fw *FrameWriter, conn net.Conn) {
		var ordinal uint64
		var ov ObserveView
		var pv PredictView
		for {
			p, err := fr.ReadFrame()
			if err != nil {
				return
			}
			switch p[0] {
			case FrameObserve:
				if err := ov.Decode(p); err != nil {
					return
				}
				ordinal++
				// Ack once per drained burst, like the real server.
				if fr.Buffered() > 0 {
					continue
				}
				fw.WriteFrame(AppendAck(nil, ordinal, 0))
				fw.Flush()
			case FramePredict:
				if err := pv.Decode(p); err != nil {
					return
				}
				fw.WriteFrame(AppendAck(nil, ordinal, 0))
				fw.WriteFrame(AppendPredictResp(nil, pv.ID, true, 9, []Forecast{{Sender: 1, SenderOK: true, Size: 64, SizeOK: true}}))
				fw.Flush()
			}
		}
	})
}

func TestClientPipelinedObserveAndPredict(t *testing.T) {
	addr := ackingServer(t)
	ctx := context.Background()
	c, err := Dial(ctx, addr, ClientOptions{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	senders := []int64{1, 2, 3}
	sizes := []int64{10, 20, 30}
	for seq := int64(1); seq <= 20; seq++ {
		if err := c.ObserveBlock(ctx, "t", "s", "", seq, senders, sizes); err != nil {
			t.Fatalf("ObserveBlock seq %d: %v", seq, err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if frames, _ := c.Acked(); frames != 20 {
		t.Fatalf("acked %d frames, want 20", frames)
	}
	if c.Sent() != 20 || len(c.UnackedFrames()) != 0 {
		t.Fatalf("sent=%d unacked=%d after full flush", c.Sent(), len(c.UnackedFrames()))
	}

	// Predict interleaved with acks: the ack written ahead of the
	// response must be absorbed, not returned.
	resp, err := c.Predict(ctx, "t", "s", 3)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if !resp.Found || resp.Observed != 9 || len(resp.Forecasts) != 1 || resp.Forecasts[0].Sender != 1 {
		t.Fatalf("predict response: %+v", resp)
	}
}

func TestClientRetainsUnackedFramesVerbatim(t *testing.T) {
	// A server that swallows everything: frames stay in the resend
	// buffer, byte-identical to what was written.
	addr := fakeServer(t, func(fr *FrameReader, fw *FrameWriter, conn net.Conn) {
		for {
			if _, err := fr.ReadFrame(); err != nil {
				return
			}
		}
	})
	ctx := context.Background()
	c, err := Dial(ctx, addr, ClientOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := AppendObserve(nil, "t", "s", "dpd", 5, []int64{4}, []int64{8})
	if err := c.ObserveBlock(ctx, "t", "s", "dpd", 5, []int64{4}, []int64{8}); err != nil {
		t.Fatal(err)
	}
	unacked := c.UnackedFrames()
	if len(unacked) != 1 || string(unacked[0]) != string(want) {
		t.Fatalf("unacked frame is not the verbatim encoding: %x vs %x", unacked, want)
	}
}

func TestClientCancelMidFrameUnwindsPromptly(t *testing.T) {
	// The server never acks, so a full window blocks the client inside a
	// read; cancelling the context must unwind it promptly with the
	// context's error, not hang on the socket.
	addr := fakeServer(t, func(fr *FrameReader, fw *FrameWriter, conn net.Conn) {
		for {
			if _, err := fr.ReadFrame(); err != nil {
				return
			}
		}
	})
	c, err := Dial(context.Background(), addr, ClientOptions{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = c.ObserveBlock(ctx, "t", "s", "", 1, []int64{1}, []int64{1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked observe returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to unwind", elapsed)
	}
	// The client is poisoned: further use reports the sticky error.
	if err := c.Flush(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("poisoned client Flush returned %v", err)
	}
}

func TestClientServerErrorFramePoisons(t *testing.T) {
	addr := fakeServer(t, func(fr *FrameReader, fw *FrameWriter, conn net.Conn) {
		if _, err := fr.ReadFrame(); err != nil {
			return
		}
		fw.WriteFrame(AppendError(nil, CodeConflict, 1, "strategy mismatch"))
		fw.Flush()
	})
	ctx := context.Background()
	c, err := Dial(ctx, addr, ClientOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveBlock(ctx, "t", "s", "dpd", 1, []int64{1}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	err = c.Flush(ctx)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Flush returned %v, want a *RemoteError", err)
	}
	if remote.Code != CodeConflict || remote.Retryable() {
		t.Fatalf("remote error %+v, want non-retryable conflict", remote)
	}
}

func TestClientConnectionDropSurfacesError(t *testing.T) {
	addr := fakeServer(t, func(fr *FrameReader, fw *FrameWriter, conn net.Conn) {
		fr.ReadFrame()
		conn.Close()
	})
	ctx := context.Background()
	c, err := Dial(ctx, addr, ClientOptions{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveBlock(ctx, "t", "s", "", 1, []int64{1}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err == nil {
		t.Fatal("Flush over a dropped connection must error")
	}
	if len(c.UnackedFrames()) != 1 {
		t.Fatalf("dropped connection must keep the unacked frame for resend, have %d", len(c.UnackedFrames()))
	}
}

func TestDialRejectsNonWirePeer(t *testing.T) {
	// A peer that speaks something else (here: immediate garbage) must
	// fail the handshake, which is what lets replay fall back to HTTP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
		conn.Close()
	}()
	if _, err := Dial(context.Background(), ln.Addr().String(), ClientOptions{}); err == nil {
		t.Fatal("Dial against a non-wire peer must fail")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("handshake failure %v does not wrap ErrCorrupt", err)
	}
}

func TestClientObserveValidatesColumns(t *testing.T) {
	addr := ackingServer(t)
	c, err := Dial(context.Background(), addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveBlock(context.Background(), "t", "s", "", 1, []int64{1, 2}, []int64{1}); err == nil {
		t.Error("mismatched column lengths accepted")
	}
	big := make([]int64, MaxColumnLen+1)
	if err := c.ObserveBlock(context.Background(), "t", "s", "", 1, big, big); err == nil {
		t.Error("over-limit block accepted")
	}
	// Validation failures are request errors, not connection poison.
	if err := c.ObserveBlock(context.Background(), "t", "s", "", 1, []int64{1}, []int64{1}); err != nil {
		t.Errorf("client poisoned by a validation failure: %v", err)
	}
}

func TestRemoteErrorReadAsEOFBecomesUnexpected(t *testing.T) {
	// A server that closes immediately after handshake: the client's
	// blocking read must not report a bare io.EOF (which callers treat
	// as "no more frames"), but an explicit failure.
	addr := fakeServer(t, func(fr *FrameReader, fw *FrameWriter, conn net.Conn) {})
	c, err := Dial(context.Background(), addr, ClientOptions{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ObserveBlock(context.Background(), "t", "s", "", 1, []int64{1}, []int64{1})
	err = c.Flush(context.Background())
	if err == nil || errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Flush over a closed connection returned %v", err)
	}
}
