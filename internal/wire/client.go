package wire

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"
)

// ClientOptions configure Dial.
type ClientOptions struct {
	// Window is the maximum number of observe frames in flight (written
	// but not yet acknowledged). When the window is full ObserveBlock
	// flushes and blocks until the server's next watermark opens room —
	// the protocol's only client-side backpressure. 0 means DefaultWindow.
	Window int

	// DialTimeout bounds the TCP connect + handshake. 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
}

// DefaultWindow is the observe pipeline depth: deep enough that one ack
// round-trip overlaps many frames, shallow enough that a reconnect
// resend stays cheap.
const DefaultWindow = 64

// DefaultDialTimeout bounds connection setup.
const DefaultDialTimeout = 5 * time.Second

// Client is one wire connection. It pipelines observe frames up to its
// window, retains every unacknowledged frame verbatim so a caller can
// resend after reconnecting, and multiplexes acks, predict responses
// and server errors arriving on the same connection. Not safe for
// concurrent use — callers own one client per goroutine, matching the
// one-connection-per-replay-session model.
type Client struct {
	conn   net.Conn
	fw     *FrameWriter
	fr     *FrameReader
	window int

	enc []byte // encode scratch for predict frames (observe frames are retained, so they get fresh buffers)

	sent    uint64   // observe frames written on this connection
	acked   uint64   // server watermark: frames processed
	dups    uint64   // cumulative duplicate deliveries the server dropped
	unacked [][]byte // retained frames; unacked[0] has ordinal acked+1

	resp    PredictRespView
	hasResp bool

	err error // sticky: any transport or protocol failure poisons the client
}

// Dial connects, handshakes and returns a ready client.
func Dial(ctx context.Context, addr string, opts ClientOptions) (*Client, error) {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	dialCtx, cancel := context.WithTimeout(ctx, opts.DialTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dialCtx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:   conn,
		fw:     NewFrameWriter(conn),
		fr:     NewFrameReader(conn),
		window: opts.Window,
	}
	disarm := c.arm(dialCtx)
	err = func() error {
		if err := WriteHandshake(conn); err != nil {
			return fmt.Errorf("wire: sending handshake: %w", err)
		}
		return ReadHandshake(c.fr.br)
	}()
	disarm()
	if err != nil {
		conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	return c, nil
}

// arm makes blocking conn I/O abort when ctx is cancelled, by slamming
// the deadline into the past. The returned disarm must be called before
// the next armed operation; it also clears any deadline it planted so a
// raced cancellation cannot leak into later calls.
func (c *Client) arm(ctx context.Context) (disarm func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		c.conn.SetDeadline(time.Unix(1, 0))
	})
	return func() {
		if !stop() {
			// The cancel fired (or is firing): the client is poisoned
			// anyway, but reset the deadline so Close-side reads in
			// tests do not trip over it.
			c.conn.SetDeadline(time.Time{})
		}
	}
}

// fail records the first error and poisons the client.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// checked translates an I/O error under an armed context into the
// context's error when the cancellation caused it.
func checked(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// Err returns the sticky error, if any.
func (c *Client) Err() error { return c.err }

// Acked returns the server's cumulative watermark: observe frames
// processed and duplicate deliveries dropped on this connection.
func (c *Client) Acked() (frames, dups uint64) { return c.acked, c.dups }

// Sent returns the number of observe frames written on this connection.
func (c *Client) Sent() uint64 { return c.sent }

// UnackedFrames returns the retained encodings of every observe frame
// the server has not yet acknowledged, oldest first. The slices are the
// client's own retained copies — callers resending after a reconnect
// pass them to ObserveFrame on the new connection and must not mutate
// them.
func (c *Client) UnackedFrames() [][]byte { return c.unacked }

// ObserveBlock encodes one columnar observe frame and pipelines it. The
// call only blocks when the window is full, waiting for the server's
// watermark to advance.
func (c *Client) ObserveBlock(ctx context.Context, tenant, stream, strategy string, seq int64, senders, sizes []int64) error {
	if c.err != nil {
		return c.err
	}
	if len(senders) != len(sizes) {
		return fmt.Errorf("wire: column length mismatch: %d senders, %d sizes", len(senders), len(sizes))
	}
	if len(senders) > MaxColumnLen {
		return fmt.Errorf("wire: block of %d events exceeds the frame limit %d", len(senders), MaxColumnLen)
	}
	frame := AppendObserve(nil, tenant, stream, strategy, seq, senders, sizes)
	return c.ObserveFrame(ctx, frame)
}

// ObserveFrame pipelines a pre-encoded observe frame verbatim — the
// resend path after a reconnect, and the tail of ObserveBlock.
func (c *Client) ObserveFrame(ctx context.Context, frame []byte) error {
	if c.err != nil {
		return c.err
	}
	disarm := c.arm(ctx)
	defer disarm()
	if err := c.fw.WriteFrame(frame); err != nil {
		return c.fail(checked(ctx, err))
	}
	c.sent++
	c.unacked = append(c.unacked, frame)
	for c.sent-c.acked >= uint64(c.window) {
		if err := c.fw.Flush(); err != nil {
			return c.fail(checked(ctx, err))
		}
		if err := c.readOne(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes every buffered frame and blocks until the server has
// acknowledged all of them.
func (c *Client) Flush(ctx context.Context) error {
	if c.err != nil {
		return c.err
	}
	disarm := c.arm(ctx)
	defer disarm()
	if err := c.fw.Flush(); err != nil {
		return c.fail(checked(ctx, err))
	}
	for c.acked < c.sent {
		if err := c.readOne(ctx); err != nil {
			return err
		}
	}
	return nil
}

// SendPredict pipelines one predict request; NextPredict returns the
// responses in order. The id is echoed by the server.
func (c *Client) SendPredict(ctx context.Context, id uint64, tenant, stream string, k int) error {
	if c.err != nil {
		return c.err
	}
	disarm := c.arm(ctx)
	defer disarm()
	c.enc = AppendPredict(c.enc[:0], id, tenant, stream, k)
	if err := c.fw.WriteFrame(c.enc); err != nil {
		return c.fail(checked(ctx, err))
	}
	return nil
}

// NextPredict flushes and blocks for the next predict response. The
// returned view is reused by the following NextPredict call. Acks
// interleaved ahead of the response are absorbed into the watermark.
func (c *Client) NextPredict(ctx context.Context) (*PredictRespView, error) {
	if c.err != nil {
		return nil, c.err
	}
	disarm := c.arm(ctx)
	defer disarm()
	if err := c.fw.Flush(); err != nil {
		return nil, c.fail(checked(ctx, err))
	}
	for {
		c.hasResp = false
		if err := c.readOne(ctx); err != nil {
			return nil, err
		}
		if c.hasResp {
			return &c.resp, nil
		}
	}
}

// Predict is the synchronous convenience: one request, one response.
func (c *Client) Predict(ctx context.Context, tenant, stream string, k int) (*PredictRespView, error) {
	if err := c.SendPredict(ctx, 0, tenant, stream, k); err != nil {
		return nil, err
	}
	return c.NextPredict(ctx)
}

// readOne consumes one server frame and dispatches it; callers must
// have armed the context. Server error frames poison the client with a
// *RemoteError.
func (c *Client) readOne(ctx context.Context) error {
	p, err := c.fr.ReadFrame()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return c.fail(checked(ctx, err))
	}
	switch p[0] {
	case FrameObserveAck:
		ordinal, dups, err := DecodeAck(p)
		if err != nil {
			return c.fail(err)
		}
		if ordinal < c.acked || ordinal > c.sent {
			return c.fail(corruptf("ack watermark %d outside [%d, %d]", ordinal, c.acked, c.sent))
		}
		c.unacked = c.unacked[ordinal-c.acked:]
		c.acked = ordinal
		c.dups = dups
		return nil
	case FramePredictResp:
		if err := c.resp.Decode(p); err != nil {
			return c.fail(err)
		}
		c.hasResp = true
		return nil
	case FrameError:
		remote, err := DecodeError(p)
		if err != nil {
			return c.fail(err)
		}
		return c.fail(remote)
	default:
		return c.fail(corruptf("unexpected frame type %02x from server", p[0]))
	}
}

// Close tears the connection down. The client is unusable afterwards.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	if c.err == nil {
		c.err = fmt.Errorf("wire: client closed")
	}
	return err
}
