package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzWireFrame exercises the framing and every payload decoder on
// arbitrary input: the reader must never panic, every rejection must
// wrap ErrCorrupt, and any frame it accepts must re-encode canonically
// and re-decode to the same values (decode/encode stability).
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(Magic[:])
	data, _ := func() ([]byte, map[int]bool) {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		rng := rand.New(rand.NewSource(7))
		fw.WriteFrame(arbitraryObserve(rng))
		fw.WriteFrame(AppendAck(nil, 1, 0))
		fw.WriteFrame(AppendPredict(nil, 2, "t", "s", 5))
		fw.WriteFrame(AppendPredictResp(nil, 2, true, 10, []Forecast{{Sender: 1, SenderOK: true, Size: 2, SizeOK: true}}))
		fw.WriteFrame(AppendError(nil, CodeBadRequest, 0, "bad key"))
		fw.Flush()
		return buf.Bytes(), nil
	}()
	f.Add(data)
	if len(data) > 8 {
		f.Add(data[:len(data)/2]) // truncated
		mutated := append([]byte(nil), data...)
		mutated[len(data)/3] ^= 0x40 // bit-flipped
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			p, err := fr.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("framing error %v does not wrap ErrCorrupt", err)
				}
				return
			}
			switch p[0] {
			case FrameObserve:
				var v ObserveView
				if err := v.Decode(p); err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("observe decode error %v does not wrap ErrCorrupt", err)
					}
					continue
				}
				canon := AppendObserve(nil, string(v.Tenant), string(v.Stream), string(v.Strategy), v.Seq, v.Senders, v.Sizes)
				var again ObserveView
				if err := again.Decode(canon); err != nil {
					t.Fatalf("re-decoding our own observe encoding failed: %v", err)
				}
				if !bytes.Equal(again.Tenant, v.Tenant) || again.Seq != v.Seq ||
					!reflect.DeepEqual(again.Senders, v.Senders) || !reflect.DeepEqual(again.Sizes, v.Sizes) {
					t.Fatal("observe decode/encode/decode drifted")
				}
			case FrameObserveAck:
				ord, dups, err := DecodeAck(p)
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("ack decode error %v does not wrap ErrCorrupt", err)
					}
					continue
				}
				if ord2, dups2, err := DecodeAck(AppendAck(nil, ord, dups)); err != nil || ord2 != ord || dups2 != dups {
					t.Fatalf("ack decode/encode/decode drifted: (%d,%d,%v)", ord2, dups2, err)
				}
			case FramePredict:
				var v PredictView
				if err := v.Decode(p); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("predict decode error %v does not wrap ErrCorrupt", err)
				}
			case FramePredictResp:
				var v PredictRespView
				if err := v.Decode(p); err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("predict response decode error %v does not wrap ErrCorrupt", err)
					}
					continue
				}
				canon := AppendPredictResp(nil, v.ID, v.Found, v.Observed, v.Forecasts)
				fcs := append([]Forecast(nil), v.Forecasts...)
				var again PredictRespView
				if err := again.Decode(canon); err != nil {
					t.Fatalf("re-decoding our own predict response failed: %v", err)
				}
				if again.ID != v.ID || again.Found != v.Found || again.Observed != v.Observed ||
					!reflect.DeepEqual(again.Forecasts, fcs) {
					t.Fatal("predict response decode/encode/decode drifted")
				}
			case FrameError:
				if _, err := DecodeError(p); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error decode error %v does not wrap ErrCorrupt", err)
				}
			}
		}
	})
}

// FuzzWireHandshake exercises the handshake validator on arbitrary
// preambles.
func FuzzWireHandshake(f *testing.F) {
	var buf bytes.Buffer
	WriteHandshake(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("GET / HTTP/1.1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		if err := fr.Handshake(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("handshake error %v does not wrap ErrCorrupt", err)
		}
	})
}
