// Package simmpi is a deterministic, discrete-event simulated MPI runtime.
//
// The paper instruments a real MPICH installation; this repository has no
// MPI available, so the runtime substitutes it. It provides what the
// paper's measurements require and what the proposed scalability
// mechanisms need to be exercised:
//
//   - rank programs written as ordinary Go functions running against a
//     Rank handle with the familiar MPI surface (Send, Recv, Isend,
//     Irecv, Wait, Sendrecv and the usual collectives),
//   - an eager/rendezvous protocol split at a configurable message size,
//   - per-rank virtual clocks advanced by compute phases, library
//     overheads and message transfer times drawn from the simnet model
//     (including jitter and load-imbalance noise), and
//   - dual-level receive tracing: a logical record when an application
//     receive completes (program order) and a physical record when the
//     message arrives at the receiver (arrival-time order), exactly the
//     two instrumentation points of Section 3.1 of the paper.
//
// # Execution model
//
// Every rank runs as a goroutine, but the scheduler is strictly
// cooperative: exactly one rank executes at any moment and ranks hand
// control back to the engine only when they block (waiting for a message
// that has not been produced yet) or finish. Sends never block — eager
// sends are buffered immediately and rendezvous sends charge their
// handshake latency to the sender's clock without waiting for the
// receiver — so the schedule is independent of goroutine timing and runs
// are fully reproducible for a fixed seed.
//
// Message arrival times are computed when the send is issued:
//
//	arrival = senderClock + sendOverhead [+ handshake] + transfer(size, jitter)
//
// A receive completes at max(receiverClock, arrival) + recvOverhead. The
// logical trace is recorded at receive completion in program order; the
// physical trace is recorded with the arrival timestamp and sorted by
// arrival time when the run finishes. MPI pairwise ordering is honoured:
// matching between a (sender, tag) pair follows send order even when
// jitter reorders arrivals, which is precisely how the logical stream
// stays deterministic while the physical stream picks up randomness.
package simmpi
