package simmpi

import (
	"fmt"
	"math/rand"
	"sort"

	"mpipredict/internal/simnet"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// Program is the code executed by every rank, in SPMD style: the same
// function runs on each rank and branches on r.ID().
type Program func(r *Rank)

// Config describes one simulated run.
type Config struct {
	// App names the workload; it is copied into the resulting trace.
	App string
	// Procs is the number of ranks.
	Procs int
	// Net parameterises the interconnect model.
	Net simnet.Config
	// Seed drives all stochastic elements. Each rank derives its own
	// generator from it, so runs are reproducible.
	Seed int64
	// TraceReceivers restricts event recording to the listed ranks. An
	// empty slice records every rank, which is convenient for small runs
	// but memory-hungry for workloads with tens of thousands of messages
	// per rank.
	TraceReceivers []int
	// DisableLogical / DisablePhysical turn off one of the two trace
	// levels when it is not needed.
	DisableLogical  bool
	DisablePhysical bool
}

// Validate reports whether the run configuration is usable.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("simmpi: Procs must be >= 1, got %d", c.Procs)
	}
	if c.App == "" {
		return fmt.Errorf("simmpi: App must be set")
	}
	return c.Net.Validate()
}

// rankState is the scheduler-visible state of a rank goroutine.
type rankState int

const (
	stateReady rankState = iota
	stateBlocked
	stateDone
)

// Engine owns the ranks, the network model and the trace being collected.
type Engine struct {
	cfg   Config
	model *simnet.Model
	ranks []*Rank
	tr    *trace.Trace

	// sink, when non-nil, receives the run's events as blocks instead of
	// the trace accumulating them: logical records leave the engine as
	// soon as a block fills, so only the physical buffer (which must be
	// time-sorted at the end) scales with the run. RunStream sets it.
	sink    stream.Sink
	blk     stream.EventBlock
	sinkErr error

	traceAll   bool
	traceSet   map[int]bool
	physical   map[int][]trace.Record // per receiver, unsorted physical events
	deadlock   bool
	programErr error
}

// NewEngine builds an engine for the given configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := simnet.NewModel(cfg.Net)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		model:    model,
		tr:       trace.New(cfg.App, cfg.Procs),
		traceAll: len(cfg.TraceReceivers) == 0,
		traceSet: make(map[int]bool, len(cfg.TraceReceivers)),
		physical: make(map[int][]trace.Record),
	}
	for _, r := range cfg.TraceReceivers {
		e.traceSet[r] = true
	}
	for i := 0; i < cfg.Procs; i++ {
		e.ranks = append(e.ranks, newRank(e, i))
	}
	return e, nil
}

// traced reports whether events for the given receiver should be recorded.
func (e *Engine) traced(receiver int) bool {
	return e.traceAll || e.traceSet[receiver]
}

// Run executes the program on every rank and returns the collected trace.
// It returns an error if the program deadlocks (every unfinished rank is
// blocked on a message that will never arrive) or panics.
func (e *Engine) Run(program Program) (*trace.Trace, error) {
	if err := e.execute(program); err != nil {
		return nil, err
	}
	return e.tr, nil
}

// RunStream executes the program and delivers the run's events to the
// sink as blocks, in the exact order Run would have stored them (all
// logical records in completion order, then the physical records sorted
// per receiver) — a sink fed by RunStream and a trace built by Run encode
// byte-identically. Logical records are never buffered beyond one block.
func (e *Engine) RunStream(program Program, sink stream.Sink) error {
	e.sink = sink
	if err := e.execute(program); err != nil {
		return err
	}
	e.flushBlock()
	return e.sinkErr
}

// execute runs the scheduler loop and flushes the physical buffer; the
// collected events are in e.tr or have been emitted to e.sink.
func (e *Engine) execute(program Program) error {
	if program == nil {
		return fmt.Errorf("simmpi: nil program")
	}
	for _, r := range e.ranks {
		r.start(program)
	}
	// Cooperative round-robin scheduling: resume every rank that is ready
	// or whose mailbox has grown since it blocked. Stop when all ranks are
	// done, or when nothing can make progress (deadlock).
	for {
		progress := false
		allDone := true
		for _, r := range e.ranks {
			if r.state == stateDone {
				continue
			}
			allDone = false
			if r.state == stateBlocked && r.mailboxVersion == r.blockedAtVersion {
				continue
			}
			r.resumeOnce()
			progress = true
		}
		if allDone {
			break
		}
		if !progress {
			e.deadlock = true
			break
		}
	}
	if e.programErr != nil {
		return fmt.Errorf("simmpi: rank program failed: %w", e.programErr)
	}
	if e.deadlock {
		return fmt.Errorf("simmpi: deadlock: %s", e.describeBlockedRanks())
	}
	e.flushPhysical()
	return nil
}

// emit routes one finished record: into the trace by default, into the
// block pipeline when a sink is attached. Sink errors are remembered and
// further emission stops; RunStream reports them after the run (the rank
// programs deep below cannot propagate an error mid-simulation).
func (e *Engine) emit(rec trace.Record) {
	if e.sink == nil {
		e.tr.Append(rec)
		return
	}
	if e.sinkErr != nil {
		return
	}
	e.blk.Append(rec)
	if e.blk.Len() >= stream.BlockLen {
		e.flushBlock()
	}
}

func (e *Engine) flushBlock() {
	if e.sinkErr != nil || e.blk.Len() == 0 {
		return
	}
	e.sinkErr = e.sink.Write(&e.blk)
	e.blk.Reset()
}

func (e *Engine) describeBlockedRanks() string {
	desc := ""
	for _, r := range e.ranks {
		if r.state == stateBlocked {
			if desc != "" {
				desc += "; "
			}
			desc += fmt.Sprintf("rank %d blocked on %s", r.id, r.blockedOn)
		}
	}
	if desc == "" {
		desc = "no rank is blocked (internal scheduling error)"
	}
	return desc
}

// flushPhysical sorts the buffered physical events of every receiver by
// arrival time and appends them to the trace, assigning dense sequence
// numbers. Ties are broken by the order the messages were sent so the
// result is deterministic. The trace is grown once for the whole batch so
// the appends never reallocate.
func (e *Engine) flushPhysical() {
	receivers := make([]int, 0, len(e.physical))
	total := 0
	for r, recs := range e.physical {
		receivers = append(receivers, r)
		total += len(recs)
	}
	sort.Ints(receivers)
	if e.sink == nil {
		e.tr.Grow(total)
	}
	for _, recv := range receivers {
		recs := e.physical[recv]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
		for _, rec := range recs {
			e.emit(rec)
		}
	}
}

// recordLogical appends a logical-level receive record, if tracing is
// enabled for the receiver.
func (e *Engine) recordLogical(rec trace.Record) {
	if e.cfg.DisableLogical || !e.traced(rec.Receiver) {
		return
	}
	rec.Level = trace.Logical
	e.emit(rec)
}

// recordPhysical buffers a physical-level arrival record, if tracing is
// enabled for the receiver. The per-receiver buffer starts with a chunky
// capacity: traced workloads deliver hundreds to tens of thousands of
// messages per receiver, so growing from a nil slice would pay a dozen
// reallocations per receiver.
func (e *Engine) recordPhysical(rec trace.Record) {
	if e.cfg.DisablePhysical || !e.traced(rec.Receiver) {
		return
	}
	rec.Level = trace.Physical
	buf := e.physical[rec.Receiver]
	if buf == nil {
		buf = make([]trace.Record, 0, 512)
	}
	e.physical[rec.Receiver] = append(buf, rec)
}

// SimulatedTime returns the largest rank clock reached during the run, an
// estimate of the total execution time of the simulated application.
func (e *Engine) SimulatedTime() float64 {
	max := 0.0
	for _, r := range e.ranks {
		if r.clock > max {
			max = r.clock
		}
	}
	return max
}

// Model returns the network model used by the engine.
func (e *Engine) Model() *simnet.Model { return e.model }

// rankRNG derives a per-rank random generator from the run seed so that
// the noise experienced by one rank does not depend on how other ranks
// were scheduled.
func (e *Engine) rankRNG(rank int) *rand.Rand {
	return rand.New(rand.NewSource(e.cfg.Seed*1_000_003 + int64(rank)*7919 + 17))
}

// Run is a convenience wrapper: build an engine, run the program, return
// the trace.
func Run(cfg Config, program Program) (*trace.Trace, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(program)
}

// RunToSink is the streaming convenience wrapper: build an engine, run
// the program, deliver the events to the sink as blocks. The trace is
// never materialized (only the physical-sort buffer scales with the run),
// and the emitted event order is identical to what Run stores.
func RunToSink(cfg Config, program Program, sink stream.Sink) error {
	e, err := NewEngine(cfg)
	if err != nil {
		return err
	}
	return e.RunStream(program, sink)
}
