package simmpi

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// ringProgram is a tiny SPMD program: every rank sends to its right
// neighbour and receives from its left, a few thousand times so the run
// spans several blocks.
func ringProgram(rounds int) Program {
	return func(r *Rank) {
		procs := r.Size()
		left := (r.ID() + procs - 1) % procs
		right := (r.ID() + 1) % procs
		for i := 0; i < rounds; i++ {
			r.Send(right, 0, 64)
			r.Recv(left, 0)
		}
	}
}

// TestRunStreamMatchesRun pins the streaming emission: a sink fed by
// RunStream receives the exact record sequence Run stores in the trace.
func TestRunStreamMatchesRun(t *testing.T) {
	cfg := Config{App: "ring", Procs: 4, Seed: 3, Net: simnet.DefaultConfig()}
	want, err := Run(cfg, ringProgram(700)) // ~2800 events per level, > 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() < 2*stream.BlockLen {
		t.Fatalf("test run too small to cross a block boundary: %d records", want.Len())
	}

	got := trace.New(cfg.App, cfg.Procs)
	if err := RunToSink(cfg, ringProgram(700), collector{got}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("streamed records differ from the trace Run builds")
	}

	// And through the binary codec the two paths are byte-identical.
	var inMemory, streamed bytes.Buffer
	if err := trace.WriteBinary(&inMemory, want); err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(&streamed, cfg.App, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunToSink(cfg, ringProgram(700), stream.SinkTo(w)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inMemory.Bytes(), streamed.Bytes()) {
		t.Error("streamed export differs byte-for-byte from the in-memory export")
	}
}

// collector appends every block's records to a trace.
type collector struct{ tr *trace.Trace }

func (c collector) Write(b *stream.EventBlock) error {
	for i := 0; i < b.Len(); i++ {
		c.tr.Append(b.Record(i))
	}
	return nil
}

// TestRunStreamPropagatesSinkError pins that a failing sink surfaces as
// the run error instead of being swallowed mid-simulation.
func TestRunStreamPropagatesSinkError(t *testing.T) {
	cfg := Config{App: "ring", Procs: 4, Seed: 3, Net: simnet.DefaultConfig()}
	wantErr := fmt.Errorf("disk full")
	err := RunToSink(cfg, ringProgram(700), failingSink{wantErr})
	if err == nil || err.Error() != wantErr.Error() {
		t.Errorf("RunToSink error = %v, want %v", err, wantErr)
	}
}

type failingSink struct{ err error }

func (f failingSink) Write(*stream.EventBlock) error { return f.err }
