package simmpi

import "mpipredict/internal/trace"

// Tags used internally by the collective algorithms. They live far above
// the tag space applications normally use so that collective traffic never
// matches application point-to-point receives.
const (
	tagBarrier = 1<<20 + iota
	tagBcast
	tagReduce
	tagAllreduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagAlltoallv
)

// collSend and collRecv are the point-to-point primitives used inside
// collective algorithms; they record messages with Kind Collective and the
// name of the collective operation, which is how Table 1 separates
// point-to-point from collective message counts.
func (r *Rank) collSend(dst, tag int, size int64, op string) {
	r.send(dst, tag, size, trace.Collective, op)
}

func (r *Rank) collRecv(src, tag int, op string) Message {
	return r.recv(src, tag, op)
}

// controlSize is the payload size used for pure synchronisation messages
// (barrier and similar), in bytes.
const controlSize = 4

// Barrier blocks until every rank has entered it. It uses the
// dissemination algorithm: ceil(log2 p) rounds of exchanges with ranks at
// increasing distance.
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		return
	}
	for k := 1; k < p; k <<= 1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		r.collSend(dst, tagBarrier, controlSize, "barrier")
		r.collRecv(src, tagBarrier, "barrier")
	}
}

// Bcast broadcasts size bytes from root to every rank using a binomial
// tree, like the classic MPICH implementation.
func (r *Rank) Bcast(root int, size int64) {
	p := r.Size()
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic("simmpi: Bcast root out of range")
	}
	vrank := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			vsrc := vrank - mask
			src := (vsrc + root) % p
			r.collRecv(src, tagBcast, "bcast")
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			vdst := vrank + mask
			dst := (vdst + root) % p
			r.collSend(dst, tagBcast, size, "bcast")
		}
		mask >>= 1
	}
}

// Reduce combines size bytes from every rank onto root using a binomial
// tree (commutative reduction).
func (r *Rank) Reduce(root int, size int64) {
	p := r.Size()
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic("simmpi: Reduce root out of range")
	}
	vrank := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask == 0 {
			vsrc := vrank | mask
			if vsrc < p {
				src := (vsrc + root) % p
				r.collRecv(src, tagReduce, "reduce")
			}
		} else {
			vdst := vrank &^ mask
			dst := (vdst + root) % p
			r.collSend(dst, tagReduce, size, "reduce")
			break
		}
		mask <<= 1
	}
}

// Allreduce combines size bytes across all ranks and leaves the result on
// every rank. Power-of-two communicator sizes use recursive doubling;
// other sizes fall back to Reduce-to-0 followed by Bcast-from-0.
func (r *Rank) Allreduce(size int64) {
	p := r.Size()
	if p == 1 {
		return
	}
	if p&(p-1) == 0 {
		for mask := 1; mask < p; mask <<= 1 {
			partner := r.id ^ mask
			r.collSend(partner, tagAllreduce, size, "allreduce")
			r.collRecv(partner, tagAllreduce, "allreduce")
		}
		return
	}
	r.reduceAs(0, size, "allreduce")
	r.bcastAs(0, size, "allreduce")
}

// reduceAs and bcastAs are Reduce/Bcast variants that keep the caller's
// operation name in the trace, so an Allreduce on a non-power-of-two
// communicator is still attributed to "allreduce".
func (r *Rank) reduceAs(root int, size int64, op string) {
	p := r.Size()
	vrank := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask == 0 {
			vsrc := vrank | mask
			if vsrc < p {
				r.collRecv((vsrc+root)%p, tagReduce, op)
			}
		} else {
			vdst := vrank &^ mask
			r.collSend((vdst+root)%p, tagReduce, size, op)
			break
		}
		mask <<= 1
	}
}

func (r *Rank) bcastAs(root int, size int64, op string) {
	p := r.Size()
	vrank := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			r.collRecv(((vrank-mask)+root)%p, tagBcast, op)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			r.collSend(((vrank+mask)+root)%p, tagBcast, size, op)
		}
		mask >>= 1
	}
}

// Gather collects size bytes from every rank onto root (linear algorithm,
// deterministic source order).
func (r *Rank) Gather(root int, size int64) {
	p := r.Size()
	if root < 0 || root >= p {
		panic("simmpi: Gather root out of range")
	}
	if r.id == root {
		for src := 0; src < p; src++ {
			if src == root {
				continue
			}
			r.collRecv(src, tagGather, "gather")
		}
		return
	}
	r.collSend(root, tagGather, size, "gather")
}

// Scatter distributes size bytes from root to every other rank (linear).
func (r *Rank) Scatter(root int, size int64) {
	p := r.Size()
	if root < 0 || root >= p {
		panic("simmpi: Scatter root out of range")
	}
	if r.id == root {
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			r.collSend(dst, tagScatter, size, "scatter")
		}
		return
	}
	r.collRecv(root, tagScatter, "scatter")
}

// Allgather shares size bytes per rank with every rank using the ring
// algorithm: p-1 steps, each forwarding one block to the right neighbour.
func (r *Rank) Allgather(size int64) {
	p := r.Size()
	if p == 1 {
		return
	}
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		r.collSend(right, tagAllgather, size, "allgather")
		r.collRecv(left, tagAllgather, "allgather")
	}
}

// Alltoall exchanges size bytes between every pair of ranks. Like the
// MPICH non-blocking algorithm, every rank first posts all of its sends
// (staggered by rank so the pattern is not a synchronized burst) and then
// completes the receives in ascending source order. The logical receive
// order is therefore deterministic while the physical arrival order is
// exposed to network jitter across all in-flight messages — the effect
// that makes IS the least predictable benchmark at the physical level.
func (r *Rank) Alltoall(size int64) {
	p := r.Size()
	for i := 1; i < p; i++ {
		dst := (r.id + i) % p
		r.collSend(dst, tagAlltoall, size, "alltoall")
	}
	for src := 0; src < p; src++ {
		if src == r.id {
			continue
		}
		r.collRecv(src, tagAlltoall, "alltoall")
	}
}

// Alltoallv is Alltoall with per-destination sizes. sizes must have one
// entry per rank; the entry for the caller's own rank is ignored.
func (r *Rank) Alltoallv(sizes []int64) {
	p := r.Size()
	if len(sizes) != p {
		panic("simmpi: Alltoallv needs one size per rank")
	}
	for i := 1; i < p; i++ {
		dst := (r.id + i) % p
		r.collSend(dst, tagAlltoallv, sizes[dst], "alltoallv")
	}
	for src := 0; src < p; src++ {
		if src == r.id {
			continue
		}
		r.collRecv(src, tagAlltoallv, "alltoallv")
	}
}
