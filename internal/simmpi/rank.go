package simmpi

import (
	"fmt"
	"math/rand"

	"mpipredict/internal/trace"
)

// AnySource matches a message from any sender, like MPI_ANY_SOURCE.
// Matching picks the queued message with the earliest arrival time, which
// approximates MPICH behaviour; note that the simulated workloads avoid
// wildcard receives so that their logical streams stay deterministic, as
// the paper's benchmarks do.
const AnySource = -1

// AnyTag matches a message with any tag, like MPI_ANY_TAG.
const AnyTag = -1

// Message describes a received message.
type Message struct {
	// Sender is the rank that sent the message.
	Sender int
	// Tag is the tag the message was sent with.
	Tag int
	// Size is the payload size in bytes.
	Size int64
	// Arrival is the simulated time (microseconds) at which the message
	// arrived at the receiver's low-level layer.
	Arrival float64
}

// envelope is a message in flight or queued at the receiver.
type envelope struct {
	sender  int
	tag     int
	size    int64
	arrival float64
	kind    trace.Kind
	op      string
}

// Rank is the per-process handle a Program uses to communicate. It must
// only be used from the program goroutine it was handed to.
type Rank struct {
	eng *Engine
	id  int

	clock float64
	rng   *rand.Rand

	state            rankState
	resumeCh         chan struct{}
	yieldCh          chan struct{}
	mailbox          []*envelope
	mailboxVersion   int
	blockedAtVersion int
	blockedOn        string

	// collectiveOp is non-empty while the rank executes a collective; the
	// messages it generates are then recorded with Kind Collective and the
	// operation name.
	collectiveOp string

	sentMessages     int64
	receivedMessages int64
}

func newRank(e *Engine, id int) *Rank {
	return &Rank{
		eng:   e,
		id:    id,
		rng:   e.rankRNG(id),
		state: stateReady,
	}
}

// ID returns the rank number (0-based).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the run (the communicator size).
func (r *Rank) Size() int { return len(r.eng.ranks) }

// Clock returns the rank's current virtual time in microseconds.
func (r *Rank) Clock() float64 { return r.clock }

// SentMessages returns how many messages this rank has sent so far.
func (r *Rank) SentMessages() int64 { return r.sentMessages }

// ReceivedMessages returns how many messages this rank has received.
func (r *Rank) ReceivedMessages() int64 { return r.receivedMessages }

// start launches the rank goroutine. The goroutine waits for the engine
// to resume it before running the program.
func (r *Rank) start(program Program) {
	r.resumeCh = make(chan struct{})
	r.yieldCh = make(chan struct{})
	go func() {
		<-r.resumeCh
		defer func() {
			if p := recover(); p != nil {
				if r.eng.programErr == nil {
					r.eng.programErr = fmt.Errorf("rank %d panicked: %v", r.id, p)
				}
			}
			r.state = stateDone
			r.yieldCh <- struct{}{}
		}()
		program(r)
	}()
}

// resumeOnce hands control to the rank goroutine and waits for it to
// block or finish. Called only by the engine scheduler.
func (r *Rank) resumeOnce() {
	r.state = stateReady
	r.resumeCh <- struct{}{}
	<-r.yieldCh
}

// block suspends the rank until the scheduler resumes it. Called only
// from the rank goroutine.
func (r *Rank) block(what string) {
	r.blockedOn = what
	r.blockedAtVersion = r.mailboxVersion
	r.state = stateBlocked
	r.yieldCh <- struct{}{}
	<-r.resumeCh
}

// Compute advances the rank's clock by a compute phase of the given
// nominal duration (microseconds), subject to the configured load
// imbalance noise. Workload skeletons call it between communication
// phases; it is the main source of physical-level randomness besides
// network jitter.
func (r *Rank) Compute(us float64) {
	r.clock += r.eng.model.ComputeTime(r.rng, us)
}

// Send performs a blocking standard-mode send of size bytes to dst with
// the given tag. Eager messages return after the library overhead;
// rendezvous messages additionally charge the handshake round trip to the
// sender's clock, reproducing the latency gap Section 2.3 of the paper
// wants to eliminate.
func (r *Rank) Send(dst, tag int, size int64) {
	r.send(dst, tag, size, trace.PointToPoint, "send")
}

func (r *Rank) send(dst, tag int, size int64, kind trace.Kind, op string) {
	if dst < 0 || dst >= len(r.eng.ranks) {
		panic(fmt.Sprintf("simmpi: rank %d sends to invalid rank %d (size %d)", r.id, dst, len(r.eng.ranks)))
	}
	if size < 0 {
		size = 0
	}
	m := r.eng.model
	r.clock += m.SendOverhead()
	if m.UsesRendezvous(size) {
		r.clock += m.RendezvousHandshake(r.rng)
	}
	arrival := r.clock + m.TransferTime(r.rng, size)
	dst2 := r.eng.ranks[dst]
	env := &envelope{sender: r.id, tag: tag, size: size, arrival: arrival, kind: kind, op: op}
	dst2.mailbox = append(dst2.mailbox, env)
	dst2.mailboxVersion++
	r.sentMessages++
	r.eng.recordPhysical(trace.Record{
		Time:     arrival,
		Receiver: dst,
		Sender:   r.id,
		Size:     size,
		Tag:      tag,
		Kind:     kind,
		Op:       op,
	})
}

// Recv performs a blocking receive of a message from src with the given
// tag. src may be AnySource and tag may be AnyTag. The returned Message
// reports the actual sender, tag, size and arrival time.
func (r *Rank) Recv(src, tag int) Message {
	return r.recv(src, tag, "recv")
}

func (r *Rank) recv(src, tag int, op string) Message {
	for {
		idx := r.match(src, tag)
		if idx >= 0 {
			env := r.mailbox[idx]
			r.mailbox = append(r.mailbox[:idx], r.mailbox[idx+1:]...)
			if env.arrival > r.clock {
				r.clock = env.arrival
			}
			r.clock += r.eng.model.RecvOverhead()
			r.receivedMessages++
			r.eng.recordLogical(trace.Record{
				Time:     r.clock,
				Receiver: r.id,
				Sender:   env.sender,
				Size:     env.size,
				Tag:      env.tag,
				Kind:     env.kind,
				Op:       env.op,
			})
			return Message{Sender: env.sender, Tag: env.tag, Size: env.size, Arrival: env.arrival}
		}
		r.block(fmt.Sprintf("%s(src=%d, tag=%d)", op, src, tag))
	}
}

// match returns the index of the message to deliver for a receive with
// the given source and tag, or -1 when none is queued. For a specific
// source, messages from that source are matched in send order (MPI
// pairwise non-overtaking). For AnySource, the earliest-arriving queued
// match is chosen.
func (r *Rank) match(src, tag int) int {
	best := -1
	for i, env := range r.mailbox {
		if src != AnySource && env.sender != src {
			continue
		}
		if tag != AnyTag && env.tag != tag {
			continue
		}
		if src != AnySource {
			return i // first in send order
		}
		if best == -1 || env.arrival < r.mailbox[best].arrival {
			best = i
		}
	}
	return best
}

// Sendrecv sends one message and receives another, like MPI_Sendrecv.
// Because sends never block in this runtime, the combined operation is
// deadlock-free for symmetric exchange patterns.
func (r *Rank) Sendrecv(dst, sendTag int, sendSize int64, src, recvTag int) Message {
	r.Send(dst, sendTag, sendSize)
	return r.Recv(src, recvTag)
}

// Request represents an outstanding non-blocking operation.
type Request struct {
	rank   *Rank
	isSend bool
	src    int
	tag    int
	op     string
	done   bool
	msg    Message
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Isend starts a non-blocking send. In this runtime the message is
// buffered immediately, so the returned request is already complete; Wait
// on it is a no-op. The send cost is charged to the sender's clock at the
// Isend call.
func (r *Rank) Isend(dst, tag int, size int64) *Request {
	r.send(dst, tag, size, trace.PointToPoint, "isend")
	return &Request{rank: r, isSend: true, done: true}
}

// Irecv posts a non-blocking receive. Matching happens when the request
// is waited on; the logical trace therefore records receives in Wait
// order, which is the order the application consumes them — the same
// notion of "logical communication" the paper uses.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, isSend: false, src: src, tag: tag, op: "irecv"}
}

// Wait blocks until the request completes and returns the received
// message (zero Message for send requests).
func (r *Rank) Wait(q *Request) Message {
	if q == nil {
		panic("simmpi: Wait on nil request")
	}
	if q.rank != r {
		panic("simmpi: Wait on a request owned by another rank")
	}
	if q.done {
		return q.msg
	}
	q.msg = r.recv(q.src, q.tag, q.op)
	q.done = true
	return q.msg
}

// Waitall waits for every request, in order, and returns the received
// messages.
func (r *Rank) Waitall(reqs []*Request) []Message {
	out := make([]Message, len(reqs))
	for i, q := range reqs {
		out[i] = r.Wait(q)
	}
	return out
}
