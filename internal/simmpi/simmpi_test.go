package simmpi

import (
	"math/bits"
	"strings"
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
)

func testConfig(procs int) Config {
	return Config{
		App:   "test",
		Procs: procs,
		Net:   simnet.NoiselessConfig(),
		Seed:  1,
	}
}

func noisyConfig(procs int) Config {
	cfg := testConfig(procs)
	cfg.Net = simnet.DefaultConfig()
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(2).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := testConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero procs should be rejected")
	}
	noApp := testConfig(2)
	noApp.App = ""
	if err := noApp.Validate(); err == nil {
		t.Error("empty app name should be rejected")
	}
	badNet := testConfig(2)
	badNet.Net.BandwidthBytesPerUS = -1
	if err := badNet.Validate(); err == nil {
		t.Error("invalid network config should be rejected")
	}
	if _, err := NewEngine(badNet); err == nil {
		t.Error("NewEngine should reject invalid config")
	}
}

func TestRunRejectsNilProgram(t *testing.T) {
	e, err := NewEngine(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil); err == nil {
		t.Error("nil program should be rejected")
	}
}

func TestPingPong(t *testing.T) {
	tr, err := Run(testConfig(2), func(r *Rank) {
		const rounds = 10
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				r.Send(1, 7, 1024)
				m := r.Recv(1, 8)
				if m.Sender != 1 || m.Size != 2048 || m.Tag != 8 {
					panic("rank 0 received wrong message")
				}
			} else {
				m := r.Recv(0, 7)
				if m.Sender != 0 || m.Size != 1024 {
					panic("rank 1 received wrong message")
				}
				r.Send(0, 8, 2048)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []trace.Level{trace.Logical, trace.Physical} {
		if got := len(tr.Filter(0, level)); got != 10 {
			t.Errorf("rank 0 %s records=%d want 10", level, got)
		}
		if got := len(tr.Filter(1, level)); got != 10 {
			t.Errorf("rank 1 %s records=%d want 10", level, got)
		}
	}
	sizes := tr.SizeStream(0, trace.Logical)
	for _, s := range sizes {
		if s != 2048 {
			t.Errorf("rank 0 should only receive 2048-byte messages, saw %d", s)
		}
	}
}

func TestClockAdvancesAndSimulatedTime(t *testing.T) {
	e, err := NewEngine(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var clock0, clock1 float64
	_, err = e.Run(func(r *Rank) {
		r.Compute(100)
		if r.ID() == 0 {
			r.Send(1, 0, 4096)
			clock0 = r.Clock()
		} else {
			m := r.Recv(0, 0)
			if m.Arrival <= 0 {
				panic("arrival time must be positive")
			}
			clock1 = r.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock0 <= 100 {
		t.Errorf("sender clock=%g, should exceed the compute phase", clock0)
	}
	if clock1 <= clock0 {
		t.Errorf("receiver clock %g should be behind the message arrival, after sender clock %g", clock1, clock0)
	}
	if e.SimulatedTime() < clock1 {
		t.Errorf("SimulatedTime=%g should be at least the largest rank clock %g", e.SimulatedTime(), clock1)
	}
	if e.Model() == nil {
		t.Error("Model() should not be nil")
	}
}

func TestMessageCounters(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 0, 8)
			}
			if r.SentMessages() != 5 {
				panic("sender counter wrong")
			}
			if r.ReceivedMessages() != 0 {
				panic("receiver counter should be zero on rank 0")
			}
		} else {
			for i := 0; i < 5; i++ {
				r.Recv(0, 0)
			}
			if r.ReceivedMessages() != 5 {
				panic("receive counter wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		// Both ranks receive first: nobody ever sends.
		r.Recv(1-r.ID(), 0)
	})
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error should mention deadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "rank 0") || !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("deadlock error should list the blocked ranks, got %v", err)
	}
}

func TestProgramPanicIsReported(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic should surface as an error, got %v", err)
	}
}

func TestSendToInvalidRankPanicsAndIsReported(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, 0, 8)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("expected invalid-rank error, got %v", err)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	program := func(r *Rank) {
		for i := 0; i < 20; i++ {
			r.Compute(50)
			if r.ID() != 0 {
				r.Send(0, 1, int64(100*(r.ID()+1)))
			} else {
				for src := 1; src < r.Size(); src++ {
					r.Recv(src, 1)
				}
			}
		}
	}
	run := func(seed int64) *trace.Trace {
		cfg := noisyConfig(4)
		cfg.Seed = seed
		tr, err := Run(cfg, program)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(42), run(42)
	if a.Len() != b.Len() {
		t.Fatalf("same seed produced different record counts: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("same seed diverged at record %d: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
	c := run(43)
	same := true
	if c.Len() != a.Len() {
		same = false
	} else {
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should give different physical timings")
	}
}

func TestNoiselessLogicalEqualsPhysicalOrder(t *testing.T) {
	// Without jitter or imbalance, an acknowledged (flow-controlled)
	// exchange keeps every sender in lock-step with the receiver, so the
	// arrival order equals the receive order: the logical and physical
	// sender streams are identical. This is the deterministic baseline
	// against which the noisy run below shows reordering.
	tr, err := Run(testConfig(4), func(r *Rank) {
		const ackTag = 99
		for iter := 0; iter < 30; iter++ {
			if r.ID() == 0 {
				for src := 1; src < r.Size(); src++ {
					r.Recv(src, 0)
				}
				for src := 1; src < r.Size(); src++ {
					r.Send(src, ackTag, 4)
				}
			} else {
				r.Compute(10)
				r.Send(0, 0, int64(64*r.ID()))
				r.Recv(0, ackTag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	logical := tr.SenderStream(0, trace.Logical)
	physical := tr.SenderStream(0, trace.Physical)
	if len(logical) != len(physical) || len(logical) != 90 {
		t.Fatalf("stream lengths %d/%d want 90/90", len(logical), len(physical))
	}
	for i := range logical {
		if logical[i] != physical[i] {
			t.Fatalf("noiseless run: logical and physical sender order differ at %d (%d vs %d)",
				i, logical[i], physical[i])
		}
	}
}

func TestNoisyPhysicalOrderDiffersFromLogical(t *testing.T) {
	cfg := noisyConfig(4)
	cfg.Net.JitterFrac = 0.6
	cfg.Net.ImbalanceFrac = 0.4
	tr, err := Run(cfg, func(r *Rank) {
		for iter := 0; iter < 100; iter++ {
			if r.ID() == 0 {
				for src := 1; src < r.Size(); src++ {
					r.Recv(src, 0)
				}
			} else {
				r.Compute(20)
				r.Send(0, 0, 256)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	logical := tr.SenderStream(0, trace.Logical)
	physical := tr.SenderStream(0, trace.Physical)
	diff := 0
	for i := range logical {
		if logical[i] != physical[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("with heavy noise the physical arrival order should differ from the logical order somewhere")
	}
	// The multiset of senders must still be identical: noise reorders
	// messages, it does not create or destroy them.
	countL := map[int64]int{}
	countP := map[int64]int{}
	for i := range logical {
		countL[logical[i]]++
		countP[physical[i]]++
	}
	for k, v := range countL {
		if countP[k] != v {
			t.Errorf("sender multiset mismatch for sender %d: %d vs %d", k, v, countP[k])
		}
	}
}

func TestPairwiseOrderingPreserved(t *testing.T) {
	// MPI guarantees that two messages from the same sender with the same
	// tag are received in send order, regardless of jitter.
	cfg := noisyConfig(2)
	cfg.Net.JitterFrac = 0.9
	tr, err := Run(cfg, func(r *Rank) {
		const n = 200
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, 0, int64(8+i)) // strictly increasing sizes encode send order
			}
		} else {
			prev := int64(-1)
			for i := 0; i < n; i++ {
				m := r.Recv(0, 0)
				if m.Size <= prev {
					panic("pairwise ordering violated")
				}
				prev = m.Size
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The logical size stream must be strictly increasing as well.
	sizes := tr.SizeStream(1, trace.Logical)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("logical stream out of order at %d", i)
		}
	}
}

func TestAnySourceAndAnyTag(t *testing.T) {
	tr, err := Run(testConfig(3), func(r *Rank) {
		switch r.ID() {
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				m := r.Recv(AnySource, AnyTag)
				got[m.Sender] = true
			}
			if !got[1] || !got[2] {
				panic("wildcard receive should see both senders")
			}
		case 1:
			r.Compute(10)
			r.Send(0, 5, 64)
		case 2:
			r.Compute(20)
			r.Send(0, 9, 128)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Filter(0, trace.Logical)) != 2 {
		t.Error("rank 0 should have two logical records")
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	tr, err := Run(testConfig(3), func(r *Rank) {
		if r.ID() == 0 {
			reqs := []*Request{
				r.Irecv(1, 0),
				r.Irecv(2, 0),
			}
			msgs := r.Waitall(reqs)
			if msgs[0].Sender != 1 || msgs[1].Sender != 2 {
				panic("waitall returned messages out of request order")
			}
			for _, q := range reqs {
				if !q.Done() {
					panic("request should be done after Waitall")
				}
			}
		} else {
			q := r.Isend(0, 0, 512)
			if !q.Done() {
				panic("isend requests complete immediately in this runtime")
			}
			r.Wait(q)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStream(0, trace.Logical)
	if len(senders) != 2 || senders[0] != 1 || senders[1] != 2 {
		t.Errorf("logical senders=%v want [1 2] (wait order)", senders)
	}
}

func TestWaitOnForeignRequestPanics(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.ID() == 0 {
			q := r.Irecv(1, 0)
			_ = q
		} else {
			// Waiting on a request created by another rank is a programming
			// error; craft one artificially.
			foreign := &Request{rank: nil}
			r.Wait(foreign)
		}
	})
	if err == nil {
		t.Fatal("expected an error from waiting on a foreign request")
	}
}

func TestWaitNilRequestPanics(t *testing.T) {
	_, err := Run(testConfig(1), func(r *Rank) {
		r.Wait(nil)
	})
	if err == nil {
		t.Fatal("expected an error from waiting on a nil request")
	}
}

func TestSendrecvExchange(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		peer := 1 - r.ID()
		for i := 0; i < 50; i++ {
			m := r.Sendrecv(peer, 3, 100, peer, 3)
			if m.Sender != peer || m.Size != 100 {
				panic("sendrecv returned wrong message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	_, err := Run(testConfig(1), func(r *Rank) {
		r.Send(0, 1, 64)
		m := r.Recv(0, 1)
		if m.Sender != 0 || m.Size != 64 {
			panic("self message corrupted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSizeClampedToZero(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, -5)
		} else {
			m := r.Recv(0, 0)
			if m.Size != 0 {
				panic("negative size should clamp to zero")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousChargesSenderClock(t *testing.T) {
	var eagerClock, rdvClock float64
	_, err := Run(testConfig(2), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 16*1024) // at the limit: eager
			eagerClock = r.Clock()
			r.Send(1, 0, 64*1024) // above: rendezvous
			rdvClock = r.Clock()
		} else {
			r.Recv(0, 0)
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	eagerCost := eagerClock
	rdvCost := rdvClock - eagerClock
	if rdvCost <= eagerCost {
		t.Errorf("rendezvous send should cost the sender more than an eager send: %g vs %g", rdvCost, eagerCost)
	}
}

func TestTraceReceiverFilter(t *testing.T) {
	cfg := testConfig(4)
	cfg.TraceReceivers = []int{2}
	tr, err := Run(cfg, func(r *Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() - 1 + r.Size()) % r.Size()
		for i := 0; i < 5; i++ {
			r.Send(next, 0, 32)
			r.Recv(prev, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Receivers(); len(got) != 1 || got[0] != 2 {
		t.Errorf("only rank 2 should be traced, got %v", got)
	}
	if len(tr.Filter(2, trace.Logical)) != 5 || len(tr.Filter(2, trace.Physical)) != 5 {
		t.Error("rank 2 should have 5 records at each level")
	}
}

func TestDisableLevels(t *testing.T) {
	cfg := testConfig(2)
	cfg.DisablePhysical = true
	tr, err := Run(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 8)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Filter(1, trace.Physical)) != 0 {
		t.Error("physical records should be disabled")
	}
	if len(tr.Filter(1, trace.Logical)) != 1 {
		t.Error("logical records should still be present")
	}

	cfg2 := testConfig(2)
	cfg2.DisableLogical = true
	tr2, err := Run(cfg2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 8)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Filter(1, trace.Logical)) != 0 {
		t.Error("logical records should be disabled")
	}
	if len(tr2.Filter(1, trace.Physical)) != 1 {
		t.Error("physical records should still be present")
	}
}

// ---- collectives ----

func logOf(p int) int {
	// number of dissemination/binomial rounds
	return bits.Len(uint(p - 1))
}

func TestBarrierMessageCounts(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 16} {
		tr, err := Run(testConfig(p), func(r *Rank) {
			r.Barrier()
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for rank := 0; rank < p; rank++ {
			got := len(tr.Filter(rank, trace.Logical))
			want := 0
			if p > 1 {
				want = logOf(p)
			}
			if got != want {
				t.Errorf("p=%d rank %d received %d barrier messages, want %d", p, rank, got, want)
			}
			for _, rec := range tr.Filter(rank, trace.Logical) {
				if rec.Kind != trace.Collective || rec.Op != "barrier" {
					t.Errorf("barrier record mislabelled: %+v", rec)
				}
			}
		}
	}
}

func TestBcastMessageCounts(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, root := range []int{0, p - 1} {
			tr, err := Run(testConfig(p), func(r *Rank) {
				r.Bcast(root, 4096)
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
			total := 0
			for rank := 0; rank < p; rank++ {
				n := len(tr.Filter(rank, trace.Logical))
				total += n
				if rank == root && n != 0 {
					t.Errorf("p=%d root=%d: root received %d messages, want 0", p, root, n)
				}
				if rank != root && n != 1 {
					t.Errorf("p=%d root=%d: rank %d received %d messages, want 1", p, root, rank, n)
				}
			}
			if total != p-1 {
				t.Errorf("p=%d root=%d: total bcast messages=%d want %d", p, root, total, p-1)
			}
		}
	}
}

func TestReduceMessageCounts(t *testing.T) {
	for _, p := range []int{2, 3, 4, 6, 8} {
		tr, err := Run(testConfig(p), func(r *Rank) {
			r.Reduce(0, 1024)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		total := 0
		for rank := 0; rank < p; rank++ {
			total += len(tr.Filter(rank, trace.Logical))
		}
		if total != p-1 {
			t.Errorf("p=%d: total reduce messages=%d want %d", p, total, p-1)
		}
	}
}

func TestAllreduceCounts(t *testing.T) {
	// Power of two: recursive doubling means every rank receives log2(p)
	// messages. Non power of two: reduce+bcast means p-1 messages twice in
	// total.
	tr, err := Run(testConfig(8), func(r *Rank) { r.Allreduce(2048) })
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 8; rank++ {
		if got := len(tr.Filter(rank, trace.Logical)); got != 3 {
			t.Errorf("allreduce on 8 ranks: rank %d received %d messages, want 3", rank, got)
		}
	}
	tr2, err := Run(testConfig(6), func(r *Rank) { r.Allreduce(2048) })
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for rank := 0; rank < 6; rank++ {
		recs := tr2.Filter(rank, trace.Logical)
		total += len(recs)
		for _, rec := range recs {
			if rec.Op != "allreduce" {
				t.Errorf("non-power-of-two allreduce should still be labelled allreduce, got %q", rec.Op)
			}
		}
	}
	if total != 2*(6-1) {
		t.Errorf("allreduce on 6 ranks: total messages=%d want %d", total, 2*(6-1))
	}
}

func TestGatherScatterCounts(t *testing.T) {
	p := 5
	tr, err := Run(testConfig(p), func(r *Rank) {
		r.Gather(2, 512)
		r.Scatter(2, 256)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < p; rank++ {
		recs := tr.Filter(rank, trace.Logical)
		if rank == 2 {
			if len(recs) != p-1 {
				t.Errorf("gather root received %d messages, want %d", len(recs), p-1)
			}
		} else {
			if len(recs) != 1 {
				t.Errorf("non-root rank %d received %d messages, want 1 (from scatter)", rank, len(recs))
			}
			if recs[0].Size != 256 || recs[0].Sender != 2 {
				t.Errorf("scatter message wrong: %+v", recs[0])
			}
		}
	}
}

func TestAllgatherCounts(t *testing.T) {
	p := 6
	tr, err := Run(testConfig(p), func(r *Rank) { r.Allgather(128) })
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < p; rank++ {
		recs := tr.Filter(rank, trace.Logical)
		if len(recs) != p-1 {
			t.Errorf("allgather: rank %d received %d messages, want %d", rank, len(recs), p-1)
		}
		left := (rank - 1 + p) % p
		for _, rec := range recs {
			if rec.Sender != left {
				t.Errorf("ring allgather should only receive from the left neighbour %d, got %d", left, rec.Sender)
			}
		}
	}
}

func TestAlltoallCounts(t *testing.T) {
	p := 5
	tr, err := Run(testConfig(p), func(r *Rank) { r.Alltoall(64) })
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < p; rank++ {
		recs := tr.Filter(rank, trace.Logical)
		if len(recs) != p-1 {
			t.Errorf("alltoall: rank %d received %d messages, want %d", rank, len(recs), p-1)
		}
		seen := map[int]bool{}
		for _, rec := range recs {
			seen[rec.Sender] = true
		}
		if len(seen) != p-1 {
			t.Errorf("alltoall: rank %d should hear from every other rank, saw %v", rank, seen)
		}
	}
}

func TestAlltoallvSizes(t *testing.T) {
	p := 4
	tr, err := Run(testConfig(p), func(r *Rank) {
		sizes := make([]int64, p)
		for i := range sizes {
			sizes[i] = int64(1000*r.ID() + i) // unique per (sender, receiver)
		}
		r.Alltoallv(sizes)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < p; rank++ {
		recs := tr.Filter(rank, trace.Logical)
		if len(recs) != p-1 {
			t.Fatalf("alltoallv: rank %d received %d messages", rank, len(recs))
		}
		for _, rec := range recs {
			want := int64(1000*rec.Sender + rank)
			if rec.Size != want {
				t.Errorf("alltoallv size from %d to %d = %d, want %d", rec.Sender, rank, rec.Size, want)
			}
		}
	}
}

func TestAlltoallvRequiresOneSizePerRank(t *testing.T) {
	_, err := Run(testConfig(3), func(r *Rank) {
		r.Alltoallv([]int64{1, 2}) // wrong length
	})
	if err == nil {
		t.Fatal("expected an error for a malformed Alltoallv size vector")
	}
}

func TestCollectiveRootValidation(t *testing.T) {
	for name, prog := range map[string]Program{
		"bcast":   func(r *Rank) { r.Bcast(9, 8) },
		"reduce":  func(r *Rank) { r.Reduce(-1, 8) },
		"gather":  func(r *Rank) { r.Gather(100, 8) },
		"scatter": func(r *Rank) { r.Scatter(-2, 8) },
	} {
		if _, err := Run(testConfig(3), prog); err == nil {
			t.Errorf("%s with an out-of-range root should fail", name)
		}
	}
}

func TestSingleRankCollectivesAreNoOps(t *testing.T) {
	tr, err := Run(testConfig(1), func(r *Rank) {
		r.Barrier()
		r.Bcast(0, 8)
		r.Reduce(0, 8)
		r.Allreduce(8)
		r.Allgather(8)
		r.Alltoall(8)
		r.Gather(0, 8)
		r.Scatter(0, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("single-rank collectives should produce no messages, got %d", tr.Len())
	}
}

func TestCollectivesMixedWithPointToPoint(t *testing.T) {
	// A miniature iterative application: neighbour exchange plus a
	// periodic allreduce, the mix BT-like codes have.
	p := 4
	tr, err := Run(testConfig(p), func(r *Rank) {
		right := (r.ID() + 1) % p
		left := (r.ID() - 1 + p) % p
		for iter := 0; iter < 10; iter++ {
			r.Compute(30)
			r.Send(right, 1, 1000)
			r.Recv(left, 1)
			if iter%5 == 4 {
				r.Allreduce(16)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Characterize(1, trace.Logical, 1.0)
	if c.P2PMsgs != 10 {
		t.Errorf("p2p messages=%d want 10", c.P2PMsgs)
	}
	if c.CollMsgs != 2*2 {
		t.Errorf("collective messages=%d want 4 (2 allreduces x log2(4) rounds)", c.CollMsgs)
	}
}

func BenchmarkPingPong(b *testing.B) {
	cfg := testConfig(2)
	cfg.DisableLogical = true
	cfg.DisablePhysical = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(cfg, func(r *Rank) {
			for k := 0; k < 100; k++ {
				if r.ID() == 0 {
					r.Send(1, 0, 1024)
					r.Recv(1, 0)
				} else {
					r.Recv(0, 0)
					r.Send(0, 0, 1024)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlltoall16(b *testing.B) {
	cfg := testConfig(16)
	cfg.DisableLogical = true
	cfg.DisablePhysical = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, func(r *Rank) { r.Alltoall(1024) }); err != nil {
			b.Fatal(err)
		}
	}
}
