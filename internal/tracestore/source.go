package tracestore

import (
	"context"
	"fmt"
	"io"

	"mpipredict/internal/trace"
)

// init hooks the store format into trace.Open's sniffing, so every
// consumer of "a trace file" — stream.FileSource, the evaluation
// replays, the serve ingester, all CLIs — reads .mpts stores through the
// exact same door as .mpt and JSONL traces, with no caller changes.
func init() {
	trace.RegisterFormat(storeMagic, func(path string) (trace.FormatReader, error) {
		r, err := Open(path)
		if err != nil {
			return nil, err
		}
		return &recordReader{r: r}, nil
	})
}

// recordReader adapts a Reader to the record-at-a-time trace.FormatReader
// contract: partitions are decoded one at a time in file order (which is
// the original stream order), so memory stays bounded by one partition
// regardless of trace size.
type recordReader struct {
	r    *Reader
	part int
	pos  int
	pd   PartitionData
}

func (rr *recordReader) App() string { return rr.r.App() }

func (rr *recordReader) Procs() int { return rr.r.Procs() }

func (rr *recordReader) Read() (trace.Record, error) {
	for rr.pos >= len(rr.pd.Time) {
		if rr.part >= rr.r.Partitions() {
			return trace.Record{}, io.EOF
		}
		if err := rr.r.ReadPartition(rr.part, AllColumns, &rr.pd); err != nil {
			return trace.Record{}, fmt.Errorf("tracestore: reading partition %d: %w", rr.part, err)
		}
		rr.part++
		rr.pos = 0
	}
	rec := rr.pd.Record(rr.pos)
	rr.pos++
	return rec, nil
}

func (rr *recordReader) Close() error { return rr.r.Close() }

// LoadFile materializes the named store as an in-memory trace using a
// parallel scan (decode fans over the worker pool; the sequencer appends
// in stream order, so the result is deterministic and Seq numbering
// matches a sequential read). It returns the scan stats so callers — the
// tracecache disk tier — can account for blocks read and partitions
// pruned.
func LoadFile(path string) (*trace.Trace, ScanStats, error) {
	r, err := Open(path)
	if err != nil {
		return nil, ScanStats{}, err
	}
	defer r.Close()
	tr := trace.New(r.App(), r.Procs())
	if n := r.Events(); int64(int(n)) == n {
		tr.Records = make([]trace.Record, 0, n)
	}
	stats, err := r.Scan(context.Background(), Query{}, func(pd *PartitionData) error {
		for i := 0; i < len(pd.Time); i++ {
			tr.Append(pd.Record(i))
		}
		return nil
	})
	if err != nil {
		return nil, stats, fmt.Errorf("tracestore: reading %s: %w", path, err)
	}
	return tr, stats, nil
}
