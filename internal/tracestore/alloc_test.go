package tracestore

import (
	"bytes"
	"context"
	"testing"

	"mpipredict/internal/trace"
)

// TestReadPartitionZeroAlloc pins the scan hot path: once a
// PartitionData's backing arrays have grown to partition size, decoding
// further partitions into it — every column, checksums verified —
// allocates nothing. This is what keeps a million-event scan's steady
// state at (workers+1) partition buffers, independent of trace size.
func TestReadPartitionZeroAlloc(t *testing.T) {
	tr := trace.New("alloc", 8)
	for i := 0; i < 4*256; i++ {
		tr.Append(trace.Record{
			Time:     float64(i) * 1.5,
			Receiver: i % 8,
			Sender:   i % 7,
			Size:     int64(i % 4096),
			Tag:      i % 3,
			Kind:     trace.Kind(i % 2),
			Level:    trace.Level(i % 2),
			Op:       []string{"send", "bcast"}[i%2],
		})
	}
	data := encodeStore(t, tr, 256)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var pd PartitionData
	// Warm: grow the backing arrays to the largest partition.
	for i := 0; i < r.Partitions(); i++ {
		if err := r.ReadPartition(i, AllColumns, &pd); err != nil {
			t.Fatal(err)
		}
	}
	part := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := r.ReadPartition(part, AllColumns, &pd); err != nil {
			t.Fatal(err)
		}
		part = (part + 1) % r.Partitions()
	})
	if allocs != 0 {
		t.Errorf("ReadPartition allocates %.1f allocs/op in steady state, want 0", allocs)
	}

	// The same property for a projected read.
	allocs = testing.AllocsPerRun(100, func() {
		if err := r.ReadPartition(part, Cols(ColSender, ColLevel), &pd); err != nil {
			t.Fatal(err)
		}
		part = (part + 1) % r.Partitions()
	})
	if allocs != 0 {
		t.Errorf("projected ReadPartition allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestScanBoundedBuffers proves the pool recycles PartitionData structs:
// a full scan allocates at most workers+1 of them no matter how many
// partitions flow through.
func TestScanBoundedBuffers(t *testing.T) {
	tr := trace.New("bound", 4)
	for i := 0; i < 100*16; i++ {
		tr.Append(trace.Record{Time: float64(i), Sender: i % 4, Op: "send"})
	}
	data := encodeStore(t, tr, 16)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[*PartitionData]struct{})
	workers := 3
	_, err = r.Scan(context.Background(), Query{Workers: workers}, func(pd *PartitionData) error {
		seen[pd] = struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) > workers+1 {
		t.Errorf("scan used %d PartitionData buffers with %d workers, want at most %d", len(seen), workers, workers+1)
	}
}
