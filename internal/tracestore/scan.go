package tracestore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// TimeRange restricts a scan to partitions whose footer-indexed
// [min, max] event-time interval overlaps [Min, Max].
type TimeRange struct {
	Min float64
	Max float64
}

// Query describes one scan: which columns to decode and which partitions
// to visit.
type Query struct {
	// Columns is the projection; the zero set selects every column.
	Columns ColumnSet
	// Time, when non-nil, prunes partitions that cannot contain events
	// in the range. Pruning is partition-granular: delivered partitions
	// may still contain events outside the range, and callbacks that
	// need exact bounds filter on the time column.
	Time *TimeRange
	// Workers bounds the decode pool; values < 1 mean GOMAXPROCS.
	Workers int
}

// ScanStats reports what a scan touched.
type ScanStats struct {
	// Partitions delivered to the callback.
	Partitions int
	// Pruned partitions skipped via the footer index.
	Pruned int
	// BlocksRead is the number of column blocks read and decoded.
	BlocksRead int
	// BytesRead is the framed size of those blocks.
	BytesRead int64
	// Events delivered (whole-partition counts).
	Events int64
}

// scanJob pairs a partition index with its dense position in the
// selected sequence, which addresses the per-position result slot.
type scanJob struct {
	pos  int
	part int
}

// Scan decodes the selected partitions over a bounded worker pool and
// delivers them to fn strictly in ascending partition order (the
// original stream order), one at a time, on the calling goroutine — so
// fn needs no locking and results are identical at any parallelism.
// The *PartitionData passed to fn is pool-owned and valid only for the
// duration of the call. A non-nil error from fn, a decode error, or
// context cancellation stops the scan promptly; Scan never returns
// before every worker has exited. Stats are valid (partial) on error.
func (r *Reader) Scan(ctx context.Context, q Query, fn func(*PartitionData) error) (ScanStats, error) {
	var stats ScanStats
	cols := q.Columns
	if cols == 0 {
		cols = AllColumns
	}
	selected := make([]int, 0, len(r.parts))
	for i := range r.parts {
		pm := &r.parts[i]
		if q.Time != nil && (pm.maxTime < q.Time.Min || pm.minTime > q.Time.Max) {
			continue
		}
		selected = append(selected, i)
	}
	stats.Pruned = len(r.parts) - len(selected)
	if len(selected) == 0 {
		return stats, ctx.Err()
	}
	workers := q.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan scanJob, len(selected))
	for pos, part := range selected {
		jobs <- scanJob{pos: pos, part: part}
	}
	close(jobs)

	// free recycles PartitionData between workers and the sequencer; its
	// capacity exceeds the worker count so returns never block.
	free := make(chan *PartitionData, workers+1)
	for i := 0; i < workers+1; i++ {
		free <- &PartitionData{}
	}
	results := make([]chan *PartitionData, len(selected))
	for i := range results {
		results[i] = make(chan *PartitionData, 1)
	}
	errCh := make(chan error, workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Acquire the buffer BEFORE taking a job: every job pulled
				// from the FIFO then decodes and parks without blocking, so
				// the sequencer's cursor always progresses. Pulling the job
				// first can drain the pool into results parked ahead of the
				// cursor while the cursor's own job sits bufferless —
				// deadlock.
				var pd *PartitionData
				select {
				case pd = <-free:
				case <-ctx.Done():
					return
				}
				job, ok := <-jobs
				if !ok {
					return
				}
				if err := r.ReadPartition(job.part, cols, pd); err != nil {
					select {
					case errCh <- err:
					default:
					}
					cancel()
					return
				}
				// Buffered (cap 1) with exactly one send per position:
				// never blocks.
				results[job.pos] <- pd
			}
		}()
	}

	fail := func(fnErr error) (ScanStats, error) {
		cancel()
		wg.Wait()
		if fnErr != nil {
			return stats, fnErr
		}
		select {
		case err := <-errCh:
			return stats, err
		default:
		}
		return stats, ctx.Err()
	}

	for pos, part := range selected {
		var pd *PartitionData
		select {
		case pd = <-results[pos]:
		case <-ctx.Done():
			return fail(nil)
		}
		pm := &r.parts[part]
		stats.Partitions++
		stats.Events += int64(pm.events)
		for c := Column(0); c < numColumns; c++ {
			if cols.Has(c) {
				stats.BlocksRead++
				stats.BytesRead += int64(pm.colLen[c])
			}
		}
		if err := fn(pd); err != nil {
			return fail(fmt.Errorf("tracestore: scan callback on partition %d: %w", part, err))
		}
		free <- pd
	}
	wg.Wait()
	return stats, nil
}
