package tracestore

import (
	"context"
	"errors"
	"sort"

	"mpipredict/internal/trace"
)

// Aggregations over the scan engine. Each one projects only the columns
// it needs, accumulates in the sequencer callback (single-goroutine, no
// locking) and post-processes deterministically, so results are
// byte-identical at any worker-pool parallelism.

// SenderCount is one row of a top-K sender ranking.
type SenderCount struct {
	Sender int64
	Events int64
}

// TopKSenders ranks senders of the given stream level by event count,
// most active first (ties broken by ascending sender rank), truncated to
// k rows. The second return is the level's total event count (the share
// denominator, independent of the truncation). It decodes only the sender
// and level columns.
func (r *Reader) TopKSenders(ctx context.Context, level trace.Level, k, workers int) ([]SenderCount, int64, ScanStats, error) {
	counts := make(map[int64]int64)
	var total int64
	stats, err := r.Scan(ctx, Query{Columns: Cols(ColSender, ColLevel), Workers: workers}, func(pd *PartitionData) error {
		for i, s := range pd.Sender {
			if pd.Level[i] == level {
				counts[s]++
				total++
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, stats, err
	}
	rows := make([]SenderCount, 0, len(counts))
	for s, n := range counts {
		rows = append(rows, SenderCount{Sender: s, Events: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Events != rows[j].Events {
			return rows[i].Events > rows[j].Events
		}
		return rows[i].Sender < rows[j].Sender
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows, total, stats, nil
}

// WindowStat summarizes one of n equal-width time windows spanning the
// store's footer-indexed time bounds: the per-window inputs for
// hit-rate-over-time and phase analysis.
type WindowStat struct {
	Index           int
	Start           float64
	End             float64
	Events          int64
	P2P             int64
	Collective      int64
	DistinctSenders int
}

// ErrEmptyStore is returned by windowed aggregations over a store with
// no events: there is no time axis to divide.
var ErrEmptyStore = errors.New("tracestore: store holds no events")

// windowIndex maps an event time onto [0, n) given the global bounds.
func windowIndex(t, min, width float64, n int) int {
	if width <= 0 {
		return 0
	}
	w := int((t - min) / width)
	if w < 0 {
		w = 0
	}
	if w >= n {
		w = n - 1
	}
	return w
}

// windowPass is the shared single-scan accumulation behind TimeWindows
// and PhaseBoundaries: per-window event/kind tallies plus the set of
// senders active in each window.
func (r *Reader) windowPass(ctx context.Context, level trace.Level, n, workers int) ([]WindowStat, []map[int64]struct{}, ScanStats, error) {
	min, max, ok := r.TimeBounds()
	if !ok {
		return nil, nil, ScanStats{}, ErrEmptyStore
	}
	width := (max - min) / float64(n)
	wins := make([]WindowStat, n)
	senders := make([]map[int64]struct{}, n)
	for i := range wins {
		wins[i].Index = i
		wins[i].Start = min + float64(i)*width
		wins[i].End = min + float64(i+1)*width
		senders[i] = make(map[int64]struct{})
	}
	wins[n-1].End = max
	q := Query{Columns: Cols(ColTime, ColSender, ColKind, ColLevel), Workers: workers}
	stats, err := r.Scan(ctx, q, func(pd *PartitionData) error {
		for i, t := range pd.Time {
			if pd.Level[i] != level {
				continue
			}
			w := windowIndex(t, min, width, n)
			wins[w].Events++
			if pd.Kind[i] == trace.Collective {
				wins[w].Collective++
			} else {
				wins[w].P2P++
			}
			senders[w][pd.Sender[i]] = struct{}{}
		}
		return nil
	})
	if err != nil {
		return nil, nil, stats, err
	}
	for i := range wins {
		wins[i].DistinctSenders = len(senders[i])
	}
	return wins, senders, stats, nil
}

// TimeWindows divides the store's time span into n equal windows and
// returns per-window event tallies for the given stream level.
func (r *Reader) TimeWindows(ctx context.Context, level trace.Level, n, workers int) ([]WindowStat, ScanStats, error) {
	if n < 1 {
		n = 1
	}
	wins, _, stats, err := r.windowPass(ctx, level, n, workers)
	return wins, stats, err
}

// PhaseBoundary marks a window whose active-sender set diverged from the
// previous window's: the communication-phase shifts the paper's
// period-based predictors have to ride out.
type PhaseBoundary struct {
	// Window is the index of the window opening the new phase.
	Window int
	// Time is that window's start time.
	Time float64
	// Similarity is the Jaccard similarity between the sender sets of
	// the previous window and this one (0 = disjoint, 1 = identical).
	Similarity float64
}

// PhaseBoundaries divides the store's time span into the given number of
// windows and reports every adjacent pair of non-empty windows whose
// sender-set Jaccard similarity falls below threshold.
func (r *Reader) PhaseBoundaries(ctx context.Context, level trace.Level, windows int, threshold float64, workers int) ([]PhaseBoundary, ScanStats, error) {
	if windows < 2 {
		windows = 2
	}
	wins, senders, stats, err := r.windowPass(ctx, level, windows, workers)
	if err != nil {
		return nil, stats, err
	}
	var bounds []PhaseBoundary
	for i := 1; i < len(wins); i++ {
		prev, cur := senders[i-1], senders[i]
		if len(prev) == 0 || len(cur) == 0 {
			continue
		}
		inter := 0
		for s := range prev {
			if _, ok := cur[s]; ok {
				inter++
			}
		}
		union := len(prev) + len(cur) - inter
		sim := float64(inter) / float64(union)
		if sim < threshold {
			bounds = append(bounds, PhaseBoundary{Window: i, Time: wins[i].Start, Similarity: sim})
		}
	}
	return bounds, stats, nil
}
