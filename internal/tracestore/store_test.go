package tracestore

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpipredict/internal/trace"
)

// arbitraryTrace builds a deterministic pseudo-random trace exercising
// every record field: negative senders (collectives use -1 in some
// generators), zero sizes, several ops, both levels and kinds, and
// non-monotonic float times.
func arbitraryTrace(rng *rand.Rand, n int) *trace.Trace {
	tr := trace.New("arb", 8)
	ops := []string{"send", "isend", "bcast", "allreduce", ""}
	for i := 0; i < n; i++ {
		rec := trace.Record{
			Time:     rng.Float64()*1e6 - 100,
			Receiver: rng.Intn(8),
			Sender:   rng.Intn(10) - 1,
			Size:     int64(rng.Intn(1 << 16)),
			Tag:      rng.Intn(100) - 50,
			Kind:     trace.Kind(rng.Intn(2)),
			Level:    trace.Level(rng.Intn(2)),
			Op:       ops[rng.Intn(len(ops))],
		}
		tr.Append(rec)
	}
	return tr
}

func encodeStore(t *testing.T, tr *trace.Trace, partEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterPartitioned(&buf, tr.App, tr.Procs, partEvents)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if err := w.WriteRecord(tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeStore materializes every record through the sequential reader.
func decodeStore(t *testing.T, data []byte) *trace.Trace {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(r.App(), r.Procs())
	rr := &recordReader{r: r}
	for {
		rec, err := rr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(rec)
	}
	return tr
}

func tracesEqual(a, b *trace.Trace) bool {
	return a.App == b.App && a.Procs == b.Procs && reflect.DeepEqual(a.Records, b.Records)
}

func TestStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 64, 500} {
		for _, part := range []int{1, 3, 16, PartitionEvents} {
			tr := arbitraryTrace(rng, n)
			data := encodeStore(t, tr, part)
			got := decodeStore(t, data)
			if !tracesEqual(tr, got) {
				t.Errorf("n=%d part=%d: round-trip mismatch", n, part)
			}
		}
	}
}

// eofReaderAt returns (len(p), io.EOF) when a read ends exactly at end
// of input, as the io.ReaderAt contract permits (os.File and
// bytes.Reader happen to return nil there). NewReader takes any
// io.ReaderAt, so such reads must not be treated as corruption.
type eofReaderAt struct{ data []byte }

func (r eofReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[off:])
	if n < len(p) || off+int64(n) == int64(len(r.data)) {
		return n, io.EOF
	}
	return n, nil
}

func TestReaderToleratesEOFAtExactEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := arbitraryTrace(rng, 200)
	data := encodeStore(t, tr, 16)
	r, err := NewReader(eofReaderAt{data}, int64(len(data)))
	if err != nil {
		t.Fatalf("NewReader over an EOF-returning ReaderAt: %v", err)
	}
	var pd PartitionData
	for i := 0; i < r.Partitions(); i++ {
		if err := r.ReadPartition(i, AllColumns, &pd); err != nil {
			t.Fatalf("ReadPartition(%d): %v", i, err)
		}
	}
}

func TestStoreReaderMetadata(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := arbitraryTrace(rng, 100)
	data := encodeStore(t, tr, 16)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.App() != "arb" || r.Procs() != 8 {
		t.Errorf("header = (%q, %d), want (arb, 8)", r.App(), r.Procs())
	}
	if r.Events() != 100 {
		t.Errorf("Events() = %d, want 100", r.Events())
	}
	if want := (100 + 15) / 16; r.Partitions() != want {
		t.Errorf("Partitions() = %d, want %d", r.Partitions(), want)
	}
	min, max, ok := r.TimeBounds()
	if !ok {
		t.Fatal("TimeBounds not ok for a non-empty store")
	}
	wantMin, wantMax := tr.Records[0].Time, tr.Records[0].Time
	for _, rec := range tr.Records {
		if rec.Time < wantMin {
			wantMin = rec.Time
		}
		if rec.Time > wantMax {
			wantMax = rec.Time
		}
	}
	if min != wantMin || max != wantMax {
		t.Errorf("TimeBounds = (%g, %g), want (%g, %g)", min, max, wantMin, wantMax)
	}
}

func TestStoreEmptyTrace(t *testing.T) {
	tr := trace.New("empty", 4)
	data := encodeStore(t, tr, 8)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Events() != 0 || r.Partitions() != 0 {
		t.Errorf("empty store has %d events in %d partitions", r.Events(), r.Partitions())
	}
	if _, _, ok := r.TimeBounds(); ok {
		t.Error("TimeBounds ok for an empty store")
	}
	if _, _, err := r.TimeWindows(t.Context(), trace.Logical, 4, 1); !errors.Is(err, ErrEmptyStore) {
		t.Errorf("TimeWindows over empty store: %v, want ErrEmptyStore", err)
	}
}

func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterPartitioned(&buf, "x", 1, 0); err == nil {
		t.Error("partition size 0 accepted")
	}
	if _, err := NewWriter(&buf, strings.Repeat("x", maxStringLen+1), 1); err == nil {
		t.Error("oversized app name accepted")
	}
	w, err := NewWriter(&buf, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(trace.Record{Op: strings.Repeat("y", maxStringLen+1)}); err == nil {
		t.Error("oversized op name accepted")
	}
	w2, err := NewWriter(&buf, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err == nil {
		t.Error("double Close accepted")
	}
	if err := w2.WriteRecord(trace.Record{}); err == nil {
		t.Error("WriteRecord after Close accepted")
	}
}

func TestSaveTraceAtomicAndOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.mpts")
	rng := rand.New(rand.NewSource(3))
	good := arbitraryTrace(rng, 40)
	if err := SaveTrace(path, good); err != nil {
		t.Fatal(err)
	}
	bad := trace.New("arb", 8)
	bad.Append(trace.Record{Op: strings.Repeat("x", maxStringLen+1)})
	if err := SaveTrace(path, bad); err == nil {
		t.Fatal("expected an error for an unencodable trace")
	}
	got, _, err := LoadFile(path)
	if err != nil {
		t.Fatalf("previous good file was damaged: %v", err)
	}
	if !tracesEqual(good, got) {
		t.Error("previous good file was replaced by a failed save")
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(leftovers) != 0 {
		t.Errorf("failed save left temp files: %v", leftovers)
	}

	// The registered format: trace.Open and trace.Load sniff the store
	// magic and read through the tracestore reader.
	of, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if of.App() != good.App || of.Procs() != good.Procs {
		t.Errorf("trace.Open header = (%q, %d), want (%q, %d)", of.App(), of.Procs(), good.App, good.Procs)
	}
	if of.Binary() {
		t.Error("store file reported as binary .mpt")
	}
	count := 0
	for {
		_, err := of.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != len(good.Records) {
		t.Errorf("trace.Open read %d records, want %d", count, len(good.Records))
	}
	if err := of.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(good, loaded) {
		t.Error("trace.Load over the store mismatches the source trace")
	}
}

func TestLoadFileMatchesSequentialRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.mpts")
	rng := rand.New(rand.NewSource(4))
	tr := arbitraryTrace(rng, 300)
	var buf bytes.Buffer
	w, err := NewWriterPartitioned(&buf, tr.App, tr.Procs, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if err := w.WriteRecord(tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Error("LoadFile mismatches the source trace")
	}
	if stats.Events != 300 || stats.Partitions != 10 {
		t.Errorf("stats = %+v, want 300 events over 10 partitions", stats)
	}
}

// corruptErr asserts that decoding data fails with an ErrCorrupt-class
// error. Reads go through NewReader plus a full sequential decode, so a
// flip anywhere — header, any block, footer, tail — must surface.
func corruptErr(data []byte) error {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return err
	}
	rr := &recordReader{r: r}
	for {
		if _, err := rr.Read(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func TestStoreRejectsEveryTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := arbitraryTrace(rng, 24)
	data := encodeStore(t, tr, 8)
	for n := 0; n < len(data); n++ {
		err := corruptErr(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", n, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestStoreRejectsEveryBitFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive bit-flip sweep is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(6))
	tr := arbitraryTrace(rng, 24)
	data := encodeStore(t, tr, 8)
	mutated := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(mutated, data)
			mutated[i] ^= 1 << bit
			err := corruptErr(mutated)
			if err == nil {
				t.Fatalf("flip of byte %d bit %d was accepted", i, bit)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip of byte %d bit %d: error %v does not wrap ErrCorrupt", i, bit, err)
			}
		}
	}
}

func TestOpenRejectsWrongFormats(t *testing.T) {
	dir := t.TempDir()
	mpt := filepath.Join(dir, "t.mpt")
	tr := trace.New("bt", 4)
	tr.Append(trace.Record{Op: "send"})
	if err := trace.SaveBinaryFile(mpt, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(mpt); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open(.mpt) = %v, want an ErrCorrupt-class rejection", err)
	}
	if _, err := Open(filepath.Join(dir, "missing.mpts")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Open(missing) = %v, want ErrNotExist", err)
	}
}

func TestColumnSetAndStrings(t *testing.T) {
	s := Cols(ColTime, ColOp)
	if !s.Has(ColTime) || !s.Has(ColOp) || s.Has(ColSender) {
		t.Errorf("Cols membership wrong: %b", s)
	}
	if s.Count() != 2 || AllColumns.Count() != int(numColumns) {
		t.Errorf("Count wrong: %d, %d", s.Count(), AllColumns.Count())
	}
	for c := Column(0); c < numColumns; c++ {
		if strings.Contains(c.String(), "column(") {
			t.Errorf("column %d has no name", c)
		}
	}
}

func FuzzStoreCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, 40} {
		tr := arbitraryTrace(rng, n)
		var buf bytes.Buffer
		w, err := NewWriterPartitioned(&buf, tr.App, tr.Procs, 7)
		if err != nil {
			f.Fatal(err)
		}
		for i := range tr.Records {
			if err := w.WriteRecord(tr.Records[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A truncated and a bit-flipped variant point the fuzzer at the
		// rejection paths from the start.
		f.Add(buf.Bytes()[:buf.Len()/2])
		flipped := append([]byte(nil), buf.Bytes()...)
		flipped[len(flipped)/3] ^= 0x20
		f.Add(flipped)
	}
	// The committed golden corpus stores seed realistic structures.
	corpus, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "corpus", "*.mpts"))
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewReader error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// Accepted input: a full decode must succeed or reject as corrupt,
		// and whatever decodes must re-encode and decode to the same
		// records (the round-trip stability property).
		tr := trace.New(r.App(), r.Procs())
		rr := &recordReader{r: r}
		for {
			rec, err := rr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
				}
				return
			}
			tr.Append(rec)
		}
		if int64(len(tr.Records)) != r.Events() {
			t.Fatalf("decoded %d records, footer says %d", len(tr.Records), r.Events())
		}
		var buf bytes.Buffer
		w, err := NewWriterPartitioned(&buf, tr.App, tr.Procs, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Records {
			if err := w.WriteRecord(tr.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again := decodeStore(t, buf.Bytes())
		if !tracesEqual(tr, again) {
			t.Fatal("re-encoded store decodes to different records")
		}
	})
}

func TestWriteTraceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := arbitraryTrace(rng, 200)
	var a, b bytes.Buffer
	if err := WriteTrace(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteTrace is not byte-deterministic")
	}
}

func TestStoreCompression(t *testing.T) {
	// Sanity-check the encodings actually compress: a realistic stream
	// (bursts sharing arrival timestamps, few ops, small senders) must
	// take far less than the naive fixed-width footprint.
	tr := trace.New("dense", 16)
	for i := 0; i < 10000; i++ {
		tr.Append(trace.Record{
			Time:     float64(i/16) * 12.5,
			Receiver: 0,
			Sender:   i % 16,
			Size:     1024,
			Kind:     trace.PointToPoint,
			Level:    trace.Logical,
			Op:       "send",
		})
	}
	data := encodeStore(t, tr, PartitionEvents)
	naive := len(tr.Records) * (8 + 8 + 8 + 8 + 8 + 1 + 1 + 4)
	if len(data) >= naive/4 {
		t.Errorf("store takes %d bytes, naive fixed-width %d — expected at least 4x compression", len(data), naive)
	}
}

func TestPartitionDataRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := arbitraryTrace(rng, 10)
	data := encodeStore(t, tr, 64)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var pd PartitionData
	if err := r.ReadPartition(0, AllColumns, &pd); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		want := tr.Records[i]
		want.Seq = 0
		if got := pd.Record(i); got != want {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if err := r.ReadPartition(5, AllColumns, &pd); err == nil {
		t.Error("out-of-range partition accepted")
	}
}
