package tracestore

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mpipredict/internal/trace"
)

// scanParallelisms is the set the determinism suite sweeps; the CI race
// step runs these tests by name.
var scanParallelisms = []int{1, 2, 8}

func buildScanStore(t *testing.T, events, partEvents int) ([]byte, *trace.Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	tr := trace.New("scan", 16)
	for i := 0; i < events; i++ {
		tr.Append(trace.Record{
			Time:     float64(i) + rng.Float64(),
			Receiver: rng.Intn(16),
			Sender:   rng.Intn(16),
			Size:     int64(rng.Intn(4096)),
			Tag:      rng.Intn(8),
			Kind:     trace.Kind(rng.Intn(2)),
			Level:    trace.Level(rng.Intn(2)),
			Op:       []string{"send", "isend", "bcast"}[rng.Intn(3)],
		})
	}
	return encodeStore(t, tr, partEvents), tr
}

func openBytes(t *testing.T, data []byte) *Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestScanDeterministicAcrossParallelism proves the acceptance property:
// the scan delivers identical partitions in identical order — and the
// aggregations identical results — at parallelism 1, 2 and 8.
func TestScanDeterministicAcrossParallelism(t *testing.T) {
	data, _ := buildScanStore(t, 1000, 32)
	r := openBytes(t, data)

	type delivery struct {
		index  int
		times  []float64
		sender []int64
	}
	collect := func(workers int) ([]delivery, ScanStats) {
		var got []delivery
		stats, err := r.Scan(context.Background(), Query{Workers: workers}, func(pd *PartitionData) error {
			got = append(got, delivery{
				index:  pd.Index,
				times:  append([]float64(nil), pd.Time...),
				sender: append([]int64(nil), pd.Sender...),
			})
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return got, stats
	}

	base, baseStats := collect(scanParallelisms[0])
	for _, workers := range scanParallelisms[1:] {
		got, stats := collect(workers)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: deliveries differ from workers=1", workers)
		}
		if stats != baseStats {
			t.Errorf("workers=%d: stats %+v differ from workers=1 %+v", workers, stats, baseStats)
		}
	}
	if baseStats.Partitions != 32 || baseStats.Events != 1000 {
		t.Errorf("stats = %+v, want 32 partitions / 1000 events", baseStats)
	}
}

func TestAggregationsDeterministicAcrossParallelism(t *testing.T) {
	data, tr := buildScanStore(t, 2000, 64)
	r := openBytes(t, data)
	ctx := context.Background()

	baseTop, baseTotal, _, err := r.TopKSenders(ctx, trace.Logical, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseWins, _, err := r.TimeWindows(ctx, trace.Logical, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseBounds, _, err := r.PhaseBoundaries(ctx, trace.Logical, 8, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range scanParallelisms[1:] {
		top, totalEvents, _, err := r.TopKSenders(ctx, trace.Logical, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseTop, top) {
			t.Errorf("workers=%d: TopKSenders differs", workers)
		}
		if totalEvents != baseTotal {
			t.Errorf("workers=%d: level total %d, want %d", workers, totalEvents, baseTotal)
		}
		wins, _, err := r.TimeWindows(ctx, trace.Logical, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseWins, wins) {
			t.Errorf("workers=%d: TimeWindows differs", workers)
		}
		bounds, _, err := r.PhaseBoundaries(ctx, trace.Logical, 8, 0.99, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseBounds, bounds) {
			t.Errorf("workers=%d: PhaseBoundaries differs", workers)
		}
	}

	// Cross-check TopKSenders against a trivial full-materialization count.
	counts := make(map[int64]int64)
	for _, rec := range tr.Records {
		if rec.Level == trace.Logical {
			counts[int64(rec.Sender)]++
		}
	}
	for _, row := range baseTop {
		if counts[row.Sender] != row.Events {
			t.Errorf("sender %d: scan counted %d events, trace holds %d", row.Sender, row.Events, counts[row.Sender])
		}
	}

	var total int64
	for _, w := range baseWins {
		total += w.Events
		if w.P2P+w.Collective != w.Events {
			t.Errorf("window %d: kinds %d+%d != events %d", w.Index, w.P2P, w.Collective, w.Events)
		}
	}
	var logical int64
	for _, n := range counts {
		logical += n
	}
	if total != logical {
		t.Errorf("windows hold %d events, trace holds %d logical events", total, logical)
	}
	if baseTotal != logical {
		t.Errorf("TopKSenders reports %d level events, trace holds %d", baseTotal, logical)
	}
}

func TestScanPruningAndProjection(t *testing.T) {
	data, tr := buildScanStore(t, 1000, 50) // 20 partitions, times ~[0, 1000)
	r := openBytes(t, data)

	// A range covering roughly the middle tenth must prune most partitions.
	q := Query{Columns: Cols(ColTime), Time: &TimeRange{Min: 500, Max: 550}, Workers: 4}
	var seen int64
	stats, err := r.Scan(context.Background(), q, func(pd *PartitionData) error {
		seen += int64(len(pd.Time))
		if len(pd.Sender) != 0 || len(pd.Op) != 0 {
			t.Error("unprojected columns were decoded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned == 0 || stats.Partitions+stats.Pruned != 20 {
		t.Errorf("stats = %+v, want pruning over 20 partitions", stats)
	}
	if stats.BlocksRead != stats.Partitions {
		t.Errorf("one-column projection read %d blocks over %d partitions", stats.BlocksRead, stats.Partitions)
	}
	// Every event in the range must be inside a delivered partition.
	var want int64
	for _, rec := range tr.Records {
		if rec.Time >= 500 && rec.Time <= 550 {
			want++
		}
	}
	if seen < want {
		t.Errorf("delivered partitions hold %d events, range holds %d", seen, want)
	}

	// A disjoint range prunes everything.
	stats, err = r.Scan(context.Background(), Query{Time: &TimeRange{Min: 1e9, Max: 2e9}}, func(pd *PartitionData) error {
		t.Error("callback ran for a fully pruned scan")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned != 20 || stats.Partitions != 0 {
		t.Errorf("disjoint range: stats = %+v", stats)
	}
}

func TestScanCallbackErrorStopsScan(t *testing.T) {
	data, _ := buildScanStore(t, 1000, 10)
	r := openBytes(t, data)
	boom := errors.New("boom")
	calls := 0
	_, err := r.Scan(context.Background(), Query{Workers: 8}, func(pd *PartitionData) error {
		calls++
		if pd.Index >= 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Scan error = %v, want the callback's", err)
	}
	if calls != 4 {
		t.Errorf("callback ran %d times after the error, want 4 (sequenced order)", calls)
	}
}

// TestScanCancellationUnwindsWorkers cancels mid-scan and asserts the
// scan returns promptly with the context error and leaks no workers.
func TestScanCancellationUnwindsWorkers(t *testing.T) {
	data, _ := buildScanStore(t, 4000, 8) // 500 partitions keeps the pool busy
	r := openBytes(t, data)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var delivered atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := r.Scan(ctx, Query{Workers: 8}, func(pd *PartitionData) error {
			if delivered.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Scan error = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Scan did not unwind after cancellation")
	}
	cancel()

	// Workers must have exited by the time Scan returns; poll briefly to
	// let the runtime retire them before comparing counts.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines grew from %d to %d after a cancelled scan", before, now)
	}
}

// TestScanLivenessUnderBufferContention regression-tests a deadlock
// where workers pulled a job from the FIFO before acquiring a decode
// buffer: fast workers could park every pool buffer at positions ahead
// of the sequencer's cursor while the cursor's own job sat bufferless,
// wedging the scan forever. Many tiny partitions over a 2-worker pool
// (3 buffers) with the sequencer yielding between deliveries maximizes
// the chance of a worker racing the whole pool ahead of the cursor.
func TestScanLivenessUnderBufferContention(t *testing.T) {
	data, _ := buildScanStore(t, 4096, 8) // 512 partitions
	r := openBytes(t, data)
	for iter := 0; iter < 20; iter++ {
		done := make(chan error, 1)
		go func() {
			_, err := r.Scan(context.Background(), Query{Workers: 2}, func(pd *PartitionData) error {
				runtime.Gosched()
				return nil
			})
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Scan deadlocked under buffer contention")
		}
	}
}

func TestScanContextAlreadyCancelled(t *testing.T) {
	data, _ := buildScanStore(t, 100, 10)
	r := openBytes(t, data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Scan(ctx, Query{Workers: 2}, func(pd *PartitionData) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Scan on a dead context = %v, want context.Canceled", err)
	}
}

func TestScanCorruptBlockSurfacesError(t *testing.T) {
	data, _ := buildScanStore(t, 400, 16)
	// Flip a byte inside the partition data area (after the header, well
	// before the footer) and re-open: the footer is intact, so the scan
	// starts and the poisoned block must fail it.
	mutated := append([]byte(nil), data...)
	mutated[len(mutated)/3] ^= 0x01
	r2, err := NewReader(bytes.NewReader(mutated), int64(len(mutated)))
	if err != nil {
		// The flip landed in a checksummed structural region; equally a
		// rejection, nothing more to scan.
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("NewReader error %v does not wrap ErrCorrupt", err)
		}
		return
	}
	_, err = r2.Scan(context.Background(), Query{Workers: 4}, func(pd *PartitionData) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan over a poisoned block = %v, want ErrCorrupt", err)
	}
}

func TestTopKSendersTruncationAndTies(t *testing.T) {
	tr := trace.New("ties", 8)
	// senders 0..3 with counts 4,3,3,1
	for i, s := range []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 3} {
		tr.Append(trace.Record{Time: float64(i), Sender: s, Op: "send", Level: trace.Logical})
	}
	data := encodeStore(t, tr, 4)
	r := openBytes(t, data)
	rows, total, _, err := r.TopKSenders(context.Background(), trace.Logical, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []SenderCount{{Sender: 0, Events: 4}, {Sender: 1, Events: 3}, {Sender: 2, Events: 3}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("TopKSenders = %+v, want %+v", rows, want)
	}
	if total != 11 {
		t.Errorf("level total = %d, want 11 (truncation must not shrink the denominator)", total)
	}
}

func TestPhaseBoundariesDetectsShift(t *testing.T) {
	tr := trace.New("phases", 16)
	// First half: senders {0,1}; second half: senders {8,9} — one clean
	// boundary at the midpoint.
	for i := 0; i < 400; i++ {
		s := i % 2
		if i >= 200 {
			s = 8 + i%2
		}
		tr.Append(trace.Record{Time: float64(i), Sender: s, Op: "send", Level: trace.Logical})
	}
	data := encodeStore(t, tr, 32)
	r := openBytes(t, data)
	bounds, _, err := r.PhaseBoundaries(context.Background(), trace.Logical, 4, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 1 || bounds[0].Window != 2 || bounds[0].Similarity != 0 {
		t.Errorf("PhaseBoundaries = %+v, want one disjoint boundary at window 2", bounds)
	}
}
