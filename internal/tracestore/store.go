// Package tracestore implements the partitioned columnar on-disk trace
// store (".mpts") and its parallel scan engine. The flat binary trace
// codec (internal/trace, ".mpt") materializes a whole trace to answer any
// question; the store splits the event stream into fixed-size partitions
// (row groups) and stores every record field as its own compressed,
// checksummed block, so analytical scans read only the columns they
// project and only the partitions the footer index says overlap the query
// — million-event analytics in bounded memory, fanned over a bounded
// worker pool (scan.go).
//
// Layout (all multi-byte integers are varints in the encoding of
// encoding/binary; "uvarint" and "varint" refer to binary.PutUvarint and
// binary.PutVarint respectively):
//
//	header:
//	  magic    [4]byte "MPTS"
//	  version  uvarint (currently 1)
//	  app      uvarint length + UTF-8 bytes
//	  procs    varint
//	  crc      [4]byte little-endian CRC-32 (IEEE) of every header byte
//	           before it
//	partitions: row groups of PartitionEvents events each (the last may be
//	short), written back to back. Each partition is numColumns blocks in
//	Column order:
//	  block:   uvarint payload length | payload | [4]byte little-endian
//	           CRC-32 (IEEE) of the length prefix and the payload
//	column payloads (delta baselines reset at every partition boundary, so
//	each block decodes standalone — the property projection and pruning
//	rely on):
//	  time     varint delta of the IEEE-754 bits vs the previous event
//	  receiver varint delta vs the previous event
//	  sender   varint (zig-zag)
//	  size     varint (zig-zag)
//	  tag      varint
//	  kind     varint
//	  level    varint
//	  op       uvarint index into the footer dictionary
//	footer (one payload, CRC-trailed via the tail):
//	  uvarint partition count
//	  per partition: uvarint absolute file offset | uvarint event count |
//	    uvarint min-time bits | uvarint max-time bits |
//	    numColumns × uvarint framed block length
//	  uvarint dictionary size, then uvarint length + bytes per op name
//	  uvarint total event count
//	tail (the last 16 bytes of the file):
//	  [8]byte little-endian footer payload length
//	  [4]byte little-endian CRC-32 (IEEE) of the footer payload
//	  [4]byte tail magic "STPM"
//
// Readers locate the footer from the tail, so the format is written in
// one forward pass (no seeking) and read with the index first. Every byte
// of the file is covered by a checksum (header CRC, per-block CRC, footer
// CRC) or validated against a checksummed structure (the tail fields, the
// block length prefixes cross-checked against the footer), so any
// truncation or bit flip is rejected with an error wrapping ErrCorrupt.
//
// Records do not carry Seq numbers (exactly like the .mpt codec); they
// are reassigned on decode from stream order. Compatibility policy is the
// trace codec's: the magic pins the file family, the version is bumped on
// any incompatible change, and readers reject versions they do not know.
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"mpipredict/internal/trace"
)

// storeMagic introduces every columnar trace store file.
var storeMagic = [4]byte{'M', 'P', 'T', 'S'}

// tailMagic closes every store file; readers find the footer through it.
var tailMagic = [4]byte{'S', 'T', 'P', 'M'}

// StoreVersion is the current version of the store format.
const StoreVersion = 1

// PartitionEvents is the default row-group size: large enough that
// per-partition framing and footer entries are noise, small enough that a
// scan worker's decoded partition stays cache- and memory-friendly and a
// million-event trace yields enough partitions to keep a pool busy.
const PartitionEvents = 16384

// tailLen is the fixed size of the file tail.
const tailLen = 16

// Decoding limits: a corrupt or adversarial length field must never force
// a huge allocation before its checksum is verified.
const (
	maxStringLen      = 1 << 16
	maxPartitionEvts  = 1 << 26
	maxBlockLen       = 1 << 30
	maxFooterLen      = 1 << 28
	maxPartitionCount = 1 << 24
	maxDictEntries    = 1 << 20
)

// ErrCorrupt is wrapped by every decoding error: malformed, truncated or
// bit-flipped input, and read failures from the underlying reader (the
// two are indistinguishable mid-decode, exactly as in the .mpt codec).
var ErrCorrupt = errors.New("corrupt trace store")

var crcTable = crc32.MakeTable(crc32.IEEE)

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("tracestore: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Column identifies one stored record field. The numeric values are the
// on-disk block order within a partition and must not be reordered.
type Column uint8

const (
	ColTime Column = iota
	ColReceiver
	ColSender
	ColSize
	ColTag
	ColKind
	ColLevel
	ColOp

	numColumns
)

// String returns the column name used in documentation and errors.
func (c Column) String() string {
	switch c {
	case ColTime:
		return "time"
	case ColReceiver:
		return "receiver"
	case ColSender:
		return "sender"
	case ColSize:
		return "size"
	case ColTag:
		return "tag"
	case ColKind:
		return "kind"
	case ColLevel:
		return "level"
	case ColOp:
		return "op"
	default:
		return fmt.Sprintf("column(%d)", int(c))
	}
}

// ColumnSet is a projection: the set of columns a scan decodes. The zero
// set means "every column" at the Query level; Cols builds explicit sets.
type ColumnSet uint16

// AllColumns selects every stored column.
const AllColumns ColumnSet = 1<<numColumns - 1

// Cols returns the set containing exactly the given columns.
func Cols(cols ...Column) ColumnSet {
	var s ColumnSet
	for _, c := range cols {
		s |= 1 << c
	}
	return s
}

// Has reports whether the set contains c.
func (s ColumnSet) Has(c Column) bool { return s&(1<<c) != 0 }

// Count returns the number of columns in the set.
func (s ColumnSet) Count() int {
	n := 0
	for c := Column(0); c < numColumns; c++ {
		if s.Has(c) {
			n++
		}
	}
	return n
}

// partMeta is one footer index entry.
type partMeta struct {
	off     uint64 // absolute file offset of the partition's first block
	events  int
	minTime float64
	maxTime float64
	colLen  [numColumns]uint64 // framed length of each column block
}

func (pm *partMeta) totalLen() uint64 {
	var n uint64
	for _, l := range pm.colLen {
		n += l
	}
	return n
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// Writer streams an event sequence into the store format in one forward
// pass: records accumulate in per-column buffers and are flushed as a
// partition every PartitionEvents records; Close flushes the last partial
// partition, the footer and the tail. It implements the record-writer
// contract of stream.SinkTo, so the block pipeline exports stores the
// same way it exports .mpt files.
type Writer struct {
	w          io.Writer
	off        uint64
	app        string
	procs      int
	partEvents int

	cols    [numColumns][]byte
	n       int
	minTime float64
	maxTime float64
	prevT   uint64
	prevRcv int64

	dict      map[string]uint64
	dictNames []string

	parts  []partMeta
	total  uint64
	closed bool
	err    error
}

// NewWriter writes the file header for a trace with the given metadata
// and returns a Writer with the default partition size. The writer does
// not buffer beyond the open partition, so the underlying writer should
// be buffered for small writes (files created by SaveTrace and the CLIs
// are).
func NewWriter(w io.Writer, app string, procs int) (*Writer, error) {
	return NewWriterPartitioned(w, app, procs, PartitionEvents)
}

// NewWriterPartitioned is NewWriter with an explicit row-group size;
// tests use tiny partitions to exercise multi-partition files cheaply.
func NewWriterPartitioned(w io.Writer, app string, procs, partitionEvents int) (*Writer, error) {
	if partitionEvents < 1 || partitionEvents > maxPartitionEvts {
		return nil, fmt.Errorf("tracestore: partition size %d outside [1, %d]", partitionEvents, maxPartitionEvts)
	}
	if len(app) > maxStringLen {
		return nil, fmt.Errorf("tracestore: app name of %d bytes exceeds the format limit %d", len(app), maxStringLen)
	}
	sw := &Writer{w: w, app: app, procs: procs, partEvents: partitionEvents, dict: make(map[string]uint64)}
	hdr := append([]byte(nil), storeMagic[:]...)
	hdr = appendUvarint(hdr, StoreVersion)
	hdr = appendUvarint(hdr, uint64(len(app)))
	hdr = append(hdr, app...)
	hdr = appendVarint(hdr, int64(procs))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hdr, crcTable))
	hdr = append(hdr, crc[:]...)
	sw.write(hdr)
	if sw.err != nil {
		return nil, sw.err
	}
	return sw, nil
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
	w.off += uint64(len(p))
}

// WriteRecord appends one record to the open partition. The record's Seq
// is not stored; decode order reproduces it.
func (w *Writer) WriteRecord(r trace.Record) error {
	if w.closed {
		return errors.New("tracestore: writer already closed")
	}
	if w.err != nil {
		return w.err
	}
	bits := math.Float64bits(r.Time)
	w.cols[ColTime] = appendVarint(w.cols[ColTime], int64(bits-w.prevT))
	w.prevT = bits
	w.cols[ColReceiver] = appendVarint(w.cols[ColReceiver], int64(r.Receiver)-w.prevRcv)
	w.prevRcv = int64(r.Receiver)
	w.cols[ColSender] = appendVarint(w.cols[ColSender], int64(r.Sender))
	w.cols[ColSize] = appendVarint(w.cols[ColSize], r.Size)
	w.cols[ColTag] = appendVarint(w.cols[ColTag], int64(r.Tag))
	w.cols[ColKind] = appendVarint(w.cols[ColKind], int64(r.Kind))
	w.cols[ColLevel] = appendVarint(w.cols[ColLevel], int64(r.Level))
	idx, ok := w.dict[r.Op]
	if !ok {
		if len(r.Op) > maxStringLen {
			w.err = fmt.Errorf("tracestore: op name of %d bytes exceeds the format limit %d", len(r.Op), maxStringLen)
			return w.err
		}
		idx = uint64(len(w.dictNames))
		w.dict[r.Op] = idx
		w.dictNames = append(w.dictNames, r.Op)
	}
	w.cols[ColOp] = appendUvarint(w.cols[ColOp], idx)
	if w.n == 0 {
		w.minTime, w.maxTime = r.Time, r.Time
	} else {
		if r.Time < w.minTime {
			w.minTime = r.Time
		}
		if r.Time > w.maxTime {
			w.maxTime = r.Time
		}
	}
	w.n++
	w.total++
	if w.n >= w.partEvents {
		w.flushPartition()
	}
	return w.err
}

// flushPartition frames and writes the buffered column blocks and records
// the footer entry. Delta baselines reset so the next partition's blocks
// decode standalone.
func (w *Writer) flushPartition() {
	pm := partMeta{off: w.off, events: w.n, minTime: w.minTime, maxTime: w.maxTime}
	var lenBuf [binary.MaxVarintLen64]byte
	var crcBuf [4]byte
	for c := Column(0); c < numColumns; c++ {
		payload := w.cols[c]
		ln := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		crc := crc32.Update(0, crcTable, lenBuf[:ln])
		crc = crc32.Update(crc, crcTable, payload)
		binary.LittleEndian.PutUint32(crcBuf[:], crc)
		w.write(lenBuf[:ln])
		w.write(payload)
		w.write(crcBuf[:])
		pm.colLen[c] = uint64(ln+len(payload)) + 4
		w.cols[c] = payload[:0]
	}
	w.parts = append(w.parts, pm)
	w.n = 0
	w.prevT = 0
	w.prevRcv = 0
}

// Close flushes the last partition, the footer index and the tail. It
// does not close the underlying writer. The Writer must not be used
// afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("tracestore: writer already closed")
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if w.n > 0 {
		w.flushPartition()
	}
	footer := appendUvarint(nil, uint64(len(w.parts)))
	for i := range w.parts {
		pm := &w.parts[i]
		footer = appendUvarint(footer, pm.off)
		footer = appendUvarint(footer, uint64(pm.events))
		footer = appendUvarint(footer, math.Float64bits(pm.minTime))
		footer = appendUvarint(footer, math.Float64bits(pm.maxTime))
		for c := Column(0); c < numColumns; c++ {
			footer = appendUvarint(footer, pm.colLen[c])
		}
	}
	footer = appendUvarint(footer, uint64(len(w.dictNames)))
	for _, name := range w.dictNames {
		footer = appendUvarint(footer, uint64(len(name)))
		footer = append(footer, name...)
	}
	footer = appendUvarint(footer, w.total)
	w.write(footer)
	var tail [tailLen]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(len(footer)))
	binary.LittleEndian.PutUint32(tail[8:12], crc32.Checksum(footer, crcTable))
	copy(tail[12:16], tailMagic[:])
	w.write(tail[:])
	return w.err
}

// Reader is an open store file: the parsed header, footer index and op
// dictionary, plus the random-access handle the scan workers read blocks
// through. A Reader is safe for concurrent use — ReadPartition and Scan
// only issue ReadAt calls against the shared handle.
type Reader struct {
	r         io.ReaderAt
	closer    io.Closer
	size      int64
	app       string
	procs     int
	dataStart uint64
	parts     []partMeta
	dict      []string
	events    int64
}

// Open opens the named store file. The caller must Close it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracestore: opening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: opening %s: %w", path, err)
	}
	r, err := NewReader(f, info.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: reading %s: %w", path, err)
	}
	r.closer = f
	return r, nil
}

// NewReader parses the header, tail and footer of a store held by an
// io.ReaderAt of the given size and returns a Reader positioned for
// partition reads. It validates every structural invariant up front —
// checksums, bounds, partition contiguity — so later block reads only
// need to verify the blocks themselves.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	sr := &Reader{r: r, size: size}
	if err := sr.readHeader(); err != nil {
		return nil, err
	}
	if err := sr.readFooter(); err != nil {
		return nil, err
	}
	return sr, nil
}

// readAt wraps ReadAt for full-buffer reads. The io.ReaderAt contract
// permits a conforming implementation to return (len(p), io.EOF) when
// the read ends exactly at end of input — the tail read always does —
// so a full read is a success regardless of the error value.
func (r *Reader) readAt(buf []byte, off int64) error {
	n, err := r.r.ReadAt(buf, off)
	if err == io.EOF && n == len(buf) {
		return nil
	}
	return err
}

func (r *Reader) readHeader() error {
	// The header is variable length (the app name); read the maximum it
	// can occupy, bounded by the file size.
	maxHdr := int64(4 + binary.MaxVarintLen64 + binary.MaxVarintLen64 + maxStringLen + binary.MaxVarintLen64 + 4)
	if maxHdr > r.size {
		maxHdr = r.size
	}
	buf := make([]byte, maxHdr)
	if err := r.readAt(buf, 0); err != nil {
		return corruptf("reading header: %v", err)
	}
	if len(buf) < 4 || [4]byte(buf[:4]) != storeMagic {
		return corruptf("bad magic (not a columnar trace store)")
	}
	pos := 4
	version, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return corruptf("reading version")
	}
	pos += n
	if version != StoreVersion {
		return corruptf("unsupported version %d (have %d)", version, StoreVersion)
	}
	appLen, n := binary.Uvarint(buf[pos:])
	if n <= 0 || appLen > maxStringLen {
		return corruptf("reading app name length")
	}
	pos += n
	if uint64(len(buf)-pos) < appLen {
		return corruptf("app name truncated")
	}
	r.app = string(buf[pos : pos+int(appLen)])
	pos += int(appLen)
	procs, n := binary.Varint(buf[pos:])
	if n <= 0 {
		return corruptf("reading procs")
	}
	pos += n
	r.procs = int(procs)
	if len(buf)-pos < 4 {
		return corruptf("header checksum truncated")
	}
	want := binary.LittleEndian.Uint32(buf[pos : pos+4])
	if got := crc32.Checksum(buf[:pos], crcTable); got != want {
		return corruptf("header checksum mismatch: file says %08x, content hashes to %08x", want, got)
	}
	r.dataStart = uint64(pos) + 4
	return nil
}

func (r *Reader) readFooter() error {
	if uint64(r.size) < r.dataStart+tailLen {
		return corruptf("file too short for a tail")
	}
	var tail [tailLen]byte
	if err := r.readAt(tail[:], r.size-tailLen); err != nil {
		return corruptf("reading tail: %v", err)
	}
	if [4]byte(tail[12:16]) != tailMagic {
		return corruptf("bad tail magic")
	}
	footerLen := binary.LittleEndian.Uint64(tail[0:8])
	if footerLen > maxFooterLen || footerLen > uint64(r.size)-tailLen-r.dataStart {
		return corruptf("footer length %d out of bounds", footerLen)
	}
	footerStart := uint64(r.size) - tailLen - footerLen
	footer := make([]byte, footerLen)
	if err := r.readAt(footer, int64(footerStart)); err != nil {
		return corruptf("reading footer: %v", err)
	}
	want := binary.LittleEndian.Uint32(tail[8:12])
	if got := crc32.Checksum(footer, crcTable); got != want {
		return corruptf("footer checksum mismatch: file says %08x, content hashes to %08x", want, got)
	}

	pos := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(footer[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	count, ok := next()
	if !ok || count > maxPartitionCount {
		return corruptf("reading partition count")
	}
	parts := make([]partMeta, count)
	expected := r.dataStart
	var total uint64
	for i := range parts {
		pm := &parts[i]
		off, ok1 := next()
		events, ok2 := next()
		minBits, ok3 := next()
		maxBits, ok4 := next()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return corruptf("reading partition %d index entry", i)
		}
		if events == 0 || events > maxPartitionEvts {
			return corruptf("partition %d event count %d out of bounds", i, events)
		}
		if off != expected {
			return corruptf("partition %d offset %d does not follow the previous partition (want %d)", i, off, expected)
		}
		pm.off = off
		pm.events = int(events)
		pm.minTime = math.Float64frombits(minBits)
		pm.maxTime = math.Float64frombits(maxBits)
		for c := Column(0); c < numColumns; c++ {
			l, ok := next()
			if !ok {
				return corruptf("reading partition %d column lengths", i)
			}
			// The smallest legal block is an empty payload: one length
			// byte plus the four checksum bytes.
			if l < 5 || l > maxBlockLen {
				return corruptf("partition %d %s block length %d out of bounds", i, c, l)
			}
			pm.colLen[c] = l
		}
		expected += pm.totalLen()
		total += events
	}
	if expected != footerStart {
		return corruptf("partition data ends at %d, footer starts at %d", expected, footerStart)
	}
	dictCount, ok := next()
	if !ok || dictCount > maxDictEntries {
		return corruptf("reading dictionary size")
	}
	dict := make([]string, dictCount)
	for i := range dict {
		l, ok := next()
		if !ok || l > maxStringLen {
			return corruptf("reading dictionary entry %d length", i)
		}
		if uint64(len(footer)-pos) < l {
			return corruptf("dictionary entry %d truncated", i)
		}
		dict[i] = string(footer[pos : pos+int(l)])
		pos += int(l)
	}
	totalEvents, ok := next()
	if !ok || totalEvents != total {
		return corruptf("total event count %d does not match the %d indexed events", totalEvents, total)
	}
	if pos != len(footer) {
		return corruptf("%d trailing bytes after the footer payload", len(footer)-pos)
	}
	r.parts = parts
	r.dict = dict
	r.events = int64(total)
	return nil
}

// App returns the workload name from the header.
func (r *Reader) App() string { return r.app }

// Procs returns the rank count from the header.
func (r *Reader) Procs() int { return r.procs }

// Partitions returns the number of row groups in the store.
func (r *Reader) Partitions() int { return len(r.parts) }

// Events returns the total number of events in the store.
func (r *Reader) Events() int64 { return r.events }

// TimeBounds returns the minimum and maximum event time across every
// partition, from the footer index alone. ok is false for an empty store.
func (r *Reader) TimeBounds() (min, max float64, ok bool) {
	for i := range r.parts {
		pm := &r.parts[i]
		if !ok {
			min, max, ok = pm.minTime, pm.maxTime, true
			continue
		}
		if pm.minTime < min {
			min = pm.minTime
		}
		if pm.maxTime > max {
			max = pm.maxTime
		}
	}
	return min, max, ok
}

// Close closes the underlying file when the Reader owns one (Open);
// Readers over plain byte slices have nothing to close.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	return r.closer.Close()
}

// PartitionData is one decoded row group. Only projected columns are
// filled; the rest keep length zero. The backing arrays (and the raw
// block scratch) are reused across ReadPartition calls on the same
// struct, so a scan worker decodes blocks with zero steady-state
// allocations. Op strings alias the reader's dictionary.
type PartitionData struct {
	Index  int
	Events int

	Time     []float64
	Receiver []int
	Sender   []int64
	Size     []int64
	Tag      []int
	Kind     []trace.Kind
	Level    []trace.Level
	Op       []string

	raw []byte
}

// Record reassembles event i as a trace.Record (Seq zero). It requires
// the partition to have been read with AllColumns.
func (pd *PartitionData) Record(i int) trace.Record {
	return trace.Record{
		Time:     pd.Time[i],
		Receiver: pd.Receiver[i],
		Sender:   int(pd.Sender[i]),
		Size:     pd.Size[i],
		Tag:      pd.Tag[i],
		Kind:     pd.Kind[i],
		Level:    pd.Level[i],
		Op:       pd.Op[i],
	}
}

func (pd *PartitionData) reset() {
	pd.Time = pd.Time[:0]
	pd.Receiver = pd.Receiver[:0]
	pd.Sender = pd.Sender[:0]
	pd.Size = pd.Size[:0]
	pd.Tag = pd.Tag[:0]
	pd.Kind = pd.Kind[:0]
	pd.Level = pd.Level[:0]
	pd.Op = pd.Op[:0]
}

// ReadPartition decodes the projected columns of partition i into pd,
// reusing pd's backing arrays. Every read block's checksum and framing
// are verified against the footer index before its payload is decoded.
func (r *Reader) ReadPartition(i int, cols ColumnSet, pd *PartitionData) error {
	if i < 0 || i >= len(r.parts) {
		return fmt.Errorf("tracestore: partition %d outside [0, %d)", i, len(r.parts))
	}
	if cols == 0 {
		cols = AllColumns
	}
	pm := &r.parts[i]
	pd.Index = i
	pd.Events = pm.events
	pd.reset()
	off := pm.off
	for c := Column(0); c < numColumns; c++ {
		l := pm.colLen[c]
		if cols.Has(c) {
			if uint64(cap(pd.raw)) < l {
				pd.raw = make([]byte, l)
			}
			raw := pd.raw[:l]
			if err := r.readAt(raw, int64(off)); err != nil {
				return corruptf("partition %d: reading %s block: %v", i, c, err)
			}
			if err := decodeBlock(c, raw, pm.events, r.dict, pd); err != nil {
				return fmt.Errorf("partition %d: %w", i, err)
			}
		}
		off += l
	}
	return nil
}

// decodeBlock verifies one framed column block and decodes its payload
// into the matching pd column.
func decodeBlock(c Column, raw []byte, events int, dict []string, pd *PartitionData) error {
	payloadLen, n := binary.Uvarint(raw)
	if n <= 0 {
		return corruptf("%s block: malformed length prefix", c)
	}
	if uint64(n)+payloadLen+4 != uint64(len(raw)) {
		return corruptf("%s block: length prefix %d does not match the indexed block size %d", c, payloadLen, len(raw))
	}
	body := raw[:uint64(n)+payloadLen]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return corruptf("%s block: checksum mismatch: file says %08x, content hashes to %08x", c, want, got)
	}
	p := body[n:]
	pos := 0
	nextV := func() (int64, bool) {
		v, n := binary.Varint(p[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	nextU := func() (uint64, bool) {
		v, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	switch c {
	case ColTime:
		prev := uint64(0)
		for k := 0; k < events; k++ {
			d, ok := nextV()
			if !ok {
				return corruptf("time block: truncated at event %d", k)
			}
			prev += uint64(d)
			pd.Time = append(pd.Time, math.Float64frombits(prev))
		}
	case ColReceiver:
		prev := int64(0)
		for k := 0; k < events; k++ {
			d, ok := nextV()
			if !ok {
				return corruptf("receiver block: truncated at event %d", k)
			}
			prev += d
			pd.Receiver = append(pd.Receiver, int(prev))
		}
	case ColSender:
		for k := 0; k < events; k++ {
			v, ok := nextV()
			if !ok {
				return corruptf("sender block: truncated at event %d", k)
			}
			pd.Sender = append(pd.Sender, v)
		}
	case ColSize:
		for k := 0; k < events; k++ {
			v, ok := nextV()
			if !ok {
				return corruptf("size block: truncated at event %d", k)
			}
			pd.Size = append(pd.Size, v)
		}
	case ColTag:
		for k := 0; k < events; k++ {
			v, ok := nextV()
			if !ok {
				return corruptf("tag block: truncated at event %d", k)
			}
			pd.Tag = append(pd.Tag, int(v))
		}
	case ColKind:
		for k := 0; k < events; k++ {
			v, ok := nextV()
			if !ok {
				return corruptf("kind block: truncated at event %d", k)
			}
			pd.Kind = append(pd.Kind, trace.Kind(v))
		}
	case ColLevel:
		for k := 0; k < events; k++ {
			v, ok := nextV()
			if !ok {
				return corruptf("level block: truncated at event %d", k)
			}
			pd.Level = append(pd.Level, trace.Level(v))
		}
	case ColOp:
		for k := 0; k < events; k++ {
			idx, ok := nextU()
			if !ok {
				return corruptf("op block: truncated at event %d", k)
			}
			if idx >= uint64(len(dict)) {
				return corruptf("op block: index %d outside dictionary of %d entries", idx, len(dict))
			}
			pd.Op = append(pd.Op, dict[idx])
		}
	}
	if pos != len(p) {
		return corruptf("%s block: %d trailing payload bytes", c, len(p)-pos)
	}
	return nil
}

// WriteTrace writes the whole trace to w in the store format with the
// default partitioning.
func WriteTrace(w io.Writer, tr *trace.Trace) error {
	sw, err := NewWriter(w, tr.App, tr.Procs)
	if err != nil {
		return err
	}
	for i := range tr.Records {
		if err := sw.WriteRecord(tr.Records[i]); err != nil {
			return fmt.Errorf("tracestore: writing record %d: %w", i, err)
		}
	}
	return sw.Close()
}

// SaveTrace writes the trace to the named file in the store format,
// atomically (temp file in the same directory + rename), matching the
// durability contract of trace.SaveBinaryFile.
func SaveTrace(path string, tr *trace.Trace) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("tracestore: creating temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	if err := WriteTrace(f, tr); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: replacing %s: %w", path, err)
	}
	return nil
}
