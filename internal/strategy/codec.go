package strategy

// Payload codec helpers. Strategy payloads are self-contained varint
// streams (the encoding/binary unsigned and zig-zag varints the trace and
// snapshot codecs already use); the container that embeds them (the .mps
// snapshot file) supplies framing, checksums and corruption detection, so
// a payload only has to be deterministic and fully validated on decode.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// maxPayloadSliceLen bounds slice lengths read from a payload before any
// allocation, so a corrupt length prefix cannot force a huge allocation.
const maxPayloadSliceLen = 1 << 20

// ErrBadPayload is wrapped by every payload decoding error: truncated or
// malformed payloads, trailing bytes, and state that fails validation.
var ErrBadPayload = errors.New("invalid strategy payload")

func payloadErrf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrBadPayload, fmt.Sprintf(format, args...))
}

// payloadWriter accumulates a payload in memory.
type payloadWriter struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *payloadWriter) byte(b byte) { w.buf = append(w.buf, b) }

func (w *payloadWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *payloadWriter) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *payloadWriter) int64s(xs []int64) {
	w.uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.varint(x)
	}
}

// payloadReader consumes a payload, tracking position for error context.
type payloadReader struct {
	data []byte
	pos  int
}

func (r *payloadReader) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, payloadErrf("truncated at byte %d", r.pos)
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, payloadErrf("bad uvarint at byte %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, payloadErrf("bad varint at byte %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// bytes reads a uvarint length prefix and the following raw bytes. The
// returned slice aliases the payload; callers that retain it copy it.
func (r *payloadReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxPayloadSliceLen {
		return nil, payloadErrf("byte length %d exceeds the payload limit %d", n, maxPayloadSliceLen)
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, payloadErrf("byte length %d exceeds the %d remaining bytes", n, len(r.data)-r.pos)
	}
	out := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *payloadReader) int64s() ([]int64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxPayloadSliceLen {
		return nil, payloadErrf("slice length %d exceeds the payload limit %d", n, maxPayloadSliceLen)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = r.varint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// done verifies the whole payload was consumed: trailing bytes mean a
// mismatched strategy kind or a corrupt container.
func (r *payloadReader) done() error {
	if r.pos != len(r.data) {
		return payloadErrf("%d trailing bytes after the state", len(r.data)-r.pos)
	}
	return nil
}
