package strategy

import "mpipredict/internal/core"

// LastValue predicts that every future value equals the most recently
// observed one. It is the natural floor baseline: any strategy that cannot
// beat it on a stream has learned nothing about that stream's structure.
// Unlike the single-step last-value heuristics of the related work it
// answers every horizon (with the same value), so it scores on the full
// +1..+5 protocol of the evaluation harness.
type LastValue struct {
	last int64
	seen bool
}

// NewLastValue returns an untrained LastValue strategy.
func NewLastValue() *LastValue { return &LastValue{} }

// Desc implements Strategy.
func (p *LastValue) Desc() Desc { return Desc{Name: "lastvalue"} }

// Observe implements Strategy.
func (p *LastValue) Observe(x int64) { p.last, p.seen = x, true }

// Predict implements Strategy.
func (p *LastValue) Predict(k int) (int64, bool) {
	if !p.seen || k < 1 {
		return 0, false
	}
	return p.last, true
}

// PredictSeriesInto implements Strategy.
func (p *LastValue) PredictSeriesInto(dst []core.Prediction, count int) []core.Prediction {
	return seriesInto(p, dst, count)
}

// PredictSetInto implements Strategy.
func (p *LastValue) PredictSetInto(dst []int64, count int) ([]int64, bool) {
	return setInto(p, dst, count)
}

// Reset implements Strategy.
func (p *LastValue) Reset() { *p = LastValue{} }

// Snapshot implements Strategy: one 0/1 seen byte, then the last value.
func (p *LastValue) Snapshot() []byte {
	var w payloadWriter
	if p.seen {
		w.byte(1)
	} else {
		w.byte(0)
	}
	w.varint(p.last)
	return w.buf
}

// Restore implements Strategy.
func (p *LastValue) Restore(payload []byte) error {
	r := &payloadReader{data: payload}
	seen, err := r.byte()
	if err != nil {
		return err
	}
	if seen > 1 {
		return payloadErrf("invalid seen byte 0x%02x", seen)
	}
	last, err := r.varint()
	if err != nil {
		return err
	}
	if err := r.done(); err != nil {
		return err
	}
	if seen == 0 && last != 0 {
		return payloadErrf("unseen state carries a last value")
	}
	p.seen = seen == 1
	p.last = last
	return nil
}
