package strategy

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mpipredict/internal/core"
)

// metaScore replays stream through s with the evaluation harness's
// scoring protocol inlined (evalx imports this package, so the real one
// is unusable here): before observing element i, the +k prediction
// targets element i+k-1; abstentions are misses.
func metaScore(s Strategy, stream []int64, horizons int) (mean float64, per []float64) {
	type rec struct {
		val int64
		ok  bool
	}
	pending := make(map[int]map[int]rec) // target index -> horizon -> prediction
	hits := make([]int, horizons+1)
	scored := make([]int, horizons+1)
	for i, x := range stream {
		for k := 1; k <= horizons; k++ {
			tgt := i + k - 1
			v, ok := s.Predict(k)
			if pending[tgt] == nil {
				pending[tgt] = map[int]rec{}
			}
			pending[tgt][k] = rec{v, ok}
		}
		for k, r := range pending[i] {
			scored[k]++
			if r.ok && r.val == x {
				hits[k]++
			}
		}
		delete(pending, i)
		s.Observe(x)
	}
	per = make([]float64, horizons)
	sum := 0.0
	for k := 1; k <= horizons; k++ {
		if scored[k] > 0 {
			per[k-1] = float64(hits[k]) / float64(scored[k])
		}
		sum += per[k-1]
	}
	return sum / float64(horizons), per
}

// twoRegimeStream concatenates two regimes with different winners: a
// period-4 pattern the DPD locks onto (markov1 ties on 1→{2,3} and
// lastvalue never repeats consecutively), then irregular runs of fresh
// values where lastvalue shines and the DPD finds no stable period.
func twoRegimeStream() []int64 {
	var s []int64
	for i := 0; i < 300; i++ {
		s = append(s, []int64{1, 2, 1, 3}[i%4])
	}
	runs := []int{5, 3, 8, 4, 6, 9, 3, 7, 5, 4, 8, 6, 3, 9, 5, 7, 4, 6, 8, 3, 5, 9, 4, 7, 6, 3, 8, 5, 9, 4, 7, 3, 6, 5, 8}
	v := int64(100)
	for _, r := range runs {
		for j := 0; j < r; j++ {
			s = append(s, v)
		}
		v++
	}
	return s
}

func TestMetaConstruction(t *testing.T) {
	if _, err := NewMeta(core.DefaultConfig(), []string{"dpd", "nope"}); err == nil {
		t.Error("NewMeta accepted an unknown expert")
	}
	if _, err := NewMeta(core.DefaultConfig(), []string{"dpd", "dpd"}); err == nil {
		t.Error("NewMeta accepted a duplicate expert")
	}
	if _, err := NewMeta(core.DefaultConfig(), []string{"meta"}); err == nil {
		t.Error("NewMeta accepted a nested meta")
	}
	m, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, n := range Names() {
		if n != MetaName {
			want++
		}
	}
	if len(m.names) != want {
		t.Fatalf("default meta wraps %v, want every registered strategy but itself", m.names)
	}
	sub, err := NewMeta(core.DefaultConfig(), []string{"lastvalue", "markov1"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub.names, []string{"lastvalue", "markov1"}) {
		t.Fatalf("subset meta wraps %v", sub.names)
	}
}

// TestMetaWindowedHitRateOracle checks the rolling scorer against an
// independent replay: a single-expert meta over lastvalue must report
// exactly the windowed per-horizon hit rates a from-scratch oracle
// computes from the stream (lastvalue's +k forecast for target τ is
// x[τ-k], abstaining when τ-k < 0).
func TestMetaWindowedHitRateOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := make([]int64, 0, 151)
	for i := 0; i < 151; i++ {
		stream = append(stream, int64(rng.Intn(4)))
	}
	for _, n := range []int{1, 5, 37, 63, 64, 65, 100, 151} { // around and across the window boundary
		m, err := NewMeta(core.DefaultConfig(), []string{"lastvalue"})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range stream[:n] {
			m.Observe(x)
		}
		info := m.RouteInfo()
		if len(info.Experts) != 1 || info.Experts[0].Name != "lastvalue" {
			t.Fatalf("RouteInfo experts = %+v", info.Experts)
		}
		got := info.Experts[0]
		wantHits, wantScored := 0, 0
		for k := 1; k <= MetaHorizons; k++ {
			// Scored targets for +k after n observations: τ = k-1 .. n-1,
			// windowed to the last MetaWindow of them.
			lo := k - 1
			if n-MetaWindow > lo {
				lo = n - MetaWindow
			}
			kh, ks := 0, 0
			for tau := lo; tau < n; tau++ {
				ks++
				if tau-k >= 0 && stream[tau-k] == stream[tau] {
					kh++
				}
			}
			rate := 0.0
			if ks > 0 {
				rate = float64(kh) / float64(ks)
			}
			if got.PerHorizon[k-1] != rate {
				t.Fatalf("n=%d +%d: meta windowed rate %.4f, oracle %.4f (%d/%d)", n, k, got.PerHorizon[k-1], rate, kh, ks)
			}
			wantHits += kh
			wantScored += ks
		}
		if got.Hits != wantHits || got.Scored != wantScored {
			t.Fatalf("n=%d: meta hits/scored = %d/%d, oracle %d/%d", n, got.Hits, got.Scored, wantHits, wantScored)
		}
	}
}

// TestMetaRoutingDeterminism runs two independent metas over the same
// stream and requires identical weights, switches, leaders and snapshot
// bytes at every step — the property that makes serving snapshots
// byte-stable across replicas.
func TestMetaRoutingDeterminism(t *testing.T) {
	a, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range twoRegimeStream() {
		a.Observe(x)
		b.Observe(x)
		if i%50 != 0 {
			continue
		}
		if a.Leader() != b.Leader() || a.Switches() != b.Switches() {
			t.Fatalf("step %d: routes diverged (%s/%d vs %s/%d)", i, a.Leader(), a.Switches(), b.Leader(), b.Switches())
		}
		if !reflect.DeepEqual(a.RouteInfo(), b.RouteInfo()) {
			t.Fatalf("step %d: RouteInfo diverged", i)
		}
		if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
			t.Fatalf("step %d: snapshots diverged", i)
		}
	}
	if a.Switches() == 0 {
		t.Fatal("the two-regime stream produced no route switches")
	}
}

// TestMetaSnapshotMidWindowRoundTrip snapshots a meta mid-window (37
// observations: outcome rings partially filled, pending ring mid-phase)
// and requires the restored instance to predict, score and switch
// exactly like the original for hundreds more observations.
func TestMetaSnapshotMidWindowRoundTrip(t *testing.T) {
	stream := twoRegimeStream()
	orig, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range stream[:37] {
		orig.Observe(x)
	}
	snap := orig.Snapshot()
	restored, err := Restore(MetaName, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, restored.Snapshot()) {
		t.Fatal("restored meta re-snapshots to different bytes")
	}
	rm := restored.(*Meta)
	for i, x := range stream[37:] {
		for k := 1; k <= MetaHorizons; k++ {
			ov, ook := orig.Predict(k)
			rv, rok := restored.Predict(k)
			if ov != rv || ook != rok {
				t.Fatalf("step %d +%d: original (%d,%v), restored (%d,%v)", 37+i, k, ov, ook, rv, rok)
			}
		}
		orig.Observe(x)
		restored.Observe(x)
		if orig.Leader() != rm.Leader() || orig.Switches() != rm.Switches() {
			t.Fatalf("step %d: original route %s/%d, restored %s/%d", 37+i, orig.Leader(), orig.Switches(), rm.Leader(), rm.Switches())
		}
	}
	if !bytes.Equal(orig.Snapshot(), restored.Snapshot()) {
		t.Fatal("snapshots diverged after the round trip")
	}
}

// TestMetaRestoreRejectsNestedMeta pins the recursion guard: a payload
// naming meta as its own expert must be rejected, not instantiated.
func TestMetaRestoreRejectsNestedMeta(t *testing.T) {
	var w payloadWriter
	w.uvarint(1)
	w.uvarint(uint64(len(MetaName)))
	w.buf = append(w.buf, MetaName...)
	w.uvarint(0) // empty expert payload
	if _, err := Restore(MetaName, w.buf); err == nil {
		t.Fatal("Restore accepted a meta nested inside meta")
	}
}

// TestMetaConvergesOnTwoRegimeTrace is the adaptivity acceptance test:
// on a stream whose best expert changes mid-way, the meta router must
// strictly beat every single strategy, and the final leader must be the
// second regime's winner.
func TestMetaConvergesOnTwoRegimeTrace(t *testing.T) {
	stream := twoRegimeStream()
	single := map[string]float64{}
	for _, name := range Names() {
		if name == MetaName {
			continue
		}
		s, err := New(name, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		mean, _ := metaScore(s, stream, MetaHorizons)
		single[name] = mean
	}
	m, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	metaMean, _ := metaScore(m, stream, MetaHorizons)
	for name, mean := range single {
		if metaMean <= mean {
			t.Errorf("meta mean accuracy %.4f does not beat %s's %.4f", metaMean, name, mean)
		}
	}
	if got := m.Leader(); got != "lastvalue" {
		t.Errorf("final leader = %q, want the second regime's winner %q", got, "lastvalue")
	}
	if m.Switches() < 1 {
		t.Error("meta never switched experts across the regime change")
	}
}

// TestMetaReporters covers the introspection surfaces: the state string
// names the leader (plus the leader's own state when it has one) and the
// period question routes to the leader.
func TestMetaReporters(t *testing.T) {
	m, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var s Strategy = m
	if st := s.(StateReporter).PredictorState(); st == "" {
		t.Error("empty predictor state")
	}
	for i := 0; i < 200; i++ {
		m.Observe(int64(i % 6))
	}
	if m.Leader() == "dpd" {
		if _, ok := s.(PeriodReporter).PredictorPeriod(); !ok {
			t.Error("dpd leader locked on a period-6 stream but meta reports none")
		}
		want := "dpd:locked"
		if st := s.(StateReporter).PredictorState(); st != want {
			t.Errorf("predictor state = %q, want %q", st, want)
		}
	}
	info := m.RouteInfo()
	if info.Leader != m.Leader() || info.Window != MetaWindow {
		t.Errorf("RouteInfo = %+v", info)
	}
	for _, e := range info.Experts {
		if e.Scored == 0 || len(e.PerHorizon) != MetaHorizons {
			t.Errorf("expert %s scorecard empty after 200 observations: %+v", e.Name, e)
		}
	}
}

// TestMetaResetClearsRoute verifies Reset returns the router (and every
// expert) to the untrained state: weights zero, leader back to the first
// expert, switch count cleared.
func TestMetaResetClearsRoute(t *testing.T) {
	m, err := NewMeta(core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh := m.Snapshot()
	for _, x := range twoRegimeStream() {
		m.Observe(x)
	}
	m.Reset()
	if !bytes.Equal(m.Snapshot(), fresh) {
		t.Fatal("Reset did not restore the initial snapshot bytes")
	}
	if m.Switches() != 0 || m.Leader() != m.names[0] {
		t.Fatalf("Reset left route %s/%d", m.Leader(), m.Switches())
	}
}
