// Package strategy makes the prediction model a first-class, swappable
// axis of the system. The paper's central claim — DPD-based prediction
// beats simpler schemes on MPI receive streams — is only testable when the
// model family is a parameter rather than a compile-time constant, so this
// package extracts the full per-stream predictor contract behind the
// Strategy interface and keeps a string-keyed registry of implementations:
//
//   - "dpd"       — the paper's Dynamic Periodicity Detector predictor
//     (core.StreamPredictor behind the interface, bit-for-bit identical),
//   - "lastvalue" — predict the most recently observed value for every
//     horizon (the natural floor baseline), and
//   - "markov1"   — a first-order transition-frequency predictor over
//     interned values (the classic history-based alternative).
//
// Every layer above core selects its predictor through this registry: the
// evaluation harness (evalx.Options.Strategy), the online service (one
// strategy per session, chosen at first observe), the scalability replays
// and the CLIs' -predictor flags. A strategy serializes its own state to an
// opaque payload (Snapshot/Restore), which is what lets the serving
// snapshot format persist heterogeneous sessions without knowing anything
// about the models inside them.
//
// Implementations must keep the hot path allocation-free: Observe and
// Predict on a trained strategy, and PredictSeriesInto/PredictSetInto with
// reused buffers, perform zero heap allocations in steady state (pinned by
// alloc_test.go through interface dispatch, exactly how every caller uses
// them).
package strategy

import (
	"fmt"
	"sort"

	"mpipredict/internal/core"
)

// Default is the registry name of the paper's predictor. Every layer that
// accepts a strategy name treats the empty string as Default.
const Default = "dpd"

// Desc identifies a strategy instance: the registry name it was created
// under and a human-readable summary of its configuration.
type Desc struct {
	Name   string `json:"name"`
	Config string `json:"config,omitempty"`
}

// String renders the description as "name" or "name(config)".
func (d Desc) String() string {
	if d.Config == "" {
		return d.Name
	}
	return d.Name + "(" + d.Config + ")"
}

// Strategy is an online, single-stream value predictor with serializable
// state. It is the contract the DPD core already satisfied implicitly;
// extracting it lets every layer treat the model as data.
type Strategy interface {
	// Desc describes the strategy (registry name + config summary).
	Desc() Desc
	// Observe feeds the next observed value of the stream.
	Observe(x int64)
	// Predict returns the value expected k observations ahead (k >= 1).
	// ok is false when the strategy abstains.
	Predict(k int) (value int64, ok bool)
	// PredictSeriesInto appends the next count predictions to dst and
	// returns it; callers reuse dst[:0] across calls on the hot path.
	PredictSeriesInto(dst []core.Prediction, count int) []core.Prediction
	// PredictSetInto appends the next-count value multiset to dst, with
	// ok false when any underlying prediction abstains (the partially
	// filled buffer is still returned so callers keep its capacity).
	PredictSetInto(dst []int64, count int) ([]int64, bool)
	// Snapshot serializes the complete strategy state to an opaque,
	// deterministic payload: equal states produce equal bytes, which is
	// what makes serving snapshot files byte-stable across restarts.
	Snapshot() []byte
	// Restore replaces the strategy's state with a payload previously
	// produced by Snapshot (of the same strategy kind). The payload is
	// validated in full; on error the strategy is unchanged.
	Restore(payload []byte) error
	// Reset returns the strategy to its initial, untrained state.
	Reset()
}

// StateReporter is implemented by strategies with a notion of a discrete
// predictor state (the DPD's learning/locked). Introspection surfaces
// (e.g. the serving API's session listing) use it when present.
type StateReporter interface {
	PredictorState() string
}

// PeriodReporter is implemented by strategies that expose a detected
// pattern length.
type PeriodReporter interface {
	PredictorPeriod() (int, bool)
}

// Factory builds a fresh strategy. The core configuration parameterizes
// the DPD; strategies without tunables ignore it.
type Factory func(cfg core.Config) Strategy

var registry = map[string]Factory{}

// Register adds a named strategy factory. It panics on duplicates, which
// indicates a programming error during init.
func Register(name string, f Factory) {
	if name == "" {
		panic("strategy: Register with an empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("strategy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Known reports whether name is a registered strategy.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New creates a strategy by registered name. The empty name selects
// Default.
func New(name string, cfg core.Config) (Strategy, error) {
	if name == "" {
		name = Default
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown strategy %q (known: %v)", name, Names())
	}
	return f(cfg), nil
}

// Restore creates a strategy by name and loads a Snapshot payload into it,
// validating the payload in full. It is how the serving layer rebuilds
// heterogeneous sessions from checkpoint files.
func Restore(name string, payload []byte) (Strategy, error) {
	s, err := New(name, core.Config{})
	if err != nil {
		return nil, err
	}
	if err := s.Restore(payload); err != nil {
		return nil, fmt.Errorf("strategy: restoring %q state: %w", name, err)
	}
	return s, nil
}

func init() {
	Register("dpd", func(cfg core.Config) Strategy { return NewDPD(cfg) })
	Register("lastvalue", func(core.Config) Strategy { return NewLastValue() })
	Register("markov1", func(core.Config) Strategy { return NewMarkov1() })
	Register(MetaName, func(cfg core.Config) Strategy {
		m, err := NewMeta(cfg, nil)
		if err != nil {
			// Unreachable: the default expert set is every other
			// registered strategy, which is non-empty and valid.
			panic(fmt.Sprintf("strategy: building default meta: %v", err))
		}
		return m
	})
}

// seriesInto is the shared PredictSeriesInto body: strategies whose
// Predict is the source of truth delegate to it.
func seriesInto(s Strategy, dst []core.Prediction, count int) []core.Prediction {
	for k := 1; k <= count; k++ {
		v, ok := s.Predict(k)
		dst = append(dst, core.Prediction{Ahead: k, Value: v, OK: ok})
	}
	return dst
}

// setInto is the shared PredictSetInto body.
func setInto(s Strategy, dst []int64, count int) ([]int64, bool) {
	for k := 1; k <= count; k++ {
		v, ok := s.Predict(k)
		if !ok {
			return dst, false
		}
		dst = append(dst, v)
	}
	return dst, true
}
