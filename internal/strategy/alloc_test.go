package strategy

import (
	"testing"

	"mpipredict/internal/core"
)

// warmed returns each registered strategy behind the interface, trained
// past any learning transient on a periodic stream — the steady state the
// serving and evaluation hot paths run in. The predictors are exercised
// through the Strategy interface exactly as every caller dispatches them,
// so these tests pin the interface-dispatched hot path, not the concrete
// types.
func warmed(t testing.TB, name string) Strategy {
	t.Helper()
	s, err := New(name, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 4 * core.DefaultConfig().WindowSize
	for i := 0; i < n; i++ {
		s.Observe(int64(i % 18))
	}
	return s
}

// TestStrategyObserveZeroAllocs pins the steady-state observe cost of
// every registered strategy through interface dispatch: the inversion that
// made the model swappable must not cost the hot path its 0 allocs/op
// guarantee.
func TestStrategyObserveZeroAllocs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := warmed(t, name)
			i := 4 * core.DefaultConfig().WindowSize
			allocs := testing.AllocsPerRun(1000, func() {
				s.Observe(int64(i % 18))
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: Observe allocates %.2f objects per call, want 0", name, allocs)
			}
		})
	}
}

// TestStrategyPredictZeroAllocs pins the point-query path.
func TestStrategyPredictZeroAllocs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := warmed(t, name)
			allocs := testing.AllocsPerRun(1000, func() {
				for k := 1; k <= 5; k++ {
					s.Predict(k)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: Predict allocates %.2f objects per call, want 0", name, allocs)
			}
		})
	}
}

// TestStrategyPredictSeriesIntoZeroAllocs pins the buffer-reuse contract
// of the multi-step query through the interface.
func TestStrategyPredictSeriesIntoZeroAllocs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := warmed(t, name)
			buf := make([]core.Prediction, 0, 5)
			allocs := testing.AllocsPerRun(1000, func() {
				buf = s.PredictSeriesInto(buf[:0], 5)
			})
			if allocs != 0 {
				t.Errorf("%s: PredictSeriesInto allocates %.2f objects per call, want 0", name, allocs)
			}
			if len(buf) != 5 {
				t.Fatalf("%s: got %d predictions, want 5", name, len(buf))
			}
		})
	}
}

// TestStrategyPredictSetIntoZeroAllocs does the same for the order-free
// query.
func TestStrategyPredictSetIntoZeroAllocs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := warmed(t, name)
			buf := make([]int64, 0, 5)
			allocs := testing.AllocsPerRun(1000, func() {
				buf, _ = s.PredictSetInto(buf[:0], 5)
			})
			if allocs != 0 {
				t.Errorf("%s: PredictSetInto allocates %.2f objects per call, want 0", name, allocs)
			}
		})
	}
}
