package strategy

// The adaptive meta-strategy: the paper's core claim is that prediction
// must adapt as communication regimes shift, and the strategy registry
// makes an ensemble cheap — so "meta" wraps every registered strategy
// (or an explicit subset), feeds each expert every observation, scores
// each expert online against the realized arrivals, and routes every
// prediction to the current winner. The result is a self-tuning default:
// a session that starts periodic and turns bursty migrates from the DPD
// to whichever expert is currently right, without anyone redeploying.
//
// Scoring follows the evaluation harness's protocol exactly (settle on
// arrival): before each observation every expert is asked for its +1..+H
// forecasts; the prediction for +k made before observing element i
// refers to element i+k-1 and is a hit when it equals that element, with
// abstentions counting as misses. Outcomes land in a rolling window of W
// scored targets per (expert, horizon); an expert's weight is its total
// windowed hit count across horizons — a discretized hedge/regret score:
// the weight difference between two experts is exactly their windowed
// regret against each other. The router follows the weight leader with a
// switch margin (hysteresis), so single-event flukes cannot thrash the
// route.
//
// Everything is integer arithmetic over fixed rings, which is what makes
// the snapshot exact: Snapshot serializes the per-expert payloads, the
// pending-prediction ring, and the outcome windows, and a restored meta
// predicts, scores and switches exactly like the one that was
// snapshotted, byte-for-byte (the property the serving layer's
// warm-restart contract needs).

import (
	"fmt"
	"math"
	"strings"

	"mpipredict/internal/core"
)

const (
	// MetaName is the registry name of the adaptive meta-strategy.
	MetaName = "meta"
	// MetaHorizons is the number of horizons the meta-strategy scores its
	// experts on — the paper's +1..+5 evaluation protocol.
	MetaHorizons = 5
	// MetaWindow is the rolling outcome window per (expert, horizon): the
	// number of most recent scored targets a weight is computed over.
	// Small enough to track a regime shift within tens of events, large
	// enough that one noisy burst cannot hand the route to a fluke.
	MetaWindow = 64
	// MetaSwitchMargin is the windowed-hit lead a challenger needs over
	// the current leader before the route switches (hysteresis).
	MetaSwitchMargin = 3

	// metaMaxExperts bounds the expert count accepted from a payload.
	metaMaxExperts = 16
	// metaMaxWindow and metaMaxHorizons bound the ring geometry accepted
	// from a payload, so a corrupt length cannot force a huge allocation.
	metaMaxWindow   = 1 << 16
	metaMaxHorizons = 64
	// metaMaxNameLen bounds an expert name read from a payload.
	metaMaxNameLen = 64
)

// ExpertScore is one expert's rolling scorecard: windowed hits and scored
// targets (summed across horizons, so Rate = Hits/Scored), plus the
// per-horizon hit rates. Integer Hits/Scored let callers aggregate rates
// across many meta instances exactly.
type ExpertScore struct {
	Name       string    `json:"name"`
	Hits       int       `json:"hits"`
	Scored     int       `json:"scored"`
	Rate       float64   `json:"rate"`
	PerHorizon []float64 `json:"per_horizon,omitempty"`
}

// RouteInfo is the meta-strategy's telemetry view: who currently gets the
// predictions, how often the route has switched, and every expert's
// rolling scorecard. The serving layer surfaces it per session and
// aggregates it across sessions on /debug/vars.
type RouteInfo struct {
	Leader   string        `json:"leader"`
	Switches int64         `json:"switches"`
	Window   int           `json:"window"`
	Experts  []ExpertScore `json:"experts"`
}

// RouteReporter is implemented by strategies that route predictions among
// inner expert strategies (the meta strategy). Telemetry surfaces use it
// the way StateReporter and PeriodReporter are used: optionally.
type RouteReporter interface {
	RouteInfo() RouteInfo
}

// Meta is the adaptive meta-strategy. See the package comment above for
// the scoring and routing model; DESIGN.md §8 specifies the snapshot
// layout.
type Meta struct {
	experts []Strategy
	names   []string

	horizons int
	window   int
	margin   int

	t        int64 // observations so far
	leader   int   // index of the expert predictions route to
	switches int64

	// Pending-prediction ring: horizons slots × experts × horizons. The
	// slot for target index τ is τ % horizons; its (e, k) entry was
	// written by expert e's Predict(k) at observation τ-k+1 and is scored
	// (and the slot recycled) when element τ arrives.
	predVal []int64
	predOK  []bool

	// Outcome windows: window outcomes (1 = hit) per (expert, horizon),
	// oldest overwritten; hits caches each window's sum and score each
	// expert's cross-horizon total, so electing a leader never rescans.
	outcomes []byte
	hits     []int32
	score    []int32
}

// NewMeta returns a meta-strategy over the named experts, each built from
// the registry with the given core configuration. A nil or empty experts
// list selects every registered strategy except meta itself, in sorted
// registry order. It fails on unknown or duplicate names, and on "meta"
// itself (the router does not nest).
func NewMeta(cfg core.Config, experts []string) (*Meta, error) {
	if len(experts) == 0 {
		for _, name := range Names() {
			if name != MetaName {
				experts = append(experts, name)
			}
		}
	}
	if len(experts) == 0 {
		return nil, fmt.Errorf("strategy: meta has no experts to wrap")
	}
	if len(experts) > metaMaxExperts {
		return nil, fmt.Errorf("strategy: meta over %d experts exceeds the limit %d", len(experts), metaMaxExperts)
	}
	m := &Meta{
		names:    make([]string, 0, len(experts)),
		experts:  make([]Strategy, 0, len(experts)),
		horizons: MetaHorizons,
		window:   MetaWindow,
		margin:   MetaSwitchMargin,
	}
	seen := make(map[string]bool, len(experts))
	for _, name := range experts {
		if name == MetaName {
			return nil, fmt.Errorf("strategy: meta cannot wrap itself")
		}
		if seen[name] {
			return nil, fmt.Errorf("strategy: duplicate meta expert %q", name)
		}
		seen[name] = true
		s, err := New(name, cfg)
		if err != nil {
			return nil, err
		}
		m.names = append(m.names, name)
		m.experts = append(m.experts, s)
	}
	m.alloc()
	return m, nil
}

// alloc sizes the rings for the current (experts, horizons, window)
// geometry and zeroes the rolling state.
func (m *Meta) alloc() {
	e, h, w := len(m.experts), m.horizons, m.window
	m.predVal = make([]int64, h*e*h)
	m.predOK = make([]bool, h*e*h)
	m.outcomes = make([]byte, e*h*w)
	m.hits = make([]int32, e*h)
	m.score = make([]int32, e)
	m.t = 0
	m.leader = 0
	m.switches = 0
}

// Desc implements Strategy.
func (m *Meta) Desc() Desc {
	return Desc{
		Name:   MetaName,
		Config: fmt.Sprintf("experts=%s window=%d margin=%d horizons=%d", strings.Join(m.names, "+"), m.window, m.margin, m.horizons),
	}
}

// predIndex addresses the pending-prediction ring.
func (m *Meta) predIndex(slot, e, k int) int {
	return (slot*len(m.experts)+e)*m.horizons + k - 1
}

// push appends one outcome to the (e, k) window, retiring the outcome it
// displaces from the cached sums. scored is how many targets horizon k
// had scored before this one.
func (m *Meta) push(e, k int, scored int64, hit byte) {
	pos := int(scored % int64(m.window))
	idx := (e*m.horizons+k-1)*m.window + pos
	if scored >= int64(m.window) {
		old := int32(m.outcomes[idx])
		m.hits[e*m.horizons+k-1] -= old
		m.score[e] -= old
	}
	m.outcomes[idx] = hit
	m.hits[e*m.horizons+k-1] += int32(hit)
	m.score[e] += int32(hit)
}

// elect re-evaluates the route after a scoring step: the challenger with
// the highest weight (lowest index on ties) takes over only when it leads
// the current leader by more than the switch margin.
func (m *Meta) elect() {
	best := 0
	for e := 1; e < len(m.score); e++ {
		if m.score[e] > m.score[best] {
			best = e
		}
	}
	if best != m.leader && m.score[best] > m.score[m.leader]+int32(m.margin) {
		m.leader = best
		m.switches++
	}
}

// Observe implements Strategy: record every expert's +1..+H forecasts,
// settle the forecasts that targeted this arrival, re-elect the leader,
// and feed the observation to every expert. Steady state performs zero
// heap allocations (pinned by alloc_test.go): the rings are fixed and
// every expert's Observe/Predict is itself allocation-free.
func (m *Meta) Observe(x int64) {
	t, h := m.t, m.horizons
	for e, s := range m.experts {
		for k := 1; k <= h; k++ {
			v, ok := s.Predict(k)
			i := m.predIndex(int((t+int64(k)-1)%int64(h)), e, k)
			m.predVal[i] = v
			m.predOK[i] = ok
		}
	}
	slot := int(t % int64(h))
	for e := range m.experts {
		for k := 1; k <= h; k++ {
			scored := t - int64(k-1)
			if scored < 0 {
				// The +k forecast for this target would predate the
				// stream; nothing was recorded.
				continue
			}
			i := m.predIndex(slot, e, k)
			var hit byte
			if m.predOK[i] && m.predVal[i] == x {
				hit = 1
			}
			m.push(e, k, scored, hit)
		}
	}
	m.elect()
	for _, s := range m.experts {
		s.Observe(x)
	}
	m.t++
}

// Predict implements Strategy: the current leader answers.
func (m *Meta) Predict(k int) (int64, bool) {
	return m.experts[m.leader].Predict(k)
}

// PredictSeriesInto implements Strategy, delegating to the leader so the
// routed path keeps the expert's own buffer-reuse guarantees.
func (m *Meta) PredictSeriesInto(dst []core.Prediction, count int) []core.Prediction {
	return m.experts[m.leader].PredictSeriesInto(dst, count)
}

// PredictSetInto implements Strategy.
func (m *Meta) PredictSetInto(dst []int64, count int) ([]int64, bool) {
	return m.experts[m.leader].PredictSetInto(dst, count)
}

// Reset implements Strategy.
func (m *Meta) Reset() {
	for _, s := range m.experts {
		s.Reset()
	}
	m.alloc()
}

// Leader returns the name of the expert predictions currently route to.
func (m *Meta) Leader() string { return m.names[m.leader] }

// Switches returns how many times the route has changed experts.
func (m *Meta) Switches() int64 { return m.switches }

// scoredFor returns how many targets horizon k has scored so far, capped
// at the window (the divisor of every windowed rate).
func (m *Meta) scoredFor(k int) int {
	s := m.t - int64(k-1)
	if s < 0 {
		s = 0
	}
	if s > int64(m.window) {
		s = int64(m.window)
	}
	return int(s)
}

// RouteInfo implements RouteReporter.
func (m *Meta) RouteInfo() RouteInfo {
	info := RouteInfo{
		Leader:   m.names[m.leader],
		Switches: m.switches,
		Window:   m.window,
		Experts:  make([]ExpertScore, len(m.experts)),
	}
	for e := range m.experts {
		sc := ExpertScore{Name: m.names[e], PerHorizon: make([]float64, m.horizons)}
		for k := 1; k <= m.horizons; k++ {
			scored := m.scoredFor(k)
			hits := int(m.hits[e*m.horizons+k-1])
			sc.Hits += hits
			sc.Scored += scored
			if scored > 0 {
				sc.PerHorizon[k-1] = float64(hits) / float64(scored)
			}
		}
		if sc.Scored > 0 {
			sc.Rate = float64(sc.Hits) / float64(sc.Scored)
		}
		info.Experts[e] = sc
	}
	return info
}

// PredictorState implements StateReporter: the leader's name, plus the
// leader's own discrete state when it reports one ("dpd:locked").
func (m *Meta) PredictorState() string {
	if r, ok := m.experts[m.leader].(StateReporter); ok {
		return m.names[m.leader] + ":" + r.PredictorState()
	}
	return m.names[m.leader]
}

// PredictorPeriod implements PeriodReporter, delegating to the leader.
func (m *Meta) PredictorPeriod() (int, bool) {
	if r, ok := m.experts[m.leader].(PeriodReporter); ok {
		return r.PredictorPeriod()
	}
	return 0, false
}

// pendingRange returns the horizon range [lo, hi] of pending-prediction
// entries that exist for the target t+j: the +k forecast for that target
// was written at observation t+j-k+1, which must lie in [0, t-1].
func (m *Meta) pendingRange(j int) (lo, hi int) {
	lo = j + 2
	hi = m.horizons
	if max := m.t + int64(j) + 1; int64(hi) > max {
		hi = int(max)
	}
	return lo, hi
}

// Snapshot implements Strategy. Layout (DESIGN.md §8): uvarint expert
// count, then per expert a length-prefixed name and length-prefixed
// expert payload; uvarint horizons, window, margin, observation count,
// switch count and leader index; the pending-prediction entries in
// canonical (target offset, expert, horizon) order — one 0/1 ok byte and
// a varint value (0 when abstaining) per entry, with the entry set fully
// determined by the observation count; and the outcome windows, oldest
// first, one 0/1 byte per outcome. Every field is keyed by construction
// order and ring phase is normalized away, so equal states always
// produce equal bytes.
func (m *Meta) Snapshot() []byte {
	var w payloadWriter
	w.uvarint(uint64(len(m.experts)))
	for i, name := range m.names {
		w.uvarint(uint64(len(name)))
		w.buf = append(w.buf, name...)
		p := m.experts[i].Snapshot()
		w.uvarint(uint64(len(p)))
		w.buf = append(w.buf, p...)
	}
	w.uvarint(uint64(m.horizons))
	w.uvarint(uint64(m.window))
	w.uvarint(uint64(m.margin))
	w.uvarint(uint64(m.t))
	w.uvarint(uint64(m.switches))
	w.uvarint(uint64(m.leader))
	for j := 0; j < m.horizons; j++ {
		slot := int((m.t + int64(j)) % int64(m.horizons))
		lo, hi := m.pendingRange(j)
		for e := range m.experts {
			for k := lo; k <= hi; k++ {
				i := m.predIndex(slot, e, k)
				if m.predOK[i] {
					w.byte(1)
					w.varint(m.predVal[i])
				} else {
					w.byte(0)
					w.varint(0)
				}
			}
		}
	}
	for e := range m.experts {
		for k := 1; k <= m.horizons; k++ {
			scored := m.t - int64(k-1)
			fill := int64(m.scoredFor(k))
			base := (e*m.horizons + k - 1) * m.window
			for i := int64(0); i < fill; i++ {
				w.byte(m.outcomes[base+int((scored-fill+i)%int64(m.window))])
			}
		}
	}
	return w.buf
}

// Restore implements Strategy. The payload is validated in full — the
// expert set, ring geometry and every ring byte — before any state is
// replaced; on error the strategy is unchanged. The payload's expert set
// and geometry replace this instance's wholesale, exactly like DPD
// restore replaces the predictor configuration.
func (m *Meta) Restore(payload []byte) error {
	r := &payloadReader{data: payload}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n == 0 || n > metaMaxExperts {
		return payloadErrf("meta expert count %d outside [1, %d]", n, metaMaxExperts)
	}
	names := make([]string, n)
	experts := make([]Strategy, n)
	seen := make(map[string]bool, n)
	for i := range experts {
		raw, err := r.bytes()
		if err != nil {
			return err
		}
		if len(raw) == 0 || len(raw) > metaMaxNameLen {
			return payloadErrf("meta expert %d name length %d outside [1, %d]", i, len(raw), metaMaxNameLen)
		}
		name := string(raw)
		if name == MetaName {
			return payloadErrf("meta payload nests a meta expert")
		}
		if seen[name] {
			return payloadErrf("duplicate meta expert %q", name)
		}
		seen[name] = true
		ep, err := r.bytes()
		if err != nil {
			return err
		}
		s, err := Restore(name, ep)
		if err != nil {
			return payloadErrf("meta expert %q: %v", name, err)
		}
		names[i] = name
		experts[i] = s
	}
	horizons, err := r.uvarint()
	if err != nil {
		return err
	}
	if horizons == 0 || horizons > metaMaxHorizons {
		return payloadErrf("meta horizons %d outside [1, %d]", horizons, metaMaxHorizons)
	}
	window, err := r.uvarint()
	if err != nil {
		return err
	}
	if window == 0 || window > metaMaxWindow {
		return payloadErrf("meta window %d outside [1, %d]", window, metaMaxWindow)
	}
	margin, err := r.uvarint()
	if err != nil {
		return err
	}
	if margin > uint64(horizons*window) {
		return payloadErrf("meta margin %d exceeds the maximum weight %d", margin, horizons*window)
	}
	t, err := r.uvarint()
	if err != nil {
		return err
	}
	if t > math.MaxInt64 {
		return payloadErrf("meta observation count %d overflows", t)
	}
	switches, err := r.uvarint()
	if err != nil {
		return err
	}
	if switches > math.MaxInt64 {
		return payloadErrf("meta switch count %d overflows", switches)
	}
	leader, err := r.uvarint()
	if err != nil {
		return err
	}
	if leader >= n {
		return payloadErrf("meta leader index %d of %d experts", leader, n)
	}
	restored := &Meta{
		names:    names,
		experts:  experts,
		horizons: int(horizons),
		window:   int(window),
		margin:   int(margin),
	}
	restored.alloc()
	restored.t = int64(t)
	restored.switches = int64(switches)
	restored.leader = int(leader)
	for j := 0; j < restored.horizons; j++ {
		slot := int((restored.t + int64(j)) % int64(restored.horizons))
		lo, hi := restored.pendingRange(j)
		for e := range restored.experts {
			for k := lo; k <= hi; k++ {
				ok, err := r.byte()
				if err != nil {
					return err
				}
				if ok > 1 {
					return payloadErrf("meta pending entry flag 0x%02x", ok)
				}
				v, err := r.varint()
				if err != nil {
					return err
				}
				if ok == 0 && v != 0 {
					return payloadErrf("meta abstaining pending entry carries value %d", v)
				}
				i := restored.predIndex(slot, e, k)
				restored.predOK[i] = ok == 1
				restored.predVal[i] = v
			}
		}
	}
	for e := range restored.experts {
		for k := 1; k <= restored.horizons; k++ {
			scored := restored.t - int64(k-1)
			fill := int64(restored.scoredFor(k))
			base := (e*restored.horizons + k - 1) * restored.window
			for i := int64(0); i < fill; i++ {
				b, err := r.byte()
				if err != nil {
					return err
				}
				if b > 1 {
					return payloadErrf("meta outcome byte 0x%02x", b)
				}
				restored.outcomes[base+int((scored-fill+i)%int64(restored.window))] = b
				restored.hits[e*restored.horizons+k-1] += int32(b)
				restored.score[e] += int32(b)
			}
		}
	}
	if err := r.done(); err != nil {
		return err
	}
	*m = *restored
	return nil
}
