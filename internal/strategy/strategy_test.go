package strategy

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mpipredict/internal/core"
)

func periodicStream(n, period int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i % period)
	}
	return out
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"dpd", "lastvalue", "markov1"} {
		if !Known(want) {
			t.Errorf("strategy %q is not registered (have %v)", want, names)
		}
	}
	if !reflect.DeepEqual(names, append([]string(nil), names...)) || len(names) < 3 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() is not sorted: %v", names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("no-such-strategy", core.Config{}); err == nil {
		t.Fatal("New accepted an unknown strategy name")
	}
	if !Known("dpd") || Known("no-such-strategy") {
		t.Fatal("Known misreports registration")
	}
}

func TestNewEmptySelectsDefault(t *testing.T) {
	s, err := New("", core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Desc().Name != Default {
		t.Fatalf("empty name built %q, want %q", s.Desc().Name, Default)
	}
}

func TestDescNamesMatchRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Desc().Name; got != name {
			t.Errorf("strategy registered as %q describes itself as %q", name, got)
		}
	}
}

// TestDPDMatchesCorePredictor pins the tentpole's zero-behavior-change
// contract on a synthetic stream: the dpd strategy and a hand-driven
// core.StreamPredictor must agree on every prediction at every step.
// (The corpus-wide equivalence suite at the repository root does the same
// over every recorded workload stream.)
func TestDPDMatchesCorePredictor(t *testing.T) {
	cfg := core.Config{WindowSize: 64, MaxLag: 24}
	s, err := New("dpd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := core.NewStreamPredictor(cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		for k := 1; k <= 5; k++ {
			gv, gok := s.Predict(k)
			wv, wok := direct.Predict(k)
			if gv != wv || gok != wok {
				t.Fatalf("step %d +%d: strategy (%d,%v) vs core (%d,%v)", i, k, gv, gok, wv, wok)
			}
		}
		x := int64(i % 9)
		if rng.Intn(10) == 0 {
			x = rng.Int63n(12)
		}
		s.Observe(x)
		direct.Observe(x)
	}
}

func TestLastValueSemantics(t *testing.T) {
	s := NewLastValue()
	if _, ok := s.Predict(1); ok {
		t.Fatal("untrained lastvalue predicted")
	}
	s.Observe(41)
	s.Observe(42)
	for k := 1; k <= 5; k++ {
		if v, ok := s.Predict(k); !ok || v != 42 {
			t.Fatalf("+%d = (%d, %v), want (42, true)", k, v, ok)
		}
	}
	set, ok := s.PredictSetInto(nil, 3)
	if !ok || !reflect.DeepEqual(set, []int64{42, 42, 42}) {
		t.Fatalf("PredictSetInto = (%v, %v)", set, ok)
	}
	s.Reset()
	if _, ok := s.Predict(1); ok {
		t.Fatal("reset lastvalue predicted")
	}
}

func TestMarkov1Semantics(t *testing.T) {
	s := NewMarkov1()
	if _, ok := s.Predict(1); ok {
		t.Fatal("untrained markov1 predicted")
	}
	// Stream 1,2,3,1,2,3,1: after seeing the cycle twice every transition
	// is known, so every horizon chains correctly.
	for _, x := range []int64{1, 2, 3, 1, 2, 3, 1} {
		s.Observe(x)
	}
	want := []int64{2, 3, 1, 2, 3}
	for k := 1; k <= 5; k++ {
		v, ok := s.Predict(k)
		if !ok || v != want[k-1] {
			t.Fatalf("+%d = (%d, %v), want (%d, true)", k, v, ok, want[k-1])
		}
	}
	// A successorless tail value abstains mid-chain.
	s.Observe(99)
	if _, ok := s.Predict(1); ok {
		t.Fatal("markov1 predicted a successor for a value that never had one")
	}
}

func TestMarkov1TieBreakIsDeterministic(t *testing.T) {
	// 5 is followed once by 7 and once by 6; the earliest-interned
	// successor (7) must win regardless of which count came last.
	s := NewMarkov1()
	for _, x := range []int64{5, 7, 5, 6, 5} {
		s.Observe(x)
	}
	if v, ok := s.Predict(1); !ok || v != 7 {
		t.Fatalf("tie broke to (%d, %v), want earliest-interned 7", v, ok)
	}
	// A strictly greater count still wins.
	for _, x := range []int64{6, 5} {
		s.Observe(x)
	}
	if v, ok := s.Predict(1); !ok || v != 6 {
		t.Fatalf("after extra 5->6: (%d, %v), want 6", v, ok)
	}
}

func TestMarkov1InternBound(t *testing.T) {
	s := NewMarkov1()
	for i := 0; i < Markov1MaxValues+100; i++ {
		s.Observe(int64(i))
	}
	if len(s.values) != Markov1MaxValues {
		t.Fatalf("interned %d values, bound is %d", len(s.values), Markov1MaxValues)
	}
	if _, ok := s.Predict(1); ok {
		t.Fatal("predicted from an unknown (overflowed) value")
	}
	// Returning to a known value predicts again.
	s.Observe(0)
	if _, ok := s.Predict(1); !ok {
		t.Fatal("no prediction after returning to a known value")
	}
}

// TestSnapshotRestoreEquivalence drives every strategy through a noisy
// stream, snapshots it, restores into a fresh instance and requires both
// to behave identically on the rest of the stream — and the restored
// snapshot to be byte-identical (the warm-restart contract).
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			orig, err := New(name, core.Config{WindowSize: 64, MaxLag: 24})
			if err != nil {
				t.Fatal(err)
			}
			stream := make([]int64, 3000)
			for i := range stream {
				stream[i] = int64(i % 7)
				if rng.Intn(9) == 0 {
					stream[i] = rng.Int63n(10)
				}
			}
			for _, x := range stream[:2000] {
				orig.Observe(x)
			}
			payload := orig.Snapshot()
			restored, err := Restore(name, payload)
			if err != nil {
				t.Fatal(err)
			}
			if again := restored.Snapshot(); !bytes.Equal(again, payload) {
				t.Fatal("restore + snapshot is not byte-identical")
			}
			for i, x := range stream[2000:] {
				for k := 1; k <= 5; k++ {
					ov, ook := orig.Predict(k)
					rv, rok := restored.Predict(k)
					if ov != rv || ook != rok {
						t.Fatalf("step %d +%d: original (%d,%v) vs restored (%d,%v)", i, k, ov, ook, rv, rok)
					}
				}
				orig.Observe(x)
				restored.Observe(x)
			}
		})
	}
}

// TestRestoreRejectsCorruptPayloads mutates every byte of a valid payload
// and requires Restore to either reject it or produce a strategy that can
// re-snapshot (never panic); truncations must always be rejected.
func TestRestoreRejectsCorruptPayloads(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, core.Config{WindowSize: 48, MaxLag: 16})
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range periodicStream(300, 6) {
				s.Observe(x)
			}
			payload := s.Snapshot()
			for n := 0; n < len(payload); n++ {
				if _, err := Restore(name, payload[:n]); err == nil {
					t.Fatalf("truncation to %d of %d bytes was accepted", n, len(payload))
				}
			}
			mutated := make([]byte, len(payload))
			for i := range payload {
				copy(mutated, payload)
				mutated[i] ^= 0xff
				restored, err := Restore(name, mutated)
				if err != nil {
					continue
				}
				restored.Snapshot() // must not panic
				restored.Observe(1)
				restored.Predict(1)
			}
		})
	}
}

func TestRestoreWrongKindPayload(t *testing.T) {
	s, err := New("markov1", core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range periodicStream(100, 4) {
		s.Observe(x)
	}
	if _, err := Restore("lastvalue", s.Snapshot()); err == nil {
		t.Fatal("lastvalue accepted a markov1 payload")
	} else if !errors.Is(err, ErrBadPayload) {
		t.Fatalf("error %v does not wrap ErrBadPayload", err)
	}
}

func TestDPDStateCodecRoundTrip(t *testing.T) {
	p := core.NewStreamPredictor(core.Config{WindowSize: 48, MaxLag: 16})
	for _, x := range periodicStream(400, 5) {
		p.Observe(x)
	}
	want := p.Snapshot()
	got, err := DecodeDPDState(EncodeDPDState(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dpd state codec round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(name, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range periodicStream(2000, 6) {
			s.Observe(x)
		}
		s.Reset()
		if !bytes.Equal(s.Snapshot(), fresh.Snapshot()) {
			t.Errorf("%s: Reset state differs from a fresh instance", name)
		}
	}
}

func TestDescString(t *testing.T) {
	if got := (Desc{Name: "lastvalue"}).String(); got != "lastvalue" {
		t.Fatalf("Desc.String() = %q", got)
	}
	if got := (Desc{Name: "dpd", Config: "window=512"}).String(); got != "dpd(window=512)" {
		t.Fatalf("Desc.String() = %q", got)
	}
}

func TestDPDIntrospection(t *testing.T) {
	d := NewDPD(core.Config{WindowSize: 64, MaxLag: 24})
	if st := d.PredictorState(); st != "learning" {
		t.Fatalf("fresh dpd state %q", st)
	}
	for _, x := range periodicStream(512, 6) {
		d.Observe(x)
	}
	if st := d.PredictorState(); st != "locked" {
		t.Fatalf("warmed dpd state %q", st)
	}
	if p, ok := d.PredictorPeriod(); !ok || p != 6 {
		t.Fatalf("dpd period = (%d, %v), want (6, true)", p, ok)
	}
	if d.Stream() == nil || d.Stream().State() != core.Locked {
		t.Fatal("Stream() does not expose the locked core predictor")
	}
	// The interface-facing optional contracts hold.
	var s Strategy = d
	if _, ok := s.(StateReporter); !ok {
		t.Fatal("dpd does not implement StateReporter")
	}
	if _, ok := s.(PeriodReporter); !ok {
		t.Fatal("dpd does not implement PeriodReporter")
	}
}

func TestRegisterValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name": func() { Register("", func(core.Config) Strategy { return nil }) },
		"duplicate":  func() { Register("dpd", func(core.Config) Strategy { return nil }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
