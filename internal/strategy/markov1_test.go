package strategy

import (
	"math"
	"testing"
)

// TestMarkov1CountSaturates pins the overflow fix for long-run streams: a
// transition repeated 2³² times used to wrap its uint32 count back to 0,
// leaving bestCount stale and desynchronizing the snapshot (which drops
// zero counts) from the online argmax. The test pre-loads a near-max
// count through a crafted payload, pushes the transition past the limit,
// and asserts the count saturates and a restored instance still agrees
// with the live one. On the pre-fix code the count wraps to 0 and the
// restored strategy elects a different successor.
func TestMarkov1CountSaturates(t *testing.T) {
	// Values 10, 20, 30 intern to ids 0, 1, 2. Row 0 starts with the
	// 10→20 transition one step short of saturation and 10→30 at 2.
	var w payloadWriter
	w.uvarint(3)
	for _, v := range []int64{10, 20, 30} {
		w.varint(v)
	}
	w.uvarint(2) // row 0: two entries, ascending by id
	w.uvarint(1)
	w.uvarint(math.MaxUint32 - 1)
	w.uvarint(2)
	w.uvarint(2)
	w.uvarint(0) // row 1: empty
	w.uvarint(0) // row 2: empty
	w.varint(-1) // no last observation

	p := NewMarkov1()
	if err := p.Restore(w.buf); err != nil {
		t.Fatal(err)
	}

	// 10→20 twice: the first increment reaches MaxUint32, the second
	// must saturate rather than wrap to 0.
	for _, x := range []int64{10, 20, 10, 20, 10} {
		p.Observe(x)
	}
	if got := p.counts[0][1]; got != math.MaxUint32 {
		t.Fatalf("10→20 count = %d, want saturated at %d", got, uint32(math.MaxUint32))
	}
	if v, ok := p.Predict(1); !ok || v != 20 {
		t.Fatalf("live Predict(1) = %d, %v; want 20, true", v, ok)
	}

	restored := NewMarkov1()
	if err := restored.Restore(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if v, ok := restored.Predict(1); !ok || v != 20 {
		t.Fatalf("restored Predict(1) = %d, %v; want 20, true (snapshot lost the saturated transition)", v, ok)
	}
}
