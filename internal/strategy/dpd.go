package strategy

import (
	"fmt"
	"math"

	"mpipredict/internal/core"
)

// DPD is the paper's predictor behind the Strategy interface: a thin
// wrapper around core.StreamPredictor with zero behavior change. Observe,
// Predict and the Into variants forward directly, so the DPD path through
// the interface is hit-for-hit identical to driving the core predictor by
// hand (pinned by the corpus equivalence suite) and keeps its 0 allocs/op
// guarantee.
type DPD struct {
	sp *core.StreamPredictor
}

// NewDPD returns the DPD strategy with the given core configuration (zero
// fields take core defaults).
func NewDPD(cfg core.Config) *DPD {
	return &DPD{sp: core.NewStreamPredictor(cfg)}
}

// Desc implements Strategy.
func (d *DPD) Desc() Desc {
	cfg := d.sp.Config()
	return Desc{
		Name: "dpd",
		Config: fmt.Sprintf("window=%d maxlag=%d confirm=%d holddown=%d",
			cfg.WindowSize, cfg.MaxLag, cfg.ConfirmRuns, cfg.HoldDown),
	}
}

// Observe implements Strategy.
func (d *DPD) Observe(x int64) { d.sp.Observe(x) }

// Predict implements Strategy.
func (d *DPD) Predict(k int) (int64, bool) { return d.sp.Predict(k) }

// PredictSeriesInto implements Strategy.
func (d *DPD) PredictSeriesInto(dst []core.Prediction, count int) []core.Prediction {
	return d.sp.PredictSeriesInto(dst, count)
}

// PredictSetInto implements Strategy.
func (d *DPD) PredictSetInto(dst []int64, count int) ([]int64, bool) {
	return d.sp.PredictSetInto(dst, count)
}

// Reset implements Strategy.
func (d *DPD) Reset() { d.sp.Reset() }

// Snapshot implements Strategy: the payload is the binary encoding of the
// core predictor snapshot (EncodeDPDState).
func (d *DPD) Snapshot() []byte { return EncodeDPDState(d.sp.Snapshot()) }

// Restore implements Strategy. The payload carries the full predictor
// state including its configuration, so whatever configuration this
// instance was created with is replaced wholesale.
func (d *DPD) Restore(payload []byte) error {
	state, err := DecodeDPDState(payload)
	if err != nil {
		return err
	}
	sp, err := core.RestoreStreamPredictor(state)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	d.sp = sp
	return nil
}

// PredictorState implements StateReporter (learning/locked).
func (d *DPD) PredictorState() string { return d.sp.State().String() }

// PredictorPeriod implements PeriodReporter.
func (d *DPD) PredictorPeriod() (int, bool) { return d.sp.Period() }

// Stream exposes the wrapped core predictor for callers that need the
// richer DPD-specific API (period, pattern, counters).
func (d *DPD) Stream() *core.StreamPredictor { return d.sp }

// EncodeDPDState serializes a core predictor snapshot to the dpd payload
// format. The field order matches the version-1 serving snapshot format's
// inline predictor state (DESIGN.md §4), which is what lets the version-1
// reader re-frame old files as dpd payloads without re-deriving anything:
//
//	varint  WindowSize, MaxLag, MinRepeats, ConfirmRuns, HoldDown
//	uvarint Float64bits(LockTolerance)
//	varint  RelearnWindow
//	uvarint Float64bits(RelearnMissRate)
//	varint  WindowObserved
//	int64s  Window (uvarint length + varints, oldest first)
//	byte    State
//	int64s  Pattern
//	varint  Phase, MissStreak
//	uvarint len(Recent) + one 0/1 byte per outcome, oldest first
//	varint  CandidatePeriod, CandidateRuns
//	varint  the five lifetime counters
func EncodeDPDState(s core.PredictorSnapshot) []byte {
	var w payloadWriter
	w.varint(int64(s.Config.WindowSize))
	w.varint(int64(s.Config.MaxLag))
	w.varint(int64(s.Config.MinRepeats))
	w.varint(int64(s.Config.ConfirmRuns))
	w.varint(int64(s.Config.HoldDown))
	w.uvarint(math.Float64bits(s.Config.LockTolerance))
	w.varint(int64(s.Config.RelearnWindow))
	w.uvarint(math.Float64bits(s.Config.RelearnMissRate))
	w.varint(s.WindowObserved)
	w.int64s(s.Window)
	w.byte(byte(s.State))
	w.int64s(s.Pattern)
	w.varint(int64(s.Phase))
	w.varint(int64(s.MissStreak))
	w.uvarint(uint64(len(s.Recent)))
	for _, hit := range s.Recent {
		if hit {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
	w.varint(int64(s.CandidatePeriod))
	w.varint(int64(s.CandidateRuns))
	w.varint(s.Counters.Observed)
	w.varint(s.Counters.Locks)
	w.varint(s.Counters.Unlocks)
	w.varint(s.Counters.HitsWhile)
	w.varint(s.Counters.MissesWhile)
	return w.buf
}

// DecodeDPDState parses a dpd payload back into a predictor snapshot. It
// performs the structural validation only; semantic validation is
// core.RestoreStreamPredictor's job (DPD.Restore runs both).
func DecodeDPDState(payload []byte) (core.PredictorSnapshot, error) {
	var s core.PredictorSnapshot
	r := &payloadReader{data: payload}
	fields := []*int{
		&s.Config.WindowSize, &s.Config.MaxLag, &s.Config.MinRepeats,
		&s.Config.ConfirmRuns, &s.Config.HoldDown,
	}
	for _, f := range fields {
		v, err := r.varint()
		if err != nil {
			return s, err
		}
		*f = int(v)
	}
	bits, err := r.uvarint()
	if err != nil {
		return s, err
	}
	s.Config.LockTolerance = math.Float64frombits(bits)
	v, err := r.varint()
	if err != nil {
		return s, err
	}
	s.Config.RelearnWindow = int(v)
	if bits, err = r.uvarint(); err != nil {
		return s, err
	}
	s.Config.RelearnMissRate = math.Float64frombits(bits)
	if s.WindowObserved, err = r.varint(); err != nil {
		return s, err
	}
	if s.Window, err = r.int64s(); err != nil {
		return s, err
	}
	state, err := r.byte()
	if err != nil {
		return s, err
	}
	s.State = core.LockState(state)
	if s.Pattern, err = r.int64s(); err != nil {
		return s, err
	}
	if v, err = r.varint(); err != nil {
		return s, err
	}
	s.Phase = int(v)
	if v, err = r.varint(); err != nil {
		return s, err
	}
	s.MissStreak = int(v)
	n, err := r.uvarint()
	if err != nil {
		return s, err
	}
	if n > maxPayloadSliceLen {
		return s, payloadErrf("outcome ring length %d exceeds the payload limit %d", n, maxPayloadSliceLen)
	}
	if n > 0 {
		s.Recent = make([]bool, n)
		for i := range s.Recent {
			b, err := r.byte()
			if err != nil {
				return s, err
			}
			switch b {
			case 0:
				s.Recent[i] = false
			case 1:
				s.Recent[i] = true
			default:
				return s, payloadErrf("invalid outcome byte 0x%02x", b)
			}
		}
	}
	if v, err = r.varint(); err != nil {
		return s, err
	}
	s.CandidatePeriod = int(v)
	if v, err = r.varint(); err != nil {
		return s, err
	}
	s.CandidateRuns = int(v)
	counters := []*int64{
		&s.Counters.Observed, &s.Counters.Locks, &s.Counters.Unlocks,
		&s.Counters.HitsWhile, &s.Counters.MissesWhile,
	}
	for _, c := range counters {
		if *c, err = r.varint(); err != nil {
			return s, err
		}
	}
	if err := r.done(); err != nil {
		return s, err
	}
	return s, nil
}
