package strategy

import (
	"fmt"
	"math"

	"mpipredict/internal/core"
)

// Markov1MaxValues bounds the number of distinct values a Markov1 strategy
// interns. MPI receive streams draw from tiny alphabets (a handful of
// sender ranks and message sizes — Table 1's "frequent sizes/senders"
// columns), so the bound exists only to keep an adversarial stream from
// growing the transition table without limit: values beyond the bound are
// treated as unknown (no transitions learned from or to them).
const Markov1MaxValues = 1024

// Markov1 is a first-order transition-frequency predictor: it counts how
// often value b followed value a and predicts the most frequent successor
// of the current value, chaining successors for multi-step horizons. It is
// the classic history-based alternative the paper's related-work section
// discusses. Values are interned to dense ids in first-appearance order,
// so the steady-state Observe path is two slice indexings and a map lookup
// — no allocations once the stream's alphabet has been seen.
//
// It is a separate implementation from predictor.Markov(1) (the Section 6
// comparison baseline): that one breaks successor ties toward the
// smallest value and interns nothing, while this one breaks ties toward
// the earliest-interned value so its snapshots restore exactly. On
// tie-free streams the two agree; on ties their predictions can differ.
//
// Ties are broken toward the earliest-interned value, maintained
// incrementally, so the predicted successor is a pure function of the
// transition counts — the property that makes Snapshot/Restore exact: a
// restored strategy predicts exactly like the one that was snapshotted.
type Markov1 struct {
	ids    map[int64]int32 // value -> dense id
	values []int64         // id -> value, first-appearance order
	counts [][]uint32      // counts[a][b] = times values[b] followed values[a]

	// bestSucc[a] is the smallest-id argmax of counts[a] (-1 when row a is
	// empty); bestCount[a] is its count. Maintained on every increment so
	// Predict never scans a row.
	bestSucc  []int32
	bestCount []uint32

	last int32 // id of the most recent observation, -1 when none/unknown
}

// NewMarkov1 returns an untrained first-order Markov strategy.
func NewMarkov1() *Markov1 {
	return &Markov1{ids: make(map[int64]int32), last: -1}
}

// Desc implements Strategy.
func (p *Markov1) Desc() Desc {
	return Desc{Name: "markov1", Config: fmt.Sprintf("max-values=%d", Markov1MaxValues)}
}

// intern returns the dense id for x, assigning the next id on first
// sight. It returns -1 when the intern table is full and x is new.
func (p *Markov1) intern(x int64) int32 {
	if id, ok := p.ids[x]; ok {
		return id
	}
	if len(p.values) >= Markov1MaxValues {
		return -1
	}
	id := int32(len(p.values))
	p.ids[x] = id
	p.values = append(p.values, x)
	p.counts = append(p.counts, nil)
	p.bestSucc = append(p.bestSucc, -1)
	p.bestCount = append(p.bestCount, 0)
	return id
}

// Observe implements Strategy.
func (p *Markov1) Observe(x int64) {
	id := p.intern(x)
	if prev := p.last; prev >= 0 && id >= 0 {
		row := p.counts[prev]
		if int(id) >= len(row) {
			grown := make([]uint32, len(p.values))
			copy(grown, row)
			row = grown
			p.counts[prev] = row
		}
		// Saturate instead of wrapping: after 2³² repeats of one
		// transition the increment would wrap the count to 0, leaving
		// bestCount[prev] stale and the argmax invariant corrupted. A
		// saturated count stays the maximum, which also keeps Restore's
		// ascending strictly-greater scan in agreement with the online
		// tie-break.
		if row[id] != math.MaxUint32 {
			row[id]++
		}
		c := row[id]
		// Keep bestSucc the smallest-id argmax: a strictly greater count
		// always wins; an equal count wins only from a smaller id.
		if c > p.bestCount[prev] || (c == p.bestCount[prev] && id < p.bestSucc[prev]) {
			p.bestSucc[prev] = id
			p.bestCount[prev] = c
		}
	}
	p.last = id
}

// Predict implements Strategy: follow the most frequent successor chain k
// steps from the last observed value, abstaining when any link is missing.
func (p *Markov1) Predict(k int) (int64, bool) {
	if k < 1 || p.last < 0 {
		return 0, false
	}
	cur := p.last
	for step := 0; step < k; step++ {
		next := p.bestSucc[cur]
		if next < 0 {
			return 0, false
		}
		cur = next
	}
	return p.values[cur], true
}

// PredictSeriesInto implements Strategy.
func (p *Markov1) PredictSeriesInto(dst []core.Prediction, count int) []core.Prediction {
	return seriesInto(p, dst, count)
}

// PredictSetInto implements Strategy.
func (p *Markov1) PredictSetInto(dst []int64, count int) ([]int64, bool) {
	return setInto(p, dst, count)
}

// Reset implements Strategy.
func (p *Markov1) Reset() {
	*p = Markov1{ids: make(map[int64]int32), last: -1}
}

// Snapshot implements Strategy. Layout: uvarint value count, the interned
// values in id order, one sparse row per value (uvarint entry count, then
// ascending (uvarint id, uvarint count) pairs), and the varint id of the
// last observation (-1 when none). Everything is keyed by intern order, so
// equal states always produce equal bytes.
func (p *Markov1) Snapshot() []byte {
	var w payloadWriter
	w.uvarint(uint64(len(p.values)))
	for _, v := range p.values {
		w.varint(v)
	}
	for _, row := range p.counts {
		nonzero := 0
		for _, c := range row {
			if c > 0 {
				nonzero++
			}
		}
		w.uvarint(uint64(nonzero))
		for id, c := range row {
			if c > 0 {
				w.uvarint(uint64(id))
				w.uvarint(uint64(c))
			}
		}
	}
	w.varint(int64(p.last))
	return w.buf
}

// Restore implements Strategy.
func (p *Markov1) Restore(payload []byte) error {
	r := &payloadReader{data: payload}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > Markov1MaxValues {
		return payloadErrf("%d interned values exceed the limit %d", n, Markov1MaxValues)
	}
	ids := make(map[int64]int32, n)
	values := make([]int64, n)
	for i := range values {
		v, err := r.varint()
		if err != nil {
			return err
		}
		if _, dup := ids[v]; dup {
			return payloadErrf("duplicate interned value %d", v)
		}
		ids[v] = int32(i)
		values[i] = v
	}
	counts := make([][]uint32, n)
	bestSucc := make([]int32, n)
	bestCount := make([]uint32, n)
	for a := range counts {
		bestSucc[a] = -1
		entries, err := r.uvarint()
		if err != nil {
			return err
		}
		if entries > n {
			return payloadErrf("row %d has %d entries for %d values", a, entries, n)
		}
		if entries == 0 {
			continue
		}
		row := make([]uint32, n)
		prev := int64(-1)
		for e := uint64(0); e < entries; e++ {
			id, err := r.uvarint()
			if err != nil {
				return err
			}
			c, err := r.uvarint()
			if err != nil {
				return err
			}
			if id >= n {
				return payloadErrf("row %d references value id %d of %d", a, id, n)
			}
			if int64(id) <= prev {
				return payloadErrf("row %d entries are not strictly ascending", a)
			}
			if c == 0 || c > 1<<32-1 {
				return payloadErrf("row %d entry %d has count %d", a, id, c)
			}
			prev = int64(id)
			row[id] = uint32(c)
			// Ascending scan with a strictly-greater test lands on the
			// smallest-id argmax, matching the online tie-break exactly.
			if uint32(c) > bestCount[a] {
				bestSucc[a] = int32(id)
				bestCount[a] = uint32(c)
			}
		}
		counts[a] = row
	}
	last, err := r.varint()
	if err != nil {
		return err
	}
	if last < -1 || last >= int64(n) {
		return payloadErrf("last id %d outside [-1, %d)", last, n)
	}
	if err := r.done(); err != nil {
		return err
	}
	p.ids = ids
	p.values = values
	p.counts = counts
	p.bestSucc = bestSucc
	p.bestCount = bestCount
	p.last = int32(last)
	return nil
}
