package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 || r.StdDev() != 0 {
		t.Fatalf("empty Running should be all zero, got %s", r.String())
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(42)
	if r.N() != 1 {
		t.Fatalf("N=%d want 1", r.N())
	}
	if r.Mean() != 42 {
		t.Fatalf("mean=%v want 42", r.Mean())
	}
	if r.Var() != 0 {
		t.Fatalf("variance of single sample should be 0, got %v", r.Var())
	}
	if r.Min() != 42 || r.Max() != 42 {
		t.Fatalf("min/max = %v/%v want 42/42", r.Min(), r.Max())
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("mean=%v want 5", r.Mean())
	}
	if !almostEqual(r.StdDev(), 2, 1e-12) {
		t.Errorf("stddev=%v want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max=%v/%v want 2/9", r.Min(), r.Max())
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*13 + 100
		r.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if !almostEqual(r.Mean(), mean, 1e-9) {
		t.Errorf("mean mismatch: %v vs %v", r.Mean(), mean)
	}
	if !almostEqual(r.Var(), ss/float64(len(xs)), 1e-7) {
		t.Errorf("var mismatch: %v vs %v", r.Var(), ss/float64(len(xs)))
	}
}

func TestHistBasic(t *testing.T) {
	h := NewHist()
	if h.Total() != 0 || h.Distinct() != 0 {
		t.Fatal("new hist should be empty")
	}
	for _, v := range []int64{1, 1, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("total=%d want 6", h.Total())
	}
	if h.Distinct() != 3 {
		t.Errorf("distinct=%d want 3", h.Distinct())
	}
	if h.Count(3) != 3 || h.Count(2) != 1 || h.Count(99) != 0 {
		t.Errorf("unexpected counts: %d %d %d", h.Count(3), h.Count(2), h.Count(99))
	}
	vals := h.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Errorf("values=%v want [1 2 3]", vals)
	}
}

func TestHistAddN(t *testing.T) {
	h := NewHist()
	h.AddN(5, 10)
	h.AddN(6, 0)
	h.AddN(7, -3)
	if h.Total() != 10 {
		t.Errorf("total=%d want 10", h.Total())
	}
	if h.Distinct() != 1 {
		t.Errorf("distinct=%d want 1", h.Distinct())
	}
}

func TestHistMode(t *testing.T) {
	h := NewHist()
	if _, _, ok := h.Mode(); ok {
		t.Fatal("mode of empty hist should not be ok")
	}
	h.AddN(10, 5)
	h.AddN(20, 5)
	h.AddN(30, 2)
	v, c, ok := h.Mode()
	if !ok || c != 5 || v != 10 {
		t.Errorf("mode=(%d,%d,%v) want (10,5,true) with tie broken by smaller value", v, c, ok)
	}
}

func TestHistFrequentExcludesRareValues(t *testing.T) {
	h := NewHist()
	// A BT-like size stream: three frequent sizes plus one setup message.
	h.AddN(3240, 800)
	h.AddN(10240, 800)
	h.AddN(19440, 800)
	h.AddN(4, 1)
	freq := h.Frequent(0.99)
	if len(freq) != 3 {
		t.Fatalf("Frequent(0.99) = %v, want the 3 dominant sizes", freq)
	}
	all := h.Frequent(1.0)
	if len(all) != 4 {
		t.Fatalf("Frequent(1.0) = %v, want all 4 values", all)
	}
}

func TestHistFrequentEdgeCases(t *testing.T) {
	h := NewHist()
	if got := h.Frequent(0.9); got != nil {
		t.Errorf("empty hist Frequent should be nil, got %v", got)
	}
	h.Add(1)
	if got := h.Frequent(0); got != nil {
		t.Errorf("coverage 0 should return nil, got %v", got)
	}
	if got := h.Frequent(5); len(got) != 1 {
		t.Errorf("coverage >1 clamps to 1, got %v", got)
	}
}

func TestHistEntropy(t *testing.T) {
	h := NewHist()
	if h.Entropy() != 0 {
		t.Error("entropy of empty hist should be 0")
	}
	h.AddN(1, 100)
	if h.Entropy() != 0 {
		t.Error("entropy of single-value hist should be 0")
	}
	h2 := NewHist()
	h2.AddN(1, 50)
	h2.AddN(2, 50)
	if !almostEqual(h2.Entropy(), 1, 1e-12) {
		t.Errorf("entropy of uniform 2-value hist = %v want 1", h2.Entropy())
	}
	h4 := NewHist()
	for v := int64(0); v < 4; v++ {
		h4.AddN(v, 25)
	}
	if !almostEqual(h4.Entropy(), 2, 1e-12) {
		t.Errorf("entropy of uniform 4-value hist = %v want 2", h4.Entropy())
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	cases := []struct {
		p    float64
		want int64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10}, {-5, 1}, {150, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty slice should be 0")
	}
	// Percentile must not mutate its input.
	if xs[0] != 9 {
		t.Error("Percentile mutated its input slice")
	}
}

func TestMeanInt64(t *testing.T) {
	if MeanInt64(nil) != 0 {
		t.Error("mean of empty slice should be 0")
	}
	if got := MeanInt64([]int64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean=%v want 2.5", got)
	}
}

func TestDistinct(t *testing.T) {
	if DistinctInt64([]int64{1, 1, 2, 3, 3}) != 3 {
		t.Error("DistinctInt64 wrong")
	}
	if DistinctInts([]int{5, 5, 5}) != 1 {
		t.Error("DistinctInts wrong")
	}
	if DistinctInt64(nil) != 0 || DistinctInts(nil) != 0 {
		t.Error("Distinct of nil should be 0")
	}
}

// Property: the histogram total always equals the number of Add calls and
// Frequent(1.0) always covers every distinct value.
func TestHistProperties(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHist()
		for _, v := range vals {
			h.Add(int64(v))
		}
		if h.Total() != int64(len(vals)) {
			return false
		}
		if len(vals) > 0 && len(h.Frequent(1.0)) != h.Distinct() {
			return false
		}
		return h.Distinct() == DistinctInt64(func() []int64 {
			out := make([]int64, len(vals))
			for i, v := range vals {
				out[i] = int64(v)
			}
			return out
		}())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Running mean always lies between Min and Max.
func TestRunningMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var r Running
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue // keep magnitudes physical; extreme values only test float rounding
			}
			r.Add(v)
		}
		if r.N() == 0 {
			return true
		}
		return r.Mean() >= r.Min()-1e-6 && r.Mean() <= r.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
