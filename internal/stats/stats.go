// Package stats provides small numeric helpers used across the
// mpipredict modules: running moments, histograms over discrete values,
// and deterministic pseudo-random helpers for the simulation substrate.
//
// The package is intentionally dependency-free (stdlib only) and all
// types are safe for single-goroutine use; the discrete-event engine is
// sequential so no locking is required here.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance of a stream of float64
// observations using Welford's online algorithm, which is numerically
// stable for long streams.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations seen so far.
func (r *Running) N() int64 { return r.n }

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the (population) variance of the observations.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation, or 0 when empty.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 when empty.
func (r *Running) Max() float64 { return r.max }

// String renders a compact summary, convenient for report tables.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Hist counts occurrences of discrete int64 values. It is used to
// characterise message-size and sender streams (Table 1 of the paper
// reports the number of distinct, frequently occurring values).
type Hist struct {
	counts map[int64]int64
	total  int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make(map[int64]int64)}
}

// Add counts one occurrence of v.
func (h *Hist) Add(v int64) {
	h.counts[v]++
	h.total++
}

// AddN counts n occurrences of v.
func (h *Hist) AddN(v int64, n int64) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Total returns the number of observations.
func (h *Hist) Total() int64 { return h.total }

// Distinct returns the number of distinct values observed.
func (h *Hist) Distinct() int { return len(h.counts) }

// Count returns the number of occurrences of v.
func (h *Hist) Count(v int64) int64 { return h.counts[v] }

// Values returns the distinct values sorted ascending.
func (h *Hist) Values() []int64 {
	out := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Frequent returns the smallest set of values whose cumulative frequency
// reaches the given coverage fraction (0 < coverage <= 1), sorted by
// descending count. The paper's Table 1 footnote reports "the number of
// the frequently appearing sender and message sizes"; Frequent(0.99)
// reproduces that notion: rare one-off values (e.g. setup messages) are
// excluded.
func (h *Hist) Frequent(coverage float64) []int64 {
	if h.total == 0 {
		return nil
	}
	if coverage <= 0 {
		return nil
	}
	if coverage > 1 {
		coverage = 1
	}
	type kv struct {
		v int64
		c int64
	}
	pairs := make([]kv, 0, len(h.counts))
	for v, c := range h.counts {
		pairs = append(pairs, kv{v, c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].c != pairs[j].c {
			return pairs[i].c > pairs[j].c
		}
		return pairs[i].v < pairs[j].v
	})
	need := int64(math.Ceil(coverage * float64(h.total)))
	var acc int64
	out := make([]int64, 0, len(pairs))
	for _, p := range pairs {
		if acc >= need {
			break
		}
		out = append(out, p.v)
		acc += p.c
	}
	return out
}

// Mode returns the most frequent value and its count. Ties are broken by
// the smaller value. ok is false for an empty histogram.
func (h *Hist) Mode() (value int64, count int64, ok bool) {
	if h.total == 0 {
		return 0, 0, false
	}
	first := true
	for v, c := range h.counts {
		if first || c > count || (c == count && v < value) {
			value, count = v, c
			first = false
		}
	}
	return value, count, true
}

// Entropy returns the Shannon entropy (bits) of the empirical
// distribution. Low entropy indicates a highly concentrated stream
// (few distinct senders/sizes), which the paper identifies as one reason
// LU and Sweep3D stay predictable even at the physical level.
func (h *Hist) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	var e float64
	tot := float64(h.total)
	for _, c := range h.counts {
		p := float64(c) / tot
		e -= p * math.Log2(p)
	}
	return e
}

// Percentile returns the p-th percentile (0..100) of an int64 slice using
// the nearest-rank method. The slice is not modified.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]int64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// MeanInt64 returns the arithmetic mean of an int64 slice (0 when empty).
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// DistinctInt64 returns the number of distinct values in xs.
func DistinctInt64(xs []int64) int {
	seen := make(map[int64]struct{}, len(xs))
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}

// DistinctInts returns the number of distinct values in xs.
func DistinctInts(xs []int) int {
	seen := make(map[int]struct{}, len(xs))
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}
