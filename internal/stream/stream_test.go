package stream

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"mpipredict/internal/trace"
)

// synthCfg is the shared synthetic configuration of these tests: a
// period-6 pattern with arrival-order noise.
func synthCfg(events int) trace.SynthConfig {
	return trace.SynthConfig{
		App: "synth", Procs: 7, Receiver: 0,
		Pattern: []trace.SynthMessage{
			{Sender: 1, Size: 64}, {Sender: 2, Size: 128}, {Sender: 3, Size: 64},
			{Sender: 4, Size: 256}, {Sender: 5, Size: 128}, {Sender: 6, Size: 64},
		},
		Events:          events,
		SwapProbability: 0.2,
		Seed:            42,
	}
}

func records(t *testing.T, src Source) []trace.Record {
	t.Helper()
	var out []trace.Record
	var b EventBlock
	for {
		err := src.Next(&b)
		if err == io.EOF {
			if b.Len() != 0 {
				t.Fatalf("EOF delivered with %d events in the block", b.Len())
			}
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Fatal("Next returned nil with an empty block")
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Record(i))
		}
	}
}

// stripSeq zeroes the Seq numbers blocks deliberately do not carry.
func stripSeq(recs []trace.Record) []trace.Record {
	out := make([]trace.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Seq = 0
	}
	return out
}

func TestEventBlockAppendRecordRoundTrip(t *testing.T) {
	var b EventBlock
	want := trace.Record{Time: 3.5, Receiver: 2, Sender: 7, Size: 1024,
		Tag: 9, Kind: trace.Collective, Op: "bcast", Level: trace.Physical}
	b.Append(want)
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if got := b.Record(0); got != want {
		t.Errorf("Record(0) = %+v, want %+v", got, want)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", b.Len())
	}
	if cap(b.Sender) == 0 {
		t.Error("Reset dropped the backing array instead of keeping it")
	}
}

func TestTraceSourceGatherRoundTrip(t *testing.T) {
	tr := trace.Synthesize(synthCfg(2500)) // > 2 blocks per level
	got, err := Gather(TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Procs != tr.Procs {
		t.Errorf("metadata = (%q, %d), want (%q, %d)", got.App, got.Procs, tr.App, tr.Procs)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Error("gathered records differ from the source trace")
	}
}

func TestMetaOf(t *testing.T) {
	tr := trace.Synthesize(synthCfg(10))
	md, ok := MetaOf(TraceSource(tr))
	if !ok || md.App != "synth" || md.Procs != 7 {
		t.Errorf("MetaOf = %+v, %v", md, ok)
	}
	// Transforms forward the metadata.
	md, ok = MetaOf(FilterReceiver(Perturb(TraceSource(tr), PerturbConfig{}), 0))
	if !ok || md.App != "synth" {
		t.Errorf("MetaOf through transforms = %+v, %v", md, ok)
	}
	if _, ok := MetaOf(sourceFunc(nil)); ok {
		t.Error("MetaOf reported metadata for a bare generator")
	}
}

type sourceFunc func(*EventBlock) error

func (f sourceFunc) Next(b *EventBlock) error {
	if f == nil {
		b.Reset()
		return io.EOF
	}
	return f(b)
}

// TestSynthSourceMatchesSynthesize pins the core generator equivalence:
// the constant-memory streaming generator emits exactly the records the
// in-memory Synthesize builds, including the seeded physical swaps.
func TestSynthSourceMatchesSynthesize(t *testing.T) {
	for _, events := range []int{0, 1, 2, 7, 100, 2500} {
		cfg := synthCfg(events)
		want := stripSeq(trace.Synthesize(cfg).Records)
		got := records(t, SynthSource(cfg))
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("events=%d: streamed records differ from Synthesize", events)
		}
	}
}

// TestSynthSourceCodecBytesIdentical streams the generator through the
// binary codec and compares bytes with the whole-trace writer.
func TestSynthSourceCodecBytesIdentical(t *testing.T) {
	cfg := synthCfg(300)
	var inMemory bytes.Buffer
	if err := trace.WriteBinary(&inMemory, trace.Synthesize(cfg)); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	w, err := trace.NewWriter(&streamed, cfg.App, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Copy(SinkTo(w), SynthSource(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inMemory.Bytes(), streamed.Bytes()) {
		t.Error("streamed binary trace differs from the in-memory one")
	}
}

func TestFilterReceiverLevel(t *testing.T) {
	tr := trace.New("t", 4)
	for i := 0; i < 10; i++ {
		tr.Append(trace.Record{Receiver: i % 3, Sender: i, Level: trace.Level(i % 2), Op: "send"})
	}
	recs := records(t, FilterReceiverLevel(TraceSource(tr), 1, trace.Physical))
	if len(recs) == 0 {
		t.Fatal("filter dropped everything")
	}
	for _, r := range recs {
		if r.Receiver != 1 || r.Level != trace.Physical {
			t.Errorf("record leaked through the filter: %+v", r)
		}
	}
	// And the complement views partition the stream.
	n := 0
	for recv := 0; recv < 3; recv++ {
		for _, lvl := range []trace.Level{trace.Logical, trace.Physical} {
			n += len(records(t, FilterReceiverLevel(TraceSource(tr), recv, lvl)))
		}
	}
	if n != tr.Len() {
		t.Errorf("filter views cover %d records, want %d", n, tr.Len())
	}
}

func TestMergeIsTimeOrderedAndOrderPreserving(t *testing.T) {
	a := trace.New("a", 2)
	b := trace.New("b", 2)
	for i := 0; i < 2000; i++ {
		a.Append(trace.Record{Time: float64(2 * i), Receiver: 0, Sender: i, Op: "send"})
		b.Append(trace.Record{Time: float64(2*i + 1), Receiver: 1, Sender: i, Op: "send"})
	}
	merged := records(t, Merge(TraceSource(a), TraceSource(b)))
	if len(merged) != 4000 {
		t.Fatalf("merged %d records, want 4000", len(merged))
	}
	lastTime := -1.0
	next := map[int]int{} // receiver -> expected sender counter
	for _, r := range merged {
		if r.Time < lastTime {
			t.Fatalf("merge emitted time %v after %v", r.Time, lastTime)
		}
		lastTime = r.Time
		if r.Sender != next[r.Receiver] {
			t.Fatalf("receiver %d stream reordered: sender %d, want %d", r.Receiver, r.Sender, next[r.Receiver])
		}
		next[r.Receiver]++
	}
}

func TestMergeDeterministicTieBreak(t *testing.T) {
	mk := func(app string, sender int) *trace.Trace {
		tr := trace.New(app, 1)
		tr.Append(trace.Record{Time: 1, Receiver: 0, Sender: sender, Op: "send"})
		return tr
	}
	got := records(t, Merge(TraceSource(mk("a", 10)), TraceSource(mk("b", 20))))
	if got[0].Sender != 10 || got[1].Sender != 20 {
		t.Errorf("tie broke toward the higher source index: %+v", got)
	}
}

func TestPerturbDeterministicForFixedSeed(t *testing.T) {
	cfg := PerturbConfig{SwapProbability: 0.3, DropProbability: 0.05, Seed: 7}
	tr := trace.Synthesize(synthCfg(2000))
	first := records(t, Perturb(TraceSource(tr), cfg))
	second := records(t, Perturb(TraceSource(tr), cfg))
	if !reflect.DeepEqual(first, second) {
		t.Error("same seed produced different perturbations")
	}
	cfg.Seed = 8
	third := records(t, Perturb(TraceSource(tr), cfg))
	if reflect.DeepEqual(first, third) {
		t.Error("different seeds produced identical perturbations")
	}
	if len(first) >= tr.Len() {
		t.Errorf("drops lost nothing: %d of %d records survived", len(first), tr.Len())
	}
}

func TestPerturbPhysicalOnlyLeavesLogicalIntact(t *testing.T) {
	tr := trace.Synthesize(synthCfg(500))
	cfg := PerturbConfig{SwapProbability: 0.5, DropProbability: 0.2, PhysicalOnly: true, Seed: 3}
	perturbed, err := Gather(Perturb(TraceSource(tr), cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantLog := tr.SenderStream(0, trace.Logical)
	gotLog := perturbed.SenderStream(0, trace.Logical)
	if !reflect.DeepEqual(wantLog, gotLog) {
		t.Error("PhysicalOnly perturbation touched the logical stream")
	}
	gotPhy := perturbed.SenderStream(0, trace.Physical)
	if reflect.DeepEqual(tr.SenderStream(0, trace.Physical), gotPhy) {
		t.Error("perturbation left the physical stream untouched")
	}
}

// TestPerturbNoOpIsIdentity pins that a zero config forwards the stream
// unchanged (modulo the Seq numbers blocks never carry).
func TestPerturbNoOpIsIdentity(t *testing.T) {
	tr := trace.Synthesize(synthCfg(1500))
	got := records(t, Perturb(TraceSource(tr), PerturbConfig{}))
	if !reflect.DeepEqual(got, stripSeq(tr.Records)) {
		t.Error("no-op perturbation changed the stream")
	}
}

func TestFileSourceStreamsBothFormats(t *testing.T) {
	tr := trace.Synthesize(synthCfg(1200))
	dir := t.TempDir()
	bin := dir + "/t.mpt"
	jsonl := dir + "/t.jsonl"
	if err := trace.SaveBinaryFile(bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.SaveFile(jsonl, tr); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{bin, jsonl} {
		src, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := records(t, src)
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		if md, ok := MetaOf(src); !ok || md.App != tr.App || md.Procs != tr.Procs {
			t.Errorf("%s: metadata = %+v, %v", path, md, ok)
		}
		if !reflect.DeepEqual(got, stripSeq(tr.Records)) {
			t.Errorf("%s: streamed records differ from the saved trace", path)
		}
	}
	if _, err := OpenFile(dir + "/missing.mpt"); err == nil {
		t.Error("OpenFile of a missing file succeeded")
	}
}

func TestTeeWritesAllSinks(t *testing.T) {
	cfg := synthCfg(100)
	var b1, b2 bytes.Buffer
	w1, err := trace.NewWriter(&b1, cfg.App, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := trace.NewJSONLWriter(&b2, cfg.App, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Copy(Tee(SinkTo(w1), SinkTo(w2)), SynthSource(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 || b2.Len() == 0 {
		t.Fatal("one of the teed sinks stayed empty")
	}
	got, err := trace.ReadBinary(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := trace.ReadJSONL(bytes.NewReader(b2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, fromJSONL.Records) {
		t.Error("binary and JSONL tee outputs decode to different traces")
	}
}

// TestSourcesAllocateNothingPerBlockSteadyState guards the reuse
// contract: once the block's arrays have grown, draining more blocks
// allocates nothing in the filter path.
func TestFilterCompactsInPlace(t *testing.T) {
	tr := trace.Synthesize(synthCfg(4000))
	src := FilterReceiverLevel(TraceSource(tr), 0, trace.Logical)
	var b EventBlock
	if err := src.Next(&b); err != nil {
		t.Fatal(err)
	}
	firstArray := &b.Sender[:1][0]
	if err := src.Next(&b); err != nil {
		t.Fatal(err)
	}
	if &b.Sender[:1][0] != firstArray {
		t.Error("filter reallocated the block's backing array between calls")
	}
}
