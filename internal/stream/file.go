package stream

import (
	"io"

	"mpipredict/internal/trace"
)

// FileSource streams a trace file (binary .mpt or JSONL, sniffed by
// trace.Open) block by block. It holds the open file; callers Close it —
// Copy/Gather and the evalx/serve consumers do so through stream.Close.
type FileSource struct {
	meta
	f    *trace.File
	done bool
}

// OpenFile opens the named trace file as a block source.
func OpenFile(path string) (*FileSource, error) {
	f, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	return &FileSource{
		meta: meta{md: Metadata{App: f.App(), Procs: f.Procs()}, haveM: true},
		f:    f,
	}, nil
}

// FileOpener returns an OpenFunc that opens the named file afresh on
// every call — the multi-pass handle evalx.EvaluateSource consumes.
func FileOpener(path string) OpenFunc {
	return func() (Source, error) { return OpenFile(path) }
}

// Next implements Source.
func (s *FileSource) Next(b *EventBlock) error {
	b.Reset()
	if s.done {
		return io.EOF
	}
	for b.Len() < BlockLen {
		rec, err := s.f.Read()
		if err == io.EOF {
			s.done = true
			if b.Len() == 0 {
				return io.EOF
			}
			return nil
		}
		if err != nil {
			return err
		}
		b.Append(rec)
	}
	return nil
}

// Close closes the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }
