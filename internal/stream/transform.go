package stream

import (
	"io"
	"math/rand"
	"sort"

	"mpipredict/internal/trace"
)

// filterSource compacts each upstream block in place, keeping only the
// events the predicate accepts. It allocates nothing per block: the
// caller's block is refilled through the same backing arrays.
type filterSource struct {
	meta
	src  Source
	keep func(b *EventBlock, i int) bool
}

func (s *filterSource) Next(b *EventBlock) error {
	for {
		if err := s.src.Next(b); err != nil {
			return err // io.EOF included; b is empty then
		}
		n := 0
		for i := 0; i < b.Len(); i++ {
			if !s.keep(b, i) {
				continue
			}
			if n != i {
				b.Time[n] = b.Time[i]
				b.Receiver[n] = b.Receiver[i]
				b.Sender[n] = b.Sender[i]
				b.Size[n] = b.Size[i]
				b.Tag[n] = b.Tag[i]
				b.Kind[n] = b.Kind[i]
				b.Level[n] = b.Level[i]
				b.Op[n] = b.Op[i]
			}
			n++
		}
		b.Time = b.Time[:n]
		b.Receiver = b.Receiver[:n]
		b.Sender = b.Sender[:n]
		b.Size = b.Size[:n]
		b.Tag = b.Tag[:n]
		b.Kind = b.Kind[:n]
		b.Level = b.Level[:n]
		b.Op = b.Op[:n]
		if n > 0 {
			return nil
		}
		// The whole block was filtered away; pull the next one rather
		// than returning an empty non-EOF block.
	}
}

func (s *filterSource) Close() error { return Close(s.src) }

// FilterReceiver keeps only the events delivered to the given rank — the
// per-receiver view every evaluation consumes.
func FilterReceiver(src Source, receiver int) Source {
	return &filterSource{meta: metaFrom(src), src: src,
		keep: func(b *EventBlock, i int) bool { return b.Receiver[i] == receiver }}
}

// FilterLevel keeps only the events of one instrumentation level.
func FilterLevel(src Source, level trace.Level) Source {
	return &filterSource{meta: metaFrom(src), src: src,
		keep: func(b *EventBlock, i int) bool { return b.Level[i] == level }}
}

// FilterReceiverLevel keeps only the events of one (receiver, level)
// stream — the exact unit the paper's predictor consumes.
func FilterReceiverLevel(src Source, receiver int, level trace.Level) Source {
	return &filterSource{meta: metaFrom(src), src: src,
		keep: func(b *EventBlock, i int) bool { return b.Receiver[i] == receiver && b.Level[i] == level }}
}

// mergeSource interleaves several sources by event time.
type mergeSource struct {
	meta
	srcs    []Source
	heads   []EventBlock // current block per source
	cursors []int        // next unconsumed index per head
	done    []bool
}

// Merge interleaves the given sources into one stream ordered by event
// time, breaking ties toward the lower source index — a deterministic
// k-way merge. Events of one source keep their relative order no matter
// how the other sources interleave, so every per-(receiver, level)
// stream survives the merge intact; composing scenarios (two synthetic
// workloads sharing a network, a recorded trace plus injected noise
// traffic) is Merge plus distinct receiver ranks. The merged source
// carries the first source's metadata.
func Merge(srcs ...Source) Source {
	m := &mergeSource{
		srcs:    srcs,
		heads:   make([]EventBlock, len(srcs)),
		cursors: make([]int, len(srcs)),
		done:    make([]bool, len(srcs)),
	}
	if len(srcs) > 0 {
		m.meta = metaFrom(srcs[0])
	}
	return m
}

// fill ensures source i has an unconsumed event or is marked done.
func (m *mergeSource) fill(i int) error {
	for !m.done[i] && m.cursors[i] >= m.heads[i].Len() {
		err := m.srcs[i].Next(&m.heads[i])
		m.cursors[i] = 0
		if err == io.EOF {
			m.done[i] = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *mergeSource) Next(b *EventBlock) error {
	b.Reset()
	for b.Len() < BlockLen {
		best := -1
		var bestTime float64
		for i := range m.srcs {
			if err := m.fill(i); err != nil {
				return err
			}
			if m.done[i] {
				continue
			}
			t := m.heads[i].Time[m.cursors[i]]
			if best == -1 || t < bestTime {
				best, bestTime = i, t
			}
		}
		if best == -1 {
			break
		}
		b.Append(m.heads[best].Record(m.cursors[best]))
		m.cursors[best]++
	}
	if b.Len() == 0 {
		return io.EOF
	}
	return nil
}

func (m *mergeSource) Close() error {
	var first error
	for _, s := range m.srcs {
		if err := Close(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PerturbConfig parameterizes the deterministic perturbation transform.
type PerturbConfig struct {
	// SwapProbability is the per-position probability that an event
	// swaps places with the next event of the same (receiver, level)
	// stream — the adjacent-transposition model of arrival-order noise
	// the synthetic traces use (trace.SynthConfig.SwapProbability).
	SwapProbability float64
	// DropProbability is the per-event probability that the event is
	// lost. Dropped events consume no swap roll.
	DropProbability float64
	// PhysicalOnly restricts the perturbation to physical-level events:
	// program order (the logical level) is a function of the application
	// alone, so robustness scenarios normally perturb only arrivals.
	PhysicalOnly bool
	// Seed drives the perturbation; a fixed seed reproduces the exact
	// same perturbed stream on every run.
	Seed int64
}

// perturbSource applies seeded per-stream reordering and loss.
type perturbSource struct {
	meta
	src     Source
	cfg     PerturbConfig
	rng     *rand.Rand
	pending map[streamKey]trace.Record
	head    EventBlock     // current upstream block
	cursor  int            // next unconsumed index in head
	flushed []trace.Record // deterministic EOF flush, filled once
	flushAt int
	eof     bool
}

type streamKey struct {
	receiver int
	level    trace.Level
}

// Perturb wraps a source with deterministic, seeded perturbation:
// adjacent swaps and drops applied independently per (receiver, level)
// stream. The output depends only on the source's event order and the
// seed, so perturbed scenarios are exactly reproducible — the property
// the robustness tests pin. Time stamps travel with the events (a swap
// emits the later event with the earlier timestamp's position in the
// stream but its own Time), mirroring what arrival reordering does to a
// recorded trace.
func Perturb(src Source, cfg PerturbConfig) Source {
	return &perturbSource{
		meta:    metaFrom(src),
		src:     src,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[streamKey]trace.Record),
	}
}

func (s *perturbSource) perturbed(k streamKey) bool {
	return !s.cfg.PhysicalOnly || k.level == trace.Physical
}

func (s *perturbSource) Next(b *EventBlock) error {
	b.Reset()
	for b.Len() < BlockLen {
		if s.eof {
			// Drain the held-back tail of every stream, in a fixed
			// (receiver, level) order so the flush is deterministic.
			if s.flushed == nil {
				keys := make([]streamKey, 0, len(s.pending))
				for k := range s.pending {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool {
					if keys[i].receiver != keys[j].receiver {
						return keys[i].receiver < keys[j].receiver
					}
					return keys[i].level < keys[j].level
				})
				s.flushed = make([]trace.Record, 0, len(keys))
				for _, k := range keys {
					s.flushed = append(s.flushed, s.pending[k])
				}
			}
			if s.flushAt >= len(s.flushed) {
				break
			}
			b.Append(s.flushed[s.flushAt])
			s.flushAt++
			continue
		}
		rec, err := s.read()
		if err == io.EOF {
			s.eof = true
			continue
		}
		if err != nil {
			return err
		}
		k := streamKey{rec.Receiver, rec.Level}
		if !s.perturbed(k) {
			b.Append(rec)
			continue
		}
		if s.cfg.DropProbability > 0 && s.rng.Float64() < s.cfg.DropProbability {
			continue
		}
		if s.cfg.SwapProbability <= 0 {
			// No swap can ever fire; skip the one-event lookahead so the
			// transform is an exact identity (drops aside).
			b.Append(rec)
			continue
		}
		prev, held := s.pending[k]
		if !held {
			s.pending[k] = rec
			continue
		}
		if s.rng.Float64() < s.cfg.SwapProbability {
			// The newer event jumps ahead; the held one keeps waiting,
			// so a run of swaps lets it bubble arbitrarily far back —
			// the same semantics as trace.Synthesize's swap pass.
			b.Append(rec)
		} else {
			b.Append(prev)
			s.pending[k] = rec
		}
	}
	if b.Len() == 0 {
		return io.EOF
	}
	return nil
}

// read returns the next upstream record, pulling blocks as needed.
func (s *perturbSource) read() (trace.Record, error) {
	for s.cursor >= s.head.Len() {
		err := s.src.Next(&s.head)
		s.cursor = 0
		if err != nil {
			return trace.Record{}, err
		}
	}
	rec := s.head.Record(s.cursor)
	s.cursor++
	return rec, nil
}

func (s *perturbSource) Close() error { return Close(s.src) }
