// Package stream is the batched event pipeline every layer of the
// reproduction moves trace events through: producers (the simulated MPI
// runtime, the synthetic generators, the on-disk codecs) fill columnar
// EventBlocks, consumers (the evaluation harness, the serving registry,
// the codecs again) drain them, and a small set of composable transforms
// — receiver/level filters, deterministic perturbation, k-way merge —
// sits in between.
//
// The paper's predictor is an online algorithm; this package is the
// plumbing that lets the reproduction treat it that way end to end:
// evaluation and replay consume events in constant memory no matter how
// long the trace is, and the per-event dispatch cost of the old
// record-at-a-time loops is amortized over a whole block.
//
// Ownership and reuse rules (the contract DESIGN.md §6 specifies):
//
//   - The caller of Next owns one EventBlock and passes the same block to
//     every call; Next resets it and refills it, reusing the backing
//     arrays, so a drained pipeline allocates nothing per block in steady
//     state.
//   - A Source must not retain the block or its slices across calls.
//   - A Sink may read the block during Write but must copy anything it
//     keeps; the producer will overwrite the arrays on the next fill.
//   - Blocks carry no Seq numbers (exactly like the binary codec):
//     within one (receiver, level) pair events appear in stream order,
//     and consumers that need sequence numbers reassign them by counting.
package stream

import (
	"io"
	"sort"

	"mpipredict/internal/trace"
)

// BlockLen is the default number of events a source packs into one block:
// large enough to amortize per-block dispatch, small enough that a
// handful of in-flight blocks stay cache- and allocation-friendly.
const BlockLen = 1024

// EventBlock is a columnar batch of trace events: one slice per record
// field, all of the same length. The layout keeps the hot consumers —
// the predictor evaluation loops, the serving registry's block observe —
// scanning dense int64 arrays instead of chasing per-record structs.
// Sender is widened to int64 (the value type every predictor consumes),
// so the Sender and Size columns feed Observe loops without conversion.
type EventBlock struct {
	Time     []float64
	Receiver []int
	Sender   []int64
	Size     []int64
	Tag      []int
	Kind     []trace.Kind
	Level    []trace.Level
	Op       []string
}

// Len returns the number of events in the block.
func (b *EventBlock) Len() int { return len(b.Sender) }

// Reset truncates the block to zero events, keeping the backing arrays
// for reuse.
func (b *EventBlock) Reset() {
	b.Time = b.Time[:0]
	b.Receiver = b.Receiver[:0]
	b.Sender = b.Sender[:0]
	b.Size = b.Size[:0]
	b.Tag = b.Tag[:0]
	b.Kind = b.Kind[:0]
	b.Level = b.Level[:0]
	b.Op = b.Op[:0]
}

// Append adds one record to the block. The record's Seq is dropped —
// blocks carry stream order, not sequence numbers.
func (b *EventBlock) Append(r trace.Record) {
	b.Time = append(b.Time, r.Time)
	b.Receiver = append(b.Receiver, r.Receiver)
	b.Sender = append(b.Sender, int64(r.Sender))
	b.Size = append(b.Size, r.Size)
	b.Tag = append(b.Tag, r.Tag)
	b.Kind = append(b.Kind, r.Kind)
	b.Level = append(b.Level, r.Level)
	b.Op = append(b.Op, r.Op)
}

// Record reassembles event i as a trace.Record (Seq zero; consumers that
// need one reassign it).
func (b *EventBlock) Record(i int) trace.Record {
	return trace.Record{
		Time:     b.Time[i],
		Receiver: b.Receiver[i],
		Sender:   int(b.Sender[i]),
		Size:     b.Size[i],
		Tag:      b.Tag[i],
		Kind:     b.Kind[i],
		Level:    b.Level[i],
		Op:       b.Op[i],
	}
}

// Source produces blocks of events. Next resets the caller's block,
// refills it (at most BlockLen events) and returns nil when at least one
// event was produced; it returns io.EOF — with an empty block — when the
// stream is exhausted, and any other error on failure.
type Source interface {
	Next(b *EventBlock) error
}

// Sink consumes blocks of events. Write may read the block but must not
// retain it or its slices.
type Sink interface {
	Write(b *EventBlock) error
}

// OpenFunc opens a fresh Source over the same event stream. Multi-pass
// consumers — evalx.EvaluateSource needs one pass per concurrent stream
// view — take an OpenFunc instead of a Source so each pass reads from the
// beginning; implementations reopen the file, rewind the trace cursor or
// reseed the generator. Sources handed out by an OpenFunc are closed with
// Close by the consumer.
type OpenFunc func() (Source, error)

// Metadata is the run identity a source may carry: the workload name and
// rank count of the trace file header.
type Metadata struct {
	App   string
	Procs int
}

// MetaOf reports the metadata of sources that carry one (file and trace
// sources, and every transform over them). Sources without the notion —
// hand-rolled generators — report ok == false.
func MetaOf(s Source) (Metadata, bool) {
	if m, ok := s.(interface{ Meta() (Metadata, bool) }); ok {
		return m.Meta()
	}
	return Metadata{}, false
}

// Close closes a source when it holds resources (file sources do);
// sources without a Close are left alone. It is the counterpart of
// OpenFunc: consumers close every source they opened.
func Close(s Source) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// meta is the embeddable Metadata carrier the package's own sources and
// transforms share.
type meta struct {
	md    Metadata
	haveM bool
}

func (m meta) Meta() (Metadata, bool) { return m.md, m.haveM }

func metaFrom(s Source) meta {
	md, ok := MetaOf(s)
	return meta{md: md, haveM: ok}
}

// traceSource streams an in-memory trace in record order.
type traceSource struct {
	meta
	tr *trace.Trace
	i  int
}

// TraceSource returns a Source over the records of an in-memory trace, in
// their stored order (within one (receiver, level) pair that is Seq
// order). It carries the trace's App/Procs metadata.
func TraceSource(tr *trace.Trace) Source {
	return &traceSource{meta: meta{md: Metadata{App: tr.App, Procs: tr.Procs}, haveM: true}, tr: tr}
}

func (s *traceSource) Next(b *EventBlock) error {
	b.Reset()
	if s.i >= len(s.tr.Records) {
		return io.EOF
	}
	end := s.i + BlockLen
	if end > len(s.tr.Records) {
		end = len(s.tr.Records)
	}
	for ; s.i < end; s.i++ {
		b.Append(s.tr.Records[s.i])
	}
	return nil
}

// RecordWriter is the record-at-a-time writing side both trace codecs
// expose (trace.Writer for binary, trace.JSONLWriter for JSONL).
type RecordWriter interface {
	WriteRecord(trace.Record) error
}

// recordSink adapts a RecordWriter into a Sink.
type recordSink struct{ w RecordWriter }

// SinkTo returns a Sink that writes every event of every block through
// the given record writer — the bridge from the block pipeline onto the
// streaming trace codecs.
func SinkTo(w RecordWriter) Sink { return recordSink{w} }

func (s recordSink) Write(b *EventBlock) error {
	for i := 0; i < b.Len(); i++ {
		if err := s.w.WriteRecord(b.Record(i)); err != nil {
			return err
		}
	}
	return nil
}

// Tee returns a Sink that writes every block to all of the given sinks,
// in order, stopping at the first error.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Write(b *EventBlock) error {
	for _, s := range t {
		if err := s.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Copy drains src into dst one block at a time, reusing a single block,
// and returns the number of events moved.
func Copy(dst Sink, src Source) (int64, error) {
	var b EventBlock
	var n int64
	for {
		err := src.Next(&b)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n += int64(b.Len())
		if err := dst.Write(&b); err != nil {
			return n, err
		}
	}
}

// Receivers drains a source and returns the distinct receiver ranks it
// delivered to, sorted — the one-pass scan streaming replays use to pick
// a receiver without materializing the trace.
func Receivers(src Source) ([]int, error) {
	seen := map[int]bool{}
	var b EventBlock
	for {
		err := src.Next(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, r := range b.Receiver {
			seen[r] = true
		}
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out, nil
}

// Gather materializes a source into an in-memory trace, taking App/Procs
// from the source's metadata when it carries one. Seq numbers are
// reassigned from stream order, exactly as the codec readers do. It is
// the bridge back from the pipeline to consumers that genuinely need a
// whole trace.
func Gather(src Source) (*trace.Trace, error) {
	md, _ := MetaOf(src)
	tr := trace.New(md.App, md.Procs)
	var b EventBlock
	for {
		err := src.Next(&b)
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < b.Len(); i++ {
			tr.Append(b.Record(i))
		}
	}
}
