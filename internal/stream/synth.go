package stream

import (
	"io"
	"math/rand"

	"mpipredict/internal/trace"
)

// synthSource generates the exact event stream trace.Synthesize builds —
// the full logical repetition of the pattern followed by the physical
// stream with seeded adjacent swaps — without ever materializing it. The
// physical swap pass needs only one held-back message: at position i the
// choice is always between the carried-forward element and the original
// i+1-th pattern element, so the in-memory swap loop collapses to a
// single-element lookahead. That is what makes tracegen -stream able to
// generate traces far larger than RAM while staying byte-identical to
// the in-memory path on small ones (pinned by the tracegen tests).
type synthSource struct {
	meta
	cfg trace.SynthConfig
	n   int // events per level

	i       int // next index within the current level
	level   trace.Level
	rng     *rand.Rand
	pending trace.SynthMessage // physical pass: element currently at position i
	primed  bool
	done    bool
}

// SynthSource returns a constant-memory Source over the synthetic trace
// Synthesize(cfg) would build, in the identical record order.
func SynthSource(cfg trace.SynthConfig) Source {
	n := len(cfg.Pattern) * cfg.Repetitions
	if cfg.Events > 0 {
		n = cfg.Events
	}
	if len(cfg.Pattern) == 0 {
		n = 0
	}
	return &synthSource{
		meta:  meta{md: Metadata{App: cfg.App, Procs: cfg.Procs}, haveM: true},
		cfg:   cfg,
		n:     n,
		level: trace.Logical,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (s *synthSource) at(i int) trace.SynthMessage {
	return s.cfg.Pattern[i%len(s.cfg.Pattern)]
}

func (s *synthSource) record(m trace.SynthMessage, pos int) trace.Record {
	return trace.Record{
		Time:     float64(pos),
		Receiver: s.cfg.Receiver,
		Sender:   m.Sender,
		Size:     m.Size,
		Kind:     trace.PointToPoint,
		Op:       "send",
		Level:    s.level,
	}
}

func (s *synthSource) Next(b *EventBlock) error {
	b.Reset()
	for b.Len() < BlockLen && !s.done {
		switch s.level {
		case trace.Logical:
			if s.i >= s.n {
				s.level = trace.Physical
				s.i = 0
				continue
			}
			b.Append(s.record(s.at(s.i), s.i))
			s.i++
		case trace.Physical:
			if s.n == 0 {
				s.done = true
				continue
			}
			if !s.primed {
				s.pending = s.at(0)
				s.primed = true
			}
			if s.i == s.n-1 {
				b.Append(s.record(s.pending, s.i))
				s.done = true
				continue
			}
			next := s.at(s.i + 1)
			if s.cfg.SwapProbability > 0 && s.rng.Float64() < s.cfg.SwapProbability {
				// The later message arrives early; the carried one keeps
				// waiting and can bubble further — the same semantics as
				// the in-memory swap loop.
				b.Append(s.record(next, s.i))
			} else {
				b.Append(s.record(s.pending, s.i))
				s.pending = next
			}
			s.i++
		}
	}
	if b.Len() == 0 {
		return io.EOF
	}
	return nil
}
