package workloads

import (
	"fmt"

	"mpipredict/internal/simmpi"
)

// NAS CG (conjugate gradient) communication skeleton.
//
// CG arranges the processes in a num_proc_rows x num_proc_cols grid
// (columns >= rows, both powers of two). Every inner CG iteration does
//
//   - l2npcols partial-sum exchanges of the local result vector across the
//     processor row,
//   - one exchange with the transpose partner, and
//   - two scalar reductions (rho and beta), each as l2npcols pairwise
//     exchanges of 8 bytes,
//
// all with blocking Sendrecv pairs — CG uses only point-to-point messages
// (Table 1 reports zero collectives). Two message sizes dominate: the
// vector segment (tens of kilobytes for class A) and the 8-byte scalars.
// With 15 outer iterations of 26 inner steps the per-process receive
// counts land at roughly 1.5k/2.7k/2.7k/3.9k for 4/8/16/32 processes,
// matching the shape of Table 1 (1679/2942/2942/4204), including the fact
// that the 8- and 16-process counts are identical.
//
// The reference code additionally exchanges a residual norm at the end of
// each outer iteration; this skeleton folds that traffic into the inner
// loop (one extra inner step) so that the per-receiver stream keeps a
// single repeating pattern, which is the property the paper measures.

const (
	cgTagVector = 200 + iota
	cgTagTranspose
	cgTagRho
	cgTagBeta
	cgTagNorm
)

const (
	cgNA          = 14000 // class A matrix order
	cgOuterIters  = 15    // class A niter
	cgInnerIters  = 26    // cgitmax plus the folded-in residual exchange
	cgScalarBytes = 8
)

func init() {
	register(entry{
		info: Info{
			Name:              "cg",
			PaperProcs:        []int{4, 8, 16, 32},
			DefaultIterations: cgOuterIters,
			Description:       "NAS CG skeleton: transpose exchange plus row-wise partial-sum and scalar reductions, point-to-point only",
		},
		validProcs: func(p int) error {
			if !isPowerOfTwo(p) || p < 2 {
				return fmt.Errorf("workloads: cg requires a power-of-two number of processes >= 2, got %d", p)
			}
			return nil
		},
		build: buildCG,
		receiver: func(procs int) int {
			// Rank 1 is off the transpose diagonal for every grid, so it
			// exchanges with a real partner each iteration.
			if procs > 1 {
				return 1
			}
			return 0
		},
	})
}

// cgLayout mirrors the processor grid setup of cg.f: the grid has
// num_proc_cols >= num_proc_rows, both powers of two.
type cgLayout struct {
	procs    int
	rows     int
	cols     int
	l2npcols int
}

func newCGLayout(p int) cgLayout {
	l2p := log2Ceil(p)
	cols := 1 << ((l2p + 1) / 2)
	rows := p / cols
	l2npcols := log2Ceil(cols)
	return cgLayout{procs: p, rows: rows, cols: cols, l2npcols: l2npcols}
}

// transposePartner returns the rank this process exchanges the q vector
// with, following the exch_proc computation of cg.f.
func (l cgLayout) transposePartner(me int) int {
	if l.rows == l.cols {
		procRow := me / l.cols
		procCol := me % l.cols
		return procCol*l.cols + procRow
	}
	// Twice as many columns as rows: pair even/odd ranks across the
	// half-sized square grid.
	half := me / 2
	base := 2 * ((half%l.rows)*l.rows + half/l.rows)
	return base + me%2
}

// reducePartners returns the l2npcols exchange partners used for the
// row-wise reductions, in exchange order.
func (l cgLayout) reducePartners(me int) []int {
	procRow := me / l.cols
	procCol := me % l.cols
	out := make([]int, 0, l.l2npcols)
	for i := 0; i < l.l2npcols; i++ {
		partnerCol := procCol ^ (1 << i)
		out = append(out, procRow*l.cols+partnerCol)
	}
	return out
}

// cgVectorBytes is the size of the exchanged vector segment: na/rows
// doubles.
func cgVectorBytes(l cgLayout) int64 {
	return int64(cgNA / l.rows * 8)
}

func buildCG(spec Spec) simmpi.Program {
	layout := newCGLayout(spec.Procs)
	vecBytes := cgVectorBytes(layout)
	outer := spec.Iterations

	return func(r *simmpi.Rank) {
		me := r.ID()
		transpose := layout.transposePartner(me)
		partners := layout.reducePartners(me)

		exchange := func(partner, tag int, size int64) {
			if partner == me {
				// Diagonal ranks keep their segment locally, as cg.f does.
				return
			}
			r.Sendrecv(partner, tag, size, partner, tag)
		}

		for it := 0; it < outer; it++ {
			for inner := 0; inner < cgInnerIters; inner++ {
				// Sparse matrix-vector product followed by the row-wise
				// partial sum of the result vector.
				r.Compute(400)
				for _, p := range partners {
					exchange(p, cgTagVector, vecBytes)
				}
				// Transpose exchange of the q vector.
				exchange(transpose, cgTagTranspose, vecBytes)
				// Scalar reductions for rho and beta.
				r.Compute(80)
				for _, p := range partners {
					exchange(p, cgTagRho, cgScalarBytes)
				}
				for _, p := range partners {
					exchange(p, cgTagBeta, cgScalarBytes)
				}
			}
		}
	}
}
