package workloads

import (
	"fmt"

	"mpipredict/internal/simmpi"
)

// NAS IS (integer sort) communication skeleton.
//
// IS is the collective-dominated benchmark of the study: each of its 11
// rankings (one warm-up plus 10 timed iterations, class A) performs
//
//   - a reduction of the per-bucket key counts followed by a broadcast of
//     the result (the reference code uses allreduce; reduce+broadcast
//     keeps the per-leaf message count at the two collective messages per
//     iteration implied by Table 1),
//   - an Alltoall of the bucket boundary information (small, fixed size),
//   - an Alltoallv of the actual keys (large, roughly N/p^2 bytes per
//     pair), and
//   - one point-to-point message to the next rank carrying boundary keys
//     for the partial verification — the 11 point-to-point messages of
//     Table 1.
//
// Each rank therefore receives about 2(p-1) + 2 collective messages per
// iteration: 89/177/353/705 over the run for 4/8/16/32 processes in
// Table 1, and this skeleton reproduces those counts almost exactly.
// Three message sizes dominate: the bucket-count block, the key block and
// the 8-byte verification message; the senders cover every other rank,
// which is why physical-level prediction is hardest for IS.

const (
	isTagVerify = 400 + iota
)

const (
	isTotalKeys   = 1 << 23 // class A: 2^23 keys
	isBucketBytes = 2048    // bucket-count exchange block
	isKeyBytes    = 4       // bytes per key
)

func init() {
	register(entry{
		info: Info{
			Name:              "is",
			PaperProcs:        []int{4, 8, 16, 32},
			DefaultIterations: 11, // 1 warm-up + 10 timed rankings
			Description:       "NAS IS skeleton: per-iteration reduce+bcast, alltoall and alltoallv plus one verification point-to-point message",
		},
		validProcs: func(p int) error {
			if !isPowerOfTwo(p) || p < 2 {
				return fmt.Errorf("workloads: is requires a power-of-two number of processes >= 2, got %d", p)
			}
			return nil
		},
		build: buildIS,
		receiver: func(procs int) int {
			// Rank 2 is an interior node of the binomial reduce tree (it
			// receives one reduce message and one broadcast message per
			// iteration), which reproduces the ~2(p-1)+2 collective
			// messages per iteration implied by Table 1.
			if procs > 2 {
				return 2
			}
			return procs - 1
		},
	})
}

// isKeyBlockBytes is the per-pair payload of the key redistribution: the
// class-A keys divided evenly over p buckets and again over p senders.
func isKeyBlockBytes(p int) int64 {
	return int64(isTotalKeys / p / p * isKeyBytes)
}

func buildIS(spec Spec) simmpi.Program {
	p := spec.Procs
	keyBlock := isKeyBlockBytes(p)
	iters := spec.Iterations

	return func(r *simmpi.Rank) {
		next := (r.ID() + 1) % p
		prev := (r.ID() - 1 + p) % p

		keySizes := make([]int64, p)
		for i := range keySizes {
			keySizes[i] = keyBlock
		}

		for it := 0; it < iters; it++ {
			// Local bucket sort of the keys.
			r.Compute(3000)
			// Global bucket size counts: reduce to rank 0, broadcast back.
			r.Reduce(0, isBucketBytes)
			r.Bcast(0, isBucketBytes)
			// Bucket boundary info.
			r.Alltoall(isBucketBytes)
			// Key redistribution.
			r.Alltoallv(keySizes)
			// Partial verification: pass boundary keys to the next rank.
			r.Compute(800)
			r.Send(next, isTagVerify, 8)
			r.Recv(prev, isTagVerify)
		}
	}
}
