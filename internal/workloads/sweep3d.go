package workloads

import (
	"fmt"

	"mpipredict/internal/simmpi"
)

// ASCI Sweep3D communication skeleton.
//
// Sweep3D performs discrete-ordinates transport sweeps over a 3D grid
// decomposed in the i and j dimensions over a 2D processor grid. For each
// of the 8 octants the sweep proceeds as a wavefront: every rank receives
// a block of angular fluxes from its upstream i neighbour and its
// upstream j neighbour (when they exist), computes the block, and sends
// downstream. The k dimension and the angle dimension are pipelined in
// blocks, so each octant contributes several such exchanges.
//
// With the blocking used here a corner rank receives 8*blocks messages
// per iteration from its two neighbours, reproducing the per-process
// counts of Table 1 (1438 messages for 6 processes, 949 for 16 and 32)
// and the small sender set (2) and size set (2: i faces vs j faces) that
// make Sweep3D highly predictable even at the physical level. Per
// iteration three global reductions of the flux error are performed
// (reduce+broadcast), giving the 36 collective messages of Table 1 over
// the 12 iterations.

const (
	sweepTagI = 500 + iota
	sweepTagJ
)

func init() {
	register(entry{
		info: Info{
			Name:              "sweep3d",
			PaperProcs:        []int{6, 16, 32},
			DefaultIterations: 12,
			Description:       "ASCI Sweep3D skeleton: 8-octant wavefront sweeps over a 2D processor grid with pipelined k/angle blocks",
		},
		validProcs: func(p int) error {
			if p < 2 {
				return fmt.Errorf("workloads: sweep3d requires at least 2 processes, got %d", p)
			}
			return nil
		},
		build: buildSweep3D,
		receiver: func(procs int) int {
			// The south-east corner rank has exactly two neighbours (north
			// and west), matching the two senders of Table 1, and is a
			// leaf of the binomial reduce tree, so it sees exactly one
			// message per reduce+broadcast pair (36 over the run).
			return procs - 1
		},
	})
}

// sweepBlocks returns the number of pipelined k/angle blocks per octant,
// calibrated against the per-process message counts of Table 1: the
// 6-process run of the paper used a deeper pipeline than the 16- and
// 32-process runs.
func sweepBlocks(p int) int {
	if p <= 8 {
		return 15
	}
	return 10
}

// sweepSizes returns the i-direction and j-direction face block sizes.
func sweepSizes(rows, cols int) (iFace, jFace int64) {
	// 6 angles per block, 8-byte fluxes, on faces whose extent shrinks
	// with the processor grid.
	iFace = int64(6 * 8 * (160 / rows) * 2)
	jFace = int64(6 * 8 * (160 / cols) * 3)
	return
}

func buildSweep3D(spec Spec) simmpi.Program {
	rows, cols := grid2D(spec.Procs)
	blocks := sweepBlocks(spec.Procs)
	iFace, jFace := sweepSizes(rows, cols)
	iters := spec.Iterations

	return func(r *simmpi.Rank) {
		me := r.ID()
		row, col := me/cols, me%cols
		at := func(rr, cc int) int {
			if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
				return -1
			}
			return rr*cols + cc
		}
		west, east := at(row, col-1), at(row, col+1)
		north, south := at(row-1, col), at(row+1, col)

		// The 8 octants: each pairs a sweep direction in i (east/west)
		// with one in j (north/south); two k directions double the count.
		type octant struct {
			iUp, iDown int // upstream / downstream in the i (column) direction
			jUp, jDown int // upstream / downstream in the j (row) direction
		}
		octants := []octant{
			{west, east, north, south},
			{west, east, south, north},
			{east, west, north, south},
			{east, west, south, north},
			{west, east, north, south},
			{west, east, south, north},
			{east, west, north, south},
			{east, west, south, north},
		}

		for it := 0; it < iters; it++ {
			for _, oct := range octants {
				for b := 0; b < blocks; b++ {
					if oct.iUp >= 0 {
						r.Recv(oct.iUp, sweepTagI)
					}
					if oct.jUp >= 0 {
						r.Recv(oct.jUp, sweepTagJ)
					}
					// The i-direction face is forwarded as soon as the block
					// is computed; the j-direction face goes out after the
					// remaining work on the block, as in the reference code.
					// The resulting systematic stagger keeps the arrival
					// order of i and j faces stable at the downstream ranks.
					r.Compute(120)
					if oct.iDown >= 0 {
						r.Send(oct.iDown, sweepTagI, iFace)
					}
					r.Compute(400)
					if oct.jDown >= 0 {
						r.Send(oct.jDown, sweepTagJ, jFace)
					}
				}
			}
			// Flux error reductions every iteration.
			for i := 0; i < 3; i++ {
				r.Reduce(0, 24)
				r.Bcast(0, 24)
			}
		}
	}
}
