// Package workloads provides communication skeletons of the five
// applications the paper studies: NAS BT, CG, LU and IS (class A) and the
// ASCI Sweep3D kernel.
//
// The paper only uses these codes as generators of MPI message streams —
// the numerical results never matter. Each skeleton therefore reproduces
// the *communication structure* of the original program (which partners a
// rank talks to, in which order, how often, with which message sizes, and
// which collective operations appear), calibrated so that the per-process
// message counts, the number of distinct senders and the number of
// distinct message sizes land close to Table 1 of the paper. The actual
// computation is replaced by Compute phases whose durations provide the
// load-imbalance component of the physical-level randomness.
//
// Every skeleton is deterministic at the logical level: the order of
// receive completions per rank depends only on the program, never on the
// network, which is the property the paper exploits.
package workloads

import (
	"fmt"
	"sort"

	"mpipredict/internal/simmpi"
)

// Spec selects one workload instance.
type Spec struct {
	// Name is one of the names returned by Names ("bt", "cg", "lu", "is",
	// "sweep3d").
	Name string
	// Procs is the number of ranks. Each workload accepts the process
	// counts used in the paper plus the natural generalisation of its
	// decomposition (e.g. any perfect square for BT).
	Procs int
	// Iterations overrides the number of outer iterations (time steps).
	// Zero selects the class-A-like default listed in Info. Small values
	// keep unit tests fast; the experiments use the default.
	Iterations int
}

// Info describes a workload in the catalog.
type Info struct {
	// Name is the registry key.
	Name string
	// PaperProcs are the process counts used in the paper's evaluation.
	PaperProcs []int
	// DefaultIterations is the class-A-like outer iteration count.
	DefaultIterations int
	// Description summarises the communication structure.
	Description string
}

// builder constructs the rank program for a validated spec.
type builder func(spec Spec) simmpi.Program

type entry struct {
	info       Info
	validProcs func(p int) error
	build      builder
	receiver   func(procs int) int
}

var catalog = map[string]entry{}

func register(e entry) {
	if _, dup := catalog[e.info.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", e.info.Name))
	}
	catalog[e.info.Name] = e
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the catalog information for a workload.
func Lookup(name string) (Info, error) {
	e, ok := catalog[name]
	if !ok {
		return Info{}, fmt.Errorf("workloads: unknown workload %q (known: %v)", name, Names())
	}
	return e.info, nil
}

// Catalog returns information about every registered workload, sorted by
// name.
func Catalog() []Info {
	out := make([]Info, 0, len(catalog))
	for _, n := range Names() {
		out = append(out, catalog[n].info)
	}
	return out
}

// Validate reports whether the spec names a known workload with an
// acceptable process count and iteration override.
func Validate(spec Spec) error {
	e, ok := catalog[spec.Name]
	if !ok {
		return fmt.Errorf("workloads: unknown workload %q (known: %v)", spec.Name, Names())
	}
	if spec.Iterations < 0 {
		return fmt.Errorf("workloads: Iterations must be >= 0, got %d", spec.Iterations)
	}
	return e.validProcs(spec.Procs)
}

// Program builds the rank program for the spec.
func Program(spec Spec) (simmpi.Program, error) {
	if err := Validate(spec); err != nil {
		return nil, err
	}
	e := catalog[spec.Name]
	if spec.Iterations == 0 {
		spec.Iterations = e.info.DefaultIterations
	}
	return e.build(spec), nil
}

// Iterations resolves the effective iteration count of a spec (applying
// the default when the override is zero).
func Iterations(spec Spec) (int, error) {
	if err := Validate(spec); err != nil {
		return 0, err
	}
	if spec.Iterations != 0 {
		return spec.Iterations, nil
	}
	return catalog[spec.Name].info.DefaultIterations, nil
}

// TypicalReceiver returns the rank whose message stream the experiments
// trace for a given workload and process count. The paper traces "a
// particular process" (process 3 for BT); for the other codes we pick a
// rank whose neighbour count matches the per-process message counts
// reported in Table 1 (for example an edge rank for LU).
func TypicalReceiver(name string, procs int) (int, error) {
	e, ok := catalog[name]
	if !ok {
		return 0, fmt.Errorf("workloads: unknown workload %q (known: %v)", name, Names())
	}
	if err := e.validProcs(procs); err != nil {
		return 0, err
	}
	return e.receiver(procs), nil
}

// PaperSpecs returns one Spec per (workload, process count) pair evaluated
// in the paper, in the order of Table 1.
func PaperSpecs() []Spec {
	var out []Spec
	for _, name := range []string{"bt", "cg", "lu", "is", "sweep3d"} {
		info := catalog[name].info
		for _, p := range info.PaperProcs {
			out = append(out, Spec{Name: name, Procs: p})
		}
	}
	return out
}

// --- shared helpers ---

// isPerfectSquare reports whether p = q*q and returns q.
func isPerfectSquare(p int) (int, bool) {
	for q := 1; q*q <= p; q++ {
		if q*q == p {
			return q, true
		}
	}
	return 0, false
}

// isPowerOfTwo reports whether p is a power of two.
func isPowerOfTwo(p int) bool { return p > 0 && p&(p-1) == 0 }

// grid2D returns a near-square 2D factorisation (rows x cols) of p with
// rows >= cols, matching the decompositions the NAS codes use.
func grid2D(p int) (rows, cols int) {
	cols = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			cols = d
		}
	}
	return p / cols, cols
}

// log2Ceil returns ceil(log2(p)) for p >= 1.
func log2Ceil(p int) int {
	n := 0
	for v := 1; v < p; v <<= 1 {
		n++
	}
	return n
}
