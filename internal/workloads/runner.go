package workloads

import (
	"fmt"

	"mpipredict/internal/simmpi"
	"mpipredict/internal/simnet"
	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// RunConfig bundles everything needed to simulate one workload instance.
type RunConfig struct {
	// Spec selects the workload, the process count and optionally an
	// iteration override.
	Spec Spec
	// Net is the interconnect model; the zero value selects
	// simnet.DefaultConfig (jitter and imbalance on).
	Net simnet.Config
	// Seed drives the simulation's stochastic elements.
	Seed int64
	// TraceAllReceivers records the streams of every rank. By default only
	// the workload's typical receiver (the rank the paper's experiments
	// trace) is recorded, which keeps memory bounded for the large runs.
	TraceAllReceivers bool
	// TraceReceivers records the streams of exactly these ranks. It
	// overrides the default single-receiver behaviour; it is ignored when
	// TraceAllReceivers is set.
	TraceReceivers []int
}

// resolve validates the run configuration and builds the simulator
// config and rank program it selects.
func resolve(rc RunConfig) (simmpi.Config, simmpi.Program, error) {
	if err := Validate(rc.Spec); err != nil {
		return simmpi.Config{}, nil, err
	}
	program, err := Program(rc.Spec)
	if err != nil {
		return simmpi.Config{}, nil, err
	}
	net := rc.Net
	if net == (simnet.Config{}) {
		net = simnet.DefaultConfig()
	}
	receivers := rc.TraceReceivers
	if rc.TraceAllReceivers {
		receivers = nil
	} else if len(receivers) == 0 {
		recv, err := TypicalReceiver(rc.Spec.Name, rc.Spec.Procs)
		if err != nil {
			return simmpi.Config{}, nil, err
		}
		receivers = []int{recv}
	}
	return simmpi.Config{
		App:            rc.Spec.Name,
		Procs:          rc.Spec.Procs,
		Net:            net,
		Seed:           rc.Seed,
		TraceReceivers: receivers,
	}, program, nil
}

// Run simulates the workload and returns its trace. The trace contains
// logical and physical receive streams for the selected receivers.
func Run(rc RunConfig) (*trace.Trace, error) {
	cfg, program, err := resolve(rc)
	if err != nil {
		return nil, err
	}
	tr, err := simmpi.Run(cfg, program)
	if err != nil {
		return nil, fmt.Errorf("workloads: running %s on %d procs: %w", rc.Spec.Name, rc.Spec.Procs, err)
	}
	return tr, nil
}

// RunToSink simulates the workload and streams its events into the sink
// as blocks, never materializing the trace — the export path tracegen
// -stream uses. The emitted event order is identical to the order Run
// stores, so a streamed export is byte-identical to an in-memory one.
func RunToSink(rc RunConfig, sink stream.Sink) error {
	cfg, program, err := resolve(rc)
	if err != nil {
		return err
	}
	if err := simmpi.RunToSink(cfg, program, sink); err != nil {
		return fmt.Errorf("workloads: running %s on %d procs: %w", rc.Spec.Name, rc.Spec.Procs, err)
	}
	return nil
}

// ReplayReceiver picks the receiver to evaluate when replaying a trace
// loaded from disk: the workload's typical receiver when the trace's app
// is in the catalog and that rank was traced, otherwise the trace's sole
// traced receiver. Traces of unknown applications with several traced
// receivers are ambiguous and rejected — the caller must choose.
func ReplayReceiver(tr *trace.Trace) (int, error) {
	return PickReplayReceiver(tr.App, tr.Procs, tr.Receivers())
}

// PickReplayReceiver is ReplayReceiver for streamed traces: the caller
// supplies the header metadata and the set of traced receivers (sorted,
// as a one-pass scan or trace.Receivers yields them) instead of a
// materialized trace.
func PickReplayReceiver(app string, procs int, receivers []int) (int, error) {
	if len(receivers) == 0 {
		return 0, fmt.Errorf("workloads: trace %q holds no receive events", app)
	}
	if _, err := Lookup(app); err == nil {
		if typical, err := TypicalReceiver(app, procs); err == nil {
			for _, r := range receivers {
				if r == typical {
					return typical, nil
				}
			}
		}
	}
	if len(receivers) == 1 {
		return receivers[0], nil
	}
	return 0, fmt.Errorf("workloads: trace %q has %d traced receivers %v and no recognisable typical one; pick a receiver explicitly",
		app, len(receivers), receivers)
}
