package workloads

import (
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
)

func TestCatalogAndNames(t *testing.T) {
	names := Names()
	want := []string{"bt", "cg", "is", "lu", "sweep3d"}
	if len(names) != len(want) {
		t.Fatalf("names=%v want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names=%v want %v", names, want)
		}
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d entries", len(cat))
	}
	for _, info := range cat {
		if info.DefaultIterations <= 0 {
			t.Errorf("%s has no default iterations", info.Name)
		}
		if len(info.PaperProcs) == 0 {
			t.Errorf("%s has no paper process counts", info.Name)
		}
		if info.Description == "" {
			t.Errorf("%s has no description", info.Name)
		}
	}
	if _, err := Lookup("bt"); err != nil {
		t.Errorf("Lookup(bt): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown workload should fail")
	}
}

func TestValidateSpecs(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Name: "bt", Procs: 4}, true},
		{Spec{Name: "bt", Procs: 9}, true},
		{Spec{Name: "bt", Procs: 25}, true},
		{Spec{Name: "bt", Procs: 8}, false},
		{Spec{Name: "bt", Procs: 1}, false},
		{Spec{Name: "cg", Procs: 16}, true},
		{Spec{Name: "cg", Procs: 12}, false},
		{Spec{Name: "lu", Procs: 32}, true},
		{Spec{Name: "lu", Procs: 2}, false},
		{Spec{Name: "lu", Procs: 6}, false},
		{Spec{Name: "is", Procs: 8}, true},
		{Spec{Name: "is", Procs: 10}, false},
		{Spec{Name: "sweep3d", Procs: 6}, true},
		{Spec{Name: "sweep3d", Procs: 1}, false},
		{Spec{Name: "unknown", Procs: 4}, false},
		{Spec{Name: "bt", Procs: 4, Iterations: -1}, false},
	}
	for _, c := range cases {
		err := Validate(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v)=%v want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestPaperSpecsCoverTable1(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 19 {
		t.Fatalf("Table 1 has 19 rows, got %d specs", len(specs))
	}
	for _, s := range specs {
		if err := Validate(s); err != nil {
			t.Errorf("paper spec %+v invalid: %v", s, err)
		}
	}
}

func TestIterationsResolution(t *testing.T) {
	n, err := Iterations(Spec{Name: "bt", Procs: 4})
	if err != nil || n != 200 {
		t.Errorf("default bt iterations=%d,%v want 200", n, err)
	}
	n, err = Iterations(Spec{Name: "bt", Procs: 4, Iterations: 7})
	if err != nil || n != 7 {
		t.Errorf("override iterations=%d,%v want 7", n, err)
	}
	if _, err := Iterations(Spec{Name: "zz", Procs: 4}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestTypicalReceiverInRange(t *testing.T) {
	for _, s := range PaperSpecs() {
		recv, err := TypicalReceiver(s.Name, s.Procs)
		if err != nil {
			t.Fatalf("TypicalReceiver(%s, %d): %v", s.Name, s.Procs, err)
		}
		if recv < 0 || recv >= s.Procs {
			t.Errorf("TypicalReceiver(%s, %d)=%d out of range", s.Name, s.Procs, recv)
		}
	}
	if _, err := TypicalReceiver("nope", 4); err != nil {
		// expected
	} else {
		t.Error("unknown workload should fail")
	}
	if _, err := TypicalReceiver("bt", 5); err == nil {
		t.Error("invalid proc count should fail")
	}
}

func TestProgramUnknownWorkload(t *testing.T) {
	if _, err := Program(Spec{Name: "nope", Procs: 4}); err == nil {
		t.Error("Program should reject unknown workloads")
	}
}

// runSmall simulates a workload with a reduced iteration count and
// deterministic (noiseless) network so structural assertions are exact.
func runSmall(t *testing.T, name string, procs, iters int, noiseless bool) *trace.Trace {
	t.Helper()
	net := simnet.DefaultConfig()
	if noiseless {
		net = simnet.NoiselessConfig()
	}
	tr, err := Run(RunConfig{
		Spec: Spec{Name: name, Procs: procs, Iterations: iters},
		Net:  net,
		Seed: 7,
	})
	if err != nil {
		t.Fatalf("run %s.%d: %v", name, procs, err)
	}
	return tr
}

func TestBTStructure(t *testing.T) {
	const iters = 12
	tr := runSmall(t, "bt", 9, iters, true)
	recv, _ := TypicalReceiver("bt", 9)
	// With only 12 time steps the handful of setup/verification messages
	// is not yet "rare", so use a slightly looser coverage than the
	// Table 1 experiment (which runs the full 200 steps).
	c := tr.Characterize(recv, trace.Logical, 0.95)
	wantP2P := iters * 18 // 6q with q=3: the period of Figure 1
	if c.P2PMsgs != wantP2P {
		t.Errorf("bt.9 p2p msgs=%d want %d", c.P2PMsgs, wantP2P)
	}
	if c.CollMsgs != 9 {
		t.Errorf("bt.9 collective msgs=%d want 9", c.CollMsgs)
	}
	if c.MsgSizes < 3 || c.MsgSizes > 4 {
		t.Errorf("bt.9 distinct frequent sizes=%d want 3-4", c.MsgSizes)
	}
	if c.Senders < 5 || c.Senders > 7 {
		t.Errorf("bt.9 distinct frequent senders=%d want 5-7", c.Senders)
	}

	// Figure 1: the per-time-step receive pattern of BT.9 has period 18.
	senders := tr.SenderStream(recv, trace.Logical)
	// Skip the 3 initial broadcasts so the stream starts at the steady state.
	steady := senders[3 : 3+18*8]
	period, ok := core.DetectPeriod(steady, core.DefaultConfig())
	if !ok || period != 18 {
		t.Errorf("bt.9 sender stream period=%d,%v want 18", period, ok)
	}
	sizes := tr.SizeStream(recv, trace.Logical)[3 : 3+18*8]
	period, ok = core.DetectPeriod(sizes, core.DefaultConfig())
	if !ok || period != 18 {
		t.Errorf("bt.9 size stream period=%d,%v want 18", period, ok)
	}
}

func TestBT4HasThreeSenders(t *testing.T) {
	tr := runSmall(t, "bt", 4, 6, true)
	recv, _ := TypicalReceiver("bt", 4)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	if c.Senders != 3 {
		t.Errorf("bt.4 senders=%d want 3 (all other ranks)", c.Senders)
	}
	if c.P2PMsgs != 6*12 {
		t.Errorf("bt.4 p2p msgs=%d want %d (12 per step)", c.P2PMsgs, 6*12)
	}
}

func TestCGStructure(t *testing.T) {
	tr := runSmall(t, "cg", 4, 3, true) // 3 outer iterations
	recv, _ := TypicalReceiver("cg", 4)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	if c.CollMsgs != 0 {
		t.Errorf("cg must use no collectives, got %d", c.CollMsgs)
	}
	// Per outer iteration: 26 inner * (1 vector + 1 transpose + 2 scalars).
	wantPerOuter := 26 * 4
	if c.P2PMsgs != 3*wantPerOuter {
		t.Errorf("cg.4 p2p msgs=%d want %d", c.P2PMsgs, 3*wantPerOuter)
	}
	if c.MsgSizes != 2 {
		t.Errorf("cg.4 distinct sizes=%d want 2", c.MsgSizes)
	}
	if c.Senders != 2 {
		t.Errorf("cg.4 distinct senders=%d want 2", c.Senders)
	}
}

func TestCGEightAndSixteenProcsSameShape(t *testing.T) {
	// Table 1: CG.8 and CG.16 report the same per-process message count;
	// the skeleton reproduces that because the traced rank's partner count
	// (l2npcols) is the same for both decompositions.
	tr8 := runSmall(t, "cg", 8, 2, true)
	tr16 := runSmall(t, "cg", 16, 2, true)
	r8, _ := TypicalReceiver("cg", 8)
	r16, _ := TypicalReceiver("cg", 16)
	c8 := tr8.Characterize(r8, trace.Logical, 0.999)
	c16 := tr16.Characterize(r16, trace.Logical, 0.999)
	if c8.P2PMsgs == 0 || c16.P2PMsgs == 0 {
		t.Fatal("cg runs produced no messages")
	}
	diff := c8.P2PMsgs - c16.P2PMsgs
	if diff < -60 || diff > 60 {
		t.Errorf("cg.8 (%d msgs) and cg.16 (%d msgs) should have similar counts", c8.P2PMsgs, c16.P2PMsgs)
	}
}

func TestLUStructure(t *testing.T) {
	const iters = 4
	tr := runSmall(t, "lu", 4, iters, true)
	recv, _ := TypicalReceiver("lu", 4)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	// Corner rank: 2 pencils per plane over one of the two sweeps plus 2
	// face exchanges per iteration.
	want := iters * (2*62 + 2)
	if c.P2PMsgs != want {
		t.Errorf("lu.4 p2p msgs=%d want %d", c.P2PMsgs, want)
	}
	if c.CollMsgs != 18 {
		t.Errorf("lu.4 collective msgs=%d want 18", c.CollMsgs)
	}
	if c.AllSender != 2 {
		t.Errorf("lu.4 distinct senders=%d want 2", c.AllSender)
	}
	if c.AllSizes < 2 || c.AllSizes > 5 {
		t.Errorf("lu.4 distinct sizes=%d want a handful (2-5)", c.AllSizes)
	}
}

func TestLU32EdgeRankSeesMoreTraffic(t *testing.T) {
	tr := runSmall(t, "lu", 32, 2, true)
	recv, _ := TypicalReceiver("lu", 32)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	// Edge rank with three neighbours: 3 pencils per plane across the two
	// sweeps plus 3 face exchanges.
	want := 2 * (3*62 + 3)
	if c.P2PMsgs != want {
		t.Errorf("lu.32 p2p msgs=%d want %d", c.P2PMsgs, want)
	}
	if c.AllSender != 3 {
		t.Errorf("lu.32 senders=%d want 3", c.AllSender)
	}
}

func TestISStructure(t *testing.T) {
	const iters = 11
	tr := runSmall(t, "is", 4, iters, true)
	recv, _ := TypicalReceiver("is", 4)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	if c.P2PMsgs != iters {
		t.Errorf("is.4 p2p msgs=%d want %d (one verification message per iteration)", c.P2PMsgs, iters)
	}
	wantColl := iters * (2*(4-1) + 2)
	if c.CollMsgs != wantColl {
		t.Errorf("is.4 collective msgs=%d want %d", c.CollMsgs, wantColl)
	}
	if c.MsgSizes != 3 {
		t.Errorf("is.4 distinct frequent sizes=%d want 3", c.MsgSizes)
	}
	if c.AllSender != 3 {
		t.Errorf("is.4 distinct senders=%d want 3 (every other rank)", c.AllSender)
	}
}

func TestISCollectiveScalingWithProcs(t *testing.T) {
	// Table 1: IS collective messages grow roughly as 2(p-1)+2 per
	// iteration while the point-to-point count stays at 11.
	for _, p := range []int{4, 8, 16} {
		tr := runSmall(t, "is", p, 11, true)
		recv, _ := TypicalReceiver("is", p)
		c := tr.Characterize(recv, trace.Logical, 0.999)
		want := 11 * (2*(p-1) + 2)
		if c.CollMsgs != want {
			t.Errorf("is.%d collective msgs=%d want %d", p, c.CollMsgs, want)
		}
		if c.P2PMsgs != 11 {
			t.Errorf("is.%d p2p msgs=%d want 11", p, c.P2PMsgs)
		}
	}
}

func TestSweep3DStructure(t *testing.T) {
	const iters = 3
	tr := runSmall(t, "sweep3d", 16, iters, true)
	recv, _ := TypicalReceiver("sweep3d", 16)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	want := iters * 8 * sweepBlocks(16)
	if c.P2PMsgs != want {
		t.Errorf("sweep3d.16 p2p msgs=%d want %d", c.P2PMsgs, want)
	}
	if c.CollMsgs != iters*3 {
		t.Errorf("sweep3d.16 collective msgs=%d want %d", c.CollMsgs, iters*3)
	}
	if c.AllSender != 2 {
		t.Errorf("sweep3d.16 senders=%d want 2 (corner rank)", c.AllSender)
	}
	if c.MsgSizes < 2 || c.MsgSizes > 3 {
		t.Errorf("sweep3d.16 frequent sizes=%d want 2-3", c.MsgSizes)
	}
}

func TestSweep3DSixProcsDeeperPipeline(t *testing.T) {
	tr := runSmall(t, "sweep3d", 6, 2, true)
	recv, _ := TypicalReceiver("sweep3d", 6)
	c := tr.Characterize(recv, trace.Logical, 0.999)
	want := 2 * 8 * sweepBlocks(6)
	if c.P2PMsgs != want {
		t.Errorf("sweep3d.6 p2p msgs=%d want %d", c.P2PMsgs, want)
	}
	if sweepBlocks(6) <= sweepBlocks(16) {
		t.Error("the 6-process configuration should use a deeper pipeline than the 16-process one")
	}
}

func TestLogicalStreamsDeterministicAcrossSeedsAndNoise(t *testing.T) {
	// The logical stream is a function of the application only: changing
	// the seed or the noise level must not change it. This is the property
	// that makes logical-level prediction nearly perfect in the paper.
	for _, name := range []string{"bt", "cg", "lu", "is", "sweep3d"} {
		procs := Catalog()[0].PaperProcs[0]
		switch name {
		case "bt":
			procs = 4
		case "cg", "lu", "is":
			procs = 4
		case "sweep3d":
			procs = 6
		}
		iters := 3
		recv, _ := TypicalReceiver(name, procs)
		base, err := Run(RunConfig{Spec: Spec{Name: name, Procs: procs, Iterations: iters}, Net: simnet.NoiselessConfig(), Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		noisy, err := Run(RunConfig{Spec: Spec{Name: name, Procs: procs, Iterations: iters}, Net: simnet.DefaultConfig(), Seed: 99})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a := base.SenderStream(recv, trace.Logical)
		b := noisy.SenderStream(recv, trace.Logical)
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: logical stream lengths differ (%d vs %d)", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: logical sender stream differs at %d under noise (%d vs %d)", name, i, a[i], b[i])
			}
		}
		sa := base.SizeStream(recv, trace.Logical)
		sb := noisy.SizeStream(recv, trace.Logical)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s: logical size stream differs at %d under noise", name, i)
			}
		}
	}
}

func TestPhysicalStreamPreservesMultiset(t *testing.T) {
	for _, name := range []string{"bt", "is"} {
		procs := 4
		recv, _ := TypicalReceiver(name, procs)
		tr := runSmall(t, name, procs, 4, false)
		logical := tr.SenderStream(recv, trace.Logical)
		physical := tr.SenderStream(recv, trace.Physical)
		if len(logical) != len(physical) {
			t.Fatalf("%s: stream lengths differ: %d vs %d", name, len(logical), len(physical))
		}
		countL := map[int64]int{}
		countP := map[int64]int{}
		for i := range logical {
			countL[logical[i]]++
			countP[physical[i]]++
		}
		for k, v := range countL {
			if countP[k] != v {
				t.Errorf("%s: physical stream changed the sender multiset", name)
				break
			}
		}
	}
}

func TestRunDefaultsToTypicalReceiverOnly(t *testing.T) {
	tr, err := Run(RunConfig{Spec: Spec{Name: "bt", Procs: 4, Iterations: 2}, Net: simnet.NoiselessConfig()})
	if err != nil {
		t.Fatal(err)
	}
	recv, _ := TypicalReceiver("bt", 4)
	got := tr.Receivers()
	if len(got) != 1 || got[0] != recv {
		t.Errorf("default run should trace only rank %d, got %v", recv, got)
	}
}

func TestRunAllReceivers(t *testing.T) {
	tr, err := Run(RunConfig{
		Spec:              Spec{Name: "cg", Procs: 4, Iterations: 1},
		Net:               simnet.NoiselessConfig(),
		TraceAllReceivers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Receivers()); got != 4 {
		t.Errorf("all-receiver run should trace 4 ranks, got %d", got)
	}
}

func TestRunExplicitReceivers(t *testing.T) {
	tr, err := Run(RunConfig{
		Spec:           Spec{Name: "is", Procs: 4, Iterations: 2},
		Net:            simnet.NoiselessConfig(),
		TraceReceivers: []int{0, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Receivers()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("explicit receivers wrong: %v", got)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(RunConfig{Spec: Spec{Name: "bt", Procs: 7}}); err == nil {
		t.Error("invalid spec should be rejected")
	}
}

func TestGrid2D(t *testing.T) {
	cases := []struct{ p, rows, cols int }{
		{6, 3, 2}, {16, 4, 4}, {32, 8, 4}, {4, 2, 2}, {2, 2, 1}, {7, 7, 1},
	}
	for _, c := range cases {
		rows, cols := grid2D(c.p)
		if rows != c.rows || cols != c.cols {
			t.Errorf("grid2D(%d)=(%d,%d) want (%d,%d)", c.p, rows, cols, c.rows, c.cols)
		}
		if rows*cols != c.p {
			t.Errorf("grid2D(%d) does not factor p", c.p)
		}
	}
}

func TestHelpers(t *testing.T) {
	if q, ok := isPerfectSquare(25); !ok || q != 5 {
		t.Error("isPerfectSquare(25) wrong")
	}
	if _, ok := isPerfectSquare(7); ok {
		t.Error("7 is not a perfect square")
	}
	if !isPowerOfTwo(16) || isPowerOfTwo(12) || isPowerOfTwo(0) {
		t.Error("isPowerOfTwo wrong")
	}
	for p, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 32: 5} {
		if got := log2Ceil(p); got != want {
			t.Errorf("log2Ceil(%d)=%d want %d", p, got, want)
		}
	}
}

func TestCGLayouts(t *testing.T) {
	cases := []struct{ p, rows, cols, l2 int }{
		{4, 2, 2, 1}, {8, 2, 4, 2}, {16, 4, 4, 2}, {32, 4, 8, 3},
	}
	for _, c := range cases {
		l := newCGLayout(c.p)
		if l.rows != c.rows || l.cols != c.cols || l.l2npcols != c.l2 {
			t.Errorf("newCGLayout(%d)=%+v want rows=%d cols=%d l2=%d", c.p, l, c.rows, c.cols, c.l2)
		}
		// Transpose partner must be symmetric: partner(partner(me)) == me.
		for me := 0; me < c.p; me++ {
			p1 := l.transposePartner(me)
			if p1 < 0 || p1 >= c.p {
				t.Fatalf("transposePartner(%d)=%d out of range for p=%d", me, p1, c.p)
			}
			if back := l.transposePartner(p1); back != me {
				t.Errorf("p=%d transpose not symmetric: %d -> %d -> %d", c.p, me, p1, back)
			}
		}
		// Reduce partners must be within the same processor row.
		for me := 0; me < c.p; me++ {
			for _, partner := range l.reducePartners(me) {
				if partner/l.cols != me/l.cols {
					t.Errorf("p=%d reduce partner %d of %d is in a different row", c.p, partner, me)
				}
			}
		}
	}
}

func TestBTNeighborsAndSizes(t *testing.T) {
	// On the 3x3 grid every rank has six distinct neighbours.
	for id := 0; id < 9; id++ {
		e, w, s, n, dp, dm := btNeighbors(id, 3)
		set := map[int]bool{e: true, w: true, s: true, n: true, dp: true, dm: true}
		if len(set) != 6 {
			t.Errorf("bt.9 rank %d has %d distinct neighbours, want 6", id, len(set))
		}
		if set[id] {
			t.Errorf("bt.9 rank %d lists itself as a neighbour", id)
		}
	}
	// On the 2x2 grid the six logical neighbours collapse onto the three
	// other ranks.
	e, w, s, n, dp, dm := btNeighbors(3, 2)
	set := map[int]bool{e: true, w: true, s: true, n: true, dp: true, dm: true}
	if len(set) != 3 {
		t.Errorf("bt.4 rank 3 has %d distinct neighbours, want 3", len(set))
	}
	face, fwd, bwd := btSizes(3)
	if face != 19440 || fwd != 3240 || bwd != 10240 {
		t.Errorf("bt.9 sizes=(%d,%d,%d) want (19440,3240,10240) as in Figure 1b", face, fwd, bwd)
	}
	if f2, _, _ := btSizes(5); f2 >= face {
		t.Error("face size should shrink as the grid grows")
	}
}

func TestLULayoutNeighbors(t *testing.T) {
	l := newLULayout(8)
	if l.xdim != 4 || l.ydim != 2 {
		t.Fatalf("lu layout for 8 procs = %+v want 4x2", l)
	}
	n, s, w, e := l.neighbors(0)
	if n != -1 || w != -1 {
		t.Error("rank 0 should have no north or west neighbour")
	}
	if s != 4 || e != 1 {
		t.Errorf("rank 0 neighbours south=%d east=%d want 4,1", s, e)
	}
	n, s, w, e = l.neighbors(5)
	if n != 1 || s != -1 || w != 4 || e != 6 {
		t.Errorf("rank 5 neighbours=%d,%d,%d,%d want 1,-1,4,6", n, s, w, e)
	}
}
