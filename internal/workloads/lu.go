package workloads

import (
	"fmt"

	"mpipredict/internal/simmpi"
)

// NAS LU (SSOR) communication skeleton.
//
// LU decomposes the 64^3 class-A grid over a 2D processor grid (xdim x
// ydim, both powers of two, xdim >= ydim). Each of the 250 SSOR time
// steps performs
//
//   - a pipelined lower-triangular sweep: for every interior k plane the
//     rank receives a pencil of boundary data from its north and west
//     neighbours (when they exist), computes, and forwards to south and
//     east, and
//   - the mirrored upper-triangular sweep (receive from south and east,
//     forward to north and west), plus
//   - one full face exchange with every neighbour for the right-hand side.
//
// With 62 interior planes a corner rank receives 2 pencils per plane and
// ~126 messages per time step, i.e. ~31.5k messages over the run — Table 1
// reports 31472/31474 for LU on 4-16 processes. An edge rank with three
// neighbours receives ~189 per step, reproducing the 47211 of LU.32. Two
// pencil sizes (row and column direction) plus two face sizes give the
// 2-4 distinct message sizes of Table 1, and the traced rank sees 2-3
// distinct senders.
//
// Eighteen collective messages reach each leaf rank: ten parameter
// broadcasts during setup and eight verification reductions implemented
// as reduce+broadcast, matching the 18 of Table 1.

const (
	luTagLower = 300 + iota
	luTagUpper
	luTagFaceNS
	luTagFaceEW
)

const (
	luGridN  = 64 // class A: 64^3 grid
	luPlanes = luGridN - 2
)

func init() {
	register(entry{
		info: Info{
			Name:              "lu",
			PaperProcs:        []int{4, 8, 16, 32},
			DefaultIterations: 250,
			Description:       "NAS LU skeleton: pipelined SSOR wavefront sweeps over k planes plus per-step face exchanges",
		},
		validProcs: func(p int) error {
			if !isPowerOfTwo(p) || p < 4 {
				return fmt.Errorf("workloads: lu requires a power-of-two number of processes >= 4, got %d", p)
			}
			return nil
		},
		build: buildLU,
		receiver: func(procs int) int {
			// A corner rank with two neighbours that is also a leaf of the
			// binomial collective trees reproduces the ~126 messages per
			// step and the 18 collective messages of LU.4-LU.16; an edge
			// rank with three neighbours reproduces the larger LU.32 count.
			if procs >= 32 {
				return 1
			}
			return 3
		},
	})
}

// luLayout is the 2D processor grid of LU: xdim columns by ydim rows.
type luLayout struct {
	xdim, ydim int
}

func newLULayout(p int) luLayout {
	l2p := log2Ceil(p)
	xdim := 1 << ((l2p + 1) / 2)
	ydim := p / xdim
	return luLayout{xdim: xdim, ydim: ydim}
}

// neighbors returns the ranks north/south/west/east of me, or -1 when the
// process sits on the corresponding boundary (LU does not wrap around).
func (l luLayout) neighbors(me int) (north, south, west, east int) {
	row, col := me/l.xdim, me%l.xdim
	north, south, west, east = -1, -1, -1, -1
	if row > 0 {
		north = (row-1)*l.xdim + col
	}
	if row < l.ydim-1 {
		south = (row+1)*l.xdim + col
	}
	if col > 0 {
		west = row*l.xdim + col - 1
	}
	if col < l.xdim-1 {
		east = row*l.xdim + col + 1
	}
	return
}

// luSizes returns the pencil sizes exchanged per plane in the row (x) and
// column (y) directions and the per-step face sizes. Five solution
// variables of 8 bytes each per grid point.
func luSizes(l luLayout) (rowPencil, colPencil, faceNS, faceEW int64) {
	nxLocal := luGridN / l.xdim
	nyLocal := luGridN / l.ydim
	rowPencil = int64(5 * 8 * nxLocal)
	colPencil = int64(5 * 8 * nyLocal)
	faceNS = int64(5 * 8 * nxLocal * luGridN)
	faceEW = int64(5 * 8 * nyLocal * luGridN)
	return
}

func buildLU(spec Spec) simmpi.Program {
	layout := newLULayout(spec.Procs)
	rowPencil, colPencil, faceNS, faceEW := luSizes(layout)
	iters := spec.Iterations

	return func(r *simmpi.Rank) {
		north, south, west, east := layout.neighbors(r.ID())

		// Setup: ten parameter broadcasts, as in the reference code's
		// bcast_inputs.
		for i := 0; i < 10; i++ {
			r.Bcast(0, 40)
		}

		for it := 0; it < iters; it++ {
			// exchange_3: full face exchange of the right-hand side with
			// every existing neighbour.
			r.Compute(500)
			for _, n := range []int{north, south} {
				if n >= 0 {
					r.Isend(n, luTagFaceNS, faceNS)
				}
			}
			for _, n := range []int{west, east} {
				if n >= 0 {
					r.Isend(n, luTagFaceEW, faceEW)
				}
			}
			for _, n := range []int{north, south} {
				if n >= 0 {
					r.Recv(n, luTagFaceNS)
				}
			}
			for _, n := range []int{west, east} {
				if n >= 0 {
					r.Recv(n, luTagFaceEW)
				}
			}

			// Lower-triangular sweep (blts): wavefront from the north-west
			// corner towards the south-east.
			for k := 0; k < luPlanes; k++ {
				if north >= 0 {
					r.Recv(north, luTagLower)
				}
				if west >= 0 {
					r.Recv(west, luTagLower)
				}
				r.Compute(40)
				if south >= 0 {
					r.Send(south, luTagLower, rowPencil)
				}
				if east >= 0 {
					r.Send(east, luTagLower, colPencil)
				}
			}

			// Upper-triangular sweep (buts): wavefront from the south-east
			// corner towards the north-west.
			for k := 0; k < luPlanes; k++ {
				if south >= 0 {
					r.Recv(south, luTagUpper)
				}
				if east >= 0 {
					r.Recv(east, luTagUpper)
				}
				r.Compute(40)
				if north >= 0 {
					r.Send(north, luTagUpper, rowPencil)
				}
				if west >= 0 {
					r.Send(west, luTagUpper, colPencil)
				}
			}
		}

		// Verification: eight global reductions of the residual norms.
		for i := 0; i < 8; i++ {
			r.Reduce(0, 40)
			r.Bcast(0, 40)
		}
	}
}
