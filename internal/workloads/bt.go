package workloads

import (
	"fmt"

	"mpipredict/internal/simmpi"
)

// NAS BT (block tridiagonal) communication skeleton.
//
// BT uses a multipartition decomposition on a square number of processes
// q*q. Per time step every rank
//
//   - exchanges boundary faces with its six logical neighbours
//     (copy_faces), and
//   - participates in three line solves (x, y, z), each consisting of a
//     forward and a backward cyclic pipeline of q-1 stages along the
//     corresponding direction.
//
// That yields 6 + 6*(q-1) = 6q receives per time step and rank: 12 for
// BT.4, 18 for BT.9 (the period visible in Figure 1 of the paper), 24 for
// BT.16 and 30 for BT.25. With the class-A 200 time steps the per-process
// point-to-point message counts land at 2400/3600/4800/6000, close to the
// 2416/3651/4826/6030 of Table 1. Three distinct message sizes appear
// (faces, forward solve, backward solve), as in the paper, and the number
// of distinct senders is 3 on 4 processes and 6 on larger grids.
//
// Nine collective messages reach each non-root rank: three initial
// broadcasts of problem parameters and six verification reductions
// (implemented as reduce+broadcast so that leaf ranks see exactly one
// message each), matching the 9 collective messages of Table 1.

const (
	btTagFace = 100 + iota
	btTagSolveFwd
	btTagSolveBwd
)

func init() {
	register(entry{
		info: Info{
			Name:              "bt",
			PaperProcs:        []int{4, 9, 16, 25},
			DefaultIterations: 200,
			Description:       "NAS BT multipartition skeleton: 6-neighbour face exchange plus three cyclic line-solve pipelines per time step",
		},
		validProcs: func(p int) error {
			if _, ok := isPerfectSquare(p); !ok || p < 4 {
				return fmt.Errorf("workloads: bt requires a perfect square number of processes >= 4, got %d", p)
			}
			return nil
		},
		build: buildBT,
		receiver: func(procs int) int {
			// The paper traces process 3.
			if procs > 3 {
				return 3
			}
			return procs - 1
		},
	})
}

// btSizes returns the three message sizes (face exchange, forward solve,
// backward solve) for a q*q process grid. They are calibrated so that the
// q=3 case reproduces the 19440/3240/10240 bytes visible in Figure 1b of
// the paper and scale with the per-process face area for other grids.
func btSizes(q int) (face, fwd, bwd int64) {
	face = int64(174960 / (q * q))
	fwd = int64(29160 / (q * q))
	bwd = int64(92160 / (q * q))
	return face, fwd, bwd
}

// btNeighbors returns the six logical neighbours of a rank on the q*q
// grid (east, west, south, north, diagonal plus, diagonal minus), with
// wrap-around as in the multipartition scheme.
func btNeighbors(id, q int) (east, west, south, north, dplus, dminus int) {
	row, col := id/q, id%q
	wrap := func(v int) int { return (v%q + q) % q }
	at := func(r, c int) int { return wrap(r)*q + wrap(c) }
	east = at(row, col+1)
	west = at(row, col-1)
	south = at(row+1, col)
	north = at(row-1, col)
	dplus = at(row+1, col+1)
	dminus = at(row-1, col-1)
	return
}

func buildBT(spec Spec) simmpi.Program {
	q, _ := isPerfectSquare(spec.Procs)
	face, fwd, bwd := btSizes(q)
	iters := spec.Iterations

	return func(r *simmpi.Rank) {
		east, west, south, north, dplus, dminus := btNeighbors(r.ID(), q)

		// Problem setup: root broadcasts grid parameters (3 broadcasts in
		// the reference code).
		for i := 0; i < 3; i++ {
			r.Bcast(0, 64)
		}

		// pipeline runs one cyclic solve pipeline along the given
		// direction: each of the q-1 stages sends downstream and receives
		// from upstream.
		pipeline := func(downstream, upstream int, size int64, tag int, computeUS float64) {
			for stage := 0; stage < q-1; stage++ {
				r.Compute(computeUS)
				r.Send(downstream, tag, size)
				r.Recv(upstream, tag)
			}
		}

		for it := 0; it < iters; it++ {
			// copy_faces: exchange a face with each of the six neighbours.
			r.Compute(600)
			neighbours := []int{east, west, north, south, dplus, dminus}
			for _, n := range neighbours {
				r.Isend(n, btTagFace, face)
			}
			reqs := make([]*simmpi.Request, 0, len(neighbours))
			for _, n := range neighbours {
				reqs = append(reqs, r.Irecv(n, btTagFace))
			}
			r.Waitall(reqs)

			// x_solve: forward then backward pipeline along the row.
			pipeline(east, west, fwd, btTagSolveFwd, 250)
			pipeline(west, east, bwd, btTagSolveBwd, 250)
			// y_solve along the column.
			pipeline(south, north, fwd, btTagSolveFwd, 250)
			pipeline(north, south, bwd, btTagSolveBwd, 250)
			// z_solve along the diagonal.
			pipeline(dplus, dminus, fwd, btTagSolveFwd, 250)
			pipeline(dminus, dplus, bwd, btTagSolveBwd, 250)
		}

		// Verification: six global reductions whose result every rank
		// needs (reduce + broadcast keeps the per-rank collective message
		// count at one per reduction for tree leaves).
		for i := 0; i < 6; i++ {
			r.Reduce(0, 40)
			r.Bcast(0, 40)
		}
	}
}
