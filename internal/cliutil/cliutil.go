// Package cliutil holds the small flag helpers shared by the command
// line tools.
package cliutil

import "flag"

// SetFlags returns which of the named flags were explicitly set on the
// command line, prefixed with "-" for error messages. The CLIs use it to
// reject flags that a selected mode would silently ignore.
func SetFlags(fs *flag.FlagSet, names ...string) []string {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var set []string
	fs.Visit(func(f *flag.Flag) {
		if want[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}
