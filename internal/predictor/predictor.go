// Package predictor defines the common interface for MPI message-stream
// predictors and provides, besides the paper's DPD-based predictor, the
// baseline predictors the paper compares against in its related-work
// discussion (Section 6): single-next-value heuristics in the style of
// Afsahi & Dimopoulos and Markov-chain predictors.
//
// All predictors consume a stream of int64 observations (sender ranks or
// message sizes) through Observe and answer Predict(k) queries for the
// value expected k observations in the future. Baselines that can only
// predict the immediate next value abstain for k > 1, which is exactly
// the limitation the paper attributes to them; the evaluation harness
// counts abstentions as mispredictions.
package predictor

import (
	"fmt"
	"sort"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

// Predictor is an online, single-stream value predictor.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Observe feeds the next observed value of the stream.
	Observe(x int64)
	// Predict returns the value expected k observations ahead (k >= 1).
	// ok is false when the predictor abstains.
	Predict(k int) (value int64, ok bool)
	// Reset returns the predictor to its initial, untrained state.
	Reset()
}

// Factory creates a fresh predictor instance.
type Factory func() Predictor

// registry of named factories, used by the CLI and the comparison bench.
var registry = map[string]Factory{}

// Register adds a named predictor factory. It panics on duplicates, which
// indicates a programming error during init.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("predictor: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New creates a predictor by registered name.
func New(name string) (Predictor, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown predictor %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names returns the registered predictor names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("dpd", func() Predictor { return NewDPD(core.DefaultConfig()) })
	Register("last-value", func() Predictor { return NewLastValue() })
	Register("most-frequent", func() Predictor { return NewMostFrequent(64) })
	Register("markov1", func() Predictor { return NewMarkov(1) })
	Register("markov2", func() Predictor { return NewMarkov(2) })
	Register("cycle", func() Predictor { return NewCycle(512) })
	Register("successor", func() Predictor { return NewSuccessor() })
}

// strategyAdapter exposes a strategy.Strategy as a Predictor, so the
// registry-selected strategies plug into everything built on this
// package's interface (the evaluation harness, the message-level
// forecasters of the scalability replays).
type strategyAdapter struct {
	strategy.Strategy
}

// Name implements Predictor.
func (a strategyAdapter) Name() string { return a.Desc().Name }

// FromStrategy adapts a prediction strategy to the Predictor interface.
// The adapter forwards Observe/Predict/Reset directly, so it adds no
// behavior (and no allocations) on the hot path.
func FromStrategy(s strategy.Strategy) Predictor { return strategyAdapter{s} }

// DPD adapts core.StreamPredictor (the paper's contribution) to the
// Predictor interface.
type DPD struct {
	sp  *core.StreamPredictor
	cfg core.Config
}

// NewDPD builds a DPD predictor with the given core configuration.
func NewDPD(cfg core.Config) *DPD {
	return &DPD{sp: core.NewStreamPredictor(cfg), cfg: cfg}
}

// Name implements Predictor.
func (d *DPD) Name() string { return "dpd" }

// Observe implements Predictor.
func (d *DPD) Observe(x int64) { d.sp.Observe(x) }

// Predict implements Predictor.
func (d *DPD) Predict(k int) (int64, bool) { return d.sp.Predict(k) }

// Reset implements Predictor.
func (d *DPD) Reset() { d.sp.Reset() }

// Stream exposes the wrapped StreamPredictor for callers that need the
// richer DPD-specific API (period, pattern, counters).
func (d *DPD) Stream() *core.StreamPredictor { return d.sp }

// LastValue predicts that the next value equals the last observed value.
// It is the simplest heuristic baseline; it only answers +1 queries.
type LastValue struct {
	last int64
	seen bool
}

// NewLastValue returns a LastValue predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// Observe implements Predictor.
func (p *LastValue) Observe(x int64) { p.last, p.seen = x, true }

// Predict implements Predictor.
func (p *LastValue) Predict(k int) (int64, bool) {
	if !p.seen || k != 1 {
		return 0, false
	}
	return p.last, true
}

// Reset implements Predictor.
func (p *LastValue) Reset() { *p = LastValue{} }

// MostFrequent predicts the most frequent value over a sliding window of
// recent history, for every horizon. It captures "message-destination
// locality" (Kim & Lilja) without any temporal structure.
type MostFrequent struct {
	window []int64
	size   int
	counts map[int64]int
}

// NewMostFrequent returns a predictor with the given window size.
func NewMostFrequent(window int) *MostFrequent {
	if window < 1 {
		window = 1
	}
	return &MostFrequent{size: window, counts: make(map[int64]int)}
}

// Name implements Predictor.
func (p *MostFrequent) Name() string { return "most-frequent" }

// Observe implements Predictor.
func (p *MostFrequent) Observe(x int64) {
	p.window = append(p.window, x)
	p.counts[x]++
	if len(p.window) > p.size {
		old := p.window[0]
		p.window = p.window[1:]
		p.counts[old]--
		if p.counts[old] == 0 {
			delete(p.counts, old)
		}
	}
}

// Predict implements Predictor.
func (p *MostFrequent) Predict(k int) (int64, bool) {
	if k < 1 || len(p.window) == 0 {
		return 0, false
	}
	best := int64(0)
	bestCount := -1
	for v, c := range p.counts {
		if c > bestCount || (c == bestCount && v < best) {
			best, bestCount = v, c
		}
	}
	return best, true
}

// Reset implements Predictor.
func (p *MostFrequent) Reset() {
	p.window = nil
	p.counts = make(map[int64]int)
}

// Markov is an order-k Markov-chain predictor: it counts transitions from
// the last `order` observed values to the next value and predicts the most
// frequent continuation. Multi-step predictions chain the most likely
// transitions. The paper points out that such models need more training
// than the DPD and do not expose the pattern length.
//
// Note: strategy.Markov1 (the serving/eval-grade "markov1" of the
// strategy registry) is a distinct implementation with a different
// tie-break (earliest-interned value rather than smallest value) chosen
// for exact snapshot/restore; on successor ties the two can disagree.
type Markov struct {
	order   int
	history []int64
	// table maps a context (encoded history) to counts of successors.
	table map[string]map[int64]int
}

// NewMarkov returns an order-`order` Markov predictor (order >= 1).
func NewMarkov(order int) *Markov {
	if order < 1 {
		order = 1
	}
	return &Markov{order: order, table: make(map[string]map[int64]int)}
}

// Name implements Predictor.
func (p *Markov) Name() string { return fmt.Sprintf("markov%d", p.order) }

func contextKey(ctx []int64) string {
	key := make([]byte, 0, len(ctx)*9)
	for _, v := range ctx {
		for shift := 0; shift < 64; shift += 8 {
			key = append(key, byte(v>>shift))
		}
		key = append(key, ',')
	}
	return string(key)
}

// Observe implements Predictor.
func (p *Markov) Observe(x int64) {
	if len(p.history) == p.order {
		key := contextKey(p.history)
		succ := p.table[key]
		if succ == nil {
			succ = make(map[int64]int)
			p.table[key] = succ
		}
		succ[x]++
	}
	p.history = append(p.history, x)
	if len(p.history) > p.order {
		p.history = p.history[1:]
	}
}

// Predict implements Predictor.
func (p *Markov) Predict(k int) (int64, bool) {
	if k < 1 || len(p.history) < p.order {
		return 0, false
	}
	ctx := make([]int64, p.order)
	copy(ctx, p.history)
	var last int64
	for step := 0; step < k; step++ {
		succ, ok := p.table[contextKey(ctx)]
		if !ok || len(succ) == 0 {
			return 0, false
		}
		best := int64(0)
		bestCount := -1
		for v, c := range succ {
			if c > bestCount || (c == bestCount && v < best) {
				best, bestCount = v, c
			}
		}
		last = best
		ctx = append(ctx[1:], best)
	}
	return last, true
}

// Reset implements Predictor.
func (p *Markov) Reset() {
	p.history = nil
	p.table = make(map[string]map[int64]int)
}

// Cycle is a single-cycle heuristic in the spirit of the message
// predictors of Afsahi & Dimopoulos: it records the sequence of values
// observed between two occurrences of the same "anchor" value (the first
// value ever seen) and then replays that cycle. Unlike the DPD it commits
// to the first cycle it sees and has no notion of a distance metric or of
// confidence; a change of pattern silently degrades its accuracy.
type Cycle struct {
	maxLen   int
	anchor   int64
	haveAnch bool
	building []int64
	cycle    []int64
	pos      int // position in cycle of the next expected value
}

// NewCycle returns a Cycle predictor that gives up on cycles longer than
// maxLen values.
func NewCycle(maxLen int) *Cycle {
	if maxLen < 2 {
		maxLen = 2
	}
	return &Cycle{maxLen: maxLen}
}

// Name implements Predictor.
func (p *Cycle) Name() string { return "cycle" }

// Observe implements Predictor.
func (p *Cycle) Observe(x int64) {
	if !p.haveAnch {
		p.anchor = x
		p.haveAnch = true
		p.building = append(p.building, x)
		return
	}
	if p.cycle == nil {
		if x == p.anchor && len(p.building) > 0 {
			// Cycle closed: it spans from the anchor up to (not including)
			// this repetition.
			p.cycle = append([]int64(nil), p.building...)
			p.pos = 1 % len(p.cycle) // we just saw cycle[0] again
			return
		}
		p.building = append(p.building, x)
		if len(p.building) > p.maxLen {
			// Give up and restart from the most recent value.
			p.anchor = x
			p.building = p.building[:0]
			p.building = append(p.building, x)
		}
		return
	}
	// Replaying: advance the phase regardless of whether the observation
	// matched (the heuristic has no recovery rule).
	p.pos = (p.pos + 1) % len(p.cycle)
}

// Predict implements Predictor.
func (p *Cycle) Predict(k int) (int64, bool) {
	if k < 1 || p.cycle == nil {
		return 0, false
	}
	return p.cycle[(p.pos+k-1)%len(p.cycle)], true
}

// Reset implements Predictor.
func (p *Cycle) Reset() { *p = Cycle{maxLen: p.maxLen} }

// Successor predicts that the value following v is whatever followed v
// the last time v was observed ("last successor" pairing heuristic). It
// answers only +1 queries.
type Successor struct {
	next map[int64]int64
	last int64
	seen bool
}

// NewSuccessor returns a Successor predictor.
func NewSuccessor() *Successor {
	return &Successor{next: make(map[int64]int64)}
}

// Name implements Predictor.
func (p *Successor) Name() string { return "successor" }

// Observe implements Predictor.
func (p *Successor) Observe(x int64) {
	if p.seen {
		p.next[p.last] = x
	}
	p.last = x
	p.seen = true
}

// Predict implements Predictor.
func (p *Successor) Predict(k int) (int64, bool) {
	if k != 1 || !p.seen {
		return 0, false
	}
	v, ok := p.next[p.last]
	return v, ok
}

// Reset implements Predictor.
func (p *Successor) Reset() {
	p.next = make(map[int64]int64)
	p.seen = false
	p.last = 0
}
