package predictor

import "mpipredict/internal/core"

// MessageForecast is the joint prediction for one future message: which
// rank will send it and how many bytes it will carry. It is the piece of
// information the scalability mechanisms of Section 2 of the paper need:
// the receiver uses it to pre-allocate a buffer of Size bytes for Sender
// and to hand out a credit before the message is sent.
type MessageForecast struct {
	Ahead  int   // how many messages in the future (1 = next message)
	Sender int   // predicted sending rank
	Size   int64 // predicted message size in bytes
	OK     bool  // false when either stream predictor abstained
}

// MessagePredictor couples two stream predictors — one for the sender
// stream, one for the size stream of a single receiving process — into a
// message-level forecaster.
type MessagePredictor struct {
	sender Predictor
	size   Predictor
}

// NewMessagePredictor builds a message predictor from two independently
// chosen stream predictors.
func NewMessagePredictor(sender, size Predictor) *MessagePredictor {
	return &MessagePredictor{sender: sender, size: size}
}

// NewDPDMessagePredictor is the paper's configuration: a DPD predictor on
// both the sender and the size stream.
func NewDPDMessagePredictor(cfg core.Config) *MessagePredictor {
	return &MessagePredictor{sender: NewDPD(cfg), size: NewDPD(cfg)}
}

// Observe records one received message.
func (m *MessagePredictor) Observe(sender int, size int64) {
	m.sender.Observe(int64(sender))
	m.size.Observe(size)
}

// Forecast predicts the next `count` messages.
func (m *MessagePredictor) Forecast(count int) []MessageForecast {
	return m.ForecastInto(make([]MessageForecast, 0, count), count)
}

// ForecastInto appends the next `count` message forecasts to dst and
// returns it. The per-message replay loops of the scalability mechanisms
// pass a reused buffer (dst[:0] of the previous call), so steady-state
// forecasting performs no allocations.
func (m *MessagePredictor) ForecastInto(dst []MessageForecast, count int) []MessageForecast {
	for k := 1; k <= count; k++ {
		s, okS := m.sender.Predict(k)
		z, okZ := m.size.Predict(k)
		dst = append(dst, MessageForecast{
			Ahead:  k,
			Sender: int(s),
			Size:   z,
			OK:     okS && okZ,
		})
	}
	return dst
}

// ForecastSenders returns the set of ranks expected to send one of the
// next `count` messages (duplicates removed, order not meaningful), along
// with the total number of bytes forecast per sender — the order-free view
// of Section 5.3 of the paper. It allocates a fresh map per call and is
// meant for diagnostics and one-off queries; the per-message replay loops
// use ForecastInto with a reused buffer instead.
func (m *MessagePredictor) ForecastSenders(count int) (map[int]int64, bool) {
	fc := m.Forecast(count)
	out := make(map[int]int64)
	for _, f := range fc {
		if !f.OK {
			return nil, false
		}
		out[f.Sender] += f.Size
	}
	return out, true
}

// Reset clears both stream predictors.
func (m *MessagePredictor) Reset() {
	m.sender.Reset()
	m.size.Reset()
}

// SenderPredictor returns the underlying sender-stream predictor.
func (m *MessagePredictor) SenderPredictor() Predictor { return m.sender }

// SizePredictor returns the underlying size-stream predictor.
func (m *MessagePredictor) SizePredictor() Predictor { return m.size }
