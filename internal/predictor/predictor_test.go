package predictor

import (
	"testing"
	"testing/quick"

	"mpipredict/internal/core"
)

func repeat(pattern []int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// feed sends the stream into p and returns the +1 accuracy measured the
// same way the evaluation harness does (abstentions count as misses).
func feed(p Predictor, stream []int64, warmup int) float64 {
	hits, total := 0, 0
	for i, x := range stream {
		if i >= warmup {
			total++
			if v, ok := p.Predict(1); ok && v == x {
				hits++
			}
		}
		p.Observe(x)
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func TestRegistryKnowsAllPredictors(t *testing.T) {
	names := Names()
	want := []string{"cycle", "dpd", "last-value", "markov1", "markov2", "most-frequent", "successor"}
	if len(names) != len(want) {
		t.Fatalf("registered predictors = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered predictors = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
}

func TestNewUnknownPredictor(t *testing.T) {
	if _, err := New("no-such-predictor"); err == nil {
		t.Fatal("expected an error for an unknown predictor name")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	Register("dpd", func() Predictor { return NewLastValue() })
}

func TestLastValue(t *testing.T) {
	p := NewLastValue()
	if _, ok := p.Predict(1); ok {
		t.Error("untrained LastValue must abstain")
	}
	p.Observe(5)
	if v, ok := p.Predict(1); !ok || v != 5 {
		t.Errorf("Predict(1)=%d,%v want 5,true", v, ok)
	}
	if _, ok := p.Predict(2); ok {
		t.Error("LastValue must abstain for k > 1")
	}
	p.Observe(9)
	if v, _ := p.Predict(1); v != 9 {
		t.Errorf("after new observation Predict(1)=%d want 9", v)
	}
	p.Reset()
	if _, ok := p.Predict(1); ok {
		t.Error("reset LastValue must abstain")
	}
}

func TestLastValueAccuracyOnAlternatingStream(t *testing.T) {
	// On a strictly alternating stream last-value is always wrong; the DPD
	// is essentially always right. This is the qualitative gap the paper's
	// related-work section describes.
	stream := repeat([]int64{1, 2}, 400)
	lv := feed(NewLastValue(), stream, 50)
	dpd := feed(NewDPD(core.DefaultConfig()), stream, 50)
	if lv > 0.01 {
		t.Errorf("last-value accuracy on alternating stream = %.3f, want ~0", lv)
	}
	if dpd < 0.99 {
		t.Errorf("dpd accuracy on alternating stream = %.3f, want ~1", dpd)
	}
}

func TestMostFrequent(t *testing.T) {
	p := NewMostFrequent(4)
	if _, ok := p.Predict(1); ok {
		t.Error("empty MostFrequent must abstain")
	}
	for _, x := range []int64{7, 7, 3, 7} {
		p.Observe(x)
	}
	if v, ok := p.Predict(1); !ok || v != 7 {
		t.Errorf("Predict=%d,%v want 7,true", v, ok)
	}
	if v, ok := p.Predict(5); !ok || v != 7 {
		t.Errorf("MostFrequent answers any horizon; got %d,%v", v, ok)
	}
	// Slide the window so that 7 falls out of favour.
	for _, x := range []int64{3, 3, 3} {
		p.Observe(x)
	}
	if v, _ := p.Predict(1); v != 3 {
		t.Errorf("after sliding, Predict=%d want 3", v)
	}
	p.Reset()
	if _, ok := p.Predict(1); ok {
		t.Error("reset MostFrequent must abstain")
	}
}

func TestMostFrequentWindowClamp(t *testing.T) {
	p := NewMostFrequent(0)
	p.Observe(1)
	p.Observe(2)
	if v, ok := p.Predict(1); !ok || v != 2 {
		t.Errorf("window clamps to 1, so prediction should be the last value; got %d,%v", v, ok)
	}
}

func TestMarkovOrder1(t *testing.T) {
	p := NewMarkov(1)
	if p.Name() != "markov1" {
		t.Errorf("name=%q", p.Name())
	}
	if _, ok := p.Predict(1); ok {
		t.Error("untrained Markov must abstain")
	}
	for _, x := range repeat([]int64{1, 2, 3}, 60) {
		p.Observe(x)
	}
	// After ...,1,2,3 the last value is 3 (60 samples end with 3).
	if v, ok := p.Predict(1); !ok || v != 1 {
		t.Errorf("Predict(1)=%d,%v want 1,true", v, ok)
	}
	if v, ok := p.Predict(2); !ok || v != 2 {
		t.Errorf("Predict(2) by chaining=%d,%v want 2,true", v, ok)
	}
	if v, ok := p.Predict(3); !ok || v != 3 {
		t.Errorf("Predict(3) by chaining=%d,%v want 3,true", v, ok)
	}
	p.Reset()
	if _, ok := p.Predict(1); ok {
		t.Error("reset Markov must abstain")
	}
}

func TestMarkovOrderClamped(t *testing.T) {
	p := NewMarkov(0)
	if p.order != 1 {
		t.Errorf("order clamps to 1, got %d", p.order)
	}
}

func TestMarkovOrder2DisambiguatesContext(t *testing.T) {
	// Pattern 1,2,1,3: after "1" alone the next value is ambiguous (2 or
	// 3), but after the pair (2,1) it is always 3 and after (3,1) it is 2.
	stream := repeat([]int64{1, 2, 1, 3}, 200)
	m1 := NewMarkov(1)
	m2 := NewMarkov(2)
	acc1 := feed(m1, stream, 40)
	acc2 := feed(m2, stream, 40)
	if acc2 < 0.95 {
		t.Errorf("order-2 Markov should be nearly perfect on this stream, got %.3f", acc2)
	}
	if acc1 > 0.80 {
		t.Errorf("order-1 Markov cannot disambiguate; expected <= 0.80, got %.3f", acc1)
	}
}

func TestCyclePredictor(t *testing.T) {
	p := NewCycle(512)
	if _, ok := p.Predict(1); ok {
		t.Error("untrained Cycle must abstain")
	}
	stream := repeat([]int64{5, 6, 7, 8}, 40)
	acc := feed(p, stream, 8)
	if acc < 0.99 {
		t.Errorf("cycle predictor accuracy on clean stream = %.3f, want ~1", acc)
	}
}

func TestCyclePredictorGivesUpOnOverlongCycle(t *testing.T) {
	p := NewCycle(2)
	// anchor=1; values never repeat within maxLen, so the builder restarts.
	for _, x := range []int64{1, 2, 3, 4, 5, 6} {
		p.Observe(x)
	}
	if _, ok := p.Predict(1); ok {
		t.Error("cycle predictor should still be untrained")
	}
}

func TestCyclePredictorNoRecoveryAfterPatternChange(t *testing.T) {
	// The cycle heuristic commits to the first cycle and never recovers;
	// the DPD relearns. This is the qualitative difference of Section 6.
	// A small DPD window keeps the relearning transient short relative to
	// the length of the second phase.
	stream := append(repeat([]int64{1, 2, 3}, 90), repeat([]int64{7, 8, 9, 10}, 600)...)
	cycleAcc := feed(NewCycle(512), stream, 120)
	dpdAcc := feed(NewDPD(core.Config{WindowSize: 64, MaxLag: 24}), stream, 120)
	if dpdAcc < 0.9 {
		t.Errorf("dpd accuracy after pattern change = %.3f, want >= 0.9", dpdAcc)
	}
	if cycleAcc > 0.5 {
		t.Errorf("cycle accuracy after pattern change = %.3f, expected to stay low", cycleAcc)
	}
}

func TestSuccessor(t *testing.T) {
	p := NewSuccessor()
	if _, ok := p.Predict(1); ok {
		t.Error("untrained Successor must abstain")
	}
	for _, x := range []int64{1, 2, 3, 1} {
		p.Observe(x)
	}
	if v, ok := p.Predict(1); !ok || v != 2 {
		t.Errorf("successor of 1 should be 2, got %d,%v", v, ok)
	}
	if _, ok := p.Predict(2); ok {
		t.Error("Successor must abstain for k > 1")
	}
	p.Observe(9) // 1 -> 9 overwrites 1 -> 2
	p.Observe(1)
	if v, _ := p.Predict(1); v != 9 {
		t.Errorf("successor of 1 should now be 9, got %d", v)
	}
	p.Reset()
	if _, ok := p.Predict(1); ok {
		t.Error("reset Successor must abstain")
	}
}

func TestDPDMultiStepBeatsSingleStepBaselines(t *testing.T) {
	// +5 prediction: only the DPD (and chained Markov) can answer at all.
	stream := repeat([]int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}, 300)
	dpd := NewDPD(core.DefaultConfig())
	lv := NewLastValue()
	succ := NewSuccessor()
	hitsDPD, total := 0, 0
	for i, x := range stream {
		if i >= 100 && i+4 < len(stream) {
			total++
			if v, ok := dpd.Predict(5); ok && v == stream[i+4] {
				hitsDPD++
			}
			if _, ok := lv.Predict(5); ok {
				t.Fatal("last-value must abstain at +5")
			}
			if _, ok := succ.Predict(5); ok {
				t.Fatal("successor must abstain at +5")
			}
		}
		dpd.Observe(x)
		lv.Observe(x)
		succ.Observe(x)
	}
	if acc := float64(hitsDPD) / float64(total); acc < 0.95 {
		t.Errorf("dpd +5 accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestDPDStreamAccessor(t *testing.T) {
	d := NewDPD(core.DefaultConfig())
	if d.Stream() == nil {
		t.Fatal("Stream() should expose the wrapped StreamPredictor")
	}
	for _, x := range repeat([]int64{4, 5, 6}, 60) {
		d.Observe(x)
	}
	if st := d.Stream().State(); st != core.Locked {
		t.Errorf("state=%v want locked", st)
	}
}

func TestMessagePredictorForecast(t *testing.T) {
	mp := NewDPDMessagePredictor(core.Config{WindowSize: 64, MaxLag: 32})
	senders := []int64{1, 2, 5, 7, 9}
	sizes := []int64{3240, 10240, 19440, 3240, 10240}
	for i := 0; i < 200; i++ {
		mp.Observe(int(senders[i%len(senders)]), sizes[i%len(sizes)])
	}
	fc := mp.Forecast(5)
	if len(fc) != 5 {
		t.Fatalf("forecast length=%d want 5", len(fc))
	}
	for i, f := range fc {
		if !f.OK {
			t.Fatalf("forecast %d not OK", i)
		}
		wantSender := int(senders[(200+i)%len(senders)])
		wantSize := sizes[(200+i)%len(sizes)]
		if f.Sender != wantSender || f.Size != wantSize {
			t.Errorf("forecast %d = %+v, want sender %d size %d", i, f, wantSender, wantSize)
		}
		if f.Ahead != i+1 {
			t.Errorf("forecast %d Ahead=%d want %d", i, f.Ahead, i+1)
		}
	}
	bySender, ok := mp.ForecastSenders(5)
	if !ok {
		t.Fatal("ForecastSenders should succeed")
	}
	if len(bySender) != 5 {
		t.Errorf("expected 5 distinct senders, got %v", bySender)
	}
	mp.Reset()
	if _, ok := mp.ForecastSenders(1); ok {
		t.Error("after reset ForecastSenders must abstain")
	}
}

func TestMessagePredictorAccessors(t *testing.T) {
	s, z := NewLastValue(), NewLastValue()
	mp := NewMessagePredictor(s, z)
	if mp.SenderPredictor() != s || mp.SizePredictor() != z {
		t.Error("accessors should return the wrapped predictors")
	}
	mp.Observe(3, 100)
	fc := mp.Forecast(2)
	if !fc[0].OK || fc[0].Sender != 3 || fc[0].Size != 100 {
		t.Errorf("forecast[0]=%+v want sender 3 size 100", fc[0])
	}
	if fc[1].OK {
		t.Error("last-value based message predictor must abstain at +2")
	}
}

// Property: no predictor panics and Predict never reports ok before any
// observation, for arbitrary streams.
func TestPredictorsNeverPanicAndAbstainWhenEmpty(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Predict(1); ok {
			t.Errorf("%s: fresh predictor must abstain", name)
		}
	}
	f := func(raw []uint8, ks []uint8) bool {
		for _, name := range Names() {
			p, err := New(name)
			if err != nil {
				return false
			}
			for _, b := range raw {
				p.Observe(int64(b % 6))
				for _, kb := range ks {
					p.Predict(int(kb%7) - 1) // includes k <= 0
				}
			}
			p.Reset()
			if _, ok := p.Predict(1); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPredictorsObservePredict(b *testing.B) {
	pattern := repeat([]int64{1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 7}, 1024)
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			p, err := New(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Observe(pattern[i%len(pattern)])
				p.Predict(1)
			}
		})
	}
}

func TestForecastIntoMatchesForecastAndDoesNotAllocate(t *testing.T) {
	mp := NewDPDMessagePredictor(core.DefaultConfig())
	// Lock both streams on a simple periodic pattern.
	for i := 0; i < 4*core.DefaultConfig().WindowSize; i++ {
		mp.Observe(i%6, int64(100*(i%6)+8))
	}
	plain := mp.Forecast(5)
	into := mp.ForecastInto(nil, 5)
	if len(plain) != len(into) {
		t.Fatalf("length mismatch: %d vs %d", len(plain), len(into))
	}
	for i := range plain {
		if plain[i] != into[i] {
			t.Errorf("forecast %d differs: %+v vs %+v", i, plain[i], into[i])
		}
	}
	buf := make([]MessageForecast, 0, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = mp.ForecastInto(buf[:0], 5)
	})
	if allocs != 0 {
		t.Errorf("ForecastInto with a reused buffer allocates %.2f objects per call, want 0", allocs)
	}
}
