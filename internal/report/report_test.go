package report

import (
	"strings"
	"testing"

	"mpipredict/internal/evalx"
	"mpipredict/internal/scalability"
	"mpipredict/internal/trace"
)

func TestTable1Rendering(t *testing.T) {
	rows := []evalx.Table1Row{
		{App: "bt", Procs: 9, P2PMsgs: 3600, PaperP2P: 3651, CollMsgs: 9, PaperColl: 9, MsgSizes: 3, PaperSizes: 3, Senders: 6, PaperSend: 7},
		{App: "is", Procs: 4, P2PMsgs: 11, PaperP2P: 11, CollMsgs: 88, PaperColl: 89, MsgSizes: 3, PaperSizes: 3, Senders: 3, PaperSend: 4},
	}
	out := Table1(rows)
	for _, want := range []string{"Table 1", "bt", "3600", "3651", "is", "88", "89"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestAccuracyFigureRendering(t *testing.T) {
	fig := evalx.FigureResult{
		Level: trace.Logical,
		Cells: []evalx.FigureCell{
			{App: "bt", Procs: 4, Kind: evalx.SenderStream, Horizon: 1, Accuracy: 0.98},
			{App: "bt", Procs: 4, Kind: evalx.SenderStream, Horizon: 2, Accuracy: 0.97},
			{App: "bt", Procs: 4, Kind: evalx.SizeStream, Horizon: 1, Accuracy: 0.99},
		},
	}
	out := AccuracyFigure(fig)
	if !strings.Contains(out, "Figure 3") {
		t.Errorf("logical level should render as Figure 3:\n%s", out)
	}
	if !strings.Contains(out, "98.0%") || !strings.Contains(out, "sender") || !strings.Contains(out, "size") {
		t.Errorf("missing data in:\n%s", out)
	}
	fig.Level = trace.Physical
	if !strings.Contains(AccuracyFigure(fig), "Figure 4") {
		t.Error("physical level should render as Figure 4")
	}
}

func TestFigure1And2Rendering(t *testing.T) {
	f1 := evalx.Figure1Result{
		App: "bt", Procs: 9, Receiver: 3,
		SenderPeriod: 18, SizePeriod: 18,
		SenderExcerpt: []int64{1, 2, 5, 7, 9, 2},
		SizeExcerpt:   []int64{3240, 10240, 19440, 3240, 10240, 19440},
	}
	out := Figure1(f1)
	if !strings.Contains(out, "period: 18") || !strings.Contains(out, "3240") {
		t.Errorf("Figure1 rendering wrong:\n%s", out)
	}

	f2 := evalx.Figure2Result{
		App: "bt", Procs: 4, Receiver: 3,
		Logical:         []int64{0, 0, 2, 2, 1},
		Physical:        []int64{0, 2, 0, 2, 1},
		MismatchPercent: 40,
	}
	out2 := Figure2(f2, 5)
	if !strings.Contains(out2, "Figure 2") || !strings.Contains(out2, "40.0%") || !strings.Contains(out2, "^") {
		t.Errorf("Figure2 rendering wrong:\n%s", out2)
	}
	// Limit larger than the stream is clamped.
	if Figure2(f2, 100) == "" {
		t.Error("rendering with an oversized limit should still work")
	}
}

func TestScalabilityRendering(t *testing.T) {
	buf := scalability.BufferStats{
		Messages: 100, FastPath: 95, SlowPath: 5,
		PeakBuffers: 3, PeakMemory: 3 * 16384, StaticMemory: 1023 * 16384,
	}
	out := Buffers("bt", 1024, buf)
	if !strings.Contains(out, "Section 2.1") || !strings.Contains(out, "95.0%") {
		t.Errorf("buffer report wrong:\n%s", out)
	}
	cred := scalability.CreditStats{
		Messages: 100, Credited: 80, Uncredited: 20,
		PeakReservedBytes: 1 << 20, UncontrolledExposureBytes: 1 << 30,
	}
	out = Credits("is", 1024, cred)
	if !strings.Contains(out, "Section 2.2") || !strings.Contains(out, "80.0%") || !strings.Contains(out, "GiB") {
		t.Errorf("credit report wrong:\n%s", out)
	}
	prot := scalability.ProtocolStats{
		Messages: 50, LargeMessages: 20, Eliminated: 18,
		BaselineLatencyUS: 100000, PredictedLatencyUS: 80000,
	}
	out = Protocol("lu", 32, prot)
	if !strings.Contains(out, "Section 2.3") || !strings.Contains(out, "90.0%") || !strings.Contains(out, "20.0% saved") {
		t.Errorf("protocol report wrong:\n%s", out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.0 KiB",
		3 * 1 << 20:     "3.0 MiB",
		5 * (1 << 30):   "5.0 GiB",
		160 * (1 << 20): "160.0 MiB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Errorf("formatBytes(%d)=%q want %q", in, got, want)
		}
	}
}

func TestStrategyComparisonRendering(t *testing.T) {
	cmp := evalx.StrategyComparison{
		Strategies: []string{"dpd", "lastvalue"},
		Horizons:   5,
		Rows: []evalx.StrategyComparisonRow{
			{
				App: "bt", Procs: 4,
				Logical:  map[string]float64{"dpd": 0.986, "lastvalue": 0.42},
				Physical: map[string]float64{"dpd": 0.872, "lastvalue": 0.40},
			},
		},
	}
	out := StrategyComparison(cmp)
	for _, want := range []string{"dpd", "lastvalue", "bt", "98.6 |  87.2", "42.0 |  40.0", "+1..+5"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output misses %q:\n%s", want, out)
		}
	}
}
