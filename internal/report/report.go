// Package report renders the reproduction's experiment results as plain
// text: the Table 1 comparison, the accuracy series behind Figures 3 and
// 4, the stream excerpts of Figures 1 and 2 and the scalability reports of
// Section 2. The output is deliberately simple ASCII so it can be diffed,
// grepped and pasted into EXPERIMENTS.md.
package report

import (
	"fmt"
	"sort"
	"strings"

	"mpipredict/internal/evalx"
	"mpipredict/internal/scalability"
	"mpipredict/internal/trace"
)

// Table1 renders the measured-vs-paper Table 1 comparison.
func Table1(rows []evalx.Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — per-process message characterisation (measured | paper)\n")
	fmt.Fprintf(&b, "%-8s %5s | %9s %9s | %8s %8s | %6s %6s | %7s %7s\n",
		"app", "procs", "p2p", "p2p*", "coll", "coll*", "sizes", "sizes*", "senders", "send*")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %5d | %9d %9d | %8d %8d | %6d %6d | %7d %7d\n",
			r.App, r.Procs, r.P2PMsgs, r.PaperP2P, r.CollMsgs, r.PaperColl,
			r.MsgSizes, r.PaperSizes, r.Senders, r.PaperSend)
	}
	b.WriteString("(* = value reported in the paper; 0 means the paper has no value)\n")
	return b.String()
}

// AccuracyFigure renders the Figure 3 / Figure 4 data: one row per
// (workload, process count, stream kind), with the +1..+5 accuracies as
// percentages.
func AccuracyFigure(fig evalx.FigureResult) string {
	title := "Figure 3 — prediction accuracy of the logical MPI communication"
	if fig.Level == trace.Physical {
		title = "Figure 4 — prediction accuracy of the physical MPI communication"
	}
	type key struct {
		app   string
		procs int
		kind  evalx.StreamKind
	}
	series := make(map[key][]float64)
	horizons := 0
	for _, c := range fig.Cells {
		k := key{c.App, c.Procs, c.Kind}
		if len(series[k]) < c.Horizon {
			grown := make([]float64, c.Horizon)
			copy(grown, series[k])
			series[k] = grown
		}
		series[k][c.Horizon-1] = c.Accuracy
		if c.Horizon > horizons {
			horizons = c.Horizon
		}
	}
	keys := make([]key, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].app != keys[j].app {
			return keys[i].app < keys[j].app
		}
		if keys[i].procs != keys[j].procs {
			return keys[i].procs < keys[j].procs
		}
		return keys[i].kind < keys[j].kind
	})
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-8s %5s %-7s", "app", "procs", "stream")
	for k := 1; k <= horizons; k++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("+%d", k))
	}
	fmt.Fprintln(&b)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-8s %5d %-7s", k.app, k.procs, k.kind)
		for _, acc := range series[k] {
			fmt.Fprintf(&b, " %5.1f%%", 100*acc)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Figure1 renders the detected periods and a short excerpt of the BT.9
// streams.
func Figure1(res evalx.Figure1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — iterative pattern at process %d of %s.%d\n", res.Receiver, res.App, res.Procs)
	fmt.Fprintf(&b, "detected sender-stream period: %d (paper: %d)\n", res.SenderPeriod, evalx.PaperFigure1Period)
	fmt.Fprintf(&b, "detected size-stream period:   %d (paper: %d)\n", res.SizePeriod, evalx.PaperFigure1Period)
	fmt.Fprintf(&b, "sender excerpt: %s\n", formatSeries(res.SenderExcerpt, res.SenderPeriod))
	fmt.Fprintf(&b, "size excerpt:   %s\n", formatSeries(res.SizeExcerpt, res.SizePeriod))
	return b.String()
}

// Figure2 renders the logical vs physical sender streams side by side,
// marking the positions at which the physical arrival order deviates.
func Figure2(res evalx.Figure2Result, limit int) string {
	if limit <= 0 || limit > len(res.Logical) {
		limit = len(res.Logical)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — logical vs physical sender stream at process %d of %s.%d\n",
		res.Receiver, res.App, res.Procs)
	fmt.Fprintf(&b, "positions differing: %.1f%%\n", res.MismatchPercent)
	var logical, physical, marks strings.Builder
	for i := 0; i < limit; i++ {
		logical.WriteString(fmt.Sprintf("%2d ", res.Logical[i]))
		physical.WriteString(fmt.Sprintf("%2d ", res.Physical[i]))
		if res.Logical[i] != res.Physical[i] {
			marks.WriteString(" ^ ")
		} else {
			marks.WriteString("   ")
		}
	}
	fmt.Fprintf(&b, "logical:  %s\n", logical.String())
	fmt.Fprintf(&b, "physical: %s\n", physical.String())
	fmt.Fprintf(&b, "          %s\n", marks.String())
	return b.String()
}

// formatSeries prints a series with a separator at every period boundary.
func formatSeries(xs []int64, period int) string {
	var b strings.Builder
	for i, x := range xs {
		if period > 0 && i > 0 && i%period == 0 {
			b.WriteString("| ")
		}
		fmt.Fprintf(&b, "%d ", x)
	}
	return strings.TrimSpace(b.String())
}

// Buffers renders the Section 2.1 memory-reduction report.
func Buffers(app string, procs int, stats scalability.BufferStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.1 — prediction-driven buffer allocation (%s, %d procs)\n", app, procs)
	fmt.Fprintf(&b, "messages: %d  fast-path rate: %.1f%%\n", stats.Messages, 100*stats.FastPathRate())
	fmt.Fprintf(&b, "static per-peer memory: %s   prediction-driven peak: %s   reduction: %.1fx\n",
		formatBytes(stats.StaticMemory), formatBytes(stats.PeakMemory), stats.MemoryReductionFactor())
	return b.String()
}

// Credits renders the Section 2.2 flow-control report.
func Credits(app string, procs int, stats scalability.CreditStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.2 — credit-based control flow (%s, %d procs)\n", app, procs)
	fmt.Fprintf(&b, "messages: %d  credited rate: %.1f%%\n", stats.Messages, 100*stats.CreditedRate())
	fmt.Fprintf(&b, "uncontrolled incast exposure: %s   credited peak reservation: %s   reduction: %.1fx\n",
		formatBytes(stats.UncontrolledExposureBytes), formatBytes(stats.PeakReservedBytes), stats.ExposureReductionFactor())
	return b.String()
}

// Protocol renders the Section 2.3 rendezvous-elimination report.
func Protocol(app string, procs int, stats scalability.ProtocolStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.3 — rendezvous elimination (%s, %d procs)\n", app, procs)
	fmt.Fprintf(&b, "messages: %d  large (rendezvous) messages: %d  handshakes eliminated: %.1f%%\n",
		stats.Messages, stats.LargeMessages, 100*stats.EliminationRate())
	fmt.Fprintf(&b, "summed latency: baseline %.1f ms, with prediction %.1f ms (%.1f%% saved)\n",
		stats.BaselineLatencyUS/1000, stats.PredictedLatencyUS/1000, 100*stats.LatencySavingFraction())
	return b.String()
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// StrategyComparisonCSV renders the comparison in long-form CSV — one
// row per (workload, strategy) with the mean sender accuracy at both
// levels as fractions — the shape analysis scripts want to pivot and
// plot (`mpipredict -experiment compare -format csv`).
func StrategyComparisonCSV(cmp evalx.StrategyComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app,procs,strategy,horizons,logical_mean_sender_accuracy,physical_mean_sender_accuracy\n")
	for _, row := range cmp.Rows {
		for _, name := range cmp.Strategies {
			fmt.Fprintf(&b, "%s,%d,%s,%d,%.6f,%.6f\n",
				row.App, row.Procs, name, cmp.Horizons, row.Logical[name], row.Physical[name])
		}
	}
	return b.String()
}

// StrategyComparison renders the per-strategy accuracy comparison: one row
// per workload, one "logical | physical" column per strategy, mean
// +1..+k sender-stream accuracy as percentages.
func StrategyComparison(cmp evalx.StrategyComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strategy comparison — mean +1..+%d sender accuracy, %% (logical | physical)\n", cmp.Horizons)
	fmt.Fprintf(&b, "%-8s %5s", "app", "procs")
	for _, name := range cmp.Strategies {
		fmt.Fprintf(&b, " %15s", name)
	}
	fmt.Fprintln(&b)
	for _, row := range cmp.Rows {
		fmt.Fprintf(&b, "%-8s %5d", row.App, row.Procs)
		for _, name := range cmp.Strategies {
			cell := fmt.Sprintf("%5.1f | %5.1f", 100*row.Logical[name], 100*row.Physical[name])
			fmt.Fprintf(&b, " %15s", cell)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
