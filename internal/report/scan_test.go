package report

import (
	"strings"
	"testing"

	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
)

func TestTopSendersRendering(t *testing.T) {
	rows := []tracestore.SenderCount{
		{Sender: 3, Events: 150},
		{Sender: 1, Events: 50},
	}
	out := TopSenders("bt", 4, trace.Logical, rows, 200)
	for _, want := range []string{"Top senders — bt, 4 procs, logical stream (200 events)", "rank", "75.0%", "25.0%", "150", "50"} {
		if !strings.Contains(out, want) {
			t.Errorf("TopSenders output missing %q:\n%s", want, out)
		}
	}
	// A zero total (empty stream) must not divide by zero.
	if !strings.Contains(TopSenders("bt", 4, trace.Logical, rows, 0), "0.0%") {
		t.Error("zero total should render 0.0% shares")
	}

	csv := TopSendersCSV("bt", 4, trace.Logical, rows, 200)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || lines[0] != "app,procs,level,rank,sender,events,share" {
		t.Fatalf("unexpected CSV shape:\n%s", csv)
	}
	if lines[1] != "bt,4,logical,1,3,150,0.750000" {
		t.Errorf("CSV row = %q", lines[1])
	}
	if !strings.Contains(TopSendersCSV("bt", 4, trace.Logical, rows, 0), ",0.000000") {
		t.Error("zero total should render 0 shares in CSV")
	}
}

func TestScanWindowsRendering(t *testing.T) {
	wins := []tracestore.WindowStat{
		{Index: 0, Start: 0, End: 10.5, Events: 7, P2P: 5, Collective: 2, DistinctSenders: 3},
		{Index: 1, Start: 10.5, End: 21, Events: 4, P2P: 4, Collective: 0, DistinctSenders: 2},
	}
	out := ScanWindows("lu", 8, trace.Physical, wins)
	for _, want := range []string{"Time windows — lu, 8 procs, physical stream (2 windows)", "start_us", "collective", "10.5", "21.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("ScanWindows output missing %q:\n%s", want, out)
		}
	}

	csv := ScanWindowsCSV("lu", 8, trace.Physical, wins)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || lines[0] != "app,procs,level,window,start_us,end_us,events,p2p,collective,distinct_senders" {
		t.Fatalf("unexpected CSV shape:\n%s", csv)
	}
	if lines[1] != "lu,8,physical,0,0.000000,10.500000,7,5,2,3" {
		t.Errorf("CSV row = %q", lines[1])
	}
}

func TestPhaseBoundariesRendering(t *testing.T) {
	bounds := []tracestore.PhaseBoundary{
		{Window: 3, Time: 120.25, Similarity: 0.125},
	}
	out := PhaseBoundaries("sweep3d", 6, trace.Logical, 8, 0.5, bounds)
	for _, want := range []string{"Phase boundaries — sweep3d, 6 procs, logical stream (8 windows, similarity < 0.50)", "jaccard", "120.2", "0.125"} {
		if !strings.Contains(out, want) {
			t.Errorf("PhaseBoundaries output missing %q:\n%s", want, out)
		}
	}
	empty := PhaseBoundaries("sweep3d", 6, trace.Logical, 8, 0.5, nil)
	if !strings.Contains(empty, "no boundaries") {
		t.Errorf("empty boundary list should explain itself:\n%s", empty)
	}

	csv := PhaseBoundariesCSV("sweep3d", 6, trace.Logical, bounds)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 || lines[0] != "app,procs,level,window,start_us,jaccard" {
		t.Fatalf("unexpected CSV shape:\n%s", csv)
	}
	if lines[1] != "sweep3d,6,logical,3,120.250000,0.125000" {
		t.Errorf("CSV row = %q", lines[1])
	}
}
