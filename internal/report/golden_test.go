package report

// Golden-file regression tests for the rendered experiment reports. The
// input is the committed trace corpus (testdata/corpus at the repository
// root), so these tests pin the whole replay half of the pipeline — codec
// decode, characterisation, prediction evaluation and text rendering —
// without running the simulator. Regenerate after an intentional change
// with:
//
//	go test ./internal/report -run Golden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mpipredict/internal/evalx"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

var update = flag.Bool("update", false, "regenerate golden files under testdata/")

// corpusFiles lists the corpus in Table 1 order.
var corpusFiles = []string{"bt.4.mpt", "cg.4.mpt", "lu.4.mpt", "is.4.mpt", "sweep3d.6.mpt"}

func loadCorpus(t *testing.T) []*trace.Trace {
	t.Helper()
	traces := make([]*trace.Trace, 0, len(corpusFiles))
	for _, f := range corpusFiles {
		tr, err := trace.Load(filepath.Join("..", "..", "testdata", "corpus", f))
		if err != nil {
			t.Fatalf("loading corpus %s (regenerate with `go test -run TestGoldenCorpus -update .` at the repo root): %v", f, err)
		}
		traces = append(traces, tr)
	}
	return traces
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestTable1GoldenFromCorpus renders Table 1 built purely from the
// committed corpus traces.
func TestTable1GoldenFromCorpus(t *testing.T) {
	var rows []evalx.Table1Row
	for _, tr := range loadCorpus(t) {
		receiver, err := workloads.ReplayReceiver(tr)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, evalx.Table1RowFromTrace(tr, receiver))
	}
	checkGolden(t, "table1_corpus.golden", Table1(rows))
}

// TestFiguresGoldenFromCorpus evaluates prediction accuracy on the corpus
// traces and renders the Figure 3 / Figure 4 reports.
func TestFiguresGoldenFromCorpus(t *testing.T) {
	opts := evalx.Options{NoCache: true}
	var results []evalx.Result
	for _, tr := range loadCorpus(t) {
		receiver, err := workloads.ReplayReceiver(tr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := evalx.EvaluateTrace(tr, receiver, opts)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	logical, physical := evalx.FiguresFromResults(opts, results)
	checkGolden(t, "figure3_corpus.golden", AccuracyFigure(logical))
	checkGolden(t, "figure4_corpus.golden", AccuracyFigure(physical))
}
