package report

// Renderers for `mpipredict -experiment scan` — the analytical queries
// the columnar trace store (internal/tracestore) answers without
// materializing the trace. Each view has the fixed-layout table form the
// terminal gets and a long-form CSV for analysis scripts, mirroring the
// StrategyComparison pair.

import (
	"fmt"
	"strings"

	"mpipredict/internal/trace"
	"mpipredict/internal/tracestore"
)

// TopSenders renders a top-K sender ranking with share-of-total columns.
func TopSenders(app string, procs int, level trace.Level, rows []tracestore.SenderCount, total int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Top senders — %s, %d procs, %s stream (%d events)\n", app, procs, level, total)
	fmt.Fprintf(&b, "%4s %8s %12s %8s\n", "rank", "sender", "events", "share")
	for i, row := range rows {
		share := 0.0
		if total > 0 {
			share = float64(row.Events) / float64(total)
		}
		fmt.Fprintf(&b, "%4d %8d %12d %7.1f%%\n", i+1, row.Sender, row.Events, 100*share)
	}
	return b.String()
}

// TopSendersCSV is the machine-readable sibling of TopSenders.
func TopSendersCSV(app string, procs int, level trace.Level, rows []tracestore.SenderCount, total int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app,procs,level,rank,sender,events,share\n")
	for i, row := range rows {
		share := 0.0
		if total > 0 {
			share = float64(row.Events) / float64(total)
		}
		fmt.Fprintf(&b, "%s,%d,%s,%d,%d,%d,%.6f\n", app, procs, level, i+1, row.Sender, row.Events, share)
	}
	return b.String()
}

// ScanWindows renders the per-window event tallies of a windowed scan.
func ScanWindows(app string, procs int, level trace.Level, wins []tracestore.WindowStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Time windows — %s, %d procs, %s stream (%d windows)\n", app, procs, level, len(wins))
	fmt.Fprintf(&b, "%6s %14s %14s %10s %10s %12s %8s\n", "window", "start_us", "end_us", "events", "p2p", "collective", "senders")
	for _, w := range wins {
		fmt.Fprintf(&b, "%6d %14.1f %14.1f %10d %10d %12d %8d\n",
			w.Index, w.Start, w.End, w.Events, w.P2P, w.Collective, w.DistinctSenders)
	}
	return b.String()
}

// ScanWindowsCSV is the machine-readable sibling of ScanWindows.
func ScanWindowsCSV(app string, procs int, level trace.Level, wins []tracestore.WindowStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app,procs,level,window,start_us,end_us,events,p2p,collective,distinct_senders\n")
	for _, w := range wins {
		fmt.Fprintf(&b, "%s,%d,%s,%d,%.6f,%.6f,%d,%d,%d,%d\n",
			app, procs, level, w.Index, w.Start, w.End, w.Events, w.P2P, w.Collective, w.DistinctSenders)
	}
	return b.String()
}

// PhaseBoundaries renders detected communication-phase shifts.
func PhaseBoundaries(app string, procs int, level trace.Level, windows int, threshold float64, bounds []tracestore.PhaseBoundary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Phase boundaries — %s, %d procs, %s stream (%d windows, similarity < %.2f)\n",
		app, procs, level, windows, threshold)
	if len(bounds) == 0 {
		fmt.Fprintf(&b, "no boundaries: the active-sender set is stable across every window\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%6s %14s %10s\n", "window", "start_us", "jaccard")
	for _, p := range bounds {
		fmt.Fprintf(&b, "%6d %14.1f %10.3f\n", p.Window, p.Time, p.Similarity)
	}
	return b.String()
}

// PhaseBoundariesCSV is the machine-readable sibling of PhaseBoundaries.
func PhaseBoundariesCSV(app string, procs int, level trace.Level, bounds []tracestore.PhaseBoundary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app,procs,level,window,start_us,jaccard\n")
	for _, p := range bounds {
		fmt.Fprintf(&b, "%s,%d,%s,%d,%.6f,%.6f\n", app, procs, level, p.Window, p.Time, p.Similarity)
	}
	return b.String()
}
