package scalability

import (
	"fmt"

	"mpipredict/internal/core"
	"mpipredict/internal/predictor"
	"mpipredict/internal/trace"
)

// defaultPredictorConfig is the core configuration shared by the
// scalability mechanisms' default forecasters.
func defaultPredictorConfig() core.Config { return core.DefaultConfig() }

// CreditConfig parameterises the credit-based flow control of Section 2.2.
type CreditConfig struct {
	// Horizon is how many future messages the receiver grants credits for.
	Horizon int
	// Forecaster produces the (sender, size) forecasts. Nil selects a
	// DPD-based message predictor.
	Forecaster *predictor.MessagePredictor
}

func (c CreditConfig) withDefaults() CreditConfig {
	if c.Horizon <= 0 {
		c.Horizon = 5
	}
	if c.Forecaster == nil {
		c.Forecaster = predictor.NewDPDMessagePredictor(defaultPredictorConfig())
	}
	return c
}

// CreditStats summarises a credit-manager replay.
type CreditStats struct {
	// Messages is the number of messages processed.
	Messages int64
	// Credited counts messages that arrived with a matching credit: the
	// sender could send eagerly, knowing memory was reserved.
	Credited int64
	// Uncredited counts messages without a credit; the sender has to ask
	// permission first (one extra round trip) before sending.
	Uncredited int64
	// PeakReservedBytes is the largest amount of memory simultaneously
	// reserved by outstanding credits.
	PeakReservedBytes int64
	// UncontrolledExposureBytes is the memory the receiver would have to
	// absorb in the worst case without flow control: every other process
	// sending one eager message at once (the incast of Section 2.2).
	UncontrolledExposureBytes int64
}

// CreditedRate returns the fraction of messages that arrived with a
// credit.
func (s CreditStats) CreditedRate() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.Credited) / float64(s.Messages)
}

// ExposureReductionFactor returns how many times smaller the credited
// peak reservation is compared to the uncontrolled incast exposure.
func (s CreditStats) ExposureReductionFactor() float64 {
	if s.PeakReservedBytes == 0 {
		return 0
	}
	return float64(s.UncontrolledExposureBytes) / float64(s.PeakReservedBytes)
}

// IncastExposure returns the worst-case receiver memory exposure when
// every other process sends one eager message of the given size without
// any flow control.
func IncastExposure(procs int, eagerBytes int64) int64 {
	if procs < 1 {
		return 0
	}
	return int64(procs-1) * eagerBytes
}

// CreditManager grants credits for the messages the predictor expects and
// accounts how much memory those credits pin down.
type CreditManager struct {
	cfg     CreditConfig
	procs   int
	credits map[int][]int64 // outstanding per-sender credited sizes
	stats   CreditStats

	// next and forecast are scratch buffers recycled across messages
	// (swap + truncate) so the per-message regrant does not allocate in
	// steady state.
	next     map[int][]int64
	forecast []predictor.MessageForecast
}

// NewCreditManager builds a credit manager for a job with the given
// number of processes and the eager-message size used for the
// uncontrolled-exposure baseline.
func NewCreditManager(procs int, eagerBytes int64, cfg CreditConfig) (*CreditManager, error) {
	if procs < 2 {
		return nil, fmt.Errorf("scalability: need at least 2 processes, got %d", procs)
	}
	cfg = cfg.withDefaults()
	return &CreditManager{
		cfg:     cfg,
		procs:   procs,
		credits: make(map[int][]int64),
		next:    make(map[int][]int64),
		stats:   CreditStats{UncontrolledExposureBytes: IncastExposure(procs, eagerBytes)},
	}, nil
}

// OnMessage processes one arriving message: it consumes a credit if one
// was outstanding for the sender, then refreshes the credits according to
// the new forecast.
func (m *CreditManager) OnMessage(sender int, size int64) {
	m.stats.Messages++
	if queue := m.credits[sender]; len(queue) > 0 {
		m.stats.Credited++
		// Shift in place rather than reslicing from the front, so the
		// queue keeps its backing capacity for the recycling in regrant.
		copy(queue, queue[1:])
		m.credits[sender] = queue[:len(queue)-1]
	} else {
		m.stats.Uncredited++
	}
	m.cfg.Forecaster.Observe(sender, size)
	m.regrant()
}

// regrant recomputes the outstanding credits from the current forecast.
// The retired credit map is recycled: its per-sender queues are truncated
// in place and refilled, so the per-message churn of the seed
// implementation (one map plus one slice per sender per message) is gone.
func (m *CreditManager) regrant() {
	m.forecast = m.cfg.Forecaster.ForecastInto(m.forecast[:0], m.cfg.Horizon)
	for sender, queue := range m.next {
		m.next[sender] = queue[:0]
	}
	var reserved int64
	for _, f := range m.forecast {
		if !f.OK || f.Sender < 0 || f.Sender >= m.procs {
			continue
		}
		m.next[f.Sender] = append(m.next[f.Sender], f.Size)
		reserved += f.Size
	}
	m.credits, m.next = m.next, m.credits
	if reserved > m.stats.PeakReservedBytes {
		m.stats.PeakReservedBytes = reserved
	}
}

// Stats returns the statistics collected so far.
func (m *CreditManager) Stats() CreditStats { return m.stats }

// ReplayCredits replays the physical message stream of one receiver
// through the credit manager. eagerBytes sets the per-message size used
// for the uncontrolled incast baseline; pass 0 to use the largest message
// observed in the stream.
func ReplayCredits(tr *trace.Trace, receiver int, eagerBytes int64, cfg CreditConfig) (CreditStats, error) {
	recs := tr.Filter(receiver, trace.Physical)
	if len(recs) == 0 {
		return CreditStats{}, fmt.Errorf("scalability: receiver %d has no physical records", receiver)
	}
	if eagerBytes <= 0 {
		for _, r := range recs {
			if r.Size > eagerBytes {
				eagerBytes = r.Size
			}
		}
	}
	m, err := NewCreditManager(tr.Procs, eagerBytes, cfg)
	if err != nil {
		return CreditStats{}, err
	}
	for _, r := range recs {
		m.OnMessage(r.Sender, r.Size)
	}
	return m.Stats(), nil
}
