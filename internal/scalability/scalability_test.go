package scalability

import (
	"testing"

	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// periodicTrace builds a synthetic trace whose physical stream repeats a
// fixed (sender, size) pattern — perfectly predictable, which makes the
// expected behaviour of the three mechanisms easy to assert.
func periodicTrace(procs int, pattern []trace.SynthMessage, reps int) *trace.Trace {
	return trace.Synthesize(trace.SynthConfig{
		App: "synthetic", Procs: procs, Receiver: 0,
		Pattern: pattern, Repetitions: reps,
	})
}

func TestStaticBufferMemory(t *testing.T) {
	if got := StaticBufferMemory(10000, DefaultPerPeerBufferBytes); got != int64(9999)*16*1024 {
		t.Errorf("static memory for 10000 procs = %d", got)
	}
	if StaticBufferMemory(0, 16384) != 0 {
		t.Error("no procs, no memory")
	}
	// The paper's headline: ~160 MB per process at 10 000 nodes.
	gb := float64(StaticBufferMemory(10000, DefaultPerPeerBufferBytes)) / (1024 * 1024)
	if gb < 150 || gb > 170 {
		t.Errorf("static memory at 10000 nodes = %.1f MB, expected ~160 MB", gb)
	}
}

func TestBufferManagerFastPathOnPredictableStream(t *testing.T) {
	pattern := []trace.SynthMessage{
		{Sender: 1, Size: 1024}, {Sender: 2, Size: 2048}, {Sender: 3, Size: 1024},
	}
	tr := periodicTrace(64, pattern, 200)
	stats, err := ReplayBuffers(tr, 0, BufferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 600 {
		t.Fatalf("messages=%d want 600", stats.Messages)
	}
	if rate := stats.FastPathRate(); rate < 0.9 {
		t.Errorf("fast-path rate=%.3f want >= 0.9 on a perfectly periodic stream", rate)
	}
	if stats.PeakBuffers == 0 || stats.PeakBuffers > 5 {
		t.Errorf("peak buffers=%d want a small positive number", stats.PeakBuffers)
	}
	if stats.StaticMemory != StaticBufferMemory(64, DefaultPerPeerBufferBytes) {
		t.Errorf("static memory=%d", stats.StaticMemory)
	}
	if stats.MemoryReductionFactor() < 10 {
		t.Errorf("memory reduction factor=%.1f want >= 10 (3 active senders out of 63 peers)", stats.MemoryReductionFactor())
	}
}

func TestBufferManagerValidation(t *testing.T) {
	if _, err := NewBufferManager(1, BufferConfig{}); err == nil {
		t.Error("fewer than 2 processes should be rejected")
	}
	tr := trace.New("empty", 4)
	if _, err := ReplayBuffers(tr, 0, BufferConfig{}); err == nil {
		t.Error("empty trace should be rejected")
	}
}

func TestBufferStatsZeroValues(t *testing.T) {
	var s BufferStats
	if s.FastPathRate() != 0 || s.MemoryReductionFactor() != 0 {
		t.Error("zero stats should report zero rates")
	}
}

func TestCreditManagerOnPredictableStream(t *testing.T) {
	pattern := []trace.SynthMessage{
		{Sender: 1, Size: 8 * 1024}, {Sender: 2, Size: 8 * 1024},
		{Sender: 3, Size: 4 * 1024}, {Sender: 1, Size: 8 * 1024},
	}
	tr := periodicTrace(128, pattern, 150)
	stats, err := ReplayCredits(tr, 0, 8*1024, CreditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rate := stats.CreditedRate(); rate < 0.9 {
		t.Errorf("credited rate=%.3f want >= 0.9", rate)
	}
	if stats.UncontrolledExposureBytes != IncastExposure(128, 8*1024) {
		t.Errorf("uncontrolled exposure=%d", stats.UncontrolledExposureBytes)
	}
	if stats.PeakReservedBytes == 0 {
		t.Error("some memory should have been reserved")
	}
	if stats.PeakReservedBytes >= stats.UncontrolledExposureBytes {
		t.Errorf("credited reservation (%d) should be far below the incast exposure (%d)",
			stats.PeakReservedBytes, stats.UncontrolledExposureBytes)
	}
	if stats.ExposureReductionFactor() < 10 {
		t.Errorf("exposure reduction=%.1f want >= 10", stats.ExposureReductionFactor())
	}
}

func TestCreditManagerDefaultsAndValidation(t *testing.T) {
	if _, err := NewCreditManager(1, 1024, CreditConfig{}); err == nil {
		t.Error("fewer than 2 processes should be rejected")
	}
	if IncastExposure(0, 100) != 0 {
		t.Error("incast exposure of 0 procs should be 0")
	}
	var s CreditStats
	if s.CreditedRate() != 0 || s.ExposureReductionFactor() != 0 {
		t.Error("zero stats should report zero rates")
	}
	tr := trace.New("empty", 4)
	if _, err := ReplayCredits(tr, 0, 0, CreditConfig{}); err == nil {
		t.Error("empty trace should be rejected")
	}
}

func TestReplayCreditsInfersEagerBytes(t *testing.T) {
	pattern := []trace.SynthMessage{{Sender: 1, Size: 3000}, {Sender: 2, Size: 500}}
	tr := periodicTrace(16, pattern, 50)
	stats, err := ReplayCredits(tr, 0, 0, CreditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UncontrolledExposureBytes != 15*3000 {
		t.Errorf("inferred exposure=%d want %d (largest observed message)", stats.UncontrolledExposureBytes, 15*3000)
	}
}

func TestProtocolAdvisorEliminatesRendezvous(t *testing.T) {
	big := int64(64 * 1024) // above the 16 KB eager limit
	pattern := []trace.SynthMessage{
		{Sender: 1, Size: big}, {Sender: 2, Size: 512}, {Sender: 3, Size: big},
	}
	tr := periodicTrace(8, pattern, 200)
	stats, err := ReplayProtocol(tr, 0, ProtocolConfig{Net: simnet.NoiselessConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 600 || stats.LargeMessages != 400 {
		t.Fatalf("messages=%d large=%d want 600/400", stats.Messages, stats.LargeMessages)
	}
	if rate := stats.EliminationRate(); rate < 0.9 {
		t.Errorf("elimination rate=%.3f want >= 0.9 on a predictable stream", rate)
	}
	if stats.PredictedLatencyUS >= stats.BaselineLatencyUS {
		t.Error("predicted latency should be below the baseline")
	}
	saving := stats.LatencySavingFraction()
	if saving <= 0 || saving >= 1 {
		t.Errorf("latency saving fraction=%.3f out of range", saving)
	}
}

func TestProtocolAdvisorSmallMessagesUnaffected(t *testing.T) {
	pattern := []trace.SynthMessage{{Sender: 1, Size: 512}, {Sender: 2, Size: 1024}}
	tr := periodicTrace(4, pattern, 100)
	stats, err := ReplayProtocol(tr, 0, ProtocolConfig{Net: simnet.NoiselessConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LargeMessages != 0 || stats.Eliminated != 0 {
		t.Errorf("no large messages expected, got %d/%d", stats.LargeMessages, stats.Eliminated)
	}
	if stats.PredictedLatencyUS != stats.BaselineLatencyUS {
		t.Error("latency must be unchanged when no rendezvous can be eliminated")
	}
	if stats.EliminationRate() != 0 || stats.LatencySavingFraction() != 0 {
		t.Error("rates should be zero without large messages")
	}
}

func TestProtocolAdvisorValidation(t *testing.T) {
	bad := ProtocolConfig{Net: simnet.Config{LatencyUS: -1, BandwidthBytesPerUS: 1}}
	if _, err := NewProtocolAdvisor(bad); err == nil {
		t.Error("invalid network config should be rejected")
	}
	tr := trace.New("empty", 4)
	if _, err := ReplayProtocol(tr, 0, ProtocolConfig{}); err == nil {
		t.Error("empty trace should be rejected")
	}
	var s ProtocolStats
	if s.LatencySavingFraction() != 0 {
		t.Error("zero stats should report zero saving")
	}
}

func TestMechanismsOnRealWorkloadTrace(t *testing.T) {
	// End-to-end: run a reduced BT.4 simulation and feed its physical
	// stream to all three mechanisms. The stream is strongly periodic, so
	// every mechanism should do well.
	tr, err := workloads.Run(workloads.RunConfig{
		Spec: workloads.Spec{Name: "bt", Procs: 4, Iterations: 40},
		Net:  simnet.DefaultConfig(),
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv, _ := workloads.TypicalReceiver("bt", 4)

	buf, err := ReplayBuffers(tr, recv, BufferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if buf.FastPathRate() < 0.7 {
		t.Errorf("buffer fast-path rate on BT.4=%.3f want >= 0.7", buf.FastPathRate())
	}

	cred, err := ReplayCredits(tr, recv, 0, CreditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cred.CreditedRate() < 0.6 {
		t.Errorf("credited rate on BT.4=%.3f want >= 0.6", cred.CreditedRate())
	}

	prot, err := ReplayProtocol(tr, recv, ProtocolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if prot.LargeMessages == 0 {
		t.Fatal("BT.4 faces are larger than the eager limit; expected rendezvous traffic")
	}
	if prot.EliminationRate() < 0.5 {
		t.Errorf("rendezvous elimination rate on BT.4=%.3f want >= 0.5", prot.EliminationRate())
	}
}
