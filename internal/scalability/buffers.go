package scalability

import (
	"fmt"

	"mpipredict/internal/predictor"
	"mpipredict/internal/trace"
)

// DefaultPerPeerBufferBytes is the per-peer eager buffer size the paper
// quotes for the IBM MPI implementation (16 KB).
const DefaultPerPeerBufferBytes = 16 * 1024

// StaticBufferMemory returns the memory one process dedicates to per-peer
// receive buffers under the conventional scheme: one buffer for every
// other process. At 10 000 processes and 16 KB per peer this is the
// 160 MB per process figure of Section 2.1.
func StaticBufferMemory(procs int, perPeerBytes int64) int64 {
	if procs < 1 {
		return 0
	}
	return int64(procs-1) * perPeerBytes
}

// BufferConfig parameterises the prediction-driven buffer manager.
type BufferConfig struct {
	// PerPeerBytes is the size of one eager receive buffer.
	PerPeerBytes int64
	// Horizon is how many future messages the receiver provisions for.
	Horizon int
	// Forecaster produces the (sender, size) forecasts. Nil selects a
	// DPD-based message predictor with default configuration.
	Forecaster *predictor.MessagePredictor
}

func (c BufferConfig) withDefaults() BufferConfig {
	if c.PerPeerBytes <= 0 {
		c.PerPeerBytes = DefaultPerPeerBufferBytes
	}
	if c.Horizon <= 0 {
		c.Horizon = 5
	}
	if c.Forecaster == nil {
		c.Forecaster = predictor.NewDPDMessagePredictor(defaultPredictorConfig())
	}
	return c
}

// BufferStats summarises a buffer-manager replay.
type BufferStats struct {
	// Messages is the number of messages processed.
	Messages int64
	// FastPath counts messages whose sender had a pre-allocated buffer
	// (the eager path is taken without any control-flow message).
	FastPath int64
	// SlowPath counts mispredictions: the sender was not provisioned, so
	// the message has to take the ask-permission path of Section 2.1.
	SlowPath int64
	// PeakBuffers is the largest number of simultaneously allocated
	// buffers.
	PeakBuffers int
	// PeakMemory is PeakBuffers times the per-peer buffer size.
	PeakMemory int64
	// StaticMemory is the memory the conventional one-buffer-per-peer
	// scheme would need for the same number of processes.
	StaticMemory int64
}

// FastPathRate returns the fraction of messages that hit a pre-allocated
// buffer.
func (s BufferStats) FastPathRate() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.FastPath) / float64(s.Messages)
}

// MemoryReductionFactor returns how many times smaller the peak
// prediction-driven buffer memory is compared to the static scheme.
func (s BufferStats) MemoryReductionFactor() float64 {
	if s.PeakMemory == 0 {
		return 0
	}
	return float64(s.StaticMemory) / float64(s.PeakMemory)
}

// BufferManager allocates receive buffers for the senders the predictor
// expects next. It models the receiver side of the Section 2.1 protocol;
// the trace replay drives it with the physically arriving messages.
type BufferManager struct {
	cfg       BufferConfig
	procs     int
	allocated map[int]bool
	stats     BufferStats

	// next and forecast are scratch buffers reused across messages so the
	// per-message reprovision performs no allocations in steady state.
	next     map[int]bool
	forecast []predictor.MessageForecast
}

// NewBufferManager returns a manager for a job with the given number of
// processes.
func NewBufferManager(procs int, cfg BufferConfig) (*BufferManager, error) {
	if procs < 2 {
		return nil, fmt.Errorf("scalability: need at least 2 processes, got %d", procs)
	}
	cfg = cfg.withDefaults()
	return &BufferManager{
		cfg:       cfg,
		procs:     procs,
		allocated: make(map[int]bool),
		next:      make(map[int]bool),
		stats:     BufferStats{StaticMemory: StaticBufferMemory(procs, cfg.PerPeerBytes)},
	}, nil
}

// OnMessage processes one arriving message: it checks whether the sender
// had a provisioned buffer (fast path) and then updates the forecast and
// re-provisions buffers for the senders expected next.
func (m *BufferManager) OnMessage(sender int, size int64) {
	m.stats.Messages++
	if m.allocated[sender] {
		m.stats.FastPath++
	} else {
		m.stats.SlowPath++
	}
	m.cfg.Forecaster.Observe(sender, size)
	m.reprovision()
}

// reprovision reallocates buffers for the currently forecast senders. The
// previous allocation is released first; in a real implementation the
// buffers would be recycled, but for the memory accounting only the
// simultaneous peak matters. The forecast buffer and the two allocation
// maps are reused (swap + clear) so this per-message step does not
// allocate.
func (m *BufferManager) reprovision() {
	m.forecast = m.cfg.Forecaster.ForecastInto(m.forecast[:0], m.cfg.Horizon)
	for _, f := range m.forecast {
		if !f.OK {
			// No complete prediction available: keep the current
			// allocation so the learning phase does not flap.
			return
		}
	}
	clear(m.next)
	for _, f := range m.forecast {
		if f.Sender >= 0 && f.Sender < m.procs {
			m.next[f.Sender] = true
		}
	}
	m.allocated, m.next = m.next, m.allocated
	if len(m.allocated) > m.stats.PeakBuffers {
		m.stats.PeakBuffers = len(m.allocated)
	}
	m.stats.PeakMemory = int64(m.stats.PeakBuffers) * m.cfg.PerPeerBytes
}

// Stats returns the statistics collected so far.
func (m *BufferManager) Stats() BufferStats { return m.stats }

// ReplayBuffers replays the physical message stream of one receiver
// through a prediction-driven buffer manager and reports the fast-path
// rate and the memory the receiver actually needed.
func ReplayBuffers(tr *trace.Trace, receiver int, cfg BufferConfig) (BufferStats, error) {
	m, err := NewBufferManager(tr.Procs, cfg)
	if err != nil {
		return BufferStats{}, err
	}
	recs := tr.Filter(receiver, trace.Physical)
	if len(recs) == 0 {
		return BufferStats{}, fmt.Errorf("scalability: receiver %d has no physical records", receiver)
	}
	for _, r := range recs {
		m.OnMessage(r.Sender, r.Size)
	}
	return m.Stats(), nil
}
