// Package scalability implements the three mechanisms Section 2 of the
// paper proposes for making MPI implementations scale to thousands of
// processes by exploiting message predictability:
//
//   - BufferManager (Section 2.1, memory reduction): instead of statically
//     pre-allocating one receive buffer per peer — 16 KB x 10 000 peers is
//     160 MB per process — the receiver allocates buffers only for the
//     senders its predictor expects next, falling back to the slow
//     ask-permission path on a misprediction.
//
//   - CreditManager (Section 2.2, control flow): the receiver hands out
//     credits for predicted messages ahead of time, so eager sends are
//     only accepted when memory has been reserved for them; unpredicted
//     messages must ask first. This bounds the receiver's memory exposure
//     in incast situations (many senders hitting one receiver).
//
//   - ProtocolAdvisor (Section 2.3, rendezvous elimination): when the
//     receiver predicts a large message from a given sender it
//     pre-allocates the memory and tells the sender before the send is
//     issued, so the message travels with the fast eager path instead of
//     paying the three-message rendezvous handshake.
//
// All three consume the same (sender, size) forecasts produced by
// predictor.MessagePredictor and can be replayed over any recorded trace,
// which is how the corresponding benchmark experiments are generated.
package scalability
