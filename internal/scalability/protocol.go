package scalability

import (
	"fmt"

	"mpipredict/internal/predictor"
	"mpipredict/internal/simnet"
	"mpipredict/internal/trace"
)

// ProtocolConfig parameterises the rendezvous-elimination advisor of
// Section 2.3.
type ProtocolConfig struct {
	// Net provides the latency model; the zero value selects
	// simnet.DefaultConfig.
	Net simnet.Config
	// Horizon is how many future messages the receiver pre-allocates for.
	Horizon int
	// Forecaster produces the (sender, size) forecasts. Nil selects a
	// DPD-based message predictor.
	Forecaster *predictor.MessagePredictor
}

func (c ProtocolConfig) withDefaults() ProtocolConfig {
	if c.Net == (simnet.Config{}) {
		c.Net = simnet.DefaultConfig()
	}
	if c.Horizon <= 0 {
		c.Horizon = 5
	}
	if c.Forecaster == nil {
		c.Forecaster = predictor.NewDPDMessagePredictor(defaultPredictorConfig())
	}
	return c
}

// ProtocolStats summarises a protocol-advisor replay.
type ProtocolStats struct {
	// Messages and LargeMessages count all messages and those above the
	// eager limit (the only ones that pay a rendezvous handshake).
	Messages      int64
	LargeMessages int64
	// Eliminated counts large messages whose rendezvous was avoided
	// because the receiver had predicted them (sender and size) and
	// pre-granted the memory.
	Eliminated int64
	// BaselineLatencyUS is the summed point-to-point latency with the
	// standard protocol selection (rendezvous for large messages).
	BaselineLatencyUS float64
	// PredictedLatencyUS is the summed latency when predicted large
	// messages skip the handshake.
	PredictedLatencyUS float64
}

// EliminationRate returns the fraction of large messages whose
// rendezvous handshake was avoided.
func (s ProtocolStats) EliminationRate() float64 {
	if s.LargeMessages == 0 {
		return 0
	}
	return float64(s.Eliminated) / float64(s.LargeMessages)
}

// LatencySavingFraction returns the relative reduction of the summed
// message latency.
func (s ProtocolStats) LatencySavingFraction() float64 {
	if s.BaselineLatencyUS == 0 {
		return 0
	}
	return 1 - s.PredictedLatencyUS/s.BaselineLatencyUS
}

// ProtocolAdvisor decides, message by message, whether a large message
// could have been sent with the fast eager mechanism because the receiver
// predicted it.
type ProtocolAdvisor struct {
	cfg   ProtocolConfig
	model *simnet.Model
	stats ProtocolStats
	// granted maps a sender to the sizes the receiver pre-allocated for.
	granted map[int][]int64

	// next and forecast are scratch buffers recycled across messages
	// (swap + truncate) so the per-message regrant does not allocate in
	// steady state.
	next     map[int][]int64
	forecast []predictor.MessageForecast
}

// NewProtocolAdvisor builds an advisor.
func NewProtocolAdvisor(cfg ProtocolConfig) (*ProtocolAdvisor, error) {
	cfg = cfg.withDefaults()
	model, err := simnet.NewModel(cfg.Net)
	if err != nil {
		return nil, err
	}
	return &ProtocolAdvisor{
		cfg:     cfg,
		model:   model,
		granted: make(map[int][]int64),
		next:    make(map[int][]int64),
	}, nil
}

// OnMessage accounts one message: the baseline pays the standard protocol
// cost, the predicted variant skips the handshake when a matching grant
// was outstanding.
func (a *ProtocolAdvisor) OnMessage(sender int, size int64) {
	a.stats.Messages++
	baseline := a.model.PointToPointLatency(size, false)
	a.stats.BaselineLatencyUS += baseline
	large := a.model.UsesRendezvous(size)
	if large {
		a.stats.LargeMessages++
	}
	if large && a.consumeGrant(sender, size) {
		a.stats.Eliminated++
		a.stats.PredictedLatencyUS += a.model.PointToPointLatency(size, true)
	} else {
		a.stats.PredictedLatencyUS += baseline
	}
	a.cfg.Forecaster.Observe(sender, size)
	a.regrant()
}

// consumeGrant reports whether a pre-allocation large enough for the
// message was outstanding for the sender, consuming it if so.
func (a *ProtocolAdvisor) consumeGrant(sender int, size int64) bool {
	queue := a.granted[sender]
	for i, granted := range queue {
		if granted >= size {
			a.granted[sender] = append(queue[:i], queue[i+1:]...)
			return true
		}
	}
	return false
}

func (a *ProtocolAdvisor) regrant() {
	a.forecast = a.cfg.Forecaster.ForecastInto(a.forecast[:0], a.cfg.Horizon)
	for sender, queue := range a.next {
		a.next[sender] = queue[:0]
	}
	for _, f := range a.forecast {
		if !f.OK || f.Size <= a.model.EagerLimit() {
			continue
		}
		a.next[f.Sender] = append(a.next[f.Sender], f.Size)
	}
	a.granted, a.next = a.next, a.granted
}

// Stats returns the statistics collected so far.
func (a *ProtocolAdvisor) Stats() ProtocolStats { return a.stats }

// ReplayProtocol replays the physical message stream of one receiver
// through the protocol advisor.
func ReplayProtocol(tr *trace.Trace, receiver int, cfg ProtocolConfig) (ProtocolStats, error) {
	recs := tr.Filter(receiver, trace.Physical)
	if len(recs) == 0 {
		return ProtocolStats{}, fmt.Errorf("scalability: receiver %d has no physical records", receiver)
	}
	a, err := NewProtocolAdvisor(cfg)
	if err != nil {
		return ProtocolStats{}, err
	}
	for _, r := range recs {
		a.OnMessage(r.Sender, r.Size)
	}
	return a.Stats(), nil
}
