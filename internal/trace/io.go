package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// header is the first line of a JSONL trace file; it carries the run
// metadata so the per-record lines only need the event fields.
type header struct {
	Format string `json:"format"`
	App    string `json:"app"`
	Procs  int    `json:"procs"`
}

// formatName identifies the on-disk format; bump it if Record changes
// incompatibly.
const formatName = "mpipredict-trace-v1"

// WriteJSONL streams the trace to w as one JSON object per line: a header
// line followed by one line per record. The format is deliberately
// trivial so traces can be inspected, grepped and post-processed with
// standard tools.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: formatName, App: t.App, Procs: t.Procs}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a trace previously written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	dec := json.NewDecoder(br)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if h.Format != formatName {
		return nil, fmt.Errorf("trace: unsupported format %q (want %q)", h.Format, formatName)
	}
	t := New(h.App, h.Procs)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: reading record %d: %w", len(t.Records), err)
		}
		// Append reassigns Seq deterministically; records written by
		// WriteJSONL are already in order, so the values round-trip.
		t.Append(rec)
	}
	return t, nil
}

// SaveFile writes the trace to the named file, creating or truncating it.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	if err := WriteJSONL(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from the named file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
