package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// header is the first line of a JSONL trace file; it carries the run
// metadata so the per-record lines only need the event fields.
type header struct {
	Format string `json:"format"`
	App    string `json:"app"`
	Procs  int    `json:"procs"`
}

// formatName identifies the on-disk format; bump it if Record changes
// incompatibly.
const formatName = "mpipredict-trace-v1"

// JSONLWriter streams a trace to an io.Writer as one JSON object per
// line, record by record — the streaming sibling of WriteJSONL for
// producers that never hold a whole trace in memory (the block pipeline,
// tracegen -stream). The header is written by NewJSONLWriter; Close
// flushes but does not close the underlying writer.
type JSONLWriter struct {
	bw   *bufio.Writer
	enc  *json.Encoder
	seqs map[streamKey]int64
}

// NewJSONLWriter writes the header line for a trace with the given
// metadata and returns a writer ready to accept records.
func NewJSONLWriter(w io.Writer, app string, procs int) (*JSONLWriter, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Format: formatName, App: app, Procs: procs}); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &JSONLWriter{bw: bw, enc: enc, seqs: make(map[streamKey]int64)}, nil
}

// WriteRecord appends one record line. The record's Seq is reassigned
// from per-(receiver, level) stream order — the same numbering Append
// and the readers produce — so block-pipeline producers (whose blocks
// carry no Seq) and whole-trace writers emit identical lines.
func (w *JSONLWriter) WriteRecord(r Record) error {
	k := streamKey{r.Receiver, r.Level}
	r.Seq = w.seqs[k]
	w.seqs[k]++
	return w.enc.Encode(&r)
}

// Close flushes the buffer. It does not close the underlying writer.
func (w *JSONLWriter) Close() error { return w.bw.Flush() }

// WriteJSONL streams the trace to w as one JSON object per line: a header
// line followed by one line per record. The format is deliberately
// trivial so traces can be inspected, grepped and post-processed with
// standard tools.
func WriteJSONL(w io.Writer, t *Trace) error {
	jw, err := NewJSONLWriter(w, t.App, t.Procs)
	if err != nil {
		return err
	}
	for i := range t.Records {
		if err := jw.WriteRecord(t.Records[i]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return jw.Close()
}

// JSONLReader streams a trace from an io.Reader in the JSONL format, the
// record-at-a-time sibling of ReadJSONL. The header is consumed by
// NewJSONLReader; Read returns records until io.EOF.
type JSONLReader struct {
	dec   *json.Decoder
	app   string
	procs int
	count int
}

// NewJSONLReader consumes the header line and returns a reader positioned
// at the first record.
func NewJSONLReader(r io.Reader) (*JSONLReader, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if h.Format != formatName {
		return nil, fmt.Errorf("trace: unsupported format %q (want %q)", h.Format, formatName)
	}
	return &JSONLReader{dec: dec, app: h.App, procs: h.Procs}, nil
}

// App returns the workload name from the header.
func (r *JSONLReader) App() string { return r.app }

// Procs returns the rank count from the header.
func (r *JSONLReader) Procs() int { return r.procs }

// Read returns the next record, or io.EOF after the last one.
func (r *JSONLReader) Read() (Record, error) {
	var rec Record
	if err := r.dec.Decode(&rec); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading record %d: %w", r.count, err)
	}
	r.count++
	return rec, nil
}

// ReadJSONL reads a trace previously written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	jr, err := NewJSONLReader(r)
	if err != nil {
		return nil, err
	}
	t := New(jr.App(), jr.Procs())
	for {
		rec, err := jr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		// Append reassigns Seq deterministically; records written by
		// WriteJSONL are already in order, so the values round-trip.
		t.Append(rec)
	}
}

// SaveFile writes the trace to the named file, creating or truncating it.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	if err := WriteJSONL(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
