// Package trace defines the message-trace model shared by the simulated
// MPI runtime, the evaluation harness and the scalability applications.
//
// The paper instruments MPICH at two levels (Section 3.1):
//
//   - the logical level — the MPI calls issued by the application against
//     the top of the MPI library; their order is a function of the
//     application code only, and
//   - the physical level — the point at which messages actually arrive at
//     the low level of the library; their order additionally reflects
//     network latencies, load imbalance and other sources of randomness.
//
// A Trace holds the receive events of one run at both levels. The streams
// the predictor consumes — the sequence of sender ranks and of message
// sizes seen by one receiving process — are extracted with SenderStream
// and SizeStream.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"mpipredict/internal/stats"
)

// Level distinguishes the two instrumentation points of the paper.
type Level int

const (
	// Logical events are recorded in the order the application's receive
	// operations complete (top of the MPI library).
	Logical Level = iota
	// Physical events are recorded in the order messages arrive at the
	// low level of the MPI library.
	Physical
)

// String returns the level name used in reports and JSONL files.
func (l Level) String() string {
	switch l {
	case Logical:
		return "logical"
	case Physical:
		return "physical"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a level name back into a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "logical":
		return Logical, nil
	case "physical":
		return Physical, nil
	default:
		return 0, fmt.Errorf("trace: unknown level %q", s)
	}
}

// Kind distinguishes point-to-point messages from messages generated on
// behalf of collective operations. Table 1 of the paper reports the two
// counts separately.
type Kind int

const (
	// PointToPoint messages come from MPI_Send/MPI_Isend and friends.
	PointToPoint Kind = iota
	// Collective messages are generated internally by collective
	// operations (broadcast, reduce, alltoall, ...).
	Collective
)

// String returns the kind name used in reports and JSONL files.
func (k Kind) String() string {
	switch k {
	case PointToPoint:
		return "p2p"
	case Collective:
		return "collective"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one receive event observed at one instrumentation level.
type Record struct {
	// Seq is the position of this event in the per-receiver, per-level
	// stream (0-based).
	Seq int64 `json:"seq"`
	// Time is the simulated time (microseconds) at which the event was
	// recorded.
	Time float64 `json:"time_us"`
	// Receiver is the rank that received the message.
	Receiver int `json:"receiver"`
	// Sender is the rank that sent the message.
	Sender int `json:"sender"`
	// Size is the message payload size in bytes.
	Size int64 `json:"size"`
	// Tag is the MPI tag the message was sent with.
	Tag int `json:"tag"`
	// Kind says whether the message belongs to a point-to-point exchange
	// or to a collective operation.
	Kind Kind `json:"kind"`
	// Op is the name of the MPI operation that produced the message
	// ("send", "bcast", "allreduce", ...).
	Op string `json:"op"`
	// Level is the instrumentation level the record belongs to.
	Level Level `json:"level"`
}

// Trace is the complete set of receive events of one simulated run.
//
// A fully built Trace is safe for concurrent readers: the stream accessors
// (Filter, SenderStream, SizeStream, StreamsOfKind, Characterize, ...)
// share a lazily built per-(receiver, level) index behind a mutex, so a
// cached trace can be evaluated by many goroutines at once. Append is NOT
// safe to call concurrently with readers; grow the trace first, then share
// it.
type Trace struct {
	// App is the workload name ("bt", "cg", "lu", "is", "sweep3d", ...).
	App string
	// Procs is the number of ranks in the run.
	Procs int
	// Records holds all receive events, logical and physical interleaved.
	// Within one (receiver, level) pair they appear in Seq order.
	Records []Record

	// seqCounts assigns per-(receiver, level) sequence numbers in O(1);
	// it is rebuilt lazily when a trace is loaded from disk.
	seqCounts map[streamKey]int64

	// indexMu guards index. The index maps each (receiver, level) pair to
	// its records and pre-extracted sender/size streams so the per-call
	// O(len(Records)) scans of the seed implementation happen at most once
	// per trace instead of once per query.
	indexMu sync.RWMutex
	index   map[streamKey]*streamIndex
}

type streamKey struct {
	receiver int
	level    Level
}

// streamIndex holds the per-(receiver, level) view of a trace: the records
// in Seq order plus the two value streams the predictor consumes. The
// slices are owned by the index and must be treated as read-only.
type streamIndex struct {
	recs    []Record
	senders []int64
	sizes   []int64
}

// New returns an empty trace for the given workload and process count.
func New(app string, procs int) *Trace {
	return &Trace{App: app, Procs: procs, seqCounts: make(map[streamKey]int64)}
}

// Append adds a record, assigning its per-receiver, per-level sequence
// number. It is the only supported way to grow a trace.
func (t *Trace) Append(r Record) {
	if t.seqCounts == nil {
		t.seqCounts = make(map[streamKey]int64)
		for _, existing := range t.Records {
			k := streamKey{existing.Receiver, existing.Level}
			if existing.Seq >= t.seqCounts[k] {
				t.seqCounts[k] = existing.Seq + 1
			}
		}
	}
	k := streamKey{r.Receiver, r.Level}
	r.Seq = t.seqCounts[k]
	t.seqCounts[k]++
	t.Records = append(t.Records, r)
	if t.index != nil {
		t.indexMu.Lock()
		t.index = nil
		t.indexMu.Unlock()
	}
}

// Grow pre-allocates capacity for n additional records, so bulk appends
// (the physical-level flush at the end of a simulation) do not repeatedly
// reallocate the backing array.
func (t *Trace) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(t.Records) - len(t.Records); free < n {
		grown := make([]Record, len(t.Records), len(t.Records)+n)
		copy(grown, t.Records)
		t.Records = grown
	}
}

// Len returns the total number of records at both levels.
func (t *Trace) Len() int { return len(t.Records) }

// stream returns the index entry for one (receiver, level) pair, building
// the whole index on first use. The returned entry is shared and read-only.
func (t *Trace) stream(receiver int, level Level) *streamIndex {
	k := streamKey{receiver, level}
	t.indexMu.RLock()
	idx := t.index
	t.indexMu.RUnlock()
	if idx == nil {
		t.indexMu.Lock()
		if t.index == nil {
			t.index = buildIndex(t.Records)
		}
		idx = t.index
		t.indexMu.Unlock()
	}
	si := idx[k]
	if si == nil {
		si = &streamIndex{}
	}
	return si
}

// buildIndex groups the records by (receiver, level) in one pass and
// extracts the sender and size streams. Append assigns Seq numbers
// monotonically, so within one key the records are already in Seq order;
// the stable sort below only reorders records of traces assembled by other
// means, preserving the seed implementation's Filter semantics exactly.
func buildIndex(records []Record) map[streamKey]*streamIndex {
	counts := make(map[streamKey]int)
	for i := range records {
		counts[streamKey{records[i].Receiver, records[i].Level}]++
	}
	idx := make(map[streamKey]*streamIndex, len(counts))
	for k, n := range counts {
		idx[k] = &streamIndex{recs: make([]Record, 0, n)}
	}
	for i := range records {
		k := streamKey{records[i].Receiver, records[i].Level}
		idx[k].recs = append(idx[k].recs, records[i])
	}
	for _, si := range idx {
		recs := si.recs
		if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq }) {
			sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		}
		si.senders = make([]int64, len(recs))
		si.sizes = make([]int64, len(recs))
		for i := range recs {
			si.senders[i] = int64(recs[i].Sender)
			si.sizes[i] = recs[i].Size
		}
	}
	return idx
}

// Filter returns the records of one receiver at one level, in Seq order.
// The result is a fresh slice the caller may modify.
func (t *Trace) Filter(receiver int, level Level) []Record {
	si := t.stream(receiver, level)
	out := make([]Record, len(si.recs))
	copy(out, si.recs)
	return out
}

// SenderStream returns the sequence of sender ranks observed by receiver
// at the given level — the first of the two streams the paper predicts.
// The result is a fresh slice the caller may modify.
func (t *Trace) SenderStream(receiver int, level Level) []int64 {
	si := t.stream(receiver, level)
	out := make([]int64, len(si.senders))
	copy(out, si.senders)
	return out
}

// SizeStream returns the sequence of message sizes observed by receiver at
// the given level — the second stream the paper predicts. The result is a
// fresh slice the caller may modify.
func (t *Trace) SizeStream(receiver int, level Level) []int64 {
	si := t.stream(receiver, level)
	out := make([]int64, len(si.sizes))
	copy(out, si.sizes)
	return out
}

// SenderStreamShared returns the indexed sender stream without copying.
// The slice is shared with the trace and must be treated as read-only; the
// evaluation hot path uses it to avoid one allocation per query.
func (t *Trace) SenderStreamShared(receiver int, level Level) []int64 {
	return t.stream(receiver, level).senders
}

// SizeStreamShared returns the indexed size stream without copying. The
// slice is shared with the trace and must be treated as read-only.
func (t *Trace) SizeStreamShared(receiver int, level Level) []int64 {
	return t.stream(receiver, level).sizes
}

// StreamsOfKind returns the sender and size streams of one receiver at one
// level restricted to the given message kind. Figure 1 of the paper shows
// the iterative point-to-point pattern of BT without the handful of setup
// and verification collectives, which this restriction reproduces.
func (t *Trace) StreamsOfKind(receiver int, level Level, kind Kind) (senders, sizes []int64) {
	for _, r := range t.stream(receiver, level).recs {
		if r.Kind != kind {
			continue
		}
		senders = append(senders, int64(r.Sender))
		sizes = append(sizes, r.Size)
	}
	return senders, sizes
}

// Receivers returns the ranks that received at least one message, sorted.
func (t *Trace) Receivers() []int {
	seen := map[int]bool{}
	for _, r := range t.Records {
		seen[r.Receiver] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Characterization summarises the message stream received by one process,
// reproducing one row of Table 1 of the paper.
type Characterization struct {
	App       string
	Procs     int
	Receiver  int
	P2PMsgs   int // number of point-to-point messages received
	CollMsgs  int // number of collective-generated messages received
	MsgSizes  int // number of frequently appearing distinct message sizes
	Senders   int // number of frequently appearing distinct sender ranks
	AllSizes  int // number of distinct sizes including rare ones
	AllSender int // number of distinct senders including rare ones
}

// Characterize computes the Table 1 row for one receiver. The paper's
// footnote explains that the size and sender columns count the
// *frequently appearing* values; coverage controls the cumulative
// frequency threshold used for that notion (the Table 1 experiment uses
// 0.99).
func (t *Trace) Characterize(receiver int, level Level, coverage float64) Characterization {
	recs := t.stream(receiver, level).recs
	c := Characterization{App: t.App, Procs: t.Procs, Receiver: receiver}
	sizes := stats.NewHist()
	senders := stats.NewHist()
	for _, r := range recs {
		switch r.Kind {
		case PointToPoint:
			c.P2PMsgs++
		case Collective:
			c.CollMsgs++
		}
		sizes.Add(r.Size)
		senders.Add(int64(r.Sender))
	}
	c.MsgSizes = len(sizes.Frequent(coverage))
	c.Senders = len(senders.Frequent(coverage))
	c.AllSizes = sizes.Distinct()
	c.AllSender = senders.Distinct()
	return c
}

// CharacterizeTypical returns the characterisation of a "typical"
// receiver: the one whose total message count is the median across all
// receivers. Table 1 reports per-process numbers; the median process
// avoids skew from rank 0, which often has extra setup traffic.
func (t *Trace) CharacterizeTypical(level Level, coverage float64) Characterization {
	receivers := t.Receivers()
	if len(receivers) == 0 {
		return Characterization{App: t.App, Procs: t.Procs, Receiver: -1}
	}
	type rc struct {
		receiver int
		count    int
	}
	counts := make([]rc, 0, len(receivers))
	for _, r := range receivers {
		counts = append(counts, rc{r, len(t.stream(r, level).recs)})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count < counts[j].count
		}
		return counts[i].receiver < counts[j].receiver
	})
	median := counts[len(counts)/2]
	return t.Characterize(median.receiver, level, coverage)
}
