package trace

import "math/rand"

// SynthConfig describes a synthetic periodic message stream used in tests,
// examples and micro-benchmarks when a full workload simulation is not
// needed. It produces the same kind of data the simulated runtime emits:
// a logical stream that repeats a fixed (sender, size) pattern and a
// physical stream that is the logical one perturbed by local reorderings.
type SynthConfig struct {
	// App and Procs fill the trace metadata.
	App   string
	Procs int
	// Receiver is the rank the synthetic messages are delivered to.
	Receiver int
	// Pattern is the repeating sequence of (sender, size) pairs.
	Pattern []SynthMessage
	// Repetitions is how many times the pattern repeats.
	Repetitions int
	// Events, when positive, overrides the per-level event count
	// (len(Pattern)*Repetitions otherwise), truncating or extending the
	// repetition to exactly this many events. It lets callers size a
	// stream directly — tracegen -events N — without solving for a
	// repetition count.
	Events int
	// SwapProbability is the per-position probability that a physical
	// message swaps places with its successor, emulating the arrival-order
	// randomness of Figure 2. Zero produces identical streams.
	SwapProbability float64
	// Seed drives the perturbation; runs are reproducible for a fixed
	// seed.
	Seed int64
}

// SynthMessage is one element of a synthetic pattern.
type SynthMessage struct {
	Sender int
	Size   int64
}

// Synthesize builds a trace from the configuration. The logical stream is
// the exact repetition of the pattern; the physical stream applies random
// adjacent swaps.
func Synthesize(cfg SynthConfig) *Trace {
	t := New(cfg.App, cfg.Procs)
	n := len(cfg.Pattern) * cfg.Repetitions
	if cfg.Events > 0 {
		n = cfg.Events
	}
	if len(cfg.Pattern) == 0 {
		// Nothing to repeat: an Events override cannot conjure messages
		// out of an empty pattern (SynthSource applies the same rule).
		n = 0
	}
	msgs := make([]SynthMessage, 0, n)
	for i := 0; i < n; i++ {
		msgs = append(msgs, cfg.Pattern[i%len(cfg.Pattern)])
	}
	for i, m := range msgs {
		t.Append(Record{
			Time:     float64(i),
			Receiver: cfg.Receiver,
			Sender:   m.Sender,
			Size:     m.Size,
			Kind:     PointToPoint,
			Op:       "send",
			Level:    Logical,
		})
	}
	phys := make([]SynthMessage, len(msgs))
	copy(phys, msgs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.SwapProbability > 0 {
		for i := 0; i+1 < len(phys); i++ {
			if rng.Float64() < cfg.SwapProbability {
				phys[i], phys[i+1] = phys[i+1], phys[i]
			}
		}
	}
	for i, m := range phys {
		t.Append(Record{
			Time:     float64(i),
			Receiver: cfg.Receiver,
			Sender:   m.Sender,
			Size:     m.Size,
			Kind:     PointToPoint,
			Op:       "send",
			Level:    Physical,
		})
	}
	return t
}
