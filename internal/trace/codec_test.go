package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// arbitraryTrace builds an arbitrary (but deterministic for a given seed)
// trace through Append, the only supported growth path.
func arbitraryTrace(rng *rand.Rand, records int) *Trace {
	apps := []string{"bt", "cg", "lu", "is", "sweep3d", "", "external/app with spaces"}
	ops := []string{"send", "isend", "bcast", "allreduce", "alltoall", "reduce", "", "custom-op"}
	t := New(apps[rng.Intn(len(apps))], rng.Intn(64)+1)
	for i := 0; i < records; i++ {
		t.Append(Record{
			Time:     rng.NormFloat64() * 1e6,
			Receiver: rng.Intn(32),
			Sender:   rng.Intn(32),
			Size:     int64(rng.Intn(1 << 20)),
			Tag:      rng.Intn(1000) - 500,
			Kind:     Kind(rng.Intn(2)),
			Op:       ops[rng.Intn(len(ops))],
			Level:    Level(rng.Intn(2)),
		})
	}
	return t
}

// tracesEqual compares the exported state of two traces (the unexported
// index fields are lazily built caches and must not influence equality).
func tracesEqual(a, b *Trace) bool {
	if a.App != b.App || a.Procs != b.Procs || len(a.Records) != len(b.Records) {
		return false
	}
	if len(a.Records) == 0 {
		return true
	}
	return reflect.DeepEqual(a.Records, b.Records)
}

func encodeBinary(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := arbitraryTrace(rng, rng.Intn(300))
		data := encodeBinary(t, tr)
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: ReadBinary: %v", seed, err)
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("seed %d: decode(encode(t)) != t\nwant %d records, got %d", seed, len(tr.Records), len(got.Records))
		}
	}
}

func TestBinaryRoundTripEmptyTrace(t *testing.T) {
	tr := New("bt", 4)
	got, err := ReadBinary(bytes.NewReader(encodeBinary(t, tr)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Errorf("empty trace did not round-trip: got %+v", got)
	}
}

func TestBinaryRoundTripExtremeValues(t *testing.T) {
	tr := New("x", 1<<30)
	tr.Append(Record{Time: math.Inf(1), Receiver: -1, Sender: math.MaxInt32, Size: math.MaxInt64, Tag: math.MinInt32, Op: strings.Repeat("o", maxStringLen)})
	tr.Append(Record{Time: math.Inf(-1), Size: -1})
	nan := Record{Time: math.NaN(), Op: "send"}
	tr.Append(nan)
	got, err := ReadBinary(bytes.NewReader(encodeBinary(t, tr)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	// NaN != NaN breaks DeepEqual; check the bits, then patch for the rest.
	if !math.IsNaN(got.Records[2].Time) {
		t.Errorf("NaN time decoded as %v", got.Records[2].Time)
	}
	got.Records[2].Time = 0
	tr.Records[2].Time = 0
	if !tracesEqual(tr, got) {
		t.Error("extreme-value trace did not round-trip")
	}
}

func TestBinaryOpTableInternsNames(t *testing.T) {
	tr := New("bt", 4)
	for i := 0; i < 1000; i++ {
		tr.Append(Record{Op: "send", Sender: i % 4})
	}
	data := encodeBinary(t, tr)
	// "send" must appear exactly once in the encoding.
	if n := bytes.Count(data, []byte("send")); n != 1 {
		t.Errorf("op name appears %d times in the encoding, want 1 (interned)", n)
	}
	if len(data) > 1000*12 {
		t.Errorf("encoding of 1000 tiny records is %d bytes; expected a compact varint stream", len(data))
	}
}

func TestBinaryRejectsEveryTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := encodeBinary(t, arbitraryTrace(rng, 20))
	for n := 0; n < len(data); n++ {
		if _, err := ReadBinary(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(data))
		}
	}
}

func TestBinaryRejectsEverySingleByteFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := encodeBinary(t, arbitraryTrace(rng, 15))
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0xff
		if _, err := ReadBinary(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected (CRC must catch every corruption)", i, len(data))
		}
	}
}

func TestBinaryRejectsTrailingRecordAfterEnd(t *testing.T) {
	// Append a fully valid extra item after the trailer's CRC; the reader
	// must stop at the trailer (io.EOF), not read past it.
	tr := New("bt", 2)
	tr.Append(Record{Op: "send"})
	data := encodeBinary(t, tr)
	r, err := NewReader(bytes.NewReader(append(data, data...)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1 {
		t.Errorf("read %d records, want 1 (reader must stop at the trailer)", n)
	}

	// The whole-input decoder, by contrast, must reject the same data:
	// for a file, trailing bytes mean concatenation or partial overwrite.
	if _, err := ReadBinary(bytes.NewReader(append(data, data...))); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("ReadBinary accepted trailing data: %v", err)
	}
	if _, err := ReadBinary(bytes.NewReader(append(data, 0x00))); err == nil {
		t.Error("ReadBinary accepted a single trailing byte")
	}
}

func TestBinaryRejectsWrongMagicAndVersion(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("JSON{}\n"))); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong magic: got %v, want ErrCorrupt", err)
	}
	// Patch the version varint (first byte after the 4-byte magic).
	data := encodeBinary(t, New("bt", 4))
	data[4] = 99
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: got %v, want a version error", err)
	}
}

func TestBinaryErrorsWrapErrCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	data := encodeBinary(t, arbitraryTrace(rng, 5))
	for _, n := range []int{0, 3, len(data) / 2, len(data) - 1} {
		if _, err := ReadBinary(bytes.NewReader(data[:n])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestStreamingReaderHeaderAccessors(t *testing.T) {
	tr := New("sweep3d", 6)
	tr.Append(Record{Op: "send", Sender: 1, Receiver: 2})
	r, err := NewReader(bytes.NewReader(encodeBinary(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if r.App() != "sweep3d" || r.Procs() != 6 || r.Version() != BinaryVersion {
		t.Errorf("header = (%q, %d, v%d), want (sweep3d, 6, v%d)", r.App(), r.Procs(), r.Version(), BinaryVersion)
	}
}

func TestSaveLoadBinaryFileAndSniffingLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := arbitraryTrace(rng, 50)
	dir := t.TempDir()

	bin := filepath.Join(dir, "t.mpt")
	if err := SaveBinaryFile(bin, tr); err != nil {
		t.Fatal(err)
	}
	fromBin, err := Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, fromBin) {
		t.Error("binary file round-trip mismatch")
	}

	jsonl := filepath.Join(dir, "t.jsonl")
	if err := SaveFile(jsonl, tr); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{bin, jsonl} {
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if !tracesEqual(tr, got) {
			t.Errorf("Load(%s) mismatch", path)
		}
	}
}

func TestSaveBinaryFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.mpt")
	good := New("bt", 4)
	good.Append(Record{Op: "send"})
	if err := SaveBinaryFile(path, good); err != nil {
		t.Fatal(err)
	}

	// A trace the writer rejects mid-stream (oversized op name) must
	// neither clobber the existing good file nor leave temp debris.
	bad := New("bt", 4)
	bad.Append(Record{Op: strings.Repeat("x", maxStringLen+1)})
	if err := SaveBinaryFile(path, bad); err == nil {
		t.Fatal("expected an error for an unencodable trace")
	}
	restored, err := Load(path)
	if err != nil {
		t.Fatalf("previous good file was damaged: %v", err)
	}
	if !tracesEqual(good, restored) {
		t.Error("previous good file was replaced by a failed save")
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(leftovers) != 0 {
		t.Errorf("failed save left temp files: %v", leftovers)
	}
}

func TestBinaryMatchesJSONLSemantics(t *testing.T) {
	// Both codecs must reproduce identical traces from the same source.
	rng := rand.New(rand.NewSource(9))
	tr := arbitraryTrace(rng, 80)
	var jb, bb bytes.Buffer
	if err := WriteJSONL(&jb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSONL(&jb)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bb)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(fromJSON, fromBin) {
		t.Error("binary and JSONL decoders disagree on the same trace")
	}
}

func TestWriterRefusesUseAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "bt", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{}); err == nil {
		t.Error("WriteRecord after Close must error")
	}
	if err := w.Close(); err == nil {
		t.Error("double Close must error")
	}
}

// FuzzTraceCodec exercises the decoder on arbitrary input: it must never
// panic, and anything it accepts must re-encode and re-decode to the same
// trace (decode/encode stability).
func FuzzTraceCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MPT"))
	f.Add(binaryMagic[:])
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := arbitraryTrace(rng, 1+rng.Intn(20))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 8 {
			f.Add(buf.Bytes()[:buf.Len()/2]) // truncated
			mutated := append([]byte(nil), buf.Bytes()...)
			mutated[buf.Len()/3] ^= 0x40 // bit-flipped
			f.Add(mutated)
		}
	}
	// The committed golden corpus seeds the fuzzer with full-size
	// simulator output — realistic op tables, seq runs and timing spans
	// that the tiny arbitrary traces cannot reach.
	corpus, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "corpus", "*.mpt"))
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if tr.App != again.App || tr.Procs != again.Procs || len(tr.Records) != len(again.Records) {
			t.Fatalf("decode/encode/decode drifted: (%q,%d,%d) vs (%q,%d,%d)",
				tr.App, tr.Procs, len(tr.Records), again.App, again.Procs, len(again.Records))
		}
	})
}
