package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevelAndKindStrings(t *testing.T) {
	if Logical.String() != "logical" || Physical.String() != "physical" {
		t.Error("level strings wrong")
	}
	if !strings.Contains(Level(9).String(), "9") {
		t.Error("unknown level should include numeric value")
	}
	if PointToPoint.String() != "p2p" || Collective.String() != "collective" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestParseLevel(t *testing.T) {
	if l, err := ParseLevel("logical"); err != nil || l != Logical {
		t.Errorf("ParseLevel(logical)=%v,%v", l, err)
	}
	if l, err := ParseLevel("physical"); err != nil || l != Physical {
		t.Errorf("ParseLevel(physical)=%v,%v", l, err)
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("ParseLevel(bogus) should fail")
	}
}

func sampleTrace() *Trace {
	t := New("bt", 4)
	msgs := []struct {
		sender int
		size   int64
		kind   Kind
	}{
		{0, 3240, PointToPoint},
		{1, 10240, PointToPoint},
		{2, 19440, PointToPoint},
		{0, 3240, PointToPoint},
		{1, 8, Collective},
	}
	for i, m := range msgs {
		t.Append(Record{Time: float64(i), Receiver: 3, Sender: m.sender, Size: m.size, Kind: m.kind, Op: "send", Level: Logical})
	}
	// Physical stream: same messages, two arrivals swapped.
	order := []int{0, 2, 1, 3, 4}
	for i, idx := range order {
		m := msgs[idx]
		t.Append(Record{Time: float64(i), Receiver: 3, Sender: m.sender, Size: m.size, Kind: m.kind, Op: "send", Level: Physical})
	}
	// Another receiver with a single message.
	t.Append(Record{Time: 0, Receiver: 1, Sender: 3, Size: 64, Kind: PointToPoint, Op: "send", Level: Logical})
	return t
}

func TestAppendAssignsSequenceNumbers(t *testing.T) {
	tr := sampleTrace()
	logical := tr.Filter(3, Logical)
	if len(logical) != 5 {
		t.Fatalf("logical records=%d want 5", len(logical))
	}
	for i, r := range logical {
		if r.Seq != int64(i) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	physical := tr.Filter(3, Physical)
	if len(physical) != 5 {
		t.Fatalf("physical records=%d want 5", len(physical))
	}
	if got := tr.Filter(1, Logical); len(got) != 1 || got[0].Seq != 0 {
		t.Errorf("receiver 1 stream wrong: %+v", got)
	}
	if tr.Len() != 11 {
		t.Errorf("total records=%d want 11", tr.Len())
	}
}

func TestAppendRebuildsIndexAfterManualConstruction(t *testing.T) {
	// A Trace assembled field-by-field (as ReadJSONL used to do) must keep
	// numbering consistent when Append is called afterwards.
	tr := &Trace{App: "x", Procs: 2}
	tr.Records = append(tr.Records, Record{Seq: 0, Receiver: 0, Level: Logical})
	tr.Records = append(tr.Records, Record{Seq: 1, Receiver: 0, Level: Logical})
	tr.Append(Record{Receiver: 0, Level: Logical})
	recs := tr.Filter(0, Logical)
	if recs[2].Seq != 2 {
		t.Errorf("appended record seq=%d want 2", recs[2].Seq)
	}
}

func TestStreams(t *testing.T) {
	tr := sampleTrace()
	senders := tr.SenderStream(3, Logical)
	want := []int64{0, 1, 2, 0, 1}
	if len(senders) != len(want) {
		t.Fatalf("sender stream=%v", senders)
	}
	for i := range want {
		if senders[i] != want[i] {
			t.Fatalf("sender stream=%v want %v", senders, want)
		}
	}
	sizes := tr.SizeStream(3, Physical)
	wantSizes := []int64{3240, 19440, 10240, 3240, 8}
	for i := range wantSizes {
		if sizes[i] != wantSizes[i] {
			t.Fatalf("physical size stream=%v want %v", sizes, wantSizes)
		}
	}
	if got := tr.SenderStream(99, Logical); len(got) != 0 {
		t.Errorf("stream of unknown receiver should be empty, got %v", got)
	}
}

func TestReceivers(t *testing.T) {
	tr := sampleTrace()
	got := tr.Receivers()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("receivers=%v want [1 3]", got)
	}
	empty := New("x", 1)
	if len(empty.Receivers()) != 0 {
		t.Error("empty trace should have no receivers")
	}
}

func TestCharacterize(t *testing.T) {
	tr := sampleTrace()
	c := tr.Characterize(3, Logical, 1.0)
	if c.P2PMsgs != 4 || c.CollMsgs != 1 {
		t.Errorf("p2p=%d coll=%d want 4,1", c.P2PMsgs, c.CollMsgs)
	}
	if c.AllSizes != 4 || c.AllSender != 3 {
		t.Errorf("allSizes=%d allSenders=%d want 4,3", c.AllSizes, c.AllSender)
	}
	if c.App != "bt" || c.Procs != 4 || c.Receiver != 3 {
		t.Errorf("metadata wrong: %+v", c)
	}
}

func TestCharacterizeFrequentFiltersRareValues(t *testing.T) {
	tr := New("synthetic", 2)
	for i := 0; i < 200; i++ {
		size := int64(1024)
		if i%2 == 1 {
			size = 2048
		}
		tr.Append(Record{Receiver: 0, Sender: 1 + i%2, Size: size, Kind: PointToPoint, Level: Logical})
	}
	// One rare setup message with a unique size from a unique sender.
	tr.Append(Record{Receiver: 0, Sender: 9, Size: 4, Kind: PointToPoint, Level: Logical})
	c := tr.Characterize(0, Logical, 0.99)
	if c.MsgSizes != 2 || c.Senders != 2 {
		t.Errorf("frequent sizes=%d senders=%d want 2,2", c.MsgSizes, c.Senders)
	}
	if c.AllSizes != 3 || c.AllSender != 3 {
		t.Errorf("all sizes=%d senders=%d want 3,3", c.AllSizes, c.AllSender)
	}
}

func TestCharacterizeTypicalUsesMedianReceiver(t *testing.T) {
	tr := New("synthetic", 3)
	// Receiver 0 gets 1 message, receiver 1 gets 5, receiver 2 gets 50.
	counts := map[int]int{0: 1, 1: 5, 2: 50}
	for recv, n := range counts {
		for i := 0; i < n; i++ {
			tr.Append(Record{Receiver: recv, Sender: (recv + 1) % 3, Size: 128, Kind: PointToPoint, Level: Logical})
		}
	}
	c := tr.CharacterizeTypical(Logical, 0.99)
	if c.Receiver != 1 {
		t.Errorf("typical receiver=%d want 1 (median by message count)", c.Receiver)
	}
	empty := New("x", 1)
	if c := empty.CharacterizeTypical(Logical, 0.99); c.Receiver != -1 {
		t.Errorf("typical receiver of empty trace=%d want -1", c.Receiver)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.App != tr.App || got.Procs != tr.Procs || got.Len() != tr.Len() {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"something-else"}` + "\n")); err == nil {
		t.Error("wrong format should fail")
	}
	bad := `{"format":"mpipredict-trace-v1","app":"x","procs":2}` + "\n" + `{"seq": "oops"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Error("malformed record should fail")
	}
}

func TestSaveAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tr := sampleTrace()
	if err := SaveFile(path, tr); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("loaded %d records want %d", got.Len(), tr.Len())
	}
	if _, err := Load(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("loading a missing file should fail")
	}
	if err := SaveFile(filepath.Join(dir, "no-such-dir", "x.jsonl"), tr); err == nil {
		t.Error("saving into a missing directory should fail")
	}
}

func TestSynthesizeWithoutNoiseProducesIdenticalStreams(t *testing.T) {
	cfg := SynthConfig{
		App: "synthetic", Procs: 4, Receiver: 2,
		Pattern: []SynthMessage{
			{Sender: 0, Size: 100}, {Sender: 1, Size: 200}, {Sender: 3, Size: 300},
		},
		Repetitions: 10,
	}
	tr := Synthesize(cfg)
	logicalSenders := tr.SenderStream(2, Logical)
	physicalSenders := tr.SenderStream(2, Physical)
	if len(logicalSenders) != 30 || len(physicalSenders) != 30 {
		t.Fatalf("stream lengths %d/%d want 30/30", len(logicalSenders), len(physicalSenders))
	}
	for i := range logicalSenders {
		if logicalSenders[i] != physicalSenders[i] {
			t.Fatalf("without noise logical and physical streams must match at %d", i)
		}
		if logicalSenders[i] != int64(cfg.Pattern[i%3].Sender) {
			t.Fatalf("logical stream does not follow the pattern at %d", i)
		}
	}
}

func TestSynthesizeNoisePermutesButPreservesMultiset(t *testing.T) {
	cfg := SynthConfig{
		App: "synthetic", Procs: 4, Receiver: 0,
		Pattern: []SynthMessage{
			{Sender: 1, Size: 10}, {Sender: 2, Size: 20}, {Sender: 3, Size: 30},
		},
		Repetitions:     50,
		SwapProbability: 0.3,
		Seed:            99,
	}
	tr := Synthesize(cfg)
	logical := tr.SenderStream(0, Logical)
	physical := tr.SenderStream(0, Physical)
	diff := 0
	countL := map[int64]int{}
	countP := map[int64]int{}
	for i := range logical {
		if logical[i] != physical[i] {
			diff++
		}
		countL[logical[i]]++
		countP[physical[i]]++
	}
	if diff == 0 {
		t.Error("with 30% swap probability some positions must differ")
	}
	for v, c := range countL {
		if countP[v] != c {
			t.Errorf("physical stream changed the multiset of senders: %v vs %v", countL, countP)
		}
	}
	// Determinism: same seed, same result.
	tr2 := Synthesize(cfg)
	p2 := tr2.SenderStream(0, Physical)
	for i := range physical {
		if physical[i] != p2[i] {
			t.Fatal("Synthesize must be deterministic for a fixed seed")
		}
	}
}

// Property: for any set of appended records, every (receiver, level)
// stream has dense sequence numbers 0..n-1 and SenderStream/SizeStream
// lengths agree with Filter.
func TestTraceSequenceNumbersDense(t *testing.T) {
	f := func(raw []uint8) bool {
		tr := New("prop", 4)
		for i, b := range raw {
			tr.Append(Record{
				Receiver: int(b % 3),
				Sender:   int(b % 5),
				Size:     int64(i),
				Level:    Level(b % 2),
				Kind:     Kind(b % 2),
			})
		}
		for _, recv := range tr.Receivers() {
			for _, level := range []Level{Logical, Physical} {
				recs := tr.Filter(recv, level)
				for i, r := range recs {
					if r.Seq != int64(i) {
						return false
					}
				}
				if len(tr.SenderStream(recv, level)) != len(recs) {
					return false
				}
				if len(tr.SizeStream(recv, level)) != len(recs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
