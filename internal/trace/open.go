package trace

// trace.Open is the single place that knows how to tell the on-disk
// trace formats apart. Every consumer that accepts "a trace file" — the
// evaluation replays, the serve ingester, all CLIs — goes through it
// (directly or via Load), so the magic sniffing logic exists exactly
// once. The two formats this package owns (binary .mpt, JSONL) are built
// in; other packages hook their formats in via RegisterFormat (the
// columnar .mpts store in internal/tracestore does) without this package
// importing them.

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// FormatReader is the record-at-a-time surface an externally registered
// trace format exposes through Open: the same contract File itself
// offers. Read returns events in stream order until io.EOF; Close
// releases the underlying file.
type FormatReader interface {
	App() string
	Procs() int
	Read() (Record, error)
	Close() error
}

// registeredFormat is one externally owned trace format: its 4-byte file
// magic and an opener that takes over the path when the magic matches.
type registeredFormat struct {
	magic [4]byte
	open  func(path string) (FormatReader, error)
}

var formats []registeredFormat

// RegisterFormat hooks a trace format into Open's sniffing: when the
// first four bytes of a file equal magic, Open closes its handle and
// delegates to open. Call it from an init function only; the registry is
// not synchronized. Registering the built-in binary magic would shadow
// the native reader and panics.
func RegisterFormat(magic [4]byte, open func(path string) (FormatReader, error)) {
	if magic == binaryMagic {
		panic("trace: RegisterFormat called with the built-in binary magic")
	}
	formats = append(formats, registeredFormat{magic: magic, open: open})
}

// File is an open trace file being read record by record, in either
// supported format. It is the streaming sibling of Load: App and Procs
// come from the file header, Read returns events in stream order until
// io.EOF, and nothing beyond the I/O buffer is held in memory.
type File struct {
	f     *os.File
	path  string
	app   string
	procs int

	// Exactly one of the three is non-nil, selected by the magic sniff.
	bin   *Reader
	jsonl *JSONLReader
	ext   FormatReader
	// br is the buffered view the binary reader consumes; kept so Read
	// can reject trailing bytes after the trailer, exactly like Load.
	br *bufio.Reader
}

// Open opens the named trace file, sniffs the leading magic to pick the
// format, consumes the header and returns a File positioned at the first
// record. The caller must Close it. Registered formats (.mpts) reopen
// the path through their own reader, which then owns the file handle.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	var head [4]byte
	if n, err := io.ReadFull(f, head[:]); err != nil {
		// Shorter than any magic: let the native sniffer produce its
		// usual corruption/JSONL error from the bytes that are there.
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			f.Close()
			return nil, fmt.Errorf("trace: reading %s: %w", path, serr)
		}
		_ = n
	} else {
		for _, rf := range formats {
			if head == rf.magic {
				f.Close()
				ext, err := rf.open(path)
				if err != nil {
					return nil, err
				}
				return &File{path: path, ext: ext, app: ext.App(), procs: ext.Procs()}, nil
			}
		}
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			f.Close()
			return nil, fmt.Errorf("trace: reading %s: %w", path, serr)
		}
	}
	of, err := openReader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	of.f = f
	return of, nil
}

// openReader sniffs and wraps an already-open stream; it is split from
// Open so the format decision is testable without a file system.
func openReader(r io.Reader, path string) (*File, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", path, corruptf("file too short: %v", err))
	}
	of := &File{path: path, br: br}
	if [4]byte(head) == binaryMagic {
		rd, err := NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading %s: %w", path, err)
		}
		of.bin = rd
		of.app, of.procs = rd.App(), rd.Procs()
		return of, nil
	}
	jr, err := NewJSONLReader(br)
	if err != nil {
		return nil, err
	}
	of.jsonl = jr
	of.app, of.procs = jr.App(), jr.Procs()
	return of, nil
}

// App returns the workload name from the file header.
func (of *File) App() string { return of.app }

// Procs returns the rank count from the file header.
func (of *File) Procs() int { return of.procs }

// Binary reports whether the file is in the binary (.mpt) format.
func (of *File) Binary() bool { return of.bin != nil }

// Read returns the next record, or io.EOF after the last one. For binary
// files the trailer has been verified by then, and — as a trace file is
// the whole input — trailing bytes after it are rejected as corruption
// (leftover data means a botched concatenation or a partial overwrite).
func (of *File) Read() (Record, error) {
	if of.ext != nil {
		return of.ext.Read()
	}
	if of.bin == nil {
		return of.jsonl.Read()
	}
	rec, err := of.bin.Read()
	if err == io.EOF {
		if _, terr := of.br.ReadByte(); terr != io.EOF {
			return Record{}, fmt.Errorf("trace: reading %s: %w", of.path, corruptf("trailing data after the trace trailer"))
		}
		return rec, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: reading %s: %w", of.path, err)
	}
	return rec, nil
}

// Close closes the underlying file.
func (of *File) Close() error {
	if of.ext != nil {
		return of.ext.Close()
	}
	if of.f == nil {
		return nil
	}
	return of.f.Close()
}

// Load reads a trace from the named file in either supported format,
// materializing it in memory. Streaming consumers use Open instead.
func Load(path string) (*Trace, error) {
	of, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer of.Close()
	t := New(of.App(), of.Procs())
	for {
		rec, err := of.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Append(rec)
	}
}
