package trace

// trace.Open is the single place that knows how to tell the two on-disk
// trace formats apart. Every consumer that accepts "a trace file" — the
// evaluation replays, the serve ingester, all CLIs — goes through it
// (directly or via Load), so the binary-vs-JSONL sniffing logic exists
// exactly once.

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// File is an open trace file being read record by record, in either
// supported format. It is the streaming sibling of Load: App and Procs
// come from the file header, Read returns events in stream order until
// io.EOF, and nothing beyond the I/O buffer is held in memory.
type File struct {
	f     *os.File
	path  string
	app   string
	procs int

	// Exactly one of the two is non-nil, selected by the magic sniff.
	bin   *Reader
	jsonl *JSONLReader
	// br is the buffered view the binary reader consumes; kept so Read
	// can reject trailing bytes after the trailer, exactly like Load.
	br *bufio.Reader
}

// Open opens the named trace file, sniffs the binary magic to pick the
// format, consumes the header and returns a File positioned at the first
// record. The caller must Close it.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	of, err := openReader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	of.f = f
	return of, nil
}

// openReader sniffs and wraps an already-open stream; it is split from
// Open so the format decision is testable without a file system.
func openReader(r io.Reader, path string) (*File, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", path, corruptf("file too short: %v", err))
	}
	of := &File{path: path, br: br}
	if [4]byte(head) == binaryMagic {
		rd, err := NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading %s: %w", path, err)
		}
		of.bin = rd
		of.app, of.procs = rd.App(), rd.Procs()
		return of, nil
	}
	jr, err := NewJSONLReader(br)
	if err != nil {
		return nil, err
	}
	of.jsonl = jr
	of.app, of.procs = jr.App(), jr.Procs()
	return of, nil
}

// App returns the workload name from the file header.
func (of *File) App() string { return of.app }

// Procs returns the rank count from the file header.
func (of *File) Procs() int { return of.procs }

// Binary reports whether the file is in the binary (.mpt) format.
func (of *File) Binary() bool { return of.bin != nil }

// Read returns the next record, or io.EOF after the last one. For binary
// files the trailer has been verified by then, and — as a trace file is
// the whole input — trailing bytes after it are rejected as corruption
// (leftover data means a botched concatenation or a partial overwrite).
func (of *File) Read() (Record, error) {
	if of.bin == nil {
		return of.jsonl.Read()
	}
	rec, err := of.bin.Read()
	if err == io.EOF {
		if _, terr := of.br.ReadByte(); terr != io.EOF {
			return Record{}, fmt.Errorf("trace: reading %s: %w", of.path, corruptf("trailing data after the trace trailer"))
		}
		return rec, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: reading %s: %w", of.path, err)
	}
	return rec, nil
}

// Close closes the underlying file.
func (of *File) Close() error {
	if of.f == nil {
		return nil
	}
	return of.f.Close()
}

// Load reads a trace from the named file in either supported format,
// materializing it in memory. Streaming consumers use Open instead.
func Load(path string) (*Trace, error) {
	of, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer of.Close()
	t := New(of.App(), of.Procs())
	for {
		rec, err := of.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Append(rec)
	}
}
