package trace

// This file implements the persistent binary trace format (".mpt"). The
// JSONL format of io.go stays the human-inspectable interchange form; the
// binary codec is the storage form used by the disk tier of the trace
// cache and by the CLI export/replay path, where compactness and integrity
// checking matter more than greppability.
//
// Layout (all multi-byte integers are unsigned or zig-zag varints in the
// encoding of encoding/binary; "uvarint" and "varint" below refer to
// binary.PutUvarint and binary.PutVarint respectively):
//
//	magic   [4]byte  "MPT\x01"
//	version uvarint  (currently 1)
//	app     uvarint length + UTF-8 bytes
//	procs   varint
//	items:  a sequence of tagged items, each introduced by one tag byte
//	  tagOpDef  (0x02): uvarint length + bytes — appends one operation
//	                    name to the op table; ops are interned so each
//	                    distinct name is written once
//	  tagRecord (0x01): varint receiver, varint level, varint kind,
//	                    varint sender, varint size, varint tag,
//	                    uvarint op-table index,
//	                    uvarint IEEE-754 bits of the time field
//	  tagEnd    (0x00): uvarint record count, then the trailer
//	trailer [4]byte  little-endian CRC-32 (IEEE) of every byte from the
//	                 magic through the record count inclusive
//
// The format is self-describing (the op table is built inline as names
// first appear) and streamable in both directions: the Writer never
// buffers more than one record and the Reader needs no length prefix.
// Records do not carry their Seq numbers; they are reassigned on decode
// from stream order, which round-trips exactly for traces grown through
// Append (the only supported way to build one).
//
// Compatibility policy: the magic pins the file family; the version is
// bumped on any incompatible change to the item or trailer layout, and
// readers reject versions they do not know. Unknown tag bytes are errors,
// not extension points — extensions get a new version.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// binaryMagic introduces every binary trace file.
var binaryMagic = [4]byte{'M', 'P', 'T', 0x01}

// BinaryVersion is the current version of the binary trace format.
const BinaryVersion = 1

const (
	tagEnd    = 0x00
	tagRecord = 0x01
	tagOpDef  = 0x02
)

// maxStringLen bounds the app and op names a reader will allocate for, so
// a corrupt or adversarial length prefix cannot force a huge allocation.
const maxStringLen = 1 << 16

// ErrCorrupt is wrapped by every decoding error: malformed, truncated or
// bit-flipped input, and also read failures from the underlying reader
// (mid-stream, the two are indistinguishable — a short read and a
// truncated file look identical). Callers that must treat transient I/O
// differently should make the source reliable (e.g. read into memory)
// before decoding.
var ErrCorrupt = errors.New("corrupt binary trace")

var crcTable = crc32.MakeTable(crc32.IEEE)

// Writer streams a trace to an io.Writer in the binary format. Records are
// written one at a time; Close writes the trailer. The Writer buffers
// internally, so the underlying writer need not be buffered.
type Writer struct {
	bw     *bufio.Writer
	crc    uint32
	ops    map[string]uint64
	count  uint64
	buf    [binary.MaxVarintLen64]byte
	closed bool
	err    error
}

// NewWriter writes the file header for a trace with the given metadata and
// returns a Writer ready to accept records.
func NewWriter(w io.Writer, app string, procs int) (*Writer, error) {
	bw := &Writer{bw: bufio.NewWriter(w), ops: make(map[string]uint64)}
	bw.write(binaryMagic[:])
	bw.writeUvarint(BinaryVersion)
	bw.writeString(app)
	bw.writeVarint(int64(procs))
	if bw.err != nil {
		return nil, bw.err
	}
	return bw, nil
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crcTable, p)
	_, w.err = w.bw.Write(p)
}

func (w *Writer) writeByte(b byte) { w.write([]byte{b}) }

func (w *Writer) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *Writer) writeVarint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *Writer) writeString(s string) {
	if len(s) > maxStringLen {
		w.err = fmt.Errorf("trace: string of %d bytes exceeds the format limit %d", len(s), maxStringLen)
		return
	}
	w.writeUvarint(uint64(len(s)))
	w.write([]byte(s))
}

// WriteRecord appends one record to the stream. The record's Seq is not
// stored; decode order reproduces it.
func (w *Writer) WriteRecord(r Record) error {
	if w.closed {
		return errors.New("trace: writer already closed")
	}
	if w.err != nil {
		return w.err
	}
	op, ok := w.ops[r.Op]
	if !ok {
		op = uint64(len(w.ops))
		w.ops[r.Op] = op
		w.writeByte(tagOpDef)
		w.writeString(r.Op)
	}
	w.writeByte(tagRecord)
	w.writeVarint(int64(r.Receiver))
	w.writeVarint(int64(r.Level))
	w.writeVarint(int64(r.Kind))
	w.writeVarint(int64(r.Sender))
	w.writeVarint(r.Size)
	w.writeVarint(int64(r.Tag))
	w.writeUvarint(op)
	w.writeUvarint(math.Float64bits(r.Time))
	w.count++
	return w.err
}

// Close writes the end marker and integrity trailer and flushes the
// buffer. It does not close the underlying writer. The Writer must not be
// used afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("trace: writer already closed")
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	w.writeByte(tagEnd)
	w.writeUvarint(w.count)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], w.crc)
	if w.err == nil {
		if _, err := w.bw.Write(trailer[:]); err != nil {
			w.err = err
		}
	}
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader streams a trace from an io.Reader in the binary format. The
// header is consumed by NewReader; Read returns records until io.EOF,
// which is only delivered after the trailer has been verified.
type Reader struct {
	br      *bufio.Reader
	crc     uint32
	app     string
	procs   int
	version int
	ops     []string
	count   uint64
	done    bool
	err     error
}

// NewReader consumes the header and returns a Reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := &Reader{br: bufio.NewReader(r)}
	var magic [4]byte
	if err := br.readFull(magic[:]); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	if magic != binaryMagic {
		return nil, corruptf("bad magic %q", magic[:])
	}
	version, err := br.readUvarint()
	if err != nil {
		return nil, corruptf("reading version: %v", err)
	}
	if version != BinaryVersion {
		return nil, corruptf("unsupported version %d (have %d)", version, BinaryVersion)
	}
	br.version = int(version)
	app, err := br.readString()
	if err != nil {
		return nil, corruptf("reading app name: %v", err)
	}
	br.app = app
	procs, err := br.readVarint()
	if err != nil {
		return nil, corruptf("reading procs: %v", err)
	}
	br.procs = int(procs)
	return br, nil
}

// App returns the workload name from the header.
func (r *Reader) App() string { return r.app }

// Procs returns the rank count from the header.
func (r *Reader) Procs() int { return r.procs }

// Version returns the format version of the file being read.
func (r *Reader) Version() int { return r.version }

// ReadByte satisfies io.ByteReader for binary.ReadUvarint while keeping
// the integrity checksum in sync with every byte consumed.
func (r *Reader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	r.crc = crc32.Update(r.crc, crcTable, []byte{b})
	return b, nil
}

func (r *Reader) readFull(p []byte) error {
	if _, err := io.ReadFull(r.br, p); err != nil {
		return err
	}
	r.crc = crc32.Update(r.crc, crcTable, p)
	return nil
}

func (r *Reader) readUvarint() (uint64, error) { return binary.ReadUvarint(r) }

func (r *Reader) readVarint() (int64, error) { return binary.ReadVarint(r) }

func (r *Reader) readString() (string, error) {
	n, err := r.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("string length %d exceeds the format limit %d", n, maxStringLen)
	}
	buf := make([]byte, n)
	if err := r.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Read returns the next record. After the last record it verifies the
// trailer and returns io.EOF; any malformation, truncation or checksum
// mismatch yields an error wrapping ErrCorrupt instead.
func (r *Reader) Read() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	if r.done {
		return Record{}, io.EOF
	}
	rec, err := r.read()
	if err != nil {
		r.err = err
		if err == io.EOF {
			r.done = true
			r.err = nil
		}
	}
	return rec, err
}

func (r *Reader) read() (Record, error) {
	for {
		tag, err := r.ReadByte()
		if err != nil {
			return Record{}, corruptf("reading item tag: %v", err)
		}
		switch tag {
		case tagOpDef:
			op, err := r.readString()
			if err != nil {
				return Record{}, corruptf("reading op definition: %v", err)
			}
			r.ops = append(r.ops, op)
		case tagRecord:
			rec, err := r.readRecord()
			if err != nil {
				return Record{}, err
			}
			r.count++
			return rec, nil
		case tagEnd:
			return Record{}, r.readTrailer()
		default:
			return Record{}, corruptf("unknown item tag 0x%02x", tag)
		}
	}
}

func (r *Reader) readRecord() (Record, error) {
	// Straight-line field reads: this is the disk-cache promotion and
	// replay hot path, so no per-record closures or reflection.
	var rec Record
	v, err := r.readVarint()
	if err != nil {
		return Record{}, corruptf("reading record receiver: %v", err)
	}
	rec.Receiver = int(v)
	if v, err = r.readVarint(); err != nil {
		return Record{}, corruptf("reading record level: %v", err)
	}
	rec.Level = Level(v)
	if v, err = r.readVarint(); err != nil {
		return Record{}, corruptf("reading record kind: %v", err)
	}
	rec.Kind = Kind(v)
	if v, err = r.readVarint(); err != nil {
		return Record{}, corruptf("reading record sender: %v", err)
	}
	rec.Sender = int(v)
	if v, err = r.readVarint(); err != nil {
		return Record{}, corruptf("reading record size: %v", err)
	}
	rec.Size = v
	if v, err = r.readVarint(); err != nil {
		return Record{}, corruptf("reading record tag: %v", err)
	}
	rec.Tag = int(v)
	op, err := r.readUvarint()
	if err != nil {
		return Record{}, corruptf("reading record op index: %v", err)
	}
	if op >= uint64(len(r.ops)) {
		return Record{}, corruptf("op index %d outside table of %d entries", op, len(r.ops))
	}
	rec.Op = r.ops[op]
	bits, err := r.readUvarint()
	if err != nil {
		return Record{}, corruptf("reading record time: %v", err)
	}
	rec.Time = math.Float64frombits(bits)
	return rec, nil
}

// readTrailer validates the record count and checksum; on success it
// returns io.EOF, the stream's normal termination.
func (r *Reader) readTrailer() error {
	count, err := r.readUvarint()
	if err != nil {
		return corruptf("reading record count: %v", err)
	}
	if count != r.count {
		return corruptf("record count %d does not match %d records read", count, r.count)
	}
	want := r.crc // everything up to and including the count
	var trailer [4]byte
	if _, err := io.ReadFull(r.br, trailer[:]); err != nil {
		return corruptf("reading checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
		return corruptf("checksum mismatch: file says %08x, content hashes to %08x", got, want)
	}
	return io.EOF
}

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("trace: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// WriteBinary writes the whole trace to w in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw, err := NewWriter(w, t.App, t.Procs)
	if err != nil {
		return err
	}
	for i := range t.Records {
		if err := bw.WriteRecord(t.Records[i]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return bw.Close()
}

// ReadBinary reads a complete trace previously written by WriteBinary. Seq
// numbers are reassigned from stream order, exactly as ReadJSONL does.
// Unlike the streaming Reader — which stops at the trailer and leaves the
// source positioned after it, so framed streams can carry several traces —
// ReadBinary expects the trace to be the whole input and rejects trailing
// bytes: for a file, leftover data means a botched concatenation or a
// partial overwrite.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := New(br.App(), br.Procs())
	for {
		rec, err := br.Read()
		if err == io.EOF {
			if _, err := br.br.ReadByte(); err != io.EOF {
				return nil, corruptf("trailing data after the trace trailer")
			}
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Append(rec)
	}
}

// SaveBinaryFile writes the trace to the named file in the binary format,
// creating or replacing it. The write is atomic (temp file in the same
// directory + rename), so a failure partway — full disk, killed process —
// never leaves a truncated file behind or clobbers a previous good export.
func SaveBinaryFile(path string, t *Trace) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("trace: creating temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: replacing %s: %w", path, err)
	}
	return nil
}
