package trace

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// naiveFilter is the seed implementation of Filter; the index must agree
// with it on every trace.
func naiveFilter(t *Trace, receiver int, level Level) []Record {
	out := make([]Record, 0)
	for _, r := range t.Records {
		if r.Receiver == receiver && r.Level == level {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

func randomTrace(seed int64, receivers, records int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := New("rand", receivers)
	for i := 0; i < records; i++ {
		tr.Append(Record{
			Receiver: rng.Intn(receivers),
			Sender:   rng.Intn(receivers),
			Size:     int64(rng.Intn(1 << 14)),
			Level:    Level(rng.Intn(2)),
			Kind:     Kind(rng.Intn(2)),
			Time:     rng.Float64() * 1e6,
		})
	}
	return tr
}

func TestIndexedFilterMatchesNaiveScan(t *testing.T) {
	tr := randomTrace(1, 5, 2000)
	for recv := 0; recv < 5; recv++ {
		for _, level := range []Level{Logical, Physical} {
			got := tr.Filter(recv, level)
			want := naiveFilter(tr, recv, level)
			if len(got) != len(want) {
				t.Fatalf("receiver %d level %v: %d records, want %d", recv, level, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("receiver %d level %v record %d: %+v want %+v", recv, level, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStreamsMatchFilterProjection(t *testing.T) {
	tr := randomTrace(2, 4, 1500)
	for recv := 0; recv < 4; recv++ {
		for _, level := range []Level{Logical, Physical} {
			recs := naiveFilter(tr, recv, level)
			senders := tr.SenderStream(recv, level)
			sizes := tr.SizeStream(recv, level)
			shared := tr.SenderStreamShared(recv, level)
			sharedSizes := tr.SizeStreamShared(recv, level)
			if len(senders) != len(recs) || len(sizes) != len(recs) {
				t.Fatalf("stream length mismatch for receiver %d level %v", recv, level)
			}
			for i, r := range recs {
				if senders[i] != int64(r.Sender) || shared[i] != int64(r.Sender) {
					t.Fatalf("sender stream diverges at %d", i)
				}
				if sizes[i] != r.Size || sharedSizes[i] != r.Size {
					t.Fatalf("size stream diverges at %d", i)
				}
			}
		}
	}
}

func TestIndexInvalidatedByAppend(t *testing.T) {
	tr := New("x", 2)
	tr.Append(Record{Receiver: 0, Sender: 1, Level: Logical})
	if got := len(tr.SenderStream(0, Logical)); got != 1 {
		t.Fatalf("stream length %d, want 1", got)
	}
	// Appending after the index was built must invalidate it.
	tr.Append(Record{Receiver: 0, Sender: 2, Level: Logical})
	senders := tr.SenderStream(0, Logical)
	if len(senders) != 2 || senders[1] != 2 {
		t.Fatalf("stream after append = %v, want [1 2]", senders)
	}
}

func TestConcurrentStreamReads(t *testing.T) {
	// Many goroutines trigger the lazy index build at once and then read
	// every stream; run with -race to validate the locking.
	tr := randomTrace(3, 4, 1000)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for recv := 0; recv < 4; recv++ {
				for _, level := range []Level{Logical, Physical} {
					a := tr.SenderStreamShared(recv, level)
					b := tr.SenderStream(recv, level)
					if len(a) != len(b) {
						t.Errorf("shared/copy length mismatch: %d vs %d", len(a), len(b))
						return
					}
					tr.Characterize(recv, level, 0.99)
				}
			}
		}()
	}
	wg.Wait()
}

func TestGrowPreservesRecords(t *testing.T) {
	tr := New("x", 2)
	tr.Append(Record{Receiver: 0, Sender: 1, Level: Logical})
	tr.Grow(100)
	if cap(tr.Records)-len(tr.Records) < 100 {
		t.Errorf("Grow(100) left only %d free slots", cap(tr.Records)-len(tr.Records))
	}
	tr.Append(Record{Receiver: 0, Sender: 2, Level: Logical})
	if got := tr.SenderStream(0, Logical); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("records after Grow = %v, want [1 2]", got)
	}
	tr.Grow(0) // no-op
	tr.Grow(-5)
}

// BenchmarkSenderStream measures the indexed stream query (one copy).
func BenchmarkSenderStream(b *testing.B) {
	tr := randomTrace(4, 8, 50000)
	tr.SenderStream(0, Logical) // build the index outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SenderStream(i%8, Logical)
	}
}

// BenchmarkSenderStreamShared measures the zero-copy variant used by the
// evaluation hot path.
func BenchmarkSenderStreamShared(b *testing.B) {
	tr := randomTrace(5, 8, 50000)
	tr.SenderStream(0, Logical)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SenderStreamShared(i%8, Logical)
	}
}

// BenchmarkSenderStreamNaive documents what the seed implementation paid
// per query: a full scan of all records plus a sort.
func BenchmarkSenderStreamNaive(b *testing.B) {
	tr := randomTrace(6, 8, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := naiveFilter(tr, i%8, Logical)
		out := make([]int64, len(recs))
		for j, r := range recs {
			out[j] = int64(r.Sender)
		}
	}
}
