package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

// codecPredictorConfig keeps codec-test predictor state small: the
// every-truncation and every-bit-flip sweeps decode (and trial-restore)
// the file thousands of times, so window geometry directly multiplies
// their runtime without adding coverage.
func codecPredictorConfig() core.Config {
	return core.Config{WindowSize: 48, MaxLag: 16, MinRepeats: 2, ConfirmRuns: 3,
		HoldDown: 4, LockTolerance: 0.2, RelearnWindow: 12, RelearnMissRate: 0.3}
}

// sampleSessions builds a deterministic set of session snapshots covering
// locked, learning and fresh predictor states.
func sampleSessions(t testing.TB) []SessionSnapshot {
	t.Helper()
	r := NewRegistry(Config{Predictor: codecPredictorConfig()})
	feedPeriodic(r, "bt.4", "r1/logical", 6, 300)   // locked
	feedPeriodic(r, "bt.4", "r1/physical", 12, 250) // locked, longer period
	for i := 0; i < 40; i++ {                       // learning, aperiodic
		r.Observe("cg.8", "r3/logical", Event{Sender: int64(i), Size: int64(i * i)})
	}
	r.Observe("is.4", "r0/logical", Event{Sender: 2, Size: 1 << 20}) // nearly fresh
	return r.SnapshotSessions()
}

func encodeSnapshot(t testing.TB, sessions []SessionSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := sampleSessions(t)
	data := encodeSnapshot(t, want)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotCodecEmpty(t *testing.T) {
	data := encodeSnapshot(t, nil)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty snapshot decoded to %d sessions", len(got))
	}
}

// TestSnapshotCodecRoundTripProperty round-trips randomly generated
// predictor states driven through real observation streams, the snapshot
// analogue of the trace codec's property test.
func TestSnapshotCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		r := NewRegistry(Config{Predictor: codecPredictorConfig()})
		sessions := 1 + rng.Intn(5)
		for s := 0; s < sessions; s++ {
			tenant := string(rune('a' + rng.Intn(3)))
			stream := string(rune('x' + rng.Intn(3)))
			n := rng.Intn(500)
			period := 1 + rng.Intn(20)
			noise := rng.Intn(4) == 0
			for i := 0; i < n; i++ {
				ev := Event{Sender: int64(i % period), Size: int64((i * 37) % period)}
				if noise && rng.Intn(8) == 0 {
					ev.Sender = int64(rng.Intn(period + 3))
				}
				r.Observe(tenant, stream, ev)
			}
		}
		want := r.SnapshotSessions()
		data := encodeSnapshot(t, want)
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		// Stability: re-encoding the decoded sessions must be
		// byte-identical (the warm-restart contract).
		if again := encodeSnapshot(t, got); !bytes.Equal(again, data) {
			t.Fatalf("trial %d: re-encode is not byte-identical", trial)
		}
	}
}

// TestSnapshotCodecRejectsEveryTruncation mirrors the trace codec suite:
// every proper prefix of a valid file must be rejected.
func TestSnapshotCodecRejectsEveryTruncation(t *testing.T) {
	data := encodeSnapshot(t, sampleSessions(t))
	for n := 0; n < len(data); n++ {
		if _, err := ReadSnapshot(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes was accepted", n, len(data))
		} else if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorruptSnapshot", n, err)
		}
	}
}

// TestSnapshotCodecRejectsEveryBitFlip flips every bit of a valid file and
// requires the reader to reject (or, never, silently accept) each one.
func TestSnapshotCodecRejectsEveryBitFlip(t *testing.T) {
	data := encodeSnapshot(t, sampleSessions(t))
	mutated := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(mutated, data)
			mutated[i] ^= 1 << bit
			if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d was accepted", i, bit)
			}
		}
	}
}

func TestSnapshotCodecRejectsTrailingGarbage(t *testing.T) {
	data := encodeSnapshot(t, sampleSessions(t))
	if _, err := ReadSnapshot(bytes.NewReader(append(data, 0x00))); err == nil {
		t.Fatal("trailing byte was accepted")
	}
}

func TestSnapshotCodecRejectsWrongVersion(t *testing.T) {
	data := encodeSnapshot(t, nil)
	data[4] = 99 // version byte follows the 4-byte magic
	if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("unknown version: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestSnapshotCodecRejectsDuplicateSessions(t *testing.T) {
	sessions := sampleSessions(t)[:1]
	dup := append(sessions, sessions[0])
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, dup); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("duplicate session keys: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestSaveLoadSnapshotFile(t *testing.T) {
	want := sampleSessions(t)
	path := filepath.Join(t.TempDir(), "state.mps")
	if err := SaveSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip mismatch")
	}
	// Atomicity: the directory must hold only the snapshot, no temp debris.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want just the snapshot", len(entries))
	}
}

func TestSaveSnapshotFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.mps")
	if err := SaveSnapshotFile(path, nil); err != nil {
		t.Fatal(err)
	}
	want := sampleSessions(t)
	if err := SaveSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replacement lost sessions: got %d, want %d", len(got), len(want))
	}
}

func TestLoadSnapshotFileMissing(t *testing.T) {
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "absent.mps")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want fs.ErrNotExist", err)
	}
}

// FuzzSnapshotCodec drives the decoder with arbitrary bytes: it must never
// panic, and any input it accepts must re-encode to a byte-identical file
// (the decode/encode fixpoint that makes warm restarts stable).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add(encodeSnapshot(f, nil))
	f.Add(encodeSnapshot(f, sampleSessions(f)))
	short := sampleSessions(f)[:1]
	f.Add(encodeSnapshot(f, short))
	f.Add([]byte("MPS\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sessions, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, sessions); err != nil {
			t.Fatalf("re-encoding accepted input failed: %v", err)
		}
		// Current-version files re-encode byte-identically (the
		// warm-restart fixpoint); accepted legacy version-1/2 files come
		// back as version 3, so for those the fixpoint is checked one
		// conversion later: read(write(read(legacy))) must equal
		// read(legacy) and the version-3 bytes must be a fixpoint
		// themselves.
		if len(data) > 4 && data[4] == SnapshotVersion {
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("accepted input does not re-encode identically")
			}
		} else {
			again, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded legacy snapshot does not read back: %v", err)
			}
			if !reflect.DeepEqual(again, sessions) {
				t.Fatalf("legacy snapshot changed across a re-encode cycle")
			}
			var fix bytes.Buffer
			if err := WriteSnapshot(&fix, again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fix.Bytes(), buf.Bytes()) {
				t.Fatalf("converted legacy snapshot is not a re-encode fixpoint")
			}
		}
		// Every accepted session must restore into a working strategy.
		for _, s := range sessions {
			if _, err := strategy.Restore(s.Strategy, s.Sender); err != nil {
				t.Fatalf("accepted sender state does not restore: %v", err)
			}
			if _, err := strategy.Restore(s.Strategy, s.Size); err != nil {
				t.Fatalf("accepted size state does not restore: %v", err)
			}
		}
	})
}

// TestWriteSnapshotRejectsEmptyKeys mirrors the reader's validation on
// the write side: producing a file the reader would call corrupt helps
// nobody (a library user can create empty-key sessions directly on a
// Registry; the HTTP layer cannot).
func TestWriteSnapshotRejectsEmptyKeys(t *testing.T) {
	r := NewRegistry(Config{Predictor: codecPredictorConfig()})
	r.Observe("", "s", Event{Sender: 1, Size: 2})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, r.SnapshotSessions()); err == nil {
		t.Fatal("WriteSnapshot accepted an empty session key")
	}
}

// writeV1Snapshot builds a legacy version-1 file from dpd sessions: the
// v1 inline predictor layout is byte-identical to the dpd strategy
// payload, so the payload bytes are spliced in raw.
func writeV1Snapshot(t testing.TB, sessions []SessionSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := &snapWriter{bw: bufio.NewWriter(&buf)}
	sw.write(snapshotMagic[:])
	sw.writeUvarint(snapshotVersion1)
	for _, s := range sessions {
		if s.Strategy != "dpd" {
			t.Fatalf("version 1 cannot hold strategy %q", s.Strategy)
		}
		sw.writeByte(tagSnapSession)
		sw.writeString(s.Tenant)
		sw.writeString(s.Stream)
		sw.writeVarint(s.Observed)
		sw.write(s.Sender)
		sw.write(s.Size)
	}
	sw.writeByte(tagSnapEnd)
	sw.writeUvarint(uint64(len(sessions)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sw.crc)
	if sw.err != nil {
		t.Fatal(sw.err)
	}
	if _, err := sw.bw.Write(trailer[:]); err != nil {
		t.Fatal(err)
	}
	if err := sw.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCodecReadsVersion1 pins backward compatibility: a legacy
// DPD-only file decodes to exactly the sessions a current-version file of
// the same state holds, so a daemon upgraded across the format change
// warm-restarts from its old checkpoint.
func TestSnapshotCodecReadsVersion1(t *testing.T) {
	want := sampleSessions(t)
	got, err := ReadSnapshot(bytes.NewReader(writeV1Snapshot(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("version-1 decode mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// writeV2Snapshot builds a legacy version-2 file: the strategy-framed
// layout before the last-applied batch sequence was added between the
// observed count and the strategy name.
func writeV2Snapshot(t testing.TB, sessions []SessionSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := &snapWriter{bw: bufio.NewWriter(&buf)}
	sw.write(snapshotMagic[:])
	sw.writeUvarint(snapshotVersion2)
	for _, s := range sessions {
		sw.writeByte(tagSnapSession)
		sw.writeString(s.Tenant)
		sw.writeString(s.Stream)
		sw.writeVarint(s.Observed)
		sw.writeString(s.Strategy)
		sw.writePayload(s.Sender)
		sw.writePayload(s.Size)
	}
	sw.writeByte(tagSnapEnd)
	sw.writeUvarint(uint64(len(sessions)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sw.crc)
	if sw.err != nil {
		t.Fatal(sw.err)
	}
	if _, err := sw.bw.Write(trailer[:]); err != nil {
		t.Fatal(err)
	}
	if err := sw.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCodecReadsVersion2 pins backward compatibility with the
// pre-idempotency format: a version-2 file decodes to the same sessions
// with LastSeq zero, so a daemon upgraded across the format change
// warm-restarts from its old checkpoint (and simply has no dedup history
// for batches it learned before the upgrade).
func TestSnapshotCodecReadsVersion2(t *testing.T) {
	want := sampleSessions(t)
	for i := range want {
		want[i].LastSeq = 0
	}
	got, err := ReadSnapshot(bytes.NewReader(writeV2Snapshot(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("version-2 decode mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotLastSeqRoundTrip pins the crash-recovery half of the
// idempotency contract: the last applied batch sequence rides the
// snapshot file and a registry restore, so re-delivered batches are
// still recognized as duplicates after a warm restart.
func TestSnapshotLastSeqRoundTrip(t *testing.T) {
	r := NewRegistry(Config{Predictor: codecPredictorConfig()})
	for seq := int64(1); seq <= 7; seq++ {
		if _, _, err := r.ObserveBatchSeq("bt.4", "r1/logical", "", seq,
			[]Event{{Sender: seq % 3, Size: 100 * seq}}); err != nil {
			t.Fatal(err)
		}
	}
	want := r.SnapshotSessions()
	if len(want) != 1 || want[0].LastSeq != 7 {
		t.Fatalf("snapshot = %+v, want one session with LastSeq 7", want)
	}
	data := encodeSnapshot(t, want)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("LastSeq round trip mismatch")
	}
	// Restore into a fresh registry: a replay of an already applied batch
	// must be dropped, and the re-snapshot must be byte-identical.
	fresh := NewRegistry(Config{Predictor: codecPredictorConfig()})
	if err := fresh.RestoreSessions(got); err != nil {
		t.Fatal(err)
	}
	total, dup, err := fresh.ObserveBatchSeq("bt.4", "r1/logical", "", 7,
		[]Event{{Sender: 1, Size: 700}})
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Fatal("restored registry re-applied an already observed batch")
	}
	if total != want[0].Observed {
		t.Fatalf("duplicate drop reported total %d, want %d", total, want[0].Observed)
	}
	if again := encodeSnapshot(t, fresh.SnapshotSessions()); !bytes.Equal(again, data) {
		t.Fatal("restore + duplicate replay + snapshot is not byte-identical")
	}
}

func TestWriteSnapshotRejectsNegativeLastSeq(t *testing.T) {
	sessions := sampleSessions(t)[:1]
	sessions[0].LastSeq = -1
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sessions); err == nil {
		t.Fatal("WriteSnapshot accepted a negative batch sequence")
	}
}

// heterogeneousSessions builds a registry hosting one locked/warmed
// session per registered strategy plus a DPD session, snapshots it, and
// returns the sorted snapshots.
func heterogeneousSessions(t testing.TB) []SessionSnapshot {
	t.Helper()
	r := NewRegistry(Config{Predictor: codecPredictorConfig()})
	for i, name := range strategy.Names() {
		stream := "r" + string(rune('0'+i)) + "/logical"
		for j := 0; j < 300; j++ {
			ev := Event{Sender: int64(j % 5), Size: int64(10 * (j % 5))}
			if err := r.ObserveAs("mix", stream, name, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	return r.SnapshotSessions()
}

// TestSnapshotHeterogeneousSessions pins the tentpole's serving claim: a
// single registry checkpoint holding sessions of different strategies
// round-trips through the file format and a restore byte-for-byte.
func TestSnapshotHeterogeneousSessions(t *testing.T) {
	want := heterogeneousSessions(t)
	if len(want) != len(strategy.Names()) {
		t.Fatalf("got %d sessions, want one per strategy (%d)", len(want), len(strategy.Names()))
	}
	data := encodeSnapshot(t, want)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("heterogeneous snapshot round trip mismatch")
	}
	// Restore into a fresh registry and snapshot again: the bytes must be
	// identical (warm-restart fixpoint across mixed strategies).
	fresh := NewRegistry(Config{Predictor: codecPredictorConfig()})
	if err := fresh.RestoreSessions(got); err != nil {
		t.Fatal(err)
	}
	if again := encodeSnapshot(t, fresh.SnapshotSessions()); !bytes.Equal(again, data) {
		t.Fatal("restore + snapshot of a heterogeneous registry is not byte-identical")
	}
	// Each restored session still reports its strategy.
	for _, info := range fresh.Sessions() {
		if !strategy.Known(info.Strategy) {
			t.Fatalf("restored session %s/%s lost its strategy: %+v", info.Tenant, info.Stream, info)
		}
	}
}

func TestSnapshotCodecRejectsUnknownStrategy(t *testing.T) {
	sessions := heterogeneousSessions(t)
	sessions[0].Strategy = "no-such-strategy"
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sessions); err == nil {
		t.Fatal("WriteSnapshot accepted an unregistered strategy")
	}
}
