package serve

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpipredict/internal/core"
)

// codecPredictorConfig keeps codec-test predictor state small: the
// every-truncation and every-bit-flip sweeps decode (and trial-restore)
// the file thousands of times, so window geometry directly multiplies
// their runtime without adding coverage.
func codecPredictorConfig() core.Config {
	return core.Config{WindowSize: 48, MaxLag: 16, MinRepeats: 2, ConfirmRuns: 3,
		HoldDown: 4, LockTolerance: 0.2, RelearnWindow: 12, RelearnMissRate: 0.3}
}

// sampleSessions builds a deterministic set of session snapshots covering
// locked, learning and fresh predictor states.
func sampleSessions(t testing.TB) []SessionSnapshot {
	t.Helper()
	r := NewRegistry(Config{Predictor: codecPredictorConfig()})
	feedPeriodic(r, "bt.4", "r1/logical", 6, 300)   // locked
	feedPeriodic(r, "bt.4", "r1/physical", 12, 250) // locked, longer period
	for i := 0; i < 40; i++ {                       // learning, aperiodic
		r.Observe("cg.8", "r3/logical", Event{Sender: int64(i), Size: int64(i * i)})
	}
	r.Observe("is.4", "r0/logical", Event{Sender: 2, Size: 1 << 20}) // nearly fresh
	return r.SnapshotSessions()
}

func encodeSnapshot(t testing.TB, sessions []SessionSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := sampleSessions(t)
	data := encodeSnapshot(t, want)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotCodecEmpty(t *testing.T) {
	data := encodeSnapshot(t, nil)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty snapshot decoded to %d sessions", len(got))
	}
}

// TestSnapshotCodecRoundTripProperty round-trips randomly generated
// predictor states driven through real observation streams, the snapshot
// analogue of the trace codec's property test.
func TestSnapshotCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		r := NewRegistry(Config{Predictor: codecPredictorConfig()})
		sessions := 1 + rng.Intn(5)
		for s := 0; s < sessions; s++ {
			tenant := string(rune('a' + rng.Intn(3)))
			stream := string(rune('x' + rng.Intn(3)))
			n := rng.Intn(500)
			period := 1 + rng.Intn(20)
			noise := rng.Intn(4) == 0
			for i := 0; i < n; i++ {
				ev := Event{Sender: int64(i % period), Size: int64((i * 37) % period)}
				if noise && rng.Intn(8) == 0 {
					ev.Sender = int64(rng.Intn(period + 3))
				}
				r.Observe(tenant, stream, ev)
			}
		}
		want := r.SnapshotSessions()
		data := encodeSnapshot(t, want)
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		// Stability: re-encoding the decoded sessions must be
		// byte-identical (the warm-restart contract).
		if again := encodeSnapshot(t, got); !bytes.Equal(again, data) {
			t.Fatalf("trial %d: re-encode is not byte-identical", trial)
		}
	}
}

// TestSnapshotCodecRejectsEveryTruncation mirrors the trace codec suite:
// every proper prefix of a valid file must be rejected.
func TestSnapshotCodecRejectsEveryTruncation(t *testing.T) {
	data := encodeSnapshot(t, sampleSessions(t))
	for n := 0; n < len(data); n++ {
		if _, err := ReadSnapshot(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes was accepted", n, len(data))
		} else if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorruptSnapshot", n, err)
		}
	}
}

// TestSnapshotCodecRejectsEveryBitFlip flips every bit of a valid file and
// requires the reader to reject (or, never, silently accept) each one.
func TestSnapshotCodecRejectsEveryBitFlip(t *testing.T) {
	data := encodeSnapshot(t, sampleSessions(t))
	mutated := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(mutated, data)
			mutated[i] ^= 1 << bit
			if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d was accepted", i, bit)
			}
		}
	}
}

func TestSnapshotCodecRejectsTrailingGarbage(t *testing.T) {
	data := encodeSnapshot(t, sampleSessions(t))
	if _, err := ReadSnapshot(bytes.NewReader(append(data, 0x00))); err == nil {
		t.Fatal("trailing byte was accepted")
	}
}

func TestSnapshotCodecRejectsWrongVersion(t *testing.T) {
	data := encodeSnapshot(t, nil)
	data[4] = 2 // version byte follows the 4-byte magic
	if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("unknown version: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestSnapshotCodecRejectsDuplicateSessions(t *testing.T) {
	sessions := sampleSessions(t)[:1]
	dup := append(sessions, sessions[0])
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, dup); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("duplicate session keys: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestSaveLoadSnapshotFile(t *testing.T) {
	want := sampleSessions(t)
	path := filepath.Join(t.TempDir(), "state.mps")
	if err := SaveSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip mismatch")
	}
	// Atomicity: the directory must hold only the snapshot, no temp debris.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want just the snapshot", len(entries))
	}
}

func TestSaveSnapshotFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.mps")
	if err := SaveSnapshotFile(path, nil); err != nil {
		t.Fatal(err)
	}
	want := sampleSessions(t)
	if err := SaveSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replacement lost sessions: got %d, want %d", len(got), len(want))
	}
}

func TestLoadSnapshotFileMissing(t *testing.T) {
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "absent.mps")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want fs.ErrNotExist", err)
	}
}

// FuzzSnapshotCodec drives the decoder with arbitrary bytes: it must never
// panic, and any input it accepts must re-encode to a byte-identical file
// (the decode/encode fixpoint that makes warm restarts stable).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add(encodeSnapshot(f, nil))
	f.Add(encodeSnapshot(f, sampleSessions(f)))
	short := sampleSessions(f)[:1]
	f.Add(encodeSnapshot(f, short))
	f.Add([]byte("MPS\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sessions, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, sessions); err != nil {
			t.Fatalf("re-encoding accepted input failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted input does not re-encode identically")
		}
		// Every accepted session must restore into working predictors.
		for _, s := range sessions {
			if _, err := core.RestoreStreamPredictor(s.Sender); err != nil {
				t.Fatalf("accepted sender state does not restore: %v", err)
			}
			if _, err := core.RestoreStreamPredictor(s.Size); err != nil {
				t.Fatalf("accepted size state does not restore: %v", err)
			}
		}
	})
}

// TestWriteSnapshotRejectsEmptyKeys mirrors the reader's validation on
// the write side: producing a file the reader would call corrupt helps
// nobody (a library user can create empty-key sessions directly on a
// Registry; the HTTP layer cannot).
func TestWriteSnapshotRejectsEmptyKeys(t *testing.T) {
	r := NewRegistry(Config{Predictor: codecPredictorConfig()})
	r.Observe("", "s", Event{Sender: 1, Size: 2})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, r.SnapshotSessions()); err == nil {
		t.Fatal("WriteSnapshot accepted an empty session key")
	}
}
