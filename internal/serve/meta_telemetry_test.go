package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mpipredict/internal/strategy"
)

// TestSessionMetaTelemetry drives a meta-strategy session and checks the
// router telemetry end to end: the session listing carries leaders,
// switch counts and per-expert rolling hit rates, the registry aggregate
// sums them, and /debug/vars serves the composite.
func TestSessionMetaTelemetry(t *testing.T) {
	srv, ts := newTestServer(t)
	reg := srv.Registry()
	// A repeating-run stream: lastvalue-friendly, so rates separate.
	for i := 0; i < 200; i++ {
		if err := reg.ObserveAs("t", "s", strategy.MetaName, Event{Sender: int64(i / 10 % 7), Size: 512}); err != nil {
			t.Fatal(err)
		}
	}
	reg.Observe("t", "plain", Event{Sender: 1, Size: 1}) // non-meta control

	info, ok := reg.Info("t", "s")
	if !ok || info.Meta == nil {
		t.Fatalf("meta session info = %+v, ok=%v; want router telemetry", info, ok)
	}
	if !strategy.Known(info.Meta.SenderLeader) || !strategy.Known(info.Meta.SizeLeader) {
		t.Fatalf("leaders %q/%q are not registered strategies", info.Meta.SenderLeader, info.Meta.SizeLeader)
	}
	for _, rates := range []map[string]float64{info.Meta.SenderRates, info.Meta.SizeRates} {
		if len(rates) < 2 {
			t.Fatalf("expert rate map %v too small", rates)
		}
		for name, rate := range rates {
			if rate < 0 || rate > 1 {
				t.Fatalf("expert %s rate %f outside [0, 1]", name, rate)
			}
		}
	}
	// The size stream is constant: lastvalue and markov1 hit ~always, so
	// the windowed rate must be high, and dpd must not dominate a stream
	// it abstains on.
	if info.Meta.SizeRates["lastvalue"] < 0.9 {
		t.Fatalf("constant size stream scored lastvalue at %f", info.Meta.SizeRates["lastvalue"])
	}

	if plain, ok := reg.Info("t", "plain"); !ok || plain.Meta != nil {
		t.Fatalf("non-meta session carries router telemetry: %+v", plain.Meta)
	}

	stats := reg.MetaStats()
	if stats.Sessions != 1 {
		t.Fatalf("MetaStats.Sessions = %d, want 1", stats.Sessions)
	}
	if stats.Switches != info.Meta.Switches {
		t.Fatalf("aggregate switches %d, session reports %d", stats.Switches, info.Meta.Switches)
	}
	if n := stats.Leaders[info.Meta.SenderLeader]; n < 1 {
		t.Fatalf("leader map %v does not count the sender leader", stats.Leaders)
	}
	if len(stats.HitRates) < 2 {
		t.Fatalf("aggregate hit rates %v too small", stats.HitRates)
	}

	// The JSON surfaces: /v1/sessions rows and the /debug/vars composite.
	_, out := get(t, ts.URL+"/v1/sessions")
	var listing struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(out), &listing); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range listing.Sessions {
		if s.Stream == "s" {
			found = true
			if s.Meta == nil || s.Meta.SenderLeader != info.Meta.SenderLeader {
				t.Fatalf("listing meta = %+v, want leader %q", s.Meta, info.Meta.SenderLeader)
			}
		}
	}
	if !found {
		t.Fatal("meta session missing from the listing")
	}
	_, body := get(t, ts.URL+"/debug/vars")
	var vars struct {
		Meta MetaStats `json:"meta"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Meta.Sessions != 1 || len(vars.Meta.HitRates) < 2 {
		t.Fatalf("/debug/vars meta = %+v", vars.Meta)
	}
}

// TestMetaTelemetryConcurrentScrape hammers the router telemetry from
// scrapers while observers and forecasters run — the -race proof that
// RouteInfo aggregation takes the same shard locks as the hot path.
func TestMetaTelemetryConcurrentScrape(t *testing.T) {
	srv := NewServer(NewRegistry(Config{Strategy: strategy.MetaName, Shards: 4}))
	reg := srv.Registry()
	const (
		streams = 8
		rounds  = 150
	)
	var wg sync.WaitGroup
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := fmt.Sprintf("s%d", g)
			buf := make([]Forecast, 0, 5)
			for i := 0; i < rounds; i++ {
				reg.Observe("t", stream, Event{Sender: int64(i % (g + 2)), Size: int64(g)})
				buf, _, _ = reg.ForecastInto(buf[:0], "t", stream, 5)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				stats := reg.MetaStats()
				if stats.Sessions > streams {
					t.Errorf("MetaStats.Sessions = %d with %d streams", stats.Sessions, streams)
					return
				}
				for _, s := range reg.Sessions() {
					if s.Meta == nil {
						t.Errorf("meta-default session %s/%s has no router telemetry", s.Tenant, s.Stream)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars returned %d", rec.Code)
	}
	stats := reg.MetaStats()
	if stats.Sessions != streams {
		t.Fatalf("MetaStats.Sessions = %d, want %d", stats.Sessions, streams)
	}
}
