package serve

import (
	"context"
	"testing"
	"time"
)

// TestBackoffDelayClampsOverflow pins the shift-overflow fix: the old
// `base << attempt` wrapped int64 for large attempts and could land on a
// small positive value that slipped past the range guard (for example
// base = 2³⁵+1 ns at attempt 29 wrapped to exactly 2²⁹ ns ≈ 536 ms),
// collapsing backoff during a long outage. backoffDelay must never
// return less than the honest (capped) delay, for any attempt count.
func TestBackoffDelayClampsOverflow(t *testing.T) {
	cases := []struct {
		name    string
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{"first attempt", DefaultRetryBase, 0, DefaultRetryBase},
		{"doubles", DefaultRetryBase, 2, 4 * DefaultRetryBase},
		{"reaches cap", DefaultRetryBase, 6, maxRetryBackoff}, // 25ms·2⁶ = 1.6s
		{"far past cap", DefaultRetryBase, 40, maxRetryBackoff},
		{"wrap to small positive", time.Duration(1<<35 + 1), 29, maxRetryBackoff},
		{"wrap to zero", time.Second, 40, maxRetryBackoff},
		{"shift width overflow", time.Nanosecond, 63, maxRetryBackoff},
		{"huge attempt", time.Nanosecond, 1 << 30, maxRetryBackoff},
		{"negative attempt", DefaultRetryBase, -1, maxRetryBackoff},
		{"zero base", 0, 3, maxRetryBackoff},
		{"base above cap", 2 * maxRetryBackoff, 0, maxRetryBackoff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := backoffDelay(tc.base, tc.attempt); got != tc.want {
				t.Fatalf("backoffDelay(%v, %d) = %v, want %v", tc.base, tc.attempt, got, tc.want)
			}
		})
	}
	// The invariant the guard exists for: no attempt count may shrink the
	// delay below the previous attempt's floor once the cap is reached.
	for attempt := 0; attempt < 200; attempt++ {
		if d := backoffDelay(DefaultRetryBase, attempt); d < DefaultRetryBase || d > maxRetryBackoff {
			t.Fatalf("backoffDelay(%v, %d) = %v outside [%v, %v]", DefaultRetryBase, attempt, d, DefaultRetryBase, maxRetryBackoff)
		}
	}
}

// TestSleepBackoffHighAttempt drives the real sleep through a (base,
// attempt) pair whose raw shift wraps to 4 ns — a small positive value
// the old after-the-fact guard accepted, so the pre-fix code slept
// essentially zero. Clamped, the delay is maxRetryBackoff and the full
// jitter keeps the wait in [cap/2, cap].
func TestSleepBackoffHighAttempt(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	base := time.Duration(1)<<62 + 1 // base<<2 = 2⁶⁴+4, wraps to 4 ns
	start := time.Now()
	if err := SleepBackoff(ctx, base, 2, 0); err != nil {
		t.Fatal(err)
	}
	took := time.Since(start)
	if took < maxRetryBackoff/2-50*time.Millisecond {
		t.Fatalf("SleepBackoff slept %v, want ≥ %v: the wrapped shift collapsed the backoff", took, maxRetryBackoff/2)
	}
	if took > 3*maxRetryBackoff {
		t.Fatalf("SleepBackoff slept %v, want ≤ jittered cap %v", took, maxRetryBackoff)
	}
}
