package serve

// End-to-end proofs for the binary wire path, mirroring the HTTP chaos
// suite: a replay over wire must leave the registry in a byte-identical
// state to the same replay over HTTP — on a clean network, under
// connection chaos (truncated frames, resets, lost acks), and for meta
// sessions — and the wire surface must share the HTTP server's
// readiness, overload and dedup behavior, not reimplement it.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpipredict/internal/faultinject"
	"mpipredict/internal/wire"
)

// startWireServer runs a wire listener for srv on loopback and returns
// its address. Shutdown is handled by cleanup.
func startWireServer(t *testing.T, srv *Server) (*WireServer, string) {
	t.Helper()
	ws := NewWireServer(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(ws.Shutdown)
	return ws, ln.Addr().String()
}

// cleanReplayBytesWith replays the corpus trace over plain HTTP into a
// fresh server with the given registry config and returns the canonical
// snapshot bytes.
func cleanReplayBytesWith(t *testing.T, cfg Config) []byte {
	t.Helper()
	tr := corpusTrace(t, "bt.4.mpt")
	srv := NewServer(NewRegistry(cfg))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{BatchSize: 1}); err != nil {
		t.Fatal(err)
	}
	return encodeSnapshot(t, srv.Registry().SnapshotSessions())
}

// TestWireReplayByteIdenticalToHTTP is the core parity proof, run for
// the default strategy and for adaptive meta sessions: the same trace
// replayed through the binary wire transport must converge to exactly
// the session bytes the HTTP path produces.
func TestWireReplayByteIdenticalToHTTP(t *testing.T) {
	for _, strat := range []string{"", "meta"} {
		t.Run("strategy="+strat, func(t *testing.T) {
			cfg := Config{Strategy: strat}
			want := cleanReplayBytesWith(t, cfg)

			srv := NewServer(NewRegistry(cfg))
			ts := httptest.NewServer(srv)
			defer ts.Close()
			_, _ = startWireServer(t, srv)

			tr := corpusTrace(t, "bt.4.mpt")
			stats, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{BatchSize: 1, Transport: TransportAuto})
			if err != nil {
				t.Fatalf("wire replay: %v", err)
			}
			if stats.Transport != TransportWire {
				t.Fatalf("auto negotiation picked %q, want wire (healthz advert missing?)", stats.Transport)
			}
			got := encodeSnapshot(t, srv.Registry().SnapshotSessions())
			if !bytes.Equal(got, want) {
				t.Fatalf("wire replay state diverged from HTTP replay (wire %d bytes, http %d bytes; stats %+v)",
					len(got), len(want), stats)
			}
		})
	}
}

// TestWireChaosReplayConvergesByteIdentical is the acceptance-criteria
// chaos proof: under connection-level fault injection — accept-time
// refusals, mid-read resets, swallowed ack writes (duplicated
// deliveries on resend), truncated frames — the wire replay's
// reconnect-and-resend plus the server's sequenced dedup must converge
// to the exact clean-replay bytes.
func TestWireChaosReplayConvergesByteIdentical(t *testing.T) {
	want := cleanReplayBytes(t)
	tr := corpusTrace(t, "bt.4.mpt")

	srv := NewServer(NewRegistry(Config{}))
	ws := NewWireServer(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The wire path is far quieter than HTTP — pipelining collapses the
	// whole replay into a handful of reads and one ack per burst — so the
	// stream chaos runs with a window of one (a roll per frame) and a
	// hotter accept fault to make every class fire within 66 records.
	cfg := chaosConfig()
	cfg.ErrorProb = 0.25
	chaos := faultinject.NewListener(cfg, ln)
	go ws.Serve(chaos)
	defer ws.Shutdown()

	opts := fastRetry()
	opts.Transport = TransportWire
	opts.WireWindow = 1
	opts.MaxRetries = 200
	stats, err := Replay(context.Background(), "wire://"+ln.Addr().String(), tr, opts)
	if err != nil {
		t.Fatalf("chaos wire replay failed: %v (stats %+v, injected %+v)", err, stats, chaos.Injected().Snapshot())
	}
	counts := chaos.Injected().Snapshot()
	if counts.Errors == 0 || counts.Resets == 0 || counts.Drops == 0 || counts.Truncates == 0 {
		t.Fatalf("fault mix did not exercise every class: %+v", counts)
	}
	if stats.Retries == 0 {
		t.Fatalf("chaos replay survived without resends: %+v", stats)
	}
	// Swallowed ack writes lose acknowledgments of observe frames the
	// registry DID apply; their verbatim resends must have been absorbed
	// as duplicates.
	if srv.Registry().Stats().DupBatches == 0 {
		t.Fatalf("no duplicated delivery was absorbed despite %d dropped and %d truncated writes: %+v",
			counts.Drops, counts.Truncates, stats)
	}
	got := encodeSnapshot(t, srv.Registry().SnapshotSessions())
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos wire replay diverged from clean replay (stats %+v, injected %+v)", stats, counts)
	}
}

// TestWireReconnectResendsOpenBatchVerbatim pins the client resend
// contract directly: a frame stranded on a dead connection is retained
// byte-for-byte, resent with the same seq on the next connection, and a
// second (ambiguous) delivery of it is absorbed by the backend's dedup.
func TestWireReconnectResendsOpenBatchVerbatim(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	_, addr := startWireServer(t, srv)
	ctx := context.Background()

	c1, err := wire.Dial(ctx, addr, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	senders, sizes := []int64{1, 2, 3}, []int64{8, 16, 24}
	if err := c1.ObserveBlock(ctx, "t", "s", "", 1, senders, sizes); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Second batch enters the pipeline but the connection dies before
	// any ack: the open batch stays retained, verbatim.
	if err := c1.ObserveBlock(ctx, "t", "s", "", 2, senders, sizes); err != nil {
		t.Fatal(err)
	}
	open := c1.UnackedFrames()
	if len(open) != 1 {
		t.Fatalf("open batches = %d, want 1", len(open))
	}
	wantFrame := wire.AppendObserve(nil, "t", "s", "", 2, senders, sizes)
	if !bytes.Equal(open[0], wantFrame) {
		t.Fatalf("retained frame differs from its encoding:\n  got  %x\n  want %x", open[0], wantFrame)
	}
	c1.Close()

	// Reconnect and resend the open batch verbatim — twice, modelling
	// the ambiguous case where the first delivery had in fact been
	// applied before the cut. Dedup must absorb the second copy.
	c2, err := wire.Dial(ctx, addr, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 2; i++ {
		if err := c2.ObserveFrame(ctx, open[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, dups := c2.Acked(); dups != 1 {
		t.Fatalf("acked duplicate count = %d, want 1", dups)
	}
	if n := srv.Registry().Stats().DupBatches; n != 1 {
		t.Fatalf("registry DupBatches = %d, want 1", n)
	}
	// The doubly-delivered batch must count once: 3 + 3 events observed.
	sessions := srv.Registry().Sessions()
	if len(sessions) != 1 || sessions[0].Observed != 6 {
		t.Fatalf("sessions = %+v, want one session with 6 observed", sessions)
	}
}

// TestWirePredictMatchesHTTP pins forecast parity: the binary predict
// response carries exactly the forecasts the HTTP endpoint serves.
func TestWirePredictMatchesHTTP(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, addr := startWireServer(t, srv)
	ctx := context.Background()

	c, err := wire.Dial(ctx, addr, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A few periods of a period-3 pattern locks the DPD.
	var senders, sizes []int64
	for i := 0; i < 30; i++ {
		senders = append(senders, int64(i%3))
		sizes = append(sizes, int64((i%3+1)*64))
	}
	if err := c.ObserveBlock(ctx, "t", "s", "", 1, senders, sizes); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	wireResp, err := c.Predict(ctx, "t", "s", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !wireResp.Found || wireResp.Observed != 30 {
		t.Fatalf("wire predict: %+v", wireResp)
	}

	httpResp, err := http.Get(ts.URL + "/v1/predict?tenant=t&stream=s&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var pr predictResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Forecasts) != len(wireResp.Forecasts) {
		t.Fatalf("forecast counts differ: http %d, wire %d", len(pr.Forecasts), len(wireResp.Forecasts))
	}
	for i, hf := range pr.Forecasts {
		wf := wireResp.Forecasts[i]
		if hf.Sender != wf.Sender || hf.SenderOK != wf.SenderOK || hf.Size != wf.Size || hf.SizeOK != wf.SizeOK || hf.OK != wf.OK() {
			t.Fatalf("forecast %d differs: http %+v, wire %+v", i, hf, wf)
		}
	}

	// An absent session is found=false, the wire twin of HTTP 404.
	missing, err := c.Predict(ctx, "t", "nope", 5)
	if err != nil {
		t.Fatal(err)
	}
	if missing.Found || len(missing.Forecasts) != 0 {
		t.Fatalf("absent session predict: %+v", missing)
	}
}

// TestWireServerSharesReadinessGating: connections are refused with a
// retryable unavailable error while the server is restoring or
// draining — the same window /readyz fails in.
func TestWireServerSharesReadinessGating(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	ws, addr := startWireServer(t, srv)
	ctx := context.Background()

	srv.SetReady(false)
	c, err := wire.Dial(ctx, addr, wire.ClientOptions{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = c.ObserveBlock(ctx, "t", "s", "", 1, []int64{1}, []int64{2})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || remote.Code != wire.CodeUnavailable || !remote.Retryable() {
		t.Fatalf("observe against a not-ready server returned %v, want retryable unavailable", err)
	}
	if !strings.Contains(remote.Msg, "starting") {
		t.Fatalf("unavailable reason %q, want starting", remote.Msg)
	}
	c.Close()

	srv.SetReady(true)
	c2, err := wire.Dial(ctx, addr, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.ObserveBlock(ctx, "t", "s", "", 1, []int64{1}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(ctx); err != nil {
		t.Fatalf("ready server refused observe: %v", err)
	}

	if n := ws.rejUnready.Load(); n != 1 {
		t.Fatalf("rejected_unready = %d, want 1", n)
	}
}

// TestWireStrategyConflictIsPermanent: a strategy mismatch against an
// existing session comes back as a non-retryable conflict, mirroring
// HTTP 409, and fails a forced-wire replay outright.
func TestWireStrategyConflictIsPermanent(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	_, addr := startWireServer(t, srv)
	ctx := context.Background()

	c, err := wire.Dial(ctx, addr, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveBlock(ctx, "t", "s", "dpd", 1, []int64{1}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveBlock(ctx, "t", "s", "markov1", 2, []int64{1}, []int64{2}); err == nil {
		err = c.Flush(ctx)
		var remote *wire.RemoteError
		if !errors.As(err, &remote) || remote.Code != wire.CodeConflict || remote.Retryable() {
			t.Fatalf("strategy conflict returned %v, want non-retryable conflict", err)
		}
	}
}

// TestWireVarsComposite: the wire listener's telemetry shows up as the
// "wire" composite on /debug/vars, with decode errors counted for
// garbage connections.
func TestWireVarsComposite(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, addr := startWireServer(t, srv)
	ctx := context.Background()

	c, err := wire.Dial(ctx, addr, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveBlock(ctx, "t", "s", "", 1, []int64{1}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A non-wire peer: counted as a decode error, not a crash.
	garbage, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	garbage.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	garbage.Close()

	var wireVars map[string]int64
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		var vars struct {
			Wire map[string]int64 `json:"wire"`
		}
		err = json.NewDecoder(resp.Body).Decode(&vars)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		wireVars = vars.Wire
		if wireVars["decode_errors"] >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if wireVars["connections_total"] < 2 {
		t.Fatalf("connections_total = %d, want >= 2 (vars %v)", wireVars["connections_total"], wireVars)
	}
	if wireVars["frames"] < 1 || wireVars["observe_frames"] < 1 {
		t.Fatalf("frame counters missing: %v", wireVars)
	}
	if wireVars["decode_errors"] < 1 {
		t.Fatalf("decode_errors = %d, want >= 1 after a garbage connection (vars %v)", wireVars["decode_errors"], wireVars)
	}
}

// TestWireHealthzAdvertRewritesUnspecifiedHost: a daemon listening on
// 0.0.0.0 must be reachable through the host the client actually probed.
func TestWireHealthzAdvertRewritesUnspecifiedHost(t *testing.T) {
	cases := []struct{ advertised, probed, want string }{
		{"0.0.0.0:9090", "example.com:8080", "example.com:9090"},
		{"[::]:9090", "10.0.0.7:8080", "10.0.0.7:9090"},
		{":9090", "example.com:8080", "example.com:9090"},
		{"127.0.0.1:9090", "example.com:8080", "127.0.0.1:9090"},
		{"node3:9090", "example.com:8080", "node3:9090"},
		{"garbage", "example.com:8080", "garbage"},
	}
	for _, tc := range cases {
		if got := rewriteWireHost(tc.advertised, tc.probed); got != tc.want {
			t.Errorf("rewriteWireHost(%q, %q) = %q, want %q", tc.advertised, tc.probed, got, tc.want)
		}
	}
}

// TestLoadGenDeliversExactly: the load generator delivers exactly the
// requested event count over both transports, cleanly (no duplicates),
// across multiple connections and sessions.
func TestLoadGenDeliversExactly(t *testing.T) {
	for _, transport := range []string{TransportWire, TransportHTTP} {
		t.Run(transport, func(t *testing.T) {
			srv := NewServer(NewRegistry(Config{}))
			ts := httptest.NewServer(srv)
			defer ts.Close()
			_, _ = startWireServer(t, srv)

			const events = 10_000
			stats, err := LoadGen(context.Background(), ts.URL, LoadGenOptions{
				Events:    events,
				Sessions:  8,
				Conns:     3,
				BlockLen:  256,
				Transport: transport,
			})
			if err != nil {
				t.Fatalf("loadgen: %v (stats %+v)", err, stats)
			}
			if stats.Transport != transport {
				t.Fatalf("transport = %q, want %q", stats.Transport, transport)
			}
			if stats.Events != events || stats.Duplicates != 0 {
				t.Fatalf("delivered %d events with %d duplicates, want %d clean", stats.Events, stats.Duplicates, events)
			}
			var observed int64
			for _, s := range srv.Registry().Sessions() {
				observed += s.Observed
			}
			if observed != events {
				t.Fatalf("registry observed %d events, want %d", observed, events)
			}
			if got := stats.String(); !strings.Contains(got, "transport="+transport) || !strings.Contains(got, "events/s") {
				t.Fatalf("stats rendering %q", got)
			}
		})
	}
}

// TestWireReplayCancellationUnwinds: cancelling the context mid-replay
// over a wire connection that stopped acking unwinds promptly.
func TestWireReplayCancellationUnwinds(t *testing.T) {
	// A listener that accepts, handshakes, then swallows everything.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				fr := wire.NewFrameReader(conn)
				if fr.Handshake() != nil {
					return
				}
				if wire.WriteHandshake(conn) != nil {
					return
				}
				for {
					if _, err := fr.ReadFrame(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	tr := corpusTrace(t, "bt.4.mpt")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		opts := ReplayOptions{BatchSize: 1, RetryBase: time.Millisecond, MaxRetries: 1 << 20, WireWindow: 1}
		_, err := Replay(ctx, fmt.Sprintf("wire://%s", ln.Addr()), tr, opts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled wire replay returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wire replay did not abort within 5s of cancellation")
	}
}
