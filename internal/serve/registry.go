// Package serve is the online prediction service: it hosts many
// concurrent prediction sessions — one (sender, size) message predictor
// per (tenant, stream) key — behind a sharded registry and an HTTP/JSON
// API, and persists learned predictor state in versioned snapshot files so
// a daemon restart does not forget periodicity it spent traffic learning.
//
// The paper's predictor is explicitly an online mechanism meant to live
// inside a communication runtime; this package is that runtime's serving
// shape: observe is the allocation-lean hot path (zero heap allocations
// per event in steady state, pinned by alloc_test.go), predictions reuse
// caller buffers, and sessions are evicted by LRU pressure and idle TTL
// so the registry holds a bounded working set no matter how many streams
// clients create.
package serve

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

// Config parameterizes a Registry. The zero value takes the defaults
// below.
type Config struct {
	// Shards is the number of independently locked registry shards.
	// Sessions are distributed by key hash; observes on different shards
	// never contend. Default 64.
	Shards int
	// MaxSessions bounds the total number of live sessions. The bound is
	// enforced per shard (MaxSessions/Shards, at least 1): creating a
	// session in a full shard evicts that shard's least recently used
	// one. Default 65536.
	MaxSessions int
	// IdleTTL is how long a session may go without an observe or predict
	// before SweepIdle evicts it. Zero selects the 15-minute default; a
	// negative value disables idle eviction.
	IdleTTL time.Duration
	// Predictor configures the DPD predictors of new sessions (zero
	// fields take core defaults). Strategies without tunables ignore it.
	Predictor core.Config
	// Strategy is the prediction strategy of sessions that do not request
	// one explicitly (strategy.Default when empty). It must be a
	// registered strategy name; NewRegistry panics otherwise, because an
	// unknown default would make every implicit session creation fail.
	Strategy string
	// Clock overrides the time source (tests). Default time.Now.
	Clock func() time.Time
}

// DefaultIdleTTL is the idle eviction horizon when Config.IdleTTL is zero.
const DefaultIdleTTL = 15 * time.Minute

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 65536
	}
	// The capacity bound is enforced per shard, so more shards than
	// sessions would silently multiply it (64 shards × min 1 session
	// each). Clamping the shard count keeps small explicit bounds exact.
	if c.MaxSessions < c.Shards {
		c.Shards = c.MaxSessions
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = DefaultIdleTTL
	}
	if c.Strategy == "" {
		c.Strategy = strategy.Default
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Event is one observed message: who sent it and how many bytes it
// carried. It is the unit of the observe API.
type Event struct {
	Sender int64 `json:"sender"`
	Size   int64 `json:"size"`
}

// Forecast is the joint prediction for one future message of a session.
// Unlike predictor.MessageForecast it carries per-stream ok flags, so a
// client scoring only sender accuracy (the paper's Figures 3/4 protocol)
// sees exactly what the offline harness sees: the sender predictor's own
// abstentions, not the size predictor's.
type Forecast struct {
	Ahead    int   `json:"ahead"`
	Sender   int64 `json:"sender"`
	SenderOK bool  `json:"sender_ok"`
	Size     int64 `json:"size"`
	SizeOK   bool  `json:"size_ok"`
	// OK is SenderOK && SizeOK: the joint forecast a buffer
	// pre-allocator needs.
	OK bool `json:"ok"`
}

// SessionInfo is the introspection view of one session. SenderState,
// SenderPeriod and their size twins carry the DPD's learning/locked state
// and detected period; strategies without that notion report "n/a" and
// omit the period.
type SessionInfo struct {
	Tenant   string `json:"tenant"`
	Stream   string `json:"stream"`
	Strategy string `json:"strategy"`
	Observed int64  `json:"observed"`
	// LastSeq is the highest applied batch sequence number (0 when the
	// session has never been fed sequenced batches).
	LastSeq      int64  `json:"last_seq,omitempty"`
	SenderState  string `json:"sender_state"`
	SenderPeriod int    `json:"sender_period,omitempty"`
	SizeState    string `json:"size_state"`
	SizePeriod   int    `json:"size_period,omitempty"`
	// CreatedUnix and LastSeenUnix are Unix seconds of session creation
	// and the most recent observe/forecast. Snapshot files deliberately
	// hold no timestamps (the byte-stability contract), so after a warm
	// restart both report the restore time, not the original creation.
	CreatedUnix  int64   `json:"created_unix"`
	LastSeenUnix int64   `json:"last_observe_unix"`
	IdleSeconds  float64 `json:"idle_s"`
	// Meta carries the adaptive router's telemetry for sessions whose
	// strategy routes among experts (the meta strategy); nil otherwise.
	Meta *SessionMetaInfo `json:"meta,omitempty"`
}

// SessionMetaInfo is the per-session view of the meta router: which
// expert each stream currently routes to, how often the routes have
// switched, and every expert's rolling windowed hit rate per stream.
type SessionMetaInfo struct {
	SenderLeader string             `json:"sender_leader"`
	SizeLeader   string             `json:"size_leader"`
	Switches     int64              `json:"switches"`
	SenderRates  map[string]float64 `json:"sender_hit_rates"`
	SizeRates    map[string]float64 `json:"size_hit_rates"`
}

// MetaStats aggregates router telemetry across every meta session: how
// many sessions route adaptively, the total switch count, how many
// streams each expert currently leads, and each expert's hit rate over
// the union of all rolling windows (exact Σhits/Σscored, not a mean of
// per-session rates).
type MetaStats struct {
	Sessions int                `json:"sessions"`
	Switches int64              `json:"switches"`
	Leaders  map[string]int     `json:"leaders"`
	HitRates map[string]float64 `json:"hit_rates"`
}

// Stats aggregates registry activity since construction.
type Stats struct {
	Sessions      int   // live sessions right now
	Created       int64 // sessions ever created
	Restored      int64 // sessions restored from snapshots
	EvictedLRU    int64 // sessions evicted by per-shard capacity pressure
	EvictedIdle   int64 // sessions evicted by SweepIdle
	Events        int64 // observed events
	Forecasts     int64 // answered forecast queries
	MissedLookups int64 // forecast/info queries for unknown sessions
	DupBatches    int64 // sequenced batches dropped as duplicate deliveries
}

type sessionKey struct {
	tenant, stream string
}

// session is the per-(tenant, stream) state: one prediction strategy for
// the sender stream, one for the size stream, and bookkeeping for
// eviction. The strategy is fixed at session creation (first observe) and
// shared by both streams. Sessions are owned by exactly one shard and only
// touched under its lock, which serializes each session's observation
// order — the property the per-session determinism tests pin.
type session struct {
	key      sessionKey
	strategy string
	sender   strategy.Strategy
	size     strategy.Strategy
	observed int64
	// lastSeq is the highest batch sequence number applied to this
	// session (0 when the session has never seen a sequenced batch). A
	// batch carrying a seq at or below it is a duplicate delivery — a
	// client retry of a request whose response was lost — and is dropped
	// without observing, which turns at-least-once retries into
	// effectively-once learning. It persists in snapshots, so dedup
	// survives a crash-restart.
	lastSeq  int64
	created  time.Time
	lastSeen time.Time
	elem     *list.Element
}

type shard struct {
	mu       sync.Mutex
	sessions map[sessionKey]*session
	lru      list.List // front = most recently used; values are *session
}

// Registry is the sharded session table. All methods are safe for
// concurrent use.
type Registry struct {
	cfg      Config
	perShard int
	shards   []shard

	created     atomic.Int64
	restored    atomic.Int64
	evictedLRU  atomic.Int64
	evictedIdle atomic.Int64
	events      atomic.Int64
	forecasts   atomic.Int64
	missed      atomic.Int64
	dupBatches  atomic.Int64
}

// NewRegistry returns an empty registry. The shard array is fixed at
// construction; it never grows or rehashes. It panics when cfg.Strategy
// names an unregistered strategy (a programming error; the daemon
// validates its flag before constructing).
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	if !strategy.Known(cfg.Strategy) {
		panic(fmt.Sprintf("serve: unknown default strategy %q (known: %v)", cfg.Strategy, strategy.Names()))
	}
	perShard := cfg.MaxSessions / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	r := &Registry{cfg: cfg, perShard: perShard, shards: make([]shard, cfg.Shards)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[sessionKey]*session)
	}
	return r
}

// shardFor hashes the key with FNV-1a, inlined so the hot path never
// allocates a joined key string.
func (r *Registry) shardFor(tenant, stream string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("ab","c") must not collide with ("a","bc")
	for i := 0; i < len(stream); i++ {
		h = (h ^ uint64(stream[i])) * prime64
	}
	return &r.shards[h%uint64(len(r.shards))]
}

// ErrStrategyMismatch is returned when an observe names a strategy that
// differs from the one an existing session was created with. A session's
// strategy is fixed at first observe; requests that omit the strategy
// (strat == "") always match.
var ErrStrategyMismatch = fmt.Errorf("serve: session strategy mismatch")

// getLocked returns the session for key, creating it (and evicting the
// shard's LRU session if the shard is full) when absent. A new session is
// built with the strat strategy (empty selects the registry default); an
// existing session is only returned when strat is empty or matches.
// Caller holds sh.mu.
func (r *Registry) getLocked(sh *shard, tenant, stream, strat string) (*session, error) {
	key := sessionKey{tenant, stream}
	if s := sh.sessions[key]; s != nil {
		if strat != "" && strat != s.strategy {
			return nil, fmt.Errorf("%w: session %s/%s uses %q, request asked for %q",
				ErrStrategyMismatch, tenant, stream, s.strategy, strat)
		}
		sh.lru.MoveToFront(s.elem)
		return s, nil
	}
	if strat == "" {
		strat = r.cfg.Strategy
	}
	sender, err := strategy.New(strat, r.cfg.Predictor)
	if err != nil {
		return nil, err
	}
	size, err := strategy.New(strat, r.cfg.Predictor)
	if err != nil {
		return nil, err
	}
	r.evictForRoomLocked(sh)
	s := &session{
		key:      key,
		strategy: strat,
		sender:   sender,
		size:     size,
		created:  r.cfg.Clock(),
	}
	s.elem = sh.lru.PushFront(s)
	sh.sessions[key] = s
	r.created.Add(1)
	return s, nil
}

func (r *Registry) removeLocked(sh *shard, s *session) {
	sh.lru.Remove(s.elem)
	delete(sh.sessions, s.key)
}

// evictForRoomLocked evicts the shard's least recently used sessions
// until one more fits, counting each eviction. Caller holds sh.mu.
func (r *Registry) evictForRoomLocked(sh *shard) {
	for len(sh.sessions) >= r.perShard {
		oldest := sh.lru.Back()
		if oldest == nil {
			break
		}
		r.removeLocked(sh, oldest.Value.(*session))
		r.evictedLRU.Add(1)
	}
}

// keyLess is the canonical session ordering used by every listing and by
// the snapshot writer (where it is what makes files byte-stable).
func keyLess(t1, s1, t2, s2 string) bool {
	if t1 != t2 {
		return t1 < t2
	}
	return s1 < s2
}

// Observe feeds one event to the (tenant, stream) session, creating it
// with the registry's default strategy on first use. This is the service
// hot path: for an existing session it performs zero heap allocations.
func (r *Registry) Observe(tenant, stream string, ev Event) {
	// The default strategy is validated at construction and "" never
	// mismatches, so the error is impossible here.
	r.ObserveAs(tenant, stream, "", ev)
}

// ObserveAs is Observe with an explicit strategy: a new session is created
// with the strat strategy (empty selects the registry default), and an
// existing session rejects a non-empty strat that differs from its own
// (ErrStrategyMismatch) or an unknown name.
func (r *Registry) ObserveAs(tenant, stream, strat string, ev Event) error {
	sh := r.shardFor(tenant, stream)
	sh.mu.Lock()
	s, err := r.getLocked(sh, tenant, stream, strat)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	s.sender.Observe(ev.Sender)
	s.size.Observe(ev.Size)
	s.observed++
	s.lastSeen = r.cfg.Clock()
	sh.mu.Unlock()
	r.events.Add(1)
	return nil
}

// ObserveBatch feeds a batch of events under a single shard lock and
// returns the session's total observed count afterwards.
func (r *Registry) ObserveBatch(tenant, stream string, events []Event) int64 {
	total, _ := r.ObserveBatchAs(tenant, stream, "", events)
	return total
}

// ObserveBatchAs is ObserveBatch with an explicit strategy, following the
// same creation/mismatch rules as ObserveAs. No event is observed when the
// strategy is rejected. An empty batch creates no session but still
// applies the name and mismatch validation, so a caller probing with zero
// events learns the same verdict a real batch would get.
func (r *Registry) ObserveBatchAs(tenant, stream, strat string, events []Event) (int64, error) {
	total, _, err := r.ObserveBatchSeq(tenant, stream, strat, 0, events)
	return total, err
}

// ObserveBatchSeq is ObserveBatchAs with an at-least-once delivery guard:
// a positive seq marks the batch as one delivery of a per-(tenant,
// stream) monotonically increasing sequence, and a batch whose seq is at
// or below the session's last applied one is dropped as a duplicate
// (duplicate true, no events observed, current total returned). Seq zero
// disables the check — the batch always applies and the session's
// sequence state is untouched, so unsequenced and sequenced clients can
// share a registry (though not meaningfully a session).
func (r *Registry) ObserveBatchSeq(tenant, stream, strat string, seq int64, events []Event) (total int64, duplicate bool, err error) {
	if len(events) == 0 {
		total, err = r.probeSession(tenant, stream, strat)
		return total, false, err
	}
	sh := r.shardFor(tenant, stream)
	sh.mu.Lock()
	s, err := r.getLocked(sh, tenant, stream, strat)
	if err != nil {
		sh.mu.Unlock()
		return 0, false, err
	}
	if seq > 0 && seq <= s.lastSeq {
		total = s.observed
		sh.mu.Unlock()
		r.dupBatches.Add(1)
		return total, true, nil
	}
	for _, ev := range events {
		s.sender.Observe(ev.Sender)
		s.size.Observe(ev.Size)
	}
	s.observed += int64(len(events))
	if seq > 0 {
		s.lastSeq = seq
	}
	s.lastSeen = r.cfg.Clock()
	total = s.observed
	sh.mu.Unlock()
	r.events.Add(int64(len(events)))
	return total, false, nil
}

// ObserveBlock feeds a column pair — parallel sender and size arrays, the
// layout of one stream.EventBlock — to the (tenant, stream) session under
// a single shard lock. It is the block-pipeline fast path: serve.Replay
// and the columnar observe handler land here, and for an existing session
// it performs zero heap allocations regardless of the column length
// (pinned by alloc_test.go). The slices are only read.
func (r *Registry) ObserveBlock(tenant, stream string, senders, sizes []int64) (int64, error) {
	return r.ObserveBlockAs(tenant, stream, "", senders, sizes)
}

// ObserveBlockAs is ObserveBlock with an explicit strategy, following the
// same creation/mismatch rules as ObserveAs. The columns must be of equal
// length; no event is observed otherwise. An empty pair behaves like an
// empty ObserveBatchAs: no session is created, but the name and mismatch
// validation still applies.
func (r *Registry) ObserveBlockAs(tenant, stream, strat string, senders, sizes []int64) (int64, error) {
	total, _, err := r.ObserveBlockSeq(tenant, stream, strat, 0, senders, sizes)
	return total, err
}

// ObserveBlockSeq is ObserveBlockAs with the at-least-once delivery guard
// of ObserveBatchSeq: a positive seq at or below the session's last
// applied one drops the whole block as a duplicate delivery. It remains
// the zero-allocation block fast path — the sequence check is one compare
// under the shard lock (pinned by alloc_test.go).
func (r *Registry) ObserveBlockSeq(tenant, stream, strat string, seq int64, senders, sizes []int64) (total int64, duplicate bool, err error) {
	if len(senders) != len(sizes) {
		return 0, false, fmt.Errorf("serve: observe block columns disagree: %d senders, %d sizes", len(senders), len(sizes))
	}
	if len(senders) == 0 {
		total, err = r.probeSession(tenant, stream, strat)
		return total, false, err
	}
	sh := r.shardFor(tenant, stream)
	sh.mu.Lock()
	s, err := r.getLocked(sh, tenant, stream, strat)
	if err != nil {
		sh.mu.Unlock()
		return 0, false, err
	}
	if seq > 0 && seq <= s.lastSeq {
		total = s.observed
		sh.mu.Unlock()
		r.dupBatches.Add(1)
		return total, true, nil
	}
	for i := range senders {
		s.sender.Observe(senders[i])
		s.size.Observe(sizes[i])
	}
	s.observed += int64(len(senders))
	if seq > 0 {
		s.lastSeq = seq
	}
	s.lastSeen = r.cfg.Clock()
	total = s.observed
	sh.mu.Unlock()
	r.events.Add(int64(len(senders)))
	return total, false, nil
}

// probeSession applies the strategy name and mismatch validation of an
// empty batch without creating a session, returning the session's current
// observed count (zero when it does not exist). Shared by the empty cases
// of ObserveBatchAs and ObserveBlockAs, so a caller probing with zero
// events learns the same verdict a real batch would get.
func (r *Registry) probeSession(tenant, stream, strat string) (int64, error) {
	if strat != "" && !strategy.Known(strat) {
		return 0, fmt.Errorf("serve: unknown strategy %q (known: %v)", strat, strategy.Names())
	}
	sh := r.shardFor(tenant, stream)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.sessions[sessionKey{tenant, stream}]
	if s == nil {
		return 0, nil
	}
	if strat != "" && strat != s.strategy {
		return 0, fmt.Errorf("%w: session %s/%s uses %q, request asked for %q",
			ErrStrategyMismatch, tenant, stream, s.strategy, strat)
	}
	return s.observed, nil
}

// ForecastInto appends forecasts for the next k messages of the session to
// dst and returns it. ok is false when the session does not exist (the
// registry never creates sessions on the predict path — an unknown key is
// the caller's signal, not new state). A query counts as session activity
// for LRU and idle purposes. With a pre-sized dst this performs zero heap
// allocations.
func (r *Registry) ForecastInto(dst []Forecast, tenant, stream string, k int) (_ []Forecast, observed int64, ok bool) {
	sh := r.shardFor(tenant, stream)
	sh.mu.Lock()
	s := sh.sessions[sessionKey{tenant, stream}]
	if s == nil {
		sh.mu.Unlock()
		r.missed.Add(1)
		return dst, 0, false
	}
	sh.lru.MoveToFront(s.elem)
	s.lastSeen = r.cfg.Clock()
	for ahead := 1; ahead <= k; ahead++ {
		sv, sok := s.sender.Predict(ahead)
		zv, zok := s.size.Predict(ahead)
		dst = append(dst, Forecast{
			Ahead:  ahead,
			Sender: sv, SenderOK: sok,
			Size: zv, SizeOK: zok,
			OK: sok && zok,
		})
	}
	observed = s.observed
	sh.mu.Unlock()
	r.forecasts.Add(1)
	return dst, observed, true
}

// Info returns the introspection view of one session.
func (r *Registry) Info(tenant, stream string) (SessionInfo, bool) {
	sh := r.shardFor(tenant, stream)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.sessions[sessionKey{tenant, stream}]
	if s == nil {
		r.missed.Add(1)
		return SessionInfo{}, false
	}
	return r.infoLocked(s), true
}

func (r *Registry) infoLocked(s *session) SessionInfo {
	info := SessionInfo{
		Tenant:       s.key.tenant,
		Stream:       s.key.stream,
		Strategy:     s.strategy,
		Observed:     s.observed,
		LastSeq:      s.lastSeq,
		SenderState:  strategyState(s.sender),
		SizeState:    strategyState(s.size),
		CreatedUnix:  s.created.Unix(),
		LastSeenUnix: s.lastSeen.Unix(),
		IdleSeconds:  r.cfg.Clock().Sub(s.lastSeen).Seconds(),
	}
	if p, ok := strategyPeriod(s.sender); ok {
		info.SenderPeriod = p
	}
	if p, ok := strategyPeriod(s.size); ok {
		info.SizePeriod = p
	}
	if sr, ok := s.sender.(strategy.RouteReporter); ok {
		if zr, ok := s.size.(strategy.RouteReporter); ok {
			si, zi := sr.RouteInfo(), zr.RouteInfo()
			info.Meta = &SessionMetaInfo{
				SenderLeader: si.Leader,
				SizeLeader:   zi.Leader,
				Switches:     si.Switches + zi.Switches,
				SenderRates:  routeRates(si),
				SizeRates:    routeRates(zi),
			}
		}
	}
	return info
}

// routeRates flattens a RouteInfo into the expert→rate map the session
// listing serves.
func routeRates(info strategy.RouteInfo) map[string]float64 {
	rates := make(map[string]float64, len(info.Experts))
	for _, e := range info.Experts {
		rates[e.Name] = e.Rate
	}
	return rates
}

// strategyState reports a strategy's discrete state when it has one (the
// DPD's learning/locked); strategies without the notion report "n/a".
func strategyState(st strategy.Strategy) string {
	if r, ok := st.(strategy.StateReporter); ok {
		return r.PredictorState()
	}
	return "n/a"
}

// strategyPeriod reports a strategy's detected pattern length when it
// exposes one.
func strategyPeriod(st strategy.Strategy) (int, bool) {
	if r, ok := st.(strategy.PeriodReporter); ok {
		return r.PredictorPeriod()
	}
	return 0, false
}

// Sessions lists every live session, sorted by (tenant, stream) so the
// listing is deterministic regardless of shard and map iteration order.
func (r *Registry) Sessions() []SessionInfo {
	var out []SessionInfo
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, r.infoLocked(s))
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return keyLess(out[i].Tenant, out[i].Stream, out[j].Tenant, out[j].Stream)
	})
	return out
}

// SessionsPage returns one window of the canonical (tenant, stream)
// ordering — the page [offset, offset+limit) — together with the total
// live session count, so callers can page through a large registry in
// bounded responses. The full sweep-and-sort still happens per call (the
// listing is a cold path; sessions move shards never, but keys appear and
// vanish constantly, so a cached ordering would be stale the moment it
// was built); only the response is bounded. A non-positive limit or an
// offset past the end yields an empty page with the true total.
func (r *Registry) SessionsPage(offset, limit int) ([]SessionInfo, int) {
	all := r.Sessions()
	total := len(all)
	if offset < 0 {
		offset = 0
	}
	if limit <= 0 || offset >= total {
		return nil, total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	return all[offset:end], total
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// SweepIdle evicts every session idle for at least the configured IdleTTL
// and returns how many it removed. The daemon calls it on a ticker; it is
// a no-op when idle eviction is disabled.
func (r *Registry) SweepIdle() int {
	if r.cfg.IdleTTL < 0 {
		return 0
	}
	cutoff := r.cfg.Clock().Add(-r.cfg.IdleTTL)
	evicted := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		// The LRU back is the least recently touched session, so the scan
		// stops at the first fresh one.
		for {
			oldest := sh.lru.Back()
			if oldest == nil {
				break
			}
			s := oldest.Value.(*session)
			if s.lastSeen.After(cutoff) {
				break
			}
			r.removeLocked(sh, s)
			evicted++
		}
		sh.mu.Unlock()
	}
	r.evictedIdle.Add(int64(evicted))
	return evicted
}

// MetaStats aggregates adaptive-router telemetry across every session
// whose strategy is a meta router. Rates are computed from summed
// windowed hits and scored counts, so a stream observed a million times
// weighs no more than its window — exactly the per-session semantics,
// aggregated.
func (r *Registry) MetaStats() MetaStats {
	stats := MetaStats{Leaders: map[string]int{}, HitRates: map[string]float64{}}
	hits := map[string]int{}
	scored := map[string]int{}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			counted := false
			for _, st := range []strategy.Strategy{s.sender, s.size} {
				rr, ok := st.(strategy.RouteReporter)
				if !ok {
					continue
				}
				counted = true
				info := rr.RouteInfo()
				stats.Switches += info.Switches
				stats.Leaders[info.Leader]++
				for _, e := range info.Experts {
					hits[e.Name] += e.Hits
					scored[e.Name] += e.Scored
				}
			}
			if counted {
				stats.Sessions++
			}
		}
		sh.mu.Unlock()
	}
	for name, sc := range scored {
		if sc > 0 {
			stats.HitRates[name] = float64(hits[name]) / float64(sc)
		}
	}
	return stats
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Sessions:      r.Len(),
		Created:       r.created.Load(),
		Restored:      r.restored.Load(),
		EvictedLRU:    r.evictedLRU.Load(),
		EvictedIdle:   r.evictedIdle.Load(),
		Events:        r.events.Load(),
		Forecasts:     r.forecasts.Load(),
		MissedLookups: r.missed.Load(),
		DupBatches:    r.dupBatches.Load(),
	}
}

// SnapshotSessions captures every session's predictor state, sorted by
// (tenant, stream). The deterministic order is what makes snapshot files
// byte-for-byte reproducible: snapshotting, restoring and snapshotting
// again yields the identical byte stream.
func (r *Registry) SnapshotSessions() []SessionSnapshot {
	var out []SessionSnapshot
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, SessionSnapshot{
				Tenant:   s.key.tenant,
				Stream:   s.key.stream,
				Strategy: s.strategy,
				Observed: s.observed,
				LastSeq:  s.lastSeq,
				Sender:   s.sender.Snapshot(),
				Size:     s.size.Snapshot(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return keyLess(out[i].Tenant, out[i].Stream, out[j].Tenant, out[j].Stream)
	})
	return out
}

// RestoreSessions rebuilds sessions from snapshots, replacing any existing
// session with the same key. Every snapshot is validated before any state
// is touched, so a corrupt snapshot set restores nothing rather than half
// of itself.
func (r *Registry) RestoreSessions(snaps []SessionSnapshot) error {
	restored := make([]*session, 0, len(snaps))
	for _, snap := range snaps {
		// Normalize a hand-constructed snapshot's empty strategy to the
		// name it restores as: storing "" would make the session
		// unmatchable by ObserveAs and the next checkpoint unwritable.
		strat := snap.Strategy
		if strat == "" {
			strat = strategy.Default
		}
		sender, err := strategy.Restore(strat, snap.Sender)
		if err != nil {
			return err
		}
		size, err := strategy.Restore(strat, snap.Size)
		if err != nil {
			return err
		}
		restored = append(restored, &session{
			key:      sessionKey{snap.Tenant, snap.Stream},
			strategy: strat,
			sender:   sender,
			size:     size,
			observed: snap.Observed,
			lastSeq:  snap.LastSeq,
		})
	}
	now := r.cfg.Clock()
	for _, s := range restored {
		s.created = now
		s.lastSeen = now
		sh := r.shardFor(s.key.tenant, s.key.stream)
		sh.mu.Lock()
		if old := sh.sessions[s.key]; old != nil {
			r.removeLocked(sh, old)
		}
		r.evictForRoomLocked(sh)
		s.elem = sh.lru.PushFront(s)
		sh.sessions[s.key] = s
		sh.mu.Unlock()
		r.restored.Add(1)
	}
	return nil
}
