package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mpipredict/internal/core"
	"mpipredict/internal/strategy"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

// decodeVars parses a /debug/vars body into its numeric metrics. The map
// is scalar except for the composite "meta" router telemetry, which
// callers decode separately when they care.
func decodeVars(t *testing.T, body string) map[string]float64 {
	t.Helper()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatalf("metrics are not a JSON object: %v\n%s", err, body)
	}
	vars := make(map[string]float64, len(raw))
	for name, msg := range raw {
		var v float64
		if err := json.Unmarshal(msg, &v); err == nil {
			vars[name] = v
		}
	}
	return vars
}

func TestServerObservePredictEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	// Feed a periodic stream in batches, exactly as the replay ingester
	// would.
	n := 4 * core.DefaultConfig().WindowSize
	batch := 128
	for i := 0; i < n; i += batch {
		var events []string
		for j := i; j < i+batch && j < n; j++ {
			events = append(events, fmt.Sprintf(`{"sender":%d,"size":%d}`, j%6, 100*(j%6)))
		}
		body := fmt.Sprintf(`{"tenant":"bt.4","stream":"r1/physical","events":[%s]}`, strings.Join(events, ","))
		resp, out := postJSON(t, ts.URL+"/v1/observe", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe returned %s: %s", resp.Status, out)
		}
	}

	resp, out := get(t, ts.URL+"/v1/predict?tenant=bt.4&stream=r1/physical&k=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s: %s", resp.Status, out)
	}
	var pr predictResponse
	if err := json.Unmarshal([]byte(out), &pr); err != nil {
		t.Fatalf("decoding predict response: %v\n%s", err, out)
	}
	if pr.Observed != int64(n) || len(pr.Forecasts) != 5 {
		t.Fatalf("predict response: observed=%d forecasts=%d, want %d and 5", pr.Observed, len(pr.Forecasts), n)
	}
	next := int64(n % 6)
	for i, f := range pr.Forecasts {
		want := (next + int64(i)) % 6
		if !f.OK || f.Sender != want || f.Size != 100*want {
			t.Fatalf("forecast %d = %+v, want sender %d size %d", i, f, want, 100*want)
		}
	}
}

func TestServerPredictDefaultsToPaperHorizon(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/observe", `{"tenant":"t","stream":"s","events":[{"sender":1,"size":2}]}`)
	_, out := get(t, ts.URL+"/v1/predict?tenant=t&stream=s")
	var pr predictResponse
	if err := json.Unmarshal([]byte(out), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Forecasts) != DefaultHorizon {
		t.Fatalf("default horizon produced %d forecasts, want %d", len(pr.Forecasts), DefaultHorizon)
	}
}

func TestServerErrorCases(t *testing.T) {
	_, ts := newTestServer(t)
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"observe wrong method", http.MethodGet, "/v1/observe", "", http.StatusMethodNotAllowed},
		{"observe bad json", http.MethodPost, "/v1/observe", "{", http.StatusBadRequest},
		{"observe missing key", http.MethodPost, "/v1/observe", `{"events":[{"sender":1,"size":2}]}`, http.StatusBadRequest},
		{"observe empty events", http.MethodPost, "/v1/observe", `{"tenant":"t","stream":"s","events":[]}`, http.StatusBadRequest},
		{"predict wrong method", http.MethodPost, "/v1/predict", "{}", http.StatusMethodNotAllowed},
		{"predict missing key", http.MethodGet, "/v1/predict?k=3", "", http.StatusBadRequest},
		{"predict bad k", http.MethodGet, "/v1/predict?tenant=t&stream=s&k=zero", "", http.StatusBadRequest},
		{"predict k too large", http.MethodGet, fmt.Sprintf("/v1/predict?tenant=t&stream=s&k=%d", MaxHorizon+1), "", http.StatusBadRequest},
		{"predict unknown session", http.MethodGet, "/v1/predict?tenant=no&stream=nope", "", http.StatusNotFound},
		{"sessions wrong method", http.MethodPost, "/v1/sessions", "{}", http.StatusMethodNotAllowed},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Fatalf("status = %s, want %d", resp.Status, tt.status)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error responses must carry a JSON error body (err=%v)", err)
			}
		})
	}
}

func TestServerSessionsListing(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/observe", `{"tenant":"b","stream":"s","events":[{"sender":1,"size":2}]}`)
	postJSON(t, ts.URL+"/v1/observe", `{"tenant":"a","stream":"s","events":[{"sender":1,"size":2},{"sender":2,"size":4}]}`)

	_, out := get(t, ts.URL+"/v1/sessions")
	var listing struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(out), &listing); err != nil {
		t.Fatalf("decoding sessions listing: %v\n%s", err, out)
	}
	if len(listing.Sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(listing.Sessions))
	}
	if listing.Sessions[0].Tenant != "a" || listing.Sessions[0].Observed != 2 {
		t.Fatalf("first session = %+v, want tenant a with 2 events", listing.Sessions[0])
	}
}

func TestServerSessionsEmptyListIsJSON(t *testing.T) {
	_, ts := newTestServer(t)
	_, out := get(t, ts.URL+"/v1/sessions")
	want := fmt.Sprintf(`{"sessions":[],"total":0,"offset":0,"limit":%d}`, DefaultSessionsLimit)
	if strings.TrimSpace(out) != want {
		t.Fatalf("empty listing = %q, want %q", out, want)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %s", resp.Status)
	}
	var h struct {
		Status   string  `json:"status"`
		Sessions int     `json:"sessions"`
		Uptime   float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal([]byte(out), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status = %q", h.Status)
	}
}

func TestServerExpvarMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/observe", `{"tenant":"t","stream":"s","events":[{"sender":1,"size":2}]}`)
	get(t, ts.URL+"/v1/predict?tenant=t&stream=s")

	_, out := get(t, ts.URL+"/debug/vars")
	vars := decodeVars(t, out)
	if vars["sessions"] != 1 || vars["observed_events"] != 1 || vars["forecast_queries"] != 1 {
		t.Fatalf("unexpected metrics: %v", vars)
	}
	if vars["uptime_seconds"] < 0 {
		t.Fatal("uptime went backwards")
	}
}

// TestServerMultipleInstancesDoNotCollide guards the decision to keep the
// metrics map server-owned instead of in the process-global expvar
// namespace, where a second instance would panic on duplicate names.
func TestServerMultipleInstancesDoNotCollide(t *testing.T) {
	a := NewServer(NewRegistry(Config{}))
	b := NewServer(NewRegistry(Config{}))
	a.Registry().Observe("t", "s", Event{Sender: 1, Size: 1})

	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	vars := decodeVars(t, rec.Body.String())
	if vars["observed_events"] != 0 {
		t.Fatal("server B reported server A's traffic")
	}
}

func TestServerObserveBodyLimit(t *testing.T) {
	_, ts := newTestServer(t)
	huge := strings.Repeat(`{"sender":1,"size":2},`, 1<<16)
	body := fmt.Sprintf(`{"tenant":"t","stream":"s","events":[%s{"sender":1,"size":2}]}`, huge)
	if len(body) <= maxObserveBody {
		t.Fatalf("test body of %d bytes does not exceed the %d limit", len(body), maxObserveBody)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/observe", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %s, want 413", resp.Status)
	}
}

// TestServerObserveOmittedFieldsDoNotLeakAcrossRequests pins the pooled
// decoder's isolation: an event that omits "sender" or "size" must decode
// as zero, not inherit whatever a previous (possibly different-tenant)
// request left in the pooled event slice.
func TestServerObserveOmittedFieldsDoNotLeakAcrossRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	// Request 1 plants a distinctive size at index 0 of the pooled slice.
	postJSON(t, ts.URL+"/v1/observe", `{"tenant":"a","stream":"s","events":[{"sender":1,"size":999}]}`)
	// Request 2 (same pooled scratch, single connection) omits "size".
	postJSON(t, ts.URL+"/v1/observe", `{"tenant":"b","stream":"s","events":[{"sender":2}]}`)

	snap, ok := snapshotFor(srv.Registry(), "b", "s")
	if !ok {
		t.Fatal("tenant b session missing")
	}
	state, err := strategy.DecodeDPDState(snap.Size)
	if err != nil {
		t.Fatal(err)
	}
	if got := state.Window; len(got) != 1 || got[0] != 0 {
		t.Fatalf("tenant b observed size window %v, want [0] — pooled request state leaked", got)
	}
}

// TestServerErrorBodyIsValidJSONForBinaryNames pins writeError's encoding:
// client-supplied names with invalid UTF-8 must still yield parseable
// JSON error bodies.
func TestServerErrorBodyIsValidJSONForBinaryNames(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := get(t, ts.URL+"/v1/predict?tenant=%FF%00&stream=s")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(out), &e); err != nil {
		t.Fatalf("error body is not valid JSON: %v\n%q", err, out)
	}
	if e.Error == "" {
		t.Fatal("empty error message")
	}
}

// TestServerRejectsOversizedKeys pins the key-length guard: a session the
// API admitted must always be checkpointable, so names beyond MaxKeyLen
// (far below the snapshot format's string limit) are rejected up front.
func TestServerRejectsOversizedKeys(t *testing.T) {
	srv, ts := newTestServer(t)
	long := strings.Repeat("x", MaxKeyLen+1)
	resp, _ := postJSON(t, ts.URL+"/v1/observe",
		fmt.Sprintf(`{"tenant":"%s","stream":"s","events":[{"sender":1,"size":2}]}`, long))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized tenant returned %s, want 400", resp.Status)
	}
	if srv.Registry().Len() != 0 {
		t.Fatal("rejected request still created a session")
	}
	// And the boundary itself is accepted.
	ok, _ := postJSON(t, ts.URL+"/v1/observe",
		fmt.Sprintf(`{"tenant":"%s","stream":"s","events":[{"sender":1,"size":2}]}`, strings.Repeat("x", MaxKeyLen)))
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("MaxKeyLen-sized tenant returned %s, want 200", ok.Status)
	}
}

// TestServerObservePredictorField pins the HTTP face of per-session
// strategies: the predictor request field selects the strategy at session
// creation, the session listing reports it (with timestamps), an unknown
// name is a 400 and a conflicting name on an existing session is a 409.
func TestServerObservePredictorField(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/observe",
		`{"tenant":"t","stream":"s","predictor":"lastvalue","events":[{"sender":3,"size":30}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe with predictor returned %s", resp.Status)
	}
	// Omitting the predictor keeps addressing the session.
	resp, _ = postJSON(t, ts.URL+"/v1/observe",
		`{"tenant":"t","stream":"s","events":[{"sender":4,"size":40}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up observe returned %s", resp.Status)
	}

	resp, body := get(t, ts.URL+"/v1/sessions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sessions returned %s", resp.Status)
	}
	var listing struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("sessions body %q: %v", body, err)
	}
	if len(listing.Sessions) != 1 {
		t.Fatalf("got %d sessions, want 1", len(listing.Sessions))
	}
	info := listing.Sessions[0]
	if info.Strategy != "lastvalue" {
		t.Fatalf("session strategy %q, want lastvalue", info.Strategy)
	}
	if info.CreatedUnix == 0 || info.LastSeenUnix == 0 {
		t.Fatalf("session listing misses timestamps: %+v", info)
	}

	// A lastvalue session forecasts the most recent event at every horizon.
	resp, body = get(t, ts.URL+"/v1/predict?tenant=t&stream=s&k=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s", resp.Status)
	}
	var pr predictResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	for _, f := range pr.Forecasts {
		if !f.OK || f.Sender != 4 || f.Size != 40 {
			t.Fatalf("forecast %+v, want sender 4 size 40", f)
		}
	}

	resp, _ = postJSON(t, ts.URL+"/v1/observe",
		`{"tenant":"t","stream":"s","predictor":"nope","events":[{"sender":1,"size":1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown predictor returned %s, want 400", resp.Status)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/observe",
		`{"tenant":"t","stream":"s","predictor":"dpd","events":[{"sender":1,"size":1}]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting predictor returned %s, want 409", resp.Status)
	}
}

// TestServerPublishVar pins the extension point the daemon uses to surface
// process-level metrics (the shared trace cache) on /debug/vars.
func TestServerPublishVar(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.PublishVar("tracecache", func() interface{} {
		return map[string]int{"hits": 7}
	})
	resp, body := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vars returned %s", resp.Status)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("vars body %q: %v", body, err)
	}
	if string(vars["tracecache"]) != `{"hits":7}` {
		t.Fatalf("tracecache var = %s", vars["tracecache"])
	}
}
