package serve

// The binary wire face of the registry: the internal/wire protocol
// served over raw TCP, sharing everything operational with the HTTP
// surface — the same Registry (so HTTP and wire clients see one session
// space and one seq-dedup high-water mark per stream), the same
// readiness flags, the same in-flight admission semaphore and the same
// panic accounting.
//
// The shape differs from HTTP where the protocols differ:
//
//   - Admission is blocking, not shedding. HTTP rejects the 257th
//     request with 429 because the client already paid for a whole
//     request; a wire connection just stops reading instead, and TCP
//     backpressure pushes the wait back into the client's send window.
//     One semaphore slot covers a whole buffered burst of frames, so
//     the gate costs one channel op per burst, not per frame.
//   - Acks are cumulative. The server processes every frame already
//     buffered on the connection, then acknowledges once at the
//     watermark (observe-frame ordinal + cumulative duplicate count).
//   - Request errors close the connection. HTTP's 400/409 are
//     per-request; on a pipelined binary stream a client that sends an
//     invalid frame is broken, so the server answers with a FrameError
//     naming the offending ordinal and hangs up. Clients treat
//     CodeUnavailable as retryable (reconnect with backoff) and
//     everything else as fatal, mirroring the HTTP retry policy.

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"mpipredict/internal/strategy"
	"mpipredict/internal/wire"
)

// maxInternedKeys bounds the per-connection string-intern table. A
// connection replaying a bounded session set stays far below it; a
// hostile client cycling through unbounded key names gets its table
// reset, costing it re-interning, not the server memory.
const maxInternedKeys = 4096

// WireServer serves the binary wire protocol for a Server's registry.
type WireServer struct {
	srv *Server

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	closed atomic.Bool

	connections  atomic.Int64 // currently open
	connsTotal   atomic.Int64 // ever accepted
	frames       atomic.Int64 // frames read (all types)
	observes     atomic.Int64 // observe frames applied (incl. duplicates)
	predicts     atomic.Int64 // predict frames answered
	decodeErrors atomic.Int64 // corrupt frames / failed handshakes
	resentBatch  atomic.Int64 // duplicate observe frames absorbed by seq dedup
	rejUnready   atomic.Int64 // connections refused while not ready/draining
}

// NewWireServer returns a wire server sharing the HTTP server's
// registry, gates and metrics, and publishes the "wire" composite on
// the server's /debug/vars.
func NewWireServer(s *Server) *WireServer {
	ws := &WireServer{srv: s, conns: make(map[net.Conn]struct{})}
	s.PublishVar("wire", func() interface{} {
		return map[string]interface{}{
			"connections":       ws.connections.Load(),
			"connections_total": ws.connsTotal.Load(),
			"frames":            ws.frames.Load(),
			"observe_frames":    ws.observes.Load(),
			"predict_frames":    ws.predicts.Load(),
			"decode_errors":     ws.decodeErrors.Load(),
			"resent_batches":    ws.resentBatch.Load(),
			"rejected_unready":  ws.rejUnready.Load(),
		}
	})
	return ws
}

// Serve accepts wire connections on ln until Shutdown (or a fatal
// listener error). Like http.Server.Serve it blocks; run it in its own
// goroutine. After Shutdown it returns nil.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	ws.ln = ln
	ws.mu.Unlock()
	// Advertise on /healthz so clients probing the HTTP surface discover
	// the wire listener and auto-negotiate.
	ws.srv.SetWireAddr(ln.Addr().String())
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ws.closed.Load() {
				return nil
			}
			return fmt.Errorf("wire accept: %w", err)
		}
		ws.connsTotal.Add(1)
		ws.connections.Add(1)
		ws.mu.Lock()
		ws.conns[conn] = struct{}{}
		ws.mu.Unlock()
		ws.wg.Add(1)
		go func() {
			defer ws.wg.Done()
			defer ws.connections.Add(-1)
			defer func() {
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
			ws.handleConn(conn)
		}()
	}
}

// Shutdown closes the listener and waits for every open connection to
// finish its current burst and notice the drain. An idle client holding
// its connection open blocks Shutdown indefinitely — a daemon draining
// on a deadline pairs it with a watchdog that calls Close.
func (ws *WireServer) Shutdown() {
	ws.closed.Store(true)
	ws.mu.Lock()
	if ws.ln != nil {
		ws.ln.Close()
	}
	ws.mu.Unlock()
	ws.wg.Wait()
}

// Close is the impatient Shutdown: it also force-closes every open
// connection, cutting off clients mid-read the way http.Server.Close
// does. Safe to call concurrently with Shutdown to bound its wait.
func (ws *WireServer) Close() {
	ws.closed.Store(true)
	ws.mu.Lock()
	if ws.ln != nil {
		ws.ln.Close()
	}
	for conn := range ws.conns {
		conn.Close()
	}
	ws.mu.Unlock()
	ws.wg.Wait()
}

// acquire takes one admission slot (blocking — TCP backpressure is the
// wire's load shedding) and returns its release.
func (ws *WireServer) acquire() func() {
	if ws.srv.inflight == nil {
		return func() {}
	}
	ws.srv.inflight <- struct{}{}
	return func() { <-ws.srv.inflight }
}

// unavailable reports why the server should not take wire traffic right
// now, or "" when it should.
func (ws *WireServer) unavailable() string {
	switch {
	case ws.closed.Load() || ws.srv.draining.Load():
		return "draining"
	case ws.srv.notReady.Load():
		return "starting"
	default:
		return ""
	}
}

// wireConn is the per-connection state: decode views whose scratch is
// reused across frames, the string-intern table that keeps steady-state
// observe processing allocation-free, and the ack watermark.
type wireConn struct {
	ws *WireServer
	fr *wire.FrameReader
	fw *wire.FrameWriter

	ov        wire.ObserveView
	pv        wire.PredictView
	intern    map[string]string
	forecasts []Forecast
	wfcs      []wire.Forecast
	enc       []byte

	ordinal uint64 // observe frames processed on this connection
	dups    uint64 // cumulative duplicate deliveries absorbed
	acked   uint64 // last watermark written
}

// key interns a decoded byte view as a string without allocating on the
// steady-state path (the map lookup on string(b) does not copy).
func (wc *wireConn) key(b []byte) string {
	if s, ok := wc.intern[string(b)]; ok {
		return s
	}
	if len(wc.intern) >= maxInternedKeys {
		wc.intern = make(map[string]string, 64)
	}
	s := string(b)
	wc.intern[s] = s
	return s
}

func (ws *WireServer) handleConn(conn net.Conn) {
	defer conn.Close()
	// The wire twin of the HTTP envelope's recovery: a panic while
	// serving one connection kills that connection, not the daemon, and
	// lands in the same recovered_panics counter.
	defer func() {
		if v := recover(); v != nil {
			ws.srv.recoveredPanics.Add(1)
		}
	}()
	fr := wire.NewFrameReader(conn)
	if err := fr.Handshake(); err != nil {
		ws.decodeErrors.Add(1)
		return
	}
	if err := wire.WriteHandshake(conn); err != nil {
		return
	}
	fw := wire.NewFrameWriter(conn)
	if reason := ws.unavailable(); reason != "" {
		ws.rejUnready.Add(1)
		fw.WriteFrame(wire.AppendError(nil, wire.CodeUnavailable, 0, reason))
		fw.Flush()
		return
	}
	wc := &wireConn{
		ws:        ws,
		fr:        fr,
		fw:        fw,
		intern:    make(map[string]string, 64),
		forecasts: make([]Forecast, 0, MaxHorizon),
	}
	for {
		p, err := fr.ReadFrame()
		if err != nil {
			if err != io.EOF {
				ws.decodeErrors.Add(1)
			}
			return
		}
		// One admission slot and one ack per buffered burst.
		release := ws.acquire()
		ok := wc.handleFrame(p)
		for ok && fr.Buffered() > 0 {
			if p, err = fr.ReadFrame(); err != nil {
				ws.decodeErrors.Add(1)
				release()
				return
			}
			ok = wc.handleFrame(p)
		}
		release()
		if wc.ordinal > wc.acked {
			wc.enc = wire.AppendAck(wc.enc[:0], wc.ordinal, wc.dups)
			if fw.WriteFrame(wc.enc) != nil {
				return
			}
			wc.acked = wc.ordinal
		}
		if fw.Flush() != nil || !ok {
			return
		}
		if reason := ws.unavailable(); reason != "" {
			// Drain started under a live connection: tell the client to
			// go elsewhere, after acking what was already applied.
			fw.WriteFrame(wire.AppendError(nil, wire.CodeUnavailable, 0, reason))
			fw.Flush()
			return
		}
	}
}

// handleFrame dispatches one frame; false means the connection must
// close (a FrameError has been queued where one applies).
func (wc *wireConn) handleFrame(p []byte) bool {
	wc.ws.frames.Add(1)
	switch p[0] {
	case wire.FrameObserve:
		return wc.handleObserve(p)
	case wire.FramePredict:
		return wc.handlePredict(p)
	default:
		wc.fail(wire.CodeBadRequest, 0, fmt.Sprintf("unexpected frame type %#02x", p[0]))
		return false
	}
}

// fail queues a FrameError; the connection closes after the flush.
func (wc *wireConn) fail(code, ref uint64, msg string) {
	wc.enc = wire.AppendError(wc.enc[:0], code, ref, msg)
	wc.fw.WriteFrame(wc.enc)
}

func (wc *wireConn) handleObserve(p []byte) bool {
	ws := wc.ws
	ref := wc.ordinal + 1 // the ordinal this frame would get
	if err := wc.ov.Decode(p); err != nil {
		ws.decodeErrors.Add(1)
		wc.fail(wire.CodeBadRequest, ref, fmt.Sprintf("decoding observe frame: %v", err))
		return false
	}
	ov := &wc.ov
	if !validKeyBytes(ov.Tenant) || !validKeyBytes(ov.Stream) {
		wc.fail(wire.CodeBadRequest, ref, fmt.Sprintf("tenant and stream are required and at most %d bytes", MaxKeyLen))
		return false
	}
	if len(ov.Senders) == 0 {
		wc.fail(wire.CodeBadRequest, ref, "events must not be empty")
		return false
	}
	if ov.Seq < 0 {
		wc.fail(wire.CodeBadRequest, ref, "seq must be non-negative")
		return false
	}
	strat := ""
	if len(ov.Strategy) > 0 {
		strat = wc.key(ov.Strategy)
		if !strategy.Known(strat) {
			wc.fail(wire.CodeBadRequest, ref, fmt.Sprintf("unknown predictor %q (known: %v)", strat, strategy.Names()))
			return false
		}
	}
	_, duplicate, err := ws.srv.reg.ObserveBlockSeq(wc.key(ov.Tenant), wc.key(ov.Stream), strat, ov.Seq, ov.Senders, ov.Sizes)
	if err != nil {
		// Keys and columns were validated above; what remains is a
		// strategy conflict with an existing session.
		wc.fail(wire.CodeConflict, ref, err.Error())
		return false
	}
	wc.ordinal++
	ws.observes.Add(1)
	if duplicate {
		wc.dups++
		ws.resentBatch.Add(1)
	}
	return true
}

func (wc *wireConn) handlePredict(p []byte) bool {
	ws := wc.ws
	if err := wc.pv.Decode(p); err != nil {
		ws.decodeErrors.Add(1)
		wc.fail(wire.CodeBadRequest, 0, fmt.Sprintf("decoding predict frame: %v", err))
		return false
	}
	pv := &wc.pv
	if len(pv.Tenant) == 0 || len(pv.Stream) == 0 {
		wc.fail(wire.CodeBadRequest, pv.ID, "tenant and stream are required")
		return false
	}
	k := pv.K
	if k == 0 {
		k = DefaultHorizon
	}
	if k < 1 || k > MaxHorizon {
		wc.fail(wire.CodeBadRequest, pv.ID, fmt.Sprintf("k must be in 1..%d", MaxHorizon))
		return false
	}
	forecasts, observed, found := ws.srv.reg.ForecastInto(wc.forecasts[:0], wc.key(pv.Tenant), wc.key(pv.Stream), k)
	wc.forecasts = forecasts[:0]
	if cap(wc.wfcs) < len(forecasts) {
		wc.wfcs = make([]wire.Forecast, len(forecasts))
	}
	wc.wfcs = wc.wfcs[:len(forecasts)]
	for i, f := range forecasts {
		wc.wfcs[i] = wire.Forecast{Sender: f.Sender, SenderOK: f.SenderOK, Size: f.Size, SizeOK: f.SizeOK}
	}
	if !found {
		// The wire twin of HTTP 404: found=false, not an error frame —
		// asking about an absent session is a valid question.
		wc.wfcs = wc.wfcs[:0]
	}
	ws.predicts.Add(1)
	wc.enc = wire.AppendPredictResp(wc.enc[:0], pv.ID, found, observed, wc.wfcs)
	return wc.fw.WriteFrame(wc.enc) == nil
}

// validKeyBytes is validKey for a decoded byte view, allocation-free.
func validKeyBytes(b []byte) bool { return len(b) > 0 && len(b) <= MaxKeyLen }
