package serve

// The load generator: synthetic sustained observe traffic against a
// running daemon, reporting achieved events/sec. It exists to answer
// one question honestly — how many events per second does this serving
// stack ingest end to end, protocol included? — so it generates the
// cheapest realistic workload (periodic sender/size patterns, the shape
// every NPB-style trace in the corpus has) and spends its cycles on
// delivery, not generation.
//
// Each connection owns a disjoint set of sessions and drives them
// round-robin with sequenced blocks, so runs are deterministic per
// (sessions, conns, events) and the server's seq dedup sees exactly the
// replay ingester's contract. The default predictor is markov1: cheap
// enough per observe that the measurement is of the protocol stack, not
// the model. Point it at dpd to measure model-bound ingest instead.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mpipredict/internal/stream"
	"mpipredict/internal/wire"
)

// LoadGenOptions configure a load-generation run.
type LoadGenOptions struct {
	// Events is the total number of events to deliver. Required.
	Events int64
	// Tenant namespaces the generated sessions (default "loadgen").
	Tenant string
	// Sessions is the number of distinct streams driven (default 64).
	Sessions int
	// Conns is the number of parallel connections, each owning
	// Sessions/Conns sessions (default 1).
	Conns int
	// BlockLen is the events per observe frame/request (default
	// stream.BlockLen, the pipeline's native block size).
	BlockLen int
	// Predictor is the strategy for created sessions (default
	// "markov1" — cheap enough that the protocol dominates).
	Predictor string
	// Period is the synthetic pattern's cycle length (default 18, the
	// corpus traces' typical period).
	Period int
	// Transport, WireWindow and Client mirror ReplayOptions; Transport
	// defaults to "auto".
	Transport  string
	WireWindow int
	Client     *http.Client
}

// LoadGenStats summarize one load-generation run.
type LoadGenStats struct {
	Transport  string
	Tenant     string
	Sessions   int
	Conns      int
	Events     int64 // events delivered
	Batches    int64 // observe frames/requests issued
	Duplicates int64 // duplicate acks (0 on a clean run)
	Duration   time.Duration
}

// EventsPerSec returns the achieved ingest throughput.
func (s LoadGenStats) EventsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Events) / s.Duration.Seconds()
}

// String renders the stats the way the daemon reports them.
func (s LoadGenStats) String() string {
	return fmt.Sprintf("loadgen transport=%s tenant=%s sessions=%d conns=%d events=%d batches=%d duplicates=%d duration=%s throughput=%.0f events/s",
		s.Transport, s.Tenant, s.Sessions, s.Conns, s.Events, s.Batches, s.Duplicates, s.Duration.Round(time.Millisecond), s.EventsPerSec())
}

func (o LoadGenOptions) withDefaults() LoadGenOptions {
	if o.Tenant == "" {
		o.Tenant = "loadgen"
	}
	if o.Sessions <= 0 {
		o.Sessions = 64
	}
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Conns > o.Sessions {
		o.Conns = o.Sessions
	}
	if o.BlockLen <= 0 {
		o.BlockLen = stream.BlockLen
	}
	if o.BlockLen > wire.MaxColumnLen {
		o.BlockLen = wire.MaxColumnLen
	}
	if o.Predictor == "" {
		o.Predictor = "markov1"
	}
	if o.Period <= 0 {
		o.Period = 18
	}
	if o.Transport == "" {
		o.Transport = TransportAuto
	}
	return o
}

// LoadGen drives opts.Events synthetic events at the daemon at target
// (an http(s):// base URL or a wire://host:port address) and reports
// the achieved throughput. It fails fast: unlike a replay, a load test
// that needs retries is a failed load test, and the first delivery
// error aborts the run.
func LoadGen(ctx context.Context, target string, opts LoadGenOptions) (LoadGenStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if opts.Events <= 0 {
		return LoadGenStats{}, fmt.Errorf("serve: loadgen needs a positive event count")
	}
	stats := LoadGenStats{Tenant: opts.Tenant, Sessions: opts.Sessions, Conns: opts.Conns}

	// Resolve the transport once, up front, with replay's negotiation.
	wireAddr := ""
	if after, ok := strings.CutPrefix(target, "wire://"); ok {
		wireAddr = after
	} else if opts.Transport != TransportHTTP {
		addr, err := probeWireAddr(ctx, opts.Client, target)
		if err != nil {
			if opts.Transport == TransportWire {
				return stats, fmt.Errorf("serve: loadgen: target advertises no wire listener: %w", err)
			}
		} else {
			wireAddr = addr
		}
	}
	stats.Transport = TransportHTTP
	if wireAddr != "" {
		stats.Transport = TransportWire
	}

	// Partition sessions across connections; split the event budget in
	// proportion.
	type result struct {
		events, batches, dups int64
		err                   error
	}
	results := make([]result, opts.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for conn := 0; conn < opts.Conns; conn++ {
		sessions := opts.Sessions / opts.Conns
		if conn < opts.Sessions%opts.Conns {
			sessions++
		}
		budget := opts.Events / int64(opts.Conns)
		if conn == 0 {
			budget += opts.Events % int64(opts.Conns)
		}
		wg.Add(1)
		go func(conn, sessions int, budget int64) {
			defer wg.Done()
			r := &results[conn]
			if wireAddr != "" {
				r.events, r.batches, r.dups, r.err = loadGenWire(ctx, wireAddr, opts, conn, sessions, budget)
			} else {
				r.events, r.batches, r.dups, r.err = loadGenHTTP(ctx, target, opts, conn, sessions, budget)
			}
		}(conn, sessions, budget)
	}
	wg.Wait()
	stats.Duration = time.Since(start)
	for conn := range results {
		stats.Events += results[conn].events
		stats.Batches += results[conn].batches
		stats.Duplicates += results[conn].dups
		if results[conn].err != nil {
			return stats, fmt.Errorf("serve: loadgen conn %d: %w", conn, results[conn].err)
		}
	}
	return stats, nil
}

// genBlock fills the columns with the periodic pattern starting at
// event offset pos.
func genBlock(senders, sizes []int64, pos int64, period int) {
	for i := range senders {
		p := (pos + int64(i)) % int64(period)
		senders[i] = p
		sizes[i] = (p + 1) * 64
	}
}

// loadGenWire drives one wire connection's share of the load.
func loadGenWire(ctx context.Context, addr string, opts LoadGenOptions, conn, sessions int, budget int64) (events, batches, dups int64, err error) {
	c, err := wire.Dial(ctx, addr, wire.ClientOptions{Window: opts.WireWindow})
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()
	streams := make([]string, sessions)
	seqs := make([]int64, sessions)
	pos := make([]int64, sessions)
	for i := range streams {
		streams[i] = fmt.Sprintf("g%d/%d", conn, i)
	}
	senders := make([]int64, opts.BlockLen)
	sizes := make([]int64, opts.BlockLen)
	for s := 0; events < budget; s = (s + 1) % sessions {
		n := int64(opts.BlockLen)
		if rest := budget - events; rest < n {
			n = rest
		}
		genBlock(senders[:n], sizes[:n], pos[s], opts.Period)
		seqs[s]++
		if err := c.ObserveBlock(ctx, opts.Tenant, streams[s], opts.Predictor, seqs[s], senders[:n], sizes[:n]); err != nil {
			return events, batches, dups, err
		}
		pos[s] += n
		events += n
		batches++
	}
	if err := c.Flush(ctx); err != nil {
		return events, batches, dups, err
	}
	_, d := c.Acked()
	return events, batches, int64(d), nil
}

// loadGenHTTP drives one HTTP client's share of the load — the baseline
// the wire numbers are compared against.
func loadGenHTTP(ctx context.Context, baseURL string, opts LoadGenOptions, conn, sessions int, budget int64) (events, batches, dups int64, err error) {
	client := opts.Client
	if client == nil {
		client = NewReplayClient()
	}
	streams := make([]string, sessions)
	seqs := make([]int64, sessions)
	pos := make([]int64, sessions)
	for i := range streams {
		streams[i] = fmt.Sprintf("g%d/%d", conn, i)
	}
	senders := make([]int64, opts.BlockLen)
	sizes := make([]int64, opts.BlockLen)
	var body bytes.Buffer
	for s := 0; events < budget; s = (s + 1) % sessions {
		n := int64(opts.BlockLen)
		if rest := budget - events; rest < n {
			n = rest
		}
		genBlock(senders[:n], sizes[:n], pos[s], opts.Period)
		seqs[s]++
		body.Reset()
		if err := json.NewEncoder(&body).Encode(observeRequest{
			Tenant:    opts.Tenant,
			Stream:    streams[s],
			Predictor: opts.Predictor,
			Seq:       seqs[s],
			Senders:   senders[:n],
			Sizes:     sizes[:n],
		}); err != nil {
			return events, batches, dups, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/observe", bytes.NewReader(body.Bytes()))
		if err != nil {
			return events, batches, dups, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return events, batches, dups, err
		}
		var reply observeReply
		decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&reply)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return events, batches, dups, fmt.Errorf("observe returned %s", resp.Status)
		}
		if decodeErr != nil {
			return events, batches, dups, decodeErr
		}
		if reply.Duplicate {
			dups++
		}
		pos[s] += n
		events += n
		batches++
	}
	return events, batches, dups, nil
}
