package serve

// Retry-After handling at its edges. RFC 9110 allows delta-seconds and
// HTTP-dates, and real proxies emit malformed values of both kinds; a
// bad header must degrade to "use your own backoff", never stall or kill
// the retry loop. Plus the other half of that loop's contract: a context
// cancelled mid-backoff returns promptly, not after the sleep.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name, value string
		want        time.Duration
		ok          bool
	}{
		{"empty", "", 0, false},
		{"seconds", "3", 3 * time.Second, true},
		{"zero seconds", "0", 0, true},
		{"negative seconds", "-5", 0, false},
		{"non-numeric", "soon", 0, false},
		{"float", "1.5", 0, false},
		{"overflowing garbage", "99999999999999999999999999", 0, false},
		{"http-date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		// A date already passed is a valid "retry now", not a parse failure.
		{"http-date past", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"http-date malformed", "Wed, 99 Xxx 2099 99:99:99 GMT", 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseRetryAfter(tc.value, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.name, tc.value, got, ok, tc.want, tc.ok)
		}
	}
}

// TestReplayMalformedRetryAfterStillRetries serves 503s carrying each
// malformed Retry-After form before succeeding: the replay must fall
// back to its own backoff and converge, not error or stall.
func TestReplayMalformedRetryAfterStillRetries(t *testing.T) {
	for _, header := range []string{"-5", "not-a-number", "Wed, 99 Xxx 2099 99:99:99 GMT"} {
		t.Run(header, func(t *testing.T) {
			srv := NewServer(NewRegistry(Config{}))
			var calls atomic.Int64
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) <= 2 {
					w.Header().Set("Retry-After", header)
					http.Error(w, "failing with a bad hint", http.StatusServiceUnavailable)
					return
				}
				srv.ServeHTTP(w, r)
			}))
			defer ts.Close()
			tr := corpusTrace(t, "bt.4.mpt")
			start := time.Now()
			stats, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{RetryBase: time.Millisecond})
			if err != nil {
				t.Fatalf("replay with malformed Retry-After %q: %v", header, err)
			}
			if stats.Retries != 2 {
				t.Fatalf("retries = %d, want 2", stats.Retries)
			}
			// The negative/garbage hint must not have been honored as a
			// wait: with a 1ms base, convergence is near-instant.
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Fatalf("replay took %v; malformed header apparently honored as a delay", elapsed)
			}
			if srv.Registry().Len() == 0 {
				t.Fatal("no sessions created after retries")
			}
		})
	}
}

// TestReplayHonorsRetryAfterDate: a valid near-future HTTP-date hint is
// honored (the retry waits at least that long).
func TestReplayHonorsRetryAfterDate(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	var calls atomic.Int64
	// HTTP-dates have one-second resolution, so anything under a full
	// second can truncate to "retry now". A 2s hint survives truncation
	// with at least ~1s of honored wait.
	const hint = 2 * time.Second
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(hint).UTC().Format(http.TimeFormat))
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	tr := corpusTrace(t, "bt.4.mpt")
	start := time.Now()
	if _, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{RetryBase: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// With a 1ms base the schedule alone sleeps ~1ms; anything close to a
	// second proves the date hint drove the wait.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("replay finished in %v; Retry-After date was not honored", elapsed)
	}
}

// TestReplayCancellationMidBackoff cancels the context while the replay
// sleeps out a large Retry-After: it must return promptly with the
// context's error instead of finishing the sleep.
func TestReplayCancellationMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "always failing", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	tr := corpusTrace(t, "bt.4.mpt")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Replay(ctx, ts.URL, tr, ReplayOptions{RetryBase: time.Minute, MaxRetries: 100})
		done <- err
	}()
	// Give the replay time to take the 503 and enter the backoff sleep,
	// then cancel mid-sleep.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("replay returned %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancellation took %v to unwind; backoff sleep not interruptible", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replay did not return after cancellation mid-backoff")
	}
}

// TestSleepBackoffCancelledContext: the shared retry clock itself
// returns the context error immediately when already cancelled.
func TestSleepBackoffCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := SleepBackoff(ctx, time.Minute, 0, time.Hour); err != context.Canceled {
		t.Fatalf("SleepBackoff on cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("SleepBackoff slept %v on a cancelled context", elapsed)
	}
}

func TestReplayStatsRendering(t *testing.T) {
	s := ReplayStats{Tenant: "bt.4", Sessions: 2, Events: 100, Requests: 4, Retries: 1, Duplicates: 1, Duration: 2 * time.Second}
	if got := s.EventsPerSec(); got != 50 {
		t.Fatalf("EventsPerSec = %v, want 50", got)
	}
	if got := (ReplayStats{}).EventsPerSec(); got != 0 {
		t.Fatalf("zero-duration EventsPerSec = %v, want 0", got)
	}
	rendered := s.String()
	for _, want := range []string{"tenant=bt.4", "sessions=2", "events=100", "retries=1", "throughput=50"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("String() = %q, missing %q", rendered, want)
		}
	}
}

func TestRetryableErrorUnwraps(t *testing.T) {
	inner := errors.New("connection reset")
	wrapped := &retryableError{err: inner}
	if !errors.Is(wrapped, inner) {
		t.Fatal("retryableError does not unwrap to its cause")
	}
	if !isRetryable(fmt.Errorf("outer: %w", wrapped)) {
		t.Fatal("wrapped retryableError not detected")
	}
}
