package serve

import (
	"testing"

	"mpipredict/internal/core"
)

// TestRegistryObserveZeroAllocs pins the service hot path: observing one
// event on an existing session — shard hash, LRU touch, two predictor
// observes, counter bump — must not allocate. This is the single-event
// steady state of a daemon under full load.
func TestRegistryObserveZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe("tenant", "stream", Event{Sender: int64(i % 6), Size: int64(100 * (i % 6))})
		i++
	})
	if allocs != 0 {
		t.Errorf("Registry.Observe allocates %.2f objects per event, want 0", allocs)
	}
}

// TestRegistryObserveLearningZeroAllocs covers the other steady state: a
// session whose stream never locks must not allocate per event either.
func TestRegistryObserveLearningZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	var x int64
	for i := 0; i < 4*core.DefaultConfig().WindowSize; i++ {
		r.Observe("tenant", "stream", Event{Sender: x, Size: x})
		x++
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe("tenant", "stream", Event{Sender: x, Size: x})
		x++
	})
	if allocs != 0 {
		t.Errorf("learning-state Observe allocates %.2f objects per event, want 0", allocs)
	}
}

// TestRegistryObserveBatchZeroAllocs pins the batched ingest path the
// replay ingester drives.
func TestRegistryObserveBatchZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	batch := make([]Event, 64)
	for i := range batch {
		batch[i] = Event{Sender: int64(i % 6), Size: int64(100 * (i % 6))}
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.ObserveBatch("tenant", "stream", batch)
	})
	if allocs != 0 {
		t.Errorf("Registry.ObserveBatch allocates %.2f objects per batch, want 0", allocs)
	}
}

// TestRegistryObserveBatchSeqZeroAllocs pins the idempotent ingest path:
// the duplicate check is one integer compare under the shard lock, so
// sequenced batches — applied or dropped as duplicates — must stay
// allocation-free like the unsequenced path.
func TestRegistryObserveBatchSeqZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	batch := make([]Event, 64)
	for i := range batch {
		batch[i] = Event{Sender: int64(i % 6), Size: int64(100 * (i % 6))}
	}
	seq := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		if _, _, err := r.ObserveBatchSeq("tenant", "stream", "", seq, batch); err != nil {
			t.Fatal(err)
		}
		// Duplicate delivery of the same seq: dropped without observing.
		if _, dup, err := r.ObserveBatchSeq("tenant", "stream", "", seq, batch); err != nil || !dup {
			t.Fatalf("dup=%v err=%v", dup, err)
		}
	})
	if allocs != 0 {
		t.Errorf("Registry.ObserveBatchSeq allocates %.2f objects per batch pair, want 0", allocs)
	}
}

// TestRegistryForecastIntoZeroAllocs pins the query path's buffer-reuse
// contract, mirroring core's PredictSeriesInto test.
func TestRegistryForecastIntoZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	buf := make([]Forecast, 0, DefaultHorizon)
	allocs := testing.AllocsPerRun(1000, func() {
		var ok bool
		buf, _, ok = r.ForecastInto(buf[:0], "tenant", "stream", DefaultHorizon)
		if !ok {
			t.Fatal("session disappeared")
		}
	})
	if allocs != 0 {
		t.Errorf("ForecastInto with a reused buffer allocates %.2f objects per query, want 0", allocs)
	}
}
