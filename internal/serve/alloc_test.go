package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mpipredict/internal/core"
)

// TestRegistryObserveZeroAllocs pins the service hot path: observing one
// event on an existing session — shard hash, LRU touch, two predictor
// observes, counter bump — must not allocate. This is the single-event
// steady state of a daemon under full load.
func TestRegistryObserveZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe("tenant", "stream", Event{Sender: int64(i % 6), Size: int64(100 * (i % 6))})
		i++
	})
	if allocs != 0 {
		t.Errorf("Registry.Observe allocates %.2f objects per event, want 0", allocs)
	}
}

// TestRegistryObserveLearningZeroAllocs covers the other steady state: a
// session whose stream never locks must not allocate per event either.
func TestRegistryObserveLearningZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	var x int64
	for i := 0; i < 4*core.DefaultConfig().WindowSize; i++ {
		r.Observe("tenant", "stream", Event{Sender: x, Size: x})
		x++
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Observe("tenant", "stream", Event{Sender: x, Size: x})
		x++
	})
	if allocs != 0 {
		t.Errorf("learning-state Observe allocates %.2f objects per event, want 0", allocs)
	}
}

// TestRegistryObserveBatchZeroAllocs pins the batched ingest path the
// replay ingester drives.
func TestRegistryObserveBatchZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	batch := make([]Event, 64)
	for i := range batch {
		batch[i] = Event{Sender: int64(i % 6), Size: int64(100 * (i % 6))}
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.ObserveBatch("tenant", "stream", batch)
	})
	if allocs != 0 {
		t.Errorf("Registry.ObserveBatch allocates %.2f objects per batch, want 0", allocs)
	}
}

// TestRegistryObserveBatchSeqZeroAllocs pins the idempotent ingest path:
// the duplicate check is one integer compare under the shard lock, so
// sequenced batches — applied or dropped as duplicates — must stay
// allocation-free like the unsequenced path.
func TestRegistryObserveBatchSeqZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	batch := make([]Event, 64)
	for i := range batch {
		batch[i] = Event{Sender: int64(i % 6), Size: int64(100 * (i % 6))}
	}
	seq := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		if _, _, err := r.ObserveBatchSeq("tenant", "stream", "", seq, batch); err != nil {
			t.Fatal(err)
		}
		// Duplicate delivery of the same seq: dropped without observing.
		if _, dup, err := r.ObserveBatchSeq("tenant", "stream", "", seq, batch); err != nil || !dup {
			t.Fatalf("dup=%v err=%v", dup, err)
		}
	})
	if allocs != 0 {
		t.Errorf("Registry.ObserveBatchSeq allocates %.2f objects per batch pair, want 0", allocs)
	}
}

// discardResponse is an http.ResponseWriter that swallows the reply —
// the alloc pins below must measure the handler, not a recorder.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponse) WriteHeader(int)             {}

// reusableBody replays the same bytes as a fresh request body each run.
type reusableBody struct{ bytes.Reader }

func (b *reusableBody) Close() error { return nil }

// TestObserveHandlerDecodeAllocs pins the satellite claim behind the
// pooled body scratch: a steady-state columnar observe request — body
// slurp, JSON decode into pooled columns, sequenced block observe,
// response — must not allocate proportionally to the batch. The budget
// covers only encoding/json's fixed per-Unmarshal state, the
// MaxBytesReader wrapper and the decoded key strings; the body buffer
// and both columns come from the pool. Before the pooling, the fresh
// json.Decoder's private buffer alone made this grow with body size.
func TestObserveHandlerDecodeAllocs(t *testing.T) {
	srv := NewServer(NewRegistry(Config{}))
	senders := make([]int64, 256)
	sizes := make([]int64, 256)
	seq, pos := int64(0), int64(0)
	// The stream must be phase-continuous ACROSS requests (like
	// feedPeriodic): a pattern that restarts at phase 0 every block keeps
	// the predictor learning — and allocating — forever.
	payload := func() []byte {
		for i := range senders {
			p := (pos + int64(i)) % 6
			senders[i] = p
			sizes[i] = 100 * p
		}
		pos += int64(len(senders))
		seq++
		p, err := json.Marshal(observeRequest{Tenant: "t", Stream: "s", Seq: seq, Senders: senders, Sizes: sizes})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Warm the session past its learning phase (the predictor allocates
	// while its tables grow) and the scratch pool, outside the loop.
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", nil)
	w := &discardResponse{h: make(http.Header)}
	body := &reusableBody{}
	for i := 0; i < 8*core.DefaultConfig().WindowSize/len(senders); i++ {
		body.Reset(payload())
		req.Body = body
		srv.handleObserve(w, req)
	}

	bodies := make([][]byte, 100)
	for i := range bodies {
		bodies[i] = payload()
	}
	i := 0
	allocs := testing.AllocsPerRun(len(bodies)-1, func() {
		body.Reset(bodies[i%len(bodies)])
		req.Body = body
		srv.handleObserve(w, req)
		i++
	})
	// Measured ~9 on go1.24; the slack covers the extra fixed bookkeeping
	// the race detector's instrumentation adds (13 under -race). What the
	// pin guards against is proportional cost: before the pooling, this
	// was 59 and grew with the body size.
	const budget = 16
	if allocs > budget {
		t.Errorf("observe handler allocates %.1f objects per 256-event columnar request, want <= %d", allocs, budget)
	}
	if got := srv.Registry().Stats().Events; got == 0 {
		t.Fatal("handler observed nothing — measurement is vacuous")
	}
}

// TestRegistryForecastIntoZeroAllocs pins the query path's buffer-reuse
// contract, mirroring core's PredictSeriesInto test.
func TestRegistryForecastIntoZeroAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	feedPeriodic(r, "tenant", "stream", 6, 4*core.DefaultConfig().WindowSize)
	buf := make([]Forecast, 0, DefaultHorizon)
	allocs := testing.AllocsPerRun(1000, func() {
		var ok bool
		buf, _, ok = r.ForecastInto(buf[:0], "tenant", "stream", DefaultHorizon)
		if !ok {
			t.Fatal("session disappeared")
		}
	})
	if allocs != 0 {
		t.Errorf("ForecastInto with a reused buffer allocates %.2f objects per query, want 0", allocs)
	}
}
