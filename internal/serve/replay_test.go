package serve

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"mpipredict/internal/evalx"
	"mpipredict/internal/trace"
	"mpipredict/internal/workloads"
)

// corpusTrace loads one golden corpus trace.
func corpusTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	tr, err := trace.Load("../../testdata/corpus/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayFeedsEveryStream(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stats, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tenant != DefaultTenant(tr) {
		t.Fatalf("tenant = %q, want %q", stats.Tenant, DefaultTenant(tr))
	}
	// Every traced (receiver, level) stream becomes one session with
	// exactly the stream's event count.
	wantSessions := 0
	var wantEvents int64
	for _, receiver := range tr.Receivers() {
		for _, level := range []trace.Level{trace.Logical, trace.Physical} {
			if n := len(tr.SenderStreamShared(receiver, level)); n > 0 {
				wantSessions++
				wantEvents += int64(n)
				info, ok := srv.Registry().Info(stats.Tenant, StreamName(receiver, level))
				if !ok {
					t.Fatalf("no session for receiver %d level %s", receiver, level)
				}
				if info.Observed != int64(n) {
					t.Fatalf("receiver %d level %s: observed %d, want %d", receiver, level, info.Observed, n)
				}
			}
		}
	}
	if stats.Sessions != wantSessions || stats.Events != wantEvents {
		t.Fatalf("stats = %+v, want %d sessions and %d events", stats, wantSessions, wantEvents)
	}
	if stats.Requests == 0 || stats.EventsPerSec() <= 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}

// TestReplayedSessionMatchesOfflinePredictorState is the serving
// subsystem's fidelity proof at the state level: after replaying a trace
// through the HTTP API, each session's predictor snapshot equals a
// predictor fed the same stream directly. (The cmd/mpipredictd end-to-end
// test extends this to prediction *accuracy* matching the offline evalx
// protocol.)
func TestReplayedSessionMatchesOfflinePredictorState(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	srv := NewServer(NewRegistry(Config{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}

	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []trace.Level{trace.Logical, trace.Physical} {
		offline := NewRegistry(Config{})
		senders := tr.SenderStreamShared(receiver, level)
		sizes := tr.SizeStreamShared(receiver, level)
		for i := range senders {
			offline.Observe("x", "y", Event{Sender: senders[i], Size: sizes[i]})
		}
		want := offline.SnapshotSessions()[0]
		served, ok := snapshotFor(srv.Registry(), DefaultTenant(tr), StreamName(receiver, level))
		if !ok {
			t.Fatalf("no served session for level %s", level)
		}
		if !reflect.DeepEqual(served.Sender, want.Sender) || !reflect.DeepEqual(served.Size, want.Size) {
			t.Fatalf("level %s: served predictor state diverges from direct feeding", level)
		}
	}
}

func snapshotFor(r *Registry, tenant, stream string) (SessionSnapshot, bool) {
	for _, s := range r.SnapshotSessions() {
		if s.Tenant == tenant && s.Stream == stream {
			return s, true
		}
	}
	return SessionSnapshot{}, false
}

func TestReplayAgainstDeadServer(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	ts := httptest.NewServer(NewServer(NewRegistry(Config{})))
	ts.Close() // dead before the replay starts
	// Retries disabled: a permanently dead server would otherwise burn the
	// whole backoff schedule before failing, for no extra coverage here.
	if _, err := Replay(context.Background(), ts.URL, tr, ReplayOptions{MaxRetries: -1}); err == nil {
		t.Fatal("replay against a closed server succeeded")
	}
}

// TestReplayMatchesEvalxAccuracyOverHTTP scores predictions through the
// HTTP API with the exact measurement protocol of the offline harness
// (predict +1..+5 before each observation) and requires hit-for-hit
// equality with evalx.EvaluateStream on the same stream.
func TestReplayMatchesEvalxAccuracyOverHTTP(t *testing.T) {
	tr := corpusTrace(t, "bt.4.mpt")
	receiver, err := workloads.ReplayReceiver(tr)
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.SenderStreamShared(receiver, trace.Physical)
	sizes := tr.SizeStreamShared(receiver, trace.Physical)
	offline := evalx.EvaluateStream(senders, nil, 5)

	srv := NewServer(NewRegistry(Config{}))
	reg := srv.Registry()
	hits := make([]int, 5)
	total := make([]int, 5)
	buf := make([]Forecast, 0, 5)
	for i := range senders {
		buf, _, _ = reg.ForecastInto(buf[:0], "t", "s", 5)
		for k := 1; k <= 5; k++ {
			idx := i + k - 1
			if idx >= len(senders) {
				continue
			}
			total[k-1]++
			if len(buf) == 5 && buf[k-1].SenderOK && buf[k-1].Sender == senders[idx] {
				hits[k-1]++
			}
		}
		reg.Observe("t", "s", Event{Sender: senders[i], Size: sizes[i]})
	}
	for k := 0; k < 5; k++ {
		if hits[k] != offline.Hits[k] || total[k] != offline.Total[k] {
			t.Fatalf("horizon +%d: served %d/%d, offline %d/%d", k+1, hits[k], total[k], offline.Hits[k], offline.Total[k])
		}
	}
}
