package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mpipredict/internal/core"
)

// TestConcurrentSessionsMatchSerialRun is the registry's determinism
// contract under load: N goroutines drive overlapping sessions — each
// goroutine owns one session's observe stream (preserving per-session
// event order, as one connection per stream would) while every goroutine
// also fires forecast and info queries against all the other sessions.
// After the storm, every session's full predictor snapshot must equal the
// snapshot produced by a serial replay of the same streams. Run under
// -race this also proves the shard locking is sound.
func TestConcurrentSessionsMatchSerialRun(t *testing.T) {
	const (
		goroutines = 8
		events     = 2500
	)
	cfg := Config{Shards: 4, Predictor: core.Config{WindowSize: 64, MaxLag: 24}}

	// Build per-session streams: periodic with occasional deterministic
	// perturbations so locks, unlocks and relearns all happen.
	streams := make([][]Event, goroutines)
	for g := range streams {
		rng := rand.New(rand.NewSource(int64(g + 1)))
		period := 3 + g%5
		evs := make([]Event, events)
		for i := range evs {
			evs[i] = Event{Sender: int64(i % period), Size: int64(10 * (i % period))}
			if rng.Intn(16) == 0 {
				evs[i].Sender = int64(rng.Intn(period + 2))
			}
		}
		streams[g] = evs
	}
	name := func(g int) string { return fmt.Sprintf("stream-%d", g) }

	concurrent := NewRegistry(cfg)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]Forecast, 0, 8)
			for i, ev := range streams[g] {
				concurrent.Observe("load", name(g), ev)
				// Cross-session queries: hit a rotating neighbour so every
				// session is being read while others write to its shard.
				if i%7 == 0 {
					other := name((g + i) % goroutines)
					buf, _, _ = concurrent.ForecastInto(buf[:0], "load", other, 5)
					concurrent.Info("load", other)
				}
			}
		}(g)
	}
	wg.Wait()

	serial := NewRegistry(cfg)
	for g := 0; g < goroutines; g++ {
		for _, ev := range streams[g] {
			serial.Observe("load", name(g), ev)
		}
	}

	got := concurrent.SnapshotSessions()
	want := serial.SnapshotSessions()
	if len(got) != len(want) {
		t.Fatalf("session count differs: concurrent %d, serial %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("session %s/%s diverged from the serial run:\n got %+v\nwant %+v",
				want[i].Tenant, want[i].Stream, got[i], want[i])
		}
	}
	if ev := concurrent.Stats().Events; ev != int64(goroutines*events) {
		t.Fatalf("event counter = %d, want %d", ev, goroutines*events)
	}
}

// TestConcurrentObserveBatchSharedShard hammers one shard from many
// goroutines with batches for distinct sessions; totals and final session
// counts must come out exact.
func TestConcurrentObserveBatchSharedShard(t *testing.T) {
	r := NewRegistry(Config{Shards: 1, MaxSessions: 64, Predictor: core.Config{WindowSize: 16, MaxLag: 4}})
	const (
		goroutines = 16
		batches    = 50
		batchLen   = 20
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			events := make([]Event, batchLen)
			for b := 0; b < batches; b++ {
				for i := range events {
					events[i] = Event{Sender: int64(i % 3), Size: int64(b)}
				}
				r.ObserveBatch("t", fmt.Sprintf("s%d", g), events)
			}
		}(g)
	}
	wg.Wait()

	if r.Len() != goroutines {
		t.Fatalf("Len = %d, want %d", r.Len(), goroutines)
	}
	for g := 0; g < goroutines; g++ {
		info, ok := r.Info("t", fmt.Sprintf("s%d", g))
		if !ok || info.Observed != batches*batchLen {
			t.Fatalf("session s%d: observed %d (ok=%v), want %d", g, info.Observed, ok, batches*batchLen)
		}
	}
	if ev := r.Stats().Events; ev != goroutines*batches*batchLen {
		t.Fatalf("event counter = %d, want %d", ev, goroutines*batches*batchLen)
	}
}

// TestConcurrentSweepAndObserve lets idle sweeps race observes; nothing
// must deadlock, and a session being actively observed must survive.
func TestConcurrentSweepAndObserve(t *testing.T) {
	r := NewRegistry(Config{Shards: 2, Predictor: core.Config{WindowSize: 16, MaxLag: 4}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.SweepIdle()
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		r.Observe("t", "live", Event{Sender: int64(i % 3), Size: 1})
	}
	close(stop)
	wg.Wait()
	if _, ok := r.Info("t", "live"); !ok {
		t.Fatal("actively observed session was swept")
	}
}
