package serve

// The replay ingester: feed a recorded trace (any .mpt or JSONL file the
// repo can produce) through a running daemon's HTTP API. Every traced
// (receiver, level) pair becomes one session, so a corpus trace doubles as
// a load generator — `mpipredictd -replay testdata/corpus/bt.4.mpt -target
// http://...` pushes the exact event streams the offline harness
// evaluates, and the daemon's sessions end up in the exact state the
// offline predictors reach.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mpipredict/internal/trace"
)

// StreamName is the canonical session stream name for one traced
// (receiver, level) pair. The daemon's replay and the evaluation tests use
// it so both always address the same session.
func StreamName(receiver int, level trace.Level) string {
	return fmt.Sprintf("r%d/%s", receiver, level)
}

// DefaultTenant is the canonical tenant for a replayed trace.
func DefaultTenant(tr *trace.Trace) string {
	return fmt.Sprintf("%s.%d", tr.App, tr.Procs)
}

// ReplayOptions control a trace replay.
type ReplayOptions struct {
	// Tenant overrides the session tenant (default DefaultTenant(tr)).
	Tenant string
	// BatchSize is the number of events per observe request (default 64).
	BatchSize int
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
}

// ReplayStats summarize one replay.
type ReplayStats struct {
	Tenant   string
	Sessions int           // sessions fed (one per traced receiver and level)
	Events   int64         // events observed
	Requests int64         // observe requests issued
	Duration time.Duration // wall-clock time of the whole replay
}

// EventsPerSec returns the observed ingest throughput.
func (s ReplayStats) EventsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Events) / s.Duration.Seconds()
}

// String renders the stats the way the daemon reports them.
func (s ReplayStats) String() string {
	return fmt.Sprintf("tenant=%s sessions=%d events=%d requests=%d duration=%s throughput=%.0f events/s",
		s.Tenant, s.Sessions, s.Events, s.Requests, s.Duration.Round(time.Millisecond), s.EventsPerSec())
}

// Replay feeds every traced (receiver, level) stream of tr through the
// observe API of the daemon at baseURL. Events of one session are sent in
// order (batched), so the daemon's predictor state after the replay is
// exactly what the offline harness computes for the same streams.
func Replay(baseURL string, tr *trace.Trace, opts ReplayOptions) (ReplayStats, error) {
	if opts.Tenant == "" {
		opts.Tenant = DefaultTenant(tr)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	stats := ReplayStats{Tenant: opts.Tenant}
	start := time.Now()
	events := make([]Event, 0, opts.BatchSize)
	for _, receiver := range tr.Receivers() {
		for _, level := range []trace.Level{trace.Logical, trace.Physical} {
			senders := tr.SenderStreamShared(receiver, level)
			sizes := tr.SizeStreamShared(receiver, level)
			if len(senders) == 0 {
				continue
			}
			stream := StreamName(receiver, level)
			stats.Sessions++
			for i := 0; i < len(senders); i += opts.BatchSize {
				end := i + opts.BatchSize
				if end > len(senders) {
					end = len(senders)
				}
				events = events[:0]
				for j := i; j < end; j++ {
					events = append(events, Event{Sender: senders[j], Size: sizes[j]})
				}
				if err := postObserve(opts.Client, baseURL, opts.Tenant, stream, events); err != nil {
					return stats, fmt.Errorf("serve: replaying %s/%s: %w", opts.Tenant, stream, err)
				}
				stats.Events += int64(end - i)
				stats.Requests++
			}
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// postObserve issues one observe request and verifies it was accepted.
func postObserve(client *http.Client, baseURL, tenant, stream string, events []Event) error {
	body, err := json.Marshal(observeRequest{Tenant: tenant, Stream: stream, Events: events})
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("observe returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	// Drain so the client can reuse the connection.
	io.Copy(io.Discard, resp.Body)
	return nil
}
