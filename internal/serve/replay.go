package serve

// The replay ingester: feed a recorded trace (any .mpt or JSONL file the
// repo can produce, or any composed stream.Source) through a running
// daemon's HTTP API. Every traced (receiver, level) pair becomes one
// session, so a corpus trace doubles as a load generator — `mpipredictd
// -replay testdata/corpus/bt.4.mpt -target http://...` pushes the exact
// event streams the offline harness evaluates, and the daemon's sessions
// end up in the exact state the offline predictors reach.
//
// The ingester is block-based end to end: events arrive in columnar
// EventBlocks, are bucketed per (receiver, level) session into columnar
// batch buffers, and leave as columnar observe requests that land on the
// registry's ObserveBlock fast path. Memory is bounded by sessions ×
// batch size — independent of the trace length — so a trace far larger
// than RAM replays in one pass.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// StreamName is the canonical session stream name for one traced
// (receiver, level) pair. The daemon's replay and the evaluation tests use
// it so both always address the same session.
func StreamName(receiver int, level trace.Level) string {
	return fmt.Sprintf("r%d/%s", receiver, level)
}

// DefaultTenant is the canonical tenant for a replayed trace.
func DefaultTenant(tr *trace.Trace) string {
	return fmt.Sprintf("%s.%d", tr.App, tr.Procs)
}

// ReplayOptions control a trace replay.
type ReplayOptions struct {
	// Tenant overrides the session tenant (default: "<app>.<procs>" from
	// the source's metadata; required when the source carries none).
	Tenant string
	// BatchSize is the number of events per observe request (default 64).
	BatchSize int
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
}

// ReplayStats summarize one replay.
type ReplayStats struct {
	Tenant   string
	Sessions int           // sessions fed (one per traced receiver and level)
	Events   int64         // events observed
	Requests int64         // observe requests issued
	Duration time.Duration // wall-clock time of the whole replay
}

// EventsPerSec returns the observed ingest throughput.
func (s ReplayStats) EventsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Events) / s.Duration.Seconds()
}

// String renders the stats the way the daemon reports them.
func (s ReplayStats) String() string {
	return fmt.Sprintf("tenant=%s sessions=%d events=%d requests=%d duration=%s throughput=%.0f events/s",
		s.Tenant, s.Sessions, s.Events, s.Requests, s.Duration.Round(time.Millisecond), s.EventsPerSec())
}

// sessionBatch is the per-(receiver, level) columnar accumulation buffer.
type sessionBatch struct {
	stream  string
	senders []int64
	sizes   []int64
}

// replayKey orders session flushes deterministically.
type replayKey struct {
	receiver int
	level    trace.Level
}

// Replay feeds every traced (receiver, level) stream of tr through the
// observe API of the daemon at baseURL. It is a thin wrapper over
// ReplaySource with an in-memory trace source.
func Replay(baseURL string, tr *trace.Trace, opts ReplayOptions) (ReplayStats, error) {
	return ReplaySource(baseURL, stream.TraceSource(tr), opts)
}

// ReplaySource feeds every traced (receiver, level) stream of a block
// source through the observe API of the daemon at baseURL. Events of one
// session are sent in stream order (batched into columnar observe
// requests), so the daemon's predictor state after the replay is exactly
// what the offline harness computes for the same streams.
func ReplaySource(baseURL string, src stream.Source, opts ReplayOptions) (ReplayStats, error) {
	if opts.Tenant == "" {
		md, ok := stream.MetaOf(src)
		if !ok {
			return ReplayStats{}, fmt.Errorf("serve: replay source carries no app/procs metadata; set ReplayOptions.Tenant")
		}
		opts.Tenant = fmt.Sprintf("%s.%d", md.App, md.Procs)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	stats := ReplayStats{Tenant: opts.Tenant}
	start := time.Now()
	batches := make(map[replayKey]*sessionBatch)
	flush := func(b *sessionBatch) error {
		if len(b.senders) == 0 {
			return nil
		}
		if err := postObserveColumns(opts.Client, baseURL, opts.Tenant, b.stream, b.senders, b.sizes); err != nil {
			return fmt.Errorf("serve: replaying %s/%s: %w", opts.Tenant, b.stream, err)
		}
		stats.Events += int64(len(b.senders))
		stats.Requests++
		b.senders = b.senders[:0]
		b.sizes = b.sizes[:0]
		return nil
	}

	var blk stream.EventBlock
	for {
		err := src.Next(&blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		for i := 0; i < blk.Len(); i++ {
			k := replayKey{blk.Receiver[i], blk.Level[i]}
			b := batches[k]
			if b == nil {
				b = &sessionBatch{
					stream:  StreamName(k.receiver, k.level),
					senders: make([]int64, 0, opts.BatchSize),
					sizes:   make([]int64, 0, opts.BatchSize),
				}
				batches[k] = b
				stats.Sessions++
			}
			b.senders = append(b.senders, blk.Sender[i])
			b.sizes = append(b.sizes, blk.Size[i])
			if len(b.senders) >= opts.BatchSize {
				if err := flush(b); err != nil {
					return stats, err
				}
			}
		}
	}
	// Flush the partial tails in a fixed session order, so the request
	// sequence of a replay is deterministic.
	keys := make([]replayKey, 0, len(batches))
	for k := range batches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].receiver != keys[j].receiver {
			return keys[i].receiver < keys[j].receiver
		}
		return keys[i].level < keys[j].level
	})
	for _, k := range keys {
		if err := flush(batches[k]); err != nil {
			return stats, err
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// postObserveColumns issues one columnar observe request and verifies it
// was accepted.
func postObserveColumns(client *http.Client, baseURL, tenant, stream string, senders, sizes []int64) error {
	body, err := json.Marshal(observeRequest{Tenant: tenant, Stream: stream, Senders: senders, Sizes: sizes})
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("observe returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	// Drain so the client can reuse the connection.
	io.Copy(io.Discard, resp.Body)
	return nil
}
