package serve

// The replay ingester: feed a recorded trace (any .mpt or JSONL file the
// repo can produce, or any composed stream.Source) through a running
// daemon's HTTP API. Every traced (receiver, level) pair becomes one
// session, so a corpus trace doubles as a load generator — `mpipredictd
// -replay testdata/corpus/bt.4.mpt -target http://...` pushes the exact
// event streams the offline harness evaluates, and the daemon's sessions
// end up in the exact state the offline predictors reach.
//
// The ingester is block-based end to end: events arrive in columnar
// EventBlocks, are bucketed per (receiver, level) session into columnar
// batch buffers, and leave as columnar observe requests that land on the
// registry's ObserveBlock fast path. Memory is bounded by sessions ×
// batch size — independent of the trace length — so a trace far larger
// than RAM replays in one pass.
//
// Delivery is at-least-once made effectively-once: every batch carries a
// per-session monotonic sequence number, and transient failures (429,
// 5xx, transport errors) are retried with exponential backoff and
// jitter. A retry of a request whose response was lost is acknowledged
// by the server as a duplicate and not re-observed, so a replay through
// a lossy network converges to exactly the state of a clean replay.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"mpipredict/internal/stream"
	"mpipredict/internal/trace"
)

// StreamName is the canonical session stream name for one traced
// (receiver, level) pair. The daemon's replay and the evaluation tests use
// it so both always address the same session.
func StreamName(receiver int, level trace.Level) string {
	return fmt.Sprintf("r%d/%s", receiver, level)
}

// DefaultTenant is the canonical tenant for a replayed trace.
func DefaultTenant(tr *trace.Trace) string {
	return fmt.Sprintf("%s.%d", tr.App, tr.Procs)
}

// DefaultMaxRetries is the per-batch retry budget when
// ReplayOptions.MaxRetries is zero. With the default backoff schedule it
// spans several seconds of sustained failure before giving up.
const DefaultMaxRetries = 8

// DefaultRetryBase is the first retry delay when ReplayOptions.RetryBase
// is zero; each subsequent attempt doubles it (with jitter), capped at
// maxRetryBackoff.
const DefaultRetryBase = 25 * time.Millisecond

// maxRetryBackoff caps the exponential growth so a long outage polls
// about once a second instead of sleeping for minutes.
const maxRetryBackoff = time.Second

// ReplayOptions control a trace replay.
type ReplayOptions struct {
	// Tenant overrides the session tenant (default: "<app>.<procs>" from
	// the source's metadata; required when the source carries none).
	Tenant string
	// BatchSize is the number of events per observe request (default 64).
	BatchSize int
	// Client is the HTTP client to use. The default is a dedicated client
	// with dial and request timeouts — not http.DefaultClient, which has
	// none and would hang the replay forever on a stuck connection.
	Client *http.Client
	// MaxRetries bounds the retry attempts per batch after the first
	// delivery fails with a retryable error (429, 5xx, transport).
	// Default DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// RetryBase is the initial backoff delay. Default DefaultRetryBase.
	RetryBase time.Duration
	// Transport selects the delivery protocol. "auto" probes the
	// target's /healthz for an advertised binary wire listener and uses
	// it when present, falling back to HTTP; "wire" requires the wire
	// listener (and accepts a bare "wire://host:port" target); "http"
	// forces HTTP/JSON. The default "" speaks HTTP — except for a
	// "wire://" target, which is inherently wire — so existing callers
	// see no extra probe traffic; the daemon's -transport flag defaults
	// to "auto".
	Transport string
	// WireWindow is the wire transport's pipeline depth in unacked
	// observe frames. Default wire.DefaultWindow.
	WireWindow int
}

// Transport values for ReplayOptions.Transport.
const (
	TransportAuto = "auto"
	TransportHTTP = "http"
	TransportWire = "wire"
)

// ReplayStats summarize one replay.
type ReplayStats struct {
	Tenant     string
	Transport  string        // delivery protocol actually used ("http" or "wire")
	Sessions   int           // sessions fed (one per traced receiver and level)
	Events     int64         // events delivered (including duplicate-acked retries)
	Requests   int64         // observe requests/frames issued, retries included
	Retries    int64         // re-deliveries after a retryable failure
	Duplicates int64         // batches the server acked as already applied
	Duration   time.Duration // wall-clock time of the whole replay
}

// EventsPerSec returns the observed ingest throughput.
func (s ReplayStats) EventsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Events) / s.Duration.Seconds()
}

// String renders the stats the way the daemon reports them.
func (s ReplayStats) String() string {
	transport := s.Transport
	if transport == "" {
		transport = TransportHTTP
	}
	return fmt.Sprintf("tenant=%s transport=%s sessions=%d events=%d requests=%d retries=%d duplicates=%d duration=%s throughput=%.0f events/s",
		s.Tenant, transport, s.Sessions, s.Events, s.Requests, s.Retries, s.Duplicates, s.Duration.Round(time.Millisecond), s.EventsPerSec())
}

// NewReplayClient returns the dedicated HTTP client replays default to:
// bounded dial, header and whole-request times, so a wedged daemon fails
// the replay instead of hanging it.
func NewReplayClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: 10 * time.Second,
			MaxIdleConnsPerHost:   4,
			IdleConnTimeout:       time.Minute,
		},
	}
}

// sessionBatch is the per-(receiver, level) columnar accumulation buffer.
// seq is the session's batch sequence counter: incremented once per
// batch, resent unchanged on every retry of that batch, which is what
// lets the server tell a retry from new data.
type sessionBatch struct {
	stream  string
	seq     int64
	senders []int64
	sizes   []int64
}

// replayKey orders session flushes deterministically.
type replayKey struct {
	receiver int
	level    trace.Level
}

// Replay feeds every traced (receiver, level) stream of tr through the
// observe API of the daemon at baseURL. It is a thin wrapper over
// ReplaySource with an in-memory trace source.
func Replay(ctx context.Context, baseURL string, tr *trace.Trace, opts ReplayOptions) (ReplayStats, error) {
	return ReplaySource(ctx, baseURL, stream.TraceSource(tr), opts)
}

// ReplaySource feeds every traced (receiver, level) stream of a block
// source through the observe API of the daemon at baseURL. Events of one
// session are sent in stream order (batched into columnar observe
// requests), so the daemon's predictor state after the replay is exactly
// what the offline harness computes for the same streams. Cancelling ctx
// aborts the replay between requests and during backoff sleeps.
func ReplaySource(ctx context.Context, baseURL string, src stream.Source, opts ReplayOptions) (ReplayStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Tenant == "" {
		md, ok := stream.MetaOf(src)
		if !ok {
			return ReplayStats{}, fmt.Errorf("serve: replay source carries no app/procs metadata; set ReplayOptions.Tenant")
		}
		opts.Tenant = fmt.Sprintf("%s.%d", md.App, md.Procs)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.Client == nil {
		opts.Client = NewReplayClient()
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	stats := ReplayStats{Tenant: opts.Tenant}
	start := time.Now()
	poster, err := newBatchPoster(ctx, baseURL, opts, &stats)
	if err != nil {
		return stats, err
	}
	defer poster.close()
	batches := make(map[replayKey]*sessionBatch)
	flush := func(b *sessionBatch) error {
		if len(b.senders) == 0 {
			return nil
		}
		b.seq++
		if err := poster.deliver(ctx, b); err != nil {
			return fmt.Errorf("serve: replaying %s/%s batch %d: %w", opts.Tenant, b.stream, b.seq, err)
		}
		stats.Events += int64(len(b.senders))
		b.senders = b.senders[:0]
		b.sizes = b.sizes[:0]
		return nil
	}

	var blk stream.EventBlock
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		err := src.Next(&blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		for i := 0; i < blk.Len(); i++ {
			k := replayKey{blk.Receiver[i], blk.Level[i]}
			b := batches[k]
			if b == nil {
				b = &sessionBatch{
					stream:  StreamName(k.receiver, k.level),
					senders: make([]int64, 0, opts.BatchSize),
					sizes:   make([]int64, 0, opts.BatchSize),
				}
				batches[k] = b
				stats.Sessions++
			}
			b.senders = append(b.senders, blk.Sender[i])
			b.sizes = append(b.sizes, blk.Size[i])
			if len(b.senders) >= opts.BatchSize {
				if err := flush(b); err != nil {
					return stats, err
				}
			}
		}
	}
	// Flush the partial tails in a fixed session order, so the request
	// sequence of a replay is deterministic.
	keys := make([]replayKey, 0, len(batches))
	for k := range batches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].receiver != keys[j].receiver {
			return keys[i].receiver < keys[j].receiver
		}
		return keys[i].level < keys[j].level
	})
	for _, k := range keys {
		if err := flush(batches[k]); err != nil {
			return stats, err
		}
	}
	// Pipelined transports hold unacknowledged frames until here; a
	// replay only returns once every batch is acknowledged.
	if err := poster.finish(ctx); err != nil {
		return stats, err
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// postBatchReliably delivers one sequenced batch at least once: it
// retries retryable failures (429/5xx/transport errors) with capped
// exponential backoff, full jitter and Retry-After honoring, until the
// server acks — possibly as a duplicate, which counts as success.
func postBatchReliably(ctx context.Context, stats *ReplayStats, opts ReplayOptions, baseURL string, b *sessionBatch) error {
	for attempt := 0; ; attempt++ {
		stats.Requests++
		dup, retryAfter, err := postObserveColumns(ctx, opts.Client, baseURL, opts.Tenant, b)
		if err == nil {
			if dup {
				stats.Duplicates++
			}
			return nil
		}
		if !isRetryable(err) {
			return err
		}
		if attempt >= opts.MaxRetries {
			return fmt.Errorf("giving up after %d attempts: %w", attempt+1, err)
		}
		stats.Retries++
		if err := SleepBackoff(ctx, opts.RetryBase, attempt, retryAfter); err != nil {
			return err
		}
	}
}

// retryableError marks a delivery failure worth retrying. Transport
// errors are wrapped in it; HTTP statuses map through statusRetryable.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func isRetryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}

// backoffDelay is base·2^attempt clamped to (0, maxRetryBackoff]. The
// shift is guarded before it happens: a raw base<<attempt wraps int64 for
// large attempts and can land on a small positive value that slips past
// an after-the-fact range check, collapsing backoff mid-outage.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return maxRetryBackoff
	}
	// base ≤ maxRetryBackoff>>attempt ⟺ base<<attempt ≤ maxRetryBackoff,
	// with no overflow on either side; attempt ≥ 63 always overflows.
	if attempt < 0 || attempt >= 63 || base > maxRetryBackoff>>uint(attempt) {
		return maxRetryBackoff
	}
	return base << uint(attempt)
}

// SleepBackoff waits base·2^attempt (capped at one second, full-jittered,
// at least retryAfter when the server named one) or until ctx is
// cancelled. It is the module's one retry clock: the replay ingester and
// the cluster gateway's backend forwarding both sleep through it, so every
// hop of a multi-tier deployment decorrelates its retry storms the same
// way.
func SleepBackoff(ctx context.Context, base time.Duration, attempt int, retryAfter time.Duration) error {
	d := backoffDelay(base, attempt)
	// Full jitter: uniform in [d/2, d). Decorrelates the retry storms of
	// many replay clients hammering one recovering server.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ParseRetryAfter interprets a Retry-After header value as a wait hint.
// RFC 9110 allows two forms — delta-seconds and an HTTP-date — and real
// proxies emit both, so the retry path accepts either: a non-negative
// integer becomes that many seconds, a parseable HTTP-date becomes the
// time remaining until it (zero when the date already passed — "retry
// now" is still a valid hint). Everything else, including negative
// numbers and garbage, reports ok false and the caller falls back to its
// own backoff schedule; a malformed header must never stall or break a
// retry loop.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// observeReply is the subset of the observe response the replay needs.
type observeReply struct {
	Duplicate bool `json:"duplicate"`
}

// postObserveColumns issues one sequenced columnar observe request and
// classifies the outcome: success (with the server's duplicate verdict),
// a retryable failure (with any Retry-After hint), or a permanent error.
func postObserveColumns(ctx context.Context, client *http.Client, baseURL, tenant string, b *sessionBatch) (duplicate bool, retryAfter time.Duration, err error) {
	body, err := json.Marshal(observeRequest{Tenant: tenant, Stream: b.stream, Seq: b.seq, Senders: b.senders, Sizes: b.sizes})
	if err != nil {
		return false, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/observe", bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, 0, ctx.Err()
		}
		return false, 0, &retryableError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		statusErr := fmt.Errorf("observe returned %s: %s", resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			if d, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				retryAfter = d
			}
			return false, retryAfter, &retryableError{statusErr}
		}
		return false, 0, statusErr
	}
	var reply observeReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&reply); err != nil {
		// A 200 whose body was lost in transit: the batch WAS applied, but
		// the ack is unreadable. Retrying is safe — the seq makes the
		// re-delivery a duplicate.
		return false, 0, &retryableError{fmt.Errorf("reading observe ack: %w", err)}
	}
	// Drain so the client can reuse the connection.
	io.Copy(io.Discard, resp.Body)
	return reply.Duplicate, 0, nil
}
