package serve

// This file implements the persistent predictor-state snapshot format
// (".mps"). It follows the same conventions as the binary trace format
// (internal/trace/codec.go, DESIGN.md §3): a magic that pins the file
// family, a version that readers reject when unknown, a tagged item
// stream, and a CRC-32 trailer that detects any truncation or bit flip.
//
// Layout ("uvarint" and "varint" refer to encoding/binary's unsigned and
// zig-zag varints):
//
//	magic   [4]byte  "MPS\x01"
//	version uvarint  (currently 1)
//	items:  a sequence of tagged items, each introduced by one tag byte
//	  tagSnapSession (0x01): uvarint-length tenant and stream strings,
//	                         varint observed-event count, then the sender
//	                         and size predictor states (see below)
//	  tagSnapEnd     (0x00): uvarint session count, then the trailer
//	trailer [4]byte  little-endian CRC-32 (IEEE) of every byte from the
//	                 magic through the session count inclusive
//
// A predictor state is: the eight config fields (five varints, float bits
// as uvarints for LockTolerance and RelearnMissRate, varint RelearnWindow),
// varint WindowObserved, the window (uvarint length + varints, oldest
// first), one state byte, the pattern (uvarint length + varints), varint
// phase, varint miss streak, the outcome ring (uvarint length + 0/1
// bytes, oldest first), varint candidate period and runs, and the five
// lifetime counters as varints.
//
// The file holds no timestamps or other environmental state, so
// write(read(file)) is byte-identical — the property the daemon's
// warm-restart test pins.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"mpipredict/internal/core"
)

// snapshotMagic introduces every predictor snapshot file.
var snapshotMagic = [4]byte{'M', 'P', 'S', 0x01}

// SnapshotVersion is the current version of the snapshot format.
const SnapshotVersion = 1

const (
	tagSnapEnd     = 0x00
	tagSnapSession = 0x01
)

// maxSnapStringLen bounds tenant and stream names so a corrupt length
// prefix cannot force a huge allocation.
const maxSnapStringLen = 1 << 16

// maxSnapSliceLen bounds window, pattern and outcome-ring lengths read
// from a file before they are handed to core validation.
const maxSnapSliceLen = 1 << 20

// ErrCorruptSnapshot is wrapped by every snapshot decoding error:
// malformed, truncated or bit-flipped input, unknown versions, and state
// that fails core validation.
var ErrCorruptSnapshot = errors.New("corrupt predictor snapshot")

var snapCRCTable = crc32.MakeTable(crc32.IEEE)

func snapCorruptf(format string, args ...interface{}) error {
	return fmt.Errorf("serve: %w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

// SessionSnapshot is one session's persistent state: its key, how many
// events it has observed, and both predictor states.
type SessionSnapshot struct {
	Tenant   string
	Stream   string
	Observed int64
	Sender   core.PredictorSnapshot
	Size     core.PredictorSnapshot
}

// snapWriter mirrors the trace codec's Writer: buffered, CRC over every
// byte, first error sticks.
type snapWriter struct {
	bw  *bufio.Writer
	crc uint32
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *snapWriter) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, snapCRCTable, p)
	_, w.err = w.bw.Write(p)
}

func (w *snapWriter) writeByte(b byte) { w.write([]byte{b}) }

func (w *snapWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *snapWriter) writeVarint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

func (w *snapWriter) writeString(s string) {
	if len(s) > maxSnapStringLen {
		w.err = fmt.Errorf("serve: string of %d bytes exceeds the snapshot format limit %d", len(s), maxSnapStringLen)
		return
	}
	w.writeUvarint(uint64(len(s)))
	w.write([]byte(s))
}

func (w *snapWriter) writeInt64s(xs []int64) {
	w.writeUvarint(uint64(len(xs)))
	for _, x := range xs {
		w.writeVarint(x)
	}
}

func (w *snapWriter) writePredictor(s core.PredictorSnapshot) {
	w.writeVarint(int64(s.Config.WindowSize))
	w.writeVarint(int64(s.Config.MaxLag))
	w.writeVarint(int64(s.Config.MinRepeats))
	w.writeVarint(int64(s.Config.ConfirmRuns))
	w.writeVarint(int64(s.Config.HoldDown))
	w.writeUvarint(math.Float64bits(s.Config.LockTolerance))
	w.writeVarint(int64(s.Config.RelearnWindow))
	w.writeUvarint(math.Float64bits(s.Config.RelearnMissRate))
	w.writeVarint(s.WindowObserved)
	w.writeInt64s(s.Window)
	w.writeByte(byte(s.State))
	w.writeInt64s(s.Pattern)
	w.writeVarint(int64(s.Phase))
	w.writeVarint(int64(s.MissStreak))
	w.writeUvarint(uint64(len(s.Recent)))
	for _, hit := range s.Recent {
		if hit {
			w.writeByte(1)
		} else {
			w.writeByte(0)
		}
	}
	w.writeVarint(int64(s.CandidatePeriod))
	w.writeVarint(int64(s.CandidateRuns))
	w.writeVarint(s.Counters.Observed)
	w.writeVarint(s.Counters.Locks)
	w.writeVarint(s.Counters.Unlocks)
	w.writeVarint(s.Counters.HitsWhile)
	w.writeVarint(s.Counters.MissesWhile)
}

// WriteSnapshot writes the sessions to w in the snapshot format. Callers
// that need the deterministic file contract must pass sessions in a
// stable order; Registry.SnapshotSessions already sorts by key.
func WriteSnapshot(w io.Writer, sessions []SessionSnapshot) error {
	sw := &snapWriter{bw: bufio.NewWriter(w)}
	sw.write(snapshotMagic[:])
	sw.writeUvarint(SnapshotVersion)
	for i := range sessions {
		s := &sessions[i]
		// Mirror the reader's key validation: writing a file the reader
		// would reject as corrupt helps nobody.
		if s.Tenant == "" || s.Stream == "" {
			return fmt.Errorf("serve: session %d has an empty key %q/%q", i, s.Tenant, s.Stream)
		}
		sw.writeByte(tagSnapSession)
		sw.writeString(s.Tenant)
		sw.writeString(s.Stream)
		sw.writeVarint(s.Observed)
		sw.writePredictor(s.Sender)
		sw.writePredictor(s.Size)
	}
	sw.writeByte(tagSnapEnd)
	sw.writeUvarint(uint64(len(sessions)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sw.crc)
	if sw.err == nil {
		if _, err := sw.bw.Write(trailer[:]); err != nil {
			sw.err = err
		}
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// snapReader mirrors the trace codec's Reader, keeping the CRC in sync
// with every byte consumed.
type snapReader struct {
	br  *bufio.Reader
	crc uint32
}

// ReadByte satisfies io.ByteReader for binary.ReadUvarint.
func (r *snapReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	r.crc = crc32.Update(r.crc, snapCRCTable, []byte{b})
	return b, nil
}

func (r *snapReader) readFull(p []byte) error {
	if _, err := io.ReadFull(r.br, p); err != nil {
		return err
	}
	r.crc = crc32.Update(r.crc, snapCRCTable, p)
	return nil
}

func (r *snapReader) readUvarint() (uint64, error) { return binary.ReadUvarint(r) }

func (r *snapReader) readVarint() (int64, error) { return binary.ReadVarint(r) }

func (r *snapReader) readString() (string, error) {
	n, err := r.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxSnapStringLen {
		return "", fmt.Errorf("string length %d exceeds the format limit %d", n, maxSnapStringLen)
	}
	buf := make([]byte, n)
	if err := r.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (r *snapReader) readInt64s() ([]int64, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSnapSliceLen {
		return nil, fmt.Errorf("slice length %d exceeds the format limit %d", n, maxSnapSliceLen)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = r.readVarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *snapReader) readPredictor() (core.PredictorSnapshot, error) {
	var s core.PredictorSnapshot
	fields := []*int{
		&s.Config.WindowSize, &s.Config.MaxLag, &s.Config.MinRepeats,
		&s.Config.ConfirmRuns, &s.Config.HoldDown,
	}
	for _, f := range fields {
		v, err := r.readVarint()
		if err != nil {
			return s, err
		}
		*f = int(v)
	}
	bits, err := r.readUvarint()
	if err != nil {
		return s, err
	}
	s.Config.LockTolerance = math.Float64frombits(bits)
	v, err := r.readVarint()
	if err != nil {
		return s, err
	}
	s.Config.RelearnWindow = int(v)
	if bits, err = r.readUvarint(); err != nil {
		return s, err
	}
	s.Config.RelearnMissRate = math.Float64frombits(bits)
	if s.WindowObserved, err = r.readVarint(); err != nil {
		return s, err
	}
	if s.Window, err = r.readInt64s(); err != nil {
		return s, err
	}
	state, err := r.ReadByte()
	if err != nil {
		return s, err
	}
	s.State = core.LockState(state)
	if s.Pattern, err = r.readInt64s(); err != nil {
		return s, err
	}
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.Phase = int(v)
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.MissStreak = int(v)
	n, err := r.readUvarint()
	if err != nil {
		return s, err
	}
	if n > maxSnapSliceLen {
		return s, fmt.Errorf("outcome ring length %d exceeds the format limit %d", n, maxSnapSliceLen)
	}
	if n > 0 {
		s.Recent = make([]bool, n)
		for i := range s.Recent {
			b, err := r.ReadByte()
			if err != nil {
				return s, err
			}
			switch b {
			case 0:
				s.Recent[i] = false
			case 1:
				s.Recent[i] = true
			default:
				return s, fmt.Errorf("invalid outcome byte 0x%02x", b)
			}
		}
	}
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.CandidatePeriod = int(v)
	if v, err = r.readVarint(); err != nil {
		return s, err
	}
	s.CandidateRuns = int(v)
	counters := []*int64{
		&s.Counters.Observed, &s.Counters.Locks, &s.Counters.Unlocks,
		&s.Counters.HitsWhile, &s.Counters.MissesWhile,
	}
	for _, c := range counters {
		if *c, err = r.readVarint(); err != nil {
			return s, err
		}
	}
	return s, nil
}

// ReadSnapshot reads a complete snapshot previously written by
// WriteSnapshot. Beyond the structural checks (magic, version, tags,
// session count, CRC) every predictor state is validated by a trial
// restore, so a snapshot that decodes but cannot produce a working
// predictor is rejected here, not at serving time. Trailing bytes after
// the trailer are rejected: for a file they mean a botched concatenation
// or a partial overwrite.
func ReadSnapshot(r io.Reader) ([]SessionSnapshot, error) {
	sr := &snapReader{br: bufio.NewReader(r)}
	var magic [4]byte
	if err := sr.readFull(magic[:]); err != nil {
		return nil, snapCorruptf("reading magic: %v", err)
	}
	if magic != snapshotMagic {
		return nil, snapCorruptf("bad magic %q", magic[:])
	}
	version, err := sr.readUvarint()
	if err != nil {
		return nil, snapCorruptf("reading version: %v", err)
	}
	if version != SnapshotVersion {
		return nil, snapCorruptf("unsupported version %d (have %d)", version, SnapshotVersion)
	}
	var sessions []SessionSnapshot
	seen := make(map[sessionKey]bool)
	for {
		tag, err := sr.ReadByte()
		if err != nil {
			return nil, snapCorruptf("reading item tag: %v", err)
		}
		switch tag {
		case tagSnapSession:
			snap, err := readSession(sr)
			if err != nil {
				return nil, err
			}
			key := sessionKey{snap.Tenant, snap.Stream}
			if seen[key] {
				return nil, snapCorruptf("duplicate session %q/%q", snap.Tenant, snap.Stream)
			}
			seen[key] = true
			sessions = append(sessions, snap)
		case tagSnapEnd:
			count, err := sr.readUvarint()
			if err != nil {
				return nil, snapCorruptf("reading session count: %v", err)
			}
			if count != uint64(len(sessions)) {
				return nil, snapCorruptf("session count %d does not match %d sessions read", count, len(sessions))
			}
			want := sr.crc
			var trailer [4]byte
			if _, err := io.ReadFull(sr.br, trailer[:]); err != nil {
				return nil, snapCorruptf("reading checksum: %v", err)
			}
			if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
				return nil, snapCorruptf("checksum mismatch: file says %08x, content hashes to %08x", got, want)
			}
			if _, err := sr.br.ReadByte(); err != io.EOF {
				return nil, snapCorruptf("trailing data after the snapshot trailer")
			}
			return sessions, nil
		default:
			return nil, snapCorruptf("unknown item tag 0x%02x", tag)
		}
	}
}

func readSession(sr *snapReader) (SessionSnapshot, error) {
	var snap SessionSnapshot
	var err error
	if snap.Tenant, err = sr.readString(); err != nil {
		return snap, snapCorruptf("reading tenant: %v", err)
	}
	if snap.Stream, err = sr.readString(); err != nil {
		return snap, snapCorruptf("reading stream: %v", err)
	}
	if snap.Tenant == "" || snap.Stream == "" {
		return snap, snapCorruptf("empty session key %q/%q", snap.Tenant, snap.Stream)
	}
	if snap.Observed, err = sr.readVarint(); err != nil {
		return snap, snapCorruptf("reading observed count: %v", err)
	}
	if snap.Observed < 0 {
		return snap, snapCorruptf("negative observed count %d", snap.Observed)
	}
	if snap.Sender, err = sr.readPredictor(); err != nil {
		return snap, snapCorruptf("reading sender predictor of %q/%q: %v", snap.Tenant, snap.Stream, err)
	}
	if snap.Size, err = sr.readPredictor(); err != nil {
		return snap, snapCorruptf("reading size predictor of %q/%q: %v", snap.Tenant, snap.Stream, err)
	}
	// A trial restore applies the full core validation surface, so no
	// structurally valid but semantically corrupt state survives loading.
	if _, err := core.RestoreStreamPredictor(snap.Sender); err != nil {
		return snap, snapCorruptf("sender predictor of %q/%q: %v", snap.Tenant, snap.Stream, err)
	}
	if _, err := core.RestoreStreamPredictor(snap.Size); err != nil {
		return snap, snapCorruptf("size predictor of %q/%q: %v", snap.Tenant, snap.Stream, err)
	}
	return snap, nil
}

// SaveSnapshotFile writes the sessions to the named file, creating or
// replacing it. The write is atomic (temp file in the same directory +
// rename), so a failure partway — full disk, killed daemon — never leaves
// a truncated snapshot behind or clobbers the previous good checkpoint.
func SaveSnapshotFile(path string, sessions []SessionSnapshot) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("serve: creating temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	if err := WriteSnapshot(f, sessions); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Unlike cache and trace exports (re-derivable by re-simulating), a
	// snapshot is the only copy of state learned from live traffic, so the
	// data must be durable before the rename can clobber the previous good
	// checkpoint — without the fsync, a power loss after the rename could
	// leave an empty file the daemon then refuses to boot from.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: replacing %s: %w", path, err)
	}
	return nil
}

// LoadSnapshotFile reads a snapshot from the named file.
func LoadSnapshotFile(path string) ([]SessionSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening %s: %w", path, err)
	}
	defer f.Close()
	sessions, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	return sessions, nil
}
